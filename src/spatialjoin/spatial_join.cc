#include "spatialjoin/spatial_join.h"

#include <vector>

#include "core/expansion.h"
#include "core/plane_sweeper.h"
#include "core/sweep_plan.h"

namespace amdj::spatialjoin {

using core::ChildList;
using core::PairEntry;
using core::PairRef;
using core::ResultPair;
using core::RootRef;

Status SpatialJoin::Within(
    const rtree::RTree& r, const rtree::RTree& s, geom::DistVal dmax,
    const core::JoinOptions& options, JoinStats* stats,
    const std::function<Status(const ResultPair&)>& emit) {
  JoinStats local;
  if (stats == nullptr) stats = &local;
  if (r.size() == 0 || s.size() == 0) return Status::OK();

  // Every internal comparison runs in key space; `dmax` converts once here
  // and emissions convert back (exact round-trip for L2).
  const geom::KeyVal dmax_key =
      geom::DistanceToKeyCutoff(dmax, options.metric);
  std::vector<PairEntry> stack;
  {
    PairEntry root = core::MakePair(RootRef(r), RootRef(s), options.metric);
    ++stats->real_distance_computations;
    if (root.key > dmax_key) return Status::OK();
    stack.push_back(root);
  }

  std::vector<PairRef> left;
  std::vector<PairRef> right;
  while (!stack.empty()) {
    const PairEntry c = stack.back();
    stack.pop_back();
    if (c.IsObjectPair()) {
      // pairs_produced is reserved for end results (SJ-SORT counts the
      // post-sort output); callers wanting the raw join cardinality can
      // count in `emit`.
      AMDJ_RETURN_IF_ERROR(emit({geom::KeyToDistance(c.key, options.metric)
                                     .raw(),
                                 c.r.id, c.s.id}));
      continue;
    }
    ++stats->node_expansions;
    AMDJ_RETURN_IF_ERROR(ChildList(r, c.r, options.r_window, &left));
    AMDJ_RETURN_IF_ERROR(ChildList(s, c.s, options.s_window, &right));
    const core::SweepPlan plan =
        core::ChooseSweepPlan(c.r.rect, c.s.rect, dmax,
                              options.sweep);
    Status sweep_status;
    core::KeyedSweepSpec spec;
    spec.metric = options.metric;
    spec.axis_cutoff_key = &dmax_key;
    spec.dist_cutoff_key = &dmax_key;
    core::PlaneSweepKeyed(
        left, right, plan, spec, stats,
        [&](const PairRef& lref, const PairRef& rref,
            geom::KeyVal dist_key) {
          if (!sweep_status.ok()) return;
          if (options.exclude_same_id && core::IsSelfPair(lref, rref)) {
            return;
          }
          PairEntry e;
          e.r = lref;
          e.s = rref;
          e.key = dist_key;
          stack.push_back(e);
        });
    AMDJ_RETURN_IF_ERROR(sweep_status);
  }
  return Status::OK();
}

}  // namespace amdj::spatialjoin

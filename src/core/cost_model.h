#ifndef AMDJ_CORE_COST_MODEL_H_
#define AMDJ_CORE_COST_MODEL_H_

#include "storage/disk_manager.h"

namespace amdj::core {

/// Simulated I/O cost model reproducing the paper's testbed (Section 5.1):
/// a locally attached 1999 EIDE disk accessed with direct I/O at roughly
/// 0.5 MB/s for random and 5 MB/s for sequential page accesses. Response
/// times in EXPERIMENTS.md are CPU time + this model applied to observed
/// page I/O counts; absolute numbers differ from the paper's hardware but
/// the shapes are governed by the same I/O counts.
class CostModel {
 public:
  struct Options {
    double random_mb_per_sec = 0.5;
    double sequential_mb_per_sec = 5.0;
  };

  CostModel() : CostModel(Options{}) {}
  explicit CostModel(const Options& options) : options_(options) {}

  /// Seconds charged for the I/O recorded in `delta` (a DiskStats
  /// difference between the end and start of a run).
  double Seconds(const storage::DiskStats& delta) const;

  /// after - before, counter-wise.
  static storage::DiskStats Delta(const storage::DiskStats& before,
                                  const storage::DiskStats& after);

 private:
  Options options_;
};

}  // namespace amdj::core

#endif  // AMDJ_CORE_COST_MODEL_H_

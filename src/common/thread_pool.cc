#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

#if defined(__linux__)
#include <pthread.h>
#endif

namespace amdj {

namespace {

void NameCurrentThread(const std::string& name) {
#if defined(__linux__)
  // The kernel limit is 16 bytes including the terminator.
  std::string truncated = name.substr(0, 15);
  pthread_setname_np(pthread_self(), truncated.c_str());
#else
  (void)name;
#endif
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads, const std::string& name_prefix)
    : name_prefix_(name_prefix) {
  MetricsRegistry* registry = MetricsRegistry::Global();
  const std::string pool_label = "pool=\"" + name_prefix_ + "\"";
  tasks_total_metric_ =
      registry->GetCounter("amdj_pool_tasks_total", pool_label,
                           "Tasks executed to completion by the pool");
  queued_tasks_metric_ =
      registry->GetGauge("amdj_pool_queued_tasks", pool_label,
                         "Tasks submitted but not yet started");
  busy_workers_metric_ =
      registry->GetGauge("amdj_pool_busy_workers", pool_label,
                         "Workers currently running a task");
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(&mutex_);
    shutting_down_ = true;
  }
  wake_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

size_t ThreadPool::queued() const {
  const MutexLock lock(&mutex_);
  return tasks_.size();
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  {
    const MutexLock lock(&mutex_);
    AMDJ_CHECK(!shutting_down_) << "Submit on a shutting-down ThreadPool";
    tasks_.push_back(std::move(fn));
  }
  queued_tasks_metric_->Increment();
  wake_.NotifyOne();
}

void ThreadPool::WorkerLoop(size_t index) {
  NameCurrentThread(name_prefix_ + "-" + std::to_string(index));
  for (;;) {
    std::function<void()> task;
    {
      const MutexLock lock(&mutex_);
      while (!shutting_down_ && tasks_.empty()) wake_.Wait(&mutex_);
      // Idle shutdown drains the queue before exiting.
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    queued_tasks_metric_->Decrement();
    {
      const ScopedGauge busy(busy_workers_metric_);
      task();
    }
    tasks_total_metric_->Increment();
  }
}

}  // namespace amdj

#include "core/amkdj.h"

#include "common/run_report.h"
#include "common/trace.h"
#include "core/dmax_estimator.h"
#include "core/expansion.h"
#include "core/parallel.h"
#include "core/plane_sweeper.h"
#include "core/qdmax_tracker.h"

#include <algorithm>
#include <limits>

namespace amdj::core {

namespace {

/// Batched-round parallel AM-KDJ (JoinOptions::parallelism > 1), the
/// paper's default two-stage structure. Stage one pops node pairs within
/// eDmax in rounds; each task carries the eDmax in effect when it was
/// popped as its *static* axis cutoff, so the examined sweep prefix — and
/// therefore the compensation bookkeeping recorded on an uncovered sweep —
/// is exactly what the sequential stage would have recorded. The real-
/// distance filter tracks the shared qDmax (stale reads only ever admit
/// extra candidates; the coordinator re-filters at merge). Stage two is a
/// parallel B-KDJ round loop that reuses recorded plans and skips the
/// stage-one prefix. See DESIGN.md "Concurrency model".
StatusOr<std::vector<ResultPair>> RunParallelTwoStage(
    const rtree::RTree& r, const rtree::RTree& s, uint64_t k,
    const JoinOptions& options, JoinStats* stats) {
  std::vector<ResultPair> results;
  const DmaxEstimator fallback_estimator(r.bounds(), r.size(), s.bounds(),
                                         s.size(), options.metric);
  const CutoffEstimator* estimator = options.estimator != nullptr
                                         ? options.estimator
                                         : &fallback_estimator;
  // eDmax lives in key space like every internal cutoff; the estimator API
  // stays in distance space and converts at this boundary.
  geom::KeyVal edmax = geom::DistanceToKeyCutoff(
      InitialEdmaxEstimate(options, *estimator, k),
      options.metric);
  if (options.report != nullptr) {
    options.report->BeginPhase("aggressive", *stats);
    options.report->OnCutoff("initial_edmax",
                             geom::KeyToDistance(edmax, options.metric).raw(), 0);
  }
  AMDJ_TRACE(options.tracer,
             Counter("edmax",
                     geom::KeyToDistance(edmax, options.metric).raw()));
  const auto finish_report = [&options, &stats](
                                 const std::vector<ResultPair>& results) {
    if (options.report == nullptr) return;
    if (!results.empty()) {
      options.report->OnCutoff("final_dmax", results.back().distance,
                               results.size());
    }
    options.report->EndPhase(*stats);
  };

  MainQueue queue(MakeMainQueueOptions(r, s, options), stats,
                  MakeMainQueueCompare(options));
  QdmaxTracker tracker(k, options, stats);
  std::vector<PairEntry> compensation;
  {
    const PairEntry root = MakePair(RootRef(r), RootRef(s), options.metric);
    AMDJ_RETURN_IF_ERROR(queue.Push(root));
    tracker.OnPush(root);
  }

  BatchExpander expander(r, s, options);
  const PairEntryCompare before = MakeMainQueueCompare(options);
  std::vector<PairEntry> popped;
  std::vector<ExpandTask> tasks;
  PairEntry c;

  // ------------------------------------------------------------------
  // Stage one: aggressive pruning, batched.
  bool compensate = false;
  while (results.size() < k && !queue.Empty() && !compensate) {
    tasks.clear();
    while (tasks.size() < expander.batch_limit() && results.size() < k) {
      const Status peek = queue.Peek(&c);
      if (peek.code() == StatusCode::kOutOfRange) break;  // drained
      AMDJ_RETURN_IF_ERROR(peek);
      const geom::KeyVal qdmax = tracker.Cutoff();
      if (qdmax <= edmax) edmax = qdmax;  // overestimate clamp (line 8)
      if (c.key > edmax) {
        // Frontier left the eDmax radius: finish this batch, then switch
        // to the compensation stage. The triggering entry stays queued
        // (the sequential loop pops and re-pushes it; same net effect).
        compensate = true;
        break;
      }
      if (c.IsObjectPair()) {
        // Emittable only with no expansions pending in this batch — a
        // pending expansion could produce a child that precedes it.
        if (!tasks.empty()) break;
        AMDJ_RETURN_IF_ERROR(queue.Pop(&c));
        results.push_back({geom::KeyToDistance(c.key, options.metric).raw(),
                           c.r.id, c.s.id});
        ++stats->pairs_produced;
        continue;
      }
      // Serialize tie plateaus (see bkdj.cc): a tied batch-mate's children
      // routinely trigger the tie-guard abort, wasting the whole round.
      if (!tasks.empty() && c.key == tasks.back().pair.key) break;
      AMDJ_RETURN_IF_ERROR(queue.Pop(&c));
      tracker.OnNodePairLeave(c);
      ExpandTask t;
      t.pair = c;
      t.static_axis_cutoff = edmax;  // line 22: aggressive axis pruning
      tasks.push_back(t);
    }
    if (tasks.empty()) continue;
    ++stats->parallel_rounds;
    stats->parallel_tasks += tasks.size();
    TraceSpan round_span(options.tracer, "parallel_round",
                         {{"tasks", static_cast<double>(tasks.size())},
                          {"edmax_key", edmax.raw()}});

    bool aborted = false;
    AMDJ_RETURN_IF_ERROR(expander.Run(
        tasks, tracker.Cutoff(),
        [&](size_t i, ExpandSlot* slot) -> StatusOr<bool> {
          FoldSlotStats(slot, stats);
          bool tie_hazard = false;
          for (const PairEntry& e : slot->candidates) {
            if (e.key > tracker.Cutoff()) continue;  // exact filter
            AMDJ_RETURN_IF_ERROR(queue.Push(e));
            tracker.OnPush(e);
            if (!tie_hazard) {
              tie_hazard = TiesAheadOfPendingTask(e, tasks, i + 1, before);
            }
          }
          expander.Tighten(tracker.Cutoff());
          if (!slot->covered) {
            // Some sweep suffix was skipped under this task's eDmax:
            // record the pair and that exact cutoff for compensation.
            PairEntry bounced = tasks[i].pair;
            bounced.prior_cutoff = tasks[i].static_axis_cutoff;
            bounced.prior_axis = static_cast<int8_t>(slot->plan.axis);
            bounced.prior_dir =
                slot->plan.dir == geom::SweepDirection::kForward ? int8_t{0}
                                                                 : int8_t{1};
            compensation.push_back(bounced);
            ++stats->compensation_queue_insertions;
          }
          // Tie guard (see bkdj.cc): a pushed child exactly tying a
          // pending task and out-ranking it via the tie-break would have
          // been processed first sequentially — abort and re-pop.
          if (tie_hazard) {
            ++stats->parallel_tie_aborts;
            AMDJ_TRACE(
                options.tracer,
                Instant("tie_guard_abort",
                        {{"merged", static_cast<double>(i + 1)},
                         {"requeued",
                          static_cast<double>(tasks.size() - i - 1)}}));
            for (size_t j = i + 1; j < tasks.size(); ++j) {
              AMDJ_RETURN_IF_ERROR(queue.Push(tasks[j].pair));
              tracker.OnPush(tasks[j].pair);
            }
            aborted = true;
            return false;
          }
          return true;
        }));
    size_t wasted = 0;
    for (const ExpandTask& t : tasks) {
      if (t.pair.key > std::min(edmax, tracker.Cutoff())) ++wasted;
    }
    expander.ReportRound(tasks.size(), wasted);
    // An aborted round re-queued unexpanded tasks; re-collect them in
    // stage one so the frontier check and eDmax clamp replay exactly as
    // the sequential stage would have seen them.
    if (aborted) compensate = false;
  }

  if (!compensate && results.size() < k && !compensation.empty()) {
    compensate = true;  // queue drained with recoverable pairs left
  }
  if (results.size() >= k || !compensate) {
    finish_report(results);
    return results;
  }

  // ------------------------------------------------------------------
  // Compensation stage, batched.
  AMDJ_TRACE(options.tracer,
             Instant("stage_transition",
                     {{"edmax",
                       geom::KeyToDistance(edmax, options.metric).raw()},
                      {"qdmax", geom::KeyToDistance(tracker.Cutoff(),
                                                    options.metric)
                                    .raw()},
                      {"pairs_so_far",
                       static_cast<double>(results.size())},
                      {"compensation_pairs",
                       static_cast<double>(compensation.size())}}));
  if (options.report != nullptr) {
    options.report->OnCutoff(
        "stage_transition_edmax",
        geom::KeyToDistance(edmax, options.metric).raw(), results.size());
    options.report->BeginPhase("compensation", *stats);
  }
  for (const PairEntry& e : compensation) {
    AMDJ_RETURN_IF_ERROR(queue.Push(e));
  }
  compensation.clear();

  const auto is_object = [](const PairEntry& e) { return e.IsObjectPair(); };
  while (results.size() < k && !queue.Empty()) {
    popped.clear();
    AMDJ_RETURN_IF_ERROR(
        queue.PopBatch(k - results.size(), is_object, &popped));
    for (const PairEntry& e : popped) {
      results.push_back({geom::KeyToDistance(e.key, options.metric).raw(),
                         e.r.id, e.s.id});
      ++stats->pairs_produced;
    }
    if (results.size() >= k) break;

    popped.clear();
    geom::KeyVal prev_key = geom::KeyVal::Zero();
    AMDJ_RETURN_IF_ERROR(queue.PopBatch(
        expander.batch_limit(),
        [&](const PairEntry& e) {
          if (e.IsObjectPair()) return false;
          if (!popped.empty() && e.key == prev_key) return false;
          prev_key = e.key;
          return true;
        },
        &popped));
    tasks.clear();
    for (const PairEntry& e : popped) {
      tracker.OnNodePairLeave(e);
      if (e.key > tracker.Cutoff()) continue;
      ExpandTask t;
      t.pair = e;
      if (e.WasExpanded()) {
        // Reproduce the stage-one sweep order and skip its prefix.
        t.has_fixed_plan = true;
        t.plan.axis = e.prior_axis;
        t.plan.dir = e.prior_dir == 0 ? geom::SweepDirection::kForward
                                      : geom::SweepDirection::kBackward;
        t.skip_below = e.prior_cutoff;
      }
      tasks.push_back(t);
    }
    if (tasks.empty()) continue;
    ++stats->parallel_rounds;
    stats->parallel_tasks += tasks.size();
    TraceSpan round_span(options.tracer, "parallel_round",
                         {{"tasks", static_cast<double>(tasks.size())},
                          {"cutoff_key", tracker.Cutoff().raw()}});

    AMDJ_RETURN_IF_ERROR(expander.Run(
        tasks, tracker.Cutoff(),
        [&](size_t i, ExpandSlot* slot) -> StatusOr<bool> {
          FoldSlotStats(slot, stats);
          bool tie_hazard = false;
          for (const PairEntry& e : slot->candidates) {
            if (e.key > tracker.Cutoff()) continue;
            AMDJ_RETURN_IF_ERROR(queue.Push(e));
            tracker.OnPush(e);
            if (!tie_hazard) {
              tie_hazard = TiesAheadOfPendingTask(e, tasks, i + 1, before);
            }
          }
          expander.Tighten(tracker.Cutoff());
          // Tie guard (see bkdj.cc): exact key ties only. Re-pushed
          // tasks keep their prior_* bookkeeping, so a re-pop resumes the
          // same compensation sweep.
          if (tie_hazard) {
            ++stats->parallel_tie_aborts;
            AMDJ_TRACE(
                options.tracer,
                Instant("tie_guard_abort",
                        {{"merged", static_cast<double>(i + 1)},
                         {"requeued",
                          static_cast<double>(tasks.size() - i - 1)}}));
            for (size_t j = i + 1; j < tasks.size(); ++j) {
              AMDJ_RETURN_IF_ERROR(queue.Push(tasks[j].pair));
              tracker.OnPush(tasks[j].pair);
            }
            return false;
          }
          return true;
        }));
    size_t wasted = 0;
    for (const ExpandTask& t : tasks) {
      if (t.pair.key > tracker.Cutoff()) ++wasted;
    }
    expander.ReportRound(tasks.size(), wasted);
  }
  finish_report(results);
  return results;
}

/// Section 4.3.2 variant: one unified loop whose cutoff grows through
/// runtime corrections, interleaving recovery rounds (merge the
/// compensation queue back) until the exact qDmax takes over. Used when
/// JoinOptions::kdj_adaptive_correction is set; the default Run() below
/// keeps the paper's two-stage structure (initial estimate only).
StatusOr<std::vector<ResultPair>> RunAdaptive(const rtree::RTree& r,
                                              const rtree::RTree& s,
                                              uint64_t k,
                                              const JoinOptions& options,
                                              JoinStats* stats) {
  std::vector<ResultPair> results;
  const DmaxEstimator fallback_estimator(r.bounds(), r.size(), s.bounds(),
                                         s.size(), options.metric);
  const CutoffEstimator* estimator = options.estimator != nullptr
                                         ? options.estimator
                                         : &fallback_estimator;
  geom::KeyVal edmax = geom::DistanceToKeyCutoff(
      InitialEdmaxEstimate(options, *estimator, k),
      options.metric);
  if (options.report != nullptr) {
    options.report->BeginPhase("adaptive", *stats);
    options.report->OnCutoff("initial_edmax",
                             geom::KeyToDistance(edmax, options.metric).raw(), 0);
  }
  AMDJ_TRACE(options.tracer,
             Counter("edmax",
                     geom::KeyToDistance(edmax, options.metric).raw()));

  MainQueue queue(MakeMainQueueOptions(r, s, options), stats,
                  MakeMainQueueCompare(options));
  QdmaxTracker tracker(k, options, stats);
  std::vector<PairEntry> compensation;
  // Smallest cutoff key under which a queued compensation pair was
  // examined: emitting beyond it could overtake a recoverable pruned child.
  geom::KeyVal barrier = geom::KeyVal::Infinity();
  // Distance space (fed back to the estimator's Correct()).
  geom::DistVal last_emitted = geom::DistVal::Zero();
  {
    const PairEntry root = MakePair(RootRef(r), RootRef(s), options.metric);
    AMDJ_RETURN_IF_ERROR(queue.Push(root));
    tracker.OnPush(root);
  }

  std::vector<PairRef> left;
  std::vector<PairRef> right;
  PairEntry c;
  while (results.size() < k && !queue.Empty()) {
    AMDJ_RETURN_IF_ERROR(queue.Pop(&c));
    if (!c.IsObjectPair()) tracker.OnNodePairLeave(c);
    geom::KeyVal qdmax = tracker.Cutoff();
    if (qdmax <= edmax) edmax = qdmax;  // overestimate clamp (line 8)

    if (c.key > std::min(edmax, barrier)) {
      if (compensation.empty() && c.key > qdmax) {
        continue;  // beyond the exact cutoff: can never contribute
      }
      // Frontier left the safe radius: grow the estimate (Eq. 4/5 /
      // custom correction) if it still helps, else adopt qDmax, then
      // recover the compensation queue and resume.
      AMDJ_RETURN_IF_ERROR(queue.Push(c));
      if (!c.IsObjectPair()) tracker.OnPush(c);
      geom::KeyVal next = qdmax;
      if (!results.empty() && results.size() < k) {
        const geom::KeyVal corrected = geom::DistanceToKeyCutoff(
            estimator->Correct(
                k, results.size(), last_emitted,
                options.correction == CorrectionPolicy::kAggressive),
            options.metric);
        if (corrected > edmax && corrected < qdmax) next = corrected;
      }
      AMDJ_TRACE(
          options.tracer,
          Instant("edmax_correction",
                  {{"old_edmax",
                    geom::KeyToDistance(edmax, options.metric).raw()},
                   {"new_edmax",
                    geom::KeyToDistance(next, options.metric).raw()},
                   {"pairs_so_far", static_cast<double>(results.size())},
                   {"recovered",
                    static_cast<double>(compensation.size())}}));
      if (options.report != nullptr) {
        options.report->OnCutoff(
            "correction", geom::KeyToDistance(next, options.metric).raw(),
            results.size());
      }
      edmax = next;  // strictly above the old value, or the exact qDmax
      for (const PairEntry& e : compensation) {
        AMDJ_RETURN_IF_ERROR(queue.Push(e));
        tracker.OnPush(e);  // no-op: expanded pairs carry no certificate
      }
      compensation.clear();
      barrier = geom::KeyVal::Infinity();
      continue;
    }

    if (c.IsObjectPair()) {
      const geom::DistVal dist = geom::KeyToDistance(c.key, options.metric);
      results.push_back({dist.raw(), c.r.id, c.s.id});
      last_emitted = dist;
      ++stats->pairs_produced;
      continue;
    }

    ++stats->node_expansions;
    TraceSpan span(options.tracer, "expand_sweep",
                   {{"r_level", static_cast<double>(c.r.level)},
                    {"s_level", static_cast<double>(c.s.level)},
                    {"key", c.key.raw()}});
    AMDJ_RETURN_IF_ERROR(ChildList(r, c.r, options.r_window, &left));
    AMDJ_RETURN_IF_ERROR(ChildList(s, c.s, options.s_window, &right));
    SweepPlan plan;
    geom::KeyVal prior{-1.0};
    if (c.WasExpanded()) {
      plan.axis = c.prior_axis;
      plan.dir = c.prior_dir == 0 ? geom::SweepDirection::kForward
                                  : geom::SweepDirection::kBackward;
      prior = c.prior_cutoff;
    } else {
      plan = ChooseSweepPlan(c.r.rect, c.s.rect,
                             geom::KeyToDistance(edmax, options.metric),
                             options.sweep);
    }

    Status sweep_status;
    // Static axis cutoff: it defines the examined prefix the recorded
    // bookkeeping must describe exactly.
    geom::KeyVal axis_cutoff = edmax;
    KeyedSweepSpec spec;
    spec.metric = options.metric;
    spec.axis_cutoff_key = &axis_cutoff;
    spec.dist_cutoff_key = &qdmax;  // permanent filter: the exact cutoff
    spec.skip_axis_below_key = prior;  // examined in an earlier round
    const bool covered =
        PlaneSweepKeyed(
            left, right, plan, spec, stats,
            [&](const PairRef& lref, const PairRef& rref,
                geom::KeyVal dist_key) {
              if (!sweep_status.ok()) return;
              if (options.exclude_same_id && IsSelfPair(lref, rref)) return;
              PairEntry e;
              e.r = lref;
              e.s = rref;
              e.key = dist_key;
              sweep_status = queue.Push(e);
              if (!sweep_status.ok()) {
                axis_cutoff = geom::KeyVal(-1.0);
                return;
              }
              tracker.OnPush(e);
              qdmax = tracker.Cutoff();
            })
            .axis_covered;
    AMDJ_RETURN_IF_ERROR(sweep_status);

    if (!covered) {
      c.prior_cutoff = std::max(edmax, prior);
      c.prior_axis = static_cast<int8_t>(plan.axis);
      c.prior_dir =
          plan.dir == geom::SweepDirection::kForward ? int8_t{0} : int8_t{1};
      compensation.push_back(c);
      barrier = std::min(barrier, c.prior_cutoff);
      ++stats->compensation_queue_insertions;
    }
  }
  if (options.report != nullptr) {
    if (!results.empty()) {
      options.report->OnCutoff("final_dmax", results.back().distance,
                               results.size());
    }
    options.report->EndPhase(*stats);
  }
  return results;
}

}  // namespace

StatusOr<std::vector<ResultPair>> AmKdj::Run(const rtree::RTree& r,
                                             const rtree::RTree& s,
                                             uint64_t k,
                                             const JoinOptions& options,
                                             JoinStats* stats) {
  std::vector<ResultPair> results;
  if (k == 0 || r.size() == 0 || s.size() == 0) return results;
  JoinStats local;
  if (stats == nullptr) stats = &local;
  if (options.kdj_adaptive_correction) {
    // The runtime-corrected variant stays sequential: its barrier/recovery
    // interleaving serializes rounds anyway (see options.h::parallelism).
    return RunAdaptive(r, s, k, options, stats);
  }
  if (options.parallelism > 1) {
    return RunParallelTwoStage(r, s, k, options, stats);
  }

  const DmaxEstimator fallback_estimator(r.bounds(), r.size(), s.bounds(),
                                         s.size(), options.metric);
  const CutoffEstimator* estimator = options.estimator != nullptr
                                         ? options.estimator
                                         : &fallback_estimator;
  geom::KeyVal edmax = geom::DistanceToKeyCutoff(
      InitialEdmaxEstimate(options, *estimator, k),
      options.metric);
  if (options.report != nullptr) {
    options.report->BeginPhase("aggressive", *stats);
    options.report->OnCutoff("initial_edmax",
                             geom::KeyToDistance(edmax, options.metric).raw(), 0);
  }
  AMDJ_TRACE(options.tracer,
             Counter("edmax",
                     geom::KeyToDistance(edmax, options.metric).raw()));
  const auto finish_report = [&options, &stats](
                                 const std::vector<ResultPair>& res) {
    if (options.report == nullptr) return;
    if (!res.empty()) {
      options.report->OnCutoff("final_dmax", res.back().distance,
                               res.size());
    }
    options.report->EndPhase(*stats);
  };

  MainQueue queue(MakeMainQueueOptions(r, s, options), stats,
                  MakeMainQueueCompare(options));
  QdmaxTracker tracker(k, options, stats);
  std::vector<PairEntry> compensation;  // Qc: node pairs only, stays small
  {
    const PairEntry root = MakePair(RootRef(r), RootRef(s), options.metric);
    AMDJ_RETURN_IF_ERROR(queue.Push(root));
    tracker.OnPush(root);
  }

  std::vector<PairRef> left;
  std::vector<PairRef> right;
  PairEntry c;

  // ------------------------------------------------------------------
  // Stage one: aggressive pruning (Algorithm 2).
  bool compensate = false;
  while (results.size() < k && !queue.Empty()) {
    AMDJ_RETURN_IF_ERROR(queue.Pop(&c));
    if (!c.IsObjectPair()) tracker.OnNodePairLeave(c);
    geom::KeyVal qdmax = tracker.Cutoff();
    // Line 8: an overestimated eDmax is clamped to qDmax, after which the
    // stage behaves exactly like B-KDJ.
    if (qdmax <= edmax) edmax = qdmax;
    if (c.key > edmax) {
      // Line 9 (with the obvious reading of the garbled comparison): the
      // frontier left the eDmax radius with fewer than k results, so eDmax
      // was an underestimate. This check must precede emission — an
      // *object* pair beyond eDmax must wait for the compensation stage,
      // which first recovers the aggressively pruned closer pairs; emitting
      // it here would break the non-decreasing output order.
      AMDJ_RETURN_IF_ERROR(queue.Push(c));
      if (!c.IsObjectPair()) tracker.OnPush(c);  // restore its certificate
      compensate = true;
      break;
    }
    if (c.IsObjectPair()) {
      results.push_back({geom::KeyToDistance(c.key, options.metric).raw(),
                         c.r.id, c.s.id});
      ++stats->pairs_produced;
      continue;
    }

    ++stats->node_expansions;
    TraceSpan span(options.tracer, "expand_sweep",
                   {{"r_level", static_cast<double>(c.r.level)},
                    {"s_level", static_cast<double>(c.s.level)},
                    {"key", c.key.raw()}});
    AMDJ_RETURN_IF_ERROR(ChildList(r, c.r, options.r_window, &left));
    AMDJ_RETURN_IF_ERROR(ChildList(s, c.s, options.s_window, &right));
    const SweepPlan plan =
        ChooseSweepPlan(c.r.rect, c.s.rect,
                        geom::KeyToDistance(edmax, options.metric),
                        options.sweep);

    Status sweep_status;
    geom::KeyVal axis_cutoff = edmax;  // line 22: aggressive axis pruning
    KeyedSweepSpec spec;
    spec.metric = options.metric;
    spec.axis_cutoff_key = &axis_cutoff;
    spec.dist_cutoff_key = &qdmax;  // exact filter: permanent under qDmax
    const bool covered =
        PlaneSweepKeyed(
            left, right, plan, spec, stats,
            [&](const PairRef& lref, const PairRef& rref,
                geom::KeyVal dist_key) {
              if (!sweep_status.ok()) return;
              if (options.exclude_same_id && IsSelfPair(lref, rref)) return;
              PairEntry e;
              e.r = lref;
              e.s = rref;
              e.key = dist_key;
              sweep_status = queue.Push(e);
              if (!sweep_status.ok()) {
                axis_cutoff = geom::KeyVal(-1.0);  // abort the sweep
                return;
              }
              tracker.OnPush(e);
              qdmax = tracker.Cutoff();
            })
            .axis_covered;
    AMDJ_RETURN_IF_ERROR(sweep_status);

    if (!covered) {
      // Some sweep suffix was skipped under eDmax: remember the pair and
      // the cutoff so compensation can examine exactly the remainder.
      // (Fully covered pairs can never yield new children; keeping them out
      // of Qc is what keeps it orders of magnitude smaller than Qm.)
      c.prior_cutoff = edmax;
      c.prior_axis = static_cast<int8_t>(plan.axis);
      c.prior_dir =
          plan.dir == geom::SweepDirection::kForward ? int8_t{0} : int8_t{1};
      compensation.push_back(c);
      ++stats->compensation_queue_insertions;
    }
  }

  if (!compensate && results.size() < k && !compensation.empty()) {
    // Stage one drained the main queue without reaching k (aggressively
    // pruned pairs are still recoverable).
    compensate = true;
  }
  if (results.size() >= k || !compensate) {
    finish_report(results);
    return results;
  }

  // ------------------------------------------------------------------
  // Compensation stage (Algorithm 3).
  AMDJ_TRACE(options.tracer,
             Instant("stage_transition",
                     {{"edmax",
                       geom::KeyToDistance(edmax, options.metric).raw()},
                      {"qdmax", geom::KeyToDistance(tracker.Cutoff(),
                                                    options.metric)
                                    .raw()},
                      {"pairs_so_far",
                       static_cast<double>(results.size())},
                      {"compensation_pairs",
                       static_cast<double>(compensation.size())}}));
  if (options.report != nullptr) {
    options.report->OnCutoff(
        "stage_transition_edmax",
        geom::KeyToDistance(edmax, options.metric).raw(), results.size());
    options.report->BeginPhase("compensation", *stats);
  }
  for (const PairEntry& e : compensation) {
    AMDJ_RETURN_IF_ERROR(queue.Push(e));
  }
  compensation.clear();

  while (results.size() < k && !queue.Empty()) {
    AMDJ_RETURN_IF_ERROR(queue.Pop(&c));
    // Sharded execution: the compensation queue has been merged back by
    // now, so the frontier passing the external global cutoff means no
    // remaining entry (or descendant) can enter the merged top-k; see
    // bkdj.cc. Stage one needs no such check — its eDmax clamp already
    // absorbs the external bound and forces the stage transition.
    if (options.shared_cutoff_key != nullptr &&
        c.key > options.shared_cutoff_key->load(std::memory_order_relaxed)) {
      break;
    }
    if (c.IsObjectPair()) {
      results.push_back({geom::KeyToDistance(c.key, options.metric).raw(),
                         c.r.id, c.s.id});
      ++stats->pairs_produced;
      continue;
    }
    tracker.OnNodePairLeave(c);
    geom::KeyVal cutoff = tracker.Cutoff();
    if (c.key > cutoff) continue;

    ++stats->node_expansions;
    TraceSpan span(options.tracer, "expand_sweep",
                   {{"r_level", static_cast<double>(c.r.level)},
                    {"s_level", static_cast<double>(c.s.level)},
                    {"key", c.key.raw()}});
    AMDJ_RETURN_IF_ERROR(ChildList(r, c.r, options.r_window, &left));
    AMDJ_RETURN_IF_ERROR(ChildList(s, c.s, options.s_window, &right));
    // Pairs expanded in stage one re-sweep with the *same* axis and
    // direction (their children's sweep order is reproduced), skipping the
    // already-examined prefix; fresh pairs get a full B-KDJ sweep.
    SweepPlan plan;
    geom::KeyVal skip_below{-1.0};
    if (c.WasExpanded()) {
      plan.axis = c.prior_axis;
      plan.dir = c.prior_dir == 0 ? geom::SweepDirection::kForward
                                  : geom::SweepDirection::kBackward;
      skip_below = c.prior_cutoff;
    } else {
      plan = ChooseSweepPlan(c.r.rect, c.s.rect,
                             geom::KeyToDistance(cutoff, options.metric),
                             options.sweep);
    }

    Status sweep_status;
    KeyedSweepSpec spec;
    spec.metric = options.metric;
    spec.axis_cutoff_key = &cutoff;
    spec.dist_cutoff_key = &cutoff;
    // Skip the stage-one prefix: those pairs were examined under a qDmax
    // no smaller than today's, so any that were dropped stay dropped and
    // any that qualified are already in the main queue.
    spec.skip_axis_below_key = skip_below;
    PlaneSweepKeyed(
        left, right, plan, spec, stats,
        [&](const PairRef& lref, const PairRef& rref,
            geom::KeyVal dist_key) {
          if (!sweep_status.ok()) return;
          if (options.exclude_same_id && IsSelfPair(lref, rref)) {
            return;
          }
          PairEntry e;
          e.r = lref;
          e.s = rref;
          e.key = dist_key;
          sweep_status = queue.Push(e);
          if (!sweep_status.ok()) {
            cutoff = geom::KeyVal(-1.0);
            return;
          }
          tracker.OnPush(e);
          cutoff = tracker.Cutoff();
        });
    AMDJ_RETURN_IF_ERROR(sweep_status);
  }
  finish_report(results);
  return results;
}

}  // namespace amdj::core

// JoinService: inter-query concurrency with exact per-query stats
// attribution. The load-bearing checks are (a) every concurrently
// executed query returns byte-identical results to its own solo run, and
// (b) the per-query node-access counters reconcile exactly with the
// shared buffer pool's global hit/miss totals — concurrent attribution is
// an accounting identity, not an approximation.

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "core/distance_join.h"
#include "service/join_service.h"
#include "test_util.h"
#include "workload/generators.h"

namespace amdj {
namespace {

using service::JoinRequest;
using service::JoinResponse;
using service::JoinService;

/// Mixed KDJ/IDJ request set. SJ-SORT is deliberately absent from the
/// reconciliation workloads: its Dmax oracle pre-pass performs *uncharged*
/// pool fetches (a detached attribution scope), which is correct for the
/// paper's favorable-assumption accounting but would break the
/// per-query-sums == pool-delta identity below.
std::vector<JoinRequest> MixedRequests() {
  std::vector<JoinRequest> requests;
  JoinRequest kdj;
  kdj.kind = JoinRequest::Kind::kKdj;

  kdj.kdj_algorithm = core::KdjAlgorithm::kHsKdj;
  kdj.k = 300;
  requests.push_back(kdj);
  kdj.kdj_algorithm = core::KdjAlgorithm::kBKdj;
  kdj.k = 900;
  requests.push_back(kdj);
  kdj.kdj_algorithm = core::KdjAlgorithm::kAmKdj;
  kdj.k = 2000;
  requests.push_back(kdj);
  kdj.kdj_algorithm = core::KdjAlgorithm::kAmKdj;
  kdj.k = 50;
  requests.push_back(kdj);

  JoinRequest idj;
  idj.kind = JoinRequest::Kind::kIdj;
  idj.idj_algorithm = core::IdjAlgorithm::kHsIdj;
  idj.k = 700;
  requests.push_back(idj);
  idj.idj_algorithm = core::IdjAlgorithm::kAmIdj;
  idj.k = 1500;
  requests.push_back(idj);
  return requests;
}

/// Runs `request` alone on `f` (sequentially, nothing else in flight)
/// under the exact options the service would use.
JoinResponse RunSolo(const test::JoinFixture& f, const JoinService& service,
                     const JoinRequest& request) {
  JoinService::Options solo_options;
  solo_options.max_inflight = 1;
  // Reproduce the concurrent service's per-query clamp, not 1-in-flight's.
  solo_options.queue_memory_budget_bytes =
      service.per_query_queue_memory_bytes();
  JoinService solo(*f.r, *f.s, solo_options);
  return solo.Run(request);
}

TEST(JoinServiceTest, ConcurrentMixedQueriesMatchSoloRunsExactly) {
  const workload::Dataset r_data =
      workload::TigerStreets({.street_segments = 5000, .seed = 87});
  const workload::Dataset s_data =
      workload::TigerHydro({.hydro_objects = 1800, .seed = 87});
  // Small pool so concurrent queries genuinely evict each other's pages.
  test::JoinFixture f = test::MakeFixture(r_data, s_data, 32, 48);

  JoinService::Options options;
  options.max_inflight = 4;
  options.queue_memory_budget_bytes = 512 * 1024;
  JoinService service(*f.r, *f.s, options);

  const std::vector<JoinRequest> requests = MixedRequests();
  ASSERT_GE(requests.size(), 4u) << "need N>=4 concurrent queries";

  // Solo references on a *fresh* identical fixture, so reference stats are
  // untouched by the concurrent run's pool state.
  std::vector<JoinResponse> solo;
  {
    test::JoinFixture fresh = test::MakeFixture(r_data, s_data, 32, 48);
    JoinService::Options probe = options;
    JoinService sizing(*fresh.r, *fresh.s, probe);
    for (const JoinRequest& request : requests) {
      solo.push_back(RunSolo(fresh, sizing, request));
      ASSERT_TRUE(solo.back().status.ok()) << solo.back().status.ToString();
    }
  }

  const uint64_t pool_hits_before = f.pool->hit_count();
  const uint64_t pool_misses_before = f.pool->miss_count();

  std::vector<std::future<JoinResponse>> futures;
  for (const JoinRequest& request : requests) {
    futures.push_back(service.Submit(request));
  }
  std::vector<JoinResponse> concurrent;
  for (auto& future : futures) concurrent.push_back(future.get());

  // (a) Byte-identical results to the solo runs.
  for (size_t q = 0; q < requests.size(); ++q) {
    ASSERT_TRUE(concurrent[q].status.ok())
        << concurrent[q].status.ToString();
    ASSERT_EQ(concurrent[q].results.size(), solo[q].results.size())
        << "query " << q;
    for (size_t i = 0; i < concurrent[q].results.size(); ++i) {
      EXPECT_EQ(concurrent[q].results[i], solo[q].results[i])
          << "query " << q << " pair " << i;
    }
  }

  // (b) Exact attribution: per-query sums reconcile with the pool's
  // global counters — every access charged to exactly one query.
  uint64_t sum_accesses = 0, sum_hits = 0, sum_misses = 0;
  for (size_t q = 0; q < requests.size(); ++q) {
    const JoinStats& stats = concurrent[q].stats;
    EXPECT_EQ(stats.node_buffer_hits + stats.node_disk_reads,
              stats.node_accesses)
        << "query " << q;
    // Traversal shape is interleaving-independent; only hit/miss split may
    // differ from the solo run.
    EXPECT_EQ(stats.node_accesses, solo[q].stats.node_accesses)
        << "query " << q;
    sum_accesses += stats.node_accesses;
    sum_hits += stats.node_buffer_hits;
    sum_misses += stats.node_disk_reads;
  }
  EXPECT_EQ(sum_hits, f.pool->hit_count() - pool_hits_before);
  EXPECT_EQ(sum_misses, f.pool->miss_count() - pool_misses_before);
  EXPECT_EQ(sum_accesses, (f.pool->hit_count() - pool_hits_before) +
                              (f.pool->miss_count() - pool_misses_before));

  EXPECT_EQ(service.completed(), requests.size());
  EXPECT_LE(service.peak_inflight(), options.max_inflight);
}

TEST(JoinServiceTest, AdmissionControlBoundsInflight) {
  const geom::Rect uni(0, 0, 10000, 10000);
  test::JoinFixture f = test::MakeFixture(
      workload::UniformPoints(3000, 21, uni),
      workload::UniformPoints(3000, 22, uni), 16, 64);

  JoinService::Options options;
  options.max_inflight = 2;
  JoinService service(*f.r, *f.s, options);

  JoinRequest request;
  request.kind = JoinRequest::Kind::kKdj;
  request.kdj_algorithm = core::KdjAlgorithm::kAmKdj;
  request.k = 1000;
  std::vector<std::future<JoinResponse>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(service.Submit(request));
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().status.ok());
  }
  EXPECT_EQ(service.completed(), 8u);
  EXPECT_LE(service.peak_inflight(), 2u);
  EXPECT_GE(service.peak_inflight(), 1u);
}

TEST(JoinServiceTest, QueueMemoryBudgetIsClampedPerQuery) {
  const geom::Rect uni(0, 0, 1000, 1000);
  test::JoinFixture f = test::MakeFixture(
      workload::UniformPoints(200, 31, uni),
      workload::UniformPoints(200, 32, uni));

  JoinService::Options options;
  options.max_inflight = 4;
  options.queue_memory_budget_bytes = 1024 * 1024;
  JoinService service(*f.r, *f.s, options);
  EXPECT_EQ(service.per_query_queue_memory_bytes(), 256u * 1024);

  JoinRequest greedy;
  greedy.options.queue_memory_bytes = 64 * 1024 * 1024;  // over budget
  EXPECT_EQ(service.EffectiveOptions(greedy).queue_memory_bytes,
            256u * 1024);
  JoinRequest modest;
  modest.options.queue_memory_bytes = 8 * 1024;  // under the clamp: kept
  EXPECT_EQ(service.EffectiveOptions(modest).queue_memory_bytes, 8u * 1024);

  // The floor: a tiny budget over many slots never clamps below the
  // minimum a hybrid queue needs to function.
  options.queue_memory_budget_bytes = 4 * 1024;
  options.max_inflight = 8;
  JoinService tiny(*f.r, *f.s, options);
  EXPECT_EQ(tiny.per_query_queue_memory_bytes(),
            JoinService::kMinQueueMemoryBytes);
}

// A tight per-query budget forces the hybrid queue to spill into the
// session disk; the spill must be invisible in the results and the
// session-scoped disk must not mix segments between concurrent queries.
TEST(JoinServiceTest, SpillingQueriesStayCorrectUnderConcurrency) {
  const workload::Dataset r_data =
      workload::TigerStreets({.street_segments = 4000, .seed = 77});
  const workload::Dataset s_data =
      workload::TigerHydro({.hydro_objects = 1500, .seed = 77});
  test::JoinFixture f = test::MakeFixture(r_data, s_data, 32, 64);

  JoinService::Options options;
  options.max_inflight = 4;
  // 16 KB per query (the floor): guarantees spilling on these workloads.
  options.queue_memory_budget_bytes = 4 * JoinService::kMinQueueMemoryBytes;
  JoinService service(*f.r, *f.s, options);

  JoinRequest request;
  request.kind = JoinRequest::Kind::kKdj;
  request.kdj_algorithm = core::KdjAlgorithm::kHsKdj;  // queue-heaviest
  request.k = 1500;

  // Reference without any service in the picture.
  JoinStats reference_stats;
  core::JoinOptions reference_options = service.EffectiveOptions(request);
  reference_options.queue_disk = f.queue_disk.get();
  auto reference =
      core::RunKDistanceJoin(*f.r, *f.s, request.k, request.kdj_algorithm,
                             reference_options, &reference_stats);
  ASSERT_TRUE(reference.ok());
  ASSERT_GT(reference_stats.queue_page_writes, 0u)
      << "workload must actually spill for this test to bite";

  std::vector<std::future<JoinResponse>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(service.Submit(request));
  for (auto& future : futures) {
    const JoinResponse response = future.get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ASSERT_EQ(response.results.size(), reference->size());
    for (size_t i = 0; i < response.results.size(); ++i) {
      EXPECT_EQ(response.results[i], (*reference)[i]) << "pair " << i;
    }
    EXPECT_GT(response.stats.queue_page_writes, 0u);
  }
}

TEST(JoinServiceTest, IdjStreamsRequestedCardinality) {
  const geom::Rect uni(0, 0, 5000, 5000);
  test::JoinFixture f = test::MakeFixture(
      workload::GaussianClusters(2500, 5, 0.05, 41, uni),
      workload::UniformRects(1200, 25.0, 42, uni));

  JoinService service(*f.r, *f.s, {});
  JoinRequest request;
  request.kind = JoinRequest::Kind::kIdj;
  request.idj_algorithm = core::IdjAlgorithm::kAmIdj;
  request.k = 600;
  const JoinResponse response = service.Run(request);
  ASSERT_TRUE(response.status.ok());
  ASSERT_EQ(response.results.size(), 600u);
  for (size_t i = 1; i < response.results.size(); ++i) {
    EXPECT_GE(response.results[i].distance,
              response.results[i - 1].distance - 1e-12);
  }
  EXPECT_GT(response.stats.node_accesses, 0u);
  EXPECT_EQ(response.stats.node_buffer_hits + response.stats.node_disk_reads,
            response.stats.node_accesses);
}

TEST(JoinServiceTest, MaxQueuedRejectsWithReadyResourceExhaustedFuture) {
  const workload::Dataset r_data = workload::UniformPoints(3000, 41);
  const workload::Dataset s_data = workload::UniformPoints(3000, 42);
  test::JoinFixture f = test::MakeFixture(r_data, s_data, 32, 64);

  JoinService::Options options;
  options.max_inflight = 1;
  options.max_queued = 1;
  JoinService service(*f.r, *f.s, options);

  JoinRequest request;
  request.kdj_algorithm = core::KdjAlgorithm::kAmKdj;
  request.k = 2000;  // ms-scale on this data: submits outrun completions

  constexpr size_t kSubmits = 12;
  std::vector<std::future<JoinResponse>> futures;
  futures.reserve(kSubmits);
  for (size_t i = 0; i < kSubmits; ++i) futures.push_back(service.Submit(request));

  size_t rejected = 0;
  size_t accepted_ok = 0;
  for (auto& future : futures) {
    JoinResponse response = future.get();
    if (response.status.code() == StatusCode::kResourceExhausted) {
      ++rejected;
      EXPECT_TRUE(response.results.empty());
    } else {
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      EXPECT_EQ(response.results.size(), 2000u);
      EXPECT_GT(response.exec_seconds, 0.0);
      ++accepted_ok;
    }
  }
  // With one worker and one queue slot, a tight 12-submit loop must bounce
  // off the cap; the first request is always admitted.
  EXPECT_GE(rejected, 1u);
  EXPECT_GE(accepted_ok, 1u);
  EXPECT_EQ(service.rejected(), rejected);
  EXPECT_EQ(service.completed(), accepted_ok);

  // A rejection must not block: a fresh one resolves immediately.
  // (The pool is idle now, so refill the queue first.)
  std::vector<std::future<JoinResponse>> refill;
  for (size_t i = 0; i < 4; ++i) refill.push_back(service.Submit(request));
  for (auto& future : refill) (void)future.get();
}

// Regression: the IDJ path used to reserve(request.k) with the
// caller-controlled k — k = UINT64_MAX threw std::length_error out of the
// worker, violating the "future never carries an exception" contract. The
// reserve is now clamped; a huge k simply streams until the data runs out.
TEST(JoinServiceTest, HugeKRequestReturnsCleanStatusInsteadOfThrowing) {
  const geom::Rect uni(0, 0, 1000, 1000);
  test::JoinFixture f = test::MakeFixture(
      workload::UniformPoints(25, 91, uni),
      workload::UniformPoints(25, 92, uni), 8, 64);

  JoinService service(*f.r, *f.s, {});

  JoinRequest idj;
  idj.kind = JoinRequest::Kind::kIdj;
  idj.idj_algorithm = core::IdjAlgorithm::kAmIdj;
  idj.k = UINT64_MAX;
  std::future<JoinResponse> future = service.Submit(idj);
  JoinResponse response;
  ASSERT_NO_THROW(response = future.get());
  ASSERT_TRUE(response.status.ok() ||
              response.status.code() == StatusCode::kResourceExhausted)
      << response.status.ToString();
  // 25 x 25 objects: the stream drains the full cross product, no more.
  EXPECT_EQ(response.results.size(), 625u);

  JoinRequest kdj;
  kdj.kind = JoinRequest::Kind::kKdj;
  kdj.k = UINT64_MAX;
  ASSERT_NO_THROW(response = service.Run(kdj));
  ASSERT_TRUE(response.status.ok() ||
              response.status.code() == StatusCode::kResourceExhausted)
      << response.status.ToString();
  EXPECT_EQ(response.results.size(), 625u);
}

// EffectiveOptions is documented as "the options a request will actually
// execute under" — for sharded KDJ requests that must include the
// per-pair shard_threads division, not just the admission clamp.
TEST(JoinServiceTest, EffectiveOptionsReflectsShardedClampAndReproduces) {
  const workload::Dataset r_data =
      workload::TigerStreets({.street_segments = 3000, .seed = 93});
  const workload::Dataset s_data =
      workload::TigerHydro({.hydro_objects = 1200, .seed = 93});
  test::JoinFixture f = test::MakeFixture(r_data, s_data, 16, 64);

  JoinService::Options options;
  options.max_inflight = 2;
  options.queue_memory_budget_bytes = 1024 * 1024;  // 512 KB per query
  options.shards = 4;
  options.shard_threads = 2;
  JoinService service(*f.r, *f.s, options);

  JoinRequest sharded;
  sharded.kdj_algorithm = core::KdjAlgorithm::kAmKdj;
  sharded.k = 800;
  sharded.options.queue_memory_bytes = 64 * 1024 * 1024;
  // Clamped to the per-query budget, then divided across shard threads.
  EXPECT_EQ(service.EffectiveOptions(sharded).queue_memory_bytes,
            512u * 1024 / 2);

  // Non-shardable requests see only the admission clamp.
  JoinRequest hs = sharded;
  hs.kdj_algorithm = core::KdjAlgorithm::kHsKdj;
  EXPECT_EQ(service.EffectiveOptions(hs).queue_memory_bytes, 512u * 1024);
  JoinRequest idj = sharded;
  idj.kind = JoinRequest::Kind::kIdj;
  EXPECT_EQ(service.EffectiveOptions(idj).queue_memory_bytes, 512u * 1024);

  // The floor survives the division.
  JoinService::Options tiny = options;
  tiny.queue_memory_budget_bytes = 2 * JoinService::kMinQueueMemoryBytes;
  JoinService tiny_service(*f.r, *f.s, tiny);
  EXPECT_EQ(tiny_service.EffectiveOptions(sharded).queue_memory_bytes,
            JoinService::kMinQueueMemoryBytes);

  // Solo reproduction: a 1-inflight service whose per-query budget equals
  // the concurrent service's must execute under the same effective
  // options and return byte-identical results.
  const JoinResponse concurrent = service.Run(sharded);
  ASSERT_TRUE(concurrent.status.ok()) << concurrent.status.ToString();
  JoinService::Options solo_options = options;
  solo_options.max_inflight = 1;
  solo_options.queue_memory_budget_bytes =
      service.per_query_queue_memory_bytes();
  JoinService solo(*f.r, *f.s, solo_options);
  EXPECT_EQ(solo.EffectiveOptions(sharded).queue_memory_bytes,
            service.EffectiveOptions(sharded).queue_memory_bytes);
  const JoinResponse reproduced = solo.Run(sharded);
  ASSERT_TRUE(reproduced.status.ok()) << reproduced.status.ToString();
  ASSERT_EQ(reproduced.results.size(), concurrent.results.size());
  for (size_t i = 0; i < reproduced.results.size(); ++i) {
    EXPECT_EQ(reproduced.results[i], concurrent.results[i]) << "pair " << i;
  }
}

// Admission counter reconciliation: `accepted == completed + inflight +
// queued` is an invariant of every critical section, so it must hold at
// EVERY concurrently sampled instant — not just at quiescence.
TEST(JoinServiceTest, AdmissionCountersReconcileUnderConcurrentBurst) {
  const geom::Rect uni(0, 0, 10000, 10000);
  test::JoinFixture f = test::MakeFixture(
      workload::UniformPoints(2000, 95, uni),
      workload::UniformPoints(2000, 96, uni), 16, 64);

  JoinService::Options options;
  options.max_inflight = 2;
  options.max_queued = 3;
  JoinService service(*f.r, *f.s, options);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> samples{0};
  std::thread sampler([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const JoinService::AdmissionSnapshot s = service.admission_snapshot();
      EXPECT_EQ(s.accepted,
                s.completed + s.inflight + s.queued)
          << "accepted=" << s.accepted << " completed=" << s.completed
          << " inflight=" << s.inflight << " queued=" << s.queued;
      samples.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  JoinRequest request;
  request.kdj_algorithm = core::KdjAlgorithm::kAmKdj;
  request.k = 500;
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 30;
  std::vector<std::thread> submitters;
  std::atomic<uint64_t> rejected_seen{0};
  std::atomic<uint64_t> ok_seen{0};
  for (size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (size_t i = 0; i < kPerThread; ++i) {
        std::future<JoinResponse> future = service.Submit(request);
        const JoinResponse response = future.get();
        if (response.status.code() == StatusCode::kResourceExhausted) {
          rejected_seen.fetch_add(1);
        } else {
          ASSERT_TRUE(response.status.ok()) << response.status.ToString();
          ok_seen.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();
  stop.store(true);
  sampler.join();

  EXPECT_GT(samples.load(), 0u);
  const JoinService::AdmissionSnapshot final = service.admission_snapshot();
  EXPECT_EQ(final.accepted, final.completed);
  EXPECT_EQ(final.inflight, 0u);
  EXPECT_EQ(final.queued, 0u);
  EXPECT_EQ(final.accepted + final.rejected, kThreads * kPerThread);
  EXPECT_EQ(final.completed, ok_seen.load());
  EXPECT_EQ(final.rejected, rejected_seen.load());
  EXPECT_EQ(service.rejected(), rejected_seen.load());

  // A rejected submission's future is ready immediately.
  JoinService::Options no_room = options;
  no_room.max_inflight = 1;
  no_room.max_queued = 1;
  JoinService crowded(*f.r, *f.s, no_room);
  JoinRequest slow = request;
  slow.k = 2000;
  std::vector<std::future<JoinResponse>> backlog;
  for (int i = 0; i < 10; ++i) backlog.push_back(crowded.Submit(slow));
  bool saw_instant_rejection = false;
  for (auto& future : backlog) {
    if (future.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      const JoinResponse response = future.get();
      if (response.status.code() == StatusCode::kResourceExhausted) {
        saw_instant_rejection = true;
      }
    } else {
      (void)future.get();
    }
  }
  EXPECT_TRUE(saw_instant_rejection)
      << "rejections must resolve without waiting";
}

TEST(JoinServiceTest, SlowQueryThresholdCountsAndReportsEveryQuery) {
  const workload::Dataset r_data = workload::UniformPoints(500, 51);
  const workload::Dataset s_data = workload::UniformPoints(500, 52);
  test::JoinFixture f = test::MakeFixture(r_data, s_data, 32, 64);

  Counter* slow = MetricsRegistry::Global()->GetCounter(
      "amdj_service_slow_queries_total");
  const uint64_t before = slow->Value();

  JoinService::Options options;
  options.max_inflight = 2;
  options.slow_query_seconds = 1e-9;  // everything is "slow"
  JoinService service(*f.r, *f.s, options);

  JoinRequest request;
  request.k = 100;
  const JoinResponse kdj = service.Run(request);
  ASSERT_TRUE(kdj.status.ok()) << kdj.status.ToString();
  EXPECT_GT(kdj.exec_seconds, 0.0);

  JoinRequest idj;
  idj.kind = JoinRequest::Kind::kIdj;
  idj.k = 100;
  const JoinResponse idj_resp = service.Run(idj);
  ASSERT_TRUE(idj_resp.status.ok()) << idj_resp.status.ToString();

  EXPECT_EQ(slow->Value(), before + 2);

  // Threshold off: nothing counted.
  JoinService::Options quiet = options;
  quiet.slow_query_seconds = 0.0;
  JoinService quiet_service(*f.r, *f.s, quiet);
  (void)quiet_service.Run(request);
  EXPECT_EQ(slow->Value(), before + 2);
}

}  // namespace
}  // namespace amdj

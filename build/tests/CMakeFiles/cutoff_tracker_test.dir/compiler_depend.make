# Empty compiler generated dependencies file for cutoff_tracker_test.
# This may be replaced when dependencies are built.

#ifndef AMDJ_COMMON_MUTEX_H_
#define AMDJ_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/annotations.h"

namespace amdj {

/// Annotated wrapper over std::mutex: the capability the thread-safety
/// analysis tracks (common/annotations.h). Every concurrent component in
/// this codebase guards its shared state with one of these plus
/// AMDJ_GUARDED_BY on each protected field, so lock misuse is a build
/// error under Clang (-Werror=thread-safety) instead of a sanitizer
/// finding. Zero overhead: the wrapper is exactly a std::mutex.
///
/// Prefer MutexLock over manual Lock/Unlock; the scoped form cannot leak a
/// held lock past a return path.
class AMDJ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() AMDJ_ACQUIRE() { mu_.lock(); }
  void Unlock() AMDJ_RELEASE() { mu_.unlock(); }
  bool TryLock() AMDJ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for interop with std primitives (CondVar). Using it
  /// to lock around the analysis defeats the contract — don't.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock over an amdj::Mutex (annotated std::lock_guard equivalent).
/// Scoped capability: the analysis knows the mutex is held between
/// construction and destruction, so AMDJ_GUARDED_BY fields are accessible
/// in that window and a forgotten unlock is structurally impossible.
class AMDJ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) AMDJ_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() AMDJ_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with amdj::Mutex. The annotation contract on
/// Wait* is that the mutex is held across the call — the analysis does not
/// model the internal unlock/relock, which is safe: the predicate and all
/// guarded accesses around the wait really do run under the lock.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. `mu` must be held; it is atomically released
  /// while blocked and re-held on return. Spurious wakeups possible — use
  /// the predicate overload.
  void Wait(Mutex* mu) AMDJ_REQUIRES(mu) {
    // The analysis sees the lock as continuously held (correct from the
    // caller's perspective); hand the real handle to the std wait and give
    // it back without touching the capability state.
    std::unique_lock<std::mutex> lock(mu->native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Blocks until `pred()` holds (evaluated under the lock).
  template <typename Pred>
  void Wait(Mutex* mu, Pred pred) AMDJ_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace amdj

#endif  // AMDJ_COMMON_MUTEX_H_

# Serve-mode metrics exposition tests:
#  - metrics flag validation (unknown --metrics-* flags, non-positive
#    --metrics-interval-ms, --metrics-interval-ms without --metrics-json,
#    valueless --metrics-json) must exit with a usage error (code 2)
#    BEFORE any dataset I/O happens;
#  - the stdin control channel answers `metrics` with a valid JSON
#    snapshot and `metrics-prom` with Prometheus text, and a bad request
#    line is non-fatal;
#  - --metrics-json leaves an atomic JSON snapshot file behind on exit.

function(expect_rejected pattern)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err
                  WORKING_DIRECTORY ${WORK_DIR})
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR
        "expected usage-error exit 2, got ${rc}: ${ARGN}\n${out}${err}")
  endif()
  if(NOT err MATCHES "${pattern}")
    message(FATAL_ERROR
        "expected '${pattern}' in stderr of: ${ARGN}\n${out}${err}")
  endif()
endfunction()

function(expect_ok)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err
                  WORKING_DIRECTORY ${WORK_DIR})
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}${err}")
  endif()
endfunction()

# --- flag validation fires before dataset I/O: the datasets do not exist,
# so reaching the loader would fail with a different error/exit code.
set(ABSENT ${CLI} serve --r=absent_r.ds --s=absent_s.ds)
expect_rejected("unknown flag --metrics-port" ${ABSENT} --metrics-port=9090)
expect_rejected("unknown flag --metrics-fmt" ${ABSENT} --metrics-fmt=json)
expect_rejected("must be a positive integer"
                ${ABSENT} --metrics-json=m.json --metrics-interval-ms=0)
expect_rejected("must be a positive integer"
                ${ABSENT} --metrics-json=m.json --metrics-interval-ms=-50)
expect_rejected("must be a positive integer"
                ${ABSENT} --metrics-json=m.json --metrics-interval-ms=soon)
expect_rejected("requires --metrics-json" ${ABSENT} --metrics-interval-ms=100)
expect_rejected("needs a file path" ${ABSENT} --metrics-json=)
expect_rejected("needs a file path" ${ABSENT} --metrics-json)

# --- happy path: control channel + exporter.
expect_ok(${CLI} generate --kind=uniform --n=800 --seed=21
          --out=metrics_r.ds)
expect_ok(${CLI} generate --kind=uniform --n=800 --seed=22
          --out=metrics_s.ds)

file(WRITE ${WORK_DIR}/metrics_control.txt
"kdj am 40
metrics
this is not a request
idj hs 10
metrics-prom
quit
")

execute_process(COMMAND ${CLI} serve --r=metrics_r.ds --s=metrics_s.ds
                        --max-queued=8 --metrics-json=metrics_out.json
                        --metrics-interval-ms=100
                INPUT_FILE ${WORK_DIR}/metrics_control.txt
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err
                WORKING_DIRECTORY ${WORK_DIR})
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve failed (${rc}):\n${out}${err}")
endif()

# Both requests ran; the bad line was reported on stderr and skipped.
if(NOT out MATCHES "line 1  40 pairs")
  message(FATAL_ERROR "missing kdj result in serve output:\n${out}")
endif()
if(NOT out MATCHES "line 4  10 pairs")
  message(FATAL_ERROR "missing idj result in serve output:\n${out}")
endif()
if(NOT err MATCHES "bad request line 3")
  message(FATAL_ERROR "bad line was not reported non-fatally:\n${err}")
endif()

# `metrics` answered with the JSON snapshot schema and live series.
if(NOT out MATCHES "\"schema\":\"amdj-metrics-v1\"")
  message(FATAL_ERROR "metrics command did not print the snapshot:\n${out}")
endif()
if(NOT out MATCHES "amdj_service_completed_total")
  message(FATAL_ERROR "snapshot is missing service counters:\n${out}")
endif()

# `metrics-prom` answered with Prometheus exposition text.
if(NOT out MATCHES "# TYPE amdj_service_requests_total counter")
  message(FATAL_ERROR "metrics-prom did not print TYPE lines:\n${out}")
endif()
if(NOT out MATCHES "amdj_service_query_latency_ns{[^}]*quantile=\"0.99\"")
  message(FATAL_ERROR "metrics-prom is missing latency quantiles:\n${out}")
endif()

# The exporter left a parseable shutdown snapshot behind (write-then-rename,
# so no .tmp leftover is expected either).
if(NOT EXISTS ${WORK_DIR}/metrics_out.json)
  message(FATAL_ERROR "--metrics-json did not write metrics_out.json")
endif()
file(READ ${WORK_DIR}/metrics_out.json snapshot)
if(NOT snapshot MATCHES "\"schema\":\"amdj-metrics-v1\"")
  message(FATAL_ERROR "exported snapshot is not a metrics JSON:\n${snapshot}")
endif()
if(NOT snapshot MATCHES "amdj_service_completed_total\",\"labels\":\"\",\"value\":2")
  message(FATAL_ERROR
      "shutdown snapshot should count both completed queries:\n${snapshot}")
endif()

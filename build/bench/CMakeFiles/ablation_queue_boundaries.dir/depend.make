# Empty dependencies file for ablation_queue_boundaries.
# This may be replaced when dependencies are built.

#include "common/metrics.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace amdj {

namespace metrics_internal {

namespace {

bool EnabledFromEnv() {
  const char* value = std::getenv("AMDJ_METRICS");
  if (value == nullptr) return true;
  return !(std::strcmp(value, "0") == 0 || std::strcmp(value, "false") == 0 ||
           std::strcmp(value, "off") == 0);
}

}  // namespace

std::atomic<bool> g_enabled{EnabledFromEnv()};
std::atomic<size_t> g_next_thread_slot{0};

}  // namespace metrics_internal

void SetMetricsEnabled(bool enabled) {
  metrics_internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram bucket geometry

namespace {

/// Index of the most significant set bit (value must be non-zero).
inline int MsbIndex(uint64_t value) {
#if defined(__GNUC__) || defined(__clang__)
  return 63 - __builtin_clzll(value);
#else
  int index = 0;
  while (value >>= 1) ++index;
  return index;
#endif
}

}  // namespace

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < 16) return static_cast<size_t>(value);  // exact unit buckets
  const int octave = MsbIndex(value);                 // >= kSubBits
  const uint64_t sub = (value >> (octave - kSubBits)) & 15u;
  return 16 + static_cast<size_t>(octave - kSubBits) * 16 +
         static_cast<size_t>(sub);
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  if (index < 16) return static_cast<uint64_t>(index);
  const size_t block = (index - 16) / 16;
  const size_t sub = (index - 16) % 16;
  const int octave = static_cast<int>(block) + kSubBits;
  return (uint64_t{1} << octave) +
         static_cast<uint64_t>(sub) * (uint64_t{1} << (octave - kSubBits));
}

uint64_t Histogram::BucketWidth(size_t index) {
  if (index < 16) return 1;
  const size_t block = (index - 16) / 16;
  const int octave = static_cast<int>(block) + kSubBits;
  return uint64_t{1} << (octave - kSubBits);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  snap.buckets.resize(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    snap.buckets[i] = c;
    snap.count += c;
  }
  for (const auto& s : sum_shards_) {
    snap.sum += s.v.load(std::memory_order_relaxed);
  }
  return snap;
}

double Histogram::Snapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Exact rank over the snapshot: the smallest value v such that at least
  // ceil(q * count) observations are <= v, resolved to its bucket.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      // Midpoint halves the worst-case error vs. either edge; width <=
      // lower_bound / 16, so relative error <= 1/32.
      return static_cast<double>(BucketLowerBound(i)) +
             static_cast<double>(BucketWidth(i)) / 2.0;
    }
  }
  return static_cast<double>(BucketLowerBound(buckets.size() - 1));
}

uint64_t Histogram::Snapshot::MaxUpperBound() const {
  for (size_t i = buckets.size(); i > 0; --i) {
    if (buckets[i - 1] != 0) {
      return BucketLowerBound(i - 1) + BucketWidth(i - 1);
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& labels,
                                     const std::string& help) {
  const MutexLock lock(&mu_);
  Entry<Counter>& entry = counters_[Key{name, labels}];
  if (entry.metric == nullptr) {
    entry.metric = std::unique_ptr<Counter>(new Counter());
    entry.help = help;
  }
  return entry.metric.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& labels,
                                 const std::string& help) {
  const MutexLock lock(&mu_);
  Entry<Gauge>& entry = gauges_[Key{name, labels}];
  if (entry.metric == nullptr) {
    entry.metric = std::unique_ptr<Gauge>(new Gauge());
    entry.help = help;
  }
  return entry.metric.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& labels,
                                         const std::string& help) {
  const MutexLock lock(&mu_);
  Entry<Histogram>& entry = histograms_[Key{name, labels}];
  if (entry.metric == nullptr) {
    entry.metric = std::unique_ptr<Histogram>(new Histogram());
    entry.help = help;
  }
  return entry.metric.get();
}

namespace {

/// `name{labels}` or bare `name`; `extra` appends one more label pair.
std::string Identity(const std::string& name, const std::string& labels,
                     const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return name;
  std::string joined = labels;
  if (!extra.empty()) {
    if (!joined.empty()) joined += ",";
    joined += extra;
  }
  return name + "{" + joined + "}";
}

void AppendFamilyHeader(std::ostringstream* out, const std::string& name,
                        const std::string& type, const std::string& help,
                        std::string* last_family) {
  if (*last_family == name) return;  // one header per family
  *last_family = name;
  if (!help.empty()) *out << "# HELP " << name << " " << help << "\n";
  *out << "# TYPE " << name << " " << type << "\n";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::ToPrometheusText() const {
  const MutexLock lock(&mu_);
  std::ostringstream out;
  std::string last_family;
  for (const auto& [key, entry] : counters_) {
    AppendFamilyHeader(&out, key.name, "counter", entry.help, &last_family);
    out << Identity(key.name, key.labels) << " " << entry.metric->Value()
        << "\n";
  }
  last_family.clear();
  for (const auto& [key, entry] : gauges_) {
    AppendFamilyHeader(&out, key.name, "gauge", entry.help, &last_family);
    out << Identity(key.name, key.labels) << " " << entry.metric->Value()
        << "\n";
  }
  last_family.clear();
  for (const auto& [key, entry] : histograms_) {
    AppendFamilyHeader(&out, key.name, "summary", entry.help, &last_family);
    const Histogram::Snapshot snap = entry.metric->TakeSnapshot();
    const struct {
      const char* label;
      double q;
    } quantiles[] = {{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99},
                     {"0.999", 0.999}};
    for (const auto& quantile : quantiles) {
      out << Identity(key.name, key.labels,
                      std::string("quantile=\"") + quantile.label + "\"")
          << " " << FormatDouble(snap.Percentile(quantile.q)) << "\n";
    }
    out << Identity(key.name + "_sum", key.labels) << " " << snap.sum << "\n";
    out << Identity(key.name + "_count", key.labels) << " " << snap.count
        << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::ToJson() const {
  const MutexLock lock(&mu_);
  std::ostringstream out;
  out << "{\"schema\":\"amdj-metrics-v1\",\"enabled\":"
      << (MetricsEnabled() ? "true" : "false");
  out << ",\"counters\":[";
  bool first = true;
  for (const auto& [key, entry] : counters_) {
    out << (first ? "" : ",") << "{\"name\":\"" << JsonEscape(key.name)
        << "\",\"labels\":\"" << JsonEscape(key.labels)
        << "\",\"value\":" << entry.metric->Value() << "}";
    first = false;
  }
  out << "],\"gauges\":[";
  first = true;
  for (const auto& [key, entry] : gauges_) {
    out << (first ? "" : ",") << "{\"name\":\"" << JsonEscape(key.name)
        << "\",\"labels\":\"" << JsonEscape(key.labels)
        << "\",\"value\":" << entry.metric->Value() << "}";
    first = false;
  }
  out << "],\"histograms\":[";
  first = true;
  for (const auto& [key, entry] : histograms_) {
    const Histogram::Snapshot snap = entry.metric->TakeSnapshot();
    out << (first ? "" : ",") << "{\"name\":\"" << JsonEscape(key.name)
        << "\",\"labels\":\"" << JsonEscape(key.labels)
        << "\",\"count\":" << snap.count << ",\"sum\":" << snap.sum
        << ",\"p50\":" << FormatDouble(snap.Percentile(0.5))
        << ",\"p95\":" << FormatDouble(snap.Percentile(0.95))
        << ",\"p99\":" << FormatDouble(snap.Percentile(0.99))
        << ",\"p999\":" << FormatDouble(snap.Percentile(0.999))
        << ",\"max_le\":" << snap.MaxUpperBound() << "}";
    first = false;
  }
  out << "]}";
  return out.str();
}

}  // namespace amdj

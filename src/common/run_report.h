#ifndef AMDJ_COMMON_RUN_REPORT_H_
#define AMDJ_COMMON_RUN_REPORT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"

namespace amdj {

/// Structured per-phase summary of one join run, fed by the same
/// instrumentation points as the tracer (see common/trace.h) but folded
/// into an aggregate instead of an event stream:
///
///   - one Phase per algorithm stage (B-KDJ "search", AM-KDJ
///     "aggressive"/"compensation", AM-IDJ "stage-N", SJ-SORT
///     "spatial-join"/"sort"/"emit"), with wall time and the JoinStats
///     counter *deltas* incurred during that phase — additive deltas sum
///     to the run's flat totals when the JoinStats started at zero;
///   - the cutoff trajectory: initial eDmax estimate, runtime corrections
///     and stage cutoffs, final Dmax (all in distance space);
///   - per-phase main-queue depth high-water marks.
///
/// Serialized as JSON (ToJson) and as an aligned human table (ToTable).
///
/// Threading: all methods must be called from the coordinating thread (the
/// one running the join loop). The parallel executor only transitions
/// phases between rounds, when workers are quiescent, so reading the
/// shared JoinStats at a phase boundary is race-free. OnQueueDepth is the
/// one hot-path hook (called per main-queue push, coordinator-only); it is
/// a compare-and-update, nothing more.
///
/// Reuse: a RunReport accumulates exactly one run. RunKDistanceJoin /
/// the IDJ cursor call Finish() automatically when one is attached via
/// JoinOptions::report.
class RunReport {
 public:
  struct CutoffPoint {
    std::string label;       ///< e.g. "initial_edmax", "correction", "qdmax".
    double distance = 0.0;   ///< Distance space (not metric key).
    uint64_t pairs_so_far = 0;
  };

  struct Phase {
    std::string name;
    double wall_seconds = 0.0;
    JoinStats delta;             ///< Counter deltas incurred in this phase.
    uint64_t queue_depth_peak = 0;  ///< Main-queue high water within phase.
  };

  /// Labels the run (shown in the serializations). Optional.
  void SetMeta(const std::string& algorithm, uint64_t k);

  /// Ends any open phase and begins a new one; `stats` is the live
  /// counter block whose delta the phase will report.
  void BeginPhase(const std::string& name, const JoinStats& stats);

  /// Ends the open phase (no-op when none is open).
  void EndPhase(const JoinStats& stats);

  /// Records one point of the cutoff trajectory, in distance space. The
  /// trajectory keeps the first kMaxTrajectory points plus the final one;
  /// the drop count is reported so truncation is never silent.
  void OnCutoff(const char* label, double distance, uint64_t pairs_so_far);

  /// Main-queue depth sample; maintains the open phase's high-water mark.
  void OnQueueDepth(uint64_t depth) {
    if (depth > queue_peak_) queue_peak_ = depth;
  }

  /// Closes any open phase and snapshots the run totals. Idempotent: the
  /// first call wins for phases; totals are re-snapshotted every call so
  /// late additions (cpu_seconds, simulated I/O) are picked up.
  void Finish(const JoinStats& stats);

  const std::vector<Phase>& phases() const { return phases_; }
  const std::vector<CutoffPoint>& cutoff_trajectory() const {
    return trajectory_;
  }
  const JoinStats& totals() const { return totals_; }

  /// Full report as a JSON object: meta, phases (with per-field counter
  /// deltas via JoinStats::ToJson), cutoff trajectory, totals.
  std::string ToJson() const;

  /// Aligned human-readable table: one column per phase plus a totals
  /// column, one row per non-zero counter, then the cutoff trajectory.
  std::string ToTable() const;

  /// Convenience: writes ToJson() (plus a trailing newline) to `path`.
  Status WriteJsonFile(const std::string& path) const;

  static constexpr size_t kMaxTrajectory = 256;

 private:
  std::string algorithm_;
  uint64_t k_ = 0;
  std::vector<Phase> phases_;
  std::vector<CutoffPoint> trajectory_;
  uint64_t trajectory_dropped_ = 0;
  JoinStats totals_;
  bool finished_ = false;

  // Open-phase state.
  bool phase_open_ = false;
  std::string open_name_;
  JoinStats open_begin_;
  std::chrono::steady_clock::time_point open_start_;
  uint64_t queue_peak_ = 0;
};

}  // namespace amdj

#endif  // AMDJ_COMMON_RUN_REPORT_H_

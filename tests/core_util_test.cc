// Units for the small core plumbing: pair entries, expansion helpers,
// stats accounting, cost model, logging and the timer.

#include <type_traits>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/stats.h"
#include "common/timer.h"
#include "core/cost_model.h"
#include "core/expansion.h"
#include "core/pair_entry.h"
#include "test_util.h"
#include "workload/generators.h"

namespace amdj::core {
namespace {

using geom::Rect;

TEST(PairEntryTest, IsTriviallyCopyableForDiskSpill) {
  static_assert(std::is_trivially_copyable_v<PairEntry>,
                "PairEntry must memcpy-serialize for the hybrid queue");
  static_assert(std::is_trivially_copyable_v<ResultPair>,
                "ResultPair must memcpy-serialize for the external sorter");
}

TEST(PairEntryTest, MakePairComputesMetricKey) {
  PairRef r, s;
  r.rect = Rect(0, 0, 1, 1);
  s.rect = Rect(4, 5, 6, 7);
  // L2 keys are squared distances (dx=3, dy=4 -> 25); L1/LInf keys are the
  // distances themselves.
  EXPECT_DOUBLE_EQ(MakePair(r, s).key.raw(), 25.0);
  EXPECT_DOUBLE_EQ(MakePair(r, s, geom::Metric::kL1).key.raw(), 7.0);
  EXPECT_DOUBLE_EQ(MakePair(r, s, geom::Metric::kLInf).key.raw(), 4.0);
}

TEST(PairEntryTest, CompareOrdersByKeyThenObjectness) {
  auto make = [](double d, bool objects, uint32_t rid) {
    PairEntry e;
    e.key = geom::KeyVal(d);
    e.r.kind = objects ? RefKind::kObject : RefKind::kNode;
    e.s.kind = e.r.kind;
    e.r.id = rid;
    return e;
  };
  PairEntryCompare less;
  EXPECT_TRUE(less(make(1.0, false, 0), make(2.0, true, 0)));
  // Equal distance: object pairs first.
  EXPECT_TRUE(less(make(1.0, true, 0), make(1.0, false, 0)));
  EXPECT_FALSE(less(make(1.0, false, 0), make(1.0, true, 0)));
  // Full tie: ids decide, deterministically.
  EXPECT_TRUE(less(make(1.0, true, 1), make(1.0, true, 2)));
  EXPECT_FALSE(less(make(1.0, true, 2), make(1.0, true, 1)));
}

TEST(PairEntryTest, SelfPairDetection) {
  PairRef obj_a, obj_b, node_a;
  obj_a.kind = RefKind::kObject;
  obj_a.id = 7;
  obj_b.kind = RefKind::kObject;
  obj_b.id = 7;
  node_a.kind = RefKind::kNode;
  node_a.id = 7;
  EXPECT_TRUE(IsSelfPair(obj_a, obj_b));
  obj_b.id = 8;
  EXPECT_FALSE(IsSelfPair(obj_a, obj_b));
  EXPECT_FALSE(IsSelfPair(obj_a, node_a));  // node id space is unrelated
}

TEST(PairEntryTest, ToStringMentionsKindAndBookkeeping) {
  PairRef r, s;
  r.kind = RefKind::kNode;
  r.id = 3;
  s.kind = RefKind::kObject;
  s.id = 9;
  PairEntry e = MakePair(r, s);
  EXPECT_NE(e.ToString().find("node 3"), std::string::npos);
  EXPECT_NE(e.ToString().find("obj 9"), std::string::npos);
  EXPECT_EQ(e.ToString().find("prior_cutoff"), std::string::npos);
  e.prior_cutoff = geom::KeyVal(5.0);
  EXPECT_NE(e.ToString().find("prior_cutoff"), std::string::npos);
}

TEST(ExpansionTest, RootRefAndChildren) {
  const Rect uni(0, 0, 100, 100);
  test::JoinFixture f =
      test::MakeFixture(workload::UniformPoints(100, 7, uni),
                        workload::UniformPoints(50, 8, uni), 6);
  const PairRef root = RootRef(*f.r);
  EXPECT_FALSE(root.IsObject());
  EXPECT_EQ(root.id, f.r->root());
  EXPECT_EQ(root.level, f.r->height() - 1);
  EXPECT_EQ(root.rect, f.r->bounds());

  std::vector<PairRef> children;
  ASSERT_TRUE(FetchChildren(*f.r, root, &children).ok());
  ASSERT_FALSE(children.empty());
  for (const PairRef& c : children) {
    EXPECT_TRUE(root.rect.Contains(c.rect));
    if (root.level == 0) {
      EXPECT_TRUE(c.IsObject());
    } else {
      EXPECT_FALSE(c.IsObject());
      EXPECT_EQ(c.level, root.level - 1);
    }
  }

  // ChildList of an object is the object itself.
  PairRef object;
  object.kind = RefKind::kObject;
  object.id = 42;
  object.rect = Rect(1, 1, 2, 2);
  ASSERT_TRUE(ChildList(*f.r, object, &children).ok());
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0].id, 42u);
}

TEST(JoinStatsTest, AddAccumulatesAndPeakTakesMax) {
  JoinStats a, b;
  a.real_distance_computations = 10;
  a.main_queue_peak_size = 100;
  a.cpu_seconds = 1.5;
  b.real_distance_computations = 5;
  b.main_queue_peak_size = 70;
  b.cpu_seconds = 0.5;
  a.Add(b);
  EXPECT_EQ(a.real_distance_computations, 15u);
  EXPECT_EQ(a.main_queue_peak_size, 100u);
  EXPECT_DOUBLE_EQ(a.cpu_seconds, 2.0);
  a.Reset();
  EXPECT_EQ(a.real_distance_computations, 0u);
  EXPECT_EQ(a.cpu_seconds, 0.0);
}

TEST(JoinStatsTest, DerivedMetrics) {
  JoinStats s;
  s.real_distance_computations = 3;
  s.axis_distance_computations = 4;
  s.cpu_seconds = 1.0;
  s.simulated_io_seconds = 2.0;
  EXPECT_EQ(s.total_distance_computations(), 7u);
  EXPECT_DOUBLE_EQ(s.response_seconds(), 3.0);
  EXPECT_NE(s.ToString().find("real_distance_computations: 3"),
            std::string::npos);
}

TEST(CostModelTest, ChargesPerBandwidthClass) {
  core::CostModel model;  // 0.5 MB/s random, 5 MB/s sequential
  storage::DiskStats d;
  d.random_reads = 128;  // 128 * 4 KB = 0.5 MB -> 1 s
  EXPECT_NEAR(model.Seconds(d), 1.0, 1e-9);
  d.random_reads = 0;
  d.sequential_reads = 1280;  // 5 MB sequential -> 1 s
  EXPECT_NEAR(model.Seconds(d), 1.0, 1e-9);
  d.sequential_writes = 1280;  // writes count the same
  EXPECT_NEAR(model.Seconds(d), 2.0, 1e-9);
}

TEST(CostModelTest, DeltaSubtractsCounters) {
  storage::DiskStats before, after;
  before.page_reads = 10;
  before.random_reads = 4;
  after.page_reads = 25;
  after.random_reads = 9;
  const storage::DiskStats d = core::CostModel::Delta(before, after);
  EXPECT_EQ(d.page_reads, 15u);
  EXPECT_EQ(d.random_reads, 5u);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  const double before_reset = t.ElapsedSeconds();
  t.Reset();
  EXPECT_LE(t.ElapsedSeconds(), before_reset + 1.0);
}

TEST(LoggingTest, LevelGateWorks) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // These must simply not crash (output goes to stderr).
  AMDJ_LOG(kDebug) << "suppressed";
  AMDJ_LOG(kError) << "emitted";
  SetLogLevel(original);
}

}  // namespace
}  // namespace amdj::core

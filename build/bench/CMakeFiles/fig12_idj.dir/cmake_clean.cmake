file(REMOVE_RECURSE
  "CMakeFiles/fig12_idj.dir/fig12_idj.cc.o"
  "CMakeFiles/fig12_idj.dir/fig12_idj.cc.o.d"
  "fig12_idj"
  "fig12_idj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_idj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

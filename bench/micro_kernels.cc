// Microbenchmarks for the batched SoA distance kernels: scalar vs SSE2 vs
// AVX2 at the batch sizes the sweep actually uses (kSweepChunk = 64 and its
// remainders), plus the dispatched public entry points. Backends that are
// unavailable on the build/CPU report the best one at or below them (check
// the console line printed at startup).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "geom/kernels.h"

namespace amdj {
namespace {

using geom::KernelBackend;

struct Batch {
  std::vector<double> lo0, hi0, lo1, hi1, keys;
  std::vector<uint32_t> idx;
  std::vector<double> out;
  double q_lo0, q_hi0, q_lo1, q_hi1;
};

Batch MakeBatch(size_t n, uint64_t seed) {
  Random rng(seed);
  Batch b;
  b.lo0.resize(n);
  b.hi0.resize(n);
  b.lo1.resize(n);
  b.hi1.resize(n);
  b.keys.resize(n);
  b.idx.resize(n);
  b.out.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.Uniform(0, 10000);
    const double y = rng.Uniform(0, 10000);
    b.lo0[i] = x;
    b.hi0[i] = x + rng.Uniform(1, 50);
    b.lo1[i] = y;
    b.hi1[i] = y + rng.Uniform(1, 50);
  }
  b.q_lo0 = 4000;
  b.q_hi0 = 4100;
  b.q_lo1 = 4000;
  b.q_hi1 = 4100;
  return b;
}

using MinDistFn = void (*)(const double*, const double*, const double*,
                           const double*, double, double, double, double,
                           std::size_t, double*);

MinDistFn MinDistFor(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return &geom::internal::BatchMinDistSquaredScalar;
    case KernelBackend::kSse2:
      return &geom::internal::BatchMinDistSquaredSse2;
    case KernelBackend::kAvx2:
      return &geom::internal::BatchMinDistSquaredAvx2;
  }
  return &geom::internal::BatchMinDistSquaredScalar;
}

void BM_BatchMinDistSquared(benchmark::State& state) {
  const auto backend = static_cast<KernelBackend>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  if (!geom::KernelBackendAvailable(backend)) {
    state.SkipWithError("backend unavailable");
    return;
  }
  MinDistFn fn = MinDistFor(backend);
  Batch b = MakeBatch(n, 7);
  for (auto _ : state) {
    fn(b.lo0.data(), b.hi0.data(), b.lo1.data(), b.hi1.data(), b.q_lo0,
       b.q_hi0, b.q_lo1, b.q_hi1, n, b.out.data());
    benchmark::DoNotOptimize(b.out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.SetLabel(geom::ToString(backend));
}
BENCHMARK(BM_BatchMinDistSquared)
    ->ArgsProduct({{0, 1, 2}, {7, 64, 1024}});

using AxisFn = void (*)(const double*, double, std::size_t, double*);

AxisFn AxisFor(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return &geom::internal::BatchAxisDistanceScalar;
    case KernelBackend::kSse2:
      return &geom::internal::BatchAxisDistanceSse2;
    case KernelBackend::kAvx2:
      return &geom::internal::BatchAxisDistanceAvx2;
  }
  return &geom::internal::BatchAxisDistanceScalar;
}

void BM_BatchAxisDistance(benchmark::State& state) {
  const auto backend = static_cast<KernelBackend>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  if (!geom::KernelBackendAvailable(backend)) {
    state.SkipWithError("backend unavailable");
    return;
  }
  AxisFn fn = AxisFor(backend);
  Batch b = MakeBatch(n, 11);
  for (auto _ : state) {
    fn(b.lo0.data(), b.q_hi0, n, b.out.data());
    benchmark::DoNotOptimize(b.out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.SetLabel(geom::ToString(backend));
}
BENCHMARK(BM_BatchAxisDistance)->ArgsProduct({{0, 1, 2}, {7, 64, 1024}});

using FilterFn = std::size_t (*)(const double*, std::size_t, double,
                                 std::uint32_t*);

FilterFn FilterFor(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return &geom::internal::BatchFilterWithinScalar;
    case KernelBackend::kSse2:
      return &geom::internal::BatchFilterWithinSse2;
    case KernelBackend::kAvx2:
      return &geom::internal::BatchFilterWithinAvx2;
  }
  return &geom::internal::BatchFilterWithinScalar;
}

void BM_BatchFilterWithin(benchmark::State& state) {
  const auto backend = static_cast<KernelBackend>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  if (!geom::KernelBackendAvailable(backend)) {
    state.SkipWithError("backend unavailable");
    return;
  }
  FilterFn fn = FilterFor(backend);
  Batch b = MakeBatch(n, 13);
  Random rng(17);
  for (size_t i = 0; i < n; ++i) b.keys[i] = rng.Uniform(0, 100);
  const double cutoff = 50.0;  // ~half survive: the interesting regime
  for (auto _ : state) {
    const size_t kept = fn(b.keys.data(), n, cutoff, b.idx.data());
    benchmark::DoNotOptimize(kept);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.SetLabel(geom::ToString(backend));
}
BENCHMARK(BM_BatchFilterWithin)->ArgsProduct({{0, 1, 2}, {7, 64, 1024}});

// The dispatched public entry point at the sweep's chunk size: measures
// what the join hot path actually pays, including the dispatch load.
void BM_DispatchedMinDist_Chunk64(benchmark::State& state) {
  Batch b = MakeBatch(64, 19);
  for (auto _ : state) {
    geom::BatchMinDistSquared(b.lo0.data(), b.hi0.data(), b.lo1.data(),
                              b.hi1.data(), b.q_lo0, b.q_hi0, b.q_lo1,
                              b.q_hi1, 64, b.out.data());
    benchmark::DoNotOptimize(b.out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
  state.SetLabel(geom::ToString(geom::ActiveKernelBackend()));
}
BENCHMARK(BM_DispatchedMinDist_Chunk64);

}  // namespace
}  // namespace amdj

int main(int argc, char** argv) {
  std::printf("active kernel backend: %s\n",
              amdj::geom::ToString(amdj::geom::ActiveKernelBackend()));
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

#include "core/sweep_plan.h"

#include <limits>

#include <gtest/gtest.h>

namespace amdj::core {
namespace {

using geom::Rect;
using geom::SweepDirection;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(SweepPlanTest, FixedStrategyAlwaysXForward) {
  const Rect r(0, 0, 2, 100);
  const Rect s(3, 0, 5, 100);
  const SweepPlan plan =
      ChooseSweepPlan(r, s, geom::DistVal(4.0), SweepStrategy::kFixedXForward);
  EXPECT_EQ(plan.axis, 0);
  EXPECT_EQ(plan.dir, SweepDirection::kForward);
}

TEST(SweepPlanTest, OptimizedPicksSpreadAxis) {
  // Figure 5: children spread along y -> sweep along y.
  const Rect r(0, 0, 2, 100);
  const Rect s(3, 0, 5, 100);
  const SweepPlan plan = ChooseSweepPlan(r, s, geom::DistVal(4.0), SweepStrategy::kOptimized);
  EXPECT_EQ(plan.axis, 1);
}

TEST(SweepPlanTest, OptimizedPicksXWhenSpreadAlongX) {
  const Rect r(0, 0, 100, 2);
  const Rect s(0, 3, 100, 5);
  const SweepPlan plan = ChooseSweepPlan(r, s, geom::DistVal(4.0), SweepStrategy::kOptimized);
  EXPECT_EQ(plan.axis, 0);
}

TEST(SweepPlanTest, InfiniteCutoffFallsBackToWiderExtent) {
  const Rect r(0, 0, 10, 500);
  const Rect s(5, 100, 15, 600);
  const SweepPlan plan = ChooseSweepPlan(r, s, geom::DistVal(kInf), SweepStrategy::kOptimized);
  EXPECT_EQ(plan.axis, 1);  // union is 15 wide, 600 tall
}

TEST(SweepPlanTest, AxisOnlyKeepsForwardDirection) {
  const Rect r(0, 0, 2, 100);
  const Rect s(3, 0, 5, 100);
  const SweepPlan plan = ChooseSweepPlan(r, s, geom::DistVal(4.0), SweepStrategy::kAxisOnly);
  EXPECT_EQ(plan.axis, 1);
  EXPECT_EQ(plan.dir, SweepDirection::kForward);
}

TEST(SweepPlanTest, DirectionOnlyKeepsXAxis) {
  // Along x: endpoints 0,9,10,12 -> left 9 > right 2 -> backward.
  const Rect r(0, 0, 10, 1);
  const Rect s(9, 0, 12, 1);
  const SweepPlan plan =
      ChooseSweepPlan(r, s, geom::DistVal(5.0), SweepStrategy::kDirectionOnly);
  EXPECT_EQ(plan.axis, 0);
  EXPECT_EQ(plan.dir, SweepDirection::kBackward);
}

TEST(SweepPlanTest, DirectionFollowsProjectedIntervals) {
  // Left interval shorter on the chosen (x) axis -> forward.
  const Rect r(0, 0, 2, 1);
  const Rect s(1, 0, 10, 1);
  const SweepPlan forward =
      ChooseSweepPlan(r, s, geom::DistVal(3.0), SweepStrategy::kDirectionOnly);
  EXPECT_EQ(forward.dir, SweepDirection::kForward);
}

TEST(SweepPlanTest, SymmetricArgumentsGiveSameAxis) {
  const Rect r(0, 0, 30, 4);
  const Rect s(10, 2, 50, 9);
  const SweepPlan a = ChooseSweepPlan(r, s, geom::DistVal(2.0), SweepStrategy::kOptimized);
  const SweepPlan b = ChooseSweepPlan(s, r, geom::DistVal(2.0), SweepStrategy::kOptimized);
  EXPECT_EQ(a.axis, b.axis);
}

}  // namespace
}  // namespace amdj::core

file(REMOVE_RECURSE
  "CMakeFiles/ablation_tie_break.dir/ablation_tie_break.cc.o"
  "CMakeFiles/ablation_tie_break.dir/ablation_tie_break.cc.o.d"
  "ablation_tie_break"
  "ablation_tie_break.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tie_break.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

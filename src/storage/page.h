#ifndef AMDJ_STORAGE_PAGE_H_
#define AMDJ_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>

namespace amdj::storage {

/// Identifier of a fixed-size page within a DiskManager.
using PageId = uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = UINT32_MAX;

/// Page size used throughout the library. The paper's evaluation uses 4 KB
/// pages for both disk I/O and R*-tree nodes (Section 5.1).
inline constexpr size_t kPageSize = 4096;

}  // namespace amdj::storage

#endif  // AMDJ_STORAGE_PAGE_H_

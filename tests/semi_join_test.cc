#include "core/semi_join.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "test_util.h"
#include "workload/generators.h"

namespace amdj::core {
namespace {

using geom::Rect;

/// Brute force: nearest S partner for every R object, sorted by distance.
std::vector<SemiJoinResult> BruteSemiJoin(const std::vector<Rect>& r,
                                          const std::vector<Rect>& s,
                                          geom::Metric metric,
                                          bool exclude_same_id) {
  std::vector<SemiJoinResult> out;
  for (uint32_t i = 0; i < r.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    uint32_t best_j = 0;
    bool any = false;
    for (uint32_t j = 0; j < s.size(); ++j) {
      if (exclude_same_id && i == j) continue;
      const double d = geom::MinDistance(r[i], s[j], metric).raw();
      if (d < best) {
        best = d;
        best_j = j;
        any = true;
      }
    }
    if (any) out.push_back({i, best_j, best});
  }
  std::sort(out.begin(), out.end(),
            [](const SemiJoinResult& a, const SemiJoinResult& b) {
              return a.distance < b.distance;
            });
  return out;
}

void ExpectMatches(const std::vector<SemiJoinResult>& got,
                   const std::vector<SemiJoinResult>& brute) {
  ASSERT_EQ(got.size(), brute.size());
  // Distances per rank match...
  for (size_t i = 0; i < got.size(); ++i) {
    if (i > 0) EXPECT_GE(got[i].distance, got[i - 1].distance);
    ASSERT_NEAR(got[i].distance, brute[i].distance, 1e-9) << "rank " << i;
  }
  // ...and per R object the partner distance is the true minimum (partner
  // identity may differ under ties).
  std::map<uint32_t, double> expected;
  for (const auto& b : brute) expected[b.r_id] = b.distance;
  for (const auto& g : got) {
    auto it = expected.find(g.r_id);
    ASSERT_NE(it, expected.end()) << "unexpected r_id " << g.r_id;
    EXPECT_NEAR(g.distance, it->second, 1e-9) << "r_id " << g.r_id;
    expected.erase(it);
  }
  EXPECT_TRUE(expected.empty());
}

class SemiJoinTest : public ::testing::TestWithParam<SemiJoinStrategy> {};

TEST_P(SemiJoinTest, MatchesBruteForce) {
  const Rect uni(0, 0, 5000, 5000);
  const auto r_data = workload::GaussianClusters(200, 5, 0.05, 71, uni);
  const auto s_data = workload::UniformRects(150, 30.0, 72, uni);
  test::JoinFixture f = test::MakeFixture(r_data, s_data, 8);
  const auto brute = BruteSemiJoin(f.r_objects, f.s_objects,
                                   geom::Metric::kL2, false);
  JoinStats stats;
  auto got = DistanceSemiJoin(*f.r, *f.s, JoinOptions{}, GetParam(), &stats);
  ASSERT_TRUE(got.ok());
  ExpectMatches(*got, brute);
}

TEST_P(SemiJoinTest, WorksUnderL1Metric) {
  const Rect uni(0, 0, 2000, 2000);
  const auto r_data = workload::UniformPoints(120, 73, uni);
  const auto s_data = workload::UniformPoints(100, 74, uni);
  test::JoinFixture f = test::MakeFixture(r_data, s_data, 8);
  const auto brute = BruteSemiJoin(f.r_objects, f.s_objects,
                                   geom::Metric::kL1, false);
  JoinOptions options;
  options.metric = geom::Metric::kL1;
  auto got = DistanceSemiJoin(*f.r, *f.s, options, GetParam(), nullptr);
  ASSERT_TRUE(got.ok());
  ExpectMatches(*got, brute);
}

TEST_P(SemiJoinTest, SelfSemiJoinFindsNearestOtherNeighbor) {
  const Rect uni(0, 0, 1000, 1000);
  const auto data = workload::GaussianClusters(150, 4, 0.04, 75, uni);
  test::JoinFixture f = test::MakeFixture(data, data, 8);
  const auto brute =
      BruteSemiJoin(f.r_objects, f.s_objects, geom::Metric::kL2, true);
  JoinOptions options;
  options.exclude_same_id = true;
  auto got = DistanceSemiJoin(*f.r, *f.s, options, GetParam(), nullptr);
  ASSERT_TRUE(got.ok());
  for (const auto& g : *got) EXPECT_NE(g.r_id, g.s_id);
  ExpectMatches(*got, brute);
}

TEST_P(SemiJoinTest, EmptyInputs) {
  workload::Dataset empty, one;
  one.objects = {Rect(0, 0, 1, 1)};
  test::JoinFixture f = test::MakeFixture(empty, one);
  auto got = DistanceSemiJoin(*f.r, *f.s, JoinOptions{}, GetParam(),
                              nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
  test::JoinFixture g = test::MakeFixture(one, empty);
  auto got2 = DistanceSemiJoin(*g.r, *g.s, JoinOptions{}, GetParam(),
                               nullptr);
  ASSERT_TRUE(got2.ok());
  EXPECT_TRUE(got2->empty());
}

INSTANTIATE_TEST_SUITE_P(
    BothStrategies, SemiJoinTest,
    ::testing::Values(SemiJoinStrategy::kIncrementalJoin,
                      SemiJoinStrategy::kPerObjectNn),
    [](const auto& info) {
      return info.param == SemiJoinStrategy::kIncrementalJoin
                 ? "IncrementalJoin"
                 : "PerObjectNn";
    });

TEST(SemiJoinTest, StrategiesAgreeAtScale) {
  const Rect uni(0, 0, 50000, 50000);
  test::JoinFixture f = test::MakeFixture(
      workload::TigerStreets({.street_segments = 3000, .seed = 76}),
      workload::TigerHydro({.hydro_objects = 1000, .seed = 76}), 32, 256);
  auto a = DistanceSemiJoin(*f.r, *f.s, JoinOptions{},
                            SemiJoinStrategy::kIncrementalJoin, nullptr);
  auto b = DistanceSemiJoin(*f.r, *f.s, JoinOptions{},
                            SemiJoinStrategy::kPerObjectNn, nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  ASSERT_EQ(a->size(), 3000u);
  for (size_t i = 0; i < a->size(); ++i) {
    ASSERT_NEAR((*a)[i].distance, (*b)[i].distance, 1e-9) << "rank " << i;
  }
}

// ---------------------------------------------------------------------------
// KnnJoin (the generalized operator).

std::vector<SemiJoinResult> BruteKnnJoin(const std::vector<Rect>& r,
                                         const std::vector<Rect>& s,
                                         uint64_t neighbors) {
  std::vector<SemiJoinResult> out;
  for (uint32_t i = 0; i < r.size(); ++i) {
    std::vector<std::pair<double, uint32_t>> d;
    for (uint32_t j = 0; j < s.size(); ++j) {
      d.push_back({geom::MinDistance(r[i], s[j]), j});
    }
    std::sort(d.begin(), d.end());
    for (uint64_t n = 0; n < neighbors && n < d.size(); ++n) {
      out.push_back({i, d[n].second, d[n].first});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SemiJoinResult& a, const SemiJoinResult& b) {
              return a.distance < b.distance;
            });
  return out;
}

class KnnJoinTest : public ::testing::TestWithParam<SemiJoinStrategy> {};

TEST_P(KnnJoinTest, MatchesBruteForceForSeveralK) {
  const Rect uni(0, 0, 3000, 3000);
  const auto r_data = workload::GaussianClusters(80, 4, 0.06, 77, uni);
  const auto s_data = workload::UniformRects(100, 25.0, 78, uni);
  test::JoinFixture f = test::MakeFixture(r_data, s_data, 8);
  for (const uint64_t neighbors : {1ull, 3ull, 10ull}) {
    const auto brute = BruteKnnJoin(f.r_objects, f.s_objects, neighbors);
    auto got = KnnJoin(*f.r, *f.s, neighbors, JoinOptions{}, GetParam(),
                       nullptr);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), brute.size()) << "neighbors=" << neighbors;
    // Distance multiset per R object must match the brute force.
    std::map<uint32_t, std::vector<double>> expected, actual;
    for (const auto& b : brute) expected[b.r_id].push_back(b.distance);
    for (const auto& g : *got) actual[g.r_id].push_back(g.distance);
    for (auto& [id, v] : expected) std::sort(v.begin(), v.end());
    for (auto& [id, v] : actual) std::sort(v.begin(), v.end());
    for (const auto& [id, v] : expected) {
      ASSERT_EQ(actual.count(id), 1u);
      ASSERT_EQ(actual[id].size(), v.size());
      for (size_t i = 0; i < v.size(); ++i) {
        ASSERT_NEAR(actual[id][i], v[i], 1e-9)
            << "r_id " << id << " neighbor " << i;
      }
    }
    // Globally sorted.
    for (size_t i = 1; i < got->size(); ++i) {
      EXPECT_GE((*got)[i].distance, (*got)[i - 1].distance);
    }
  }
}

TEST_P(KnnJoinTest, NeighborsLargerThanSIsClamped) {
  const Rect uni(0, 0, 500, 500);
  const auto r_data = workload::UniformPoints(20, 79, uni);
  const auto s_data = workload::UniformPoints(5, 80, uni);
  test::JoinFixture f = test::MakeFixture(r_data, s_data, 5);
  auto got = KnnJoin(*f.r, *f.s, 50, JoinOptions{}, GetParam(), nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 20u * 5u);  // everyone gets all of S
}

TEST_P(KnnJoinTest, ZeroNeighborsRejected) {
  const Rect uni(0, 0, 500, 500);
  const auto data = workload::UniformPoints(10, 81, uni);
  test::JoinFixture f = test::MakeFixture(data, data, 5);
  auto got = KnnJoin(*f.r, *f.s, 0, JoinOptions{}, GetParam(), nullptr);
  EXPECT_FALSE(got.ok());
}

INSTANTIATE_TEST_SUITE_P(
    BothStrategiesKnn, KnnJoinTest,
    ::testing::Values(SemiJoinStrategy::kIncrementalJoin,
                      SemiJoinStrategy::kPerObjectNn),
    [](const auto& info) {
      return info.param == SemiJoinStrategy::kIncrementalJoin
                 ? "IncrementalJoin"
                 : "PerObjectNn";
    });

}  // namespace
}  // namespace amdj::core

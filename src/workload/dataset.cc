#include "workload/dataset.h"

#include <cstdio>
#include <cstring>

#include <algorithm>
#include <string>
#include <vector>

namespace amdj::workload {

geom::Rect Dataset::Bounds() const {
  geom::Rect bounds = geom::Rect::Empty();
  for (const geom::Rect& r : objects) bounds.Extend(r);
  return bounds;
}

std::vector<rtree::Entry> Dataset::ToEntries() const {
  std::vector<rtree::Entry> entries;
  entries.reserve(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    entries.emplace_back(objects[i], static_cast<uint32_t>(i));
  }
  return entries;
}

namespace {
constexpr char kMagic[8] = {'A', 'M', 'D', 'J', 'D', 'S', '0', '1'};
}  // namespace

Status Dataset::SaveTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  uint64_t n = objects.size();
  uint64_t name_len = name.size();
  bool ok = std::fwrite(kMagic, 1, sizeof(kMagic), f) == sizeof(kMagic) &&
            std::fwrite(&name_len, sizeof(name_len), 1, f) == 1 &&
            (name_len == 0 ||
             std::fwrite(name.data(), 1, name_len, f) == name_len) &&
            std::fwrite(&n, sizeof(n), 1, f) == 1 &&
            (n == 0 ||
             std::fwrite(objects.data(), sizeof(geom::Rect), n, f) == n);
  std::fclose(f);
  if (!ok) return Status::IOError("short write to " + path);
  return Status::OK();
}

StatusOr<Dataset> Dataset::LoadFrom(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  char magic[sizeof(kMagic)];
  Dataset ds;
  uint64_t n = 0;
  uint64_t name_len = 0;
  bool ok = std::fread(magic, 1, sizeof(magic), f) == sizeof(magic) &&
            std::memcmp(magic, kMagic, sizeof(magic)) == 0 &&
            std::fread(&name_len, sizeof(name_len), 1, f) == 1 &&
            name_len < (1u << 20);
  if (ok && name_len > 0) {
    ds.name.resize(name_len);
    ok = std::fread(ds.name.data(), 1, name_len, f) == name_len;
  }
  ok = ok && std::fread(&n, sizeof(n), 1, f) == 1 && n < (1ull << 32);
  if (ok && n > 0) {
    ds.objects.resize(n);
    ok = std::fread(ds.objects.data(), sizeof(geom::Rect), n, f) == n;
  }
  std::fclose(f);
  if (!ok) return Status::Corruption("malformed dataset file " + path);
  return ds;
}

StatusOr<Dataset> Dataset::FromCsv(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  Dataset ds;
  ds.name = path;
  char line[4096];
  uint64_t lineno = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++lineno;
    // Skip blank and comment lines.
    const char* p = line;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '\0' || *p == '\n' || *p == '\r' || *p == '#') continue;
    double v[4];
    const int n = std::sscanf(p, "%lf , %lf , %lf , %lf", &v[0], &v[1],
                              &v[2], &v[3]);
    if (n == 2) {
      ds.objects.push_back(geom::Rect::FromPoint(geom::Point(v[0], v[1])));
    } else if (n == 4) {
      const geom::Rect r(std::min(v[0], v[2]), std::min(v[1], v[3]),
                         std::max(v[0], v[2]), std::max(v[1], v[3]));
      ds.objects.push_back(r);
    } else {
      std::fclose(f);
      return Status::InvalidArgument("malformed CSV row at line " +
                                     std::to_string(lineno) + " of " +
                                     path);
    }
  }
  std::fclose(f);
  return ds;
}

}  // namespace amdj::workload

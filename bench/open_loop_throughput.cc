// Open-loop throughput of the JoinService: requests arrive on a Poisson
// process at a fixed offered rate, independent of completions — unlike the
// closed-loop multi_query_throughput replay, the arrival clock never waits
// for the service, so queueing delay past the saturation knee shows up in
// the tail instead of silently throttling the load (the coordinated-
// omission failure mode of closed-loop benches).
//
// The capacity is first measured with a closed-loop calibration replay;
// the open-loop phases then offer 0.5x, 0.8x and 1.2x of it. Per-request
// latency = dispatcher lag (how late the submit ran vs its scheduled
// arrival — counting it is the omission correction) + admission wait +
// execution, recorded into the metrics-registry histogram
// amdj_bench_open_loop_latency_ns{rate="<ratio>"} and summarized as
// p50/p99/p999 straight off the registry, exercising the same percentile
// path `amdj_cli serve` exports.
//
// --json=FILE writes a {"bench":"open_loop_throughput",...} summary for
// BENCH_PR*.json tracking.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/timer.h"
#include "service/join_service.h"

namespace amdj::bench {
namespace {

/// Mixed KDJ/IDJ query set, small enough that one query is a few
/// milliseconds: open-loop needs many completions per rate for stable
/// tail percentiles, not a few heavy joins.
std::vector<service::JoinRequest> MakeQueryMix(uint64_t scale) {
  std::vector<service::JoinRequest> requests;
  using Kind = service::JoinRequest::Kind;
  const struct {
    Kind kind;
    core::KdjAlgorithm kdj;
    core::IdjAlgorithm idj;
    uint64_t k;
  } specs[] = {
      {Kind::kKdj, core::KdjAlgorithm::kAmKdj, {}, 4 * scale},
      {Kind::kKdj, core::KdjAlgorithm::kBKdj, {}, 2 * scale},
      {Kind::kIdj, {}, core::IdjAlgorithm::kAmIdj, 3 * scale},
      {Kind::kKdj, core::KdjAlgorithm::kAmKdj, {}, scale},
      {Kind::kIdj, {}, core::IdjAlgorithm::kHsIdj, scale},
  };
  for (const auto& spec : specs) {
    service::JoinRequest request;
    request.kind = spec.kind;
    request.kdj_algorithm = spec.kdj;
    request.idj_algorithm = spec.idj;
    request.k = spec.k;
    requests.push_back(request);
  }
  return requests;
}

struct RateResult {
  double ratio;         ///< offered rate as a fraction of capacity
  double offered_qps;   ///< the Poisson arrival rate
  double achieved_qps;  ///< completions / wall
  uint64_t completed;
  double p50_ms;
  double p99_ms;
  double p999_ms;
  double mean_ms;
};

/// One open-loop phase: `n` requests with exponential inter-arrivals at
/// `offered_qps`, latencies into the per-rate registry histogram.
RateResult RunOpenLoop(service::JoinService& service,
                       const std::vector<service::JoinRequest>& mix,
                       double ratio, double offered_qps, uint64_t n,
                       uint64_t seed) {
  char label[64];
  std::snprintf(label, sizeof(label), "rate=\"%.1fx\"", ratio);
  Histogram* latency = MetricsRegistry::Global()->GetHistogram(
      "amdj_bench_open_loop_latency_ns", label,
      "Open-loop request latency (dispatcher lag + wait + exec)");
  const Histogram::Snapshot before = latency->TakeSnapshot();

  Random rng(seed);
  std::vector<double> arrivals;  // seconds since phase start
  arrivals.reserve(n);
  double clock = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    clock += rng.Exponential(offered_qps);
    arrivals.push_back(clock);
  }

  struct Pending {
    std::future<service::JoinResponse> future;
    double lag_seconds;  // how late the submit ran vs its arrival time
  };
  std::vector<Pending> pending;
  pending.reserve(n);

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  for (uint64_t i = 0; i < n; ++i) {
    const double due = arrivals[i];
    double now = elapsed();
    if (now < due) {
      std::this_thread::sleep_for(std::chrono::duration<double>(due - now));
      now = elapsed();
    }
    pending.push_back({service.Submit(mix[i % mix.size()]),
                       std::max(0.0, now - due)});
  }
  uint64_t completed = 0;
  for (auto& p : pending) {
    const service::JoinResponse response = p.future.get();
    if (!response.status.ok()) {
      std::fprintf(stderr, "FATAL: open-loop query failed: %s\n",
                   response.status.ToString().c_str());
      std::exit(1);
    }
    ++completed;
    const double seconds =
        p.lag_seconds + response.wait_seconds + response.exec_seconds;
    latency->Observe(static_cast<uint64_t>(seconds * 1e9));
  }
  const double wall = elapsed();

  // Percentiles come from the registry histogram — the same p50/p99/p999
  // extraction serve-mode exposition uses — minus the calibration-free
  // `before` counts in case a prior phase shared the label.
  Histogram::Snapshot snap = latency->TakeSnapshot();
  snap.count -= before.count;
  snap.sum -= before.sum;
  for (size_t b = 0; b < snap.buckets.size(); ++b) {
    snap.buckets[b] -= before.buckets[b];
  }
  RateResult r;
  r.ratio = ratio;
  r.offered_qps = offered_qps;
  r.achieved_qps = wall > 0 ? completed / wall : 0.0;
  r.completed = completed;
  r.p50_ms = snap.Percentile(0.50) / 1e6;
  r.p99_ms = snap.Percentile(0.99) / 1e6;
  r.p999_ms = snap.Percentile(0.999) / 1e6;
  r.mean_ms = snap.count > 0
                  ? static_cast<double>(snap.sum) / snap.count / 1e6
                  : 0.0;
  return r;
}

void Run(int argc, char** argv) {
  // --json and --requests-per-rate are this bench's own flags; strip them
  // before the shared parser (which rejects unknown arguments).
  std::string json_path;
  uint64_t requests_per_rate = 150;
  std::vector<char*> shared_args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--requests-per-rate=", 0) == 0) {
      requests_per_rate = std::strtoull(arg.substr(20).c_str(), nullptr, 10);
    } else {
      shared_args.push_back(argv[i]);
    }
  }
  BenchEnv env = MakeTigerEnv(BenchConfig::FromArgs(
      static_cast<int>(shared_args.size()), shared_args.data()));
  PrintHeader("Open-loop throughput (Poisson arrivals, JoinService)", env);

  const uint64_t scale = env.config.streets >= 100'000 ? 400 : 100;
  const std::vector<service::JoinRequest> mix = MakeQueryMix(scale);

  const uint32_t cores = std::max(1u, std::thread::hardware_concurrency());
  service::JoinService::Options options;
  options.max_inflight = std::min(cores, 4u);
  options.queue_memory_budget_bytes =
      env.config.memory_bytes * options.max_inflight;
  service::JoinService service(*env.streets, *env.hydro, options);

  // Closed-loop calibration: replay the mix a few times with the pool
  // warm to measure service capacity. The open-loop rates are fractions
  // of this, so the bench lands on both sides of the knee on any host.
  const uint64_t calibration_n = std::max<uint64_t>(40, mix.size() * 8);
  {
    std::vector<std::future<service::JoinResponse>> futures;
    futures.reserve(calibration_n);
    Timer wall;
    for (uint64_t i = 0; i < calibration_n; ++i) {
      futures.push_back(service.Submit(mix[i % mix.size()]));
    }
    for (auto& future : futures) {
      const service::JoinResponse response = future.get();
      if (!response.status.ok()) {
        std::fprintf(stderr, "FATAL: calibration query failed: %s\n",
                     response.status.ToString().c_str());
        std::exit(1);
      }
    }
    const double capacity_qps = calibration_n / wall.ElapsedSeconds();
    std::printf("calibration: %" PRIu64 " queries, capacity %.1f qps "
                "(inflight %u)\n\n",
                calibration_n, capacity_qps, options.max_inflight);

    const std::vector<int> widths = {8, 12, 12, 10, 10, 10, 10, 10};
    PrintRow({"rate", "offered", "achieved", "n", "p50 ms", "p99 ms",
              "p999 ms", "mean ms"},
             widths);
    std::vector<RateResult> results;
    // 1.2x is past the knee by construction: offered > capacity means the
    // admission queue grows for the whole phase and the tail shows it.
    for (const double ratio : {0.5, 0.8, 1.2}) {
      const RateResult r =
          RunOpenLoop(service, mix, ratio, ratio * capacity_qps,
                      requests_per_rate,
                      env.config.seed + static_cast<uint64_t>(1000 * ratio));
      char ratio_s[16], offered[32], achieved[32], p50[32], p99[32],
          p999[32], mean[32];
      std::snprintf(ratio_s, sizeof(ratio_s), "%.1fx", r.ratio);
      std::snprintf(offered, sizeof(offered), "%.1f", r.offered_qps);
      std::snprintf(achieved, sizeof(achieved), "%.1f", r.achieved_qps);
      std::snprintf(p50, sizeof(p50), "%.2f", r.p50_ms);
      std::snprintf(p99, sizeof(p99), "%.2f", r.p99_ms);
      std::snprintf(p999, sizeof(p999), "%.2f", r.p999_ms);
      std::snprintf(mean, sizeof(mean), "%.2f", r.mean_ms);
      PrintRow({ratio_s, offered, achieved, std::to_string(r.completed),
                p50, p99, p999, mean},
               widths);
      results.push_back(r);
    }

    // Sanity: the past-knee phase must show the queueing-delay blowup the
    // open-loop design exists to expose.
    if (results.back().p99_ms < results.front().p99_ms) {
      std::fprintf(stderr,
                   "WARNING: p99 at 1.2x (%.2f ms) below p99 at 0.5x "
                   "(%.2f ms); host too noisy for a knee\n",
                   results.back().p99_ms, results.front().p99_ms);
    }

    if (!json_path.empty()) {
      std::FILE* out = std::fopen(json_path.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
        std::exit(1);
      }
      std::fprintf(out,
                   "{\"bench\": \"open_loop_throughput\", \"cores\": %u, "
                   "\"inflight\": %u, \"capacity_qps\": %.2f, "
                   "\"requests_per_rate\": %" PRIu64 ", \"rates\": [",
                   cores, options.max_inflight, capacity_qps,
                   requests_per_rate);
      for (size_t i = 0; i < results.size(); ++i) {
        const RateResult& r = results[i];
        std::fprintf(out,
                     "%s\n  {\"ratio\": %.2f, \"offered_qps\": %.2f, "
                     "\"achieved_qps\": %.2f, \"completed\": %" PRIu64 ", "
                     "\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                     "\"p999_ms\": %.3f, \"mean_ms\": %.3f}",
                     i == 0 ? "" : ",", r.ratio, r.offered_qps,
                     r.achieved_qps, r.completed, r.p50_ms, r.p99_ms,
                     r.p999_ms, r.mean_ms);
      }
      std::fprintf(out, "\n]}\n");
      std::fclose(out);
      std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
  }
}

}  // namespace
}  // namespace amdj::bench

int main(int argc, char** argv) {
  amdj::bench::Run(argc, argv);
  return 0;
}

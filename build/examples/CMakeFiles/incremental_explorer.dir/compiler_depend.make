# Empty compiler generated dependencies file for incremental_explorer.
# This may be replaced when dependencies are built.

// amdj_cli — command-line front end for the distance-join library.
//
//   amdj_cli generate --kind=KIND --n=N --out=FILE [--seed=S]
//       KIND: uniform | rects | clusters | zipf | tiger-streets | tiger-hydro
//   amdj_cli info     --data=FILE
//   amdj_cli join     --r=FILE --s=FILE --k=K [--algo=hs|b|am|sj]
//                     [--metric=l2|l1|linf] [--estimator=uniform|histogram]
//                     [--self] [--limit=N] [--stats]
//                     [--shards=N] [--shard-threads=N]
//                     [--trace=FILE] [--trace-jsonl=FILE]
//                     [--report-json=FILE] [--report]
//   amdj_cli stream   --r=FILE --s=FILE [--batch=N] [--batches=N]
//                     [--algo=hs|am] [--trace=FILE] [--trace-jsonl=FILE]
//                     [--report-json=FILE] [--report]
//
// Observability (see docs/OBSERVABILITY.md):
//   --trace=FILE        write a Chrome trace_event JSON (Perfetto-loadable)
//   --trace-jsonl=FILE  write the same events as one JSON object per line
//   --report-json=FILE  write the per-phase run report as JSON
//   --report            print the run report as an aligned table
//   --log-level=LEVEL   debug|info|warn|error|off (any command; default warn)
//   amdj_cli semijoin --r=FILE --s=FILE [--strategy=idj|nn] [--self]
//                     [--metric=l2|l1|linf] [--limit=N]
//   amdj_cli knn      --data=FILE --x=X --y=Y --k=K [--metric=l2|l1|linf]
//   amdj_cli estimate --r=FILE --s=FILE --k=K
//   amdj_cli batch    --r=FILE --s=FILE --requests=FILE [--inflight=N]
//                     [--budget-kb=KB] [--spill-io-threads=N]
//                     [--shards=N] [--shard-threads=N]
//                     [--dedupe] [--shared-cache=N]
//                     [--metric=l2|l1|linf] [--self]
//       replays a request file concurrently through the JoinService. Each
//       non-empty, non-# line of the request file is
//       `<kdj|idj> <hs|b|am|sj> <k>` (IDJ accepts hs|am); requests run
//       with at most N in flight, each with its own attributed stats.
//       --spill-io-threads=N (default 0 = synchronous) adds a dedicated
//       pool for async queue-spill I/O; results are identical, the
//       per-query memory clamp is halved (see JoinService::Options).
//   amdj_cli serve    --r=FILE --s=FILE [batch flags]
//                     [--requests=FILE]
//                     [--max-queued=N] [--slow-query-ms=MS]
//                     [--metrics-json=FILE] [--metrics-interval-ms=MS]
//       long-running service mode. With --requests it replays the file
//       like `batch`; without it, stdin is a control channel: each line
//       is a request (`<kdj|idj> <algo> <k>`, run synchronously), or
//       `metrics` (print the live metrics snapshot as JSON), `metrics-prom`
//       (Prometheus text), `quit` (exit; EOF also exits). --metrics-json
//       starts a background exporter that atomically rewrites FILE every
//       --metrics-interval-ms (default 1000) and once more on shutdown.
//       --max-queued / --slow-query-ms wire the service admission cap and
//       slow-query log (both also accepted by `batch`).
//       --dedupe piggybacks semantically identical concurrent requests on
//       one execution; --shared-cache=N enables the N-entry semantic
//       result cache + learned eDmax seeding (both off by default; both
//       also accepted by `batch`; see DESIGN.md "Shared-work layer").
//
// Dataset files are produced by `generate` (workload::Dataset binary
// format); files ending in .csv are parsed as x,y or x0,y0,x1,y1 rows
// (see workload::Dataset::FromCsv). Trees are bulk-loaded in memory per
// invocation.

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "common/run_report.h"
#include "common/trace.h"
#include "core/amidj.h"
#include "core/distance_join.h"
#include "core/dmax_estimator.h"
#include "core/histogram_estimator.h"
#include "core/partition.h"
#include "core/shard_executor.h"
#include "core/semi_join.h"
#include "rtree/knn.h"
#include "rtree/rtree.h"
#include "service/join_service.h"
#include "cli_request_parser.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

namespace amdj::cli {
namespace {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        Fail("unexpected argument: " + arg);
      }
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  /// True when the flag appeared at all — distinguishes an absent flag
  /// from one given an empty value (GetString returns "" for both).
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string Require(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) Fail("missing required --" + key);
    return it->second;
  }

  uint64_t GetUint(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtoull(it->second.c_str(), nullptr,
                                               10);
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }

  bool GetBool(const std::string& key) const {
    return values_.count(key) > 0;
  }

  /// Every flag that appeared, for unknown-flag scans.
  const std::map<std::string, std::string>& values() const { return values_; }

  [[noreturn]] static void Fail(const std::string& message) {
    std::fprintf(stderr, "error: %s\n", message.c_str());
    std::exit(2);
  }

 private:
  std::map<std::string, std::string> values_;
};

void CheckOk(const Status& status) {
  if (!status.ok()) Args::Fail(status.ToString());
}

LogLevel ParseLogLevel(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  Args::Fail("unknown log level " + name + " (debug|info|warn|error|off)");
}

/// Presence-keyed positive-integer flag (same discipline as --log-level):
/// an absent flag returns `fallback`, but a present flag must parse fully
/// as an integer >= 1 — `--shards=0`, `--shards=-3`, or trailing junk are
/// usage errors, never a silent fall-back to the default.
uint32_t ParsePositiveFlag(const Args& args, const std::string& key,
                           uint32_t fallback) {
  if (!args.Has(key)) return fallback;
  const std::string text = args.GetString(key);
  char* end = nullptr;
  const long long value =
      text.empty() ? 0 : std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || *end != '\0' || value < 1 ||
      value > std::numeric_limits<uint32_t>::max()) {
    Args::Fail("--" + key + " must be a positive integer, got '" + text +
               "'");
  }
  return static_cast<uint32_t>(value);
}

/// Shared --trace/--trace-jsonl/--report-json/--report handling for the
/// join-running commands: wires the hooks into `options` before the run and
/// serializes after it.
class Observability {
 public:
  explicit Observability(const Args& args)
      : trace_path_(args.GetString("trace")),
        trace_jsonl_path_(args.GetString("trace-jsonl")),
        report_json_path_(args.GetString("report-json")),
        report_table_(args.GetBool("report")) {}

  void Wire(core::JoinOptions* options) {
    if (!trace_path_.empty() || !trace_jsonl_path_.empty()) {
      options->tracer = &tracer_;
    }
    if (!report_json_path_.empty() || report_table_) {
      options->report = &report_;
    }
  }

  /// Call after the join has returned (for stream: after the cursor is
  /// destroyed, which finalizes the report).
  void Emit() {
    if (!trace_path_.empty()) {
      CheckOk(tracer_.ExportChromeTrace(trace_path_));
      std::fprintf(stderr, "wrote %zu trace events to %s\n",
                   tracer_.event_count(), trace_path_.c_str());
    }
    if (!trace_jsonl_path_.empty()) {
      CheckOk(tracer_.ExportJsonl(trace_jsonl_path_));
    }
    if (!report_json_path_.empty()) {
      CheckOk(report_.WriteJsonFile(report_json_path_));
      std::fprintf(stderr, "wrote run report to %s\n",
                   report_json_path_.c_str());
    }
    if (report_table_) {
      std::printf("\n%s", report_.ToTable().c_str());
    }
  }

 private:
  Tracer tracer_;
  RunReport report_;
  std::string trace_path_;
  std::string trace_jsonl_path_;
  std::string report_json_path_;
  bool report_table_;
};

geom::Metric ParseMetric(const std::string& name) {
  if (name == "l2" || name.empty()) return geom::Metric::kL2;
  if (name == "l1") return geom::Metric::kL1;
  if (name == "linf") return geom::Metric::kLInf;
  Args::Fail("unknown metric " + name + " (l2|l1|linf)");
}

workload::Dataset LoadDataset(const std::string& path) {
  const bool csv = path.size() > 4 &&
                   path.compare(path.size() - 4, 4, ".csv") == 0;
  auto ds = csv ? workload::Dataset::FromCsv(path)
                : workload::Dataset::LoadFrom(path);
  if (!ds.ok()) Args::Fail(ds.status().ToString());
  return std::move(*ds);
}

/// In-memory join session over two datasets.
struct Session {
  storage::InMemoryDiskManager disk;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<rtree::RTree> r;
  std::unique_ptr<rtree::RTree> s;
  workload::Dataset r_data;
  workload::Dataset s_data;

  Session(const std::string& r_path, const std::string& s_path) {
    r_data = LoadDataset(r_path);
    s_data = LoadDataset(s_path);
    pool = std::make_unique<storage::BufferPool>(&disk, 2048);
    r = std::move(*rtree::RTree::Create(pool.get(), {}));
    s = std::move(*rtree::RTree::Create(pool.get(), {}));
    CheckOk(r->BulkLoad(r_data.ToEntries()));
    CheckOk(s->BulkLoad(s_data.ToEntries()));
    std::fprintf(stderr, "loaded %s (%zu objects), %s (%zu objects)\n",
                 r_data.name.c_str(), r_data.objects.size(),
                 s_data.name.c_str(), s_data.objects.size());
  }
};

int CmdGenerate(const Args& args) {
  const std::string kind = args.Require("kind");
  const std::string out = args.Require("out");
  const uint64_t n = args.GetUint("n", 10000);
  const uint64_t seed = args.GetUint("seed", 42);
  const double universe = args.GetDouble("universe",
                                         workload::kUniverseSize);
  const geom::Rect uni(0, 0, universe, universe);

  workload::Dataset ds;
  if (kind == "uniform") {
    ds = workload::UniformPoints(n, seed, uni);
  } else if (kind == "rects") {
    ds = workload::UniformRects(n, args.GetDouble("side", 50.0), seed, uni);
  } else if (kind == "clusters") {
    ds = workload::GaussianClusters(
        n, static_cast<uint32_t>(args.GetUint("clusters", 8)),
        args.GetDouble("sigma", 0.03), seed, uni);
  } else if (kind == "zipf") {
    ds = workload::ZipfSkewedPoints(n, args.GetDouble("theta", 0.8), seed,
                                    uni);
  } else if (kind == "tiger-streets" || kind == "tiger-hydro") {
    workload::TigerSynthOptions opts;
    opts.seed = seed;
    if (kind == "tiger-streets") {
      opts.street_segments = n;
      ds = workload::TigerStreets(opts);
    } else {
      opts.hydro_objects = n;
      ds = workload::TigerHydro(opts);
    }
  } else {
    Args::Fail("unknown kind " + kind);
  }
  CheckOk(ds.SaveTo(out));
  std::printf("wrote %zu objects (%s) to %s\n", ds.objects.size(),
              ds.name.c_str(), out.c_str());
  return 0;
}

int CmdInfo(const Args& args) {
  const workload::Dataset ds = LoadDataset(args.Require("data"));
  const geom::Rect b = ds.Bounds();
  std::printf("name:    %s\n", ds.name.c_str());
  std::printf("objects: %zu\n", ds.objects.size());
  std::printf("bounds:  %s\n", b.ToString().c_str());
  double total_area = 0;
  for (const auto& r : ds.objects) total_area += r.Area();
  std::printf("mean object area: %.3f\n",
              ds.objects.empty() ? 0.0 : total_area / ds.objects.size());
  return 0;
}

core::KdjAlgorithm ParseKdj(const std::string& name) {
  if (name == "hs") return core::KdjAlgorithm::kHsKdj;
  if (name == "b") return core::KdjAlgorithm::kBKdj;
  if (name == "am" || name.empty()) return core::KdjAlgorithm::kAmKdj;
  if (name == "sj") return core::KdjAlgorithm::kSjSort;
  Args::Fail("unknown algorithm " + name + " (hs|b|am|sj)");
}

int CmdJoin(const Args& args) {
  // Flag validation fires before any dataset is touched.
  const uint32_t shards = ParsePositiveFlag(args, "shards", 1);
  const uint32_t shard_threads = ParsePositiveFlag(args, "shard-threads", 4);
  const core::KdjAlgorithm algorithm = ParseKdj(args.GetString("algo", "am"));
  if (shards > 1 && algorithm != core::KdjAlgorithm::kBKdj &&
      algorithm != core::KdjAlgorithm::kAmKdj) {
    Args::Fail("--shards requires --algo=b or --algo=am");
  }
  Session session(args.Require("r"), args.Require("s"));
  const uint64_t k = args.GetUint("k", 10);
  core::JoinOptions options;
  options.metric = ParseMetric(args.GetString("metric"));
  options.exclude_same_id = args.GetBool("self");

  std::unique_ptr<core::HistogramEstimator> histogram;
  if (args.GetString("estimator") == "histogram") {
    histogram = std::make_unique<core::HistogramEstimator>(
        session.r_data.objects, session.s_data.objects);
    options.estimator = histogram.get();
  }

  Observability obs(args);
  obs.Wire(&options);

  JoinStats stats;
  StatusOr<std::vector<core::ResultPair>> result =
      std::vector<core::ResultPair>{};
  if (shards > 1) {
    core::PartitionOptions part;
    part.shards = shards;
    auto r_part = core::Partition::Build(session.r_data.ToEntries(),
                                         session.pool.get(), part);
    CheckOk(r_part.status());
    auto s_part = core::Partition::Build(session.s_data.ToEntries(),
                                         session.pool.get(), part);
    CheckOk(s_part.status());
    core::ShardedJoinOptions sharded;
    sharded.join = options;
    sharded.threads = shard_threads;
    sharded.algorithm = algorithm;
    result = core::RunShardedKDistanceJoin(*r_part, *s_part, k, sharded,
                                           &stats);
  } else {
    result = core::RunKDistanceJoin(*session.r, *session.s, k, algorithm,
                                    options, &stats);
  }
  CheckOk(result.status());
  obs.Emit();

  const uint64_t limit = args.GetUint("limit", 10);
  for (size_t i = 0; i < result->size() && i < limit; ++i) {
    const auto& p = (*result)[i];
    std::printf("%6zu  r[%u] <-> s[%u]  dist=%.6f\n", i + 1, p.r_id, p.s_id,
                p.distance);
  }
  if (result->size() > limit) {
    std::printf("... (%zu results total)\n", result->size());
  }
  if (args.GetBool("stats")) {
    std::printf("\n%s\n", stats.ToString().c_str());
  }
  return 0;
}

int CmdStream(const Args& args) {
  Session session(args.Require("r"), args.Require("s"));
  const uint64_t batch = args.GetUint("batch", 10);
  const uint64_t batches = args.GetUint("batches", 5);
  core::JoinOptions options;
  options.metric = ParseMetric(args.GetString("metric"));
  options.exclude_same_id = args.GetBool("self");
  const std::string algo = args.GetString("algo", "am");
  const core::IdjAlgorithm algorithm =
      algo == "hs" ? core::IdjAlgorithm::kHsIdj : core::IdjAlgorithm::kAmIdj;

  Observability obs(args);
  obs.Wire(&options);

  JoinStats stats;
  auto cursor = core::OpenIncrementalJoin(*session.r, *session.s, algorithm,
                                          options, &stats);
  CheckOk(cursor.status());
  core::ResultPair p;
  bool done = false;
  for (uint64_t b = 1; b <= batches && !done; ++b) {
    std::printf("-- batch %" PRIu64 " --\n", b);
    (*cursor)->PrefetchHint(b * batch);
    for (uint64_t i = 0; i < batch; ++i) {
      CheckOk((*cursor)->Next(&p, &done));
      if (done) {
        std::printf("(exhausted)\n");
        break;
      }
      std::printf("  r[%u] <-> s[%u]  dist=%.6f\n", p.r_id, p.s_id,
                  p.distance);
    }
  }
  cursor->reset();  // finalize the report before serializing it
  obs.Emit();
  return 0;
}

int CmdSemiJoin(const Args& args) {
  Session session(args.Require("r"), args.Require("s"));
  core::JoinOptions options;
  options.metric = ParseMetric(args.GetString("metric"));
  options.exclude_same_id = args.GetBool("self");
  const core::SemiJoinStrategy strategy =
      args.GetString("strategy", "idj") == "nn"
          ? core::SemiJoinStrategy::kPerObjectNn
          : core::SemiJoinStrategy::kIncrementalJoin;
  JoinStats stats;
  auto result = core::DistanceSemiJoin(*session.r, *session.s, options,
                                       strategy, &stats);
  CheckOk(result.status());
  const uint64_t limit = args.GetUint("limit", 10);
  for (size_t i = 0; i < result->size() && i < limit; ++i) {
    const auto& p = (*result)[i];
    std::printf("%6zu  r[%u] -> nearest s[%u]  dist=%.6f\n", i + 1, p.r_id,
                p.s_id, p.distance);
  }
  std::printf("(%zu R objects resolved)\n", result->size());
  return 0;
}

int CmdKnn(const Args& args) {
  const workload::Dataset ds = LoadDataset(args.Require("data"));
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 1024);
  auto tree = rtree::RTree::Create(&pool, {}).value();
  CheckOk(tree->BulkLoad(ds.ToEntries()));
  const geom::Point q(args.GetDouble("x", 0), args.GetDouble("y", 0));
  auto result = rtree::NearestNeighbors(
      *tree, q, args.GetUint("k", 5),
      ParseMetric(args.GetString("metric")));
  CheckOk(result.status());
  for (size_t i = 0; i < result->size(); ++i) {
    const auto& e = (*result)[i];
    std::printf("%4zu  obj[%u] %s  dist=%.6f\n", i + 1, e.id,
                e.rect.ToString().c_str(),
                geom::MinDistance(geom::Rect::FromPoint(q), e.rect,
                                  ParseMetric(args.GetString("metric")))
                    .raw());
  }
  return 0;
}

int CmdEstimate(const Args& args) {
  Session session(args.Require("r"), args.Require("s"));
  const uint64_t k = args.GetUint("k", 1000);
  core::DmaxEstimator uniform(session.r->bounds(), session.r->size(),
                              session.s->bounds(), session.s->size());
  core::HistogramEstimator histogram(session.r_data.objects,
                                     session.s_data.objects);
  auto truth = core::ComputeTrueDmax(*session.r, *session.s, k,
                                     core::JoinOptions{});
  CheckOk(truth.status());
  std::printf("k = %" PRIu64 "\n", k);
  std::printf("true Dmax:           %.6f\n", *truth);
  std::printf("Eq. 3 (uniform):     %.6f (%.2fx)\n",
              uniform.InitialEstimate(k).raw(),
              uniform.InitialEstimate(k).raw() / std::max(*truth, 1e-12));
  std::printf("grid histogram:      %.6f (%.2fx)\n",
              histogram.EstimateDmax(k).raw(),
              histogram.EstimateDmax(k).raw() / std::max(*truth, 1e-12));
  return 0;
}

/// Shared service construction for batch/serve.
service::JoinService::Options ServiceOptionsFromArgs(const Args& args) {
  service::JoinService::Options options;
  options.max_inflight = static_cast<uint32_t>(args.GetUint("inflight", 4));
  options.queue_memory_budget_bytes =
      static_cast<size_t>(args.GetUint("budget-kb", 4096)) * 1024;
  options.spill_io_threads =
      static_cast<uint32_t>(args.GetUint("spill-io-threads", 0));
  options.shards = ParsePositiveFlag(args, "shards", 1);
  options.shard_threads = ParsePositiveFlag(args, "shard-threads", 4);
  options.max_queued = static_cast<uint32_t>(args.GetUint("max-queued", 0));
  options.slow_query_seconds =
      static_cast<double>(args.GetUint("slow-query-ms", 0)) / 1000.0;
  options.dedupe_inflight = args.GetBool("dedupe");
  options.shared_cache_entries =
      static_cast<size_t>(args.GetUint("shared-cache", 0));
  return options;
}

int CmdBatch(const Args& args) {
  Session session(args.Require("r"), args.Require("s"));
  const std::string requests_path = args.Require("requests");

  std::ifstream in(requests_path);
  if (!in) Args::Fail("cannot open request file " + requests_path);
  core::JoinOptions base;
  base.metric = ParseMetric(args.GetString("metric"));
  base.exclude_same_id = args.GetBool("self");
  std::vector<service::JoinRequest> requests;
  std::string line;
  for (size_t lineno = 1; std::getline(in, line); ++lineno) {
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    StatusOr<service::JoinRequest> request = ParseRequestLine(line, lineno);
    CheckOk(request.status());
    request->options = base;
    requests.push_back(std::move(*request));
  }
  if (requests.empty()) Args::Fail("no requests in " + requests_path);

  service::JoinService service(*session.r, *session.s,
                               ServiceOptionsFromArgs(args));
  std::fprintf(stderr,
               "%zu requests, %u in flight, %zu KB queue memory per query\n",
               requests.size(), service.max_inflight(),
               service.per_query_queue_memory_bytes() / 1024);

  Timer wall;
  std::vector<std::future<service::JoinResponse>> futures;
  futures.reserve(requests.size());
  for (const auto& request : requests) {
    futures.push_back(service.Submit(request));
  }
  uint64_t failures = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    const service::JoinResponse response = futures[i].get();
    if (!response.status.ok()) {
      ++failures;
      std::printf("%4zu  FAILED: %s\n", i + 1,
                  response.status.ToString().c_str());
      continue;
    }
    std::printf("%4zu  %zu pairs  cpu=%.3fs  waited=%.3fs  "
                "accesses=%" PRIu64 "  hits=%" PRIu64 "\n",
                i + 1, response.results.size(), response.stats.cpu_seconds,
                response.wait_seconds, response.stats.node_accesses,
                response.stats.node_buffer_hits);
  }
  const double elapsed = wall.ElapsedSeconds();
  std::printf("\n%zu queries in %.3fs (%.1f queries/s, peak in-flight %u, "
              "%" PRIu64 " failed)\n",
              requests.size(), elapsed,
              elapsed > 0 ? requests.size() / elapsed : 0.0,
              service.peak_inflight(), failures);
  return failures == 0 ? 0 : 1;
}

/// Background metrics exporter: atomically rewrites `path` with a JSON
/// snapshot of the global registry every `interval_ms`, plus one final
/// snapshot on destruction so short runs still leave a file behind.
class MetricsExporter {
 public:
  MetricsExporter(std::string path, uint64_t interval_ms)
      : path_(std::move(path)), interval_ms_(interval_ms) {
    thread_ = std::thread([this] { Loop(); });
  }

  ~MetricsExporter() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
    WriteSnapshot();  // shutdown snapshot: the numbers a CI step scrapes
  }

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

 private:
  void Loop() {
    // Sleep in 50ms slices so shutdown latency stays bounded even with a
    // long export interval.
    uint64_t slept_ms = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      slept_ms += 50;
      if (slept_ms < interval_ms_) continue;
      slept_ms = 0;
      WriteSnapshot();
    }
  }

  void WriteSnapshot() {
    // Write-then-rename: a scraper never observes a torn file.
    const std::string tmp = path_ + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "metrics exporter: cannot write %s\n",
                     tmp.c_str());
        return;
      }
      out << MetricsRegistry::Global()->ToJson() << "\n";
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
      std::fprintf(stderr, "metrics exporter: rename to %s failed\n",
                   path_.c_str());
    }
  }

  const std::string path_;
  const uint64_t interval_ms_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

int CmdServe(const Args& args) {
  // All metrics-flag validation fires before any dataset I/O, so a typo'd
  // invocation fails instantly instead of after minutes of loading.
  for (const auto& [key, value] : args.values()) {
    if (key.rfind("metrics", 0) == 0 && key != "metrics-json" &&
        key != "metrics-interval-ms") {
      Args::Fail("unknown flag --" + key +
                 " (metrics flags: --metrics-json=FILE "
                 "--metrics-interval-ms=MS)");
    }
  }
  const uint64_t metrics_interval_ms =
      ParsePositiveFlag(args, "metrics-interval-ms", 1000);
  if (args.Has("metrics-interval-ms") && !args.Has("metrics-json")) {
    Args::Fail("--metrics-interval-ms requires --metrics-json=FILE");
  }
  std::string metrics_json_path;
  if (args.Has("metrics-json")) {
    metrics_json_path = args.GetString("metrics-json");
    if (metrics_json_path.empty() || metrics_json_path == "true") {
      Args::Fail("--metrics-json needs a file path (--metrics-json=FILE)");
    }
  }

  std::unique_ptr<MetricsExporter> exporter;
  if (!metrics_json_path.empty()) {
    exporter = std::make_unique<MetricsExporter>(metrics_json_path,
                                                 metrics_interval_ms);
  }

  // With --requests, serve is batch plus the exporter wrapped around it.
  if (args.Has("requests")) return CmdBatch(args);

  Session session(args.Require("r"), args.Require("s"));
  core::JoinOptions base;
  base.metric = ParseMetric(args.GetString("metric"));
  base.exclude_same_id = args.GetBool("self");
  service::JoinService service(*session.r, *session.s,
                               ServiceOptionsFromArgs(args));
  std::fprintf(stderr, "serving on stdin (request lines, `metrics`, "
                       "`metrics-prom`, `quit`)\n");

  std::string line;
  size_t lineno = 0;
  while (std::getline(std::cin, line)) {
    ++lineno;
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    const size_t end = line.find_last_not_of(" \t\r");
    const std::string command = line.substr(start, end - start + 1);
    if (command == "quit") break;
    if (command == "metrics") {
      std::printf("%s\n", MetricsRegistry::Global()->ToJson().c_str());
      std::fflush(stdout);
      continue;
    }
    if (command == "metrics-prom") {
      std::printf("%s", MetricsRegistry::Global()->ToPrometheusText().c_str());
      std::fflush(stdout);
      continue;
    }
    StatusOr<service::JoinRequest> request = ParseRequestLine(command, lineno);
    if (!request.ok()) {
      // Non-fatal: a control channel that dies on a typo is useless.
      std::fprintf(stderr, "error: %s\n", request.status().ToString().c_str());
      continue;
    }
    request->options = base;
    const service::JoinResponse response =
        service.Submit(std::move(*request)).get();
    if (!response.status.ok()) {
      std::printf("line %zu  FAILED: %s\n", lineno,
                  response.status.ToString().c_str());
    } else {
      std::printf("line %zu  %zu pairs  exec=%.3fs  waited=%.3fs\n", lineno,
                  response.results.size(), response.exec_seconds,
                  response.wait_seconds);
    }
    std::fflush(stdout);
  }
  std::fprintf(stderr, "served %" PRIu64 " queries (%" PRIu64 " rejected)\n",
               service.completed(), service.rejected());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: amdj_cli "
                 "<generate|info|join|stream|batch|serve|semijoin|knn|"
                 "estimate> [--flags]\n(see the header of "
                 "tools/amdj_cli.cc)\n");
    return 2;
  }
  const std::string command = argv[1];
  const Args args(argc, argv);
  // Keyed on flag presence, not value emptiness: `--log-level=` (or any
  // unknown level) is a usage error, never a silent fall-back to the
  // default level.
  if (args.Has("log-level")) {
    SetLogLevel(ParseLogLevel(args.GetString("log-level")));
  }
  if (command == "generate") return CmdGenerate(args);
  if (command == "info") return CmdInfo(args);
  if (command == "join") return CmdJoin(args);
  if (command == "stream") return CmdStream(args);
  if (command == "batch") return CmdBatch(args);
  if (command == "serve") return CmdServe(args);
  if (command == "semijoin") return CmdSemiJoin(args);
  if (command == "knn") return CmdKnn(args);
  if (command == "estimate") return CmdEstimate(args);
  Args::Fail("unknown command " + command);
}

}  // namespace
}  // namespace amdj::cli

int main(int argc, char** argv) { return amdj::cli::Main(argc, argv); }

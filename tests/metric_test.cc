#include "geom/metric.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/distance_join.h"
#include "test_util.h"
#include "workload/generators.h"

namespace amdj {
namespace {

using geom::Metric;
using geom::Rect;

TEST(MetricTest, MinDistanceKnownValues) {
  const Rect a(0, 0, 1, 1);
  const Rect b(4, 5, 6, 7);  // gaps: dx = 3, dy = 4
  EXPECT_DOUBLE_EQ(geom::MinDistance(a, b, Metric::kL2).raw(), 5.0);
  EXPECT_DOUBLE_EQ(geom::MinDistance(a, b, Metric::kL1).raw(), 7.0);
  EXPECT_DOUBLE_EQ(geom::MinDistance(a, b, Metric::kLInf).raw(), 4.0);
}

TEST(MetricTest, IntersectingRectsAreZeroUnderEveryMetric) {
  const Rect a(0, 0, 5, 5);
  const Rect b(4, 4, 9, 9);
  for (const Metric m : {Metric::kL2, Metric::kL1, Metric::kLInf}) {
    EXPECT_EQ(geom::MinDistance(a, b, m), geom::DistVal::Zero());
  }
}

TEST(MetricTest, NormOrderingHolds) {
  // Linf <= L2 <= L1 for every pair.
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    auto rect = [&] {
      const double x = rng.Uniform(-50, 50);
      const double y = rng.Uniform(-50, 50);
      return Rect(x, y, x + rng.Uniform(0, 10), y + rng.Uniform(0, 10));
    };
    const Rect a = rect();
    const Rect b = rect();
    const double l1 = geom::MinDistance(a, b, Metric::kL1).raw();
    const double l2 = geom::MinDistance(a, b, Metric::kL2).raw();
    const double li = geom::MinDistance(a, b, Metric::kLInf).raw();
    EXPECT_LE(li, l2 + 1e-12);
    EXPECT_LE(l2, l1 + 1e-12);
    // The per-axis separations lower-bound every metric (the plane-sweep
    // pruning requirement).
    for (int axis = 0; axis < 2; ++axis) {
      const double ad = geom::AxisDistance(a, b, axis);
      EXPECT_LE(ad, li + 1e-12);
    }
    // And max distance dominates min distance per metric.
    for (const Metric m : {Metric::kL2, Metric::kL1, Metric::kLInf}) {
      EXPECT_LE(geom::MinDistance(a, b, m).raw(),
                geom::MaxDistance(a, b, m).raw() + 1e-12);
    }
  }
}

TEST(MetricTest, L2MatchesLegacyFunctions) {
  Random rng(2);
  for (int i = 0; i < 200; ++i) {
    const Rect a(rng.Uniform(0, 50), rng.Uniform(0, 50),
                 rng.Uniform(50, 100), rng.Uniform(50, 100));
    const Rect b(rng.Uniform(0, 50), rng.Uniform(0, 50),
                 rng.Uniform(50, 100), rng.Uniform(50, 100));
    EXPECT_EQ(geom::MinDistance(a, b, Metric::kL2).raw(),
              geom::MinDistance(a, b));
    EXPECT_EQ(geom::MaxDistance(a, b, Metric::kL2).raw(),
              geom::MaxDistance(a, b));
  }
}

TEST(MetricTest, UnitBallCoefficients) {
  EXPECT_DOUBLE_EQ(geom::UnitBallAreaCoefficient(Metric::kL2), M_PI);
  EXPECT_DOUBLE_EQ(geom::UnitBallAreaCoefficient(Metric::kL1), 2.0);
  EXPECT_DOUBLE_EQ(geom::UnitBallAreaCoefficient(Metric::kLInf), 4.0);
  EXPECT_STREQ(geom::ToString(Metric::kL1), "L1");
}

// ---------------------------------------------------------------------------
// End-to-end: every algorithm ranks correctly under every metric.

std::vector<double> BruteMetric(const std::vector<Rect>& r,
                                const std::vector<Rect>& s, Metric m) {
  std::vector<double> d;
  for (const auto& a : r) {
    for (const auto& b : s) d.push_back(geom::MinDistance(a, b, m).raw());
  }
  std::sort(d.begin(), d.end());
  return d;
}

class MetricJoinTest : public ::testing::TestWithParam<Metric> {};

TEST_P(MetricJoinTest, KdjAlgorithmsRankUnderMetric) {
  const Rect uni(0, 0, 5000, 5000);
  test::JoinFixture f =
      test::MakeFixture(workload::GaussianClusters(250, 5, 0.05, 91, uni),
                        workload::UniformRects(180, 40.0, 92, uni), 8);
  const auto brute = BruteMetric(f.r_objects, f.s_objects, GetParam());
  core::JoinOptions options;
  options.metric = GetParam();
  for (const auto algorithm :
       {core::KdjAlgorithm::kHsKdj, core::KdjAlgorithm::kBKdj,
        core::KdjAlgorithm::kAmKdj, core::KdjAlgorithm::kSjSort}) {
    auto result =
        core::RunKDistanceJoin(*f.r, *f.s, 400, algorithm, options, nullptr);
    ASSERT_TRUE(result.ok()) << core::ToString(algorithm);
    ASSERT_EQ(result->size(), 400u);
    for (size_t i = 0; i < result->size(); ++i) {
      ASSERT_NEAR((*result)[i].distance, brute[i], 1e-9)
          << core::ToString(algorithm) << " rank " << i << " metric "
          << geom::ToString(GetParam());
    }
  }
}

TEST_P(MetricJoinTest, IdjCursorsRankUnderMetric) {
  const Rect uni(0, 0, 5000, 5000);
  test::JoinFixture f =
      test::MakeFixture(workload::GaussianClusters(120, 5, 0.05, 93, uni),
                        workload::UniformRects(100, 40.0, 94, uni), 8);
  const auto brute = BruteMetric(f.r_objects, f.s_objects, GetParam());
  core::JoinOptions options;
  options.metric = GetParam();
  options.idj_initial_k = 32;
  for (const auto algorithm :
       {core::IdjAlgorithm::kHsIdj, core::IdjAlgorithm::kAmIdj}) {
    auto cursor =
        core::OpenIncrementalJoin(*f.r, *f.s, algorithm, options, nullptr);
    ASSERT_TRUE(cursor.ok());
    core::ResultPair p;
    bool done = false;
    for (size_t i = 0; i < 500; ++i) {
      ASSERT_TRUE((*cursor)->Next(&p, &done).ok());
      ASSERT_FALSE(done);
      ASSERT_NEAR(p.distance, brute[i], 1e-9)
          << core::ToString(algorithm) << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricJoinTest,
                         ::testing::Values(Metric::kL2, Metric::kL1,
                                           Metric::kLInf),
                         [](const auto& info) {
                           return geom::ToString(info.param);
                         });

}  // namespace
}  // namespace amdj

# Regression test for --log-level parsing: unknown, empty, and valueless
# levels must exit with a usage error (code 2, "unknown log level" on
# stderr) instead of silently running at the default level; valid levels
# must still be accepted.

function(expect_rejected)
  execute_process(COMMAND ${ARGV}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err
                  WORKING_DIRECTORY ${WORK_DIR})
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR
        "expected usage-error exit 2, got ${rc}: ${ARGV}\n${out}${err}")
  endif()
  if(NOT err MATCHES "unknown log level")
    message(FATAL_ERROR
        "expected 'unknown log level' in stderr of: ${ARGV}\n${out}${err}")
  endif()
endfunction()

function(expect_ok)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc
                  WORKING_DIRECTORY ${WORK_DIR})
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}")
  endif()
endfunction()

expect_rejected(${CLI} generate --log-level=loud
                --kind=uniform --n=10 --seed=1 --out=log_level_junk.ds)
expect_rejected(${CLI} generate --log-level=
                --kind=uniform --n=10 --seed=1 --out=log_level_junk.ds)
# Valueless `--log-level` parses as the value "true" — also a usage error.
expect_rejected(${CLI} generate --log-level
                --kind=uniform --n=10 --seed=1 --out=log_level_junk.ds)
# The rejection must fire before any work happens, whatever the command.
expect_rejected(${CLI} join --log-level=verbose --r=absent.ds --s=absent.ds)

foreach(level debug info warn error off)
  expect_ok(${CLI} generate --log-level=${level}
            --kind=uniform --n=10 --seed=1 --out=log_level_ok.ds)
endforeach()

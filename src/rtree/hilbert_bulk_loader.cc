#include "rtree/hilbert_bulk_loader.h"

#include <algorithm>
#include <cmath>

#include "rtree/node.h"
#include "rtree/rtree.h"

namespace amdj::rtree {

uint64_t HilbertBulkLoader::HilbertIndex(uint32_t order, uint32_t x,
                                         uint32_t y) {
  // Classic xy -> d conversion (Hilbert curve, iterative quadrant fold).
  uint64_t d = 0;
  for (uint32_t s = (order == 0 ? 0 : 1u << (order - 1)); s > 0; s >>= 1) {
    const uint32_t rx = (x & s) > 0 ? 1 : 0;
    const uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    // Rotate the quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

Status HilbertBulkLoader::Load(std::vector<Entry> objects, double fill) {
  if (fill <= 0.0 || fill > 1.0) {
    return Status::InvalidArgument("fill factor must be in (0, 1]");
  }
  const uint32_t capacity = std::max<uint32_t>(
      2, static_cast<uint32_t>(tree_->options_.max_entries * fill));

  tree_->size_ = objects.size();
  tree_->node_count_ = 0;
  tree_->bounds_ = geom::Rect::Empty();
  for (const Entry& e : objects) tree_->bounds_.Extend(e.rect);

  if (objects.empty()) {
    Node root;
    root.level = 0;
    auto id = tree_->AllocNode(root);
    if (!id.ok()) return id.status();
    tree_->root_ = *id;
    tree_->height_ = 1;
    tree_->node_count_ = 1;
    return Status::OK();
  }

  // Sort by Hilbert index of the MBR center on a 2^16 grid over the data
  // bounds (ties by id for determinism).
  constexpr uint32_t kOrder = 16;
  constexpr double kGrid = 65536.0;
  const geom::Rect bounds = tree_->bounds_;
  const double inv_w = bounds.Side(0) > 0 ? (kGrid - 1) / bounds.Side(0) : 0;
  const double inv_h = bounds.Side(1) > 0 ? (kGrid - 1) / bounds.Side(1) : 0;
  std::vector<std::pair<uint64_t, Entry>> keyed;
  keyed.reserve(objects.size());
  for (const Entry& e : objects) {
    const geom::Point c = e.rect.Center();
    const uint32_t gx =
        static_cast<uint32_t>((c.x - bounds.lo.x) * inv_w);
    const uint32_t gy =
        static_cast<uint32_t>((c.y - bounds.lo.y) * inv_h);
    keyed.emplace_back(HilbertIndex(kOrder, gx, gy), e);
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second.id < b.second.id;
            });

  // Pack nodes bottom-up in curve order.
  std::vector<Entry> level_entries;
  level_entries.reserve(keyed.size());
  for (auto& [key, entry] : keyed) level_entries.push_back(entry);
  uint16_t level = 0;
  while (true) {
    const size_t n = level_entries.size();
    if (n <= capacity) {
      Node root;
      root.level = level;
      root.entries = std::move(level_entries);
      auto id = tree_->AllocNode(root);
      if (!id.ok()) return id.status();
      ++tree_->node_count_;
      tree_->root_ = *id;
      tree_->height_ = static_cast<uint16_t>(level + 1);
      return Status::OK();
    }
    std::vector<Entry> next_level;
    next_level.reserve((n + capacity - 1) / capacity);
    for (size_t i = 0; i < n; i += capacity) {
      const size_t end = std::min(n, i + capacity);
      Node node;
      node.level = level;
      node.entries.assign(level_entries.begin() + i,
                          level_entries.begin() + end);
      auto id = tree_->AllocNode(node);
      if (!id.ok()) return id.status();
      ++tree_->node_count_;
      next_level.emplace_back(node.ComputeMbr(), *id);
    }
    level_entries = std::move(next_level);
    ++level;
  }
}

}  // namespace amdj::rtree

// Self-join mode: joining a data set with itself while suppressing the
// zero-distance identical-id diagonal (JoinOptions::exclude_same_id).

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "test_util.h"
#include "workload/generators.h"

namespace amdj::core {
namespace {

/// Brute-force distances of the self-join without the diagonal. Both
/// (i, j) and (j, i) are reported, matching the join semantics.
std::vector<double> BruteSelfJoin(const std::vector<geom::Rect>& objects) {
  std::vector<double> d;
  for (uint32_t i = 0; i < objects.size(); ++i) {
    for (uint32_t j = 0; j < objects.size(); ++j) {
      if (i == j) continue;
      d.push_back(geom::MinDistance(objects[i], objects[j]));
    }
  }
  std::sort(d.begin(), d.end());
  return d;
}

class SelfJoinTest : public ::testing::TestWithParam<KdjAlgorithm> {};

TEST_P(SelfJoinTest, ExcludesDiagonalAndMatchesBruteForce) {
  const geom::Rect uni(0, 0, 2000, 2000);
  const auto data = workload::GaussianClusters(200, 4, 0.05, 111, uni);
  test::JoinFixture f = test::MakeFixture(data, data, 8);
  const auto brute = BruteSelfJoin(f.r_objects);

  JoinOptions options;
  options.exclude_same_id = true;
  auto result =
      RunKDistanceJoin(*f.r, *f.s, 300, GetParam(), options, nullptr);
  ASSERT_TRUE(result.ok()) << ToString(GetParam());
  ASSERT_EQ(result->size(), 300u);
  for (size_t i = 0; i < result->size(); ++i) {
    EXPECT_NE((*result)[i].r_id, (*result)[i].s_id);
    ASSERT_NEAR((*result)[i].distance, brute[i], 1e-9) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKdj, SelfJoinTest,
                         ::testing::Values(KdjAlgorithm::kHsKdj,
                                           KdjAlgorithm::kBKdj,
                                           KdjAlgorithm::kAmKdj),
                         [](const auto& info) {
                           std::string n = ToString(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

TEST(SelfJoinTest, IdjCursorsExcludeDiagonal) {
  const geom::Rect uni(0, 0, 1000, 1000);
  const auto data = workload::UniformPoints(100, 112, uni);
  test::JoinFixture f = test::MakeFixture(data, data, 6);
  const auto brute = BruteSelfJoin(f.r_objects);
  JoinOptions options;
  options.exclude_same_id = true;
  options.idj_initial_k = 16;
  for (const auto algorithm :
       {IdjAlgorithm::kHsIdj, IdjAlgorithm::kAmIdj}) {
    auto cursor =
        OpenIncrementalJoin(*f.r, *f.s, algorithm, options, nullptr);
    ASSERT_TRUE(cursor.ok());
    ResultPair p;
    bool done = false;
    for (size_t i = 0; i < 400; ++i) {
      ASSERT_TRUE((*cursor)->Next(&p, &done).ok());
      ASSERT_FALSE(done);
      EXPECT_NE(p.r_id, p.s_id);
      ASSERT_NEAR(p.distance, brute[i], 1e-9)
          << ToString(algorithm) << " rank " << i;
    }
  }
}

TEST(SelfJoinTest, WithoutExclusionDiagonalDominates) {
  const geom::Rect uni(0, 0, 1000, 1000);
  const auto data = workload::UniformPoints(60, 113, uni);
  test::JoinFixture f = test::MakeFixture(data, data, 6);
  auto result = RunKDistanceJoin(*f.r, *f.s, 60, KdjAlgorithm::kAmKdj,
                                 JoinOptions{}, nullptr);
  ASSERT_TRUE(result.ok());
  // All 60 diagonal pairs have distance 0 and fill the result.
  for (const auto& p : *result) EXPECT_EQ(p.distance, 0.0);
}

TEST(SelfJoinTest, ExhaustionExcludesExactlyTheDiagonal) {
  const geom::Rect uni(0, 0, 500, 500);
  const auto data = workload::UniformPoints(40, 114, uni);
  test::JoinFixture f = test::MakeFixture(data, data, 5);
  JoinOptions options;
  options.exclude_same_id = true;
  auto result = RunKDistanceJoin(*f.r, *f.s, 10000, KdjAlgorithm::kBKdj,
                                 options, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 40u * 40u - 40u);
}

}  // namespace
}  // namespace amdj::core

#include "common/random.h"

#include <cmath>

namespace amdj {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // Avoid the all-zero state, which is a fixed point of xoshiro.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Random::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Random::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Random::UniformInt(uint64_t n) {
  // Lemire's multiply-shift rejection-free mapping is fine here; slight bias
  // for huge n is irrelevant for workload generation.
  return static_cast<uint64_t>(NextDouble() * static_cast<double>(n)) %
         (n == 0 ? 1 : n);
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo + 1)));
}

double Random::Gaussian() {
  if (has_gaussian_spare_) {
    has_gaussian_spare_ = false;
    return gaussian_spare_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  gaussian_spare_ = mag * std::sin(2.0 * M_PI * u2);
  has_gaussian_spare_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Random::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Random::Exponential(double lambda) {
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / lambda;
}

uint64_t Random::Zipf(uint64_t n, double theta) {
  // "Quickly generating billion-record synthetic databases", Gray et al.
  // theta in (0,1]; theta -> 0 approaches uniform.
  if (n <= 1) return 0;
  const double alpha = 1.0 / (1.0 - theta);
  // zeta(n, theta) computed incrementally would be O(n); approximate with
  // the standard zeta(2) trick.
  double zeta2 = 0.0;
  for (int i = 1; i <= 2; ++i) zeta2 += 1.0 / std::pow(i, theta);
  // Approximate zeta_n via integral bound; adequate for workload skew.
  const double zetan = zeta2 + (std::pow(static_cast<double>(n), 1 - theta) -
                                std::pow(2.0, 1 - theta)) /
                                   (1 - theta);
  const double eta =
      (1 - std::pow(2.0 / static_cast<double>(n), 1 - theta)) /
      (1 - zeta2 / zetan);
  const double u = NextDouble();
  const double uz = u * zetan;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  return static_cast<uint64_t>(static_cast<double>(n) *
                               std::pow(eta * u - eta + 1.0, alpha)) %
         n;
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

}  // namespace amdj

#include "core/plane_sweeper.h"

#include <algorithm>
#include <limits>
#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "common/random.h"

namespace amdj::core {
namespace {

using geom::Rect;
using geom::SweepDirection;

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<PairRef> MakeRefs(const std::vector<Rect>& rects,
                              uint32_t id_base) {
  std::vector<PairRef> refs;
  for (size_t i = 0; i < rects.size(); ++i) {
    PairRef r;
    r.rect = rects[i];
    r.id = id_base + static_cast<uint32_t>(i);
    r.kind = RefKind::kObject;
    refs.push_back(r);
  }
  return refs;
}

/// Reference: all pairs with axis separation <= cutoff.
std::set<std::pair<uint32_t, uint32_t>> BruteWithin(
    const std::vector<PairRef>& left, const std::vector<PairRef>& right,
    int axis, double cutoff) {
  std::set<std::pair<uint32_t, uint32_t>> out;
  for (const auto& l : left) {
    for (const auto& r : right) {
      if (geom::AxisDistance(l.rect, r.rect, axis) <= cutoff) {
        out.insert({l.id, r.id});
      }
    }
  }
  return out;
}

std::set<std::pair<uint32_t, uint32_t>> SweepPairs(
    const std::vector<PairRef>& left, const std::vector<PairRef>& right,
    const SweepPlan& plan, double cutoff, bool* covered = nullptr,
    JoinStats* stats = nullptr) {
  std::set<std::pair<uint32_t, uint32_t>> out;
  const bool c = PlaneSweep(
      left, right, plan, &cutoff, stats,
      [&](const PairRef& l, const PairRef& r, double axis_dist) {
        EXPECT_LE(axis_dist, cutoff);
        EXPECT_NEAR(axis_dist, geom::AxisDistance(l.rect, r.rect, plan.axis),
                    1e-12);
        const bool inserted = out.insert({l.id, r.id}).second;
        EXPECT_TRUE(inserted) << "pair enumerated twice";
      });
  if (covered != nullptr) *covered = c;
  return out;
}

TEST(PlaneSweeperTest, EnumeratesExactlyPairsWithinCutoff) {
  Random rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Rect> l_rects, r_rects;
    const int nl = 1 + rng.UniformInt(uint64_t{30});
    const int nr = 1 + rng.UniformInt(uint64_t{30});
    auto rect = [&] {
      const double x = rng.Uniform(0, 100);
      const double y = rng.Uniform(0, 100);
      return Rect(x, y, x + rng.Uniform(0, 10), y + rng.Uniform(0, 10));
    };
    for (int i = 0; i < nl; ++i) l_rects.push_back(rect());
    for (int i = 0; i < nr; ++i) r_rects.push_back(rect());
    const auto left = MakeRefs(l_rects, 0);
    const auto right = MakeRefs(r_rects, 1000);
    const double cutoff = rng.Uniform(0, 30);
    for (int axis = 0; axis < 2; ++axis) {
      for (const auto dir :
           {SweepDirection::kForward, SweepDirection::kBackward}) {
        const SweepPlan plan{axis, dir};
        EXPECT_EQ(SweepPairs(left, right, plan, cutoff),
                  BruteWithin(left, right, axis, cutoff))
            << "axis=" << axis << " dir=" << static_cast<int>(dir);
      }
    }
  }
}

TEST(PlaneSweeperTest, InfiniteCutoffIsCartesianAndCovered) {
  const auto left = MakeRefs({Rect(0, 0, 1, 1), Rect(5, 5, 6, 6)}, 0);
  const auto right =
      MakeRefs({Rect(2, 2, 3, 3), Rect(9, 0, 10, 1), Rect(4, 8, 5, 9)}, 100);
  bool covered = false;
  const auto pairs =
      SweepPairs(left, right, {0, SweepDirection::kForward}, kInf, &covered);
  EXPECT_EQ(pairs.size(), 6u);
  EXPECT_TRUE(covered);
}

TEST(PlaneSweeperTest, CoveredFlagFalseWhenCutoffPrunes) {
  const auto left = MakeRefs({Rect(0, 0, 1, 1)}, 0);
  const auto right = MakeRefs({Rect(100, 0, 101, 1)}, 100);
  bool covered = true;
  const auto pairs =
      SweepPairs(left, right, {0, SweepDirection::kForward}, 5.0, &covered);
  EXPECT_TRUE(pairs.empty());
  EXPECT_FALSE(covered);
}

TEST(PlaneSweeperTest, EmptyListsAreHandled) {
  const auto some = MakeRefs({Rect(0, 0, 1, 1)}, 0);
  const std::vector<PairRef> none;
  bool covered = false;
  EXPECT_TRUE(
      SweepPairs(none, some, {0, SweepDirection::kForward}, kInf, &covered)
          .empty());
  EXPECT_TRUE(
      SweepPairs(some, none, {0, SweepDirection::kForward}, kInf, &covered)
          .empty());
  EXPECT_TRUE(
      SweepPairs(none, none, {0, SweepDirection::kForward}, kInf, &covered)
          .empty());
}

TEST(PlaneSweeperTest, DynamicCutoffShrinkTightensRemainingSweep) {
  // Five right items at x = 0, 10, 20, 30, 40; anchor at x = 0 with cutoff
  // starting at 100 that shrinks to 15 after the first callback.
  const auto left = MakeRefs({Rect(0, 0, 0, 0)}, 0);
  const auto right = MakeRefs(
      {Rect(0, 0, 0, 0), Rect(10, 0, 10, 0), Rect(20, 0, 20, 0),
       Rect(30, 0, 30, 0), Rect(40, 0, 40, 0)},
      100);
  double cutoff = 100.0;
  std::vector<uint32_t> seen;
  PlaneSweep(left, right, {0, SweepDirection::kForward}, &cutoff, nullptr,
             [&](const PairRef& /*l*/, const PairRef& r, double) {
               seen.push_back(r.id);
               cutoff = 15.0;
             });
  // 0 and 10 qualify; 20, 30, 40 are cut off after the shrink.
  EXPECT_EQ(seen, (std::vector<uint32_t>{100, 101}));
}

TEST(PlaneSweeperTest, NegativeCutoffAbortsSweepImmediately) {
  // A callback that drops the cutoff below zero (the join loops do this on
  // a failed queue push) must stop the sweep after the current pair and
  // report the sweep as not covered.
  const auto left = MakeRefs({Rect(0, 0, 0, 0)}, 0);
  const auto right = MakeRefs(
      {Rect(0, 0, 0, 0), Rect(1, 0, 1, 0), Rect(2, 0, 2, 0),
       Rect(3, 0, 3, 0)},
      100);
  double cutoff = 100.0;
  std::vector<uint32_t> seen;
  const bool covered = PlaneSweep(
      left, right, {0, SweepDirection::kForward}, &cutoff, nullptr,
      [&](const PairRef& /*l*/, const PairRef& r, double) {
        seen.push_back(r.id);
        cutoff = -1.0;  // abort
      });
  EXPECT_EQ(seen, (std::vector<uint32_t>{100}));
  EXPECT_FALSE(covered);
}

TEST(PlaneSweeperTest, MidSweepShrinkMatchesBruteForceAtFinalCutoff) {
  // Shrinking the cutoff mid-sweep may drop pairs the *initial* cutoff
  // admitted, but everything within the *final* cutoff that sorts before
  // the shrink point must still be enumerated. With the shrink applied
  // before any pair is seen, the sweep equals a fixed-cutoff sweep.
  Random rng(23);
  std::vector<Rect> l_rects, r_rects;
  for (int i = 0; i < 25; ++i) {
    const double x = rng.Uniform(0, 100);
    l_rects.push_back(Rect(x, 0, x + rng.Uniform(0, 4), 1));
    const double y = rng.Uniform(0, 100);
    r_rects.push_back(Rect(y, 0, y + rng.Uniform(0, 4), 1));
  }
  const auto left = MakeRefs(l_rects, 0);
  const auto right = MakeRefs(r_rects, 1000);
  const double final_cutoff = 8.0;
  double cutoff = 50.0;
  std::set<std::pair<uint32_t, uint32_t>> seen;
  bool first = true;
  PlaneSweep(left, right, {0, SweepDirection::kForward}, &cutoff, nullptr,
             [&](const PairRef& l, const PairRef& r, double axis_dist) {
               if (first) {
                 cutoff = final_cutoff;  // shrink before admitting anything
                 first = false;
               }
               if (axis_dist <= final_cutoff) seen.insert({l.id, r.id});
             });
  // The cutoff never dropped below final_cutoff, so every pair within it
  // must have been enumerated: the filtered callback set is exactly the
  // fixed-cutoff brute force result.
  EXPECT_EQ(seen, BruteWithin(left, right, 0, final_cutoff));
}

TEST(PlaneSweeperTest, AxisDistancePerAnchorIsNonDecreasing) {
  Random rng(9);
  std::vector<Rect> l_rects, r_rects;
  for (int i = 0; i < 40; ++i) {
    const double x = rng.Uniform(0, 100);
    l_rects.push_back(Rect(x, 0, x + rng.Uniform(0, 5), 1));
    const double y = rng.Uniform(0, 100);
    r_rects.push_back(Rect(y, 0, y + rng.Uniform(0, 5), 1));
  }
  const auto left = MakeRefs(l_rects, 0);
  const auto right = MakeRefs(r_rects, 1000);
  // Track per-anchor monotonicity via the callback order: whenever the
  // anchor changes, the distance may reset; within an anchor it ascends.
  double cutoff = 30.0;
  uint32_t last_anchor = UINT32_MAX;
  double last_dist = 0.0;
  int violations = 0;
  PlaneSweep(left, right, {0, SweepDirection::kForward}, &cutoff, nullptr,
             [&](const PairRef& l, const PairRef& r, double axis_dist) {
               // One of l/r is the anchor; approximate by tracking l.
               const uint32_t anchor = std::min(l.id, r.id);
               if (anchor == last_anchor && axis_dist < last_dist - 1e-12) {
                 ++violations;
               }
               last_anchor = anchor;
               last_dist = axis_dist;
             });
  EXPECT_EQ(violations, 0);
}

TEST(PlaneSweeperTest, CountsAxisComputations) {
  const auto left = MakeRefs({Rect(0, 0, 1, 1), Rect(2, 0, 3, 1)}, 0);
  const auto right = MakeRefs({Rect(1, 0, 2, 1), Rect(4, 0, 5, 1)}, 100);
  JoinStats stats;
  double cutoff = kInf;
  PlaneSweep(left, right, {0, SweepDirection::kForward}, &cutoff, &stats,
             [](const PairRef&, const PairRef&, double) {});
  EXPECT_EQ(stats.axis_distance_computations, 4u);
}

TEST(PlaneSweeperTest, SingletonVsListWorks) {
  // The node-vs-object degenerate case: one side is a single ref.
  const auto left = MakeRefs({Rect(5, 5, 6, 6)}, 0);
  std::vector<Rect> rects;
  for (int i = 0; i < 20; ++i) rects.push_back(Rect(i, 5, i + 0.5, 6));
  const auto right = MakeRefs(rects, 100);
  const auto pairs =
      SweepPairs(left, right, {0, SweepDirection::kForward}, 3.0);
  EXPECT_EQ(pairs, BruteWithin(left, right, 0, 3.0));
}

}  // namespace
}  // namespace amdj::core

// Figure 13: performance impact of memory size. Response time of the four
// KDJ algorithms at k = 100,000 while the in-memory portion of the main
// queue and the R-tree buffer sweep 64 KB .. 1024 KB.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"

namespace amdj::bench {
namespace {

void Run(int argc, char** argv) {
  const BenchConfig base = BenchConfig::FromArgs(argc, argv);
  const uint64_t k = 100000;

  const std::vector<size_t> memories = {64 * 1024, 128 * 1024, 256 * 1024,
                                        512 * 1024, 1024 * 1024};
  const std::vector<core::KdjAlgorithm> algorithms = {
      core::KdjAlgorithm::kHsKdj, core::KdjAlgorithm::kBKdj,
      core::KdjAlgorithm::kAmKdj, core::KdjAlgorithm::kSjSort};

  // Header printed with the base env (rebuilt per memory size below).
  {
    BenchEnv env = MakeTigerEnv(base);
    PrintHeader("Figure 13: response time vs memory size (k=100000)", env);
  }

  const std::vector<int> widths = {10, 12, 12, 12, 12, 12};
  std::vector<std::string> header = {"algorithm"};
  for (size_t m : memories) {
    header.push_back(std::to_string(m / 1024) + "KB");
  }
  PrintRow(header, widths);

  std::vector<std::vector<std::string>> rows(algorithms.size());
  for (size_t ai = 0; ai < algorithms.size(); ++ai) {
    rows[ai].push_back(core::ToString(algorithms[ai]));
  }
  for (size_t m : memories) {
    BenchConfig config = base;
    config.buffer_bytes = m;
    config.memory_bytes = m;
    BenchEnv env = MakeTigerEnv(config);
    for (size_t ai = 0; ai < algorithms.size(); ++ai) {
      const RunResult run =
          RunKdjCold(env, algorithms[ai], k, env.MakeJoinOptions());
      rows[ai].push_back(FormatSeconds(run.stats.response_seconds()));
    }
  }
  for (const auto& row : rows) PrintRow(row, widths);
}

}  // namespace
}  // namespace amdj::bench

int main(int argc, char** argv) {
  amdj::bench::Run(argc, argv);
  return 0;
}

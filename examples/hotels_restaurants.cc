// The paper's motivating query (Section 1):
//
//   SELECT h.name, r.name
//   FROM Hotel h, Restaurant r
//   ORDER BY distance(h.location, r.location)
//   STOP AFTER k;
//
// Generates a city of hotels and restaurants (restaurants cluster in food
// districts, hotels around transit hubs), indexes both with R*-trees, and
// answers the query with every algorithm, comparing their work.
//
//   $ ./hotels_restaurants [k]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/distance_join.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  using namespace amdj;
  const uint64_t k = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10;

  // A 20 km x 20 km city, coordinates in meters.
  const geom::Rect city(0, 0, 20000, 20000);
  const auto hotels = workload::GaussianClusters(
      /*n=*/5000, /*clusters=*/6, /*sigma_frac=*/0.06, /*seed=*/777, city);
  const auto restaurants = workload::GaussianClusters(
      /*n=*/12000, /*clusters=*/15, /*sigma_frac=*/0.04, /*seed=*/778, city);

  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 256);  // 1 MB of buffer
  auto hotel_tree = rtree::RTree::Create(&pool, {}).value();
  auto restaurant_tree = rtree::RTree::Create(&pool, {}).value();
  if (Status s = hotel_tree->BulkLoad(hotels.ToEntries()); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = restaurant_tree->BulkLoad(restaurants.ToEntries());
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("SELECT h.name, r.name FROM Hotel h, Restaurant r\n");
  std::printf("ORDER BY distance(h.location, r.location) STOP AFTER %llu;\n\n",
              (unsigned long long)k);

  for (const auto algorithm :
       {core::KdjAlgorithm::kHsKdj, core::KdjAlgorithm::kBKdj,
        core::KdjAlgorithm::kAmKdj}) {
    JoinStats stats;
    auto result = core::RunKDistanceJoin(*hotel_tree, *restaurant_tree, k,
                                         algorithm, core::JoinOptions{},
                                         &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", core::ToString(algorithm),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-8s  %.1f ms, %llu distance computations, %llu queue ins\n",
                core::ToString(algorithm), stats.cpu_seconds * 1000.0,
                (unsigned long long)stats.real_distance_computations,
                (unsigned long long)stats.main_queue_insertions);
    if (algorithm == core::KdjAlgorithm::kAmKdj) {
      std::printf("\ntop %llu pairs (AM-KDJ):\n", (unsigned long long)k);
      for (size_t i = 0; i < result->size() && i < 10; ++i) {
        const auto& p = (*result)[i];
        std::printf("  hotel-%04u  <-> restaurant-%05u   %.1f m\n", p.r_id,
                    p.s_id, p.distance);
      }
    }
  }
  return 0;
}

// Incremental ("enough already!") exploration, Section 4.2's scenario: the
// stopping cardinality is unknown up front — an analyst keeps asking for
// the next batch of closest pairs until satisfied. AM-IDJ serves each batch
// from its current stage and only widens its cutoff (compensating for
// aggressively pruned pairs) when the user keeps going.
//
//   $ ./incremental_explorer [batches] [batch_size]

#include <cstdio>
#include <cstdlib>

#include "core/amidj.h"
#include "core/distance_join.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  using namespace amdj;
  const int batches = argc > 1 ? std::atoi(argv[1]) : 5;
  const uint64_t batch_size =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1000;

  workload::TigerSynthOptions wopts;
  wopts.street_segments = 30000;
  wopts.hydro_objects = 9000;
  const auto streets = workload::TigerStreets(wopts);
  const auto hydro = workload::TigerHydro(wopts);

  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 256);
  auto street_tree = rtree::RTree::Create(&pool, {}).value();
  auto hydro_tree = rtree::RTree::Create(&pool, {}).value();
  if (!street_tree->BulkLoad(streets.ToEntries()).ok() ||
      !hydro_tree->BulkLoad(hydro.ToEntries()).ok()) {
    std::fprintf(stderr, "bulk load failed\n");
    return 1;
  }

  JoinStats stats;
  core::AmIdjCursor cursor(*street_tree, *hydro_tree, core::JoinOptions{},
                           &stats);

  std::printf("streaming the closest street-hydrography pairs, %llu at a "
              "time:\n\n",
              (unsigned long long)batch_size);
  for (int b = 1; b <= batches; ++b) {
    cursor.PrefetchHint(static_cast<uint64_t>(b) * batch_size);
    core::ResultPair first{}, last{};
    bool done = false;
    uint64_t got = 0;
    while (got < batch_size) {
      core::ResultPair p;
      if (Status s = cursor.Next(&p, &done); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      if (done) break;
      if (got == 0) first = p;
      last = p;
      ++got;
    }
    std::printf("batch %d: %llu pairs, distances %.2f .. %.2f  "
                "(stage %u, cutoff eDmax = %.2f)\n",
                b, (unsigned long long)got, first.distance, last.distance,
                cursor.stage_count(), cursor.current_edmax().raw());
    if (done) {
      std::printf("join exhausted.\n");
      break;
    }
  }
  std::printf("\ntotals: %llu pairs produced, %llu distance computations, "
              "%llu compensation-queue entries\n",
              (unsigned long long)cursor.produced(),
              (unsigned long long)stats.real_distance_computations,
              (unsigned long long)stats.compensation_queue_insertions);
  return 0;
}

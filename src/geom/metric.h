#ifndef AMDJ_GEOM_METRIC_H_
#define AMDJ_GEOM_METRIC_H_

#include <algorithm>
#include <cmath>

#include "geom/rect.h"
#include "geom/units.h"

namespace amdj::geom {

/// Distance metric for join processing. The paper notes that "a distance
/// ... can be defined in many different ways according to various
/// application specific requirements" (Section 1); all algorithms here work
/// for any metric whose per-axis separation lower-bounds the full distance,
/// which holds for every Lp norm — so the plane-sweep pruning and Lemma 1
/// remain exact under each of these.
enum class Metric : uint8_t {
  kL2 = 0,    ///< Euclidean (the paper's evaluation metric).
  kL1 = 1,    ///< Manhattan.
  kLInf = 2,  ///< Chebyshev.
};

/// Stable display name ("L2", "L1", "Linf").
const char* ToString(Metric metric);

namespace metric_internal {

/// Raw-double cores of the unit-bearing functions below, shared with the
/// batch kernels' scalar reference paths and the units' own round-trip
/// tests. Not part of the typed API surface: everything outside geom/
/// converts through the DistVal/KeyVal wrappers.
inline double MinDistanceRaw(const Rect& a, const Rect& b, Metric metric) {
  const double dx = AxisDistance(a, b, 0);
  const double dy = AxisDistance(a, b, 1);
  switch (metric) {
    case Metric::kL2:
      return std::sqrt(dx * dx + dy * dy);
    case Metric::kL1:
      return dx + dy;
    case Metric::kLInf:
      return std::max(dx, dy);
  }
  return 0.0;
}

inline double MaxDistanceRaw(const Rect& a, const Rect& b, Metric metric) {
  const double dx =
      std::max(std::abs(a.hi.x - b.lo.x), std::abs(b.hi.x - a.lo.x));
  const double dy =
      std::max(std::abs(a.hi.y - b.lo.y), std::abs(b.hi.y - a.lo.y));
  switch (metric) {
    case Metric::kL2:
      return std::sqrt(dx * dx + dy * dy);
    case Metric::kL1:
      return dx + dy;
    case Metric::kLInf:
      return std::max(dx, dy);
  }
  return 0.0;
}

inline double DistanceToKeyRaw(double d, Metric metric) {
  return metric == Metric::kL2 ? d * d : d;
}

inline double KeyToDistanceRaw(double key, Metric metric) {
  return metric == Metric::kL2 ? std::sqrt(key) : key;
}

inline double DistanceToKeyCutoffRaw(double d, Metric metric) {
  if (metric != Metric::kL2) return d;
  if (d < 0.0 || std::isinf(d)) return d;  // sentinels / no-cutoff pass
  double k = d * d;
  while (std::sqrt(k) > d) {
    k = std::nextafter(k, 0.0);
  }
  for (;;) {
    const double up = std::nextafter(k, HUGE_VAL);
    if (!(std::sqrt(up) <= d)) break;
    k = up;
  }
  return k;
}

inline double MinDistanceKeyRaw(const Rect& a, const Rect& b, Metric metric) {
  const double dx = AxisDistance(a, b, 0);
  const double dy = AxisDistance(a, b, 1);
  switch (metric) {
    case Metric::kL2:
      return dx * dx + dy * dy;
    case Metric::kL1:
      return dx + dy;
    case Metric::kLInf:
      return std::max(dx, dy);
  }
  return 0.0;
}

inline double MaxDistanceKeyRaw(const Rect& a, const Rect& b, Metric metric) {
  const double dx =
      std::max(std::abs(a.hi.x - b.lo.x), std::abs(b.hi.x - a.lo.x));
  const double dy =
      std::max(std::abs(a.hi.y - b.lo.y), std::abs(b.hi.y - a.lo.y));
  switch (metric) {
    case Metric::kL2:
      return dx * dx + dy * dy;
    case Metric::kL1:
      return dx + dy;
    case Metric::kLInf:
      return std::max(dx, dy);
  }
  return 0.0;
}

}  // namespace metric_internal

/// Minimum distance between two MBRs under `metric` (0 when intersecting).
inline DistVal MinDistance(const Rect& a, const Rect& b, Metric metric) {
  return DistVal(metric_internal::MinDistanceRaw(a, b, metric));
}

/// Maximum distance between any point of `a` and any point of `b` under
/// `metric`.
inline DistVal MaxDistance(const Rect& a, const Rect& b, Metric metric) {
  return DistVal(metric_internal::MaxDistanceRaw(a, b, metric));
}

/// The metric *key*: the value the join hot path stores and compares. For
/// L2 it is the squared distance — strictly monotone in the true distance,
/// so every comparison (queue order, cutoff tests, eDmax) is unchanged
/// while the per-candidate sqrt disappears; for L1/LInf the key is the
/// distance itself. Keys convert to distances with one KeyToDistance at
/// emission and at the estimator API boundary. This function and its two
/// siblings below are the ONLY sanctioned DistVal->KeyVal / KeyVal->DistVal
/// fences (see geom/units.h).
inline KeyVal DistanceToKey(DistVal d, Metric metric) {
  return KeyVal(metric_internal::DistanceToKeyRaw(d.raw(), metric));
}

/// Inverse of DistanceToKey. For L2 this is exact on round-trips:
/// sqrt(fl(d*d)) == d for any non-negative double d whose square neither
/// overflows nor underflows (classical IEEE-754 result).
inline DistVal KeyToDistance(KeyVal key, Metric metric) {
  return DistVal(metric_internal::KeyToDistanceRaw(key.raw(), metric));
}

/// Converts a *cutoff* from distance space to key space such that
/// key <= DistanceToKeyCutoff(d) holds exactly when KeyToDistance(key) <= d:
/// the largest key whose distance does not exceed `d`. DistanceToKey alone
/// is not enough for cutoffs that did not originate as keys — fl(d*d) can
/// land one ulp below the key of a pair at distance exactly `d` (sqrt(k)^2
/// does not round-trip for arbitrary k), silently excluding boundary pairs
/// that the distance-space comparison `dist <= d` admits. sqrt is weakly
/// monotone, so {k : sqrt(k) <= d} is a prefix of the doubles and fl(d*d)
/// is within an ulp or two of its end; the nextafter walks find it exactly.
inline KeyVal DistanceToKeyCutoff(DistVal d, Metric metric) {
  return KeyVal(metric_internal::DistanceToKeyCutoffRaw(d.raw(), metric));
}

/// Key of a one-axis separation (a gap lower-bounds the distance on every
/// Lp axis, so gap-key > cutoff-key is exactly the Lemma-1 prune in key
/// space). The gap is a plain coordinate separation — neither unit — so
/// the parameter stays a raw double.
inline KeyVal AxisGapToKey(double gap, Metric metric) {
  return KeyVal(metric == Metric::kL2 ? gap * gap : gap);
}

/// DistanceToKey(MinDistance(a, b, metric)) computed without the sqrt
/// round-trip: for L2 this is MinDistanceSquared's exact operation order
/// (and the batch kernels'), fl(fl(dx*dx) + fl(dy*dy)).
inline KeyVal MinDistanceKey(const Rect& a, const Rect& b, Metric metric) {
  return KeyVal(metric_internal::MinDistanceKeyRaw(a, b, metric));
}

/// DistanceToKey(MaxDistance(a, b, metric)) without the sqrt round-trip.
inline KeyVal MaxDistanceKey(const Rect& a, const Rect& b, Metric metric) {
  return KeyVal(metric_internal::MaxDistanceKeyRaw(a, b, metric));
}

/// Area of the "ball" of radius d under `metric` divided by d^2: pi for
/// L2, 2 for L1 (a diamond), 4 for Linf (a square). Used by the Eq.-3
/// estimator, whose derivation counts expected neighbors in a radius-d
/// ball.
inline double UnitBallAreaCoefficient(Metric metric) {
  switch (metric) {
    case Metric::kL2:
      return M_PI;
    case Metric::kL1:
      return 2.0;
    case Metric::kLInf:
      return 4.0;
  }
  return M_PI;
}

}  // namespace amdj::geom

#endif  // AMDJ_GEOM_METRIC_H_

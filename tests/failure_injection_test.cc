// End-to-end error-path coverage: disk failures at any point must surface
// as Status errors from the join APIs, never crash or hang, and the system
// must recover once the fault clears.

#include <cstring>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "queue/segment_file.h"
#include "test_util.h"
#include "workload/generators.h"

namespace amdj::core {
namespace {

using test::JoinFixture;

struct FaultyFixture {
  std::unique_ptr<storage::InMemoryDiskManager> base_tree_disk;
  std::unique_ptr<storage::FaultInjectionDiskManager> tree_disk;
  std::unique_ptr<storage::InMemoryDiskManager> base_queue_disk;
  std::unique_ptr<storage::FaultInjectionDiskManager> queue_disk;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<rtree::RTree> r;
  std::unique_ptr<rtree::RTree> s;
};

FaultyFixture MakeFaultyFixture() {
  FaultyFixture f;
  f.base_tree_disk = std::make_unique<storage::InMemoryDiskManager>();
  f.tree_disk = std::make_unique<storage::FaultInjectionDiskManager>(
      f.base_tree_disk.get());
  f.base_queue_disk = std::make_unique<storage::InMemoryDiskManager>();
  f.queue_disk = std::make_unique<storage::FaultInjectionDiskManager>(
      f.base_queue_disk.get());
  // Tiny pool: every join does real reads through the faulty disk.
  f.pool = std::make_unique<storage::BufferPool>(f.tree_disk.get(), 8);
  const geom::Rect uni(0, 0, 5000, 5000);
  rtree::RTree::Options opts;
  opts.max_entries = 8;
  f.r = std::move(*rtree::RTree::Create(f.pool.get(), opts));
  f.s = std::move(*rtree::RTree::Create(f.pool.get(), opts));
  EXPECT_TRUE(
      f.r->BulkLoad(workload::UniformPoints(400, 81, uni).ToEntries()).ok());
  EXPECT_TRUE(
      f.s->BulkLoad(workload::UniformPoints(300, 82, uni).ToEntries()).ok());
  EXPECT_TRUE(f.pool->FlushAll().ok());
  return f;
}

class KdjFaultTest : public ::testing::TestWithParam<KdjAlgorithm> {};

TEST_P(KdjFaultTest, TreeReadFailureSurfacesAsIOError) {
  FaultyFixture f = MakeFaultyFixture();
  ASSERT_TRUE(f.pool->Clear().ok());
  // Fail after a few successful node reads: the join dies mid-traversal.
  f.tree_disk->FailReadsAfter(5);
  JoinOptions options;
  auto result =
      RunKDistanceJoin(*f.r, *f.s, 200, GetParam(), options, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);

  // Heal and retry: full result, no corruption left behind.
  f.tree_disk->Heal();
  ASSERT_TRUE(f.pool->Clear().ok());
  auto retry =
      RunKDistanceJoin(*f.r, *f.s, 200, GetParam(), options, nullptr);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->size(), 200u);
}

TEST_P(KdjFaultTest, QueueSpillFailureSurfacesAsIOError) {
  if (GetParam() == KdjAlgorithm::kHsKdj) {
    // HS-KDJ at this size may not spill; covered by the others.
  }
  FaultyFixture f = MakeFaultyFixture();
  ASSERT_TRUE(f.pool->Clear().ok());
  JoinOptions options;
  options.queue_disk = f.queue_disk.get();
  options.queue_memory_bytes = 2048;  // tiny heap: guaranteed spilling
  f.queue_disk->FailWritesAfter(0);
  auto result =
      RunKDistanceJoin(*f.r, *f.s, 2000, GetParam(), options, nullptr);
  if (result.ok()) {
    // Legal only if the algorithm never actually spilled.
    EXPECT_EQ(f.base_queue_disk->stats().page_writes, 0u);
  } else {
    EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKdj, KdjFaultTest,
                         ::testing::Values(KdjAlgorithm::kHsKdj,
                                           KdjAlgorithm::kBKdj,
                                           KdjAlgorithm::kAmKdj,
                                           KdjAlgorithm::kSjSort),
                         [](const auto& info) {
                           std::string n = ToString(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

TEST(IdjFaultTest, CursorSurfacesAndSurvivesMidStreamFailure) {
  FaultyFixture f = MakeFaultyFixture();
  ASSERT_TRUE(f.pool->Clear().ok());
  JoinOptions options;
  auto cursor = OpenIncrementalJoin(*f.r, *f.s, IdjAlgorithm::kAmIdj,
                                    options, nullptr);
  ASSERT_TRUE(cursor.ok());
  ResultPair pair;
  bool done = false;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*cursor)->Next(&pair, &done).ok());
    ASSERT_FALSE(done);
  }
  f.tree_disk->FailReadsAfter(0);
  ASSERT_TRUE(f.pool->Clear().ok());
  // The cursor eventually needs a node it cannot read.
  Status status = Status::OK();
  for (int i = 0; i < 5000 && status.ok() && !done; ++i) {
    status = (*cursor)->Next(&pair, &done);
  }
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

// Regression: SegmentFile::Append allocated a fresh page, and when the
// spill write failed it returned the error with the page still allocated —
// unreachable (never recorded in pages_) and unfreeable for the disk's
// lifetime. After a failed spill + Drop, every page the disk ever handed
// out must be back on its free list: re-allocating must recycle old ids
// only.
TEST(SegmentFileFaultTest, FailedSpillLeaksNoPages) {
  storage::InMemoryDiskManager base;
  storage::FaultInjectionDiskManager faulty(&base);
  constexpr size_t kRecordSize = 64;
  const size_t per_page = storage::kPageSize / kRecordSize;
  char record[kRecordSize];
  std::memset(record, 'r', sizeof(record));
  {
    queue::SegmentFile segment(&faulty, kRecordSize, nullptr);
    // Two successful spills, then arm the fault.
    for (size_t i = 0; i < 2 * per_page; ++i) {
      ASSERT_TRUE(segment.Append(record).ok());
    }
    faulty.FailWritesAfter(0);
    Status status = Status::OK();
    size_t appended = 0;
    while (status.ok() && appended < 4 * per_page) {
      status = segment.Append(record);
      if (status.ok()) ++appended;
    }
    ASSERT_EQ(status.code(), StatusCode::kIOError);

    // The errored Append still retained its record (the failure hit the
    // post-insert page flush), so the segment holds one more than the
    // accepted count. Healing lets the exact same segment finish, and
    // ReadAll sees every retained record exactly once.
    EXPECT_EQ(segment.count(), 2 * per_page + appended + 1);
    faulty.Heal();
    for (size_t i = appended + 1; i < 4 * per_page; ++i) {
      ASSERT_TRUE(segment.Append(record).ok());
    }
    EXPECT_EQ(segment.count(), 6 * per_page);
    std::vector<char> all;
    ASSERT_TRUE(segment.ReadAll(&all).ok());
    EXPECT_EQ(all.size(), 6 * per_page * kRecordSize);

    segment.Drop();
  }
  // Leak check: every page the disk handed out must be reusable now. If
  // the failed spill leaked its allocation, one of these comes back as a
  // brand-new id past the old high-water mark.
  const uint32_t high_water = faulty.PageCount();
  ASSERT_GT(high_water, 0u);
  for (uint32_t i = 0; i < high_water; ++i) {
    EXPECT_LT(faulty.AllocatePage(), high_water) << "leaked page detected";
  }
}

TEST(RTreeFaultTest, BuildFailurePropagates) {
  storage::InMemoryDiskManager base;
  storage::FaultInjectionDiskManager faulty(&base);
  storage::BufferPool pool(&faulty, 4);
  rtree::RTree::Options opts;
  opts.max_entries = 8;
  auto tree = rtree::RTree::Create(&pool, opts);
  ASSERT_TRUE(tree.ok());
  faulty.FailWritesAfter(2);
  Status status = Status::OK();
  const geom::Rect uni(0, 0, 100, 100);
  const auto data = workload::UniformPoints(500, 83, uni);
  for (const auto& rect : data.objects) {
    status = (*tree)->Insert(rect, 0);
    if (!status.ok()) break;
  }
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace amdj::core

file(REMOVE_RECURSE
  "CMakeFiles/mutation_join_test.dir/mutation_join_test.cc.o"
  "CMakeFiles/mutation_join_test.dir/mutation_join_test.cc.o.d"
  "mutation_join_test"
  "mutation_join_test.pdb"
  "mutation_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutation_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#ifndef AMDJ_GEOM_RECT_H_
#define AMDJ_GEOM_RECT_H_

#include <limits>
#include <string>

#include "geom/point.h"

namespace amdj::geom {

/// An axis-aligned rectangle (MBR). Degenerate rectangles (lo == hi along an
/// axis) represent points and line-segment endpoints.
struct Rect {
  Point lo;  ///< Minimum corner.
  Point hi;  ///< Maximum corner.

  Rect() = default;
  Rect(const Point& l, const Point& h) : lo(l), hi(h) {}
  Rect(double x0, double y0, double x1, double y1)
      : lo(x0, y0), hi(x1, y1) {}

  /// A rectangle that contains nothing and acts as the identity for Extend().
  static Rect Empty();

  /// The degenerate rectangle covering exactly `p`.
  static Rect FromPoint(const Point& p) { return Rect(p, p); }

  /// True if no point is contained (as produced by Empty()).
  bool IsEmpty() const { return lo.x > hi.x || lo.y > hi.y; }

  /// True if lo <= hi on every axis (Empty() is not valid in this sense).
  bool IsValid() const { return lo.x <= hi.x && lo.y <= hi.y; }

  /// Side length along `axis` (the paper's |r|_x).
  double Side(int axis) const { return hi.Coord(axis) - lo.Coord(axis); }

  double Area() const { return IsEmpty() ? 0.0 : Side(0) * Side(1); }

  /// Perimeter / 2; the R*-tree "margin" measure.
  double Margin() const { return IsEmpty() ? 0.0 : Side(0) + Side(1); }

  Point Center() const {
    return Point((lo.x + hi.x) * 0.5, (lo.y + hi.y) * 0.5);
  }

  bool Contains(const Point& p) const {
    return lo.x <= p.x && p.x <= hi.x && lo.y <= p.y && p.y <= hi.y;
  }

  bool Contains(const Rect& r) const {
    return lo.x <= r.lo.x && r.hi.x <= hi.x && lo.y <= r.lo.y &&
           r.hi.y <= hi.y;
  }

  bool Intersects(const Rect& r) const {
    return !(r.lo.x > hi.x || r.hi.x < lo.x || r.lo.y > hi.y ||
             r.hi.y < lo.y);
  }

  /// Grows this rectangle to cover `r`.
  void Extend(const Rect& r);

  /// Grows this rectangle to cover `p`.
  void Extend(const Point& p);

  bool operator==(const Rect& o) const { return lo == o.lo && hi == o.hi; }
  bool operator!=(const Rect& o) const { return !(*this == o); }

  std::string ToString() const;
};

/// Smallest rectangle covering both arguments.
Rect Union(const Rect& a, const Rect& b);

/// Intersection; Empty() if disjoint.
Rect Intersection(const Rect& a, const Rect& b);

/// Area of the intersection (0 if disjoint).
double IntersectionArea(const Rect& a, const Rect& b);

/// Separation of [a.lo, a.hi] and [b.lo, b.hi] projected on `axis`:
/// 0 if the projections overlap, otherwise the gap length. This is the
/// paper's axis_distance used for plane-sweep pruning.
double AxisDistance(const Rect& a, const Rect& b, int axis);

/// Minimum Euclidean distance between any point of `a` and any point of `b`
/// (the paper's dist(r, s); 0 if they intersect).
double MinDistance(const Rect& a, const Rect& b);

/// Squared minimum distance (cheaper; monotone in MinDistance).
double MinDistanceSquared(const Rect& a, const Rect& b);

/// Maximum Euclidean distance between any point of `a` and any point of `b`.
double MaxDistance(const Rect& a, const Rect& b);

/// MINMAXDIST of a point query to a rectangle is not needed for joins and is
/// intentionally omitted.

}  // namespace amdj::geom

#endif  // AMDJ_GEOM_RECT_H_

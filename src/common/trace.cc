#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>

namespace amdj {

namespace {

uint64_t NextTracerId() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Per-thread cache of the last tracer this thread recorded into. Keyed by
/// the tracer's process-unique id (not its address — a destroyed tracer's
/// address can be reused), so a stale cache entry can never alias a new
/// tracer.
struct ThreadCache {
  uint64_t tracer_id = 0;
  void* buffer = nullptr;
};
thread_local ThreadCache t_cache;

/// JSON string escaping for event/arg names (static strings in practice,
/// but exporters must not rely on it).
void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

/// Formats a double as JSON: finite shortest-round-trip-ish, never "nan"
/// or "inf" (both invalid JSON) — those become null.
void AppendJsonNumber(std::string* out, double v) {
  if (!(v == v) || v > 1.7976931348623157e308 ||
      v < -1.7976931348623157e308) {
    *out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

void AppendArgsObject(std::string* out, const TraceEvent& e) {
  *out += '{';
  for (int a = 0; a < e.arg_count; ++a) {
    if (a > 0) *out += ',';
    *out += '"';
    AppendEscaped(out, e.args[a].name);
    *out += "\":";
    AppendJsonNumber(out, e.args[a].value);
  }
  *out += '}';
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace output file: " + path);
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != contents.size() || !close_ok) {
    return Status::IOError("short write to trace output file: " + path);
  }
  return Status::OK();
}

}  // namespace

Tracer::Tracer()
    : id_(NextTracerId()), epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

Tracer::ThreadBuffer* Tracer::RegisterThisThread() {
  const MutexLock lock(&mutex_);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<uint32_t>(buffers_.size());
  {
    // No other thread can know this buffer yet; the lock is for the
    // analysis (events is guarded by mu) and costs one uncontended pair.
    const MutexLock buffer_lock(&buffer->mu);
    buffer->events.reserve(256);
  }
  ThreadBuffer* raw = buffer.get();
  buffers_.push_back(std::move(buffer));
  t_cache.tracer_id = id_;
  t_cache.buffer = raw;
  return raw;
}

void Tracer::Append(TraceEventType type, const char* name,
                    std::initializer_list<TraceArg> args) {
  ThreadBuffer* buffer = t_cache.tracer_id == id_
                             ? static_cast<ThreadBuffer*>(t_cache.buffer)
                             : RegisterThisThread();
  TraceEvent e;
  e.ts_ns = NowNs();
  e.name = name;
  e.type = type;
  for (const TraceArg& a : args) {
    if (e.arg_count >= kMaxTraceArgs) break;
    e.args[e.arg_count++] = a;
  }
  // Uncontended unless a merge is snapshotting this buffer right now —
  // only the owning thread appends (see the header's recording model).
  const MutexLock lock(&buffer->mu);
  buffer->events.push_back(e);
}

std::vector<MergedTraceEvent> Tracer::Merged() const {
  std::vector<MergedTraceEvent> merged;
  {
    const MutexLock lock(&mutex_);
    for (const auto& b : buffers_) {
      const MutexLock buffer_lock(&b->mu);
      merged.reserve(merged.size() + b->events.size());
      for (const TraceEvent& e : b->events) merged.push_back({e, b->tid});
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const MergedTraceEvent& a, const MergedTraceEvent& b) {
                     if (a.event.ts_ns != b.event.ts_ns) {
                       return a.event.ts_ns < b.event.ts_ns;
                     }
                     return a.tid < b.tid;
                   });
  return merged;
}

size_t Tracer::event_count() const {
  const MutexLock lock(&mutex_);
  size_t total = 0;
  for (const auto& b : buffers_) {
    const MutexLock buffer_lock(&b->mu);
    total += b->events.size();
  }
  return total;
}

size_t Tracer::thread_count() const {
  const MutexLock lock(&mutex_);
  return buffers_.size();
}

Status Tracer::ExportChromeTrace(const std::string& path) const {
  const std::vector<MergedTraceEvent> merged = Merged();
  std::string out;
  out.reserve(merged.size() * 96 + 64);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  for (const MergedTraceEvent& m : merged) {
    const TraceEvent& e = m.event;
    if (!first) out += ",\n";
    first = false;
    const char* ph = "i";
    switch (e.type) {
      case TraceEventType::kBegin:
        ph = "B";
        break;
      case TraceEventType::kEnd:
        ph = "E";
        break;
      case TraceEventType::kInstant:
        ph = "i";
        break;
      case TraceEventType::kCounter:
        ph = "C";
        break;
    }
    out += "{\"name\":\"";
    AppendEscaped(&out, e.name);
    out += "\",\"ph\":\"";
    out += ph;
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(m.tid);
    // Chrome trace timestamps are microseconds; fractional is accepted.
    char ts[32];
    std::snprintf(ts, sizeof(ts), "%.3f", static_cast<double>(e.ts_ns) / 1e3);
    out += ",\"ts\":";
    out += ts;
    if (e.type == TraceEventType::kInstant) {
      out += ",\"s\":\"t\"";  // thread-scoped instant
    }
    if (e.arg_count > 0) {
      out += ",\"args\":";
      AppendArgsObject(&out, e);
    }
    out += '}';
  }
  out += "\n]}\n";
  return WriteFile(path, out);
}

Status Tracer::ExportJsonl(const std::string& path) const {
  static const char* const kTypeNames[] = {"begin", "end", "instant",
                                           "counter"};
  const std::vector<MergedTraceEvent> merged = Merged();
  std::string out;
  out.reserve(merged.size() * 96);
  for (const MergedTraceEvent& m : merged) {
    const TraceEvent& e = m.event;
    out += "{\"ts_ns\":";
    out += std::to_string(e.ts_ns);
    out += ",\"type\":\"";
    out += kTypeNames[static_cast<int>(e.type)];
    out += "\",\"name\":\"";
    AppendEscaped(&out, e.name);
    out += "\",\"tid\":";
    out += std::to_string(m.tid);
    out += ",\"args\":";
    AppendArgsObject(&out, e);
    out += "}\n";
  }
  return WriteFile(path, out);
}

}  // namespace amdj

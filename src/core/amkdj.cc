#include "core/amkdj.h"

#include "core/dmax_estimator.h"
#include "core/expansion.h"
#include "core/plane_sweeper.h"
#include "core/qdmax_tracker.h"

#include <limits>

namespace amdj::core {

namespace {

/// Section 4.3.2 variant: one unified loop whose cutoff grows through
/// runtime corrections, interleaving recovery rounds (merge the
/// compensation queue back) until the exact qDmax takes over. Used when
/// JoinOptions::kdj_adaptive_correction is set; the default Run() below
/// keeps the paper's two-stage structure (initial estimate only).
StatusOr<std::vector<ResultPair>> RunAdaptive(const rtree::RTree& r,
                                              const rtree::RTree& s,
                                              uint64_t k,
                                              const JoinOptions& options,
                                              JoinStats* stats) {
  std::vector<ResultPair> results;
  const DmaxEstimator fallback_estimator(r.bounds(), r.size(), s.bounds(),
                                         s.size(), options.metric);
  const CutoffEstimator* estimator = options.estimator != nullptr
                                         ? options.estimator
                                         : &fallback_estimator;
  double edmax = options.forced_edmax.value_or(estimator->EstimateDmax(k));

  MainQueue queue(MakeMainQueueOptions(r, s, options), stats,
                  MakeMainQueueCompare(options));
  QdmaxTracker tracker(k, options, stats);
  std::vector<PairEntry> compensation;
  // Smallest cutoff under which a queued compensation pair was examined:
  // emitting beyond it could overtake a recoverable pruned child.
  double barrier = std::numeric_limits<double>::infinity();
  double last_emitted = 0.0;
  {
    const PairEntry root = MakePair(RootRef(r), RootRef(s), options.metric);
    AMDJ_RETURN_IF_ERROR(queue.Push(root));
    tracker.OnPush(root);
  }

  std::vector<PairRef> left;
  std::vector<PairRef> right;
  PairEntry c;
  while (results.size() < k && !queue.Empty()) {
    AMDJ_RETURN_IF_ERROR(queue.Pop(&c));
    if (!c.IsObjectPair()) tracker.OnNodePairLeave(c);
    double qdmax = tracker.Cutoff();
    if (qdmax <= edmax) edmax = qdmax;  // overestimate clamp (line 8)

    if (c.distance > std::min(edmax, barrier)) {
      if (compensation.empty() && c.distance > qdmax) {
        continue;  // beyond the exact cutoff: can never contribute
      }
      // Frontier left the safe radius: grow the estimate (Eq. 4/5 /
      // custom correction) if it still helps, else adopt qDmax, then
      // recover the compensation queue and resume.
      AMDJ_RETURN_IF_ERROR(queue.Push(c));
      if (!c.IsObjectPair()) tracker.OnPush(c);
      double next = qdmax;
      if (!results.empty() && results.size() < k) {
        const double corrected = estimator->Correct(
            k, results.size(), last_emitted,
            options.correction == CorrectionPolicy::kAggressive);
        if (corrected > edmax && corrected < qdmax) next = corrected;
      }
      edmax = next;  // strictly above the old value, or the exact qDmax
      for (const PairEntry& e : compensation) {
        AMDJ_RETURN_IF_ERROR(queue.Push(e));
        tracker.OnPush(e);  // no-op: expanded pairs carry no certificate
      }
      compensation.clear();
      barrier = std::numeric_limits<double>::infinity();
      continue;
    }

    if (c.IsObjectPair()) {
      results.push_back({c.distance, c.r.id, c.s.id});
      last_emitted = c.distance;
      ++stats->pairs_produced;
      continue;
    }

    ++stats->node_expansions;
    AMDJ_RETURN_IF_ERROR(ChildList(r, c.r, options.r_window, &left));
    AMDJ_RETURN_IF_ERROR(ChildList(s, c.s, options.s_window, &right));
    SweepPlan plan;
    double prior = -1.0;
    if (c.WasExpanded()) {
      plan.axis = c.prior_axis;
      plan.dir = c.prior_dir == 0 ? geom::SweepDirection::kForward
                                  : geom::SweepDirection::kBackward;
      prior = c.prior_cutoff;
    } else {
      plan = ChooseSweepPlan(c.r.rect, c.s.rect, edmax, options.sweep);
    }

    Status sweep_status;
    // Static axis cutoff: it defines the examined prefix the recorded
    // bookkeeping must describe exactly.
    double axis_cutoff = edmax;
    const bool covered = PlaneSweep(
        left, right, plan, &axis_cutoff, stats,
        [&](const PairRef& lref, const PairRef& rref, double axis_dist) {
          if (!sweep_status.ok()) return;
          if (axis_dist <= prior) return;  // examined in an earlier round
          ++stats->real_distance_computations;
          const double real =
              geom::MinDistance(lref.rect, rref.rect, options.metric);
          if (real > qdmax) return;  // permanent under the exact cutoff
          if (options.exclude_same_id && IsSelfPair(lref, rref)) return;
          PairEntry e;
          e.r = lref;
          e.s = rref;
          e.distance = real;
          sweep_status = queue.Push(e);
          if (!sweep_status.ok()) {
            axis_cutoff = -1.0;
            return;
          }
          tracker.OnPush(e);
          qdmax = tracker.Cutoff();
        });
    AMDJ_RETURN_IF_ERROR(sweep_status);

    if (!covered) {
      c.prior_cutoff = std::max(edmax, prior);
      c.prior_axis = static_cast<int8_t>(plan.axis);
      c.prior_dir =
          plan.dir == geom::SweepDirection::kForward ? int8_t{0} : int8_t{1};
      compensation.push_back(c);
      barrier = std::min(barrier, c.prior_cutoff);
      ++stats->compensation_queue_insertions;
    }
  }
  return results;
}

}  // namespace

StatusOr<std::vector<ResultPair>> AmKdj::Run(const rtree::RTree& r,
                                             const rtree::RTree& s,
                                             uint64_t k,
                                             const JoinOptions& options,
                                             JoinStats* stats) {
  std::vector<ResultPair> results;
  if (k == 0 || r.size() == 0 || s.size() == 0) return results;
  JoinStats local;
  if (stats == nullptr) stats = &local;
  if (options.kdj_adaptive_correction) {
    return RunAdaptive(r, s, k, options, stats);
  }

  const DmaxEstimator fallback_estimator(r.bounds(), r.size(), s.bounds(),
                                         s.size(), options.metric);
  const CutoffEstimator* estimator = options.estimator != nullptr
                                         ? options.estimator
                                         : &fallback_estimator;
  double edmax = options.forced_edmax.value_or(estimator->EstimateDmax(k));

  MainQueue queue(MakeMainQueueOptions(r, s, options), stats,
                  MakeMainQueueCompare(options));
  QdmaxTracker tracker(k, options, stats);
  std::vector<PairEntry> compensation;  // Qc: node pairs only, stays small
  {
    const PairEntry root = MakePair(RootRef(r), RootRef(s), options.metric);
    AMDJ_RETURN_IF_ERROR(queue.Push(root));
    tracker.OnPush(root);
  }

  std::vector<PairRef> left;
  std::vector<PairRef> right;
  PairEntry c;

  // ------------------------------------------------------------------
  // Stage one: aggressive pruning (Algorithm 2).
  bool compensate = false;
  while (results.size() < k && !queue.Empty()) {
    AMDJ_RETURN_IF_ERROR(queue.Pop(&c));
    if (!c.IsObjectPair()) tracker.OnNodePairLeave(c);
    double qdmax = tracker.Cutoff();
    // Line 8: an overestimated eDmax is clamped to qDmax, after which the
    // stage behaves exactly like B-KDJ.
    if (qdmax <= edmax) edmax = qdmax;
    if (c.distance > edmax) {
      // Line 9 (with the obvious reading of the garbled comparison): the
      // frontier left the eDmax radius with fewer than k results, so eDmax
      // was an underestimate. This check must precede emission — an
      // *object* pair beyond eDmax must wait for the compensation stage,
      // which first recovers the aggressively pruned closer pairs; emitting
      // it here would break the non-decreasing output order.
      AMDJ_RETURN_IF_ERROR(queue.Push(c));
      if (!c.IsObjectPair()) tracker.OnPush(c);  // restore its certificate
      compensate = true;
      break;
    }
    if (c.IsObjectPair()) {
      results.push_back({c.distance, c.r.id, c.s.id});
      ++stats->pairs_produced;
      continue;
    }

    ++stats->node_expansions;
    AMDJ_RETURN_IF_ERROR(ChildList(r, c.r, options.r_window, &left));
    AMDJ_RETURN_IF_ERROR(ChildList(s, c.s, options.s_window, &right));
    const SweepPlan plan =
        ChooseSweepPlan(c.r.rect, c.s.rect, edmax, options.sweep);

    Status sweep_status;
    double axis_cutoff = edmax;  // line 22: aggressive axis pruning
    const bool covered = PlaneSweep(
        left, right, plan, &axis_cutoff, stats,
        [&](const PairRef& lref, const PairRef& rref, double /*axis_dist*/) {
          if (!sweep_status.ok()) return;
          ++stats->real_distance_computations;
          const double real =
              geom::MinDistance(lref.rect, rref.rect, options.metric);
          if (real > qdmax) return;  // exact filter: permanent under qDmax
          if (options.exclude_same_id && IsSelfPair(lref, rref)) return;
          PairEntry e;
          e.r = lref;
          e.s = rref;
          e.distance = real;
          sweep_status = queue.Push(e);
          if (!sweep_status.ok()) {
            axis_cutoff = -1.0;  // abort the sweep
            return;
          }
          tracker.OnPush(e);
          qdmax = tracker.Cutoff();
        });
    AMDJ_RETURN_IF_ERROR(sweep_status);

    if (!covered) {
      // Some sweep suffix was skipped under eDmax: remember the pair and
      // the cutoff so compensation can examine exactly the remainder.
      // (Fully covered pairs can never yield new children; keeping them out
      // of Qc is what keeps it orders of magnitude smaller than Qm.)
      c.prior_cutoff = edmax;
      c.prior_axis = static_cast<int8_t>(plan.axis);
      c.prior_dir =
          plan.dir == geom::SweepDirection::kForward ? int8_t{0} : int8_t{1};
      compensation.push_back(c);
      ++stats->compensation_queue_insertions;
    }
  }

  if (!compensate && results.size() < k && !compensation.empty()) {
    // Stage one drained the main queue without reaching k (aggressively
    // pruned pairs are still recoverable).
    compensate = true;
  }
  if (results.size() >= k || !compensate) return results;

  // ------------------------------------------------------------------
  // Compensation stage (Algorithm 3).
  for (const PairEntry& e : compensation) {
    AMDJ_RETURN_IF_ERROR(queue.Push(e));
  }
  compensation.clear();

  while (results.size() < k && !queue.Empty()) {
    AMDJ_RETURN_IF_ERROR(queue.Pop(&c));
    if (c.IsObjectPair()) {
      results.push_back({c.distance, c.r.id, c.s.id});
      ++stats->pairs_produced;
      continue;
    }
    tracker.OnNodePairLeave(c);
    double cutoff = tracker.Cutoff();
    if (c.distance > cutoff) continue;

    ++stats->node_expansions;
    AMDJ_RETURN_IF_ERROR(ChildList(r, c.r, options.r_window, &left));
    AMDJ_RETURN_IF_ERROR(ChildList(s, c.s, options.s_window, &right));
    // Pairs expanded in stage one re-sweep with the *same* axis and
    // direction (their children's sweep order is reproduced), skipping the
    // already-examined prefix; fresh pairs get a full B-KDJ sweep.
    SweepPlan plan;
    double skip_below = -1.0;
    if (c.WasExpanded()) {
      plan.axis = c.prior_axis;
      plan.dir = c.prior_dir == 0 ? geom::SweepDirection::kForward
                                  : geom::SweepDirection::kBackward;
      skip_below = c.prior_cutoff;
    } else {
      plan = ChooseSweepPlan(c.r.rect, c.s.rect, cutoff, options.sweep);
    }

    Status sweep_status;
    PlaneSweep(left, right, plan, &cutoff, stats,
               [&](const PairRef& lref, const PairRef& rref,
                   double axis_dist) {
                 if (!sweep_status.ok()) return;
                 // Skip the stage-one prefix: those pairs were examined
                 // under a qDmax no smaller than today's, so any that were
                 // dropped stay dropped and any that qualified are already
                 // in the main queue.
                 if (axis_dist <= skip_below) return;
                 ++stats->real_distance_computations;
                 const double real = geom::MinDistance(lref.rect, rref.rect,
                                                       options.metric);
                 if (real > cutoff) return;
                 if (options.exclude_same_id && IsSelfPair(lref, rref)) {
                   return;
                 }
                 PairEntry e;
                 e.r = lref;
                 e.s = rref;
                 e.distance = real;
                 sweep_status = queue.Push(e);
                 if (!sweep_status.ok()) {
                   cutoff = -1.0;
                   return;
                 }
                 tracker.OnPush(e);
                 cutoff = tracker.Cutoff();
               });
    AMDJ_RETURN_IF_ERROR(sweep_status);
  }
  return results;
}

}  // namespace amdj::core

file(REMOVE_RECURSE
  "CMakeFiles/table2_node_accesses.dir/table2_node_accesses.cc.o"
  "CMakeFiles/table2_node_accesses.dir/table2_node_accesses.cc.o.d"
  "table2_node_accesses"
  "table2_node_accesses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_node_accesses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Inter-query throughput of the JoinService over one shared buffer pool,
// three workloads (--workload=mixed|duplicate|ladder|all, default all):
//
//  mixed      A fixed mixed KDJ/IDJ query set replayed at 1, 2, 4 and 8
//             queries in flight. Reports aggregate wall-clock, qps and
//             speedup over the 1-in-flight replay, plus mean admission
//             wait; verifies every concurrent run returns byte-identical
//             results to the 1-in-flight replay (per-query attribution
//             makes the stats exact, so correctness is checked on results
//             AND on the hits+misses==accesses identity).
//  duplicate  A duplicate-heavy set (few distinct queries, many copies
//             each) run twice at equal max_inflight: shared-work layer off
//             then on (in-flight dedupe + semantic result cache). Verifies
//             the on-run's responses are byte-identical per query to the
//             off-run's, and reports the off/on qps and the shared-hit
//             rate.
//  ladder     A k-ladder: one big-k warm query, then the same semantic
//             query at descending k' — with the cache on every k' <= k is
//             answered from the cached prefix without touching the trees.
//
// --json=FILE additionally writes one summary object with a "levels"
// array (mixed) and "duplicate"/"ladder" objects for BENCH_PR*.json
// tracking and the CI shared-hit guard
// (scripts/check_bench_regression.py --throughput-json).

#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "service/join_service.h"

namespace amdj::bench {
namespace {

std::vector<service::JoinRequest> MakeQuerySet(uint64_t scale) {
  std::vector<service::JoinRequest> requests;
  using Kind = service::JoinRequest::Kind;
  const struct {
    Kind kind;
    core::KdjAlgorithm kdj;
    core::IdjAlgorithm idj;
    uint64_t k;
  } specs[] = {
      {Kind::kKdj, core::KdjAlgorithm::kAmKdj, {}, 10 * scale},
      {Kind::kKdj, core::KdjAlgorithm::kBKdj, {}, 5 * scale},
      {Kind::kKdj, core::KdjAlgorithm::kHsKdj, {}, 2 * scale},
      {Kind::kIdj, {}, core::IdjAlgorithm::kAmIdj, 8 * scale},
      {Kind::kIdj, {}, core::IdjAlgorithm::kHsIdj, 3 * scale},
      {Kind::kKdj, core::KdjAlgorithm::kAmKdj, {}, scale},
      {Kind::kKdj, core::KdjAlgorithm::kBKdj, {}, 8 * scale},
      {Kind::kIdj, {}, core::IdjAlgorithm::kAmIdj, 2 * scale},
  };
  for (const auto& spec : specs) {
    service::JoinRequest request;
    request.kind = spec.kind;
    request.kdj_algorithm = spec.kdj;
    request.idj_algorithm = spec.idj;
    request.k = spec.k;
    requests.push_back(request);
  }
  return requests;
}

struct LevelSummary {
  uint32_t inflight;
  double wall_s;
  double qps;
};

struct SharedSummary {
  uint32_t inflight = 0;
  size_t queries = 0;
  double wall_off_s = 0.0;
  double wall_on_s = 0.0;
  double qps_off = 0.0;
  double qps_on = 0.0;
  uint64_t inflight_hits = 0;
  uint64_t cache_hits = 0;
  double hit_rate = 0.0;
};

void FailQuery(const char* what, size_t q, const Status& status) {
  std::fprintf(stderr, "FATAL: %s query %zu: %s\n", what, q,
               status.ToString().c_str());
  std::exit(1);
}

/// Replays `requests` through a fresh service (cold buffer pool) and
/// returns the responses; dies on any per-query error.
std::vector<service::JoinResponse> Replay(
    BenchEnv& env, const std::vector<service::JoinRequest>& requests,
    const service::JoinService::Options& options, double* wall_s,
    SharedSummary* shared, bool on) {
  service::JoinService svc(*env.streets, *env.hydro, options);
  if (!env.pool->Clear().ok()) std::abort();
  Timer wall;
  std::vector<std::future<service::JoinResponse>> futures;
  futures.reserve(requests.size());
  for (const auto& request : requests) futures.push_back(svc.Submit(request));
  std::vector<service::JoinResponse> responses;
  responses.reserve(futures.size());
  for (auto& future : futures) responses.push_back(future.get());
  *wall_s = wall.ElapsedSeconds();
  for (size_t q = 0; q < responses.size(); ++q) {
    if (!responses[q].status.ok()) {
      FailQuery("replay", q, responses[q].status);
    }
  }
  if (shared != nullptr && on) {
    shared->inflight_hits = svc.shared_inflight_hits();
    shared->cache_hits = svc.shared_cache_hits();
  }
  return responses;
}

void CheckPairwiseIdentical(const std::vector<service::JoinResponse>& a,
                            const std::vector<service::JoinResponse>& b,
                            const char* what) {
  for (size_t q = 0; q < a.size(); ++q) {
    if (a[q].results != b[q].results) {
      std::fprintf(stderr,
                   "FATAL: %s query %zu differs between the shared-work "
                   "off and on runs\n",
                   what, q);
      std::exit(1);
    }
  }
}

std::vector<LevelSummary> RunMixed(BenchEnv& env, uint64_t scale) {
  // Two full query-set replays per in-flight level so the service queue
  // actually backs up beyond max_inflight.
  std::vector<service::JoinRequest> requests = MakeQuerySet(scale);
  {
    const std::vector<service::JoinRequest> again = requests;
    requests.insert(requests.end(), again.begin(), again.end());
  }

  const std::vector<uint32_t> inflight_levels = {1, 2, 4, 8};
  const std::vector<int> widths = {10, 10, 10, 9, 12, 14};
  PrintRow({"inflight", "wall (s)", "qps", "speedup", "mean wait",
            "node acc."},
           widths);

  double baseline_wall = 0.0;
  std::vector<std::vector<core::ResultPair>> baseline;
  std::vector<LevelSummary> summaries;

  for (const uint32_t inflight : inflight_levels) {
    service::JoinService::Options options;
    options.max_inflight = inflight;
    // Constant memory PER QUERY (total budget grows with concurrency), so
    // the levels measure concurrency alone — under a fixed total budget
    // higher in-flight levels would also spill more, conflating the two
    // effects.
    options.queue_memory_budget_bytes =
        env.config.memory_bytes * inflight;
    double wall_s = 0.0;
    std::vector<service::JoinResponse> responses =
        Replay(env, requests, options, &wall_s, nullptr, false);

    double wait_sum = 0.0;
    uint64_t accesses = 0;
    for (size_t q = 0; q < responses.size(); ++q) {
      const auto& response = responses[q];
      if (response.stats.node_buffer_hits + response.stats.node_disk_reads !=
          response.stats.node_accesses) {
        std::fprintf(stderr, "FATAL: query %zu attribution skew\n", q);
        std::exit(1);
      }
      wait_sum += response.wait_seconds;
      accesses += response.stats.node_accesses;
    }
    if (inflight == 1) {
      baseline_wall = wall_s;
      baseline.reserve(responses.size());
      for (auto& response : responses) {
        baseline.push_back(std::move(response.results));
      }
    } else {
      for (size_t q = 0; q < responses.size(); ++q) {
        if (responses[q].results != baseline[q]) {
          std::fprintf(stderr,
                       "FATAL: query %zu at inflight %u differs from the "
                       "1-in-flight replay\n",
                       q, inflight);
          std::exit(1);
        }
      }
    }

    const double qps = requests.size() / wall_s;
    char speedup[32], qps_s[32], wait_s[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", baseline_wall / wall_s);
    std::snprintf(qps_s, sizeof(qps_s), "%.1f", qps);
    std::snprintf(wait_s, sizeof(wait_s), "%.3fs",
                  wait_sum / requests.size());
    PrintRow({std::to_string(inflight), FormatSeconds(wall_s), qps_s,
              speedup, wait_s, FormatCount(accesses)},
             widths);
    summaries.push_back({inflight, wall_s, qps});
  }
  return summaries;
}

/// Duplicate-heavy: 4 distinct KDJ queries, kCopies submissions each,
/// round-robin interleaved so identical requests are genuinely in flight
/// together. Off-run executes all of them; on-run (same max_inflight,
/// same budget) collapses each distinct query to ~one execution.
SharedSummary RunDuplicate(BenchEnv& env, uint64_t scale) {
  constexpr size_t kCopies = 12;
  std::vector<service::JoinRequest> distinct;
  const struct {
    core::KdjAlgorithm kdj;
    uint64_t k;
  } specs[] = {
      {core::KdjAlgorithm::kAmKdj, 10 * scale},
      {core::KdjAlgorithm::kBKdj, 6 * scale},
      {core::KdjAlgorithm::kAmKdj, 3 * scale},
      {core::KdjAlgorithm::kHsKdj, 2 * scale},
  };
  for (const auto& spec : specs) {
    service::JoinRequest request;
    request.kdj_algorithm = spec.kdj;
    request.k = spec.k;
    distinct.push_back(request);
  }
  std::vector<service::JoinRequest> requests;
  requests.reserve(distinct.size() * kCopies);
  for (size_t copy = 0; copy < kCopies; ++copy) {
    for (const auto& request : distinct) requests.push_back(request);
  }

  SharedSummary summary;
  summary.inflight = 4;
  summary.queries = requests.size();

  service::JoinService::Options off;
  off.max_inflight = summary.inflight;
  off.queue_memory_budget_bytes = env.config.memory_bytes * off.max_inflight;
  service::JoinService::Options on = off;
  on.dedupe_inflight = true;
  on.shared_cache_entries = 32;

  std::vector<service::JoinResponse> off_responses =
      Replay(env, requests, off, &summary.wall_off_s, nullptr, false);
  std::vector<service::JoinResponse> on_responses =
      Replay(env, requests, on, &summary.wall_on_s, &summary, true);
  CheckPairwiseIdentical(off_responses, on_responses, "duplicate");

  summary.qps_off = requests.size() / summary.wall_off_s;
  summary.qps_on = requests.size() / summary.wall_on_s;
  summary.hit_rate =
      static_cast<double>(summary.inflight_hits + summary.cache_hits) /
      static_cast<double>(requests.size());
  return summary;
}

/// K-ladder: one big-k warm query per distinct option set, then the same
/// query at descending k' — every k' <= k is a cached-prefix answer when
/// the shared cache is on. The warm query runs to completion first (solo
/// submit) so the ladder measures the cache, not dedupe.
SharedSummary RunLadder(BenchEnv& env, uint64_t scale) {
  const uint64_t warm_k = 10 * scale;
  const uint64_t ladder_ks[] = {8 * scale, 6 * scale, 4 * scale, 3 * scale,
                                2 * scale, scale,     scale / 2, scale / 4};

  SharedSummary summary;
  summary.inflight = 2;

  auto run = [&](const service::JoinService::Options& options,
                 double* wall_s, bool on) {
    service::JoinService svc(*env.streets, *env.hydro, options);
    if (!env.pool->Clear().ok()) std::abort();
    Timer wall;
    std::vector<service::JoinResponse> responses;
    service::JoinRequest warm;
    warm.k = warm_k;
    responses.push_back(svc.Run(warm));
    // Two passes over the ladder: the second pass hits even when the
    // first had to execute (cache warm by then either way).
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<std::future<service::JoinResponse>> futures;
      for (const uint64_t k : ladder_ks) {
        service::JoinRequest request;
        request.k = k;
        futures.push_back(svc.Submit(request));
      }
      for (auto& future : futures) responses.push_back(future.get());
    }
    *wall_s = wall.ElapsedSeconds();
    for (size_t q = 0; q < responses.size(); ++q) {
      if (!responses[q].status.ok()) FailQuery("ladder", q, responses[q].status);
    }
    if (on) {
      summary.inflight_hits = svc.shared_inflight_hits();
      summary.cache_hits = svc.shared_cache_hits();
    }
    return responses;
  };

  service::JoinService::Options off;
  off.max_inflight = summary.inflight;
  off.queue_memory_budget_bytes = env.config.memory_bytes * off.max_inflight;
  service::JoinService::Options on = off;
  on.dedupe_inflight = true;
  on.shared_cache_entries = 32;

  std::vector<service::JoinResponse> off_responses =
      run(off, &summary.wall_off_s, false);
  std::vector<service::JoinResponse> on_responses =
      run(on, &summary.wall_on_s, true);
  CheckPairwiseIdentical(off_responses, on_responses, "ladder");

  summary.queries = off_responses.size();
  summary.qps_off = summary.queries / summary.wall_off_s;
  summary.qps_on = summary.queries / summary.wall_on_s;
  summary.hit_rate =
      static_cast<double>(summary.inflight_hits + summary.cache_hits) /
      static_cast<double>(summary.queries);
  return summary;
}

void PrintShared(const char* name, const SharedSummary& s) {
  const std::vector<int> widths = {11, 9, 10, 10, 9, 10, 10, 9};
  PrintRow({"workload", "queries", "off (s)", "on (s)", "speedup",
            "piggyback", "cache", "hit rate"},
           widths);
  char speedup[32], rate[32];
  std::snprintf(speedup, sizeof(speedup), "%.2fx",
                s.wall_off_s / s.wall_on_s);
  std::snprintf(rate, sizeof(rate), "%.0f%%", 100.0 * s.hit_rate);
  PrintRow({name, std::to_string(s.queries), FormatSeconds(s.wall_off_s),
            FormatSeconds(s.wall_on_s), speedup,
            FormatCount(s.inflight_hits), FormatCount(s.cache_hits), rate},
           widths);
}

void WriteShared(std::FILE* out, const char* key, const SharedSummary& s) {
  std::fprintf(out,
               ",\n\"%s\": {\"inflight\": %u, \"queries\": %zu, "
               "\"wall_off_s\": %.4f, \"wall_on_s\": %.4f, "
               "\"qps_off\": %.2f, \"qps_on\": %.2f, \"speedup\": %.3f, "
               "\"inflight_hits\": %llu, \"cache_hits\": %llu, "
               "\"shared_hit_rate\": %.4f}",
               key, s.inflight, s.queries, s.wall_off_s, s.wall_on_s,
               s.qps_off, s.qps_on, s.wall_off_s / s.wall_on_s,
               static_cast<unsigned long long>(s.inflight_hits),
               static_cast<unsigned long long>(s.cache_hits), s.hit_rate);
}

void Run(int argc, char** argv) {
  // --json / --workload are this bench's own flags; strip them before the
  // shared parser (which rejects unknown arguments).
  std::string json_path;
  std::string workload = "all";
  std::vector<char*> shared_args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--workload=", 0) == 0) {
      workload = arg.substr(11);
    } else {
      shared_args.push_back(argv[i]);
    }
  }
  if (workload != "all" && workload != "mixed" && workload != "duplicate" &&
      workload != "ladder") {
    std::fprintf(stderr, "unknown --workload=%s\n", workload.c_str());
    std::exit(2);
  }
  BenchEnv env = MakeTigerEnv(BenchConfig::FromArgs(
      static_cast<int>(shared_args.size()), shared_args.data()));
  PrintHeader("Multi-query throughput (JoinService, shared buffer pool)",
              env);

  const uint64_t scale = env.config.streets >= 100'000 ? 1000 : 200;
  const bool want_mixed = workload == "all" || workload == "mixed";
  const bool want_duplicate = workload == "all" || workload == "duplicate";
  const bool want_ladder = workload == "all" || workload == "ladder";

  std::vector<LevelSummary> levels;
  SharedSummary duplicate, ladder;
  if (want_mixed) levels = RunMixed(env, scale);
  if (want_duplicate) {
    duplicate = RunDuplicate(env, scale);
    PrintShared("duplicate", duplicate);
  }
  if (want_ladder) {
    ladder = RunLadder(env, scale);
    PrintShared("ladder", ladder);
  }

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      std::exit(1);
    }
    // hardware_concurrency bounds the interpretable speedup: on a 1-core
    // host, parity (1.0x) with falling admission wait IS the expected
    // scaling result.
    std::fprintf(out,
                 "{\"bench\": \"multi_query_throughput\", \"cores\": %u",
                 std::thread::hardware_concurrency());
    if (want_mixed) {
      std::fprintf(out, ",\n\"levels\": [");
      for (size_t i = 0; i < levels.size(); ++i) {
        std::fprintf(out,
                     "%s\n  {\"inflight\": %u, \"wall_s\": %.4f, "
                     "\"qps\": %.2f, \"speedup\": %.3f}",
                     i == 0 ? "" : ",", levels[i].inflight,
                     levels[i].wall_s, levels[i].qps,
                     levels[0].wall_s / levels[i].wall_s);
      }
      std::fprintf(out, "\n]");
    }
    if (want_duplicate) WriteShared(out, "duplicate", duplicate);
    if (want_ladder) WriteShared(out, "ladder", ladder);
    std::fprintf(out, "\n}\n");
    std::fclose(out);
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace amdj::bench

int main(int argc, char** argv) {
  amdj::bench::Run(argc, argv);
  return 0;
}

#include "core/hs_join.h"

#include "common/run_report.h"
#include "common/trace.h"
#include "core/dmax_estimator.h"
#include "core/expansion.h"
#include "geom/kernels.h"

namespace amdj::core {

MainQueue::Options MakeMainQueueOptions(const rtree::RTree& r,
                                        const rtree::RTree& s,
                                        const JoinOptions& options) {
  MainQueue::Options qopts;
  qopts.memory_bytes = options.queue_memory_bytes;
  qopts.disk = options.queue_disk;
  qopts.io_pool = options.spill_io_pool;
  qopts.tracer = options.tracer;
  qopts.report = options.report;
  if (options.queue_disk != nullptr &&
      options.predetermined_queue_boundaries && r.size() > 0 &&
      s.size() > 0) {
    // Estimators speak distance; the queue partitions by priority key.
    std::function<geom::DistVal(uint64_t)> fn;
    if (options.estimator != nullptr) {
      fn = options.estimator->BoundaryFn();
    } else {
      DmaxEstimator estimator(r.bounds(), r.size(), s.bounds(), s.size(),
                              options.metric);
      fn = estimator.BoundaryFn();
    }
    qopts.boundary_fn = [fn = std::move(fn),
                         metric = options.metric](uint64_t c) {
      return geom::DistanceToKey(fn(c), metric);
    };
  }
  return qopts;
}

namespace internal_hs {

Status ExpandUniDirectional(const rtree::RTree& r, const rtree::RTree& s,
                            const PairEntry& pair, geom::KeyVal cutoff,
                            const JoinOptions& options, MainQueue* queue,
                            QdmaxTracker* tracker, JoinStats* stats,
                            std::vector<PairRef>* scratch) {
  ++stats->node_expansions;
  // Pick the side to expand: a node over an object; the higher level over
  // the lower; ties by larger area (the node more in need of refinement).
  bool expand_r;
  if (pair.r.IsObject()) {
    expand_r = false;
  } else if (pair.s.IsObject()) {
    expand_r = true;
  } else if (pair.r.level != pair.s.level) {
    expand_r = pair.r.level > pair.s.level;
  } else {
    expand_r = pair.r.rect.Area() >= pair.s.rect.Area();
  }

  std::vector<PairRef>& children = *scratch;
  AMDJ_RETURN_IF_ERROR(ChildList(expand_r ? r : s,
                                 expand_r ? pair.r : pair.s,
                                 expand_r ? options.r_window
                                          : options.s_window,
                                 &children));
  const PairRef& other = expand_r ? pair.s : pair.r;
  const size_t n = children.size();
  if (options.metric == geom::Metric::kL2 && n > 0) {
    // One-sided expansion is the ideal batch shape: n child rects against
    // one fixed rect under a cutoff that is static for the whole loop
    // (`cutoff` is a value parameter — tracker updates do not feed back
    // into this expansion, matching the scalar code path exactly).
    struct BatchScratch {
      std::vector<double> lo0, hi0, lo1, hi1, keys;
      std::vector<uint32_t> idx;
    };
    thread_local BatchScratch b;
    b.lo0.resize(n);
    b.hi0.resize(n);
    b.lo1.resize(n);
    b.hi1.resize(n);
    b.keys.resize(n);
    b.idx.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const geom::Rect& rc = children[i].rect;
      b.lo0[i] = rc.lo.x;
      b.hi0[i] = rc.hi.x;
      b.lo1[i] = rc.lo.y;
      b.hi1[i] = rc.hi.y;
    }
    stats->real_distance_computations += n;
    geom::BatchMinDistSquared(b.lo0.data(), b.hi0.data(), b.lo1.data(),
                              b.hi1.data(), other.rect.lo.x, other.rect.hi.x,
                              other.rect.lo.y, other.rect.hi.y, n,
                              b.keys.data());
    // Raw view: the batch kernels operate on untyped key arrays.
    const size_t kept =
        geom::BatchFilterWithin(b.keys.data(), n, cutoff.raw(),
                                b.idx.data());
    for (size_t j = 0; j < kept; ++j) {
      const uint32_t i = b.idx[j];
      PairEntry e;
      e.r = expand_r ? children[i] : other;
      e.s = expand_r ? other : children[i];
      e.key = geom::KeyVal(b.keys[i]);
      if (options.exclude_same_id && IsSelfPair(e.r, e.s)) continue;
      AMDJ_RETURN_IF_ERROR(queue->Push(e));
      if (tracker != nullptr) tracker->OnPush(e);
    }
    return Status::OK();
  }
  for (const PairRef& child : children) {
    ++stats->real_distance_computations;
    PairEntry e = expand_r ? MakePair(child, other, options.metric)
                           : MakePair(other, child, options.metric);
    if (e.key > cutoff) continue;
    if (options.exclude_same_id && IsSelfPair(e.r, e.s)) continue;
    AMDJ_RETURN_IF_ERROR(queue->Push(e));
    if (tracker != nullptr) tracker->OnPush(e);
  }
  return Status::OK();
}

}  // namespace internal_hs

StatusOr<std::vector<ResultPair>> HsKdj::Run(const rtree::RTree& r,
                                             const rtree::RTree& s,
                                             uint64_t k,
                                             const JoinOptions& options,
                                             JoinStats* stats) {
  std::vector<ResultPair> results;
  if (k == 0 || r.size() == 0 || s.size() == 0) return results;
  JoinStats local;
  if (stats == nullptr) stats = &local;

  if (options.report != nullptr) options.report->BeginPhase("search", *stats);
  MainQueue queue(MakeMainQueueOptions(r, s, options), stats,
                  MakeMainQueueCompare(options));
  QdmaxTracker tracker(k, options, stats);
  {
    const PairEntry root = MakePair(RootRef(r), RootRef(s), options.metric);
    AMDJ_RETURN_IF_ERROR(queue.Push(root));
    tracker.OnPush(root);
  }

  PairEntry c;
  std::vector<PairRef> children;
  while (results.size() < k && !queue.Empty()) {
    AMDJ_RETURN_IF_ERROR(queue.Pop(&c));
    if (c.IsObjectPair()) {
      results.push_back({geom::KeyToDistance(c.key, options.metric).raw(),
                         c.r.id, c.s.id});
      ++stats->pairs_produced;
      continue;
    }
    tracker.OnNodePairLeave(c);
    if (c.key > tracker.Cutoff()) continue;
    TraceSpan span(options.tracer, "expand_unidir",
                   {{"r_level", static_cast<double>(c.r.level)},
                    {"s_level", static_cast<double>(c.s.level)},
                    {"key", c.key.raw()}});
    AMDJ_RETURN_IF_ERROR(internal_hs::ExpandUniDirectional(
        r, s, c, tracker.Cutoff(), options, &queue, &tracker, stats,
        &children));
  }
  if (options.report != nullptr) {
    if (!results.empty()) {
      options.report->OnCutoff("final_dmax", results.back().distance,
                               results.size());
    }
    options.report->EndPhase(*stats);
  }
  return results;
}

HsIdjCursor::HsIdjCursor(const rtree::RTree& r, const rtree::RTree& s,
                         const JoinOptions& options, JoinStats* stats)
    : r_(r),
      s_(s),
      options_(options),
      stats_(stats != nullptr ? stats : &local_stats_),
      queue_(MakeMainQueueOptions(r, s, options), stats_,
             MakeMainQueueCompare(options)) {}

Status HsIdjCursor::Next(ResultPair* out, bool* done) {
  *done = false;
  if (!primed_) {
    primed_ = true;
    if (r_.size() > 0 && s_.size() > 0) {
      AMDJ_RETURN_IF_ERROR(queue_.Push(
          MakePair(RootRef(r_), RootRef(s_), options_.metric)));
    }
  }
  PairEntry c;
  const geom::KeyVal kNoCutoff = geom::KeyVal::Infinity();
  while (!queue_.Empty()) {
    AMDJ_RETURN_IF_ERROR(queue_.Pop(&c));
    if (c.IsObjectPair()) {
      *out = {geom::KeyToDistance(c.key, options_.metric).raw(), c.r.id,
              c.s.id};
      ++produced_;
      ++stats_->pairs_produced;
      return Status::OK();
    }
    TraceSpan span(options_.tracer, "expand_unidir",
                   {{"r_level", static_cast<double>(c.r.level)},
                    {"s_level", static_cast<double>(c.s.level)},
                    {"key", c.key.raw()}});
    AMDJ_RETURN_IF_ERROR(internal_hs::ExpandUniDirectional(
        r_, s_, c, kNoCutoff, options_, &queue_, nullptr, stats_,
        &children_));
  }
  *done = true;
  return Status::OK();
}

}  // namespace amdj::core

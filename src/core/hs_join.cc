#include "core/hs_join.h"

#include "core/dmax_estimator.h"
#include "core/expansion.h"

namespace amdj::core {

MainQueue::Options MakeMainQueueOptions(const rtree::RTree& r,
                                        const rtree::RTree& s,
                                        const JoinOptions& options) {
  MainQueue::Options qopts;
  qopts.memory_bytes = options.queue_memory_bytes;
  qopts.disk = options.queue_disk;
  if (options.queue_disk != nullptr &&
      options.predetermined_queue_boundaries && r.size() > 0 &&
      s.size() > 0) {
    if (options.estimator != nullptr) {
      qopts.boundary_fn = options.estimator->BoundaryFn();
    } else {
      DmaxEstimator estimator(r.bounds(), r.size(), s.bounds(), s.size(),
                              options.metric);
      qopts.boundary_fn = estimator.BoundaryFn();
    }
  }
  return qopts;
}

namespace internal_hs {

Status ExpandUniDirectional(const rtree::RTree& r, const rtree::RTree& s,
                            const PairEntry& pair, double cutoff,
                            const JoinOptions& options, MainQueue* queue,
                            QdmaxTracker* tracker, JoinStats* stats,
                            std::vector<PairRef>* scratch) {
  ++stats->node_expansions;
  // Pick the side to expand: a node over an object; the higher level over
  // the lower; ties by larger area (the node more in need of refinement).
  bool expand_r;
  if (pair.r.IsObject()) {
    expand_r = false;
  } else if (pair.s.IsObject()) {
    expand_r = true;
  } else if (pair.r.level != pair.s.level) {
    expand_r = pair.r.level > pair.s.level;
  } else {
    expand_r = pair.r.rect.Area() >= pair.s.rect.Area();
  }

  std::vector<PairRef>& children = *scratch;
  AMDJ_RETURN_IF_ERROR(ChildList(expand_r ? r : s,
                                 expand_r ? pair.r : pair.s,
                                 expand_r ? options.r_window
                                          : options.s_window,
                                 &children));
  const PairRef& other = expand_r ? pair.s : pair.r;
  for (const PairRef& child : children) {
    ++stats->real_distance_computations;
    PairEntry e = expand_r ? MakePair(child, other, options.metric)
                           : MakePair(other, child, options.metric);
    if (e.distance > cutoff) continue;
    if (options.exclude_same_id && IsSelfPair(e.r, e.s)) continue;
    AMDJ_RETURN_IF_ERROR(queue->Push(e));
    if (tracker != nullptr) tracker->OnPush(e);
  }
  return Status::OK();
}

}  // namespace internal_hs

StatusOr<std::vector<ResultPair>> HsKdj::Run(const rtree::RTree& r,
                                             const rtree::RTree& s,
                                             uint64_t k,
                                             const JoinOptions& options,
                                             JoinStats* stats) {
  std::vector<ResultPair> results;
  if (k == 0 || r.size() == 0 || s.size() == 0) return results;
  JoinStats local;
  if (stats == nullptr) stats = &local;

  MainQueue queue(MakeMainQueueOptions(r, s, options), stats,
                  MakeMainQueueCompare(options));
  QdmaxTracker tracker(k, options, stats);
  {
    const PairEntry root = MakePair(RootRef(r), RootRef(s), options.metric);
    AMDJ_RETURN_IF_ERROR(queue.Push(root));
    tracker.OnPush(root);
  }

  PairEntry c;
  std::vector<PairRef> children;
  while (results.size() < k && !queue.Empty()) {
    AMDJ_RETURN_IF_ERROR(queue.Pop(&c));
    if (c.IsObjectPair()) {
      results.push_back({c.distance, c.r.id, c.s.id});
      ++stats->pairs_produced;
      continue;
    }
    tracker.OnNodePairLeave(c);
    if (c.distance > tracker.Cutoff()) continue;
    AMDJ_RETURN_IF_ERROR(internal_hs::ExpandUniDirectional(
        r, s, c, tracker.Cutoff(), options, &queue, &tracker, stats,
        &children));
  }
  return results;
}

HsIdjCursor::HsIdjCursor(const rtree::RTree& r, const rtree::RTree& s,
                         const JoinOptions& options, JoinStats* stats)
    : r_(r),
      s_(s),
      options_(options),
      stats_(stats != nullptr ? stats : &local_stats_),
      queue_(MakeMainQueueOptions(r, s, options), stats_,
             MakeMainQueueCompare(options)) {}

Status HsIdjCursor::Next(ResultPair* out, bool* done) {
  *done = false;
  if (!primed_) {
    primed_ = true;
    if (r_.size() > 0 && s_.size() > 0) {
      AMDJ_RETURN_IF_ERROR(queue_.Push(
          MakePair(RootRef(r_), RootRef(s_), options_.metric)));
    }
  }
  PairEntry c;
  const double kNoCutoff = std::numeric_limits<double>::infinity();
  while (!queue_.Empty()) {
    AMDJ_RETURN_IF_ERROR(queue_.Pop(&c));
    if (c.IsObjectPair()) {
      *out = {c.distance, c.r.id, c.s.id};
      ++produced_;
      ++stats_->pairs_produced;
      return Status::OK();
    }
    AMDJ_RETURN_IF_ERROR(internal_hs::ExpandUniDirectional(
        r_, s_, c, kNoCutoff, options_, &queue_, nullptr, stats_,
        &children_));
  }
  *done = true;
  return Status::OK();
}

}  // namespace amdj::core

# Empty compiler generated dependencies file for hotels_restaurants.
# This may be replaced when dependencies are built.

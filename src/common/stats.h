#ifndef AMDJ_COMMON_STATS_H_
#define AMDJ_COMMON_STATS_H_

#include <cstdint>
#include <string>

namespace amdj {

/// Counters collected while executing a distance join. These are the three
/// metrics the paper's evaluation reports (Section 5.1) plus a few extras
/// used by the ablation benches.
///
/// A JoinStats instance is owned by the caller and passed (by pointer) into
/// the storage, queue and core layers, which increment the counters they are
/// responsible for:
///   - real/axis distance computations: core (plane sweeper, HS expansion)
///   - queue insertions:                queue (main queue)
///   - node accesses / page I/O:        storage (buffer pool, disk manager)
struct JoinStats {
  // --- computational cost (Figure 10(a), 11, 12(a), 14(a)) ---
  /// Number of real (Euclidean MBR) distance computations.
  uint64_t real_distance_computations = 0;
  /// Number of axis (1-d projected) distance computations done by sweeps.
  uint64_t axis_distance_computations = 0;

  // --- queue cost (Figure 10(b), 12(b), 14(b)) ---
  /// Insertions into the main queue.
  uint64_t main_queue_insertions = 0;
  /// Insertions into the distance queue.
  uint64_t distance_queue_insertions = 0;
  /// Insertions into the compensation queue (AM-KDJ / AM-IDJ only).
  uint64_t compensation_queue_insertions = 0;
  /// Peak number of live entries in the main queue.
  uint64_t main_queue_peak_size = 0;
  /// Main-queue heap split operations (in-memory heap overflow -> disk).
  uint64_t queue_splits = 0;
  /// Main-queue segment swap-ins (disk segment -> in-memory heap).
  uint64_t queue_swapins = 0;

  // --- I/O cost (Table 2, Figure 10(c), 12(c), 13, 15) ---
  /// R-tree node fetches that were served by the buffer pool.
  uint64_t node_buffer_hits = 0;
  /// R-tree node fetches that went to disk (buffer misses). The paper's
  /// Table 2 reports this as "nodes fetched from disk".
  uint64_t node_disk_reads = 0;
  /// Logical node accesses (hits + misses). The paper's Table 2 reports this
  /// in parentheses as accesses without any buffer.
  uint64_t node_accesses = 0;
  /// Queue-related page reads/writes (hybrid queue disk segments, external
  /// sort runs).
  uint64_t queue_page_reads = 0;
  uint64_t queue_page_writes = 0;

  // --- results ---
  /// Number of object pairs produced.
  uint64_t pairs_produced = 0;
  /// Number of node-pair expansions performed.
  uint64_t node_expansions = 0;

  // --- parallel executor (JoinOptions::parallelism > 1 only) ---
  /// Batched expansion rounds executed.
  uint64_t parallel_rounds = 0;
  /// Node-pair tasks handed to the batch expander across all rounds.
  uint64_t parallel_tasks = 0;
  /// Rounds aborted by the tie guard (remaining tasks re-queued).
  uint64_t parallel_tie_aborts = 0;

  // --- time ---
  /// Measured wall-clock CPU time, seconds.
  double cpu_seconds = 0.0;
  /// Simulated I/O time, seconds (see core::CostModel).
  double simulated_io_seconds = 0.0;

  /// Total "response time" in the paper's sense: CPU + simulated I/O.
  double response_seconds() const { return cpu_seconds + simulated_io_seconds; }

  /// Total distance computations (real + axis), as Figure 11 plots.
  uint64_t total_distance_computations() const {
    return real_distance_computations + axis_distance_computations;
  }

  /// Adds all counters of `other` into this (times included).
  void Add(const JoinStats& other);

  /// Resets every counter to zero.
  void Reset();

  /// Multi-line human readable dump.
  std::string ToString() const;
};

}  // namespace amdj

#endif  // AMDJ_COMMON_STATS_H_

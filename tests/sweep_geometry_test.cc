#include "geom/sweep_geometry.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace amdj::geom {
namespace {

/// Numeric reference for IntegrateWindowOverlap (midpoint rule).
double NumericIntegral(double a_lo, double a_hi, double window, double b_lo,
                       double b_hi, int steps = 200000) {
  if (a_hi <= a_lo) return 0.0;
  const double h = (a_hi - a_lo) / steps;
  double total = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double t = a_lo + (i + 0.5) * h;
    const double lo = std::max(t, b_lo);
    const double hi = std::min(t + window, b_hi);
    total += std::max(0.0, hi - lo) * h;
  }
  return total;
}

TEST(WindowOverlapTest, ZeroWhenWindowNeverReaches) {
  // Window of length 1 sweeping [0,2]; target [10,11] unreachable.
  EXPECT_EQ(IntegrateWindowOverlap(0, 2, 1, 10, 11), 0.0);
}

TEST(WindowOverlapTest, FullOverlapWhenTargetInsideEveryWindow) {
  // Target [1,2] always fully inside window [t, t+10] for t in [0, 1]:
  // wait, at t=1 window=[1,11] covers [1,2] fully; at t=0 covers fully.
  EXPECT_DOUBLE_EQ(IntegrateWindowOverlap(0, 1, 10, 1, 2), 1.0);
}

TEST(WindowOverlapTest, SimpleTriangleCase) {
  // Window [t,t+1], t in [0,2], target [2,3]: overlap = max(0, t-1) for
  // t<=2 (window right end t+1 reaches 2 at t=1, overlap t+1-2 = t-1).
  // Integral over t in [1,2] of (t-1) dt = 1/2.
  EXPECT_DOUBLE_EQ(IntegrateWindowOverlap(0, 2, 1, 2, 3), 0.5);
}

TEST(WindowOverlapTest, MatchesNumericIntegralRandomized) {
  Random rng(314);
  for (int i = 0; i < 200; ++i) {
    const double a_lo = rng.Uniform(-10, 10);
    const double a_hi = a_lo + rng.Uniform(0, 20);
    const double b_lo = rng.Uniform(-10, 10);
    const double b_hi = b_lo + rng.Uniform(0, 20);
    const double window = rng.Uniform(0, 15);
    const double exact =
        IntegrateWindowOverlap(a_lo, a_hi, window, b_lo, b_hi);
    const double numeric =
        NumericIntegral(a_lo, a_hi, window, b_lo, b_hi, 20000);
    EXPECT_NEAR(exact, numeric, 1e-2 + 1e-3 * std::abs(exact))
        << "a=[" << a_lo << "," << a_hi << "] b=[" << b_lo << "," << b_hi
        << "] w=" << window;
  }
}

TEST(SweepingIndexTermTest, DegenerateTargetIsIndicatorAverage) {
  // Target collapsed at position 5, window 2, anchors in [0, 10]: the
  // indicator {5 in [t, t+2]} holds for t in [3, 5] -> measure 2 of 10.
  EXPECT_DOUBLE_EQ(SweepingIndexTerm(0, 10, 2, 5, 5), 0.2);
  // Anchors in [0, 4]: t in [3, 4] -> measure 1 of 4.
  EXPECT_DOUBLE_EQ(SweepingIndexTerm(0, 4, 2, 5, 5), 0.25);
}

TEST(SweepingIndexTermTest, DegenerateAnchorIsPointEvaluation) {
  // Single anchor at 0 with window 3 over target [1, 5]: overlap 2 of 4.
  EXPECT_DOUBLE_EQ(SweepingIndexTerm(0, 0, 3, 1, 5), 0.5);
}

TEST(SweepingIndexClosedFormTest, MatchesGenericIntegralSeparatedCase) {
  Random rng(2718);
  for (int i = 0; i < 500; ++i) {
    const double len_r = rng.Uniform(0, 10);
    const double len_s = rng.Uniform(0, 10);
    const double alpha = rng.Uniform(0, 5);
    const double window = rng.Uniform(0, 25);
    const double closed =
        SweepingIndexTermSeparated(len_r, len_s, alpha, window);
    // Generic: r = [0, len_r], s = [len_r + alpha, len_r + alpha + len_s].
    const double generic = SweepingIndexTerm(0, len_r, window, len_r + alpha,
                                             len_r + alpha + len_s);
    EXPECT_NEAR(closed, generic, 1e-9 + 1e-9 * std::abs(closed))
        << "R=" << len_r << " S=" << len_s << " alpha=" << alpha
        << " w=" << window;
  }
}

TEST(SweepingIndexClosedFormTest, ZeroWhenWindowWithinGap) {
  EXPECT_EQ(SweepingIndexTermSeparated(5, 5, 3, 2.9), 0.0);
  EXPECT_EQ(SweepingIndexTermSeparated(5, 5, 3, 3.0), 0.0);
}

TEST(SweepingIndexClosedFormTest, SaturatesAtFullFraction) {
  // Enormous window: every anchor sees the whole target -> fraction 1.
  EXPECT_DOUBLE_EQ(SweepingIndexTermSeparated(5, 2, 1, 1000), 1.0);
}

TEST(SweepingIndexTermTest, IsAFractionInUnitInterval) {
  Random rng(555);
  for (int i = 0; i < 300; ++i) {
    const double a_lo = rng.Uniform(-10, 10);
    const double a_hi = a_lo + rng.Uniform(0, 20);
    const double b_lo = rng.Uniform(-10, 10);
    const double b_hi = b_lo + rng.Uniform(0, 20);
    const double w = rng.Uniform(0, 30);
    const double term = SweepingIndexTerm(a_lo, a_hi, w, b_lo, b_hi);
    EXPECT_GE(term, 0.0);
    EXPECT_LE(term, 1.0 + 1e-12);
  }
}

TEST(SweepingIndexTest, PrefersSpreadAxis) {
  // Children spread along y (tall thin nodes side by side): sweeping along
  // y must have the smaller index (Figure 5's scenario).
  const Rect r(0, 0, 2, 100);
  const Rect s(3, 0, 5, 100);
  const double window = 4.0;
  const double ix = SweepingIndex(r, s, window, 0);
  const double iy = SweepingIndex(r, s, window, 1);
  EXPECT_LT(iy, ix);
}

TEST(SweepingIndexTest, SymmetricInArguments) {
  const Rect r(0, 0, 7, 3);
  const Rect s(5, 1, 12, 9);
  for (int axis = 0; axis < 2; ++axis) {
    EXPECT_NEAR(SweepingIndex(r, s, 2.5, axis),
                SweepingIndex(s, r, 2.5, axis), 1e-12);
  }
}

TEST(SweepingIndexTest, GrowsWithWindow) {
  const Rect r(0, 0, 10, 10);
  const Rect s(12, 0, 20, 10);
  double prev = -1.0;
  for (double w : {1.0, 3.0, 5.0, 9.0, 15.0}) {
    const double idx = SweepingIndex(r, s, w, 0);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(SweepDirectionTest, ForwardWhenLeftIntervalShorter) {
  // r = [0, 2], s = [1, 10] on x: endpoints 0,1,2,10; left = 1, right = 8.
  EXPECT_EQ(ChooseSweepDirection(Rect(0, 0, 2, 1), Rect(1, 0, 10, 1), 0),
            SweepDirection::kForward);
}

TEST(SweepDirectionTest, BackwardWhenRightIntervalShorter) {
  // endpoints 0,8,9,10: left = 8, right = 1.
  EXPECT_EQ(ChooseSweepDirection(Rect(0, 0, 9, 1), Rect(8, 0, 10, 1), 0),
            SweepDirection::kBackward);
}

TEST(SweepDirectionTest, ContainmentUsesOuterIntervals) {
  // s inside r: endpoints 0,4,6,10 -> left 4, right 4 -> backward (ties).
  EXPECT_EQ(ChooseSweepDirection(Rect(0, 0, 10, 1), Rect(4, 0, 6, 1), 0),
            SweepDirection::kBackward);
  // Skewed containment: endpoints 0,1,3,10 -> left 1 < right 7 -> forward.
  EXPECT_EQ(ChooseSweepDirection(Rect(0, 0, 10, 1), Rect(1, 0, 3, 1), 0),
            SweepDirection::kForward);
}

}  // namespace
}  // namespace amdj::geom

# Empty dependencies file for micro_sweep.
# This may be replaced when dependencies are built.

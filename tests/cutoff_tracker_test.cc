#include "queue/cutoff_tracker.h"

#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

#include "common/random.h"
#include "geom/units.h"
#include "core/distance_join.h"
#include "test_util.h"
#include "workload/generators.h"

namespace amdj {
namespace {

using geom::KeyVal;

constexpr KeyVal kInf = KeyVal::Infinity();

TEST(TrackedDistanceQueueTest, CutoffInfinityUntilKAlive) {
  queue::TrackedDistanceQueue q(3);
  q.Insert(KeyVal(1.0));
  q.InsertRevocable(KeyVal(2.0));
  EXPECT_EQ(q.CutoffKey(), kInf);
  q.Insert(KeyVal(3.0));
  EXPECT_EQ(q.CutoffKey(), KeyVal(3.0));
}

TEST(TrackedDistanceQueueTest, RevokeRaisesTheCutoff) {
  queue::TrackedDistanceQueue q(2);
  q.Insert(KeyVal(10.0));
  q.InsertRevocable(KeyVal(1.0));
  q.Insert(KeyVal(5.0));
  EXPECT_EQ(q.CutoffKey(), KeyVal(5.0));  // alive: {1, 5, 10}
  q.Revoke(KeyVal(1.0));
  EXPECT_EQ(q.CutoffKey(), KeyVal(10.0));  // alive: {5, 10}
  q.Revoke(KeyVal(5.0));  // revoking a permanent value is the caller's business;
                  // the structure just removes one instance
  EXPECT_EQ(q.CutoffKey(), kInf);  // alive: {10}
}

TEST(TrackedDistanceQueueTest, RevokeOfAbsentValueIsNoOp) {
  queue::TrackedDistanceQueue q(1);
  q.Insert(KeyVal(2.0));
  q.Revoke(KeyVal(99.0));
  EXPECT_EQ(q.CutoffKey(), KeyVal(2.0));
}

TEST(TrackedDistanceQueueTest, DuplicateValuesCountSeparately) {
  queue::TrackedDistanceQueue q(2);
  q.InsertRevocable(KeyVal(4.0));
  q.InsertRevocable(KeyVal(4.0));
  EXPECT_EQ(q.CutoffKey(), KeyVal(4.0));
  q.Revoke(KeyVal(4.0));
  EXPECT_EQ(q.CutoffKey(), kInf);  // one instance left
  EXPECT_EQ(q.alive(), 1u);
}

TEST(TrackedDistanceQueueTest, RandomizedAgainstMultisetReference) {
  Random rng(33);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t k = 1 + rng.UniformInt(uint64_t{20});
    queue::TrackedDistanceQueue q(k);
    std::vector<double> alive;
    for (int step = 0; step < 2000; ++step) {
      if (alive.empty() || rng.Bernoulli(0.65)) {
        const double v = rng.Uniform(0, 100);
        q.InsertRevocable(KeyVal(v));
        alive.push_back(v);
      } else {
        const size_t i = rng.UniformInt(alive.size());
        q.Revoke(KeyVal(alive[i]));
        alive.erase(alive.begin() + i);
      }
      std::vector<double> sorted = alive;
      std::sort(sorted.begin(), sorted.end());
      const KeyVal expected =
          sorted.size() >= k ? KeyVal(sorted[k - 1]) : kInf;
      ASSERT_EQ(q.CutoffKey(), expected) << "step " << step;
      ASSERT_EQ(q.alive(), alive.size());
    }
  }
}

// ---------------------------------------------------------------------------
// Adversarial soundness of the kAllPairs policy: a dense cluster provides
// many small node-pair certificates that overlap their own realized object
// pairs; counted naively they would push qDmax below the distance of the
// one extra pair the query still needs, pruning it. The revocation scheme
// must keep every result.

TEST(AllPairsPolicySoundnessTest, DenseClusterPlusOneFarPair) {
  workload::Dataset r_data, s_data;
  // 30 x 30 near-coincident pairs at the origin...

  for (int i = 0; i < 30; ++i) {
    const double x = 0.001 * i;
    r_data.objects.push_back(geom::Rect(x, 0, x, 0));
    s_data.objects.push_back(geom::Rect(x, 0.0001, x, 0.0001));
  }
  // ...and one isolated pair at distance 1, far away.
  r_data.objects.push_back(geom::Rect(1000, 1000, 1000, 1000));
  s_data.objects.push_back(geom::Rect(1000, 1001, 1000, 1001));

  test::JoinFixture f = test::MakeFixture(r_data, s_data, /*fanout=*/4);
  const auto brute = test::BruteForceDistances(f.r_objects, f.s_objects);
  core::JoinOptions options;
  options.distance_queue_policy = core::DistanceQueuePolicy::kAllPairs;
  // k = all cluster-internal pairs + 1: the far pair must be the last
  // result, and any unsound cutoff below 1.0 would lose it.
  const uint64_t k = 30ull * 30ull + 1;
  for (const auto algorithm :
       {core::KdjAlgorithm::kHsKdj, core::KdjAlgorithm::kBKdj,
        core::KdjAlgorithm::kAmKdj}) {
    auto result =
        core::RunKDistanceJoin(*f.r, *f.s, k, algorithm, options, nullptr);
    ASSERT_TRUE(result.ok()) << core::ToString(algorithm);
    ASSERT_EQ(result->size(), k) << core::ToString(algorithm);
    EXPECT_NEAR(result->back().distance, 1.0, 1e-9);
    for (size_t i = 0; i < k; ++i) {
      ASSERT_NEAR((*result)[i].distance, brute[i], 1e-9)
          << core::ToString(algorithm) << " rank " << i;
    }
  }
}

TEST(AllPairsPolicySoundnessTest, PoliciesAgreeOnRandomWorkloads) {
  Random rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    const geom::Rect uni(0, 0, 2000, 2000);
    test::JoinFixture f = test::MakeFixture(
        workload::GaussianClusters(60 + rng.UniformInt(uint64_t{100}),
                                   1 + rng.UniformInt(uint64_t{4}), 0.01,
                                   trial * 13 + 1, uni),
        workload::UniformPoints(60 + rng.UniformInt(uint64_t{100}),
                                trial * 17 + 2, uni),
        4 + static_cast<uint32_t>(rng.UniformInt(uint64_t{8})));
    const uint64_t k = 1 + rng.UniformInt(
        uint64_t{f.r_objects.size() * f.s_objects.size()});
    core::JoinOptions objects_only;
    core::JoinOptions all_pairs;
    all_pairs.distance_queue_policy = core::DistanceQueuePolicy::kAllPairs;
    for (const auto algorithm :
         {core::KdjAlgorithm::kHsKdj, core::KdjAlgorithm::kBKdj,
          core::KdjAlgorithm::kAmKdj}) {
      auto a = core::RunKDistanceJoin(*f.r, *f.s, k, algorithm,
                                      objects_only, nullptr);
      auto b = core::RunKDistanceJoin(*f.r, *f.s, k, algorithm, all_pairs,
                                      nullptr);
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(a->size(), b->size())
          << core::ToString(algorithm) << " trial " << trial << " k=" << k;
      for (size_t i = 0; i < a->size(); ++i) {
        ASSERT_NEAR((*a)[i].distance, (*b)[i].distance, 1e-9)
            << core::ToString(algorithm) << " trial " << trial << " rank "
            << i;
      }
    }
  }
}

}  // namespace
}  // namespace amdj

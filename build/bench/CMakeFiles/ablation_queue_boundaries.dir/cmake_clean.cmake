file(REMOVE_RECURSE
  "CMakeFiles/ablation_queue_boundaries.dir/ablation_queue_boundaries.cc.o"
  "CMakeFiles/ablation_queue_boundaries.dir/ablation_queue_boundaries.cc.o.d"
  "ablation_queue_boundaries"
  "ablation_queue_boundaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_queue_boundaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

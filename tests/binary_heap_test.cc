#include "queue/binary_heap.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"

namespace amdj::queue {
namespace {

struct Less {
  bool operator()(int a, int b) const { return a < b; }
};

TEST(BinaryHeapTest, PopsInOrder) {
  BinaryHeap<int, Less> heap;
  EXPECT_TRUE(heap.Empty());
  for (int v : {5, 1, 4, 1, 3}) heap.Push(v);
  EXPECT_EQ(heap.Size(), 5u);
  EXPECT_EQ(heap.Top(), 1);
  std::vector<int> out;
  while (!heap.Empty()) out.push_back(heap.Pop());
  EXPECT_EQ(out, (std::vector<int>{1, 1, 3, 4, 5}));
}

TEST(BinaryHeapTest, AssignHeapifies) {
  BinaryHeap<int, Less> heap;
  heap.Assign({9, 2, 7, 4});
  EXPECT_EQ(heap.Top(), 2);
  heap.Push(1);
  EXPECT_EQ(heap.Pop(), 1);
  EXPECT_EQ(heap.Pop(), 2);
}

TEST(BinaryHeapTest, TakeAllEmptiesTheHeap) {
  BinaryHeap<int, Less> heap;
  for (int i = 0; i < 10; ++i) heap.Push(i);
  auto all = heap.TakeAll();
  EXPECT_EQ(all.size(), 10u);
  EXPECT_TRUE(heap.Empty());
  std::sort(all.begin(), all.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(all[i], i);
}

TEST(BinaryHeapTest, ClearAndReuse) {
  BinaryHeap<int, Less> heap;
  heap.Push(3);
  heap.Clear();
  EXPECT_TRUE(heap.Empty());
  heap.Push(2);
  EXPECT_EQ(heap.Top(), 2);
}

TEST(BinaryHeapTest, RandomizedAgainstSort) {
  Random rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    BinaryHeap<int, Less> heap;
    std::vector<int> reference;
    const int n = 1 + static_cast<int>(rng.UniformInt(uint64_t{500}));
    for (int i = 0; i < n; ++i) {
      const int v = static_cast<int>(rng.UniformInt(uint64_t{1000}));
      heap.Push(v);
      reference.push_back(v);
    }
    std::sort(reference.begin(), reference.end());
    for (int expected : reference) {
      ASSERT_EQ(heap.Pop(), expected);
    }
  }
}

TEST(BinaryHeapTest, CustomComparatorState) {
  // A comparator carrying state (like PairEntryCompare's tie-break mode).
  struct ModalLess {
    bool reversed;
    bool operator()(int a, int b) const {
      return reversed ? a > b : a < b;
    }
  };
  BinaryHeap<int, ModalLess> max_heap(ModalLess{true});
  for (int v : {1, 5, 3}) max_heap.Push(v);
  EXPECT_EQ(max_heap.Pop(), 5);
  EXPECT_EQ(max_heap.Pop(), 3);
  EXPECT_EQ(max_heap.Pop(), 1);
}

}  // namespace
}  // namespace amdj::queue

#ifndef AMDJ_RTREE_HILBERT_BULK_LOADER_H_
#define AMDJ_RTREE_HILBERT_BULK_LOADER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "rtree/entry.h"

namespace amdj::rtree {

class RTree;

/// Hilbert-curve bulk loading (Kamel & Faloutsos' Hilbert-packed R-tree):
/// objects are sorted by the Hilbert index of their MBR center on a
/// 2^16 x 2^16 grid over the data bounds and packed into nodes in curve
/// order. Compared to STR the packing is one-dimensional (no slab
/// boundaries), which tends to give slightly better neighbor locality on
/// clustered data; bench/ablation_bulk_loading compares them.
class HilbertBulkLoader {
 public:
  /// Does not take ownership.
  explicit HilbertBulkLoader(RTree* tree) : tree_(tree) {}

  /// Bulk loads `objects`, replacing the tree's contents (same abandonment
  /// semantics as StrBulkLoader). `fill` in (0, 1] scales node occupancy.
  Status Load(std::vector<Entry> objects, double fill);

  /// Hilbert index of grid cell (x, y) on a 2^order x 2^order curve.
  /// Exposed for tests; the loader uses order 16.
  static uint64_t HilbertIndex(uint32_t order, uint32_t x, uint32_t y);

 private:
  RTree* tree_;
};

}  // namespace amdj::rtree

#endif  // AMDJ_RTREE_HILBERT_BULK_LOADER_H_

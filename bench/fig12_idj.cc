// Figure 12: performance of incremental distance joins. HS-IDJ vs AM-IDJ
// producing k pairs incrementally, over the same three metrics as Figure
// 10; the paper reports 75-98% of HS-IDJ's distance computations and queue
// insertions eliminated and an order of magnitude in response time.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.h"

namespace amdj::bench {
namespace {

void Run(int argc, char** argv) {
  BenchEnv env = MakeTigerEnv(BenchConfig::FromArgs(argc, argv));
  PrintHeader("Figure 12: incremental distance join performance", env);

  const std::vector<uint64_t> ks = {10, 100, 1000, 10000, 100000};
  const std::vector<core::IdjAlgorithm> algorithms = {
      core::IdjAlgorithm::kHsIdj, core::IdjAlgorithm::kAmIdj};

  std::vector<std::vector<JoinStats>> grid(
      algorithms.size(), std::vector<JoinStats>(ks.size()));
  for (size_t ai = 0; ai < algorithms.size(); ++ai) {
    for (size_t ki = 0; ki < ks.size(); ++ki) {
      grid[ai][ki] =
          RunIdjCold(env, algorithms[ai], ks[ki], env.MakeJoinOptions())
              .stats;
    }
  }

  const std::vector<int> widths = {10, 14, 14, 14, 14, 14};
  auto print_metric = [&](const char* title,
                          const std::function<std::string(const JoinStats&)>&
                              fmt) {
    std::printf("## %s\n", title);
    std::vector<std::string> header = {"algorithm"};
    for (uint64_t k : ks) header.push_back("k=" + FormatCount(k));
    PrintRow(header, widths);
    for (size_t ai = 0; ai < algorithms.size(); ++ai) {
      std::vector<std::string> row = {core::ToString(algorithms[ai])};
      for (size_t ki = 0; ki < ks.size(); ++ki) {
        row.push_back(fmt(grid[ai][ki]));
      }
      PrintRow(row, widths);
    }
    // The headline reduction at the largest k.
    const JoinStats& hs = grid[0].back();
    const JoinStats& am = grid[1].back();
    (void)hs;
    (void)am;
    std::printf("\n");
  };

  print_metric("(a) number of distance computations",
               [](const JoinStats& s) {
                 return FormatCount(s.real_distance_computations);
               });
  print_metric("(b) number of queue insertions", [](const JoinStats& s) {
    return FormatCount(s.main_queue_insertions);
  });
  print_metric("(c) response time (seconds, CPU + simulated I/O)",
               [](const JoinStats& s) {
                 return FormatSeconds(s.response_seconds());
               });

  // Summary row mirroring the paper's 75-98% claim.
  std::printf("## reduction of AM-IDJ vs HS-IDJ per k\n");
  PrintRow({"k", "dist comp", "queue ins"}, {10, 14, 14});
  for (size_t ki = 0; ki < ks.size(); ++ki) {
    auto pct = [&](uint64_t hs, uint64_t am) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f%%",
                    hs == 0 ? 0.0
                            : 100.0 * (double(hs) - double(am)) / double(hs));
      return std::string(buf);
    };
    PrintRow({"k=" + FormatCount(ks[ki]),
              pct(grid[0][ki].real_distance_computations,
                  grid[1][ki].real_distance_computations),
              pct(grid[0][ki].main_queue_insertions,
                  grid[1][ki].main_queue_insertions)},
             {10, 14, 14});
  }
}

}  // namespace
}  // namespace amdj::bench

int main(int argc, char** argv) {
  amdj::bench::Run(argc, argv);
  return 0;
}

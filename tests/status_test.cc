#include "common/status.h"

#include <gtest/gtest.h>

namespace amdj {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_FALSE(Status::Internal("x").ok());
  EXPECT_EQ(Status::IOError("disk on fire").message(), "disk on fire");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::IOError("short read").ToString(), "IOError: short read");
  EXPECT_EQ(Status(StatusCode::kCorruption, "").ToString(), "Corruption");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::IOError("a"), Status::IOError("a"));
  EXPECT_FALSE(Status::IOError("a") == Status::IOError("b"));
  EXPECT_FALSE(Status::IOError("a") == Status::Corruption("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

Status FailingHelper() { return Status::IOError("inner"); }

Status Propagates() {
  AMDJ_RETURN_IF_ERROR(FailingHelper());
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kIOError);
}

TEST(StatusCodeTest, AllNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

}  // namespace
}  // namespace amdj

// SIMD/scalar bit-exactness for the batch distance kernels: every backend
// must produce *exactly* the same doubles (==, not near) on random and
// adversarial inputs, and runtime dispatch must clamp to what the build and
// CPU actually provide. See DESIGN.md "Vectorized distance kernels".

#include "geom/kernels.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "geom/metric.h"
#include "geom/rect.h"

namespace amdj::geom {
namespace {

// Exercises every vector-width remainder: scalar tails of 1..7 lanes around
// the SSE2 (2) and AVX2 (4) strides, plus empty and a large batch.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 15, 16, 17, 63, 64, 65, 257};

struct SoaRects {
  std::vector<double> lo0, hi0, lo1, hi1;

  void Add(double l0, double h0, double l1, double h1) {
    lo0.push_back(l0);
    hi0.push_back(h0);
    lo1.push_back(l1);
    hi1.push_back(h1);
  }
  size_t size() const { return lo0.size(); }
};

// A batch mixing the geometric edge cases a sweep actually produces:
// touching rects (gap exactly 0), overlapping, degenerate points,
// negative coordinates, -0.0 boundaries, tiny and huge magnitudes.
SoaRects EdgeCaseBatch() {
  SoaRects r;
  r.Add(1.0, 2.0, 1.0, 2.0);        // touches query hi edge
  r.Add(-2.0, -1.0, -2.0, -1.0);    // negative quadrant
  r.Add(0.0, 0.0, 0.0, 0.0);        // degenerate point at origin
  r.Add(-0.0, -0.0, -0.0, 0.0);     // signed-zero bounds
  r.Add(-5.0, 5.0, -5.0, 5.0);      // strictly contains the query
  r.Add(0.25, 0.75, 0.25, 0.75);    // strictly inside the query
  r.Add(1e-300, 2e-300, 0.0, 1.0);  // denormal-adjacent gaps
  r.Add(1e150, 2e150, 0.0, 1.0);    // squares near overflow
  r.Add(3.0, 4.0, -4.0, -3.0);      // diagonal separation
  r.Add(std::nextafter(1.0, 2.0), 3.0, 0.0, 1.0);  // one-ulp gap
  return r;
}

SoaRects RandomBatch(Random* rng, size_t n) {
  SoaRects r;
  for (size_t i = 0; i < n; ++i) {
    // Mix scales and signs; ~1/4 degenerate to points, ~1/4 tie exactly
    // with the query boundary at 1.0 to exercise <=/== paths.
    const double scale = (i % 3 == 0) ? 1e-6 : ((i % 3 == 1) ? 1.0 : 1e6);
    double l0 = (rng->NextDouble() * 2.0 - 1.0) * scale;
    double l1 = (rng->NextDouble() * 2.0 - 1.0) * scale;
    double w0 = (i % 4 == 0) ? 0.0 : rng->NextDouble() * scale;
    double w1 = (i % 4 == 0) ? 0.0 : rng->NextDouble() * scale;
    if (i % 4 == 1) l0 = 1.0;  // exact tie with q_hi0
    r.Add(l0, l0 + w0, l1, l1 + w1);
  }
  return r;
}

std::vector<KernelBackend> AvailableBackends() {
  std::vector<KernelBackend> v = {KernelBackend::kScalar};
  if (KernelBackendAvailable(KernelBackend::kSse2)) {
    v.push_back(KernelBackend::kSse2);
  }
  if (KernelBackendAvailable(KernelBackend::kAvx2)) {
    v.push_back(KernelBackend::kAvx2);
  }
  return v;
}

void RunAxisDistance(KernelBackend b, const double* lo, double anchor_hi,
                     size_t n, double* out) {
  switch (b) {
    case KernelBackend::kScalar:
      internal::BatchAxisDistanceScalar(lo, anchor_hi, n, out);
      return;
    case KernelBackend::kSse2:
      internal::BatchAxisDistanceSse2(lo, anchor_hi, n, out);
      return;
    case KernelBackend::kAvx2:
      internal::BatchAxisDistanceAvx2(lo, anchor_hi, n, out);
      return;
  }
}

void RunMinDist(KernelBackend b, const SoaRects& r, const Rect& q, size_t n,
                double* out) {
  switch (b) {
    case KernelBackend::kScalar:
      internal::BatchMinDistSquaredScalar(r.lo0.data(), r.hi0.data(),
                                          r.lo1.data(), r.hi1.data(), q.lo.x,
                                          q.hi.x, q.lo.y, q.hi.y, n, out);
      return;
    case KernelBackend::kSse2:
      internal::BatchMinDistSquaredSse2(r.lo0.data(), r.hi0.data(),
                                        r.lo1.data(), r.hi1.data(), q.lo.x,
                                        q.hi.x, q.lo.y, q.hi.y, n, out);
      return;
    case KernelBackend::kAvx2:
      internal::BatchMinDistSquaredAvx2(r.lo0.data(), r.hi0.data(),
                                        r.lo1.data(), r.hi1.data(), q.lo.x,
                                        q.hi.x, q.lo.y, q.hi.y, n, out);
      return;
  }
}

void RunMinDistPoint(KernelBackend b, const double* px, const double* py,
                     const Rect& q, size_t n, double* out) {
  switch (b) {
    case KernelBackend::kScalar:
      internal::BatchMinDistSquaredPointScalar(px, py, q.lo.x, q.hi.x, q.lo.y,
                                               q.hi.y, n, out);
      return;
    case KernelBackend::kSse2:
      internal::BatchMinDistSquaredPointSse2(px, py, q.lo.x, q.hi.x, q.lo.y,
                                             q.hi.y, n, out);
      return;
    case KernelBackend::kAvx2:
      internal::BatchMinDistSquaredPointAvx2(px, py, q.lo.x, q.hi.x, q.lo.y,
                                             q.hi.y, n, out);
      return;
  }
}

size_t RunFilter(KernelBackend b, const double* keys, size_t n, double cutoff,
                 uint32_t* idx) {
  switch (b) {
    case KernelBackend::kScalar:
      return internal::BatchFilterWithinScalar(keys, n, cutoff, idx);
    case KernelBackend::kSse2:
      return internal::BatchFilterWithinSse2(keys, n, cutoff, idx);
    case KernelBackend::kAvx2:
      return internal::BatchFilterWithinAvx2(keys, n, cutoff, idx);
  }
  return 0;
}

// Every backend's output must be byte-identical to the scalar reference
// (EXPECT_EQ on doubles would treat -0.0 == +0.0 and NaN != NaN; memcmp is
// the actual contract).
void ExpectBitIdentical(const std::vector<double>& ref,
                        const std::vector<double>& got, KernelBackend b,
                        size_t n) {
  ASSERT_EQ(ref.size(), got.size());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(std::memcmp(&ref[i], &got[i], sizeof(double)), 0)
        << ToString(b) << " lane " << i << ": scalar=" << ref[i]
        << " simd=" << got[i] << " (n=" << n << ")";
  }
}

TEST(KernelDispatchTest, ScalarAlwaysAvailable) {
  EXPECT_TRUE(KernelBackendAvailable(KernelBackend::kScalar));
}

TEST(KernelDispatchTest, ForceClampsToAvailableAndResets) {
  const KernelBackend best = ActiveKernelBackend();
  // Forcing scalar always succeeds: the dispatch table must honor it.
  EXPECT_EQ(ForceKernelBackend(KernelBackend::kScalar),
            KernelBackend::kScalar);
  EXPECT_EQ(ActiveKernelBackend(), KernelBackend::kScalar);
  // Forcing the widest backend lands on it when available, else clamps
  // down to something that is.
  const KernelBackend forced = ForceKernelBackend(KernelBackend::kAvx2);
  EXPECT_TRUE(KernelBackendAvailable(forced));
  if (KernelBackendAvailable(KernelBackend::kAvx2)) {
    EXPECT_EQ(forced, KernelBackend::kAvx2);
  } else {
    EXPECT_LT(static_cast<int>(forced),
              static_cast<int>(KernelBackend::kAvx2));
  }
  ResetKernelBackend();
  EXPECT_EQ(ActiveKernelBackend(), best);
}

TEST(KernelDispatchTest, PublicEntryPointsFollowForcedBackend) {
  // The public BatchAxisDistance must route through the forced backend and
  // still produce the scalar bits (spot check; full equivalence below).
  Random rng(7);
  std::vector<double> lo(33), ref(33), got(33);
  for (auto& v : lo) v = rng.NextDouble() * 10.0 - 5.0;
  internal::BatchAxisDistanceScalar(lo.data(), 1.5, lo.size(), ref.data());
  for (KernelBackend b : AvailableBackends()) {
    ASSERT_EQ(ForceKernelBackend(b), b);
    BatchAxisDistance(lo.data(), 1.5, lo.size(), got.data());
    ExpectBitIdentical(ref, got, b, lo.size());
  }
  ResetKernelBackend();
}

TEST(KernelEquivalenceTest, AxisDistanceRandomizedAllSizes) {
  Random rng(1234);
  for (size_t n : kSizes) {
    std::vector<double> lo(n + 1, 0.0);  // +1 guards against overreads
    for (size_t i = 0; i < n; ++i) {
      lo[i] = rng.NextDouble() * 2000.0 - 1000.0;
      if (i % 5 == 0) lo[i] = 42.0;  // exact ties with the anchor
    }
    std::vector<double> ref(n + 1, -7.0), got(n + 1, -7.0);
    internal::BatchAxisDistanceScalar(lo.data(), 42.0, n, ref.data());
    for (size_t i = 0; i < n; ++i) {
      // The scalar kernel must agree with the branchy single-gap form.
      const double gap = lo[i] - 42.0;
      EXPECT_EQ(ref[i], gap > 0.0 ? gap : 0.0) << i;
      EXPECT_FALSE(std::signbit(ref[i])) << "lane " << i << " produced -0.0";
    }
    for (KernelBackend b : AvailableBackends()) {
      std::fill(got.begin(), got.end(), -7.0);
      RunAxisDistance(b, lo.data(), 42.0, n, got.data());
      ExpectBitIdentical(ref, got, b, n);
      EXPECT_EQ(got[n], -7.0) << ToString(b) << " wrote past n=" << n;
    }
  }
}

TEST(KernelEquivalenceTest, MinDistSquaredEdgeCases) {
  const SoaRects batch = EdgeCaseBatch();
  const Rect q(0.0, 0.0, 1.0, 1.0);
  const size_t n = batch.size();
  std::vector<double> ref(n), got(n);
  RunMinDist(KernelBackend::kScalar, batch, q, n, ref.data());
  // The scalar kernel must match geom::MinDistanceKey exactly — it is the
  // value the non-batched code paths compute and compare against.
  for (size_t i = 0; i < n; ++i) {
    const Rect r(batch.lo0[i], batch.lo1[i], batch.hi0[i], batch.hi1[i]);
    EXPECT_EQ(ref[i], MinDistanceKey(r, q, Metric::kL2).raw())
        << "lane " << i;
    EXPECT_FALSE(std::signbit(ref[i])) << "lane " << i << " produced -0.0";
  }
  for (KernelBackend b : AvailableBackends()) {
    RunMinDist(b, batch, q, n, got.data());
    ExpectBitIdentical(ref, got, b, n);
  }
}

TEST(KernelEquivalenceTest, MinDistSquaredRandomizedAllSizes) {
  Random rng(99);
  const Rect q(-3.0, -2.0, 5.0, 7.0);
  for (size_t n : kSizes) {
    const SoaRects batch = RandomBatch(&rng, n);
    std::vector<double> ref(n), got(n);
    RunMinDist(KernelBackend::kScalar, batch, q, n, ref.data());
    for (KernelBackend b : AvailableBackends()) {
      std::fill(got.begin(), got.end(), -1.0);
      RunMinDist(b, batch, q, n, got.data());
      ExpectBitIdentical(ref, got, b, n);
    }
  }
}

TEST(KernelEquivalenceTest, MinDistSquaredPointRandomizedAllSizes) {
  Random rng(4321);
  const Rect q(-1.0, -1.0, 1.0, 1.0);
  for (size_t n : kSizes) {
    std::vector<double> px(n), py(n);
    for (size_t i = 0; i < n; ++i) {
      px[i] = rng.NextDouble() * 6.0 - 3.0;
      py[i] = rng.NextDouble() * 6.0 - 3.0;
      if (i % 7 == 0) px[i] = 1.0;   // on the boundary
      if (i % 7 == 1) px[i] = -0.0;  // signed zero inside
    }
    std::vector<double> ref(n), got(n);
    RunMinDistPoint(KernelBackend::kScalar, px.data(), py.data(), q, n,
                    ref.data());
    for (size_t i = 0; i < n; ++i) {
      const Rect p(px[i], py[i], px[i], py[i]);
      EXPECT_EQ(ref[i], MinDistanceKey(p, q, Metric::kL2).raw())
          << "lane " << i;
    }
    for (KernelBackend b : AvailableBackends()) {
      RunMinDistPoint(b, px.data(), py.data(), q, n, got.data());
      ExpectBitIdentical(ref, got, b, n);
    }
  }
}

TEST(KernelEquivalenceTest, FilterWithinMatchesScalarExactly) {
  Random rng(8);
  for (size_t n : kSizes) {
    std::vector<double> keys(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = rng.NextDouble();
      if (i % 3 == 0) keys[i] = 0.5;  // plateau exactly at the cutoff
    }
    std::vector<uint32_t> ref_idx(n + 1, 0xDEADBEEF);
    std::vector<uint32_t> got_idx(n + 1, 0xDEADBEEF);
    const size_t ref_n =
        RunFilter(KernelBackend::kScalar, keys.data(), n, 0.5,
                  ref_idx.data());
    // Scalar reference semantics: ascending indices of keys[i] <= cutoff.
    size_t expect = 0;
    for (size_t i = 0; i < n; ++i) {
      if (keys[i] <= 0.5) {
        ASSERT_LT(expect, ref_n);
        EXPECT_EQ(ref_idx[expect], i);
        ++expect;
      }
    }
    EXPECT_EQ(expect, ref_n);
    for (KernelBackend b : AvailableBackends()) {
      std::fill(got_idx.begin(), got_idx.end(), 0xDEADBEEF);
      const size_t got_n = RunFilter(b, keys.data(), n, 0.5, got_idx.data());
      ASSERT_EQ(got_n, ref_n) << ToString(b) << " n=" << n;
      for (size_t i = 0; i < got_n; ++i) {
        EXPECT_EQ(got_idx[i], ref_idx[i]) << ToString(b) << " slot " << i;
      }
      EXPECT_EQ(got_idx[ref_n], 0xDEADBEEFu)
          << ToString(b) << " wrote past the survivor count";
    }
  }
}

TEST(KernelEquivalenceTest, FilterHandlesInfinityAndHugeCutoffs) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> keys = {0.0, inf, 1e308, -0.0, 5.0};
  std::vector<uint32_t> ref_idx(keys.size()), got_idx(keys.size());
  for (double cutoff : {inf, 1e308, 0.0}) {
    const size_t ref_n = RunFilter(KernelBackend::kScalar, keys.data(),
                                   keys.size(), cutoff, ref_idx.data());
    for (KernelBackend b : AvailableBackends()) {
      const size_t got_n = RunFilter(b, keys.data(), keys.size(), cutoff,
                                     got_idx.data());
      ASSERT_EQ(got_n, ref_n) << ToString(b) << " cutoff=" << cutoff;
      for (size_t i = 0; i < got_n; ++i) {
        EXPECT_EQ(got_idx[i], ref_idx[i]);
      }
    }
  }
}

}  // namespace
}  // namespace amdj::geom

#ifndef AMDJ_CORE_PARTITION_H_
#define AMDJ_CORE_PARTITION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/cutoff_estimator.h"
#include "geom/metric.h"
#include "geom/rect.h"
#include "rtree/entry.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"

namespace amdj::core {

/// Knobs for Partition::Build / Partition::FromTree.
struct PartitionOptions {
  /// Number of shards (STR tiles) to split the data set into. Tiles with
  /// no objects are kept as empty shards (size 0, no tree) so shard
  /// indices stay stable when shards > object count.
  uint32_t shards = 8;

  /// Bulk-load fill factor for the per-shard trees (rtree::RTree::BulkLoad).
  double fill = 0.9;

  /// Structure options for the per-shard trees.
  rtree::RTree::Options tree;
};

/// One STR tile of a partitioned data set.
struct Shard {
  /// Bulk-loaded R-tree over the tile's objects; nullptr when size == 0.
  std::unique_ptr<rtree::RTree> tree;
  /// Exact MBB of the tile's objects (Empty() for an empty tile). This is
  /// what the shard-pair scheduler computes MinDist/MaxDist bounds from —
  /// never the tile's nominal slab rectangle, which can be much looser.
  geom::Rect bounds = geom::Rect::Empty();
  /// Number of objects in the tile.
  uint64_t size = 0;
};

/// A data set split into STR tiles, one bulk-loaded R-tree per non-empty
/// tile (the partition layer of the sharded executor, see
/// core/shard_executor.h).
///
/// Tiling is the same sort-tile-recursive sweep str_bulk_loader.h applies
/// to tree leaves, lifted to whole shards: objects sort by center-x into
/// ceil(sqrt(shards)) vertical slabs, each slab sorts by center-y and is
/// cut into tiles. Every comparison ends in the object id, so the tiling —
/// and therefore every downstream result — is deterministic even when all
/// centers coincide (std::sort is unstable).
///
/// The partition keeps an id -> MBR table of every object. The sharded
/// executor's ranked merge re-derives each result's *key* from these exact
/// rectangles: merging on the emitted distance would be ambiguous (two
/// distinct keys can round to the same sqrt), keys are not.
class Partition {
 public:
  Partition(Partition&&) = default;
  Partition& operator=(Partition&&) = default;
  Partition(const Partition&) = delete;
  Partition& operator=(const Partition&) = delete;

  /// Tiles `objects` and bulk-loads one tree per non-empty tile into
  /// `pool` (shared by all shard trees; must outlive the partition).
  /// Object ids must be unique — workload::Dataset::ToEntries guarantees
  /// that. Fails on shards == 0 or an invalid fill factor.
  static StatusOr<Partition> Build(std::vector<rtree::Entry> objects,
                                   storage::BufferPool* pool,
                                   const PartitionOptions& options);

  /// Convenience: re-partitions the objects of an existing tree (one
  /// ForEachObject scan), e.g. to shard a JoinService-owned data set
  /// without reloading it from disk.
  static StatusOr<Partition> FromTree(const rtree::RTree& tree,
                                      storage::BufferPool* pool,
                                      const PartitionOptions& options);

  const std::vector<Shard>& shards() const { return shards_; }

  /// Total number of objects across all shards.
  uint64_t total_size() const { return total_size_; }

  /// MBB of the whole data set (Empty() when total_size() == 0).
  const geom::Rect& bounds() const { return bounds_; }

  /// Exact MBR of object `id` as loaded; nullptr for unknown ids.
  const geom::Rect* object_rect(uint32_t id) const;

 private:
  Partition() = default;

  std::vector<Shard> shards_;
  geom::Rect bounds_ = geom::Rect::Empty();
  uint64_t total_size_ = 0;
  /// Sorted by id (ids are dense in practice but nothing assumes it);
  /// object_rect binary-searches.
  std::vector<rtree::Entry> rects_by_id_;
};

/// Shard-pair composition of the Eq.-3 estimator (Section 4.2 lifted to
/// tiles): the expected number of pairs within distance d is accumulated
/// over shard pairs, sum_ij max(0, d - gap_ij)^2 / rho_ij, with each
/// pair's density rho_ij and MBB gap computed by DmaxEstimator from the
/// *shard-local* bounds and counts. The tiles act as a coarse 2-d
/// histogram, so clustered data — where the single global Eq. 3 badly
/// overestimates — gets a much tighter eDmax without building a
/// HistogramEstimator. EstimateDmax inverts the monotone sum by bisection.
class ShardPairEstimator : public CutoffEstimator {
 public:
  ShardPairEstimator(const Partition& r, const Partition& s,
                     geom::Metric metric, bool exclude_same_id = false);

  /// Expected number of object pairs within distance d (monotone in d).
  double ExpectedPairsWithin(geom::DistVal d) const;

  // CutoffEstimator:
  geom::DistVal EstimateDmax(uint64_t k) const override;
  /// Calibrated correction: rescales the shard-pair prediction so it
  /// reproduces the observed ground truth (k0 pairs within dmax_k0), then
  /// inverts for k; `aggressive` caps by the Eq.-5 geometric correction,
  /// conservative floors by it.
  geom::DistVal Correct(uint64_t k, uint64_t k0, geom::DistVal dmax_k0,
                        bool aggressive) const override;
  std::function<geom::DistVal(uint64_t)> BoundaryFn() const override;

  /// Per-pair model, struct-of-arrays (the bisection sweeps it hot).
  struct PairModels {
    std::vector<double> gap;      ///< MinDist of the two shard MBBs.
    std::vector<double> inv_rho;  ///< 1 / DmaxEstimator::rho() for the pair.
    std::vector<double> cap;      ///< |Ri| * |Sj| (minus self-join diagonal).
  };

 private:
  PairModels pairs_;
  /// Upper bisection bracket: beyond it every pair model saturates its cap.
  double max_reach_ = 0.0;
  double total_pairs_ = 0.0;
};

}  // namespace amdj::core

#endif  // AMDJ_CORE_PARTITION_H_

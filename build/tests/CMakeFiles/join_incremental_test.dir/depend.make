# Empty dependencies file for join_incremental_test.
# This may be replaced when dependencies are built.

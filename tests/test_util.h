#ifndef AMDJ_TESTS_TEST_UTIL_H_
#define AMDJ_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/pair_entry.h"
#include "geom/rect.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/dataset.h"

namespace amdj::test {

/// A pair of R-trees over two in-memory datasets, ready for joining.
struct JoinFixture {
  std::unique_ptr<storage::InMemoryDiskManager> tree_disk;
  std::unique_ptr<storage::InMemoryDiskManager> queue_disk;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<rtree::RTree> r;
  std::unique_ptr<rtree::RTree> s;
  std::vector<geom::Rect> r_objects;
  std::vector<geom::Rect> s_objects;
};

/// Builds R-trees (bulk-loaded unless `insert_build`) over the datasets.
inline JoinFixture MakeFixture(const workload::Dataset& r_data,
                               const workload::Dataset& s_data,
                               uint32_t fanout = 16,
                               size_t buffer_pages = 64,
                               bool insert_build = false) {
  JoinFixture f;
  f.tree_disk = std::make_unique<storage::InMemoryDiskManager>();
  f.queue_disk = std::make_unique<storage::InMemoryDiskManager>();
  f.pool = std::make_unique<storage::BufferPool>(f.tree_disk.get(),
                                                 buffer_pages);
  rtree::RTree::Options opts;
  opts.max_entries = fanout;
  auto r = rtree::RTree::Create(f.pool.get(), opts);
  auto s = rtree::RTree::Create(f.pool.get(), opts);
  EXPECT_TRUE(r.ok() && s.ok());
  f.r = std::move(*r);
  f.s = std::move(*s);
  if (insert_build) {
    uint32_t id = 0;
    for (const geom::Rect& rect : r_data.objects) {
      EXPECT_TRUE(f.r->Insert(rect, id++).ok());
    }
    id = 0;
    for (const geom::Rect& rect : s_data.objects) {
      EXPECT_TRUE(f.s->Insert(rect, id++).ok());
    }
  } else {
    EXPECT_TRUE(f.r->BulkLoad(r_data.ToEntries()).ok());
    EXPECT_TRUE(f.s->BulkLoad(s_data.ToEntries()).ok());
  }
  f.r_objects = r_data.objects;
  f.s_objects = s_data.objects;
  return f;
}

/// All |R| x |S| pair distances, ascending.
inline std::vector<double> BruteForceDistances(
    const std::vector<geom::Rect>& r, const std::vector<geom::Rect>& s) {
  std::vector<double> d;
  d.reserve(r.size() * s.size());
  for (const geom::Rect& a : r) {
    for (const geom::Rect& b : s) d.push_back(geom::MinDistance(a, b));
  }
  std::sort(d.begin(), d.end());
  return d;
}

/// Asserts `results` is sorted by distance, has the right size, and its
/// distance multiset equals the k smallest brute-force distances.
inline void ExpectMatchesBruteForce(
    const std::vector<core::ResultPair>& results,
    const std::vector<double>& brute_sorted, uint64_t k,
    const std::vector<geom::Rect>& r_objects,
    const std::vector<geom::Rect>& s_objects) {
  const size_t expected_n =
      std::min<uint64_t>(k, brute_sorted.size());
  ASSERT_EQ(results.size(), expected_n);
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(results[i].distance, results[i - 1].distance)
          << "unsorted at " << i;
    }
    EXPECT_NEAR(results[i].distance, brute_sorted[i], 1e-9)
        << "distance mismatch at rank " << i;
    // The reported ids actually realize the reported distance.
    ASSERT_LT(results[i].r_id, r_objects.size());
    ASSERT_LT(results[i].s_id, s_objects.size());
    EXPECT_NEAR(geom::MinDistance(r_objects[results[i].r_id],
                                  s_objects[results[i].s_id]),
                results[i].distance, 1e-9);
  }
}

/// No (r_id, s_id) pair reported twice.
inline void ExpectNoDuplicates(const std::vector<core::ResultPair>& results) {
  std::vector<uint64_t> keys;
  keys.reserve(results.size());
  for (const core::ResultPair& p : results) {
    keys.push_back((static_cast<uint64_t>(p.r_id) << 32) | p.s_id);
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end())
      << "duplicate result pair";
}

}  // namespace amdj::test

#endif  // AMDJ_TESTS_TEST_UTIL_H_

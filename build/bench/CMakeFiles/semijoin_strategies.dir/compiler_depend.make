# Empty compiler generated dependencies file for semijoin_strategies.
# This may be replaced when dependencies are built.

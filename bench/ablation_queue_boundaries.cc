// Ablation: hybrid-queue boundary policy (Section 4.4). With the Eq.-3
// predetermined segment boundaries, distant insertions are routed straight
// to their pile and the expensive O(n log n) heap splits mostly disappear;
// without them the queue falls back to adaptive median splits.

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace amdj::bench {
namespace {

void Run(int argc, char** argv) {
  BenchEnv env = MakeTigerEnv(BenchConfig::FromArgs(argc, argv));
  PrintHeader("Ablation: predetermined queue boundaries (Section 4.4)", env);

  const std::vector<uint64_t> ks = {10000, 100000};
  const std::vector<int> widths = {10, 34, 34};
  PrintRow({"k", "Eq.-3 boundaries (paper)", "median splits only"}, widths);
  std::printf("(splits / swap-ins / queue page I/O, B-KDJ)\n");
  for (uint64_t k : ks) {
    std::vector<std::string> row = {"k=" + FormatCount(k)};
    for (const bool predetermined : {true, false}) {
      core::JoinOptions options = env.MakeJoinOptions();
      options.predetermined_queue_boundaries = predetermined;
      const RunResult run =
          RunKdjCold(env, core::KdjAlgorithm::kBKdj, k, options);
      row.push_back(FormatCount(run.stats.queue_splits) + " / " +
                    FormatCount(run.stats.queue_swapins) + " / " +
                    FormatCount(run.stats.queue_page_reads +
                                run.stats.queue_page_writes));
    }
    PrintRow(row, widths);
  }
}

}  // namespace
}  // namespace amdj::bench

int main(int argc, char** argv) {
  amdj::bench::Run(argc, argv);
  return 0;
}

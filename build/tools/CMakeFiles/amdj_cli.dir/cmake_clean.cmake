file(REMOVE_RECURSE
  "CMakeFiles/amdj_cli.dir/amdj_cli.cc.o"
  "CMakeFiles/amdj_cli.dir/amdj_cli.cc.o.d"
  "amdj_cli"
  "amdj_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdj_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#ifndef AMDJ_COMMON_THREAD_CHECKER_H_
#define AMDJ_COMMON_THREAD_CHECKER_H_

#include <atomic>
#include <thread>

namespace amdj {

/// Runtime guard for thread-confined (single-writer) components — the
/// complement of the compile-time lock annotations in common/annotations.h
/// for state that is protected by *confinement* rather than by a mutex
/// (HybridQueue's split/swap-in path, BatchExpander's coordinator side).
/// Clang's thread-safety analysis cannot express "only ever touched by one
/// thread", so these contracts are enforced here instead: the checker
/// binds to the first calling thread and reports whether later calls come
/// from that same thread. Callers wrap it in AMDJ_CHECK so a violation
/// aborts with a message instead of corrupting unsynchronized state.
///
/// Cost: one relaxed atomic load and compare per check (the binding CAS
/// happens once) — negligible next to any operation worth guarding.
class ThreadChecker {
 public:
  ThreadChecker() = default;

  /// Moving hands the component to a new owner: the moved-into checker is
  /// unbound and re-binds to the next calling thread.
  ThreadChecker(ThreadChecker&&) noexcept {}
  ThreadChecker& operator=(ThreadChecker&&) noexcept {
    owner_.store(std::thread::id(), std::memory_order_relaxed);
    return *this;
  }

  ThreadChecker(const ThreadChecker&) = delete;
  ThreadChecker& operator=(const ThreadChecker&) = delete;

  /// True iff the calling thread is the confinement owner. The first call
  /// (or the first after Detach) binds the calling thread as owner.
  bool CalledOnValidThread() const {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id bound = owner_.load(std::memory_order_relaxed);
    if (bound == std::thread::id()) {
      // Two threads racing to bind is already a confinement violation;
      // the CAS makes the loser report it instead of both "winning".
      if (owner_.compare_exchange_strong(bound, self,
                                         std::memory_order_relaxed)) {
        return true;
      }
    }
    return bound == self;
  }

  /// Unbinds, allowing a deliberate ownership handoff (e.g. a structure
  /// built on one thread and then given to a worker).
  void Detach() {
    owner_.store(std::thread::id(), std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<std::thread::id> owner_{std::thread::id()};
};

}  // namespace amdj

#endif  // AMDJ_COMMON_THREAD_CHECKER_H_

file(REMOVE_RECURSE
  "CMakeFiles/fig10_kdj.dir/fig10_kdj.cc.o"
  "CMakeFiles/fig10_kdj.dir/fig10_kdj.cc.o.d"
  "fig10_kdj"
  "fig10_kdj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_kdj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

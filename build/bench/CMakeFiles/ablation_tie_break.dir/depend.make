# Empty dependencies file for ablation_tie_break.
# This may be replaced when dependencies are built.

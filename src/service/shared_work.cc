#include "service/shared_work.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/metrics.h"

namespace amdj::service {

namespace {

/// Canonical key fragments. Doubles go in by bit pattern (two values that
/// differ only past printable precision must NOT collide into one key),
/// pointers by address (a custom estimator's identity IS its address —
/// two estimators with different state must never share cache lines).
void AppendU64(std::string* out, uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%llx|",
                static_cast<unsigned long long>(v));
  *out += buf;
}

void AppendDouble(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

void AppendOptDouble(std::string* out, const std::optional<double>& v) {
  if (v.has_value()) {
    AppendDouble(out, *v);
  } else {
    *out += "n|";
  }
}

void AppendOptDist(std::string* out, const std::optional<geom::DistVal>& v) {
  if (v.has_value()) {
    // Raw view: the key is a byte fingerprint, unit-less by construction.
    AppendDouble(out, v->raw());
  } else {
    *out += "n|";
  }
}

void AppendOptRect(std::string* out, const std::optional<geom::Rect>& r) {
  if (r.has_value()) {
    AppendDouble(out, r->lo.x);
    AppendDouble(out, r->lo.y);
    AppendDouble(out, r->hi.x);
    AppendDouble(out, r->hi.y);
  } else {
    *out += "n|";
  }
}

/// Every JoinOptions knob that can influence the response bytes or stats
/// of an execution this request might share. queue_memory_bytes,
/// queue_disk and spill_io_pool are deliberately absent: spilling changes
/// where the queue lives, never what the join returns, and the service
/// overrides all three anyway (EffectiveOptions).
std::string SemanticOptionsKey(const core::JoinOptions& o) {
  std::string key;
  AppendU64(&key, static_cast<uint64_t>(o.metric));
  AppendU64(&key, static_cast<uint64_t>(o.sweep));
  AppendU64(&key, static_cast<uint64_t>(o.distance_queue_policy));
  AppendU64(&key, static_cast<uint64_t>(o.tie_break));
  AppendU64(&key, static_cast<uint64_t>(o.correction));
  AppendU64(&key, o.predetermined_queue_boundaries ? 1 : 0);
  AppendU64(&key, o.exclude_same_id ? 1 : 0);
  AppendU64(&key, o.kdj_adaptive_correction ? 1 : 0);
  AppendU64(&key, o.idj_initial_k);
  AppendOptDist(&key, o.forced_edmax);
  AppendOptDist(&key, o.edmax_seed);
  AppendU64(&key, reinterpret_cast<uintptr_t>(o.estimator));
  AppendU64(&key, o.parallelism);
  AppendU64(&key, o.batch_factor);
  AppendOptRect(&key, o.r_window);
  AppendOptRect(&key, o.s_window);
  return key;
}

/// The options that change which pair distances exist at all — the result
/// *multiset* — as opposed to how the run is staged or ordered. Dmax(k) is
/// the k-th smallest distance of that multiset, so observations transfer
/// across algorithm, sweep, tie-break, and estimator choices.
std::string DmaxSeedKey(const core::JoinOptions& o) {
  std::string key = "S|";
  AppendU64(&key, static_cast<uint64_t>(o.metric));
  AppendU64(&key, o.exclude_same_id ? 1 : 0);
  AppendOptRect(&key, o.r_window);
  AppendOptRect(&key, o.s_window);
  return key;
}

}  // namespace

SharedWorkKeys ComputeSharedWorkKeys(const JoinRequest& request) {
  SharedWorkKeys keys;
  const core::JoinOptions& o = request.options;
  // Observer-carrying requests execute solo: a tracer/report records ONE
  // execution's events, and the external-cutoff plumbing wires this join
  // into a coordinator the shared layer knows nothing about.
  if (o.tracer != nullptr || o.report != nullptr ||
      o.shared_cutoff_key != nullptr || o.shared_cutoff_publish != nullptr ||
      o.shared_cutoff_sink != nullptr) {
    return keys;
  }
  const std::string options_key = SemanticOptionsKey(o);
  std::string exec;
  if (request.kind == JoinRequest::Kind::kKdj) {
    exec = "K|";
    AppendU64(&exec, static_cast<uint64_t>(request.kdj_algorithm));
    std::string cache = "C|";
    AppendU64(&cache, static_cast<uint64_t>(request.kdj_algorithm));
    cache += options_key;
    keys.cache_key = std::move(cache);
  } else {
    exec = "I|";
    AppendU64(&exec, static_cast<uint64_t>(request.idj_algorithm));
  }
  AppendU64(&exec, request.k);
  exec += options_key;
  keys.exec_key = std::move(exec);
  keys.seed_key = DmaxSeedKey(o);
  return keys;
}

struct SharedWorkRegistry::InflightEntry {
  FollowerGroup group;
};

struct SharedWorkRegistry::CacheEntry {
  uint64_t k = 0;
  /// results->size() < k means the run was exhaustive: the data holds only
  /// results->size() pairs, so the entry answers every k' (the full set is
  /// the answer for any k' >= its size).
  std::shared_ptr<const std::vector<core::ResultPair>> results;
  std::list<std::string>::iterator lru_pos;
};

struct SharedWorkRegistry::SeedObservations {
  /// k_observed -> exact Dmax(k_observed), at most kMaxObservations.
  std::vector<std::pair<uint64_t, geom::DistVal>> by_k;
  /// Smallest Dmax of an exhaustive run (upper-bounds Dmax(k) for all k).
  std::optional<geom::DistVal> exhaustive_dmax;
};

namespace {
constexpr size_t kMaxObservationsPerKey = 32;
}  // namespace

SharedWorkRegistry::SharedWorkRegistry(size_t cache_entries,
                                       Gauge* cache_size_gauge)
    : cache_entries_(cache_entries), cache_size_gauge_(cache_size_gauge) {}

SharedWorkRegistry::~SharedWorkRegistry() {
  // In-flight entries are owned by their leaders; by the time the service
  // destroys the registry the query pool has drained, so every group has
  // been taken and resolved. Nothing to do beyond freeing the maps.
}

std::optional<std::future<JoinResponse>> SharedWorkRegistry::JoinOrLead(
    const std::string& exec_key, bool* became_leader,
    const std::function<bool()>& admit,
    const std::function<void()>& on_follower) {
  const MutexLock lock(&mutex_);
  auto it = inflight_.find(exec_key);
  if (it != inflight_.end()) {
    *became_leader = false;
    Follower follower;
    follower.submit_time = std::chrono::steady_clock::now();
    std::future<JoinResponse> future = follower.promise.get_future();
    it->second->group.followers.push_back(std::move(follower));
    ++inflight_hits_;
    on_follower();
    return future;
  }
  // Leader path: admission (cap check + counters) happens under the
  // registry lock so the membership decision and the admission decision
  // are one atomic step — otherwise two racing submissions could both
  // lead, or a rejected request could leave a zombie entry.
  if (!admit()) {
    *became_leader = false;
    return std::nullopt;
  }
  *became_leader = true;
  ++misses_;
  inflight_.emplace(exec_key, std::make_shared<InflightEntry>());
  return std::nullopt;
}

void SharedWorkRegistry::NoteExecutionStart(const std::string& exec_key) {
  const MutexLock lock(&mutex_);
  auto it = inflight_.find(exec_key);
  if (it == inflight_.end()) return;
  it->second->group.exec_start = std::chrono::steady_clock::now();
  it->second->group.exec_started = true;
}

SharedWorkRegistry::FollowerGroup SharedWorkRegistry::FinishExecution(
    const std::string& exec_key) {
  const MutexLock lock(&mutex_);
  auto it = inflight_.find(exec_key);
  if (it == inflight_.end()) return FollowerGroup{};
  FollowerGroup group = std::move(it->second->group);
  inflight_.erase(it);
  return group;
}

std::optional<SharedWorkRegistry::CacheHit> SharedWorkRegistry::CacheLookup(
    const std::string& cache_key, uint64_t k) {
  if (cache_entries_ == 0) return std::nullopt;
  const MutexLock lock(&mutex_);
  auto it = cache_.find(cache_key);
  if (it == cache_.end()) return std::nullopt;
  CacheEntry& entry = it->second;
  const std::vector<core::ResultPair>& stored = *entry.results;
  const bool exhaustive = stored.size() < entry.k;
  if (k > entry.k && !exhaustive) return std::nullopt;
  // Prefix property: the stored run's output is the unique top-entry.k of
  // a deterministic total order, so its first min(k, size) entries are
  // byte-identical to what a fresh run at k would produce.
  CacheHit hit;
  const size_t take = static_cast<size_t>(
      std::min<uint64_t>(k, static_cast<uint64_t>(stored.size())));
  hit.results.assign(stored.begin(), stored.begin() + take);
  lru_.splice(lru_.begin(), lru_, entry.lru_pos);
  ++cache_hits_;
  return hit;
}

void SharedWorkRegistry::CacheInsert(const std::string& cache_key, uint64_t k,
                                     std::vector<core::ResultPair> results) {
  if (cache_entries_ == 0) return;
  const MutexLock lock(&mutex_);
  auto it = cache_.find(cache_key);
  if (it != cache_.end()) {
    if (it->second.k >= k) {
      // The resident entry answers a superset of what this run would.
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return;
    }
    it->second.k = k;
    it->second.results = std::make_shared<const std::vector<core::ResultPair>>(
        std::move(results));
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  lru_.push_front(cache_key);
  CacheEntry entry;
  entry.k = k;
  entry.results = std::make_shared<const std::vector<core::ResultPair>>(
      std::move(results));
  entry.lru_pos = lru_.begin();
  cache_.emplace(cache_key, std::move(entry));
  if (cache_size_gauge_ != nullptr) cache_size_gauge_->Increment();
  while (cache_.size() > cache_entries_) {
    const std::string& victim = lru_.back();
    cache_.erase(victim);
    lru_.pop_back();
    if (cache_size_gauge_ != nullptr) cache_size_gauge_->Decrement();
  }
}

void SharedWorkRegistry::RecordDmax(const std::string& seed_key,
                                    uint64_t k_observed, geom::DistVal dmax,
                                    bool exhaustive) {
  if (k_observed == 0) return;
  const MutexLock lock(&mutex_);
  SeedObservations& obs = seeds_[seed_key];
  if (exhaustive) {
    if (!obs.exhaustive_dmax || dmax < *obs.exhaustive_dmax) {
      obs.exhaustive_dmax = dmax;
    }
    return;
  }
  auto it = std::lower_bound(
      obs.by_k.begin(), obs.by_k.end(), k_observed,
      [](const std::pair<uint64_t, geom::DistVal>& a, uint64_t b) {
        return a.first < b;
      });
  if (it != obs.by_k.end() && it->first == k_observed) {
    // Exact joins at one (options, k) agree on Dmax; keep the smaller in
    // case float noise across algorithms ever disagrees in the last ulp.
    it->second = std::min(it->second, dmax);
    return;
  }
  obs.by_k.insert(it, {k_observed, dmax});
  if (obs.by_k.size() > kMaxObservationsPerKey) {
    // Evict the smallest-k observation: cheapest to re-learn and the least
    // binding upper bound for future (typically larger) k.
    obs.by_k.erase(obs.by_k.begin());
  }
}

std::optional<geom::DistVal> SharedWorkRegistry::SeedFor(
    const std::string& seed_key, uint64_t k,
    const core::CutoffEstimator& estimator) {
  const MutexLock lock(&mutex_);
  auto it = seeds_.find(seed_key);
  if (it == seeds_.end()) return std::nullopt;
  const SeedObservations& obs = it->second;
  std::optional<geom::DistVal> seed = obs.exhaustive_dmax;
  // Smallest observed k0 >= k: dmax(k0) is an exact upper bound on
  // Dmax(k) (Dmax is nondecreasing in k).
  auto ge = std::lower_bound(
      obs.by_k.begin(), obs.by_k.end(), k,
      [](const std::pair<uint64_t, geom::DistVal>& a, uint64_t b) {
        return a.first < b;
      });
  if (ge != obs.by_k.end()) {
    if (!seed || ge->second < *seed) seed = ge->second;
  } else if (!seed && !obs.by_k.empty()) {
    // All observations sit below k: extrapolate from the largest through
    // the conservative Eq. 4/5 correction. An estimate, not a bound — but
    // the seed only stages the run (JoinOptions::edmax_seed), and the
    // correction is anchored at a *true* (k0, Dmax(k0)) point where Eq. 3
    // is anchored at an assumed-uniform density, so it is the better
    // learned guess the ISSUE asks for.
    const auto& best = obs.by_k.back();
    seed = estimator.Correct(k, best.first, best.second,
                             /*aggressive=*/false);
  }
  if (seed.has_value()) ++seed_hits_;
  return seed;
}

void SharedWorkRegistry::NoteMiss() {
  const MutexLock lock(&mutex_);
  ++misses_;
}

size_t SharedWorkRegistry::cache_size() const {
  const MutexLock lock(&mutex_);
  return cache_.size();
}

uint64_t SharedWorkRegistry::inflight_hits() const {
  const MutexLock lock(&mutex_);
  return inflight_hits_;
}

uint64_t SharedWorkRegistry::cache_hits() const {
  const MutexLock lock(&mutex_);
  return cache_hits_;
}

uint64_t SharedWorkRegistry::seed_hits() const {
  const MutexLock lock(&mutex_);
  return seed_hits_;
}

uint64_t SharedWorkRegistry::misses() const {
  const MutexLock lock(&mutex_);
  return misses_;
}

}  // namespace amdj::service

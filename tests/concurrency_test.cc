// Concurrent read-only queries over shared trees: N threads run different
// joins / kNN searches against the same BufferPool + DiskManager; every
// thread's results must equal its own single-threaded reference. Each
// query carries its own JoinStats — buffer-pool accesses are attributed
// per-query through storage::QueryAttributionScope, so concurrent stats
// are exact, not approximate (see PerQueryStatsAttribution below and
// join_service_test.cc for the reconciliation against pool totals).

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/distance_join.h"
#include "core/semi_join.h"
#include "rtree/knn.h"
#include "test_util.h"
#include "workload/generators.h"

namespace amdj {
namespace {

TEST(ConcurrencyTest, ParallelJoinsMatchSerialResults) {
  const geom::Rect uni(0, 0, 50000, 50000);
  test::JoinFixture f = test::MakeFixture(
      workload::TigerStreets({.street_segments = 6000, .seed = 90}),
      workload::TigerHydro({.hydro_objects = 2000, .seed = 90}),
      /*fanout=*/32, /*buffer_pages=*/64);  // small pool: heavy contention

  struct Task {
    core::KdjAlgorithm algorithm;
    uint64_t k;
    std::vector<core::ResultPair> expected;
  };
  std::vector<Task> tasks = {
      {core::KdjAlgorithm::kHsKdj, 500, {}},
      {core::KdjAlgorithm::kBKdj, 1500, {}},
      {core::KdjAlgorithm::kAmKdj, 3000, {}},
      {core::KdjAlgorithm::kHsKdj, 2500, {}},
      {core::KdjAlgorithm::kAmKdj, 100, {}},
      {core::KdjAlgorithm::kBKdj, 50, {}},
  };
  // Serial references.
  for (Task& t : tasks) {
    auto result = core::RunKDistanceJoin(*f.r, *f.s, t.k, t.algorithm,
                                         core::JoinOptions{}, nullptr);
    ASSERT_TRUE(result.ok());
    t.expected = std::move(*result);
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int round = 0; round < 2; ++round) {
    for (const Task& t : tasks) {
      threads.emplace_back([&f, &t, &failures] {
        auto result = core::RunKDistanceJoin(*f.r, *f.s, t.k, t.algorithm,
                                             core::JoinOptions{}, nullptr);
        if (!result.ok() || result->size() != t.expected.size()) {
          ++failures;
          return;
        }
        for (size_t i = 0; i < result->size(); ++i) {
          if (std::abs((*result)[i].distance - t.expected[i].distance) >
              1e-9) {
            ++failures;
            return;
          }
        }
      });
    }
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// Each concurrent query's JoinStats must equal the stats of its own solo
// run on a fresh, identically sized pool: attribution may not bleed
// between queries racing on the shared buffer pool. (Hit/miss splits DO
// depend on interleaving, so only interleaving-independent counters are
// compared; the hit+miss sum reconciliation lives in join_service_test.)
TEST(ConcurrencyTest, PerQueryStatsAttribution) {
  const workload::Dataset r_data =
      workload::TigerStreets({.street_segments = 4000, .seed = 93});
  const workload::Dataset s_data =
      workload::TigerHydro({.hydro_objects = 1500, .seed = 93});
  test::JoinFixture f = test::MakeFixture(r_data, s_data, 32, 48);

  struct Task {
    core::KdjAlgorithm algorithm;
    uint64_t k;
    JoinStats expected;
    JoinStats actual;
  };
  std::vector<Task> tasks = {
      {core::KdjAlgorithm::kHsKdj, 400, {}, {}},
      {core::KdjAlgorithm::kBKdj, 1200, {}, {}},
      {core::KdjAlgorithm::kAmKdj, 2500, {}, {}},
      {core::KdjAlgorithm::kAmKdj, 60, {}, {}},
  };
  // Solo references, each on its own fixture so reference stats see no
  // cross-query pool pollution either.
  for (Task& t : tasks) {
    test::JoinFixture solo = test::MakeFixture(r_data, s_data, 32, 48);
    auto result = core::RunKDistanceJoin(*solo.r, *solo.s, t.k, t.algorithm,
                                         core::JoinOptions{}, &t.expected);
    ASSERT_TRUE(result.ok());
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (Task& t : tasks) {
    threads.emplace_back([&f, &t, &failures] {
      auto result = core::RunKDistanceJoin(*f.r, *f.s, t.k, t.algorithm,
                                           core::JoinOptions{}, &t.actual);
      if (!result.ok()) ++failures;
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);

  for (const Task& t : tasks) {
    // Same algorithm, same trees, same k => identical traversal, so the
    // access/expansion counters must match the solo run exactly.
    EXPECT_EQ(t.actual.node_accesses, t.expected.node_accesses);
    EXPECT_EQ(t.actual.node_expansions, t.expected.node_expansions);
    EXPECT_EQ(t.actual.real_distance_computations,
              t.expected.real_distance_computations);
    // Hits + misses partition the accesses, whatever the interleaving.
    EXPECT_EQ(t.actual.node_buffer_hits + t.actual.node_disk_reads,
              t.actual.node_accesses);
  }
}

TEST(ConcurrencyTest, ParallelKnnAndCursors) {
  const geom::Rect uni(0, 0, 10000, 10000);
  test::JoinFixture f = test::MakeFixture(
      workload::GaussianClusters(3000, 6, 0.05, 91, uni),
      workload::UniformRects(2000, 30.0, 92, uni), 32, 32);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // Half the threads stream IDJ cursors, half run kNN queries.
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&f, &failures, i] {
      auto cursor = core::OpenIncrementalJoin(
          *f.r, *f.s,
          i % 2 == 0 ? core::IdjAlgorithm::kHsIdj
                     : core::IdjAlgorithm::kAmIdj,
          core::JoinOptions{}, nullptr);
      if (!cursor.ok()) {
        ++failures;
        return;
      }
      core::ResultPair p;
      bool done = false;
      double prev = -1.0;
      for (int n = 0; n < 800; ++n) {
        if (!(*cursor)->Next(&p, &done).ok() || done ||
            p.distance < prev - 1e-12) {
          ++failures;
          return;
        }
        prev = p.distance;
      }
    });
    threads.emplace_back([&f, &failures, i] {
      Random rng(1000 + i);
      for (int q = 0; q < 50; ++q) {
        const geom::Point query(rng.Uniform(0, 10000),
                                rng.Uniform(0, 10000));
        auto knn = rtree::NearestNeighbors(*f.r, query, 10);
        if (!knn.ok() || knn->size() != 10) {
          ++failures;
          return;
        }
        double prev = -1.0;
        for (const auto& e : *knn) {
          const double d = geom::MinDistance(
              geom::Rect::FromPoint(query), e.rect);
          if (d < prev - 1e-12) {
            ++failures;
            return;
          }
          prev = d;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace amdj

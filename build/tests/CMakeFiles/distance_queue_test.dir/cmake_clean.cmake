file(REMOVE_RECURSE
  "CMakeFiles/distance_queue_test.dir/distance_queue_test.cc.o"
  "CMakeFiles/distance_queue_test.dir/distance_queue_test.cc.o.d"
  "distance_queue_test"
  "distance_queue_test.pdb"
  "distance_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

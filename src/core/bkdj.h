#ifndef AMDJ_CORE_BKDJ_H_
#define AMDJ_CORE_BKDJ_H_

#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "core/hs_join.h"
#include "core/options.h"
#include "core/pair_entry.h"
#include "rtree/rtree.h"

namespace amdj::core {

/// B-KDJ (Section 3, Algorithm 1): k-distance join with *bidirectional*
/// node expansion — a dequeued pair <r, s> pairs children of r with
/// children of s directly — kept sub-Cartesian by the optimized plane
/// sweep: per-pair sweeping-axis selection (minimum sweeping index, Eq. 2)
/// and sweeping-direction selection (Section 3.3), pruned by the distance
/// queue's qDmax on both axis and real distances.
///
/// With JoinOptions::parallelism > 1 the main loop runs batched rounds on
/// a thread pool (node pairs expanded/swept concurrently under a shared
/// atomic cutoff, candidates merged on the coordinating thread); results
/// are exactly — values and order — those of the sequential run.
class BKdj {
 public:
  /// Returns the k nearest object pairs in non-decreasing distance order
  /// (fewer if the Cartesian product is smaller). `stats` may be null.
  static StatusOr<std::vector<ResultPair>> Run(const rtree::RTree& r,
                                               const rtree::RTree& s,
                                               uint64_t k,
                                               const JoinOptions& options,
                                               JoinStats* stats);
};

}  // namespace amdj::core

#endif  // AMDJ_CORE_BKDJ_H_

# Empty compiler generated dependencies file for fig11_sweep_opt.
# This may be replaced when dependencies are built.

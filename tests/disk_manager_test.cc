#include "storage/disk_manager.h"

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/page.h"

namespace amdj::storage {
namespace {

void FillPage(char* page, char value) { std::memset(page, value, kPageSize); }

template <typename T>
class DiskManagerTest : public ::testing::Test {
 protected:
  DiskManagerTest() : disk_(Make()) {}

  static std::unique_ptr<T> Make();

  std::unique_ptr<T> disk_;
};

template <>
std::unique_ptr<InMemoryDiskManager> DiskManagerTest<
    InMemoryDiskManager>::Make() {
  return std::make_unique<InMemoryDiskManager>();
}

template <>
std::unique_ptr<FileDiskManager> DiskManagerTest<FileDiskManager>::Make() {
  const std::string path =
      ::testing::TempDir() + "/amdj_disk_test_" +
      std::to_string(reinterpret_cast<uintptr_t>(&path)) + ".db";
  auto dm = std::make_unique<FileDiskManager>(path);
  EXPECT_TRUE(dm->Ok());
  return dm;
}

using Implementations =
    ::testing::Types<InMemoryDiskManager, FileDiskManager>;
TYPED_TEST_SUITE(DiskManagerTest, Implementations);

TYPED_TEST(DiskManagerTest, RoundTripsPages) {
  const PageId a = this->disk_->AllocatePage();
  const PageId b = this->disk_->AllocatePage();
  EXPECT_NE(a, b);
  char w[kPageSize];
  char r[kPageSize];
  FillPage(w, 'A');
  ASSERT_TRUE(this->disk_->WritePage(a, w).ok());
  FillPage(w, 'B');
  ASSERT_TRUE(this->disk_->WritePage(b, w).ok());
  ASSERT_TRUE(this->disk_->ReadPage(a, r).ok());
  EXPECT_EQ(r[0], 'A');
  EXPECT_EQ(r[kPageSize - 1], 'A');
  ASSERT_TRUE(this->disk_->ReadPage(b, r).ok());
  EXPECT_EQ(r[100], 'B');
}

TYPED_TEST(DiskManagerTest, RejectsUnallocatedPages) {
  char buf[kPageSize];
  EXPECT_EQ(this->disk_->ReadPage(99, buf).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(this->disk_->WritePage(99, buf).code(), StatusCode::kOutOfRange);
}

TYPED_TEST(DiskManagerTest, FreeListReusesPages) {
  const PageId a = this->disk_->AllocatePage();
  this->disk_->FreePage(a);
  const PageId b = this->disk_->AllocatePage();
  EXPECT_EQ(a, b);
  EXPECT_EQ(this->disk_->stats().pages_allocated, 2u);
}

TYPED_TEST(DiskManagerTest, CountsReadsAndWrites) {
  char buf[kPageSize];
  FillPage(buf, 'x');
  const PageId a = this->disk_->AllocatePage();
  const PageId b = this->disk_->AllocatePage();
  ASSERT_TRUE(this->disk_->WritePage(a, buf).ok());
  ASSERT_TRUE(this->disk_->WritePage(b, buf).ok());
  ASSERT_TRUE(this->disk_->ReadPage(a, buf).ok());
  ASSERT_TRUE(this->disk_->ReadPage(b, buf).ok());
  ASSERT_TRUE(this->disk_->ReadPage(a, buf).ok());
  EXPECT_EQ(this->disk_->stats().page_writes, 2u);
  EXPECT_EQ(this->disk_->stats().page_reads, 3u);
}

TYPED_TEST(DiskManagerTest, ClassifiesSequentialVsRandom) {
  char buf[kPageSize];
  FillPage(buf, 'x');
  for (int i = 0; i < 8; ++i) this->disk_->AllocatePage();
  for (PageId p = 0; p < 8; ++p) {
    ASSERT_TRUE(this->disk_->WritePage(p, buf).ok());
  }
  // First write of a stream is "random", the following 7 sequential.
  EXPECT_EQ(this->disk_->stats().sequential_writes, 7u);
  EXPECT_EQ(this->disk_->stats().random_writes, 1u);
  ASSERT_TRUE(this->disk_->ReadPage(5, buf).ok());
  ASSERT_TRUE(this->disk_->ReadPage(6, buf).ok());
  ASSERT_TRUE(this->disk_->ReadPage(2, buf).ok());
  EXPECT_EQ(this->disk_->stats().sequential_reads, 1u);
  EXPECT_EQ(this->disk_->stats().random_reads, 2u);
}

// Regression: FreePage used to happily push the same id onto the free
// list twice, after which two AllocatePage calls handed the SAME page to
// two different owners (silent cross-component corruption). Duplicate
// frees are now rejected.
TYPED_TEST(DiskManagerTest, DoubleFreeIsRejected) {
  const PageId a = this->disk_->AllocatePage();
  const PageId b = this->disk_->AllocatePage();
  this->disk_->FreePage(a);
  this->disk_->FreePage(a);  // ignored (and logged), not double-queued
  const PageId c = this->disk_->AllocatePage();
  const PageId d = this->disk_->AllocatePage();
  EXPECT_EQ(c, a);
  EXPECT_NE(d, a) << "double free handed one page to two owners";
  EXPECT_NE(d, b);
  // Free -> reallocate -> free again is legal: rejection keys on the free
  // list's current content, not on history.
  this->disk_->FreePage(c);
  EXPECT_EQ(this->disk_->AllocatePage(), c);
}

TEST(FileDiskManagerTest, UnwrittenAllocatedPageReadsAsZeros) {
  const std::string path = ::testing::TempDir() + "/amdj_zero_test.db";
  FileDiskManager disk(path);
  ASSERT_TRUE(disk.Ok());
  const PageId p = disk.AllocatePage();
  char buf[kPageSize];
  FillPage(buf, 'z');
  ASSERT_TRUE(disk.ReadPage(p, buf).ok());
  for (size_t i = 0; i < kPageSize; i += 512) EXPECT_EQ(buf[i], 0);
}

TEST(FaultInjectionTest, FailsReadsAfterBudget) {
  InMemoryDiskManager base;
  FaultInjectionDiskManager faulty(&base);
  char buf[kPageSize];
  FillPage(buf, 'q');
  const PageId p = faulty.AllocatePage();
  ASSERT_TRUE(faulty.WritePage(p, buf).ok());
  faulty.FailReadsAfter(2);
  EXPECT_TRUE(faulty.ReadPage(p, buf).ok());
  EXPECT_TRUE(faulty.ReadPage(p, buf).ok());
  EXPECT_EQ(faulty.ReadPage(p, buf).code(), StatusCode::kIOError);
  EXPECT_EQ(faulty.ReadPage(p, buf).code(), StatusCode::kIOError);
  faulty.Heal();
  EXPECT_TRUE(faulty.ReadPage(p, buf).ok());
}

TEST(FaultInjectionTest, FailsWritesAfterBudget) {
  InMemoryDiskManager base;
  FaultInjectionDiskManager faulty(&base);
  char buf[kPageSize];
  FillPage(buf, 'q');
  const PageId p = faulty.AllocatePage();
  faulty.FailWritesAfter(0);
  EXPECT_EQ(faulty.WritePage(p, buf).code(), StatusCode::kIOError);
  faulty.Heal();
  EXPECT_TRUE(faulty.WritePage(p, buf).ok());
}

// Regression: the failure countdowns were plain uint64_t, so concurrent
// queries hammering one faulty disk raced on the decrement (a TSan report,
// and a wrap-around past 0 turned "fail now" into "never fail"). The
// countdowns are atomics now; under T threads exactly `budget` operations
// may succeed after arming, never more.
TEST(FaultInjectionTest, CountdownIsExactUnderConcurrency) {
  InMemoryDiskManager base;
  FaultInjectionDiskManager faulty(&base);
  const PageId p = faulty.AllocatePage();
  char seed[kPageSize];
  FillPage(seed, 's');
  ASSERT_TRUE(faulty.WritePage(p, seed).ok());

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 200;
  constexpr uint64_t kBudget = 137;  // < total ops: the race window matters
  faulty.FailReadsAfter(kBudget);
  std::atomic<uint64_t> successes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&faulty, &successes, p] {
      char buf[kPageSize];
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (faulty.ReadPage(p, buf).ok()) {
          successes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(successes.load(), kBudget);
  // And 0 stays 0 — no wrap-around to "never fail".
  char buf[kPageSize];
  EXPECT_EQ(faulty.ReadPage(p, buf).code(), StatusCode::kIOError);
  faulty.Heal();
  EXPECT_TRUE(faulty.ReadPage(p, buf).ok());
}

// Regression: stats() used to hand out a const reference to counters that
// ReadPage/WritePage mutate under the manager's lock — every read through
// it was a data race, and a reader could observe page_reads bumped before
// its sequential/random classification landed. It now returns a snapshot
// taken under the lock, so the classification invariant must hold in
// every snapshot, even mid-I/O.
TYPED_TEST(DiskManagerTest, StatsSnapshotIsConsistentDuringConcurrentIo) {
  constexpr int kWriters = 2;
  constexpr int kOpsPerWriter = 400;
  std::vector<PageId> pages;
  pages.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    pages.push_back(this->disk_->AllocatePage());
  }

  std::atomic<int> running{kWriters};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([this, w, &pages, &running] {
      char buf[kPageSize];
      FillPage(buf, static_cast<char>('a' + w));
      for (int i = 0; i < kOpsPerWriter; ++i) {
        EXPECT_TRUE(this->disk_->WritePage(pages[w], buf).ok());
        EXPECT_TRUE(this->disk_->ReadPage(pages[w], buf).ok());
      }
      running.fetch_sub(1, std::memory_order_release);
    });
  }

  while (running.load(std::memory_order_acquire) > 0) {
    const DiskStats snapshot = this->disk_->stats();
    EXPECT_EQ(snapshot.sequential_reads + snapshot.random_reads,
              snapshot.page_reads);
    EXPECT_EQ(snapshot.sequential_writes + snapshot.random_writes,
              snapshot.page_writes);
    EXPECT_LE(snapshot.page_reads,
              static_cast<uint64_t>(kWriters) * kOpsPerWriter);
  }
  for (std::thread& t : writers) t.join();

  const DiskStats final_stats = this->disk_->stats();
  EXPECT_EQ(final_stats.page_reads,
            static_cast<uint64_t>(kWriters) * kOpsPerWriter);
  EXPECT_EQ(final_stats.page_writes,
            static_cast<uint64_t>(kWriters) * kOpsPerWriter);
}

}  // namespace
}  // namespace amdj::storage

#ifndef AMDJ_GEOM_POINT_H_
#define AMDJ_GEOM_POINT_H_

#include <cmath>
#include <string>

namespace amdj::geom {

/// A 2-dimensional point. The paper (and the TIGER evaluation data) is
/// two-dimensional; the sweeping-axis machinery generalizes to any dimension
/// but the library fixes kDims = 2 for a compact on-page representation.
struct Point {
  static constexpr int kDims = 2;

  double x = 0.0;
  double y = 0.0;

  Point() = default;
  Point(double px, double py) : x(px), y(py) {}

  /// Coordinate along `axis` (0 = x, 1 = y).
  double Coord(int axis) const { return axis == 0 ? x : y; }

  /// Mutable coordinate along `axis`.
  void SetCoord(int axis, double v) {
    if (axis == 0) {
      x = v;
    } else {
      y = v;
    }
  }

  bool operator==(const Point& o) const { return x == o.x && y == o.y; }
  bool operator!=(const Point& o) const { return !(*this == o); }
};

/// Euclidean distance between two points.
inline double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Squared Euclidean distance (cheaper; monotone in Distance).
inline double DistanceSquared(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace amdj::geom

#endif  // AMDJ_GEOM_POINT_H_

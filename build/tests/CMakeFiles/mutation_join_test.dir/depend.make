# Empty dependencies file for mutation_join_test.
# This may be replaced when dependencies are built.

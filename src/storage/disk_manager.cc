#include "storage/disk_manager.h"

#include <cstring>

#include "common/logging.h"

namespace amdj::storage {

void DiskManager::CountRead(PageId page_id) {
  ++stats_.page_reads;
  if (last_read_ != kInvalidPageId && page_id == last_read_ + 1) {
    ++stats_.sequential_reads;
  } else {
    ++stats_.random_reads;
  }
  last_read_ = page_id;
}

void DiskManager::CountWrite(PageId page_id) {
  ++stats_.page_writes;
  if (last_write_ != kInvalidPageId && page_id == last_write_ + 1) {
    ++stats_.sequential_writes;
  } else {
    ++stats_.random_writes;
  }
  last_write_ = page_id;
}

// ---------------------------------------------------------------------------
// InMemoryDiskManager

PageId InMemoryDiskManager::AllocatePage() {
  const MutexLock lock(&mutex_);
  ++stats_.pages_allocated;
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    free_set_.erase(id);
    return id;
  }
  pages_.push_back(std::make_unique<char[]>(kPageSize));
  return static_cast<PageId>(pages_.size() - 1);
}

void InMemoryDiskManager::FreePage(PageId page_id) {
  const MutexLock lock(&mutex_);
  if (page_id >= pages_.size()) return;
  if (!free_set_.insert(page_id).second) {
    // A double free would let AllocatePage hand this id to two callers.
    AMDJ_LOG(kWarn) << "double free of page " << page_id << " ignored";
    return;
  }
  free_list_.push_back(page_id);
}

Status InMemoryDiskManager::ReadPage(PageId page_id, char* out) {
  const MutexLock lock(&mutex_);
  if (page_id >= pages_.size()) {
    return Status::OutOfRange("read of unallocated page " +
                              std::to_string(page_id));
  }
  CountRead(page_id);
  std::memcpy(out, pages_[page_id].get(), kPageSize);
  return Status::OK();
}

Status InMemoryDiskManager::WritePage(PageId page_id, const char* data) {
  const MutexLock lock(&mutex_);
  if (page_id >= pages_.size()) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(page_id));
  }
  CountWrite(page_id);
  std::memcpy(pages_[page_id].get(), data, kPageSize);
  return Status::OK();
}

uint32_t InMemoryDiskManager::PageCount() const {
  const MutexLock lock(&mutex_);
  return static_cast<uint32_t>(pages_.size());
}

// ---------------------------------------------------------------------------
// FileDiskManager

FileDiskManager::FileDiskManager(const std::string& path, bool persistent)
    : path_(path), persistent_(persistent) {
  if (persistent_) {
    // Keep existing pages; create the file if it does not exist yet. Use
    // the 64-bit tell so files past 2 GiB report the right page count on
    // ABIs where `long` is 32-bit.
    file_ = std::fopen(path.c_str(), "r+b");
    if (file_ == nullptr) file_ = std::fopen(path.c_str(), "w+b");
    if (file_ != nullptr && std::fseek(file_, 0, SEEK_END) == 0) {
#if defined(_WIN32)
      const long long bytes = _ftelli64(file_);
#else
      const off_t bytes = ftello(file_);
#endif
      if (bytes > 0) {
        page_count_ = static_cast<uint32_t>(
            static_cast<unsigned long long>(bytes) / kPageSize);
      }
    }
  } else {
    file_ = std::fopen(path.c_str(), "w+b");
  }
}

FileDiskManager::~FileDiskManager() {
  if (file_ != nullptr) {
    std::fclose(file_);
    if (!persistent_) std::remove(path_.c_str());
  }
}

PageId FileDiskManager::AllocatePage() {
  const MutexLock lock(&mutex_);
  ++stats_.pages_allocated;
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    free_set_.erase(id);
    return id;
  }
  return page_count_++;
}

void FileDiskManager::FreePage(PageId page_id) {
  const MutexLock lock(&mutex_);
  if (page_id >= page_count_) return;
  if (!free_set_.insert(page_id).second) {
    AMDJ_LOG(kWarn) << "double free of page " << page_id << " ignored";
    return;
  }
  free_list_.push_back(page_id);
}

Status FileDiskManager::SeekToPage(PageId page_id) {
  // int64 arithmetic: PageId (uint32) * kPageSize overflows 32 bits for
  // files past 4 GiB/kPageSize pages; `long` fseek overflows past 2 GiB
  // where long is 32-bit.
  const long long offset =
      static_cast<long long>(page_id) * static_cast<long long>(kPageSize);
#if defined(_WIN32)
  if (_fseeki64(file_, offset, SEEK_SET) != 0) {
#else
  if (fseeko(file_, static_cast<off_t>(offset), SEEK_SET) != 0) {
#endif
    return Status::IOError("seek to page " + std::to_string(page_id) +
                           " failed");
  }
  return Status::OK();
}

Status FileDiskManager::ReadPage(PageId page_id, char* out) {
  const MutexLock lock(&mutex_);
  if (file_ == nullptr) return Status::IOError("backing file not open");
  if (page_id >= page_count_) {
    return Status::OutOfRange("read of unallocated page " +
                              std::to_string(page_id));
  }
  CountRead(page_id);
  AMDJ_RETURN_IF_ERROR(SeekToPage(page_id));
  const size_t n = std::fread(out, 1, kPageSize, file_);
  if (n < kPageSize) {
    // Pages allocated but never written read back as zeros.
    std::memset(out + n, 0, kPageSize - n);
    std::clearerr(file_);
  }
  return Status::OK();
}

Status FileDiskManager::WritePage(PageId page_id, const char* data) {
  const MutexLock lock(&mutex_);
  if (file_ == nullptr) return Status::IOError("backing file not open");
  if (page_id >= page_count_) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(page_id));
  }
  CountWrite(page_id);
  AMDJ_RETURN_IF_ERROR(SeekToPage(page_id));
  if (std::fwrite(data, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("short write");
  }
  return Status::OK();
}

uint32_t FileDiskManager::PageCount() const {
  const MutexLock lock(&mutex_);
  return page_count_;
}

// ---------------------------------------------------------------------------
// FaultInjectionDiskManager

bool FaultInjectionDiskManager::ConsumeBudget(
    std::atomic<uint64_t>* countdown) {
  // CAS loop instead of fetch_sub: a plain decrement racing with a
  // concurrent caller at 0 would wrap the countdown around to "never
  // fail". kNever is left untouched (no contention in the common healthy
  // case beyond one relaxed load).
  uint64_t remaining = countdown->load(std::memory_order_relaxed);
  while (true) {
    if (remaining == kNever) return true;
    if (remaining == 0) return false;
    if (countdown->compare_exchange_weak(remaining, remaining - 1,
                                         std::memory_order_relaxed)) {
      return true;
    }
  }
}

Status FaultInjectionDiskManager::ReadPage(PageId page_id, char* out) {
  if (!ConsumeBudget(&reads_until_failure_)) {
    return Status::IOError("injected read failure");
  }
  return base_->ReadPage(page_id, out);
}

Status FaultInjectionDiskManager::WritePage(PageId page_id,
                                            const char* data) {
  if (!ConsumeBudget(&writes_until_failure_)) {
    return Status::IOError("injected write failure");
  }
  return base_->WritePage(page_id, data);
}

}  // namespace amdj::storage

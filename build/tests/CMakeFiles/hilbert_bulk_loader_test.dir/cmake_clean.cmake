file(REMOVE_RECURSE
  "CMakeFiles/hilbert_bulk_loader_test.dir/hilbert_bulk_loader_test.cc.o"
  "CMakeFiles/hilbert_bulk_loader_test.dir/hilbert_bulk_loader_test.cc.o.d"
  "hilbert_bulk_loader_test"
  "hilbert_bulk_loader_test.pdb"
  "hilbert_bulk_loader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hilbert_bulk_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

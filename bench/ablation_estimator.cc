// Ablation: eDmax estimation strategy on skewed data — the paper's future
// work. Compares the uniform Eq.-3 estimator against the grid-histogram
// estimator on progressively more clustered workloads: estimate accuracy
// (estimate / true Dmax) and the resulting AM-KDJ work.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "core/dmax_estimator.h"
#include "core/histogram_estimator.h"
#include "workload/generators.h"

namespace amdj::bench {
namespace {

struct Workload {
  const char* name;
  workload::Dataset r;
  workload::Dataset s;
};

void Run(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  const geom::Rect uni(0, 0, workload::kUniverseSize,
                       workload::kUniverseSize);
  const uint64_t nr = config.streets / 4;
  const uint64_t ns = config.hydro / 4;
  const uint64_t k = 10000;

  std::vector<Workload> workloads;
  workloads.push_back({"uniform", workload::UniformPoints(nr, 11, uni),
                       workload::UniformPoints(ns, 12, uni)});
  workloads.push_back(
      {"clustered", workload::GaussianClusters(nr, 12, 0.02, 13, uni),
       workload::GaussianClusters(ns, 12, 0.02, 13, uni)});
  workloads.push_back(
      {"heavily-skewed", workload::ZipfSkewedPoints(nr, 0.85, 14, uni),
       workload::ZipfSkewedPoints(ns, 0.85, 15, uni)});
  {
    workload::TigerSynthOptions wopts;
    wopts.street_segments = nr;
    wopts.hydro_objects = ns;
    wopts.seed = config.seed;
    workloads.push_back({"tiger-synth", workload::TigerStreets(wopts),
                         workload::TigerHydro(wopts)});
  }

  std::printf("# Ablation: uniform (Eq. 3) vs histogram eDmax estimation\n");
  std::printf("|R|=%llu |S|=%llu k=%llu\n\n", (unsigned long long)nr,
              (unsigned long long)ns, (unsigned long long)k);
  const std::vector<int> widths = {16, 14, 14, 20, 20};
  PrintRow({"workload", "Eq3/Dmax", "hist/Dmax", "AM ins (Eq3)",
            "AM ins (hist)"},
           widths);

  for (Workload& w : workloads) {
    storage::InMemoryDiskManager disk;
    storage::BufferPool pool(&disk,
                             config.buffer_bytes / storage::kPageSize);
    auto r_tree = rtree::RTree::Create(&pool, {}).value();
    auto s_tree = rtree::RTree::Create(&pool, {}).value();
    Status st = r_tree->BulkLoad(w.r.ToEntries());
    AMDJ_CHECK(st.ok()) << st.ToString();
    st = s_tree->BulkLoad(w.s.ToEntries());
    AMDJ_CHECK(st.ok()) << st.ToString();

    core::JoinOptions options;
    options.queue_memory_bytes = config.memory_bytes;
    auto dmax = core::ComputeTrueDmax(*r_tree, *s_tree, k, options);
    AMDJ_CHECK(dmax.ok()) << dmax.status().ToString();

    core::DmaxEstimator uniform(r_tree->bounds(), r_tree->size(),
                                s_tree->bounds(), s_tree->size());
    core::HistogramEstimator histogram(w.r.objects, w.s.objects);

    JoinStats eq3_stats, hist_stats;
    auto run = [&](const core::CutoffEstimator* estimator,
                   JoinStats* stats) {
      core::JoinOptions o = options;
      o.estimator = estimator;
      auto result = core::RunKDistanceJoin(*r_tree, *s_tree, k,
                                           core::KdjAlgorithm::kAmKdj, o,
                                           stats);
      AMDJ_CHECK(result.ok()) << result.status().ToString();
    };
    run(nullptr, &eq3_stats);  // default = Eq. 3
    run(&histogram, &hist_stats);

    char eq3_ratio[32], hist_ratio[32];
    std::snprintf(eq3_ratio, sizeof(eq3_ratio), "%.2fx",
                  uniform.InitialEstimate(k).raw() / std::max(*dmax, 1e-12));
    std::snprintf(hist_ratio, sizeof(hist_ratio), "%.2fx",
                  histogram.EstimateDmax(k).raw() / std::max(*dmax, 1e-12));
    PrintRow({w.name, eq3_ratio, hist_ratio,
              FormatCount(eq3_stats.main_queue_insertions),
              FormatCount(hist_stats.main_queue_insertions)},
             widths);
  }
  std::printf(
      "\n(estimate-to-true-Dmax ratios: closer to 1.00x is better; AM-KDJ "
      "main-queue insertions under each estimator)\n");
}

}  // namespace
}  // namespace amdj::bench

int main(int argc, char** argv) {
  amdj::bench::Run(argc, argv);
  return 0;
}

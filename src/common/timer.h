#ifndef AMDJ_COMMON_TIMER_H_
#define AMDJ_COMMON_TIMER_H_

#include <chrono>

namespace amdj {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace amdj

#endif  // AMDJ_COMMON_TIMER_H_

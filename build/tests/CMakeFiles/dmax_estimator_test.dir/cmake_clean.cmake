file(REMOVE_RECURSE
  "CMakeFiles/dmax_estimator_test.dir/dmax_estimator_test.cc.o"
  "CMakeFiles/dmax_estimator_test.dir/dmax_estimator_test.cc.o.d"
  "dmax_estimator_test"
  "dmax_estimator_test.pdb"
  "dmax_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmax_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// libFuzzer harness for the amdj_cli serve/batch request-line parser
// (tools/cli_request_parser.h) — the one spot where untrusted bytes from
// the serve stdin control channel become a typed JoinRequest. The parser
// is non-fatal by contract: arbitrary input must map to either a valid
// request or Status::InvalidArgument, never a crash, an abort, or an
// out-of-range enum. Build with -DAMDJ_FUZZER=ON under Clang (see
// fuzz/CMakeLists.txt); the CI fuzz-smoke job runs this for ~60 s over
// fuzz/corpus/request_parser under ASan+UBSan.

#include <cstddef>
#include <cstdint>
#include <string>

#include "cli_request_parser.h"

namespace {

// Treat the input as a whole control-channel read: split on newlines and
// feed every line through the parser, like the serve loop does.
void ParseAll(const std::string& input) {
  size_t lineno = 0;
  size_t start = 0;
  while (start <= input.size()) {
    const size_t eol = input.find('\n', start);
    const std::string line =
        input.substr(start, eol == std::string::npos ? std::string::npos
                                                     : eol - start);
    ++lineno;
    const amdj::StatusOr<amdj::service::JoinRequest> request =
        amdj::cli::ParseRequestLine(line, lineno);
    if (request.ok()) {
      // Parsed requests must be internally consistent: k was validated
      // non-zero and the algorithm enum matches the request kind.
      if (request->k == 0) __builtin_trap();
      if (request->kind == amdj::service::JoinRequest::Kind::kKdj) {
        switch (request->kdj_algorithm) {
          case amdj::core::KdjAlgorithm::kHsKdj:
          case amdj::core::KdjAlgorithm::kBKdj:
          case amdj::core::KdjAlgorithm::kAmKdj:
          case amdj::core::KdjAlgorithm::kSjSort:
            break;
          default:
            __builtin_trap();
        }
      } else {
        switch (request->idj_algorithm) {
          case amdj::core::IdjAlgorithm::kHsIdj:
          case amdj::core::IdjAlgorithm::kAmIdj:
            break;
          default:
            __builtin_trap();
        }
      }
    } else if (request.status().message().empty()) {
      __builtin_trap();  // every rejection carries a diagnostic
    }
    if (eol == std::string::npos) break;
    start = eol + 1;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  ParseAll(std::string(reinterpret_cast<const char*>(data), size));
  return 0;
}

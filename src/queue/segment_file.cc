#include "queue/segment_file.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"

namespace amdj::queue {

SegmentFile::SegmentFile(storage::DiskManager* disk, size_t record_size,
                         JoinStats* stats, ThreadPool* io_pool,
                         Tracer* tracer)
    : disk_(disk),
      record_size_(record_size),
      stats_(stats),
      io_pool_(io_pool),
      tracer_(tracer) {
  AMDJ_CHECK(record_size_ >= 1 && record_size_ <= storage::kPageSize);
  // The write buffer grows on first Append; empty segments (predetermined
  // hybrid-queue ranges that never receive an entry) stay tiny.
}

SegmentFile::~SegmentFile() {
  if (disk_ != nullptr) {
    // Workers may still be writing to pages_ entries; freeing a page out
    // from under an inflight write would let the allocator hand it to
    // someone else mid-write.
    (void)WaitAllWrites();
    for (storage::PageId id : pages_) disk_->FreePage(id);
  }
}

SegmentFile::SegmentFile(SegmentFile&& other) noexcept
    : lower_bound(other.lower_bound),
      disk_(other.disk_),
      record_size_(other.record_size_),
      stats_(other.stats_),
      io_pool_(other.io_pool_),
      tracer_(other.tracer_),
      count_(other.count_),
      submitted_seq_(other.submitted_seq_) {
  // Inflight workers hold a pointer to `other`'s handshake state, which a
  // move cannot transplant (the mutex is pinned) — quiesce first, then the
  // byte-level state moves freely and only the sticky error needs carrying.
  const Status drained = other.WaitAllWrites();
  pages_ = std::move(other.pages_);
  write_buffer_ = std::move(other.write_buffer_);
  {
    const MutexLock lock(&io_mu_);
    async_error_ = drained;
  }
  other.disk_ = nullptr;
  other.pages_.clear();
  other.count_ = 0;
}

SegmentFile& SegmentFile::operator=(SegmentFile&& other) noexcept {
  if (this != &other) {
    const Status drained = other.WaitAllWrites();
    if (disk_ != nullptr) {
      (void)WaitAllWrites();
      for (storage::PageId id : pages_) disk_->FreePage(id);
    }
    lower_bound = other.lower_bound;
    disk_ = other.disk_;
    record_size_ = other.record_size_;
    stats_ = other.stats_;
    io_pool_ = other.io_pool_;
    tracer_ = other.tracer_;
    count_ = other.count_;
    submitted_seq_ = other.submitted_seq_;
    pages_ = std::move(other.pages_);
    write_buffer_ = std::move(other.write_buffer_);
    {
      const MutexLock lock(&io_mu_);
      async_error_ = drained;
    }
    other.disk_ = nullptr;
    other.pages_.clear();
    other.count_ = 0;
  }
  return *this;
}

Status SegmentFile::Append(const void* record) {
  if (write_buffer_.size() + record_size_ > storage::kPageSize) {
    // A previous FlushBuffer failed and left a full buffer behind; retry
    // it before accepting more data, or the buffer would outgrow the
    // one-page flush staging area.
    AMDJ_RETURN_IF_ERROR(FlushBuffer());
  }
  const char* bytes = static_cast<const char*>(record);
  write_buffer_.insert(write_buffer_.end(), bytes, bytes + record_size_);
  ++count_;
  if (write_buffer_.size() + record_size_ > storage::kPageSize) {
    // Buffer cannot take another record: flush it as a full page.
    AMDJ_RETURN_IF_ERROR(FlushBuffer());
  }
  return Status::OK();
}

Status SegmentFile::AppendMany(const void* records, size_t n) {
  const char* src = static_cast<const char*>(records);
  const size_t per_page = RecordsPerPage();
  while (n > 0) {
    if (write_buffer_.size() + record_size_ > storage::kPageSize) {
      // Retry a flush a previous failed call left behind (same protocol
      // as Append).
      AMDJ_RETURN_IF_ERROR(FlushBuffer());
    }
    if (write_buffer_.empty() && n >= per_page) {
      // Full page straight from the caller's array — no staging copy.
      std::vector<char> page(storage::kPageSize, 0);
      std::memcpy(page.data(), src, per_page * record_size_);
      AMDJ_RETURN_IF_ERROR(WritePageOut(std::move(page)));
      count_ += per_page;
      src += per_page * record_size_;
      n -= per_page;
      continue;
    }
    // Partial page (head that tops off a non-empty buffer, or the tail):
    // stage as many records as fit.
    const size_t room =
        (storage::kPageSize - write_buffer_.size()) / record_size_;
    const size_t take = std::min(room, n);
    write_buffer_.insert(write_buffer_.end(), src,
                         src + take * record_size_);
    count_ += take;
    src += take * record_size_;
    n -= take;
    if (write_buffer_.size() + record_size_ > storage::kPageSize) {
      AMDJ_RETURN_IF_ERROR(FlushBuffer());
    }
  }
  return Status::OK();
}

Status SegmentFile::FlushBuffer() {
  std::vector<char> page(storage::kPageSize, 0);
  std::memcpy(page.data(), write_buffer_.data(), write_buffer_.size());
  AMDJ_RETURN_IF_ERROR(WritePageOut(std::move(page)));
  write_buffer_.clear();
  return Status::OK();
}

Status SegmentFile::WritePageOut(std::vector<char> page) {
  if (io_pool_ == nullptr) {
    const storage::PageId id = disk_->AllocatePage();
    const Status written = disk_->WritePage(id, page.data());
    if (!written.ok()) {
      // The page is neither recorded in pages_ nor reachable any other
      // way: return it to the allocator or it leaks for the disk's
      // lifetime. The caller keeps the staged records (count_ already
      // covers them), so a healed disk can retry the flush.
      disk_->FreePage(id);
      return written;
    }
    if (stats_ != nullptr) ++stats_->queue_page_writes;
    pages_.push_back(id);
    return Status::OK();
  }

  // Async path. Fail fast on a sticky error — the segment is poisoned and
  // submitting more writes after a failure would only lose more data.
  AMDJ_RETURN_IF_ERROR(AsyncErrorSnapshot());

  const storage::PageId id = disk_->AllocatePage();
  uint64_t seq;
  {
    const MutexLock lock(&io_mu_);
    // Double-buffer backpressure: at most kMaxInflightWrites pages in
    // flight; block (briefly — a page write) for the oldest to retire.
    if (pending_seqs_.size() >= kMaxInflightWrites) {
      static Histogram* stall_histogram = MetricsRegistry::Global()->GetHistogram(
          "amdj_spill_write_stall_ns", "",
          "Producer stalls waiting for an in-flight spill write to retire");
      const uint64_t stall_start = MetricsEnabled() ? MetricsNowNanos() : 0;
      while (pending_seqs_.size() >= kMaxInflightWrites) io_cv_.Wait(&io_mu_);
      if (stall_start != 0) {
        stall_histogram->Observe(MetricsNowNanos() - stall_start);
      }
    }
    seq = ++submitted_seq_;
    pending_seqs_.push_back(seq);
  }
  pages_.push_back(id);
  // The task owns the page bytes; it touches only the thread-safe disk
  // manager, the thread-safe tracer, and the io_mu_ handshake — never the
  // coordinator-confined structure (pages_/count_/write_buffer_/stats_).
  storage::DiskManager* disk = disk_;
  Tracer* tracer = tracer_;
  io_pool_->Submit(
      [this, disk, tracer, id, seq, data = std::move(page)]() mutable {
        Status written;
        {
          const TraceSpan span(tracer, "spill_write_io",
                               {{"page", static_cast<double>(id)},
                                {"seq", static_cast<double>(seq)}});
          written = disk->WritePage(id, data.data());
        }
        const MutexLock lock(&io_mu_);
        pending_seqs_.erase(
            std::find(pending_seqs_.begin(), pending_seqs_.end(), seq));
        if (written.ok()) {
          ++unfolded_page_writes_;
        } else if (async_error_.ok()) {
          async_error_ = written;
        }
        io_cv_.NotifyAll();
      });
  return Status::OK();
}

Status SegmentFile::AsyncErrorSnapshot() {
  const MutexLock lock(&io_mu_);
  return async_error_;
}

Status SegmentFile::WaitAllWrites() {
  if (io_pool_ == nullptr) return Status::OK();
  const MutexLock lock(&io_mu_);
  if (!pending_seqs_.empty()) {
    static Histogram* drain_histogram = MetricsRegistry::Global()->GetHistogram(
        "amdj_spill_drain_wait_ns", "",
        "Reader waits for all in-flight spill writes to retire");
    const uint64_t drain_start = MetricsEnabled() ? MetricsNowNanos() : 0;
    while (!pending_seqs_.empty()) io_cv_.Wait(&io_mu_);
    if (drain_start != 0) {
      drain_histogram->Observe(MetricsNowNanos() - drain_start);
    }
  }
  if (stats_ != nullptr && unfolded_page_writes_ > 0) {
    stats_->queue_page_writes += unfolded_page_writes_;
    unfolded_page_writes_ = 0;
  }
  return async_error_;
}

Status SegmentFile::WaitWritesThrough(uint64_t seq) {
  const MutexLock lock(&io_mu_);
  // No lambda predicate: the thread-safety analysis cannot see an
  // enclosing-scope lock through a lambda boundary.
  for (;;) {
    bool pending_through = false;
    for (uint64_t pending : pending_seqs_) {
      if (pending <= seq) {
        pending_through = true;
        break;
      }
    }
    if (!pending_through) break;
    io_cv_.Wait(&io_mu_);
  }
  return async_error_;
}

Status SegmentFile::ReadPagesInto(storage::DiskManager* disk,
                                  const std::vector<storage::PageId>& page_ids,
                                  size_t record_size, size_t records_per_page,
                                  uint64_t max_records, char* out,
                                  uint64_t* pages_read) {
  char page[storage::kPageSize];
  uint64_t remaining = max_records;
  for (storage::PageId id : page_ids) {
    if (remaining == 0) break;
    AMDJ_RETURN_IF_ERROR(disk->ReadPage(id, page));
    ++*pages_read;
    const size_t records = static_cast<size_t>(
        std::min<uint64_t>(records_per_page, remaining));
    std::memcpy(out, page, records * record_size);
    out += records * record_size;
    remaining -= records;
  }
  return Status::OK();
}

Status SegmentFile::ReadAllInto(char* out) { return ReadTailInto(0, out); }

Status SegmentFile::ReadTailInto(size_t skip_pages, char* out) {
  AMDJ_RETURN_IF_ERROR(WaitAllWrites());
  AMDJ_CHECK(skip_pages <= pages_.size());
  const uint64_t on_disk = count_ - buffered_records();
  const uint64_t skipped =
      static_cast<uint64_t>(skip_pages) * RecordsPerPage();
  const std::vector<storage::PageId> tail(pages_.begin() + skip_pages,
                                          pages_.end());
  uint64_t pages_read = 0;
  const Status read = ReadPagesInto(disk_, tail, record_size_,
                                    RecordsPerPage(), on_disk - skipped,
                                    out, &pages_read);
  if (stats_ != nullptr) stats_->queue_page_reads += pages_read;
  AMDJ_RETURN_IF_ERROR(read);
  std::memcpy(out + (on_disk - skipped) * record_size_,
              write_buffer_.data(), write_buffer_.size());
  return Status::OK();
}

Status SegmentFile::ReadAll(std::vector<char>* out) {
  out->resize(count_ * record_size_);
  return ReadAllInto(out->data());
}

void SegmentFile::Drop() {
  (void)WaitAllWrites();
  for (storage::PageId id : pages_) disk_->FreePage(id);
  pages_.clear();
  write_buffer_.clear();
  count_ = 0;
  const MutexLock lock(&io_mu_);
  async_error_ = Status::OK();
}

}  // namespace amdj::queue

#include "core/bkdj.h"

#include "core/expansion.h"
#include "core/plane_sweeper.h"
#include "core/qdmax_tracker.h"

namespace amdj::core {

StatusOr<std::vector<ResultPair>> BKdj::Run(const rtree::RTree& r,
                                            const rtree::RTree& s,
                                            uint64_t k,
                                            const JoinOptions& options,
                                            JoinStats* stats) {
  std::vector<ResultPair> results;
  if (k == 0 || r.size() == 0 || s.size() == 0) return results;
  JoinStats local;
  if (stats == nullptr) stats = &local;

  MainQueue queue(MakeMainQueueOptions(r, s, options), stats,
                  MakeMainQueueCompare(options));
  QdmaxTracker tracker(k, options, stats);
  {
    const PairEntry root = MakePair(RootRef(r), RootRef(s), options.metric);
    AMDJ_RETURN_IF_ERROR(queue.Push(root));
    tracker.OnPush(root);
  }

  std::vector<PairRef> left;
  std::vector<PairRef> right;
  PairEntry c;
  while (results.size() < k && !queue.Empty()) {
    AMDJ_RETURN_IF_ERROR(queue.Pop(&c));
    if (c.IsObjectPair()) {
      results.push_back({c.distance, c.r.id, c.s.id});
      ++stats->pairs_produced;
      continue;
    }
    tracker.OnNodePairLeave(c);
    // qDmax upper-bounds the final k-th distance at all times, so a pair
    // whose minimum distance exceeds it can never contribute.
    double cutoff = tracker.Cutoff();
    if (c.distance > cutoff) continue;

    ++stats->node_expansions;
    AMDJ_RETURN_IF_ERROR(ChildList(r, c.r, options.r_window, &left));
    AMDJ_RETURN_IF_ERROR(ChildList(s, c.s, options.s_window, &right));
    const SweepPlan plan =
        ChooseSweepPlan(c.r.rect, c.s.rect, cutoff, options.sweep);

    Status sweep_status;
    PlaneSweep(left, right, plan, &cutoff, stats,
               [&](const PairRef& lref, const PairRef& rref,
                   double /*axis_dist*/) {
                 if (!sweep_status.ok()) return;
                 ++stats->real_distance_computations;
                 const double real =
                     geom::MinDistance(lref.rect, rref.rect, options.metric);
                 if (real > cutoff) return;  // Algorithm 1, line 17
                 if (options.exclude_same_id && IsSelfPair(lref, rref)) {
                   return;
                 }
                 PairEntry e;
                 e.r = lref;
                 e.s = rref;
                 e.distance = real;
                 sweep_status = queue.Push(e);
                 if (!sweep_status.ok()) {
                   cutoff = -1.0;  // abort the sweep
                   return;
                 }
                 tracker.OnPush(e);  // line 19: qDmax may shrink
                 cutoff = tracker.Cutoff();
               });
    AMDJ_RETURN_IF_ERROR(sweep_status);
  }
  return results;
}

}  // namespace amdj::core

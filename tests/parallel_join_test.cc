// Parallel join executor exactness: for B-KDJ and AM-KDJ, batched parallel
// execution (JoinOptions::parallelism in {2, 4, 8}) must produce results
// *identical* to the sequential run — same distances, same ids, same order
// (including tie-break order on the zero-distance plateau) — across seeds,
// k values, spill configurations, and forced eDmax under/overestimates.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "core/expansion.h"
#include "test_util.h"
#include "workload/generators.h"

namespace amdj::core {
namespace {

std::vector<ResultPair> RunWith(const test::JoinFixture& f,
                                KdjAlgorithm algorithm, uint64_t k,
                                JoinOptions options, uint32_t parallelism,
                                JoinStats* stats = nullptr) {
  options.parallelism = parallelism;
  auto result =
      RunKDistanceJoin(*f.r, *f.s, k, algorithm, options, stats);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(*result) : std::vector<ResultPair>{};
}

void ExpectIdentical(const std::vector<ResultPair>& sequential,
                     const std::vector<ResultPair>& parallel,
                     const std::string& label) {
  ASSERT_EQ(sequential.size(), parallel.size()) << label;
  for (size_t i = 0; i < sequential.size(); ++i) {
    // Exact equality — values, ids, and order, ties included.
    ASSERT_EQ(sequential[i], parallel[i])
        << label << " diverges at rank " << i << ": sequential=("
        << sequential[i].distance << "," << sequential[i].r_id << ","
        << sequential[i].s_id << ") parallel=(" << parallel[i].distance
        << "," << parallel[i].r_id << "," << parallel[i].s_id << ")";
  }
}

class ParallelJoinTest
    : public ::testing::TestWithParam<KdjAlgorithm> {};

TEST_P(ParallelJoinTest, MatchesSequentialAcrossSeedsAndK) {
  for (const uint64_t seed : {11u, 47u, 2026u}) {
    workload::TigerSynthOptions wopts;
    wopts.street_segments = 3000;
    wopts.hydro_objects = 900;
    wopts.seed = seed;
    test::JoinFixture f = test::MakeFixture(workload::TigerStreets(wopts),
                                            workload::TigerHydro(wopts), 32,
                                            128);
    for (const uint64_t k : {1u, 100u, 2500u}) {
      JoinOptions options;
      const auto sequential = RunWith(f, GetParam(), k, options, 1);
      for (const uint32_t threads : {2u, 4u, 8u}) {
        const auto parallel = RunWith(f, GetParam(), k, options, threads);
        ExpectIdentical(sequential, parallel,
                        "seed=" + std::to_string(seed) +
                            " k=" + std::to_string(k) +
                            " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST_P(ParallelJoinTest, MatchesBruteForceAtFourThreads) {
  const geom::Rect uni(0, 0, 10000, 10000);
  test::JoinFixture f = test::MakeFixture(
      workload::GaussianClusters(600, 5, 0.05, 31, uni),
      workload::UniformRects(400, 30.0, 32, uni), 16, 64);
  const auto brute = test::BruteForceDistances(f.r_objects, f.s_objects);
  JoinOptions options;
  options.parallelism = 4;
  for (const uint64_t k : {10u, 500u, 5000u}) {
    JoinStats stats;
    auto result = RunKDistanceJoin(*f.r, *f.s, k, GetParam(), options,
                                   &stats);
    ASSERT_TRUE(result.ok());
    test::ExpectMatchesBruteForce(*result, brute, k, f.r_objects,
                                  f.s_objects);
    test::ExpectNoDuplicates(*result);
  }
}

TEST_P(ParallelJoinTest, MatchesSequentialWithQueueSpill) {
  workload::TigerSynthOptions wopts;
  wopts.street_segments = 2500;
  wopts.hydro_objects = 800;
  wopts.seed = 7;
  test::JoinFixture f = test::MakeFixture(workload::TigerStreets(wopts),
                                          workload::TigerHydro(wopts), 32,
                                          128);
  JoinOptions options;
  options.queue_disk = f.queue_disk.get();
  options.queue_memory_bytes = 16 * 1024;  // force splits and swap-ins
  const auto sequential = RunWith(f, GetParam(), 2000, options, 1);
  for (const uint32_t threads : {2u, 4u}) {
    ExpectIdentical(sequential, RunWith(f, GetParam(), 2000, options,
                                        threads),
                    "spill threads=" + std::to_string(threads));
  }
}

TEST_P(ParallelJoinTest, NodeAccessesStayClose) {
  workload::TigerSynthOptions wopts;
  wopts.street_segments = 4000;
  wopts.hydro_objects = 1200;
  wopts.seed = 5;
  test::JoinFixture f = test::MakeFixture(workload::TigerStreets(wopts),
                                          workload::TigerHydro(wopts), 32,
                                          256);
  JoinOptions options;
  JoinStats seq_stats;
  const auto sequential =
      RunWith(f, GetParam(), 3000, options, 1, &seq_stats);
  JoinStats par_stats;
  const auto parallel =
      RunWith(f, GetParam(), 3000, options, 4, &par_stats);
  ExpectIdentical(sequential, parallel, "node-access run");
  // Stale cutoffs may admit a few extra expansions, but the parallel run
  // must not blow up the I/O profile: within 10% plus a constant
  // allowance of a few batches — the final round speculatively expands up
  // to one batch of node pairs the sequential loop never reaches after
  // its k-th emission, and a tie-guard abort can waste in-flight slots.
  // Both are O(batch), invisible at benchmark scale but dominant on a
  // fixture this small.
  const uint64_t batch_accesses = 2ull * 4 * options.batch_factor;
  EXPECT_LE(par_stats.node_accesses,
            seq_stats.node_accesses + seq_stats.node_accesses / 10 +
                3 * batch_accesses);
  EXPECT_GE(par_stats.node_accesses + batch_accesses,
            seq_stats.node_accesses);
}

INSTANTIATE_TEST_SUITE_P(BAndAm, ParallelJoinTest,
                         ::testing::Values(KdjAlgorithm::kBKdj,
                                           KdjAlgorithm::kAmKdj),
                         [](const auto& info) {
                           return info.param == KdjAlgorithm::kBKdj
                                      ? "BKdj"
                                      : "AmKdj";
                         });

// AM-KDJ-specific: the compensation machinery must stay exact in parallel
// for wildly wrong eDmax estimates in both directions.
TEST(ParallelAmKdjTest, ForcedEdmaxUnderAndOverestimates) {
  workload::TigerSynthOptions wopts;
  wopts.street_segments = 2000;
  wopts.hydro_objects = 700;
  wopts.seed = 13;
  test::JoinFixture f = test::MakeFixture(workload::TigerStreets(wopts),
                                          workload::TigerHydro(wopts), 32,
                                          128);
  JoinOptions probe;
  auto true_dmax = ComputeTrueDmax(*f.r, *f.s, 1500, probe);
  ASSERT_TRUE(true_dmax.ok());
  for (const double factor : {0.05, 0.5, 1.0, 2.0, 10.0}) {
    JoinOptions options;
    options.forced_edmax = geom::DistVal(*true_dmax * factor);
    const auto sequential =
        RunWith(f, KdjAlgorithm::kAmKdj, 1500, options, 1);
    for (const uint32_t threads : {2u, 4u, 8u}) {
      ExpectIdentical(sequential,
                      RunWith(f, KdjAlgorithm::kAmKdj, 1500, options,
                              threads),
                      "edmax factor=" + std::to_string(factor) +
                          " threads=" + std::to_string(threads));
    }
  }
}

TEST(ParallelJoinSelfJoinTest, ExcludeSameIdMatchesSequential) {
  const geom::Rect uni(0, 0, 10000, 10000);
  test::JoinFixture f = test::MakeFixture(
      workload::GaussianClusters(800, 6, 0.05, 77, uni),
      workload::GaussianClusters(800, 6, 0.05, 77, uni), 16, 64);
  JoinOptions options;
  options.exclude_same_id = true;
  for (const auto algorithm : {KdjAlgorithm::kBKdj, KdjAlgorithm::kAmKdj}) {
    const auto sequential = RunWith(f, algorithm, 1000, options, 1);
    ExpectIdentical(sequential, RunWith(f, algorithm, 1000, options, 4),
                    "self-join");
  }
}

// Concurrent FetchChildren through a deliberately tiny buffer pool: the
// read path (pin -> deserialize -> unpin under concurrent eviction) must
// stay correct when every frame is contended. 8 threads expanding random
// nodes against a pool smaller than the working set.
TEST(ParallelBufferPoolTest, ConcurrentFetchChildrenUnderEviction) {
  workload::TigerSynthOptions wopts;
  wopts.street_segments = 3000;
  wopts.hydro_objects = 1000;
  wopts.seed = 3;
  test::JoinFixture f = test::MakeFixture(workload::TigerStreets(wopts),
                                          workload::TigerHydro(wopts), 16,
                                          /*buffer_pages=*/12);
  // Reference child lists, collected single-threaded.
  std::vector<PairRef> roots = {RootRef(*f.r), RootRef(*f.s)};
  std::vector<std::vector<PairRef>> levels[2];
  for (int t = 0; t < 2; ++t) {
    const rtree::RTree& tree = t == 0 ? *f.r : *f.s;
    std::vector<PairRef> frontier = {roots[static_cast<size_t>(t)]};
    while (!frontier.empty() && !frontier.front().IsObject()) {
      levels[t].push_back(frontier);
      std::vector<PairRef> next;
      for (const PairRef& ref : frontier) {
        std::vector<PairRef> children;
        ASSERT_TRUE(ChildList(tree, ref, &children).ok());
        next.insert(next.end(), children.begin(), children.end());
      }
      frontier = std::move(next);
    }
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 8; ++w) {
    threads.emplace_back([&f, &levels, &failures, w] {
      const rtree::RTree& tree = w % 2 == 0 ? *f.r : *f.s;
      const auto& my_levels = levels[w % 2];
      std::vector<PairRef> children;
      for (int round = 0; round < 30; ++round) {
        for (const auto& level : my_levels) {
          const PairRef& ref =
              level[static_cast<size_t>(round * 31 + w) % level.size()];
          if (!ChildList(tree, ref, &children).ok() || children.empty()) {
            ++failures;
            return;
          }
          // Children must be contained in the parent MBR.
          for (const PairRef& child : children) {
            if (!ref.rect.Contains(child.rect)) {
              ++failures;
              return;
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace amdj::core

#ifndef AMDJ_CORE_AMIDJ_H_
#define AMDJ_CORE_AMIDJ_H_

#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "core/cursor.h"
#include "core/dmax_estimator.h"
#include "core/hs_join.h"
#include "core/options.h"
#include "core/pair_entry.h"
#include "geom/metric.h"
#include "rtree/rtree.h"

namespace amdj::core {

/// AM-IDJ (Section 4.2): adaptive multi-stage *incremental* distance join.
/// Because the stopping cardinality is unknown, there is no distance queue;
/// the estimated eDmax_i alone prunes each stage. Stage i targets k_i
/// results under cutoff eDmax_i; when the main queue yields a pair beyond
/// the cutoff (or runs dry) while the caller still wants results, the next
/// stage begins: eDmax_{i+1} is re-estimated from the results so far
/// (Eq. 4/5 corrections), the compensation queue's partially-expanded node
/// pairs re-enter the main queue, and their sweeps resume exactly where the
/// previous cutoff stopped them. Results stream out in globally
/// non-decreasing distance order across stages.
class AmIdjCursor : public DistanceJoinCursor {
 public:
  /// Neither tree nor stats ownership is taken; both must outlive the
  /// cursor. `stats` may be null.
  AmIdjCursor(const rtree::RTree& r, const rtree::RTree& s,
              const JoinOptions& options, JoinStats* stats);

  Status Next(ResultPair* out, bool* done) override;
  uint64_t produced() const override { return produced_; }

  /// Sizes the first stage's eDmax for an expected consumption of k pairs
  /// (and later stages' growth). Harmless to omit.
  void PrefetchHint(uint64_t k) override;

  /// Forces the *next* stage transition (or the first stage, if priming has
  /// not happened) to use exactly this cutoff instead of the estimate.
  /// Figure 15's "real Dmax" variant drives the cursor through this.
  /// Distance space (geom::DistVal), like every user-facing cutoff.
  void ForceNextStageEdmax(geom::DistVal edmax);

  /// Cutoff of the stage currently executing, as a distance (the internal
  /// cutoff lives in key space; this converts at the API boundary).
  geom::DistVal current_edmax() const {
    return geom::KeyToDistance(edmax_, options_.metric);
  }
  /// Number of stages started so far (1 after the first Next()).
  uint32_t stage_count() const { return stage_count_; }

 private:
  Status Prime();
  /// Moves the compensation queue into the main queue under a freshly
  /// estimated (or forced) larger cutoff.
  Status StartNewStage();
  /// Expands a node pair under the current eDmax, resuming a previous
  /// partial sweep when the pair carries compensation bookkeeping.
  Status Expand(PairEntry c);

  const rtree::RTree& r_;
  const rtree::RTree& s_;
  JoinOptions options_;
  JoinStats* stats_;
  JoinStats local_stats_;
  DmaxEstimator fallback_estimator_;
  const CutoffEstimator* estimator_;  // options_.estimator or the fallback
  MainQueue queue_;
  std::vector<PairEntry> compensation_;
  /// Stage cutoff in key space (geom::KeyVal), like every internal
  /// cutoff; estimator calls and the public accessors convert.
  geom::KeyVal edmax_ = geom::KeyVal::Zero();
  std::optional<geom::DistVal> forced_next_edmax_;
  uint64_t target_hint_ = 0;
  uint64_t produced_ = 0;
  geom::DistVal last_distance_ = geom::DistVal::Zero();
  uint32_t stage_count_ = 0;
  bool primed_ = false;
  bool exhausted_ = false;
  // Scratch buffers reused across expansions.
  std::vector<PairRef> left_;
  std::vector<PairRef> right_;
};

}  // namespace amdj::core

#endif  // AMDJ_CORE_AMIDJ_H_

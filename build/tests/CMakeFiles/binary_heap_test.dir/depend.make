# Empty dependencies file for binary_heap_test.
# This may be replaced when dependencies are built.

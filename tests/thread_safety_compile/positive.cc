// Control source for the thread-safety negative-compile check: the same
// guarded counter as negative.cc, accessed correctly (under a MutexLock).
// Must compile cleanly with -Werror=thread-safety — if it does not, the
// annotation layer itself is broken and the harness fails the build.

#include "common/mutex.h"

namespace {

class GuardedCounter {
 public:
  void Bump() AMDJ_EXCLUDES(mu_) {
    const amdj::MutexLock lock(&mu_);
    ++count_;
  }

  int Get() const AMDJ_EXCLUDES(mu_) {
    const amdj::MutexLock lock(&mu_);
    return count_;
  }

 private:
  mutable amdj::Mutex mu_;
  int count_ AMDJ_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  GuardedCounter counter;
  counter.Bump();
  return counter.Get() == 1 ? 0 : 1;
}

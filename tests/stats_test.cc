// JoinStats serialization round-trip and delta semantics: every field the
// ForEachJoinStatsField visitor knows about must appear in ToString and
// ToJson (the satellite bug this guards against: a field added to the
// struct but silently missing from a serialization), and SubtractJoinStats
// must implement the kAdd/kMax phase-delta contract RunReport relies on.

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "common/run_report.h"
#include "common/stats.h"

namespace amdj {
namespace {

/// Fills every field with a distinct, recognizable value (index-derived) so
/// serializations can be checked for per-field presence.
JoinStats MakeDistinctStats(uint64_t base) {
  JoinStats s;
  uint64_t i = 0;
  ForEachJoinStatsField(s, [&i, base](const char*, auto& field,
                                      StatFieldKind) {
    using Field = std::decay_t<decltype(field)>;
    field = static_cast<Field>(base + 7 * i);
    ++i;
  });
  return s;
}

TEST(JoinStatsSerializationTest, VisitorCoversEveryField) {
  int count = 0;
  JoinStats s;
  ForEachJoinStatsField(
      s, [&count](const char*, const auto&, StatFieldKind) { ++count; });
  // 27 uint64 counters + 2 double times; the sizeof static_assert in
  // stats.cc enforces that this visitor cannot fall behind the struct.
  EXPECT_EQ(count, 29);
}

TEST(JoinStatsSerializationTest, EveryFieldAppearsInToString) {
  const JoinStats s = MakeDistinctStats(1000);
  const std::string text = s.ToString();
  ForEachJoinStatsField(s, [&text](const char* name, const auto& field,
                                   StatFieldKind) {
    EXPECT_NE(text.find(name), std::string::npos) << "missing " << name;
    std::ostringstream value;
    value << name << ": " << field;
    EXPECT_NE(text.find(value.str()), std::string::npos)
        << "missing value for " << name << " in:\n"
        << text;
  });
}

TEST(JoinStatsSerializationTest, EveryFieldAppearsInToJsonWithValue) {
  const JoinStats s = MakeDistinctStats(2000);
  const std::string json = s.ToJson();
  ForEachJoinStatsField(s, [&json](const char* name, const auto& field,
                                   StatFieldKind) {
    using Field = std::decay_t<decltype(field)>;
    std::string pair = std::string("\"") + name + "\":";
    if constexpr (std::is_same_v<Field, double>) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", field);
      pair += buf;
    } else {
      pair += std::to_string(field);
    }
    EXPECT_NE(json.find(pair), std::string::npos)
        << "missing " << pair << " in " << json;
  });
  // Derived totals are part of the schema too.
  EXPECT_NE(json.find("\"total_distance_computations\":"), std::string::npos);
  EXPECT_NE(json.find("\"response_seconds\":"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(JoinStatsSerializationTest, ToStringIncludesParallelCounters) {
  // The original bug: parallel_* existed in the struct but not in the dump.
  JoinStats s;
  s.parallel_rounds = 3;
  s.parallel_tasks = 17;
  s.parallel_tie_aborts = 1;
  const std::string text = s.ToString();
  EXPECT_NE(text.find("parallel_rounds: 3"), std::string::npos);
  EXPECT_NE(text.find("parallel_tasks: 17"), std::string::npos);
  EXPECT_NE(text.find("parallel_tie_aborts: 1"), std::string::npos);
}

TEST(JoinStatsSerializationTest, ToStringIncludesShardCounters) {
  // Same tripwire as the parallel_* one: the shard scheduling counters
  // must be visible in the dump, not just present in the struct.
  JoinStats s;
  s.shard_pairs_considered = 9;
  s.shard_pairs_pruned_bounds = 4;
  s.shard_pairs_pruned_cutoff = 2;
  s.shard_pairs_executed = 3;
  const std::string text = s.ToString();
  EXPECT_NE(text.find("shard_pairs_considered: 9"), std::string::npos);
  EXPECT_NE(text.find("shard_pairs_pruned_bounds: 4"), std::string::npos);
  EXPECT_NE(text.find("shard_pairs_pruned_cutoff: 2"), std::string::npos);
  EXPECT_NE(text.find("shard_pairs_executed: 3"), std::string::npos);
}

TEST(JoinStatsDeltaTest, SubtractTakesDifferencesAndKeepsPeaks) {
  JoinStats begin = MakeDistinctStats(100);
  JoinStats end = MakeDistinctStats(100);
  end.Add(MakeDistinctStats(50));  // end = begin + extra, peaks take max

  const JoinStats delta = SubtractJoinStats(end, begin);
  ForEachJoinStatsFieldPair(
      delta, begin,
      [&end](const char* name, const auto& d, const auto& b,
             StatFieldKind kind) {
        // Find the matching end-field value by re-walking (names are the
        // visitor's literals, so pointer identity is fine but compare by
        // strcmp for robustness).
        ForEachJoinStatsField(end, [&](const char* n2, const auto& e,
                                       StatFieldKind) {
          if (std::string(name) != n2) return;
          if (kind == StatFieldKind::kMax) {
            EXPECT_EQ(static_cast<double>(d), static_cast<double>(e))
                << name << ": kMax delta must report the end value";
          } else {
            EXPECT_EQ(static_cast<double>(d),
                      static_cast<double>(e) - static_cast<double>(b))
                << name;
          }
        });
      });
}

TEST(JoinStatsDeltaTest, AddThenSubtractRoundTrips) {
  const JoinStats begin = MakeDistinctStats(300);
  const JoinStats extra = MakeDistinctStats(40);
  JoinStats end = begin;
  end.Add(extra);
  const JoinStats delta = SubtractJoinStats(end, begin);
  ForEachJoinStatsFieldPair(
      delta, extra,
      [](const char* name, const auto& d, const auto& x, StatFieldKind kind) {
        if (kind == StatFieldKind::kMax) return;  // reports end value instead
        EXPECT_EQ(static_cast<double>(d), static_cast<double>(x)) << name;
      });
}

TEST(RunReportTest, PhaseDeltasSumToTotals) {
  RunReport report;
  JoinStats live;  // the shared counter block a join would mutate

  report.BeginPhase("one", live);
  live.real_distance_computations += 10;
  live.pairs_produced += 4;
  live.main_queue_peak_size = 7;
  report.BeginPhase("two", live);  // implicitly ends "one"
  live.real_distance_computations += 5;
  live.pairs_produced += 2;
  live.main_queue_peak_size = 9;
  report.Finish(live);

  ASSERT_EQ(report.phases().size(), 2u);
  JoinStats summed;
  for (const RunReport::Phase& p : report.phases()) summed.Add(p.delta);
  ForEachJoinStatsFieldPair(
      summed, report.totals(),
      [](const char* name, const auto& s, const auto& t, StatFieldKind kind) {
        if (kind == StatFieldKind::kMax) {
          EXPECT_EQ(static_cast<double>(s), static_cast<double>(t))
              << name << ": max over phase end-values is the run peak";
          return;
        }
        if (std::string(name) == "cpu_seconds") return;  // added post-run
        EXPECT_EQ(static_cast<double>(s), static_cast<double>(t)) << name;
      });
}

TEST(RunReportTest, CutoffTrajectoryTruncatesLoudly) {
  RunReport report;
  for (size_t i = 0; i < RunReport::kMaxTrajectory + 10; ++i) {
    report.OnCutoff("point", static_cast<double>(i), i);
  }
  EXPECT_EQ(report.cutoff_trajectory().size(), RunReport::kMaxTrajectory);
  // The final point always survives (last slot is overwritten).
  EXPECT_EQ(report.cutoff_trajectory().back().pairs_so_far,
            RunReport::kMaxTrajectory + 9);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"cutoff_trajectory_dropped\":10"), std::string::npos)
      << json;
}

TEST(RunReportTest, JsonAndTableCarrySchemaAndMeta) {
  RunReport report;
  report.SetMeta("AM-KDJ", 42);
  JoinStats live;
  report.BeginPhase("aggressive", live);
  live.pairs_produced = 42;
  report.OnCutoff("final_dmax", 3.5, 42);
  report.Finish(live);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"schema\":\"amdj-run-report-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"algorithm\":\"AM-KDJ\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":42"), std::string::npos);
  const std::string table = report.ToTable();
  EXPECT_NE(table.find("aggressive"), std::string::npos);
  EXPECT_NE(table.find("pairs_produced"), std::string::npos);
  EXPECT_NE(table.find("final_dmax"), std::string::npos);
}

}  // namespace
}  // namespace amdj

#ifndef AMDJ_QUEUE_HYBRID_QUEUE_H_
#define AMDJ_QUEUE_HYBRID_QUEUE_H_

#include <algorithm>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/logging.h"
#include "common/run_report.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/thread_checker.h"
#include "common/trace.h"
#include "queue/binary_heap.h"
#include "queue/segment_file.h"
#include "storage/disk_manager.h"

namespace amdj::queue {

/// The paper's memory-parameterized *main queue* (Section 4.4): a priority
/// queue range-partitioned by priority key (a metric key — squared distance
/// under L2; partitioning by key partitions by distance since the key is
/// monotone in it). The partition covering the smallest keys
/// is an in-memory heap; every other partition is an unsorted
/// on-disk pile (SegmentFile). When the heap overflows it is *split* (the
/// longer-distance half spills to a new shortest-range segment); when it
/// empties, the shortest-range segment is *swapped in* (re-spilling its
/// excess if it exceeds the heap capacity).
///
/// If `Options::boundary_fn` is provided (the paper derives it from Eq. 3:
/// boundary_fn(c) = sqrt(c * rho), the estimated distance of the c-th
/// closest pair — converted to key space by the caller), segment
/// boundaries are predetermined at construction as
/// boundary_fn(i * n) for heap capacity n, which routes distant insertions
/// straight to the right pile and minimizes split/swap operations. Without
/// it the queue degrades to adaptive median splits.
///
/// Correctness invariant: every entry in a disk segment has
/// key >= the segment's lower_bound, and the heap only accepts entries
/// below the front segment's lower_bound — hence the global minimum is
/// always in the heap (after swap-in when the heap runs dry).
///
/// T must be trivially copyable with a public `double key` member (the
/// priority). Compare orders the heap and must be consistent with
/// ascending key.
///
/// Concurrency contract: thread-confined. The queue — in particular the
/// split/swap-in path, which rewrites the heap and the segment list
/// together — is mutated exclusively by the coordinating (query) thread;
/// the parallel executor's workers never touch it. That confinement is
/// what makes the segment-boundary invariant above safe without a lock,
/// and it is enforced: every mutating entry point checks the confinement
/// owner (common/thread_checker.h) and aborts on a cross-thread call
/// instead of corrupting the boundary structure.
template <typename T, typename Compare>
class HybridQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "queue entries are spilled to disk by memcpy");

 public:
  struct Options {
    /// Bytes of memory for the in-memory heap. The paper's experiments use
    /// 64 KB - 1024 KB (Figure 13), default 512 KB.
    size_t memory_bytes = 512 * 1024;
    /// Backing store for disk segments. nullptr disables spilling: the
    /// queue stays entirely in memory regardless of memory_bytes.
    storage::DiskManager* disk = nullptr;
    /// Estimated key of the c-th closest pair (Eq. 3); see above.
    std::function<double(uint64_t)> boundary_fn;
    /// Number of predetermined segments created when boundary_fn is set.
    /// Each covers ~one heap capacity of entries under an accurate Eq.-3
    /// estimate; entries beyond the last boundary pile into the final
    /// segment, so this should comfortably exceed (expected insertions /
    /// heap capacity). Empty segments cost almost nothing.
    size_t predetermined_segments = 1024;
    /// Optional observability hooks (common/trace.h, common/run_report.h):
    /// split/swap-in events and per-push depth samples. Both nullable (the
    /// default), not owned, coordinator-thread only — the parallel
    /// executor mutates the queue exclusively on the coordinating thread.
    Tracer* tracer = nullptr;
    RunReport* report = nullptr;
  };

  HybridQueue(const Options& options, JoinStats* stats,
              Compare cmp = Compare())
      : options_(options), stats_(stats), heap_(cmp) {
    if (options_.disk == nullptr) {
      capacity_ = std::numeric_limits<size_t>::max();
      return;
    }
    capacity_ = std::max<size_t>(16, options_.memory_bytes / sizeof(T));
    if (options_.boundary_fn) {
      double prev = 0.0;
      for (size_t j = 1; j <= options_.predetermined_segments; ++j) {
        const double b = options_.boundary_fn(j * capacity_);
        if (!(b > prev)) continue;  // boundaries must strictly increase
        auto seg =
            std::make_unique<SegmentFile>(options_.disk, sizeof(T), stats_);
        seg->lower_bound = b;
        segments_.push_back(std::move(seg));
        prev = b;
      }
    }
  }

  /// Inserts an entry. Counted into the stats/report only once the entry
  /// has actually landed (heap push, or segment append succeeded) — a
  /// failed spill Append must not inflate main_queue_insertions.
  Status Push(const T& item) {
    AMDJ_CHECK(owner_.CalledOnValidThread())
        << "HybridQueue::Push off the coordinator thread";
    if (item.key < HeapUpperBound()) {
      heap_.Push(item);
      CountInsertion();
      if (heap_.Size() > capacity_) AMDJ_RETURN_IF_ERROR(Split());
      return Status::OK();
    }
    AMDJ_RETURN_IF_ERROR(RouteToSegment(item.key)->Append(&item));
    CountInsertion();
    return Status::OK();
  }

  /// True when no entries remain anywhere.
  bool Empty() const { return TotalSize() == 0; }

  /// Entries in memory + on disk.
  uint64_t TotalSize() const {
    uint64_t total = heap_.Size();
    for (const auto& seg : segments_) total += seg->count();
    return total;
  }

  /// Removes the minimum entry into `*out`; OutOfRange when empty.
  Status Pop(T* out) {
    AMDJ_CHECK(owner_.CalledOnValidThread())
        << "HybridQueue::Pop off the coordinator thread";
    AMDJ_RETURN_IF_ERROR(SettleFront());
    if (heap_.Empty()) return Status::OutOfRange("queue is empty");
    *out = heap_.Pop();
    return Status::OK();
  }

  /// Copies the minimum entry into `*out` without removing it; OutOfRange
  /// when empty. May swap a disk segment into the heap (the global minimum
  /// is always in the heap afterwards, so a following Pop is in-memory).
  Status Peek(T* out) {
    AMDJ_CHECK(owner_.CalledOnValidThread())
        << "HybridQueue::Peek off the coordinator thread";
    AMDJ_RETURN_IF_ERROR(SettleFront());
    if (heap_.Empty()) return Status::OutOfRange("queue is empty");
    *out = heap_.Top();
    return Status::OK();
  }

  /// Batched pop: removes entries in priority order, appending them to
  /// `*out`, while `take(entry)` returns true, stopping after `max_n`
  /// entries or when the queue is empty. An entry rejected by `take` is
  /// left at the front of the queue (it is inspected, not removed), so the
  /// caller can alternate batches of different kinds without re-pushing —
  /// the parallel join executor uses this to drain ready object pairs and
  /// then collect a round of node pairs.
  template <typename Take>
  Status PopBatch(size_t max_n, Take&& take, std::vector<T>* out) {
    AMDJ_CHECK(owner_.CalledOnValidThread())
        << "HybridQueue::PopBatch off the coordinator thread";
    for (size_t n = 0; n < max_n; ++n) {
      AMDJ_RETURN_IF_ERROR(SettleFront());
      if (heap_.Empty()) break;
      if (!take(heap_.Top())) break;
      out->push_back(heap_.Pop());
    }
    return Status::OK();
  }

  /// Number of heap->disk splits performed.
  uint64_t split_count() const { return splits_; }
  /// Number of non-empty disk->heap swap-ins performed.
  uint64_t swapin_count() const { return swapins_; }
  /// Heap capacity in entries (n in the paper's boundary formula).
  size_t heap_capacity() const { return capacity_; }
  /// Current number of disk segments (including empty predetermined ones).
  size_t segment_count() const { return segments_.size(); }
  /// Current number of entries in the in-memory heap.
  size_t heap_size() const { return heap_.Size(); }

 private:
  /// Records one successful insertion (call after the entry is in). The
  /// entry is already counted by TotalSize() here, matching the pre-insert
  /// `TotalSize() + 1` peak the sequential algorithms have always reported.
  void CountInsertion() {
    if (stats_ == nullptr && options_.report == nullptr) return;
    const uint64_t total = TotalSize();
    if (stats_ != nullptr) {
      ++stats_->main_queue_insertions;
      stats_->main_queue_peak_size =
          std::max<uint64_t>(stats_->main_queue_peak_size, total);
    }
    if (options_.report != nullptr) options_.report->OnQueueDepth(total);
  }

  /// Ensures the heap holds the global minimum (swapping in segments while
  /// the heap is empty). After this, an empty heap means an empty queue.
  Status SettleFront() {
    while (heap_.Empty() && !segments_.empty()) {
      AMDJ_RETURN_IF_ERROR(SwapIn());
    }
    return Status::OK();
  }

  double HeapUpperBound() const {
    return segments_.empty() ? std::numeric_limits<double>::infinity()
                             : segments_.front()->lower_bound;
  }

  /// Last segment with lower_bound <= key. Only called when
  /// key >= HeapUpperBound(), so a match always exists.
  SegmentFile* RouteToSegment(double key) {
    size_t lo = 0;
    size_t hi = segments_.size();  // invariant: segments_[lo].lb <= key
    while (lo + 1 < hi) {
      const size_t mid = (lo + hi) / 2;
      if (segments_[mid]->lower_bound <= key) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return segments_[lo].get();
  }

  void InsertSegmentFront(std::unique_ptr<SegmentFile> seg) {
    segments_.insert(segments_.begin(), std::move(seg));
  }

  /// Adjusts a sorted cut index so no kept entry ties with the spilled
  /// boundary: a key plateau must never straddle the memory/disk
  /// boundary. Tied entries that ended up in the heap would pop before
  /// tied entries in the segment regardless of the comparator's
  /// tie-break, making pop order at a plateau depend on *when* splits
  /// happened (the push/pop interleaving) instead of on the comparator —
  /// observable as order divergence between otherwise identical runs.
  /// Returns items.size() when the whole range is one plateau (no
  /// distance boundary can split it).
  static size_t TieSafeCut(const std::vector<T>& items, size_t cut) {
    while (cut > 0 && items[cut - 1].key == items[cut].key) --cut;
    if (cut == 0) {
      // The closest plateau is wider than the intended in-memory half:
      // keep the whole plateau and spill only what lies beyond it.
      const double d0 = items[0].key;
      while (cut < items.size() && items[cut].key == d0) ++cut;
    }
    return cut;
  }

  /// Heap overflow: keep the closer half in memory, spill the rest as a
  /// new shortest-range segment.
  Status Split() {
    std::vector<T> items = heap_.TakeAll();
    std::sort(items.begin(), items.end(), [](const T& a, const T& b) {
      return a.key < b.key;
    });
    const size_t keep = TieSafeCut(items, capacity_ / 2);
    if (keep == items.size()) {
      // One giant plateau: unsplittable; tolerate an over-capacity heap.
      heap_.Assign(std::move(items));
      return Status::OK();
    }
    ++splits_;
    if (stats_ != nullptr) ++stats_->queue_splits;
    AMDJ_TRACE(options_.tracer,
               Instant("queue_split",
                       {{"kept", static_cast<double>(keep)},
                        {"spilled", static_cast<double>(items.size() - keep)},
                        {"boundary_key", items[keep].key}}));
    auto seg =
        std::make_unique<SegmentFile>(options_.disk, sizeof(T), stats_);
    seg->lower_bound = items[keep].key;
    for (size_t i = keep; i < items.size(); ++i) {
      AMDJ_RETURN_IF_ERROR(seg->Append(&items[i]));
    }
    items.resize(keep);
    heap_.Assign(std::move(items));
    InsertSegmentFront(std::move(seg));
    return Status::OK();
  }

  /// Heap underflow: load the shortest-range segment; if it exceeds the
  /// heap capacity, re-spill its farther part.
  Status SwapIn() {
    std::unique_ptr<SegmentFile> seg = std::move(segments_.front());
    segments_.erase(segments_.begin());
    if (seg->count() == 0) return Status::OK();  // empty predetermined range
    ++swapins_;
    if (stats_ != nullptr) ++stats_->queue_swapins;
    AMDJ_TRACE(options_.tracer,
               Instant("queue_swapin",
                       {{"loaded", static_cast<double>(seg->count())},
                        {"lower_bound_key", seg->lower_bound}}));
    std::vector<char> bytes;
    AMDJ_RETURN_IF_ERROR(seg->ReadAll(&bytes));
    const size_t n = bytes.size() / sizeof(T);
    std::vector<T> items(n);
    std::memcpy(items.data(), bytes.data(), n * sizeof(T));
    seg->Drop();
    if (items.size() > capacity_) {
      std::sort(items.begin(), items.end(), [](const T& a, const T& b) {
        return a.key < b.key;
      });
      const size_t keep = TieSafeCut(items, capacity_);
      if (keep < items.size()) {
        auto respill =
            std::make_unique<SegmentFile>(options_.disk, sizeof(T), stats_);
        respill->lower_bound = items[keep].key;
        for (size_t i = keep; i < items.size(); ++i) {
          AMDJ_RETURN_IF_ERROR(respill->Append(&items[i]));
        }
        items.resize(keep);
        InsertSegmentFront(std::move(respill));
      }
    }
    heap_.Assign(std::move(items));
    return Status::OK();
  }

  Options options_;
  JoinStats* stats_;
  size_t capacity_;
  BinaryHeap<T, Compare> heap_;
  std::vector<std::unique_ptr<SegmentFile>> segments_;  // by lower_bound asc
  uint64_t splits_ = 0;
  uint64_t swapins_ = 0;
  /// Confinement owner: bound to the first mutating caller (see the class
  /// comment's concurrency contract).
  ThreadChecker owner_;
};

}  // namespace amdj::queue

#endif  // AMDJ_QUEUE_HYBRID_QUEUE_H_

#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the first-party sources.
#
# Usage: scripts/run_clang_tidy.sh [build-dir]
#   build-dir: a CMake build directory containing compile_commands.json
#              (exported by the top-level CMakeLists via
#              CMAKE_EXPORT_COMPILE_COMMANDS). Default: build.
#
# Environment:
#   CLANG_TIDY  clang-tidy binary to use (default: first of clang-tidy,
#               clang-tidy-{19..14} found on PATH).
#   JOBS        parallel clang-tidy processes (default: nproc).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

tidy="${CLANG_TIDY:-}"
if [[ -z "${tidy}" ]]; then
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      tidy="${candidate}"
      break
    fi
  done
fi
if [[ -z "${tidy}" ]]; then
  echo "error: clang-tidy not found on PATH (set CLANG_TIDY to override)" >&2
  exit 2
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "error: ${build_dir}/compile_commands.json not found." >&2
  echo "Configure first: cmake -B \"${build_dir}\" -S \"${repo_root}\"" >&2
  exit 2
fi

mapfile -t sources < <(cd "${repo_root}" \
  && find src tools bench -name '*.cc' | sort)
if [[ ${#sources[@]} -eq 0 ]]; then
  echo "error: no sources found under ${repo_root}" >&2
  exit 2
fi

jobs="${JOBS:-$(nproc)}"
echo "clang-tidy: ${tidy} ($("${tidy}" --version | head -n 1))"
echo "checking ${#sources[@]} files with ${jobs} jobs..."

cd "${repo_root}"
# -warnings-as-errors comes from WarningsAsErrors in .clang-tidy; --quiet
# suppresses the per-file "N warnings generated" chatter. xargs returns
# nonzero if any invocation fails, which fails the script (and CI).
printf '%s\n' "${sources[@]}" \
  | xargs -P "${jobs}" -n 8 "${tidy}" -p "${build_dir}" --quiet

echo "clang-tidy: clean"

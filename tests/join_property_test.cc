// Property tests for the paper's central invariants: compensation
// exactness under arbitrary eDmax estimates (Section 5.6's claim that
// AM-KDJ equals B-KDJ for *any* estimate), Lemma 1, and the cost ordering
// the paper reports.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/amkdj.h"
#include "core/bkdj.h"
#include "core/distance_join.h"
#include "core/expansion.h"
#include "rtree/node.h"
#include "test_util.h"
#include "workload/generators.h"

namespace amdj::core {
namespace {

using test::BruteForceDistances;
using test::JoinFixture;
using test::MakeFixture;

// ---------------------------------------------------------------------------
// Figure 14's property: for eDmax anywhere in [0.05x, 10x] of the true
// Dmax, AM-KDJ returns exactly the same distance sequence as B-KDJ.

class ForcedEdmaxTest : public ::testing::TestWithParam<double> {};

TEST_P(ForcedEdmaxTest, AmKdjMatchesBKdjForAnyEstimate) {
  const geom::Rect uni(0, 0, 10000, 10000);
  JoinFixture f =
      MakeFixture(workload::GaussianClusters(300, 8, 0.03, 21, uni),
                  workload::UniformRects(200, 50.0, 22, uni), 8);
  const uint64_t k = 500;
  JoinOptions options;
  auto baseline = BKdj::Run(*f.r, *f.s, k, options, nullptr);
  ASSERT_TRUE(baseline.ok());
  const auto dmax = ComputeTrueDmax(*f.r, *f.s, k, options);
  ASSERT_TRUE(dmax.ok());

  options.forced_edmax = geom::DistVal(GetParam() * *dmax);
  JoinStats stats;
  auto am = AmKdj::Run(*f.r, *f.s, k, options, &stats);
  ASSERT_TRUE(am.ok());
  ASSERT_EQ(am->size(), baseline->size());
  for (size_t i = 0; i < am->size(); ++i) {
    ASSERT_NEAR((*am)[i].distance, (*baseline)[i].distance, 1e-9)
        << "rank " << i << " with eDmax factor " << GetParam();
  }
  if (GetParam() < 1.0) {
    // An underestimate must have exercised the compensation machinery.
    EXPECT_GT(stats.compensation_queue_insertions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(EstimateSweep, ForcedEdmaxTest,
                         ::testing::Values(0.05, 0.1, 0.3, 0.5, 0.8, 1.0,
                                           1.5, 2.0, 5.0, 10.0),
                         [](const auto& info) {
                           std::string s = std::to_string(info.param);
                           for (auto& ch : s) {
                             if (ch == '.') ch = '_';
                           }
                           return "factor_" + s.substr(0, 4);
                         });

class AdaptiveCorrectionTest : public ::testing::TestWithParam<double> {};

TEST_P(AdaptiveCorrectionTest, RuntimeCorrectedAmKdjMatchesBKdj) {
  // Section 4.3.2's runtime-corrected variant must stay exact for any
  // initial estimate, like the two-stage default.
  const geom::Rect uni(0, 0, 10000, 10000);
  JoinFixture f =
      MakeFixture(workload::GaussianClusters(300, 8, 0.03, 21, uni),
                  workload::UniformRects(200, 50.0, 22, uni), 8);
  const uint64_t k = 500;
  JoinOptions options;
  auto baseline = BKdj::Run(*f.r, *f.s, k, options, nullptr);
  ASSERT_TRUE(baseline.ok());
  const auto dmax = ComputeTrueDmax(*f.r, *f.s, k, options);
  ASSERT_TRUE(dmax.ok());

  options.kdj_adaptive_correction = true;
  options.forced_edmax = geom::DistVal(GetParam() * *dmax);
  for (const auto policy :
       {CorrectionPolicy::kAggressive, CorrectionPolicy::kConservative}) {
    options.correction = policy;
    JoinStats stats;
    auto am = AmKdj::Run(*f.r, *f.s, k, options, &stats);
    ASSERT_TRUE(am.ok());
    ASSERT_EQ(am->size(), baseline->size());
    for (size_t i = 0; i < am->size(); ++i) {
      ASSERT_NEAR((*am)[i].distance, (*baseline)[i].distance, 1e-9)
          << "rank " << i << " factor " << GetParam() << " policy "
          << static_cast<int>(policy);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(EstimateSweepAdaptive, AdaptiveCorrectionTest,
                         ::testing::Values(0.05, 0.3, 1.0, 3.0),
                         [](const auto& info) {
                           std::string s = std::to_string(info.param);
                           for (auto& ch : s) {
                             if (ch == '.') ch = '_';
                           }
                           return "factor_" + s.substr(0, 4);
                         });

TEST(AdaptiveCorrectionTest, ExhaustsProductWhenKExceedsIt) {
  const geom::Rect uni(0, 0, 1000, 1000);
  JoinFixture f = MakeFixture(workload::UniformPoints(40, 61, uni),
                              workload::UniformPoints(30, 62, uni), 5);
  JoinOptions options;
  options.kdj_adaptive_correction = true;
  options.forced_edmax = geom::DistVal(1.0);  // massive underestimate
  auto result = AmKdj::Run(*f.r, *f.s, 100000, options, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 40u * 30u);
}

TEST(ForcedEdmaxTest, ZeroEstimateDegeneratesButStaysCorrect) {
  const geom::Rect uni(0, 0, 1000, 1000);
  JoinFixture f = MakeFixture(workload::UniformPoints(100, 1, uni),
                              workload::UniformPoints(80, 2, uni), 6);
  const auto brute = BruteForceDistances(f.r_objects, f.s_objects);
  JoinOptions options;
  options.forced_edmax = geom::DistVal(0.0);
  auto am = AmKdj::Run(*f.r, *f.s, 200, options, nullptr);
  ASSERT_TRUE(am.ok());
  ASSERT_EQ(am->size(), 200u);
  for (size_t i = 0; i < am->size(); ++i) {
    EXPECT_NEAR((*am)[i].distance, brute[i], 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Lemma 1: the minimum distance of a child pair never undercuts its
// parents' — the containment property every pruning step relies on.

TEST(Lemma1Test, ChildPairDistanceDominatesParentPair) {
  const geom::Rect uni(0, 0, 5000, 5000);
  JoinFixture f =
      MakeFixture(workload::GaussianClusters(400, 5, 0.08, 7, uni),
                  workload::TigerHydro({.hydro_objects = 300, .seed = 8}), 8);
  // Walk both trees and check every (parent child, other node) combination
  // via a random sample of node pairs.
  std::vector<PairRef> r_nodes{RootRef(*f.r)};
  std::vector<PairRef> s_nodes{RootRef(*f.s)};
  std::vector<PairRef> children;
  for (size_t i = 0; i < r_nodes.size() && i < 200; ++i) {
    if (r_nodes[i].IsObject()) continue;
    ASSERT_TRUE(FetchChildren(*f.r, r_nodes[i], &children).ok());
    r_nodes.insert(r_nodes.end(), children.begin(), children.end());
  }
  for (size_t i = 0; i < s_nodes.size() && i < 200; ++i) {
    if (s_nodes[i].IsObject()) continue;
    ASSERT_TRUE(FetchChildren(*f.s, s_nodes[i], &children).ok());
    s_nodes.insert(s_nodes.end(), children.begin(), children.end());
  }
  Random rng(3);
  int checked = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const PairRef& r = r_nodes[rng.UniformInt(r_nodes.size())];
    const PairRef& s = s_nodes[rng.UniformInt(s_nodes.size())];
    if (r.IsObject() || s.IsObject()) continue;
    const double parent_dist = geom::MinDistance(r.rect, s.rect);
    std::vector<PairRef> rc, sc;
    ASSERT_TRUE(FetchChildren(*f.r, r, &rc).ok());
    ASSERT_TRUE(FetchChildren(*f.s, s, &sc).ok());
    for (const PairRef& a : rc) {
      for (const PairRef& b : sc) {
        ASSERT_GE(geom::MinDistance(a.rect, b.rect), parent_dist - 1e-12);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 1000);
}

// ---------------------------------------------------------------------------
// Cost-ordering properties the evaluation section reports. These are
// statements about *work*, not correctness, so they use comfortable
// margins rather than exact thresholds.

TEST(CostOrderingTest, BidirectionalBeatsUniDirectionalOnDistanceWork) {
  const geom::Rect uni(0, 0, 50000, 50000);
  JoinFixture f = MakeFixture(
      workload::TigerStreets({.street_segments = 4000, .towns = 10,
                              .seed = 71}),
      workload::TigerHydro({.hydro_objects = 1500, .towns = 10, .seed = 71}),
      32, 256);
  JoinOptions options;
  JoinStats hs, b, am;
  ASSERT_TRUE(HsKdj::Run(*f.r, *f.s, 1000, options, &hs).ok());
  ASSERT_TRUE(BKdj::Run(*f.r, *f.s, 1000, options, &b).ok());
  ASSERT_TRUE(AmKdj::Run(*f.r, *f.s, 1000, options, &am).ok());
  // The optimized plane sweep slashes distance work (Figure 10a)...
  EXPECT_LT(b.real_distance_computations, hs.real_distance_computations);
  EXPECT_LT(am.real_distance_computations, hs.real_distance_computations);
  // ...and the adaptive estimate additionally contains queue growth
  // (Figure 10b). Raw B-KDJ pays an O(fanout^2) startup while qDmax is
  // still infinite, so only AM-KDJ is asserted against B-KDJ here.
  EXPECT_LT(am.main_queue_insertions, b.main_queue_insertions);
}

TEST(CostOrderingTest, AmKdjPrunesAtLeastAsWellAsBKdjWhenOverestimated) {
  // Section 5.6: with an overestimated eDmax, AM-KDJ clamps to qDmax and
  // "always requires no more distance computation and queue insertion
  // operations than B-KDJ".
  const geom::Rect uni(0, 0, 10000, 10000);
  JoinFixture f =
      MakeFixture(workload::GaussianClusters(400, 8, 0.03, 31, uni),
                  workload::UniformRects(300, 50.0, 32, uni), 16);
  JoinOptions options;
  JoinStats b;
  ASSERT_TRUE(BKdj::Run(*f.r, *f.s, 800, options, &b).ok());
  const auto dmax = ComputeTrueDmax(*f.r, *f.s, 800, options);
  ASSERT_TRUE(dmax.ok());
  options.forced_edmax = geom::DistVal(2.0 * *dmax);
  JoinStats am;
  ASSERT_TRUE(AmKdj::Run(*f.r, *f.s, 800, options, &am).ok());
  EXPECT_LE(am.real_distance_computations, b.real_distance_computations);
  EXPECT_LE(am.main_queue_insertions, b.main_queue_insertions);
}

TEST(CostOrderingTest, UnderestimateCostBoundedByTwiceBKdj) {
  // Section 5.6: an underestimated eDmax costs at most ~2x B-KDJ (each
  // sweep region is examined at most twice).
  const geom::Rect uni(0, 0, 10000, 10000);
  JoinFixture f =
      MakeFixture(workload::GaussianClusters(400, 8, 0.03, 31, uni),
                  workload::UniformRects(300, 50.0, 32, uni), 16);
  JoinOptions options;
  JoinStats b;
  ASSERT_TRUE(BKdj::Run(*f.r, *f.s, 800, options, &b).ok());
  const auto dmax = ComputeTrueDmax(*f.r, *f.s, 800, options);
  ASSERT_TRUE(dmax.ok());
  options.forced_edmax = geom::DistVal(0.1 * *dmax);
  JoinStats am;
  ASSERT_TRUE(AmKdj::Run(*f.r, *f.s, 800, options, &am).ok());
  EXPECT_LE(am.real_distance_computations,
            2 * b.real_distance_computations + 1000);
  EXPECT_LE(am.node_accesses, 2 * b.node_accesses + 1000);
}

TEST(CostOrderingTest, CompensationQueueIsSmallerThanMainQueue) {
  // Section 5.6 observes Qc at a fraction of a percent of Qm; assert the
  // order-of-magnitude relationship.
  const geom::Rect uni(0, 0, 10000, 10000);
  JoinFixture f =
      MakeFixture(workload::GaussianClusters(500, 8, 0.03, 51, uni),
                  workload::UniformRects(400, 50.0, 52, uni), 16);
  JoinOptions options;
  const auto dmax = ComputeTrueDmax(*f.r, *f.s, 1000, options);
  ASSERT_TRUE(dmax.ok());
  options.forced_edmax =
      geom::DistVal(0.5 * *dmax);  // underestimate: Qc is exercised
  JoinStats am;
  ASSERT_TRUE(AmKdj::Run(*f.r, *f.s, 1000, options, &am).ok());
  EXPECT_GT(am.compensation_queue_insertions, 0u);
  EXPECT_LT(am.compensation_queue_insertions,
            am.main_queue_insertions / 4);
}

// ---------------------------------------------------------------------------
// Randomized end-to-end property sweep: all four KDJ algorithms agree on
// the distance sequence across random workload shapes.

class AgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AgreementTest, AllAlgorithmsAgree) {
  Random rng(GetParam());
  const geom::Rect uni(0, 0, 2000, 2000);
  const uint64_t nr = 20 + rng.UniformInt(uint64_t{150});
  const uint64_t ns = 20 + rng.UniformInt(uint64_t{150});
  const uint64_t k = 1 + rng.UniformInt(uint64_t{300});
  const uint32_t fanout = 4 + static_cast<uint32_t>(
      rng.UniformInt(uint64_t{12}));
  JoinFixture f = MakeFixture(
      workload::GaussianClusters(nr, 1 + rng.UniformInt(uint64_t{5}),
                                 0.02 + rng.NextDouble() * 0.2,
                                 GetParam() * 3 + 1, uni),
      workload::UniformRects(ns, rng.Uniform(1.0, 80.0),
                             GetParam() * 7 + 2, uni),
      fanout);
  const auto brute = BruteForceDistances(f.r_objects, f.s_objects);
  JoinOptions options;
  for (const auto algorithm :
       {KdjAlgorithm::kHsKdj, KdjAlgorithm::kBKdj, KdjAlgorithm::kAmKdj,
        KdjAlgorithm::kSjSort}) {
    auto result =
        RunKDistanceJoin(*f.r, *f.s, k, algorithm, options, nullptr);
    ASSERT_TRUE(result.ok());
    const size_t expect = std::min<uint64_t>(k, brute.size());
    ASSERT_EQ(result->size(), expect) << ToString(algorithm);
    for (size_t i = 0; i < expect; ++i) {
      ASSERT_NEAR((*result)[i].distance, brute[i], 1e-9)
          << ToString(algorithm) << " seed " << GetParam() << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, AgreementTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace amdj::core

#include "service/join_service.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/run_report.h"
#include "common/timer.h"
#include "core/dmax_estimator.h"
#include "core/shard_executor.h"
#include "service/shared_work.h"
#include "storage/disk_manager.h"

namespace amdj::service {

namespace {

/// Process-wide service metrics (one series set; all JoinService instances
/// in the process feed them — in practice a serve process hosts one).
struct ServiceMetrics {
  Histogram* admission_wait_ns;
  Gauge* inflight;
  Gauge* queued;
  Counter* accepted;
  Counter* rejected;
  Counter* completed;
  Counter* slow_queries;
  Counter* shared_inflight_hits;
  Counter* shared_cache_hits;
  Counter* shared_seeds;
  Counter* shared_misses;
  Gauge* shared_cache_entries;
};

ServiceMetrics& GlobalServiceMetrics() {
  static ServiceMetrics metrics = [] {
    MetricsRegistry* registry = MetricsRegistry::Global();
    return ServiceMetrics{
        registry->GetHistogram("amdj_service_admission_wait_ns", "",
                               "Time a request spent queued before a worker "
                               "picked it up"),
        registry->GetGauge("amdj_service_inflight_queries", "",
                           "Queries currently executing"),
        registry->GetGauge("amdj_service_queued_queries", "",
                           "Requests admitted but not yet started"),
        registry->GetCounter("amdj_service_requests_total",
                             "outcome=\"accepted\"",
                             "Requests by admission outcome"),
        registry->GetCounter("amdj_service_requests_total",
                             "outcome=\"rejected\"",
                             "Requests by admission outcome"),
        registry->GetCounter("amdj_service_completed_total", "",
                             "Requests finished (any status)"),
        registry->GetCounter("amdj_service_slow_queries_total", "",
                             "Queries past the slow_query_seconds threshold"),
        registry->GetCounter("amdj_service_shared_hits_total",
                             "kind=\"inflight\"",
                             "Responses served by the shared-work layer"),
        registry->GetCounter("amdj_service_shared_hits_total",
                             "kind=\"cache\"",
                             "Responses served by the shared-work layer"),
        registry->GetCounter("amdj_service_shared_seeds_total", "",
                             "Runs whose initial eDmax was seeded from an "
                             "observed Dmax"),
        registry->GetCounter("amdj_service_shared_misses_total", "",
                             "Shareable requests that found no shared work "
                             "and executed themselves"),
        registry->GetGauge("amdj_service_shared_cache_entries", "",
                           "Live entries in the semantic result cache"),
    };
  }();
  return metrics;
}

/// Per-algorithm end-to-end latency series. The label set is closed (the
/// two algorithm enums), so cardinality is bounded; the registry lookup is
/// one cold map access per completed query.
Histogram* QueryLatencyHistogram(const JoinRequest& request) {
  const char* algorithm = request.kind == JoinRequest::Kind::kKdj
                              ? core::ToString(request.kdj_algorithm)
                              : core::ToString(request.idj_algorithm);
  return MetricsRegistry::Global()->GetHistogram(
      "amdj_service_query_latency_ns",
      std::string("algorithm=\"") + algorithm + "\"",
      "End-to-end query latency (admission wait + execution)");
}

uint64_t SecondsToNanos(double seconds) {
  if (seconds <= 0.0) return 0;
  return static_cast<uint64_t>(seconds * 1e9);
}

double DurationSeconds(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  if (to <= from) return 0.0;
  return std::chrono::duration<double>(to - from).count();
}

std::future<JoinResponse> ReadyFuture(JoinResponse response) {
  std::promise<JoinResponse> promise;
  std::future<JoinResponse> future = promise.get_future();
  promise.set_value(std::move(response));
  return future;
}

}  // namespace

JoinService::JoinService(const rtree::RTree& r, const rtree::RTree& s,
                         const Options& options)
    : r_(r),
      s_(s),
      options_(options),
      max_inflight_(std::max<uint32_t>(1, options.max_inflight)),
      per_query_queue_memory_(std::max(
          kMinQueueMemoryBytes,
          options.queue_memory_budget_bytes / max_inflight_ /
              // Async spill I/O holds pages and prefetch buffers outside
              // the accounted in-memory tier (see Options doc): halve the
              // clamp so the total stays within the budget.
              (options.spill_io_threads > 0 ? 2 : 1))),
      shared_(std::make_unique<SharedWorkRegistry>(
          options.shared_cache_entries,
          GlobalServiceMetrics().shared_cache_entries)),
      pool_(std::make_unique<ThreadPool>(max_inflight_,
                                         options.name_prefix)) {
  if (options.spill_io_threads > 0) {
    io_pool_ = std::make_unique<ThreadPool>(options.spill_io_threads,
                                            options.name_prefix + "-io");
  }
  if (options.shards > 1) {
    options_.shard_threads = std::max<uint32_t>(1, options.shard_threads);
    shard_disk_ = std::make_unique<storage::InMemoryDiskManager>();
    shard_pool_ = std::make_unique<storage::BufferPool>(
        shard_disk_.get(), std::max<size_t>(64, options.shard_pool_pages));
    core::PartitionOptions part;
    part.shards = options.shards;
    auto build = [this, &part](const rtree::RTree& tree,
                               std::optional<core::Partition>* out) {
      auto part_or = core::Partition::FromTree(tree, shard_pool_.get(), part);
      if (!part_or.ok()) return part_or.status();
      *out = std::move(part_or).value();
      return Status::OK();
    };
    shard_init_ = build(r_, &r_partition_);
    if (shard_init_.ok()) shard_init_ = build(s_, &s_partition_);
  }
}

JoinService::~JoinService() {
  // Draining happens in the pool destructor; pool_ being the last member
  // would already order this correctly, but reset explicitly so the drain
  // is visible at the point the service dies.
  pool_.reset();
}

bool JoinService::Shardable(const JoinRequest& request) const {
  return options_.shards > 1 && request.kind == JoinRequest::Kind::kKdj &&
         (request.kdj_algorithm == core::KdjAlgorithm::kBKdj ||
          request.kdj_algorithm == core::KdjAlgorithm::kAmKdj);
}

core::JoinOptions JoinService::EffectiveOptions(
    const JoinRequest& request) const {
  core::JoinOptions effective = request.options;
  effective.queue_memory_bytes =
      std::min(effective.queue_memory_bytes, per_query_queue_memory_);
  if (Shardable(request)) {
    // Up to shard_threads per-pair queues live at once within this one
    // query; they share the query's admission budget.
    effective.queue_memory_bytes =
        std::max(kMinQueueMemoryBytes,
                 effective.queue_memory_bytes / options_.shard_threads);
  }
  // The session spill disk is per-execution; whatever the caller set is
  // replaced (a shared spill disk across concurrent queries would mix
  // their segments and outlive neither cleanly). Likewise the spill I/O
  // pool: the service's own (or none) — a caller-supplied pool could be
  // the query pool itself, which deadlocks (see Options).
  effective.queue_disk = nullptr;
  effective.spill_io_pool = nullptr;
  return effective;
}

std::future<JoinResponse> JoinService::Submit(JoinRequest request) {
  ServiceMetrics& metrics = GlobalServiceMetrics();
  const bool cache_on = options_.shared_cache_entries > 0;
  SharedWorkKeys keys;
  if (options_.dedupe_inflight || cache_on) {
    keys = ComputeSharedWorkKeys(request);
  }

  // 1. Semantic result cache: a completed run at k0 >= k answers this
  // request byte-identically from its prefix without touching the trees.
  // Cache hits bypass admission entirely (they cost no execution slot).
  if (cache_on && keys.cache_key.has_value()) {
    auto hit = shared_->CacheLookup(*keys.cache_key, request.k);
    if (hit.has_value()) {
      {
        const MutexLock lock(&mutex_);
        ++accepted_;
        ++completed_;
      }
      metrics.accepted->Increment();
      metrics.completed->Increment();
      metrics.shared_cache_hits->Increment();
      if (MetricsEnabled()) QueryLatencyHistogram(request)->Observe(0);
      JoinResponse response;
      response.results = std::move(hit->results);
      response.stats.shared_hit = 1;
      return ReadyFuture(std::move(response));
    }
  }

  // Admission: cap check + the accepted/queued transition, one critical
  // section so the snapshot identity holds. Runs either standalone (no
  // dedupe) or nested under the registry lock (lock order: registry ->
  // mutex_), where it makes lead-vs-reject one atomic step with the
  // membership check.
  const auto admit = [this] {
    const MutexLock lock(&mutex_);
    if (options_.max_queued > 0 && queued_ >= options_.max_queued) {
      ++rejected_;
      return false;
    }
    ++accepted_;
    ++queued_;
    return true;
  };
  const auto reject = [this, &metrics] {
    // Reject without blocking: the ready future is the backpressure
    // signal open-loop callers need — blocking here would turn the
    // admission queue into an unbounded hidden one at the caller.
    metrics.rejected->Increment();
    JoinResponse response;
    response.status = Status::ResourceExhausted(
        "join service admission queue is full (max_queued=" +
        std::to_string(options_.max_queued) + ")");
    return ReadyFuture(std::move(response));
  };

  // 2. In-flight dedupe: piggyback on a semantically identical execution
  // already admitted. Followers are admitted past max_queued — they cost
  // no execution slot, and rejecting a request the service is already
  // computing would be perverse.
  const bool leads = options_.dedupe_inflight && keys.exec_key.has_value();
  if (leads) {
    bool became_leader = false;
    auto piggy = shared_->JoinOrLead(
        *keys.exec_key, &became_leader, admit, [this] {
          const MutexLock lock(&mutex_);
          ++accepted_;
          ++queued_;
        });
    if (piggy.has_value()) {
      metrics.accepted->Increment();
      metrics.queued->Increment();
      metrics.shared_inflight_hits->Increment();
      return std::move(*piggy);
    }
    if (!became_leader) return reject();
    metrics.shared_misses->Increment();
  } else {
    if (!admit()) return reject();
    if (keys.exec_key.has_value()) {
      // Shareable but nothing to share with (cache miss, dedupe off).
      shared_->NoteMiss();
      metrics.shared_misses->Increment();
    }
  }
  metrics.accepted->Increment();
  metrics.queued->Increment();
  Timer queued;
  return pool_->Submit([this, request = std::move(request),
                        keys = std::move(keys), leads, queued] {
    ServiceMetrics& metrics = GlobalServiceMetrics();
    const double wait_seconds = queued.ElapsedSeconds();
    metrics.queued->Decrement();
    metrics.admission_wait_ns->Observe(SecondsToNanos(wait_seconds));
    {
      const MutexLock lock(&mutex_);
      --queued_;
      ++inflight_;
      peak_inflight_ = std::max(peak_inflight_, inflight_);
    }
    if (leads) shared_->NoteExecutionStart(*keys.exec_key);
    JoinResponse response;
    {
      const ScopedGauge inflight_gauge(metrics.inflight);
      response = Execute(request, wait_seconds, keys);
    }
    // Record the completed run before resolving followers, so a follow-up
    // submission racing the resolutions can already hit the cache.
    if (options_.shared_cache_entries > 0 && keys.cache_key.has_value() &&
        response.status.ok() &&
        request.kind == JoinRequest::Kind::kKdj) {
      if (!response.results.empty()) {
        const bool exhaustive = response.results.size() < request.k;
        shared_->RecordDmax(
            *keys.seed_key, response.results.size(),
            geom::DistVal(response.results.back().distance), exhaustive);
      }
      shared_->CacheInsert(*keys.cache_key, request.k, response.results);
    }
    if (leads) ResolveFollowers(request, *keys.exec_key, response);
    {
      const MutexLock lock(&mutex_);
      --inflight_;
      ++completed_;
    }
    metrics.completed->Increment();
    if (MetricsEnabled()) {
      QueryLatencyHistogram(request)->Observe(
          SecondsToNanos(wait_seconds + response.exec_seconds));
    }
    return response;
  });
}

void JoinService::ResolveFollowers(const JoinRequest& request,
                                   const std::string& exec_key,
                                   const JoinResponse& response) {
  SharedWorkRegistry::FollowerGroup group = shared_->FinishExecution(exec_key);
  if (group.followers.empty()) return;
  ServiceMetrics& metrics = GlobalServiceMetrics();
  const auto now = std::chrono::steady_clock::now();
  {
    const MutexLock lock(&mutex_);
    queued_ -= static_cast<uint32_t>(group.followers.size());
    completed_ += group.followers.size();
  }
  for (SharedWorkRegistry::Follower& follower : group.followers) {
    JoinResponse copy = response;
    copy.stats.shared_hit = 1;
    // Attribution mirrors a solo run's wait/exec split: time before the
    // leader started executing was this follower's queue wait; time the
    // follower overlapped with the execution is its exec time.
    if (group.exec_started) {
      copy.wait_seconds =
          DurationSeconds(follower.submit_time, group.exec_start);
      copy.exec_seconds = DurationSeconds(
          std::max(follower.submit_time, group.exec_start), now);
    } else {
      copy.wait_seconds = 0.0;
      copy.exec_seconds = DurationSeconds(follower.submit_time, now);
    }
    metrics.queued->Decrement();
    metrics.admission_wait_ns->Observe(SecondsToNanos(copy.wait_seconds));
    metrics.completed->Increment();
    if (MetricsEnabled()) {
      QueryLatencyHistogram(request)->Observe(
          SecondsToNanos(copy.wait_seconds + copy.exec_seconds));
    }
    follower.promise.set_value(std::move(copy));
  }
}

JoinResponse JoinService::Execute(const JoinRequest& request,
                                  double wait_seconds,
                                  const SharedWorkKeys& keys) {
  JoinResponse response;
  response.wait_seconds = wait_seconds;

  core::JoinOptions options = EffectiveOptions(request);
  // Learned eDmax seed: consult the observed-Dmax table before the
  // Eq. 3-5 estimator. Upper-bound hint only (JoinOptions::edmax_seed) —
  // it stages the adaptive algorithms tighter but cannot change results.
  // Skipped for forced_edmax (figure benches force exact multiples),
  // caller-provided seeds, and sharded runs (per-pair subsets have their
  // own larger per-pair Dmax; the shard executor's pooled cutoff already
  // shares bounds across pairs live).
  if (options_.shared_cache_entries > 0 && keys.seed_key.has_value() &&
      !options.forced_edmax.has_value() && !options.edmax_seed.has_value() &&
      !Shardable(request)) {
    const core::DmaxEstimator fallback_estimator(
        r_.bounds(), r_.size(), s_.bounds(), s_.size(), options.metric);
    const core::CutoffEstimator* estimator =
        options.estimator != nullptr ? options.estimator
                                     : &fallback_estimator;
    const uint64_t target_k =
        request.kind == JoinRequest::Kind::kKdj
            ? request.k
            : std::max(options.idj_initial_k, request.k);
    auto seed = shared_->SeedFor(*keys.seed_key, target_k, *estimator);
    if (seed.has_value()) {
      options.edmax_seed = seed;
      GlobalServiceMetrics().shared_seeds->Increment();
    }
  }
  // Slow-query log: a query past the threshold dumps a full RunReport, so
  // when the request brought none the service attaches its own — the
  // phase/cutoff breakdown is exactly what a latency investigation needs
  // and is unrecoverable after the fact.
  RunReport slow_report;
  if (options_.slow_query_seconds > 0.0 && options.report == nullptr) {
    options.report = &slow_report;
  }
  // Session-scoped spill disk: this query's queue segments and sort runs
  // live (and die) with this execution — no sharing, no leak across
  // queries.
  storage::InMemoryDiskManager session_disk;
  if (options_.session_spill_disk) options.queue_disk = &session_disk;
  options.spill_io_pool = io_pool_.get();

  Timer exec;
  ExecuteRequest(request, options, &response);
  response.exec_seconds = exec.ElapsedSeconds();

  if (options_.slow_query_seconds > 0.0 &&
      wait_seconds + response.exec_seconds >= options_.slow_query_seconds) {
    GlobalServiceMetrics().slow_queries->Increment();
    const RunReport* report =
        request.options.report != nullptr ? request.options.report
                                          : &slow_report;
    AMDJ_LOG(kWarn) << "slow query: wait=" << wait_seconds
                    << "s exec=" << response.exec_seconds
                    << "s threshold=" << options_.slow_query_seconds
                    << "s report=" << report->ToJson();
  }
  return response;
}

void JoinService::ExecuteRequest(const JoinRequest& request,
                                 const core::JoinOptions& options,
                                 JoinResponse* out) {
  JoinResponse& response = *out;
  if (request.kind == JoinRequest::Kind::kKdj) {
    if (Shardable(request)) {
      if (!shard_init_.ok()) {
        response.status = shard_init_;
        return;
      }
      core::ShardedJoinOptions sharded;
      // The per-pair queue-memory division already happened in
      // EffectiveOptions (which is how callers reproduce the run).
      sharded.join = options;
      sharded.threads = options_.shard_threads;
      sharded.algorithm = request.kdj_algorithm;
      auto result = core::RunShardedKDistanceJoin(
          *r_partition_, *s_partition_, request.k, sharded, &response.stats);
      if (!result.ok()) {
        response.status = result.status();
        return;
      }
      response.results = std::move(*result);
      return;
    }
    auto result = core::RunKDistanceJoin(r_, s_, request.k,
                                         request.kdj_algorithm, options,
                                         &response.stats);
    if (!result.ok()) {
      response.status = result.status();
      return;
    }
    response.results = std::move(*result);
    return;
  }

  auto cursor = core::OpenIncrementalJoin(r_, s_, request.idj_algorithm,
                                          options, &response.stats);
  if (!cursor.ok()) {
    response.status = cursor.status();
    return;
  }
  (*cursor)->PrefetchHint(request.k);
  // `k` is caller-controlled; an unclamped reserve(UINT64_MAX) throws
  // std::length_error out of the worker, breaking the "future never
  // carries an exception" contract. The vector still grows to the true
  // result count past the clamp — this only caps the pre-allocation.
  response.results.reserve(static_cast<size_t>(
      std::min<uint64_t>(request.k, uint64_t{1} << 20)));
  for (uint64_t i = 0; i < request.k; ++i) {
    core::ResultPair pair;
    bool done = false;
    const Status status = (*cursor)->Next(&pair, &done);
    if (!status.ok()) {
      response.status = status;
      break;
    }
    if (done) break;
    response.results.push_back(pair);
  }
  // Destroy the cursor before returning: it quiesces the algorithm under
  // this query's attribution scope and finalizes any attached report, so
  // response.stats is complete once the future resolves.
  cursor->reset();
  return;
}

uint64_t JoinService::completed() const {
  const MutexLock lock(&mutex_);
  return completed_;
}

uint32_t JoinService::peak_inflight() const {
  const MutexLock lock(&mutex_);
  return peak_inflight_;
}

uint64_t JoinService::rejected() const {
  const MutexLock lock(&mutex_);
  return rejected_;
}

JoinService::AdmissionSnapshot JoinService::admission_snapshot() const {
  const MutexLock lock(&mutex_);
  AdmissionSnapshot snapshot;
  snapshot.accepted = accepted_;
  snapshot.completed = completed_;
  snapshot.rejected = rejected_;
  snapshot.inflight = inflight_;
  snapshot.queued = queued_;
  snapshot.peak_inflight = peak_inflight_;
  return snapshot;
}

uint64_t JoinService::shared_inflight_hits() const {
  return shared_->inflight_hits();
}

uint64_t JoinService::shared_cache_hits() const {
  return shared_->cache_hits();
}

uint64_t JoinService::shared_seed_hits() const {
  return shared_->seed_hits();
}

uint64_t JoinService::shared_misses() const { return shared_->misses(); }

size_t JoinService::shared_cache_size() const {
  return shared_->cache_size();
}

}  // namespace amdj::service

#ifndef AMDJ_SPATIALJOIN_SPATIAL_JOIN_H_
#define AMDJ_SPATIALJOIN_SPATIAL_JOIN_H_

#include <functional>

#include "common/stats.h"
#include "common/status.h"
#include "core/options.h"
#include "geom/units.h"
#include "core/pair_entry.h"
#include "rtree/rtree.h"

namespace amdj::spatialjoin {

/// R-tree spatial join (Brinkhoff, Kriegel & Seeger, SIGMOD'93) adapted
/// from the `intersect` to a `within(d)` predicate: synchronized top-down
/// traversal of both trees, with child-pair matching restricted by a plane
/// sweep so only pairs within axis distance d are considered. This is the
/// join half of the paper's SJ-SORT baseline.
class SpatialJoin {
 public:
  /// Invokes `emit` for every object pair with MinDistance <= dmax (under
  /// options.metric; options.sweep and options.exclude_same_id are also
  /// honored), in traversal (unsorted) order. A non-OK status from `emit`
  /// aborts the join and is returned. `stats` may be null.
  static Status Within(
      const rtree::RTree& r, const rtree::RTree& s, geom::DistVal dmax,
      const core::JoinOptions& options, JoinStats* stats,
      const std::function<Status(const core::ResultPair&)>& emit);
};

}  // namespace amdj::spatialjoin

#endif  // AMDJ_SPATIALJOIN_SPATIAL_JOIN_H_

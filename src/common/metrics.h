#ifndef AMDJ_COMMON_METRICS_H_
#define AMDJ_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace amdj {

/// Live metrics layer: a process-wide registry of counters, gauges and
/// latency histograms that a long-running JoinService can expose *while*
/// queries execute — the always-on complement to the one-shot, per-query
/// Tracer/RunReport pair (see docs/OBSERVABILITY.md).
///
/// Design contract, in order of importance:
///
///   1. *Never* changes join results. Metrics observe; they are not
///      consulted by any algorithm. Guarded by the metrics-on == metrics-off
///      byte-identity test in metrics_test.cc.
///   2. Cheap enough to leave compiled in: the update hot paths are
///      lock-free (per-thread-sharded relaxed atomics for counters/gauges,
///      one relaxed fetch_add into a log bucket for histograms), and a
///      single relaxed bool load short-circuits everything when metrics
///      are disabled (AMDJ_METRICS=0). The <2% wall budget on fig10/fig11
///      is enforced by scripts/check_bench_regression.py in CI.
///   3. Reads are exact-at-a-point: Value()/TakeSnapshot() aggregate the
///      shards on demand. Registration (rare) locks an amdj::Mutex; metric
///      pointers returned by the registry are stable for the process
///      lifetime, so call sites resolve them once and cache.
///
/// Naming scheme (enforced by convention, documented in
/// docs/OBSERVABILITY.md): `amdj_<component>_<what>[_<unit>]`, labels only
/// from small closed sets (algorithm, stage, pool name) — never query ids,
/// object ids or anything unbounded.

namespace metrics_internal {

/// Shard count for per-thread striping (power of two). 16 slots keeps a
/// Counter at one KiB while making same-cache-line contention between two
/// running queries unlikely.
inline constexpr size_t kShards = 16;

struct alignas(64) PaddedU64 {
  std::atomic<uint64_t> v{0};
};
struct alignas(64) PaddedI64 {
  std::atomic<int64_t> v{0};
};

extern std::atomic<bool> g_enabled;
extern std::atomic<size_t> g_next_thread_slot;

/// Stable per-thread shard index in [0, kShards): threads are assigned
/// round-robin on first use, so two long-lived workers almost never share
/// a slot.
inline size_t ThisThreadShard() {
  thread_local const size_t slot =
      g_next_thread_slot.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

}  // namespace metrics_internal

/// Global on/off switch. Defaults to on; the environment variable
/// AMDJ_METRICS=0 (or "false"/"off") disables it at process start — the
/// knob the overhead A/B benchmark runs flip. A relaxed load: toggling
/// mid-flight is safe but gauges incremented while on and decremented
/// while off (or vice versa) will drift, so tests that toggle should use
/// fresh metric objects or tolerate skew.
inline bool MetricsEnabled() {
  return metrics_internal::g_enabled.load(std::memory_order_relaxed);
}
void SetMetricsEnabled(bool enabled);

/// Steady-clock nanoseconds since an arbitrary epoch (histogram unit).
inline uint64_t MetricsNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonically increasing event count. Lock-free: each thread adds into
/// its own cache-line-padded shard; Value() sums the shards.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    if (!MetricsEnabled()) return;
    shards_[metrics_internal::ThisThreadShard()].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  metrics_internal::PaddedU64 shards_[metrics_internal::kShards];
};

/// Instantaneous signed level (in-flight queries, queue depth, live shard
/// pairs). Same sharded representation as Counter; the level is the sum of
/// per-shard deltas, so Add/Sub from any thread balance globally.
class Gauge {
 public:
  void Add(int64_t n) {
    if (!MetricsEnabled()) return;
    shards_[metrics_internal::ThisThreadShard()].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  void Decrement() { Add(-1); }

  int64_t Value() const {
    int64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  friend class MetricsRegistry;
  friend class ScopedGauge;
  Gauge() = default;
  metrics_internal::PaddedI64 shards_[metrics_internal::kShards];
};

/// Increments `gauge` for the enclosing scope — but only pairs the
/// decrement with an increment that actually happened, so a mid-scope
/// toggle of the global flag cannot leave the gauge skewed.
class ScopedGauge {
 public:
  explicit ScopedGauge(Gauge* gauge) : gauge_(gauge) {
    if (gauge_ != nullptr && MetricsEnabled()) {
      gauge_->Add(1);
    } else {
      gauge_ = nullptr;
    }
  }
  ~ScopedGauge() {
    // Bypass the enabled check: the increment happened, the decrement must.
    if (gauge_ != nullptr) {
      gauge_->shards_[metrics_internal::ThisThreadShard()].v.fetch_add(
          -1, std::memory_order_relaxed);
    }
  }

  ScopedGauge(const ScopedGauge&) = delete;
  ScopedGauge& operator=(const ScopedGauge&) = delete;

 private:
  Gauge* gauge_;
};

/// Log-bucketed histogram of uint64 values (canonically nanoseconds).
///
/// Bucketing: values 0..15 get exact unit buckets; from 16 up, each
/// power-of-two octave is split into 16 linear sub-buckets. A bucket's
/// width is therefore at most 1/16 of its lower bound, so the percentile
/// read off the bucket midpoint carries a bounded relative error of
/// 1/32 ≈ 3.2% (verified against exact sorted-sample percentiles by the
/// randomized differential test in metrics_test.cc).
///
/// Updates are one relaxed fetch_add on the value's bucket plus one on a
/// per-thread sum shard — lock-free, no allocation. Snapshots copy the
/// bucket array with relaxed loads; a snapshot taken mid-update is a valid
/// (slightly stale) distribution, never a torn one.
class Histogram {
 public:
  static constexpr int kSubBits = 4;  ///< 16 sub-buckets per octave.
  /// Buckets 0..15 exact, then 16 per octave for octaves 4..63.
  static constexpr size_t kNumBuckets = 16 + (64 - kSubBits) * 16;

  void Observe(uint64_t value) {
    if (!MetricsEnabled()) return;
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_shards_[metrics_internal::ThisThreadShard()].v.fetch_add(
        value, std::memory_order_relaxed);
  }

  /// Point-in-time copy of the distribution with exact rank-based
  /// percentile extraction over the bucket boundaries.
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    std::vector<uint64_t> buckets;  ///< kNumBuckets counts.

    /// Value at quantile q in [0, 1]: walks the buckets to the exact rank
    /// ceil(q * count) and returns that bucket's midpoint. 0 when empty.
    double Percentile(double q) const;
    /// Upper edge of the highest non-empty bucket (an upper bound on the
    /// maximum observed value). 0 when empty.
    uint64_t MaxUpperBound() const;
  };

  Snapshot TakeSnapshot() const;
  uint64_t Count() const { return TakeSnapshot().count; }

  /// Bucket geometry (exposed for tests and exposition).
  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketLowerBound(size_t index);
  static uint64_t BucketWidth(size_t index);

 private:
  friend class MetricsRegistry;
  Histogram() = default;
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  metrics_internal::PaddedU64 sum_shards_[metrics_internal::kShards];
};

/// Records the scope's wall time (steady clock, nanoseconds) into a
/// histogram on destruction. A null histogram or disabled metrics makes
/// construction and destruction each a single branch.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr && MetricsEnabled()) {
      start_ = MetricsNowNanos();
    } else {
      histogram_ = nullptr;
    }
  }
  ~ScopedLatencyTimer() {
    if (histogram_ != nullptr) {
      histogram_->Observe(MetricsNowNanos() - start_);
    }
  }

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* histogram_;
  uint64_t start_ = 0;
};

/// Owner and name directory of every metric. Get* registers on first use
/// (under an amdj::Mutex — registration is rare and cold) and returns a
/// pointer that stays valid for the registry's lifetime; call sites cache
/// it. Identity is (name, labels): two call sites asking for the same pair
/// share one metric.
///
/// `labels` is a raw Prometheus label-pair string without braces, e.g.
/// `algorithm="am-kdj"` or `stage="probe",phase="0"` — empty for none.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrumentation point uses.
  /// Tests build private registries to stay isolated.
  static MetricsRegistry* Global();

  Counter* GetCounter(const std::string& name, const std::string& labels = "",
                      const std::string& help = "") AMDJ_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, const std::string& labels = "",
                  const std::string& help = "") AMDJ_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name,
                          const std::string& labels = "",
                          const std::string& help = "") AMDJ_EXCLUDES(mu_);

  /// Prometheus text exposition format. Counters and gauges verbatim;
  /// histograms as summaries (quantile label, `_sum`, `_count`) — the
  /// bucket array is too fine to ship, the quantiles are what dashboards
  /// want and they are computed exactly here, not downstream.
  std::string ToPrometheusText() const AMDJ_EXCLUDES(mu_);

  /// One JSON object (schema "amdj-metrics-v1"): counters, gauges, and
  /// histograms with count/sum/p50/p95/p99/p999/max_le.
  std::string ToJson() const AMDJ_EXCLUDES(mu_);

 private:
  struct Key {
    std::string name;
    std::string labels;
    bool operator<(const Key& o) const {
      if (name != o.name) return name < o.name;
      return labels < o.labels;
    }
  };
  template <typename T>
  struct Entry {
    std::unique_ptr<T> metric;
    std::string help;
  };

  mutable Mutex mu_;
  std::map<Key, Entry<Counter>> counters_ AMDJ_GUARDED_BY(mu_);
  std::map<Key, Entry<Gauge>> gauges_ AMDJ_GUARDED_BY(mu_);
  std::map<Key, Entry<Histogram>> histograms_ AMDJ_GUARDED_BY(mu_);
};

}  // namespace amdj

#endif  // AMDJ_COMMON_METRICS_H_

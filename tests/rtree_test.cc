#include "rtree/rtree.h"

#include <algorithm>
#include <cstring>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "rtree/node.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace amdj::rtree {
namespace {

using geom::Point;
using geom::Rect;

class RTreeTest : public ::testing::Test {
 protected:
  RTreeTest() : pool_(&disk_, 256) {}

  std::unique_ptr<RTree> MakeTree(uint32_t max_entries = 16) {
    RTree::Options opts;
    opts.max_entries = max_entries;
    auto tree = RTree::Create(&pool_, opts);
    EXPECT_TRUE(tree.ok()) << tree.status().ToString();
    return std::move(*tree);
  }

  static std::vector<Entry> RandomRects(uint64_t n, uint64_t seed,
                                        double extent = 1000.0,
                                        double max_side = 10.0) {
    Random rng(seed);
    std::vector<Entry> entries;
    entries.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      const double x = rng.Uniform(0, extent);
      const double y = rng.Uniform(0, extent);
      const double w = rng.Uniform(0, max_side);
      const double h = rng.Uniform(0, max_side);
      entries.emplace_back(Rect(x, y, x + w, y + h),
                           static_cast<uint32_t>(i));
    }
    return entries;
  }

  storage::InMemoryDiskManager disk_;
  storage::BufferPool pool_;
};

TEST_F(RTreeTest, NodeSerializationRoundTrip) {
  Node node;
  node.level = 3;
  for (uint32_t i = 0; i < kMaxEntriesPerPage; ++i) {
    node.entries.emplace_back(Rect(i, i * 2.0, i + 1.0, i * 2.0 + 1.0), i);
  }
  char page[storage::kPageSize];
  node.Serialize(page);
  Node decoded;
  ASSERT_TRUE(Node::Deserialize(page, &decoded).ok());
  EXPECT_EQ(decoded.level, 3);
  ASSERT_EQ(decoded.entries.size(), node.entries.size());
  for (size_t i = 0; i < node.entries.size(); ++i) {
    EXPECT_EQ(decoded.entries[i].rect, node.entries[i].rect);
    EXPECT_EQ(decoded.entries[i].id, node.entries[i].id);
  }
}

TEST_F(RTreeTest, DeserializeRejectsImpossibleCount) {
  char page[storage::kPageSize] = {};
  const uint16_t bogus = kMaxEntriesPerPage + 1;
  std::memcpy(page + 2, &bogus, sizeof(bogus));
  Node node;
  EXPECT_EQ(Node::Deserialize(page, &node).code(), StatusCode::kCorruption);
}

TEST_F(RTreeTest, PageCapacityMatchesLayout) {
  // 4 KB page, 8-byte header, 36-byte entries -> 113.
  EXPECT_EQ(kMaxEntriesPerPage, 113u);
}

TEST_F(RTreeTest, EmptyTreeBasics) {
  auto tree = MakeTree();
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_EQ(tree->height(), 1u);
  EXPECT_TRUE(tree->Validate().ok());
  auto hits = tree->RangeQuery(Rect(0, 0, 100, 100));
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST_F(RTreeTest, InsertRejectsInvalidRect) {
  auto tree = MakeTree();
  Rect bad(5, 5, 1, 1);
  EXPECT_EQ(tree->Insert(bad, 0).code(), StatusCode::kInvalidArgument);
}

TEST_F(RTreeTest, SingleInsertIsQueryable) {
  auto tree = MakeTree();
  ASSERT_TRUE(tree->Insert(Rect(5, 5, 6, 6), 42).ok());
  EXPECT_EQ(tree->size(), 1u);
  auto hits = tree->RangeQuery(Rect(0, 0, 10, 10));
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].id, 42u);
  EXPECT_TRUE(tree->Validate().ok());
}

TEST_F(RTreeTest, ManyInsertsStayValidAndComplete) {
  auto tree = MakeTree(8);  // tiny fanout -> deep tree, many splits
  const auto entries = RandomRects(2000, 7);
  for (const Entry& e : entries) {
    ASSERT_TRUE(tree->Insert(e.rect, e.id).ok());
  }
  EXPECT_EQ(tree->size(), 2000u);
  EXPECT_GE(tree->height(), 3u);
  ASSERT_TRUE(tree->Validate().ok()) << tree->Validate().ToString();

  // Every object is reachable.
  std::set<uint32_t> seen;
  ASSERT_TRUE(
      tree->ForEachObject([&](const Entry& e) { seen.insert(e.id); }).ok());
  EXPECT_EQ(seen.size(), 2000u);
}

TEST_F(RTreeTest, RangeQueryMatchesBruteForce) {
  auto tree = MakeTree(12);
  const auto entries = RandomRects(1500, 99);
  for (const Entry& e : entries) ASSERT_TRUE(tree->Insert(e.rect, e.id).ok());
  Random rng(5);
  for (int q = 0; q < 50; ++q) {
    const double x = rng.Uniform(0, 1000);
    const double y = rng.Uniform(0, 1000);
    const Rect query(x, y, x + rng.Uniform(0, 200), y + rng.Uniform(0, 200));
    std::set<uint32_t> expected;
    for (const Entry& e : entries) {
      if (e.rect.Intersects(query)) expected.insert(e.id);
    }
    auto hits = tree->RangeQuery(query);
    ASSERT_TRUE(hits.ok());
    std::set<uint32_t> actual;
    for (const Entry& e : *hits) actual.insert(e.id);
    EXPECT_EQ(actual, expected) << "query " << query.ToString();
  }
}

TEST_F(RTreeTest, BulkLoadMatchesBruteForce) {
  auto tree = MakeTree(16);
  const auto entries = RandomRects(3000, 123);
  ASSERT_TRUE(tree->BulkLoad(entries).ok());
  EXPECT_EQ(tree->size(), 3000u);
  ASSERT_TRUE(tree->Validate().ok()) << tree->Validate().ToString();
  Random rng(6);
  for (int q = 0; q < 30; ++q) {
    const double x = rng.Uniform(0, 1000);
    const double y = rng.Uniform(0, 1000);
    const Rect query(x, y, x + rng.Uniform(0, 150), y + rng.Uniform(0, 150));
    std::set<uint32_t> expected;
    for (const Entry& e : entries) {
      if (e.rect.Intersects(query)) expected.insert(e.id);
    }
    auto hits = tree->RangeQuery(query);
    ASSERT_TRUE(hits.ok());
    std::set<uint32_t> actual;
    for (const Entry& e : *hits) actual.insert(e.id);
    EXPECT_EQ(actual, expected);
  }
}

TEST_F(RTreeTest, BulkLoadEmptyAndTiny) {
  auto tree = MakeTree();
  ASSERT_TRUE(tree->BulkLoad({}).ok());
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_TRUE(tree->Validate().ok());

  auto tree2 = MakeTree();
  ASSERT_TRUE(tree2->BulkLoad({Entry(Rect(1, 1, 2, 2), 7)}).ok());
  EXPECT_EQ(tree2->size(), 1u);
  EXPECT_EQ(tree2->height(), 1u);
  EXPECT_TRUE(tree2->Validate().ok());
}

TEST_F(RTreeTest, BulkLoadRejectsBadFill) {
  auto tree = MakeTree();
  EXPECT_EQ(tree->BulkLoad(RandomRects(10, 1), 0.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(tree->BulkLoad(RandomRects(10, 1), 1.5).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RTreeTest, BulkLoadProducesCompactTree) {
  auto tree_bulk = MakeTree(64);
  auto tree_insert = MakeTree(64);
  const auto entries = RandomRects(5000, 77);
  ASSERT_TRUE(tree_bulk->BulkLoad(entries, 0.9).ok());
  for (const Entry& e : entries) {
    ASSERT_TRUE(tree_insert->Insert(e.rect, e.id).ok());
  }
  // STR packs tighter than repeated insertion.
  EXPECT_LE(tree_bulk->node_count(), tree_insert->node_count());
  EXPECT_LE(tree_bulk->height(), tree_insert->height());
}

TEST_F(RTreeTest, BoundsTrackInsertions) {
  auto tree = MakeTree();
  ASSERT_TRUE(tree->Insert(Rect(10, 10, 20, 20), 0).ok());
  ASSERT_TRUE(tree->Insert(Rect(-5, 30, 0, 40), 1).ok());
  EXPECT_EQ(tree->bounds(), Rect(-5, 10, 20, 40));
}

TEST_F(RTreeTest, OptionsValidation) {
  RTree::Options opts;
  opts.max_entries = 2;  // too small
  EXPECT_FALSE(RTree::Create(&pool_, opts).ok());
  opts.max_entries = kMaxEntriesPerPage + 1;  // does not fit a page
  EXPECT_FALSE(RTree::Create(&pool_, opts).ok());
  opts.max_entries = 16;
  opts.min_entries = 9;  // > max/2
  EXPECT_FALSE(RTree::Create(&pool_, opts).ok());
  opts.min_entries = 0;
  opts.reinsert_fraction = 0.7;
  EXPECT_FALSE(RTree::Create(&pool_, opts).ok());
}

TEST_F(RTreeTest, ForcedReinsertOffStillValid) {
  RTree::Options opts;
  opts.max_entries = 10;
  opts.forced_reinsert = false;
  auto tree = RTree::Create(&pool_, opts);
  ASSERT_TRUE(tree.ok());
  const auto entries = RandomRects(800, 11);
  for (const Entry& e : entries) {
    ASSERT_TRUE((*tree)->Insert(e.rect, e.id).ok());
  }
  EXPECT_TRUE((*tree)->Validate().ok());
  EXPECT_EQ((*tree)->size(), 800u);
}

TEST_F(RTreeTest, DuplicateRectsAreAllRetained) {
  auto tree = MakeTree(8);
  const Rect r(5, 5, 6, 6);
  for (uint32_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree->Insert(r, i).ok());
  }
  EXPECT_TRUE(tree->Validate().ok());
  auto hits = tree->RangeQuery(r);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 200u);
}

TEST_F(RTreeTest, PointDataWorks) {
  auto tree = MakeTree(10);
  Random rng(3);
  std::vector<Entry> entries;
  for (uint32_t i = 0; i < 1000; ++i) {
    const Point p(rng.Uniform(0, 100), rng.Uniform(0, 100));
    entries.emplace_back(Rect::FromPoint(p), i);
    ASSERT_TRUE(tree->Insert(entries.back().rect, i).ok());
  }
  EXPECT_TRUE(tree->Validate().ok());
  const Rect q(25, 25, 75, 75);
  size_t expected = 0;
  for (const Entry& e : entries) expected += e.rect.Intersects(q);
  auto hits = tree->RangeQuery(q);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), expected);
}

TEST_F(RTreeTest, ReadNodeExposesStructure) {
  auto tree = MakeTree(8);
  const auto entries = RandomRects(300, 42);
  ASSERT_TRUE(tree->BulkLoad(entries).ok());
  Node root;
  ASSERT_TRUE(tree->ReadNode(tree->root(), &root).ok());
  EXPECT_EQ(root.level, tree->height() - 1);
  EXPECT_FALSE(root.entries.empty());
  // Every child MBR is contained in the root MBR.
  const Rect root_mbr = root.ComputeMbr();
  for (const Entry& e : root.entries) {
    EXPECT_TRUE(root_mbr.Contains(e.rect));
  }
  EXPECT_EQ(root_mbr, tree->bounds());
}

// Parameterized sweep: structural invariants hold across fanouts and sizes.
class RTreeParamTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(RTreeParamTest, InsertBuildInvariants) {
  const auto [fanout, n] = GetParam();
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 128);
  RTree::Options opts;
  opts.max_entries = fanout;
  auto tree = RTree::Create(&pool, opts);
  ASSERT_TRUE(tree.ok());
  Random rng(fanout * 1000 + n);
  for (uint64_t i = 0; i < n; ++i) {
    const double x = rng.Uniform(0, 500);
    const double y = rng.Uniform(0, 500);
    ASSERT_TRUE((*tree)
                    ->Insert(Rect(x, y, x + rng.Uniform(0, 5),
                                  y + rng.Uniform(0, 5)),
                             static_cast<uint32_t>(i))
                    .ok());
  }
  EXPECT_TRUE((*tree)->Validate().ok()) << (*tree)->Validate().ToString();
  EXPECT_EQ((*tree)->size(), n);
}

INSTANTIATE_TEST_SUITE_P(
    FanoutsAndSizes, RTreeParamTest,
    ::testing::Combine(::testing::Values(4u, 8u, 16u, 50u, 113u),
                       ::testing::Values(uint64_t{1}, uint64_t{50},
                                         uint64_t{500})));

}  // namespace
}  // namespace amdj::rtree

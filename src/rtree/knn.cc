#include "rtree/knn.h"

#include "rtree/node.h"

namespace amdj::rtree {

NearestNeighborCursor::NearestNeighborCursor(const RTree& tree,
                                             const geom::Rect& query,
                                             geom::Metric metric)
    : tree_(tree), query_(query), metric_(metric) {}

NearestNeighborCursor::NearestNeighborCursor(const RTree& tree,
                                             const geom::Point& query,
                                             geom::Metric metric)
    : NearestNeighborCursor(tree, geom::Rect::FromPoint(query), metric) {}

Status NearestNeighborCursor::Next(Entry* out, geom::DistVal* distance,
                                   bool* done) {
  *done = false;
  if (!primed_) {
    primed_ = true;
    if (tree_.size() > 0) {
      heap_.push(Item{geom::MinDistance(query_, tree_.bounds(), metric_),
                      false, Entry(tree_.bounds(), tree_.root())});
    }
  }
  Node node;
  while (!heap_.empty()) {
    const Item item = heap_.top();
    heap_.pop();
    if (item.is_object) {
      *out = item.entry;
      *distance = item.distance;
      return Status::OK();
    }
    AMDJ_RETURN_IF_ERROR(tree_.ReadNode(item.entry.id, &node));
    for (const Entry& e : node.entries) {
      heap_.push(
          Item{geom::MinDistance(query_, e.rect, metric_), node.IsLeaf(), e});
    }
  }
  *done = true;
  return Status::OK();
}

StatusOr<std::vector<Entry>> NearestNeighbors(const RTree& tree,
                                              const geom::Point& query,
                                              size_t k, geom::Metric metric) {
  return NearestNeighbors(tree, geom::Rect::FromPoint(query), k, metric);
}

StatusOr<std::vector<Entry>> NearestNeighbors(const RTree& tree,
                                              const geom::Rect& query,
                                              size_t k, geom::Metric metric) {
  std::vector<Entry> results;
  NearestNeighborCursor cursor(tree, query, metric);
  Entry entry;
  geom::DistVal distance = geom::DistVal::Zero();
  bool done = false;
  while (results.size() < k) {
    AMDJ_RETURN_IF_ERROR(cursor.Next(&entry, &distance, &done));
    if (done) break;
    results.push_back(entry);
  }
  return results;
}

}  // namespace amdj::rtree

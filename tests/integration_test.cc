// Whole-system integration: file-backed storage, realistic TIGER-like
// workloads, the full umbrella API, and cross-algorithm agreement at a
// scale where trees are several levels deep and queues spill.

#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/distance_join.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

namespace amdj {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test-case file names: ctest runs cases of this suite as
    // concurrent processes, which must not share backing files.
    const std::string tag =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    const std::string dir = ::testing::TempDir();
    tree_disk_ = std::make_unique<storage::FileDiskManager>(
        dir + "/amdj_it_" + tag + "_tree.db");
    queue_disk_ = std::make_unique<storage::FileDiskManager>(
        dir + "/amdj_it_" + tag + "_queue.db");
    ASSERT_TRUE(tree_disk_->Ok());
    ASSERT_TRUE(queue_disk_->Ok());
    // 128 KB of R-tree buffer: far smaller than the trees.
    pool_ = std::make_unique<storage::BufferPool>(tree_disk_.get(), 32);

    workload::TigerSynthOptions wopts;
    wopts.street_segments = 12000;
    wopts.hydro_objects = 4000;
    wopts.towns = 12;
    streets_data_ = workload::TigerStreets(wopts);
    hydro_data_ = workload::TigerHydro(wopts);

    rtree::RTree::Options topts;  // full 113 fanout
    streets_ = std::move(*rtree::RTree::Create(pool_.get(), topts));
    hydro_ = std::move(*rtree::RTree::Create(pool_.get(), topts));
    ASSERT_TRUE(streets_->BulkLoad(streets_data_.ToEntries()).ok());
    ASSERT_TRUE(hydro_->BulkLoad(hydro_data_.ToEntries()).ok());
    ASSERT_TRUE(streets_->Validate().ok());
    ASSERT_TRUE(hydro_->Validate().ok());
  }

  core::JoinOptions Options() {
    core::JoinOptions o;
    o.queue_disk = queue_disk_.get();
    o.queue_memory_bytes = 64 * 1024;
    return o;
  }

  std::unique_ptr<storage::FileDiskManager> tree_disk_;
  std::unique_ptr<storage::FileDiskManager> queue_disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  workload::Dataset streets_data_;
  workload::Dataset hydro_data_;
  std::unique_ptr<rtree::RTree> streets_;
  std::unique_ptr<rtree::RTree> hydro_;
};

TEST_F(IntegrationTest, AllKdjAlgorithmsAgreeAtScaleOnFileBackedTrees) {
  const uint64_t k = 3000;
  std::vector<double> reference;
  for (const auto algorithm :
       {core::KdjAlgorithm::kBKdj, core::KdjAlgorithm::kHsKdj,
        core::KdjAlgorithm::kAmKdj, core::KdjAlgorithm::kSjSort}) {
    ASSERT_TRUE(pool_->Clear().ok());
    JoinStats stats;
    auto result = core::RunKDistanceJoin(*streets_, *hydro_, k, algorithm,
                                         Options(), &stats);
    ASSERT_TRUE(result.ok()) << core::ToString(algorithm);
    ASSERT_EQ(result->size(), k) << core::ToString(algorithm);
    EXPECT_GT(stats.node_accesses, 0u);
    EXPECT_GT(stats.cpu_seconds, 0.0);
    if (reference.empty()) {
      for (const auto& p : *result) reference.push_back(p.distance);
    } else {
      for (size_t i = 0; i < k; ++i) {
        ASSERT_NEAR((*result)[i].distance, reference[i], 1e-9)
            << core::ToString(algorithm) << " rank " << i;
      }
    }
  }
}

TEST_F(IntegrationTest, IncrementalMatchesBatchAtScale) {
  const uint64_t k = 2000;
  auto batch = core::RunKDistanceJoin(*streets_, *hydro_, k,
                                      core::KdjAlgorithm::kBKdj, Options(),
                                      nullptr);
  ASSERT_TRUE(batch.ok());
  for (const auto algorithm :
       {core::IdjAlgorithm::kHsIdj, core::IdjAlgorithm::kAmIdj}) {
    ASSERT_TRUE(pool_->Clear().ok());
    auto cursor = core::OpenIncrementalJoin(*streets_, *hydro_, algorithm,
                                            Options(), nullptr);
    ASSERT_TRUE(cursor.ok());
    core::ResultPair pair;
    bool done = false;
    for (uint64_t i = 0; i < k; ++i) {
      ASSERT_TRUE((*cursor)->Next(&pair, &done).ok());
      ASSERT_FALSE(done);
      ASSERT_NEAR(pair.distance, (*batch)[i].distance, 1e-9)
          << core::ToString(algorithm) << " rank " << i;
    }
  }
}

TEST_F(IntegrationTest, QueueSpillsAndCostModelCharges) {
  ASSERT_TRUE(pool_->Clear().ok());
  const storage::DiskStats before_q = queue_disk_->stats();
  const storage::DiskStats before_t = tree_disk_->stats();
  JoinStats stats;
  core::JoinOptions o = Options();
  o.queue_memory_bytes = 4 * 1024;  // minuscule: heavy spill traffic
  auto result = core::RunKDistanceJoin(*streets_, *hydro_, 5000,
                                       core::KdjAlgorithm::kBKdj, o, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(stats.queue_page_writes, 0u);
  EXPECT_GT(stats.queue_splits, 0u);
  const core::CostModel model;
  const double io_seconds =
      model.Seconds(core::CostModel::Delta(before_q, queue_disk_->stats())) +
      model.Seconds(core::CostModel::Delta(before_t, tree_disk_->stats()));
  EXPECT_GT(io_seconds, 0.0);
}

TEST_F(IntegrationTest, BufferSizeChangesIoNotResults) {
  const uint64_t k = 1500;
  ASSERT_TRUE(pool_->Clear().ok());
  JoinStats small_stats;
  auto small = core::RunKDistanceJoin(*streets_, *hydro_, k,
                                      core::KdjAlgorithm::kAmKdj, Options(),
                                      &small_stats);
  ASSERT_TRUE(small.ok());

  // Rebuild with a big buffer on the same disk contents.
  storage::BufferPool big_pool(tree_disk_.get(), 4096);
  // The trees reference pool_; build fresh tree handles over the same
  // pages is not supported, so instead enlarge by swapping pools is not
  // possible — re-run with the same pool but warmed cache instead:
  JoinStats warm_stats;
  auto warm = core::RunKDistanceJoin(*streets_, *hydro_, k,
                                     core::KdjAlgorithm::kAmKdj, Options(),
                                     &warm_stats);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(small->size(), warm->size());
  for (size_t i = 0; i < small->size(); ++i) {
    EXPECT_NEAR((*small)[i].distance, (*warm)[i].distance, 1e-9);
  }
  // The warmed run hits the buffer more.
  EXPECT_GT(warm_stats.node_buffer_hits, small_stats.node_buffer_hits / 2);
  EXPECT_LE(warm_stats.node_disk_reads, small_stats.node_disk_reads);
}

TEST_F(IntegrationTest, TrueDmaxOracleIsConsistent) {
  const uint64_t k = 500;
  auto dmax = core::ComputeTrueDmax(*streets_, *hydro_, k, Options());
  ASSERT_TRUE(dmax.ok());
  auto result = core::RunKDistanceJoin(*streets_, *hydro_, k,
                                       core::KdjAlgorithm::kBKdj, Options(),
                                       nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->back().distance, *dmax, 1e-9);
}

}  // namespace
}  // namespace amdj

#ifndef AMDJ_RTREE_STR_BULK_LOADER_H_
#define AMDJ_RTREE_STR_BULK_LOADER_H_

#include <vector>

#include "common/status.h"
#include "rtree/entry.h"

namespace amdj::rtree {

class RTree;

/// Sort-Tile-Recursive bulk loading (Leutenegger et al., ICDE'97): sorts
/// objects by x-center into vertical slabs, each slab by y-center, and packs
/// nodes bottom-up. Produces well-clustered trees comparable to an R*-tree
/// built by repeated insertion, in O(n log n).
///
/// Note: loading *replaces* the tree's contents; pages of any previous
/// contents are abandoned (the library never reuses a tree after reloading,
/// so this simply wastes file space rather than risking stale buffer-pool
/// frames).
class StrBulkLoader {
 public:
  /// Does not take ownership.
  explicit StrBulkLoader(RTree* tree) : tree_(tree) {}

  /// Bulk loads `objects`. `fill` in (0, 1] scales node occupancy.
  Status Load(std::vector<Entry> objects, double fill);

 private:
  RTree* tree_;
};

}  // namespace amdj::rtree

#endif  // AMDJ_RTREE_STR_BULK_LOADER_H_

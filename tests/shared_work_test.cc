// SharedWork layer: in-flight dedupe, the semantic result cache, and the
// learned eDmax seed (service/shared_work.h). The load-bearing property
// throughout is byte-identity: every deduped or cached response must equal
// (values AND order) what a fresh solo execution of the same request would
// return — sharing is an optimization of *work*, never of *answers*.

#include <algorithm>
#include <future>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/run_report.h"
#include "common/trace.h"
#include "core/distance_join.h"
#include "core/dmax_estimator.h"
#include "service/join_service.h"
#include "service/shared_work.h"
#include "test_util.h"
#include "workload/generators.h"

namespace amdj {
namespace {

using service::ComputeSharedWorkKeys;
using service::JoinRequest;
using service::JoinResponse;
using service::JoinService;
using service::SharedWorkKeys;
using service::SharedWorkRegistry;

void ExpectSameResults(const std::vector<core::ResultPair>& got,
                       const std::vector<core::ResultPair>& want,
                       const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << label << " pair " << i;
  }
}

// --- key canonicalization ---

TEST(SharedWorkKeysTest, IdenticalRequestsShareOneExecKey) {
  JoinRequest a;
  a.k = 500;
  JoinRequest b = a;
  const SharedWorkKeys ka = ComputeSharedWorkKeys(a);
  const SharedWorkKeys kb = ComputeSharedWorkKeys(b);
  ASSERT_TRUE(ka.exec_key.has_value());
  EXPECT_EQ(*ka.exec_key, *kb.exec_key);
  ASSERT_TRUE(ka.cache_key.has_value());
  EXPECT_EQ(*ka.cache_key, *kb.cache_key);
}

TEST(SharedWorkKeysTest, SemanticKnobsSeparateKeys) {
  JoinRequest base;
  base.k = 500;
  const std::string base_key = *ComputeSharedWorkKeys(base).exec_key;

  JoinRequest different_k = base;
  different_k.k = 501;
  EXPECT_NE(*ComputeSharedWorkKeys(different_k).exec_key, base_key);

  JoinRequest different_algo = base;
  different_algo.kdj_algorithm = core::KdjAlgorithm::kBKdj;
  EXPECT_NE(*ComputeSharedWorkKeys(different_algo).exec_key, base_key);

  JoinRequest different_metric = base;
  different_metric.options.metric = geom::Metric::kL1;
  EXPECT_NE(*ComputeSharedWorkKeys(different_metric).exec_key, base_key);

  JoinRequest different_tie = base;
  different_tie.options.tie_break = core::TieBreak::kDistanceOnly;
  EXPECT_NE(*ComputeSharedWorkKeys(different_tie).exec_key, base_key);

  JoinRequest windowed = base;
  windowed.options.r_window = geom::Rect(0, 0, 10, 10);
  EXPECT_NE(*ComputeSharedWorkKeys(windowed).exec_key, base_key);

  JoinRequest idj = base;
  idj.kind = JoinRequest::Kind::kIdj;
  EXPECT_NE(*ComputeSharedWorkKeys(idj).exec_key, base_key);
  // IDJ runs stream; only KDJ results enter the cache.
  EXPECT_FALSE(ComputeSharedWorkKeys(idj).cache_key.has_value());
}

TEST(SharedWorkKeysTest, SpillKnobsDoNotSeparateKeys) {
  // Spilling changes where the queue lives, never what the join returns —
  // and the service overrides these anyway.
  JoinRequest a;
  JoinRequest b;
  b.options.queue_memory_bytes = a.options.queue_memory_bytes * 2;
  EXPECT_EQ(*ComputeSharedWorkKeys(a).exec_key,
            *ComputeSharedWorkKeys(b).exec_key);
}

TEST(SharedWorkKeysTest, ObserverRequestsAreNeverShared) {
  Tracer tracer;
  JoinRequest traced;
  traced.options.tracer = &tracer;
  EXPECT_FALSE(ComputeSharedWorkKeys(traced).exec_key.has_value());
  EXPECT_FALSE(ComputeSharedWorkKeys(traced).cache_key.has_value());
  EXPECT_FALSE(ComputeSharedWorkKeys(traced).seed_key.has_value());

  RunReport report;
  JoinRequest reported;
  reported.options.report = &report;
  EXPECT_FALSE(ComputeSharedWorkKeys(reported).exec_key.has_value());

  std::atomic<geom::KeyVal> cutoff{geom::KeyVal::Zero()};
  JoinRequest wired;
  wired.options.shared_cutoff_publish = &cutoff;
  EXPECT_FALSE(ComputeSharedWorkKeys(wired).exec_key.has_value());
}

TEST(SharedWorkKeysTest, SeedKeyIgnoresStagingKnobs) {
  // Dmax(k) is a property of the result multiset: algorithm, sweep,
  // tie-break and estimator choices must all learn from each other.
  JoinRequest a;
  JoinRequest b;
  b.kdj_algorithm = core::KdjAlgorithm::kBKdj;
  b.options.sweep = core::SweepStrategy::kFixedXForward;
  b.options.tie_break = core::TieBreak::kDistanceOnly;
  EXPECT_EQ(*ComputeSharedWorkKeys(a).seed_key,
            *ComputeSharedWorkKeys(b).seed_key);

  JoinRequest c;
  c.options.metric = geom::Metric::kL1;
  EXPECT_NE(*ComputeSharedWorkKeys(a).seed_key,
            *ComputeSharedWorkKeys(c).seed_key);
  JoinRequest d;
  d.options.exclude_same_id = true;
  EXPECT_NE(*ComputeSharedWorkKeys(a).seed_key,
            *ComputeSharedWorkKeys(d).seed_key);
}

// --- in-flight dedupe ---

// Deterministic piggyback setup: one worker, a slow blocker occupying it,
// then N identical submissions — the first becomes the leader (queued
// behind the blocker), the rest MUST register as followers because Submit
// returns only after registration, long before the leader can start.
TEST(SharedWorkServiceTest, DuplicateInflightRequestsCollapseToOneExecution) {
  const geom::Rect uni(0, 0, 10000, 10000);
  test::JoinFixture f = test::MakeFixture(
      workload::UniformPoints(3000, 61, uni),
      workload::UniformPoints(3000, 62, uni), 16, 64);

  JoinService::Options options;
  options.max_inflight = 1;
  options.dedupe_inflight = true;
  JoinService service(*f.r, *f.s, options);

  JoinRequest blocker;
  blocker.kdj_algorithm = core::KdjAlgorithm::kHsKdj;
  blocker.k = 1500;
  std::future<JoinResponse> blocker_future = service.Submit(blocker);

  JoinRequest request;
  request.kdj_algorithm = core::KdjAlgorithm::kAmKdj;
  request.k = 800;
  constexpr size_t kDuplicates = 6;
  std::vector<std::future<JoinResponse>> futures;
  for (size_t i = 0; i < kDuplicates; ++i) {
    futures.push_back(service.Submit(request));
  }
  EXPECT_EQ(service.shared_inflight_hits(), kDuplicates - 1);

  ASSERT_TRUE(blocker_future.get().status.ok());
  std::vector<JoinResponse> responses;
  for (auto& future : futures) responses.push_back(future.get());

  // Solo reference from a sharing-free service.
  JoinService::Options solo_options;
  solo_options.max_inflight = 1;
  solo_options.queue_memory_budget_bytes =
      service.per_query_queue_memory_bytes();
  JoinService solo(*f.r, *f.s, solo_options);
  const JoinResponse reference = solo.Run(request);
  ASSERT_TRUE(reference.status.ok());

  size_t leaders = 0;
  for (size_t q = 0; q < responses.size(); ++q) {
    ASSERT_TRUE(responses[q].status.ok()) << responses[q].status.ToString();
    ExpectSameResults(responses[q].results, reference.results, "dup");
    if (responses[q].stats.shared_hit == 0) {
      ++leaders;
      EXPECT_GT(responses[q].stats.node_accesses, 0u) << "leader " << q;
    } else {
      // Followers carry the leader's counters plus the marker; their
      // wait/exec attribution is their own.
      EXPECT_EQ(responses[q].stats.shared_hit, 1u);
      EXPECT_GE(responses[q].wait_seconds, 0.0);
      EXPECT_GE(responses[q].exec_seconds, 0.0);
    }
  }
  EXPECT_EQ(leaders, 1u) << "exactly one real execution per dedupe group";

  // Every submission got a response and the admission identity closed.
  const JoinService::AdmissionSnapshot snapshot = service.admission_snapshot();
  EXPECT_EQ(snapshot.accepted, kDuplicates + 1);
  EXPECT_EQ(snapshot.completed, kDuplicates + 1);
  EXPECT_EQ(snapshot.inflight, 0u);
  EXPECT_EQ(snapshot.queued, 0u);
}

TEST(SharedWorkServiceTest, TracedRequestsExecuteSolo) {
  const geom::Rect uni(0, 0, 5000, 5000);
  test::JoinFixture f = test::MakeFixture(
      workload::UniformPoints(2000, 63, uni),
      workload::UniformPoints(2000, 64, uni), 16, 64);

  JoinService::Options options;
  options.max_inflight = 1;
  options.dedupe_inflight = true;
  options.shared_cache_entries = 8;
  JoinService service(*f.r, *f.s, options);

  // The blocker carries a report, so it is unshareable too — every
  // observer-carrying request in this test must leave the registry empty.
  RunReport blocker_report;
  JoinRequest blocker;
  blocker.kdj_algorithm = core::KdjAlgorithm::kHsKdj;
  blocker.k = 1200;
  blocker.options.report = &blocker_report;
  std::future<JoinResponse> blocker_future = service.Submit(blocker);

  // Two identical traced requests behind the blocker: each must run its
  // own execution (a tracer records ONE execution's events).
  Tracer tracer_a;
  Tracer tracer_b;
  JoinRequest traced;
  traced.k = 400;
  traced.options.tracer = &tracer_a;
  std::future<JoinResponse> first = service.Submit(traced);
  traced.options.tracer = &tracer_b;
  std::future<JoinResponse> second = service.Submit(traced);

  ASSERT_TRUE(blocker_future.get().status.ok());
  const JoinResponse ra = first.get();
  const JoinResponse rb = second.get();
  ASSERT_TRUE(ra.status.ok());
  ASSERT_TRUE(rb.status.ok());
  EXPECT_EQ(ra.stats.shared_hit, 0u);
  EXPECT_EQ(rb.stats.shared_hit, 0u);
  EXPECT_GT(ra.stats.node_accesses, 0u);
  EXPECT_GT(rb.stats.node_accesses, 0u);
  EXPECT_EQ(service.shared_inflight_hits(), 0u);
  // And the traced runs never entered the cache.
  EXPECT_EQ(service.shared_cache_size(), 0u);
}

// --- semantic result cache ---

TEST(SharedWorkServiceTest, CacheAnswersSmallerKByteIdentically) {
  const workload::Dataset r_data =
      workload::TigerStreets({.street_segments = 3000, .seed = 71});
  const workload::Dataset s_data =
      workload::TigerHydro({.hydro_objects = 1200, .seed = 71});
  test::JoinFixture f = test::MakeFixture(r_data, s_data, 16, 64);

  JoinService::Options options;
  options.max_inflight = 2;
  options.shared_cache_entries = 8;
  JoinService service(*f.r, *f.s, options);

  JoinRequest big;
  big.k = 1000;
  const JoinResponse warm = service.Run(big);
  ASSERT_TRUE(warm.status.ok());
  ASSERT_EQ(warm.results.size(), 1000u);
  EXPECT_EQ(warm.stats.shared_hit, 0u);
  EXPECT_EQ(service.shared_cache_size(), 1u);

  test::JoinFixture fresh = test::MakeFixture(r_data, s_data, 16, 64);
  JoinService::Options solo_options;
  solo_options.max_inflight = 1;
  solo_options.queue_memory_budget_bytes =
      service.per_query_queue_memory_bytes();
  JoinService solo(*fresh.r, *fresh.s, solo_options);

  for (const uint64_t smaller : {1000u, 999u, 500u, 17u, 1u}) {
    JoinRequest request;
    request.k = smaller;
    const JoinResponse cached = service.Run(request);
    ASSERT_TRUE(cached.status.ok());
    EXPECT_EQ(cached.stats.shared_hit, 1u) << "k=" << smaller;
    EXPECT_EQ(cached.stats.node_accesses, 0u)
        << "a cache hit must not touch the trees";
    const JoinResponse reference = solo.Run(request);
    ASSERT_TRUE(reference.status.ok());
    ExpectSameResults(cached.results, reference.results, "cached");
  }
  EXPECT_EQ(service.shared_cache_hits(), 5u);
}

// The boundary case the prefix property must survive: k' lands inside a
// plateau of equal distances. Collinear integer points give massive ties
// (many pairs at each integer distance); the deterministic tie order
// (objects-first, then ids) makes prefix-of-cached == fresh-run exact.
TEST(SharedWorkServiceTest, CachePrefixExactOnTiePlateauBoundary) {
  workload::Dataset r_data;
  workload::Dataset s_data;
  for (int i = 0; i < 40; ++i) {
    r_data.objects.push_back(geom::Rect::FromPoint(geom::Point(i, 0)));
    s_data.objects.push_back(geom::Rect::FromPoint(geom::Point(i, 0)));
  }
  test::JoinFixture f = test::MakeFixture(r_data, s_data, 8, 64);

  JoinService::Options options;
  options.shared_cache_entries = 4;
  JoinService service(*f.r, *f.s, options);

  JoinRequest big;
  big.k = 300;  // spans the d=0 plateau (40 pairs) and several more
  const JoinResponse warm = service.Run(big);
  ASSERT_TRUE(warm.status.ok());
  ASSERT_EQ(warm.results.size(), 300u);

  JoinService fresh_service(*f.r, *f.s, {});  // no sharing
  // 20 and 40 cut the zero plateau mid-way and at its edge; 100 lands
  // inside the d=1 plateau (78 pairs, ranks 41..118).
  for (const uint64_t boundary : {20u, 39u, 40u, 41u, 100u, 299u}) {
    JoinRequest request;
    request.k = boundary;
    const JoinResponse cached = service.Run(request);
    ASSERT_TRUE(cached.status.ok());
    EXPECT_EQ(cached.stats.shared_hit, 1u) << "k=" << boundary;
    const JoinResponse reference = fresh_service.Run(request);
    ASSERT_TRUE(reference.status.ok());
    ExpectSameResults(cached.results, reference.results, "plateau");
  }
}

TEST(SharedWorkServiceTest, ExhaustiveEntryAnswersAnyLargerK) {
  const geom::Rect uni(0, 0, 1000, 1000);
  test::JoinFixture f = test::MakeFixture(
      workload::UniformPoints(20, 73, uni),
      workload::UniformPoints(20, 74, uni), 8, 64);

  JoinService::Options options;
  options.shared_cache_entries = 4;
  JoinService service(*f.r, *f.s, options);

  JoinRequest over;
  over.k = 1000;  // only 400 pairs exist
  const JoinResponse warm = service.Run(over);
  ASSERT_TRUE(warm.status.ok());
  ASSERT_EQ(warm.results.size(), 400u);

  JoinRequest way_over;
  way_over.k = 100000;
  const JoinResponse cached = service.Run(way_over);
  ASSERT_TRUE(cached.status.ok());
  EXPECT_EQ(cached.stats.shared_hit, 1u);
  ExpectSameResults(cached.results, warm.results, "exhaustive");
}

TEST(SharedWorkServiceTest, LargerKMissesCacheButSeedsEstimator) {
  const workload::Dataset r_data =
      workload::TigerStreets({.street_segments = 3000, .seed = 75});
  const workload::Dataset s_data =
      workload::TigerHydro({.hydro_objects = 1200, .seed = 75});
  test::JoinFixture f = test::MakeFixture(r_data, s_data, 16, 64);

  JoinService::Options options;
  options.shared_cache_entries = 8;
  JoinService service(*f.r, *f.s, options);

  JoinRequest small;
  small.k = 200;
  ASSERT_TRUE(service.Run(small).status.ok());
  const uint64_t seeds_before = service.shared_seed_hits();

  JoinRequest big;
  big.k = 2000;
  const JoinResponse grown = service.Run(big);
  ASSERT_TRUE(grown.status.ok());
  EXPECT_EQ(grown.stats.shared_hit, 0u) << "k'>k is a cache miss";
  EXPECT_GT(service.shared_seed_hits(), seeds_before)
      << "the observed Dmax(200) must seed the k=2000 estimate";

  // The seeded run is byte-identical to an unseeded solo run: the seed
  // stages the adaptive algorithm, it cannot change results.
  JoinService no_sharing(*f.r, *f.s, {});
  const JoinResponse reference = no_sharing.Run(big);
  ASSERT_TRUE(reference.status.ok());
  ExpectSameResults(grown.results, reference.results, "seeded");
}

TEST(SharedWorkServiceTest, CacheEvictsLruAndStaysBounded) {
  const geom::Rect uni(0, 0, 2000, 2000);
  test::JoinFixture f = test::MakeFixture(
      workload::UniformPoints(500, 77, uni),
      workload::UniformPoints(500, 78, uni), 16, 64);

  JoinService::Options options;
  options.shared_cache_entries = 2;
  JoinService service(*f.r, *f.s, options);

  // Three distinct cache keys (distinct algorithms / tie-breaks).
  JoinRequest a;
  a.k = 100;
  JoinRequest b = a;
  b.kdj_algorithm = core::KdjAlgorithm::kBKdj;
  JoinRequest c = a;
  c.options.tie_break = core::TieBreak::kDistanceOnly;

  ASSERT_TRUE(service.Run(a).status.ok());
  ASSERT_TRUE(service.Run(b).status.ok());
  EXPECT_EQ(service.shared_cache_size(), 2u);
  ASSERT_TRUE(service.Run(c).status.ok());
  EXPECT_EQ(service.shared_cache_size(), 2u) << "capacity is a hard bound";

  // `a` was the least recently used -> evicted: re-running it misses.
  const uint64_t hits_before = service.shared_cache_hits();
  const JoinResponse again = service.Run(a);
  ASSERT_TRUE(again.status.ok());
  EXPECT_EQ(again.stats.shared_hit, 0u);
  EXPECT_EQ(service.shared_cache_hits(), hits_before);
  // `c` stayed resident.
  const JoinResponse c_again = service.Run(c);
  ASSERT_TRUE(c_again.status.ok());
  EXPECT_EQ(c_again.stats.shared_hit, 1u);
}

// --- randomized differential: cached/deduped == fresh solo, always ---

TEST(SharedWorkServiceTest, RandomOptionLaddersMatchFreshSoloRuns) {
  const workload::Dataset r_data =
      workload::TigerStreets({.street_segments = 2500, .seed = 79});
  const workload::Dataset s_data =
      workload::TigerHydro({.hydro_objects = 1000, .seed = 79});
  test::JoinFixture f = test::MakeFixture(r_data, s_data, 16, 64);

  JoinService::Options options;
  options.max_inflight = 2;
  options.dedupe_inflight = true;
  options.shared_cache_entries = 16;
  JoinService service(*f.r, *f.s, options);

  JoinService no_sharing(*f.r, *f.s, {.max_inflight = 2});

  std::mt19937 rng(2026);
  const core::KdjAlgorithm algorithms[] = {core::KdjAlgorithm::kHsKdj,
                                           core::KdjAlgorithm::kBKdj,
                                           core::KdjAlgorithm::kAmKdj};
  const core::SweepStrategy sweeps[] = {core::SweepStrategy::kOptimized,
                                        core::SweepStrategy::kFixedXForward};
  const core::TieBreak ties[] = {core::TieBreak::kObjectsFirst,
                                 core::TieBreak::kDistanceOnly};
  for (int set = 0; set < 6; ++set) {
    JoinRequest request;
    request.kdj_algorithm = algorithms[rng() % 3];
    request.options.sweep = sweeps[rng() % 2];
    request.options.tie_break = ties[rng() % 2];
    std::vector<uint64_t> ladder = {600, 50, 300, 600, 123, 600, 1};
    std::shuffle(ladder.begin(), ladder.end(), rng);
    for (const uint64_t k : ladder) {
      request.k = k;
      const JoinResponse shared = service.Run(request);
      ASSERT_TRUE(shared.status.ok()) << shared.status.ToString();
      JoinRequest solo_request = request;
      const JoinResponse reference = no_sharing.Run(solo_request);
      ASSERT_TRUE(reference.status.ok());
      ExpectSameResults(shared.results, reference.results, "ladder");
    }
  }
  EXPECT_GT(service.shared_cache_hits(), 0u);
}

// --- registry unit coverage ---

TEST(SharedWorkRegistryTest, SeedPrefersExactUpperBoundOverExtrapolation) {
  SharedWorkRegistry registry(/*cache_entries=*/4);
  const core::DmaxEstimator estimator(geom::Rect(0, 0, 100, 100), 1000,
                                      geom::Rect(0, 0, 100, 100), 1000);
  const std::string key = "S|test";

  EXPECT_FALSE(registry.SeedFor(key, 100, estimator).has_value());

  registry.RecordDmax(key, 500, geom::DistVal(7.5), /*exhaustive=*/false);
  // k <= k0: dmax(k0) is an exact upper bound.
  auto seed = registry.SeedFor(key, 100, estimator);
  ASSERT_TRUE(seed.has_value());
  EXPECT_DOUBLE_EQ(seed->raw(), 7.5);

  // k > every observation: conservative Eq. 4/5 extrapolation from the
  // largest observed point — strictly above the observed dmax.
  seed = registry.SeedFor(key, 2000, estimator);
  ASSERT_TRUE(seed.has_value());
  EXPECT_GT(seed->raw(), 7.5);
  EXPECT_DOUBLE_EQ(seed->raw(),
                   estimator.Correct(2000, 500, geom::DistVal(7.5),
                                     /*aggressive=*/false)
                       .raw());

  // A closer (smaller) covering observation tightens the bound.
  registry.RecordDmax(key, 150, geom::DistVal(4.0), /*exhaustive=*/false);
  seed = registry.SeedFor(key, 100, estimator);
  ASSERT_TRUE(seed.has_value());
  EXPECT_DOUBLE_EQ(seed->raw(), 4.0);

  // An exhaustive run's Dmax upper-bounds every k.
  registry.RecordDmax(key, 90, geom::DistVal(3.0), /*exhaustive=*/true);
  seed = registry.SeedFor(key, 1000000, estimator);
  ASSERT_TRUE(seed.has_value());
  EXPECT_DOUBLE_EQ(seed->raw(), 3.0);
}

TEST(SharedWorkRegistryTest, CacheKeepsLargerKOnCollision) {
  SharedWorkRegistry registry(/*cache_entries=*/4);
  std::vector<core::ResultPair> small(10);
  std::vector<core::ResultPair> large(50);
  for (size_t i = 0; i < large.size(); ++i) {
    large[i].distance = static_cast<double>(i);
    if (i < small.size()) small[i].distance = static_cast<double>(i);
  }
  registry.CacheInsert("k", 50, large);
  registry.CacheInsert("k", 10, small);  // must not downgrade the entry
  auto hit = registry.CacheLookup("k", 30);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->results.size(), 30u);
  EXPECT_DOUBLE_EQ(hit->results.back().distance, 29.0);
}

}  // namespace
}  // namespace amdj

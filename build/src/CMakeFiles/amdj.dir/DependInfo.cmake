
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/amdj.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/amdj.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/amdj.dir/common/random.cc.o" "gcc" "src/CMakeFiles/amdj.dir/common/random.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/amdj.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/amdj.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/amdj.dir/common/status.cc.o" "gcc" "src/CMakeFiles/amdj.dir/common/status.cc.o.d"
  "/root/repo/src/core/amidj.cc" "src/CMakeFiles/amdj.dir/core/amidj.cc.o" "gcc" "src/CMakeFiles/amdj.dir/core/amidj.cc.o.d"
  "/root/repo/src/core/amkdj.cc" "src/CMakeFiles/amdj.dir/core/amkdj.cc.o" "gcc" "src/CMakeFiles/amdj.dir/core/amkdj.cc.o.d"
  "/root/repo/src/core/bkdj.cc" "src/CMakeFiles/amdj.dir/core/bkdj.cc.o" "gcc" "src/CMakeFiles/amdj.dir/core/bkdj.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/CMakeFiles/amdj.dir/core/cost_model.cc.o" "gcc" "src/CMakeFiles/amdj.dir/core/cost_model.cc.o.d"
  "/root/repo/src/core/distance_join.cc" "src/CMakeFiles/amdj.dir/core/distance_join.cc.o" "gcc" "src/CMakeFiles/amdj.dir/core/distance_join.cc.o.d"
  "/root/repo/src/core/dmax_estimator.cc" "src/CMakeFiles/amdj.dir/core/dmax_estimator.cc.o" "gcc" "src/CMakeFiles/amdj.dir/core/dmax_estimator.cc.o.d"
  "/root/repo/src/core/expansion.cc" "src/CMakeFiles/amdj.dir/core/expansion.cc.o" "gcc" "src/CMakeFiles/amdj.dir/core/expansion.cc.o.d"
  "/root/repo/src/core/histogram_estimator.cc" "src/CMakeFiles/amdj.dir/core/histogram_estimator.cc.o" "gcc" "src/CMakeFiles/amdj.dir/core/histogram_estimator.cc.o.d"
  "/root/repo/src/core/hs_join.cc" "src/CMakeFiles/amdj.dir/core/hs_join.cc.o" "gcc" "src/CMakeFiles/amdj.dir/core/hs_join.cc.o.d"
  "/root/repo/src/core/pair_entry.cc" "src/CMakeFiles/amdj.dir/core/pair_entry.cc.o" "gcc" "src/CMakeFiles/amdj.dir/core/pair_entry.cc.o.d"
  "/root/repo/src/core/semi_join.cc" "src/CMakeFiles/amdj.dir/core/semi_join.cc.o" "gcc" "src/CMakeFiles/amdj.dir/core/semi_join.cc.o.d"
  "/root/repo/src/core/sj_sort.cc" "src/CMakeFiles/amdj.dir/core/sj_sort.cc.o" "gcc" "src/CMakeFiles/amdj.dir/core/sj_sort.cc.o.d"
  "/root/repo/src/core/sweep_plan.cc" "src/CMakeFiles/amdj.dir/core/sweep_plan.cc.o" "gcc" "src/CMakeFiles/amdj.dir/core/sweep_plan.cc.o.d"
  "/root/repo/src/geom/metric.cc" "src/CMakeFiles/amdj.dir/geom/metric.cc.o" "gcc" "src/CMakeFiles/amdj.dir/geom/metric.cc.o.d"
  "/root/repo/src/geom/rect.cc" "src/CMakeFiles/amdj.dir/geom/rect.cc.o" "gcc" "src/CMakeFiles/amdj.dir/geom/rect.cc.o.d"
  "/root/repo/src/geom/sweep_geometry.cc" "src/CMakeFiles/amdj.dir/geom/sweep_geometry.cc.o" "gcc" "src/CMakeFiles/amdj.dir/geom/sweep_geometry.cc.o.d"
  "/root/repo/src/queue/cutoff_tracker.cc" "src/CMakeFiles/amdj.dir/queue/cutoff_tracker.cc.o" "gcc" "src/CMakeFiles/amdj.dir/queue/cutoff_tracker.cc.o.d"
  "/root/repo/src/queue/distance_queue.cc" "src/CMakeFiles/amdj.dir/queue/distance_queue.cc.o" "gcc" "src/CMakeFiles/amdj.dir/queue/distance_queue.cc.o.d"
  "/root/repo/src/queue/segment_file.cc" "src/CMakeFiles/amdj.dir/queue/segment_file.cc.o" "gcc" "src/CMakeFiles/amdj.dir/queue/segment_file.cc.o.d"
  "/root/repo/src/rtree/hilbert_bulk_loader.cc" "src/CMakeFiles/amdj.dir/rtree/hilbert_bulk_loader.cc.o" "gcc" "src/CMakeFiles/amdj.dir/rtree/hilbert_bulk_loader.cc.o.d"
  "/root/repo/src/rtree/knn.cc" "src/CMakeFiles/amdj.dir/rtree/knn.cc.o" "gcc" "src/CMakeFiles/amdj.dir/rtree/knn.cc.o.d"
  "/root/repo/src/rtree/node.cc" "src/CMakeFiles/amdj.dir/rtree/node.cc.o" "gcc" "src/CMakeFiles/amdj.dir/rtree/node.cc.o.d"
  "/root/repo/src/rtree/rtree.cc" "src/CMakeFiles/amdj.dir/rtree/rtree.cc.o" "gcc" "src/CMakeFiles/amdj.dir/rtree/rtree.cc.o.d"
  "/root/repo/src/rtree/str_bulk_loader.cc" "src/CMakeFiles/amdj.dir/rtree/str_bulk_loader.cc.o" "gcc" "src/CMakeFiles/amdj.dir/rtree/str_bulk_loader.cc.o.d"
  "/root/repo/src/spatialjoin/external_sorter.cc" "src/CMakeFiles/amdj.dir/spatialjoin/external_sorter.cc.o" "gcc" "src/CMakeFiles/amdj.dir/spatialjoin/external_sorter.cc.o.d"
  "/root/repo/src/spatialjoin/spatial_join.cc" "src/CMakeFiles/amdj.dir/spatialjoin/spatial_join.cc.o" "gcc" "src/CMakeFiles/amdj.dir/spatialjoin/spatial_join.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/amdj.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/amdj.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/CMakeFiles/amdj.dir/storage/disk_manager.cc.o" "gcc" "src/CMakeFiles/amdj.dir/storage/disk_manager.cc.o.d"
  "/root/repo/src/workload/dataset.cc" "src/CMakeFiles/amdj.dir/workload/dataset.cc.o" "gcc" "src/CMakeFiles/amdj.dir/workload/dataset.cc.o.d"
  "/root/repo/src/workload/generators.cc" "src/CMakeFiles/amdj.dir/workload/generators.cc.o" "gcc" "src/CMakeFiles/amdj.dir/workload/generators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

#ifndef AMDJ_WORKLOAD_GENERATORS_H_
#define AMDJ_WORKLOAD_GENERATORS_H_

#include <cstdint>

#include "geom/rect.h"
#include "workload/dataset.h"

namespace amdj::workload {

/// Workspace within which all generators place objects.
inline constexpr double kUniverseSize = 1'000'000.0;  // 1M x 1M units

/// n points (degenerate rectangles) uniformly distributed over `universe`.
Dataset UniformPoints(uint64_t n, uint64_t seed,
                      const geom::Rect& universe = geom::Rect(
                          0, 0, kUniverseSize, kUniverseSize));

/// n small rectangles with uniformly distributed centers and exponentially
/// distributed side lengths (mean `mean_side`).
Dataset UniformRects(uint64_t n, double mean_side, uint64_t seed,
                     const geom::Rect& universe = geom::Rect(
                         0, 0, kUniverseSize, kUniverseSize));

/// n points drawn from `clusters` Gaussian blobs with random centers and
/// the given standard deviation (as a fraction of the universe side).
Dataset GaussianClusters(uint64_t n, uint32_t clusters, double sigma_frac,
                         uint64_t seed,
                         const geom::Rect& universe = geom::Rect(
                             0, 0, kUniverseSize, kUniverseSize));

/// n points with Zipf-skewed coordinates (theta in (0,1)); models the
/// heavily skewed distributions the paper's Section 4.3 worries about.
Dataset ZipfSkewedPoints(uint64_t n, double theta, uint64_t seed,
                         const geom::Rect& universe = geom::Rect(
                             0, 0, kUniverseSize, kUniverseSize));

/// Options for the synthetic TIGER-like generator (the stand-in for the
/// paper's TIGER/Line97 Arizona data; see DESIGN.md).
struct TigerSynthOptions {
  /// Number of street-segment MBRs ("streets" dataset).
  uint64_t street_segments = 120'000;
  /// Number of hydrographic objects ("hydro" dataset). The paper's ratio is
  /// 633,461 : 189,642 ~ 3.3 : 1.
  uint64_t hydro_objects = 36'000;
  /// Population centers around which road networks concentrate.
  uint32_t towns = 40;
  /// Average road-segment length in universe units.
  double mean_segment_length = 600.0;
  /// Fraction of streets forming a sparse rural background grid rather
  /// than clustering in towns.
  double rural_fraction = 0.25;
  uint64_t seed = 20000'05'15;  // SIGMOD 2000 :-)
};

/// Street segments: random-walk polylines ("roads") emanating from town
/// centers plus a sparse rural mesh, each polyline chopped into per-segment
/// MBRs — thin, elongated, locally clustered rectangles like real street
/// data.
Dataset TigerStreets(const TigerSynthOptions& options);

/// Hydrographic objects: meandering "rivers" (chains of segment MBRs) plus
/// compact "lakes" (blobs of small rectangles), correlated with the same
/// town layout so the two data sets overlap the way streets and hydrography
/// do in census data.
Dataset TigerHydro(const TigerSynthOptions& options);

}  // namespace amdj::workload

#endif  // AMDJ_WORKLOAD_GENERATORS_H_

#include "spatialjoin/external_sorter.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace amdj::spatialjoin {

ExternalSorter::ExternalSorter(storage::DiskManager* disk,
                               size_t memory_bytes, JoinStats* stats)
    : disk_(disk),
      buffer_capacity_(std::max<size_t>(64, memory_bytes / kRecordSize)),
      stats_(stats) {
  if (disk_ == nullptr) {
    buffer_capacity_ = std::numeric_limits<size_t>::max();
  }
}

ExternalSorter::~ExternalSorter() {
  if (disk_ != nullptr) {
    for (const Run& run : runs_) {
      for (storage::PageId id : run.pages) disk_->FreePage(id);
    }
  }
}

Status ExternalSorter::Add(const core::ResultPair& record) {
  if (finished_) {
    return Status::FailedPrecondition("Add after Finish");
  }
  buffer_.push_back(record);
  ++count_;
  if (buffer_.size() >= buffer_capacity_) {
    AMDJ_RETURN_IF_ERROR(FlushRun());
  }
  return Status::OK();
}

Status ExternalSorter::FlushRun() {
  if (buffer_.empty()) return Status::OK();
  std::sort(buffer_.begin(), buffer_.end(),
            [](const core::ResultPair& a, const core::ResultPair& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              if (a.r_id != b.r_id) return a.r_id < b.r_id;
              return a.s_id < b.s_id;
            });
  Run run;
  run.records = buffer_.size();
  char page[storage::kPageSize];
  for (size_t i = 0; i < buffer_.size(); i += kRecordsPerPage) {
    const size_t n = std::min(kRecordsPerPage, buffer_.size() - i);
    std::memset(page, 0, sizeof(page));
    std::memcpy(page, buffer_.data() + i, n * kRecordSize);
    const storage::PageId id = disk_->AllocatePage();
    AMDJ_RETURN_IF_ERROR(disk_->WritePage(id, page));
    if (stats_ != nullptr) ++stats_->queue_page_writes;
    run.pages.push_back(id);
  }
  runs_.push_back(std::move(run));
  buffer_.clear();
  return Status::OK();
}

Status ExternalSorter::LoadPage(RunReader* reader) {
  AMDJ_RETURN_IF_ERROR(
      disk_->ReadPage(reader->run->pages[reader->page_index],
                      reader->buffer));
  if (stats_ != nullptr) ++stats_->queue_page_reads;
  reader->record_in_page = 0;
  return Status::OK();
}

Status ExternalSorter::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  if (runs_.empty()) {
    // Pure in-memory: sort the buffer and stream from it.
    std::sort(buffer_.begin(), buffer_.end(),
              [](const core::ResultPair& a, const core::ResultPair& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                if (a.r_id != b.r_id) return a.r_id < b.r_id;
                return a.s_id < b.s_id;
              });
    buffer_cursor_ = 0;
    return Status::OK();
  }
  AMDJ_RETURN_IF_ERROR(FlushRun());  // spill the final partial run
  readers_.resize(runs_.size());
  heads_.resize(runs_.size());
  for (size_t i = 0; i < runs_.size(); ++i) {
    readers_[i].run = &runs_[i];
    if (runs_[i].records == 0) continue;
    AMDJ_RETURN_IF_ERROR(LoadPage(&readers_[i]));
    std::memcpy(&heads_[i], readers_[i].buffer, kRecordSize);
    readers_[i].record_in_page = 1;
    readers_[i].consumed = 1;
    merge_heap_.emplace(geom::DistVal(heads_[i].distance), i);
  }
  return Status::OK();
}

Status ExternalSorter::Next(core::ResultPair* out, bool* done) {
  if (!finished_) return Status::FailedPrecondition("Next before Finish");
  *done = false;
  if (runs_.empty()) {
    if (buffer_cursor_ >= buffer_.size()) {
      *done = true;
      return Status::OK();
    }
    *out = buffer_[buffer_cursor_++];
    return Status::OK();
  }
  if (merge_heap_.empty()) {
    *done = true;
    return Status::OK();
  }
  const size_t i = merge_heap_.top().second;
  merge_heap_.pop();
  *out = heads_[i];
  RunReader& reader = readers_[i];
  if (reader.consumed < reader.run->records) {
    if (reader.record_in_page >= kRecordsPerPage) {
      ++reader.page_index;
      AMDJ_RETURN_IF_ERROR(LoadPage(&reader));
    }
    std::memcpy(&heads_[i],
                reader.buffer + reader.record_in_page * kRecordSize,
                kRecordSize);
    ++reader.record_in_page;
    ++reader.consumed;
    merge_heap_.emplace(geom::DistVal(heads_[i].distance), i);
  }
  return Status::OK();
}

}  // namespace amdj::spatialjoin

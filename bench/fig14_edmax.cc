// Figure 14: performance impact of the eDmax estimate on AM-KDJ. eDmax is
// forced to multiples of the true Dmax (0.1x .. 10x) at k = 100,000; the
// three panels report distance computations, queue insertions and response
// time, with B-KDJ as the flat reference line AM-KDJ must stay below.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "core/dmax_estimator.h"

namespace amdj::bench {
namespace {

void Run(int argc, char** argv) {
  BenchEnv env = MakeTigerEnv(BenchConfig::FromArgs(argc, argv));
  const uint64_t k = 100000;
  PrintHeader("Figure 14: impact of the eDmax estimate on AM-KDJ (k=100000)",
              env);

  auto dmax = core::ComputeTrueDmax(*env.streets, *env.hydro, k,
                                    env.MakeJoinOptions());
  AMDJ_CHECK(dmax.ok()) << dmax.status().ToString();
  std::printf("true Dmax(k) = %.3f\n\n", *dmax);

  const RunResult bkdj =
      RunKdjCold(env, core::KdjAlgorithm::kBKdj, k, env.MakeJoinOptions());

  const std::vector<double> factors = {0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0};
  const std::vector<int> widths = {12, 16, 16, 12, 14};
  PrintRow({"eDmax/Dmax", "dist comps", "queue ins", "resp (s)",
            "comp-queue ins"},
           widths);
  for (double f : factors) {
    core::JoinOptions options = env.MakeJoinOptions();
    options.forced_edmax = geom::DistVal(f * *dmax);
    const RunResult run =
        RunKdjCold(env, core::KdjAlgorithm::kAmKdj, k, options);
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f", f);
    PrintRow({label, FormatCount(run.stats.real_distance_computations),
              FormatCount(run.stats.main_queue_insertions),
              FormatSeconds(run.stats.response_seconds()),
              FormatCount(run.stats.compensation_queue_insertions)},
             widths);
  }
  PrintRow({"B-KDJ ref", FormatCount(bkdj.stats.real_distance_computations),
            FormatCount(bkdj.stats.main_queue_insertions),
            FormatSeconds(bkdj.stats.response_seconds()), "-"},
           widths);

  // Eq.-3 estimate for reference (the paper observed ~2.3x Dmax at this k).
  core::DmaxEstimator estimator(env.streets->bounds(), env.streets->size(),
                                env.hydro->bounds(), env.hydro->size());
  std::printf("\nEq. 3 initial estimate eDmax(k) = %.3f (%.2fx true Dmax)\n",
              estimator.InitialEstimate(k).raw(),
              estimator.InitialEstimate(k).raw() / *dmax);
}

}  // namespace
}  // namespace amdj::bench

int main(int argc, char** argv) {
  amdj::bench::Run(argc, argv);
  return 0;
}

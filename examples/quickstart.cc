// Quickstart: index two point sets with R*-trees and ask for the 5 closest
// pairs — the minimal end-to-end use of the library.
//
//   $ ./quickstart

#include <cstdio>

#include "core/distance_join.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

int main() {
  using namespace amdj;

  // 1. Storage: pages live in memory here; use FileDiskManager for disk.
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, /*capacity_pages=*/128);

  // 2. Build one R*-tree per data set.
  auto red = rtree::RTree::Create(&pool, {}).value();
  auto blue = rtree::RTree::Create(&pool, {}).value();
  const double red_points[][2] = {{1, 1}, {4, 2}, {9, 9}, {6, 5}, {2, 8}};
  const double blue_points[][2] = {{2, 1}, {8, 8}, {5, 5}, {0, 7}, {9, 3}};
  for (uint32_t i = 0; i < 5; ++i) {
    Status s = red->Insert(geom::Rect::FromPoint(
                               {red_points[i][0], red_points[i][1]}),
                           /*id=*/i);
    if (!s.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", s.ToString().c_str());
      return 1;
    }
    s = blue->Insert(geom::Rect::FromPoint(
                         {blue_points[i][0], blue_points[i][1]}),
                     /*id=*/i);
    if (!s.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // 3. Run the adaptive multi-stage k-distance join.
  JoinStats stats;
  auto result = core::RunKDistanceJoin(*red, *blue, /*k=*/5,
                                       core::KdjAlgorithm::kAmKdj,
                                       core::JoinOptions{}, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("5 closest red-blue pairs:\n");
  for (const core::ResultPair& p : *result) {
    std::printf("  red[%u] (%g, %g)  <->  blue[%u] (%g, %g)   dist = %.4f\n",
                p.r_id, red_points[p.r_id][0], red_points[p.r_id][1], p.s_id,
                blue_points[p.s_id][0], blue_points[p.s_id][1], p.distance);
  }
  std::printf("\ndistance computations: %llu, queue insertions: %llu\n",
              (unsigned long long)stats.real_distance_computations,
              (unsigned long long)stats.main_queue_insertions);
  return 0;
}

#include "core/histogram_estimator.h"

#include <algorithm>
#include <cmath>

namespace amdj::core {

namespace {

/// Degenerate (zero-area) bounds are inflated so cells have usable area.
geom::Rect InflateIfDegenerate(geom::Rect bounds) {
  if (bounds.IsEmpty()) return geom::Rect(0, 0, 1, 1);
  const double pad_x = bounds.Side(0) > 0 ? 0.0 : 0.5;
  const double pad_y = bounds.Side(1) > 0 ? 0.0 : 0.5;
  bounds.lo.x -= pad_x;
  bounds.hi.x += pad_x;
  bounds.lo.y -= pad_y;
  bounds.hi.y += pad_y;
  return bounds;
}

}  // namespace

HistogramEstimator::HistogramEstimator(
    const std::vector<geom::Rect>& r_objects,
    const std::vector<geom::Rect>& s_objects, const Options& options)
    : options_(options) {
  for (const geom::Rect& r : r_objects) bounds_.Extend(r);
  for (const geom::Rect& s : s_objects) bounds_.Extend(s);
  Finalize();
  AddObjects(r_objects, &r_counts_);
  AddObjects(s_objects, &s_counts_);
  total_r_ = static_cast<double>(r_objects.size());
  total_s_ = static_cast<double>(s_objects.size());
}

StatusOr<HistogramEstimator> HistogramEstimator::FromTrees(
    const rtree::RTree& r, const rtree::RTree& s, const Options& options) {
  HistogramEstimator est(options);
  est.bounds_ = geom::Union(r.size() > 0 ? r.bounds() : geom::Rect::Empty(),
                            s.size() > 0 ? s.bounds()
                                         : geom::Rect::Empty());
  est.Finalize();
  std::vector<geom::Rect> batch;
  auto add_tree = [&](const rtree::RTree& tree,
                      std::vector<double>* counts) -> Status {
    batch.clear();
    AMDJ_RETURN_IF_ERROR(tree.ForEachObject(
        [&](const rtree::Entry& e) { batch.push_back(e.rect); }));
    est.AddObjects(batch, counts);
    return Status::OK();
  };
  AMDJ_RETURN_IF_ERROR(add_tree(r, &est.r_counts_));
  est.total_r_ = static_cast<double>(r.size());
  AMDJ_RETURN_IF_ERROR(add_tree(s, &est.s_counts_));
  est.total_s_ = static_cast<double>(s.size());
  return est;
}

void HistogramEstimator::Finalize() {
  grid_ = std::max<uint32_t>(1, options_.grid);
  bounds_ = InflateIfDegenerate(bounds_);
  diameter_ = geom::MaxDistance(bounds_, bounds_, options_.metric).raw();
  if (diameter_ <= 0) diameter_ = 1.0;
  r_counts_.assign(static_cast<size_t>(grid_) * grid_, 0.0);
  s_counts_.assign(static_cast<size_t>(grid_) * grid_, 0.0);
}

void HistogramEstimator::AddObjects(const std::vector<geom::Rect>& objects,
                                    std::vector<double>* counts) {
  const double inv_w = grid_ / std::max(bounds_.Side(0), 1e-300);
  const double inv_h = grid_ / std::max(bounds_.Side(1), 1e-300);
  for (const geom::Rect& r : objects) {
    const geom::Point c = r.Center();
    const uint32_t cx = std::min<uint32_t>(
        grid_ - 1, static_cast<uint32_t>(
                       std::max(0.0, (c.x - bounds_.lo.x) * inv_w)));
    const uint32_t cy = std::min<uint32_t>(
        grid_ - 1, static_cast<uint32_t>(
                       std::max(0.0, (c.y - bounds_.lo.y) * inv_h)));
    (*counts)[static_cast<size_t>(cy) * grid_ + cx] += 1.0;
  }
}

geom::Rect HistogramEstimator::CellRect(uint32_t cx, uint32_t cy) const {
  const double w = bounds_.Side(0) / grid_;
  const double h = bounds_.Side(1) / grid_;
  return geom::Rect(bounds_.lo.x + cx * w, bounds_.lo.y + cy * h,
                    bounds_.lo.x + (cx + 1) * w,
                    bounds_.lo.y + (cy + 1) * h);
}

double HistogramEstimator::ExpectedPairsWithin(const geom::DistVal dv) const {
  const double d = dv.raw();
  if (d < 0 || total_r_ == 0 || total_s_ == 0) return 0.0;
  const double cell_w = bounds_.Side(0) / grid_;
  const double cell_h = bounds_.Side(1) / grid_;
  const double cell_area = std::max(cell_w * cell_h, 1e-300);
  const double coeff = geom::UnitBallAreaCoefficient(options_.metric);

  double expected = 0.0;
  for (uint32_t ry = 0; ry < grid_; ++ry) {
    for (uint32_t rx = 0; rx < grid_; ++rx) {
      const double rc = r_counts_[static_cast<size_t>(ry) * grid_ + rx];
      if (rc == 0.0) continue;
      const geom::Rect r_cell = CellRect(rx, ry);
      // Only s-cells whose separation can be <= d.
      const auto lo_idx = [&](double v, double origin, double inv) {
        return static_cast<uint32_t>(
            std::clamp((v - origin) * inv, 0.0, double(grid_ - 1)));
      };
      const double inv_w = 1.0 / std::max(cell_w, 1e-300);
      const double inv_h = 1.0 / std::max(cell_h, 1e-300);
      const uint32_t sx0 =
          lo_idx(r_cell.lo.x - d, bounds_.lo.x, inv_w);
      const uint32_t sx1 =
          lo_idx(r_cell.hi.x + d, bounds_.lo.x, inv_w);
      const uint32_t sy0 =
          lo_idx(r_cell.lo.y - d, bounds_.lo.y, inv_h);
      const uint32_t sy1 =
          lo_idx(r_cell.hi.y + d, bounds_.lo.y, inv_h);
      // Model: an object of this r-cell sees the S objects inside the
      // distance-d ball around it; approximate the ball by the equal-area
      // square window centered on the cell center and intersect it with
      // each s-cell (whose objects are treated as uniformly spread). For
      // uniform data the sum telescopes to |R||S| * C d^2 / A — exactly
      // Eq. 3 — while for skewed data dense cells weigh in quadratically.
      const geom::Point center = r_cell.Center();
      const double half = 0.5 * std::sqrt(coeff) * d;
      const geom::Rect window(center.x - half, center.y - half,
                              center.x + half, center.y + half);
      for (uint32_t sy = sy0; sy <= sy1; ++sy) {
        for (uint32_t sx = sx0; sx <= sx1; ++sx) {
          const double sc = s_counts_[static_cast<size_t>(sy) * grid_ + sx];
          if (sc == 0.0) continue;
          const geom::Rect s_cell = CellRect(sx, sy);
          const double frac =
              geom::IntersectionArea(window, s_cell) / cell_area;
          expected += rc * sc * std::min(1.0, frac);
        }
      }
    }
  }
  return expected;
}

double HistogramEstimator::InvertExpectedPairs(double target) const {
  if (target <= 0) return 0.0;
  if (ExpectedPairsWithin(geom::DistVal(diameter_)) <= target) return diameter_;
  double lo = 0.0;
  double hi = diameter_;
  for (int iter = 0; iter < 40 && hi - lo > 1e-9 * diameter_; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (ExpectedPairsWithin(geom::DistVal(mid)) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

geom::DistVal HistogramEstimator::EstimateDmax(uint64_t k) const {
  return geom::DistVal(InvertExpectedPairs(static_cast<double>(k)));
}

geom::DistVal HistogramEstimator::Correct(uint64_t k, uint64_t k0,
                                          geom::DistVal dmax_k0,
                                          bool aggressive) const {
  // Raw view: the calibration math is distance-space arithmetic.
  const double d0 = dmax_k0.raw();
  if (k0 >= k) return geom::DistVal(std::max(d0, 0.0));
  // Calibrate the histogram prediction against the observed ground truth.
  double scale = 1.0;
  if (k0 > 0 && d0 > 0) {
    const double predicted = ExpectedPairsWithin(geom::DistVal(d0));
    if (predicted > 0) {
      scale = static_cast<double>(k0) / predicted;
    }
  }
  const double calibrated =
      InvertExpectedPairs(static_cast<double>(k) / scale);
  double geometric = calibrated;
  if (k0 > 0 && d0 > 0) {
    geometric = d0 * std::sqrt(static_cast<double>(k) /
                               static_cast<double>(k0));
  }
  const double combined =
      aggressive ? std::min(calibrated, geometric)
                 : std::max(calibrated, geometric);
  return geom::DistVal(std::max(combined, d0));
}

std::function<geom::DistVal(uint64_t)> HistogramEstimator::BoundaryFn()
    const {
  // Sample the monotone pair-count curve at quadratically spaced distances
  // (denser near 0, where the queue's boundaries live) and interpolate its
  // inverse.
  constexpr int kSamples = 128;
  std::vector<double> distances(kSamples + 1);
  std::vector<double> counts(kSamples + 1);
  for (int i = 0; i <= kSamples; ++i) {
    const double frac = static_cast<double>(i) / kSamples;
    distances[i] = diameter_ * frac * frac;
    counts[i] = ExpectedPairsWithin(geom::DistVal(distances[i]));
  }
  return [distances = std::move(distances),
          counts = std::move(counts)](uint64_t c) {
    const double target = static_cast<double>(c);
    if (target <= counts.front()) return geom::DistVal(distances.front());
    if (target >= counts.back()) return geom::DistVal(distances.back());
    // First sample with count >= target.
    const auto it = std::lower_bound(counts.begin(), counts.end(), target);
    const size_t hi = static_cast<size_t>(it - counts.begin());
    const size_t lo = hi - 1;
    const double span = counts[hi] - counts[lo];
    const double t = span > 0 ? (target - counts[lo]) / span : 1.0;
    return geom::DistVal(distances[lo] + t * (distances[hi] - distances[lo]));
  };
}

}  // namespace amdj::core

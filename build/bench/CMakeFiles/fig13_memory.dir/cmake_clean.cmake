file(REMOVE_RECURSE
  "CMakeFiles/fig13_memory.dir/fig13_memory.cc.o"
  "CMakeFiles/fig13_memory.dir/fig13_memory.cc.o.d"
  "fig13_memory"
  "fig13_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "core/dmax_estimator.h"

#include <algorithm>
#include <cmath>

namespace amdj::core {

DmaxEstimator::DmaxEstimator(const geom::Rect& r_bounds, uint64_t r_count,
                             const geom::Rect& s_bounds, uint64_t s_count,
                             geom::Metric metric) {
  const double nr = static_cast<double>(std::max<uint64_t>(1, r_count));
  const double ns = static_cast<double>(std::max<uint64_t>(1, s_count));
  double area = geom::IntersectionArea(r_bounds, s_bounds);
  if (area <= 0.0) {
    // Disjoint data sets: Eq. 3's derivation assumes a shared region. Use
    // the union area as the effective region and remember the gap, which
    // lower-bounds every pair distance.
    area = geom::Union(r_bounds, s_bounds).Area();
    gap_ = geom::MinDistance(r_bounds, s_bounds, metric);
  }
  if (area <= 0.0) area = 1.0;  // both data sets degenerate to a point/line
  rho_ = area / (geom::UnitBallAreaCoefficient(metric) * nr * ns);
}

double DmaxEstimator::InitialEstimate(uint64_t k) const {
  return gap_ + std::sqrt(static_cast<double>(k) * rho_);
}

double DmaxEstimator::ArithmeticCorrection(uint64_t k, uint64_t k0,
                                           double dmax_k0) const {
  if (k0 >= k) return dmax_k0;
  return std::sqrt(dmax_k0 * dmax_k0 +
                   static_cast<double>(k - k0) * rho_);
}

double DmaxEstimator::GeometricCorrection(uint64_t k, uint64_t k0,
                                          double dmax_k0) const {
  if (k0 == 0 || dmax_k0 <= 0.0) return ArithmeticCorrection(k, k0, dmax_k0);
  if (k0 >= k) return dmax_k0;
  return dmax_k0 * std::sqrt(static_cast<double>(k) /
                             static_cast<double>(k0));
}

double DmaxEstimator::Correct(uint64_t k, uint64_t k0, double dmax_k0,
                              bool aggressive) const {
  const double a = ArithmeticCorrection(k, k0, dmax_k0);
  const double g = GeometricCorrection(k, k0, dmax_k0);
  return aggressive ? std::min(a, g) : std::max(a, g);
}

std::function<double(uint64_t)> DmaxEstimator::BoundaryFn() const {
  const double rho = rho_;
  const double gap = gap_;
  return [rho, gap](uint64_t c) {
    return gap + std::sqrt(static_cast<double>(c) * rho);
  };
}

}  // namespace amdj::core

# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart_runs "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart_runs PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;13;amdj_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hotels_restaurants_runs "/root/repo/build/examples/hotels_restaurants")
set_tests_properties(example_hotels_restaurants_runs PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;14;amdj_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_incremental_explorer_runs "/root/repo/build/examples/incremental_explorer")
set_tests_properties(example_incremental_explorer_runs PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;15;amdj_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_city_infrastructure_runs "/root/repo/build/examples/city_infrastructure")
set_tests_properties(example_city_infrastructure_runs PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;16;amdj_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_similarity_search_runs "/root/repo/build/examples/similarity_search")
set_tests_properties(example_similarity_search_runs PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;17;amdj_example;/root/repo/examples/CMakeLists.txt;0;")

#!/usr/bin/env bash
# Regenerates every table/figure of EXPERIMENTS.md. Usage:
#   scripts/run_all_benches.sh [build-dir] [out-dir] [extra bench flags...]
# e.g. a paper-scale run:
#   scripts/run_all_benches.sh build results --streets=633461 --hydro=189642
set -u

BUILD_DIR=${1:-build}
OUT_DIR=${2:-bench_results}
shift 2 2>/dev/null || shift $# 2>/dev/null || true
EXTRA_FLAGS=("$@")

mkdir -p "$OUT_DIR"
status=0
for bench in "$BUILD_DIR"/bench/*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  case "$name" in
    *.a|*.txt|CMakeFiles|cmake_install.cmake|CTestTestfile.cmake) continue ;;
  esac
  echo "=== $name ${EXTRA_FLAGS[*]:-}"
  if [[ "$name" == micro_* ]]; then
    # google-benchmark binaries take their own flags.
    "$bench" --benchmark_min_time=0.05 >"$OUT_DIR/$name.txt" 2>&1
  else
    "$bench" "${EXTRA_FLAGS[@]}" >"$OUT_DIR/$name.txt" 2>&1
  fi
  rc=$?
  if [ $rc -ne 0 ]; then
    echo "FAILED ($rc): $name" >&2
    status=1
  fi
done
echo "outputs in $OUT_DIR/"
exit $status

# Empty dependencies file for amdj_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig15_stepwise.dir/fig15_stepwise.cc.o"
  "CMakeFiles/fig15_stepwise.dir/fig15_stepwise.cc.o.d"
  "fig15_stepwise"
  "fig15_stepwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_stepwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Inter-query throughput of the JoinService: a fixed mixed KDJ/IDJ query
// set replayed at 1, 2, 4 and 8 queries in flight over one shared buffer
// pool. Reports aggregate wall-clock, queries/second and speedup over the
// 1-in-flight replay, plus mean per-query admission wait; verifies that
// every concurrent run returns byte-identical results to the 1-in-flight
// replay (per-query attribution makes the stats exact, so correctness is
// checked on results AND on the hits+misses==accesses identity).
//
// --json=FILE additionally writes one {"inflight":..,"wall_s":..,"qps":..}
// summary object (JSON array) for BENCH_PR4.json-style tracking.

#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "service/join_service.h"

namespace amdj::bench {
namespace {

std::vector<service::JoinRequest> MakeQuerySet(uint64_t scale) {
  std::vector<service::JoinRequest> requests;
  using Kind = service::JoinRequest::Kind;
  const struct {
    Kind kind;
    core::KdjAlgorithm kdj;
    core::IdjAlgorithm idj;
    uint64_t k;
  } specs[] = {
      {Kind::kKdj, core::KdjAlgorithm::kAmKdj, {}, 10 * scale},
      {Kind::kKdj, core::KdjAlgorithm::kBKdj, {}, 5 * scale},
      {Kind::kKdj, core::KdjAlgorithm::kHsKdj, {}, 2 * scale},
      {Kind::kIdj, {}, core::IdjAlgorithm::kAmIdj, 8 * scale},
      {Kind::kIdj, {}, core::IdjAlgorithm::kHsIdj, 3 * scale},
      {Kind::kKdj, core::KdjAlgorithm::kAmKdj, {}, scale},
      {Kind::kKdj, core::KdjAlgorithm::kBKdj, {}, 8 * scale},
      {Kind::kIdj, {}, core::IdjAlgorithm::kAmIdj, 2 * scale},
  };
  for (const auto& spec : specs) {
    service::JoinRequest request;
    request.kind = spec.kind;
    request.kdj_algorithm = spec.kdj;
    request.idj_algorithm = spec.idj;
    request.k = spec.k;
    requests.push_back(request);
  }
  return requests;
}

void Run(int argc, char** argv) {
  // --json is this bench's own flag; strip it before the shared parser
  // (which rejects unknown arguments).
  std::string json_path;
  std::vector<char*> shared_args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      shared_args.push_back(argv[i]);
    }
  }
  BenchEnv env = MakeTigerEnv(BenchConfig::FromArgs(
      static_cast<int>(shared_args.size()), shared_args.data()));
  PrintHeader("Multi-query throughput (JoinService, shared buffer pool)",
              env);

  // Two full query-set replays per in-flight level so the service queue
  // actually backs up beyond max_inflight.
  const uint64_t scale = env.config.streets >= 100'000 ? 1000 : 200;
  std::vector<service::JoinRequest> requests = MakeQuerySet(scale);
  {
    const std::vector<service::JoinRequest> again = requests;
    requests.insert(requests.end(), again.begin(), again.end());
  }

  const std::vector<uint32_t> inflight_levels = {1, 2, 4, 8};
  const std::vector<int> widths = {10, 10, 10, 9, 12, 14};
  PrintRow({"inflight", "wall (s)", "qps", "speedup", "mean wait",
            "node acc."},
           widths);

  double baseline_wall = 0.0;
  std::vector<std::vector<core::ResultPair>> baseline;
  struct Summary {
    uint32_t inflight;
    double wall_s;
    double qps;
  };
  std::vector<Summary> summaries;

  for (const uint32_t inflight : inflight_levels) {
    service::JoinService::Options options;
    options.max_inflight = inflight;
    // Constant memory PER QUERY (total budget grows with concurrency), so
    // the levels measure concurrency alone — under a fixed total budget
    // higher in-flight levels would also spill more, conflating the two
    // effects.
    options.queue_memory_budget_bytes =
        env.config.memory_bytes * inflight;
    service::JoinService svc(*env.streets, *env.hydro, options);

    // Cold pool per level so every level pages the trees in itself.
    if (!env.pool->Clear().ok()) std::abort();
    Timer wall;
    std::vector<std::future<service::JoinResponse>> futures;
    for (const auto& request : requests) {
      futures.push_back(svc.Submit(request));
    }
    std::vector<service::JoinResponse> responses;
    for (auto& future : futures) responses.push_back(future.get());
    const double wall_s = wall.ElapsedSeconds();

    double wait_sum = 0.0;
    uint64_t accesses = 0;
    for (size_t q = 0; q < responses.size(); ++q) {
      const auto& response = responses[q];
      if (!response.status.ok()) {
        std::fprintf(stderr, "FATAL: query %zu failed: %s\n", q,
                     response.status.ToString().c_str());
        std::exit(1);
      }
      if (response.stats.node_buffer_hits + response.stats.node_disk_reads !=
          response.stats.node_accesses) {
        std::fprintf(stderr, "FATAL: query %zu attribution skew\n", q);
        std::exit(1);
      }
      wait_sum += response.wait_seconds;
      accesses += response.stats.node_accesses;
    }
    if (inflight == 1) {
      baseline_wall = wall_s;
      baseline.reserve(responses.size());
      for (auto& response : responses) {
        baseline.push_back(std::move(response.results));
      }
    } else {
      for (size_t q = 0; q < responses.size(); ++q) {
        if (responses[q].results != baseline[q]) {
          std::fprintf(stderr,
                       "FATAL: query %zu at inflight %u differs from the "
                       "1-in-flight replay\n",
                       q, inflight);
          std::exit(1);
        }
      }
    }

    const double qps = requests.size() / wall_s;
    char speedup[32], qps_s[32], wait_s[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", baseline_wall / wall_s);
    std::snprintf(qps_s, sizeof(qps_s), "%.1f", qps);
    std::snprintf(wait_s, sizeof(wait_s), "%.3fs",
                  wait_sum / requests.size());
    PrintRow({std::to_string(inflight), FormatSeconds(wall_s), qps_s,
              speedup, wait_s, FormatCount(accesses)},
             widths);
    summaries.push_back({inflight, wall_s, qps});
  }

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      std::exit(1);
    }
    // hardware_concurrency bounds the interpretable speedup: on a 1-core
    // host, parity (1.0x) with falling admission wait IS the expected
    // scaling result.
    std::fprintf(out,
                 "{\"bench\": \"multi_query_throughput\", \"cores\": %u, "
                 "\"queries\": %zu, \"levels\": [",
                 std::thread::hardware_concurrency(), requests.size());
    for (size_t i = 0; i < summaries.size(); ++i) {
      std::fprintf(out,
                   "%s\n  {\"inflight\": %u, \"wall_s\": %.4f, "
                   "\"qps\": %.2f, \"speedup\": %.3f}",
                   i == 0 ? "" : ",", summaries[i].inflight,
                   summaries[i].wall_s, summaries[i].qps,
                   summaries[0].wall_s / summaries[i].wall_s);
    }
    std::fprintf(out, "\n]}\n");
    std::fclose(out);
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace amdj::bench

int main(int argc, char** argv) {
  amdj::bench::Run(argc, argv);
  return 0;
}

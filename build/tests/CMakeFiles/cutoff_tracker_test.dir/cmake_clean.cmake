file(REMOVE_RECURSE
  "CMakeFiles/cutoff_tracker_test.dir/cutoff_tracker_test.cc.o"
  "CMakeFiles/cutoff_tracker_test.dir/cutoff_tracker_test.cc.o.d"
  "cutoff_tracker_test"
  "cutoff_tracker_test.pdb"
  "cutoff_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cutoff_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

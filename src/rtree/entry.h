#ifndef AMDJ_RTREE_ENTRY_H_
#define AMDJ_RTREE_ENTRY_H_

#include <cstdint>

#include "geom/rect.h"
#include "storage/page.h"

namespace amdj::rtree {

/// One slot of an R-tree node: an MBR plus either the page id of a child
/// node (internal nodes) or a caller-assigned object id (leaf nodes).
struct Entry {
  geom::Rect rect;
  uint32_t id = 0;

  Entry() = default;
  Entry(const geom::Rect& r, uint32_t i) : rect(r), id(i) {}
};

/// On-page size of a serialized entry: 4 coordinates + id, packed.
inline constexpr size_t kEntryBytes = 4 * sizeof(double) + sizeof(uint32_t);

/// On-page node header: level + entry count (+ alignment padding).
inline constexpr size_t kNodeHeaderBytes = 8;

/// Hard upper bound on entries per 4 KB node ("fanout"). The paper's trees
/// have node capacities in the low hundreds ("each R-tree node may contain
/// hundreds of child nodes", Section 3.2); with 4 KB pages and 36-byte
/// entries this gives 113.
inline constexpr uint32_t kMaxEntriesPerPage =
    static_cast<uint32_t>((storage::kPageSize - kNodeHeaderBytes) /
                          kEntryBytes);

}  // namespace amdj::rtree

#endif  // AMDJ_RTREE_ENTRY_H_

#ifndef AMDJ_CORE_SJ_SORT_H_
#define AMDJ_CORE_SJ_SORT_H_

#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "core/options.h"
#include "geom/units.h"
#include "core/pair_entry.h"
#include "rtree/rtree.h"

namespace amdj::core {

/// SJ-SORT (Section 5's non-incremental baseline): an R-tree spatial join
/// with a within(Dmax) predicate followed by an external sort of the
/// qualifying pairs. The paper grants it the favorable assumption that the
/// *true* Dmax (the k-th nearest pair distance) is known a priori — the
/// caller passes it in (the umbrella API computes it with an exact join
/// when asked to).
class SjSort {
 public:
  /// Returns the k nearest object pairs in non-decreasing distance order.
  /// `dmax` must be >= the true k-th nearest pair distance, or fewer than
  /// k pairs are returned. `stats` may be null; spatial-join insertions
  /// into the sorter are counted as main-queue insertions so Figure 10(b)
  /// can compare queue work across algorithms.
  static StatusOr<std::vector<ResultPair>> Run(const rtree::RTree& r,
                                               const rtree::RTree& s,
                                               uint64_t k, geom::DistVal dmax,
                                               const JoinOptions& options,
                                               JoinStats* stats);
};

}  // namespace amdj::core

#endif  // AMDJ_CORE_SJ_SORT_H_

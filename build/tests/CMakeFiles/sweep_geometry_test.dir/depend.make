# Empty dependencies file for sweep_geometry_test.
# This may be replaced when dependencies are built.

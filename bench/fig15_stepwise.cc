// Figure 15: step-wise incremental execution. A user repeatedly requests
// 10,000 more pairs until 100,000 are produced. Cumulative response time
// after each step for: HS-IDJ, AM-IDJ with estimated eDmax, AM-IDJ driven
// by the *real* Dmax schedule (which compensates every step), and SJ-SORT
// restarted from scratch for each new cardinality (costs accumulate).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/amidj.h"
#include "core/cost_model.h"

namespace amdj::bench {
namespace {

constexpr uint64_t kStep = 10000;
constexpr uint64_t kTotal = 100000;

/// Cumulative response time after each 10k batch for one cursor run.
template <typename NextBatch>
std::vector<double> MeasureCursor(BenchEnv& env, NextBatch&& next_batch) {
  std::vector<double> cumulative;
  const Status s = env.pool->Clear();
  AMDJ_CHECK(s.ok()) << s.ToString();
  const core::CostModel model;
  storage::DiskStats tree0 = env.tree_disk->stats();
  storage::DiskStats queue0 = env.queue_disk->stats();
  double cpu = 0.0;
  for (uint64_t step = 1; step <= kTotal / kStep; ++step) {
    Timer timer;
    next_batch(step);
    cpu += timer.ElapsedSeconds();
    const double io =
        model.Seconds(core::CostModel::Delta(tree0, env.tree_disk->stats())) +
        model.Seconds(
            core::CostModel::Delta(queue0, env.queue_disk->stats()));
    cumulative.push_back(cpu + io);
  }
  return cumulative;
}

void Run(int argc, char** argv) {
  BenchEnv env = MakeTigerEnv(BenchConfig::FromArgs(argc, argv));
  PrintHeader(
      "Figure 15: step-wise incremental execution (10k pairs per step)",
      env);

  // The true Dmax at each step boundary, for the oracle-driven AM-IDJ.
  auto full = core::RunKDistanceJoin(*env.streets, *env.hydro, kTotal,
                                     core::KdjAlgorithm::kBKdj,
                                     env.MakeJoinOptions(), nullptr);
  AMDJ_CHECK(full.ok()) << full.status().ToString();
  AMDJ_CHECK(full->size() == kTotal);
  std::vector<double> step_dmax;
  for (uint64_t step = 1; step <= kTotal / kStep; ++step) {
    step_dmax.push_back((*full)[step * kStep - 1].distance);
  }

  auto drain = [](core::DistanceJoinCursor& cursor, uint64_t n) {
    core::ResultPair pair;
    bool done = false;
    for (uint64_t i = 0; i < n && !done; ++i) {
      const Status s = cursor.Next(&pair, &done);
      AMDJ_CHECK(s.ok()) << s.ToString();
    }
  };

  // HS-IDJ and AM-IDJ (estimated eDmax) through the umbrella API.
  std::vector<std::vector<double>> series;
  std::vector<std::string> names;
  for (const auto algorithm :
       {core::IdjAlgorithm::kHsIdj, core::IdjAlgorithm::kAmIdj}) {
    JoinStats stats;
    auto cursor = core::OpenIncrementalJoin(*env.streets, *env.hydro,
                                            algorithm, env.MakeJoinOptions(),
                                            &stats);
    AMDJ_CHECK(cursor.ok()) << cursor.status().ToString();
    names.push_back(core::ToString(algorithm) +
                    std::string(algorithm == core::IdjAlgorithm::kAmIdj
                                    ? " (est)"
                                    : ""));
    series.push_back(MeasureCursor(env, [&](uint64_t step) {
      (*cursor)->PrefetchHint(step * kStep);
      drain(**cursor, kStep);
    }));
  }

  // AM-IDJ driven by the true Dmax of each step.
  {
    JoinStats stats;
    env.pool->SetStatsSink(&stats);
    core::AmIdjCursor cursor(*env.streets, *env.hydro, env.MakeJoinOptions(),
                             &stats);
    names.push_back("AM-IDJ (real Dmax)");
    series.push_back(MeasureCursor(env, [&](uint64_t step) {
      cursor.ForceNextStageEdmax(geom::DistVal(step_dmax[step - 1]));
      drain(cursor, kStep);
    }));
    env.pool->SetStatsSink(nullptr);
  }

  // SJ-SORT restarted per step; time accumulates across restarts.
  {
    names.push_back("SJ-SORT (restart)");
    std::vector<double> cumulative;
    const core::CostModel model;
    double total = 0.0;
    for (uint64_t step = 1; step <= kTotal / kStep; ++step) {
      const Status s = env.pool->Clear();
      AMDJ_CHECK(s.ok()) << s.ToString();
      storage::DiskStats tree0 = env.tree_disk->stats();
      storage::DiskStats queue0 = env.queue_disk->stats();
      JoinStats stats;
      Timer timer;
      auto result = core::RunKDistanceJoin(
          *env.streets, *env.hydro, step * kStep, core::KdjAlgorithm::kSjSort,
          env.MakeJoinOptions(), &stats);
      AMDJ_CHECK(result.ok()) << result.status().ToString();
      total += timer.ElapsedSeconds() +
               model.Seconds(
                   core::CostModel::Delta(tree0, env.tree_disk->stats())) +
               model.Seconds(
                   core::CostModel::Delta(queue0, env.queue_disk->stats()));
      cumulative.push_back(total);
    }
    series.push_back(cumulative);
  }

  const std::vector<int> widths = {20, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9};
  std::vector<std::string> header = {"cumulative resp (s)"};
  for (uint64_t step = 1; step <= kTotal / kStep; ++step) {
    header.push_back(FormatCount(step * kStep / 1000) + "k");
  }
  PrintRow(header, widths);
  for (size_t i = 0; i < series.size(); ++i) {
    std::vector<std::string> row = {names[i]};
    for (double v : series[i]) row.push_back(FormatSeconds(v));
    PrintRow(row, widths);
  }
}

}  // namespace
}  // namespace amdj::bench

int main(int argc, char** argv) {
  amdj::bench::Run(argc, argv);
  return 0;
}

// Partition layer + sharded executor: STR tiling edge cases (empty tiles,
// all-duplicate points, more shards than objects), bounds-only shard-pair
// pruning accounting, and the headline differential — sharded execution
// must be byte-identical (values AND order) to the unsharded join across
// seeds, shard counts, thread counts, and both eligible algorithms, on
// tie-free workloads (distinct random points; see the DESIGN.md invariant
// table for the tie-plateau caveat the all-duplicates test exercises).

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/run_report.h"
#include "core/distance_join.h"
#include "core/partition.h"
#include "core/ranked_merge.h"
#include "core/shard_executor.h"
#include "service/join_service.h"
#include "test_util.h"
#include "workload/generators.h"

namespace amdj::core {
namespace {

Partition MustPartition(const workload::Dataset& data,
                        storage::BufferPool* pool, uint32_t shards) {
  PartitionOptions opts;
  opts.shards = shards;
  auto part = Partition::Build(data.ToEntries(), pool, opts);
  EXPECT_TRUE(part.ok()) << part.status().ToString();
  return std::move(part).value();
}

void ExpectIdentical(const std::vector<ResultPair>& unsharded,
                     const std::vector<ResultPair>& sharded,
                     const std::string& label) {
  ASSERT_EQ(unsharded.size(), sharded.size()) << label;
  for (size_t i = 0; i < unsharded.size(); ++i) {
    ASSERT_EQ(unsharded[i], sharded[i])
        << label << " diverges at rank " << i << ": unsharded=("
        << unsharded[i].distance << "," << unsharded[i].r_id << ","
        << unsharded[i].s_id << ") sharded=(" << sharded[i].distance << ","
        << sharded[i].r_id << "," << sharded[i].s_id << ")";
  }
}

TEST(RankedMergeTest, MergesSortedRunsWithLimit) {
  const std::vector<std::vector<int>> runs = {{1, 4, 7}, {2, 2, 9}, {}, {3}};
  const auto less = [](int a, int b) { return a < b; };
  EXPECT_EQ(RankedMerge(runs, 100, less),
            (std::vector<int>{1, 2, 2, 3, 4, 7, 9}));
  EXPECT_EQ(RankedMerge(runs, 3, less), (std::vector<int>{1, 2, 2}));
  EXPECT_TRUE(RankedMerge(runs, 0, less).empty());
  EXPECT_TRUE(
      RankedMerge(std::vector<std::vector<int>>{}, 5, less).empty());
}

TEST(PartitionTest, TilesAreBalancedAndLookupsWork) {
  const workload::Dataset data = workload::UniformPoints(1000, 42);
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 1024);
  const Partition part = MustPartition(data, &pool, 8);

  ASSERT_EQ(part.shards().size(), 8u);
  EXPECT_EQ(part.total_size(), 1000u);
  uint64_t sum = 0;
  for (const Shard& sh : part.shards()) {
    sum += sh.size;
    // Proportional STR cuts keep every tile within a couple of objects of
    // the even split.
    EXPECT_NEAR(static_cast<double>(sh.size), 125.0, 2.0);
    ASSERT_NE(sh.tree, nullptr);
    EXPECT_EQ(sh.tree->size(), sh.size);
    // The shard MBB is the exact bounds of the shard's tree.
    EXPECT_EQ(sh.bounds, sh.tree->bounds());
    EXPECT_TRUE(part.bounds().Contains(sh.bounds));
  }
  EXPECT_EQ(sum, 1000u);

  for (uint32_t id = 0; id < 1000; ++id) {
    const geom::Rect* rect = part.object_rect(id);
    ASSERT_NE(rect, nullptr) << "id " << id;
    EXPECT_EQ(*rect, data.objects[id]);
  }
  EXPECT_EQ(part.object_rect(1000), nullptr);
}

TEST(PartitionTest, MoreShardsThanObjectsLeavesEmptyTiles) {
  const workload::Dataset data = workload::UniformPoints(3, 7);
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 256);
  const Partition part = MustPartition(data, &pool, 8);

  ASSERT_EQ(part.shards().size(), 8u);
  uint32_t non_empty = 0;
  for (const Shard& sh : part.shards()) {
    if (sh.size == 0) {
      EXPECT_EQ(sh.tree, nullptr);
      EXPECT_TRUE(sh.bounds.IsEmpty());
    } else {
      ASSERT_NE(sh.tree, nullptr);
      ++non_empty;
    }
  }
  EXPECT_EQ(non_empty, 3u);
  EXPECT_EQ(part.total_size(), 3u);
}

TEST(PartitionTest, RejectsZeroShardsAndBadFill) {
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 64);
  PartitionOptions opts;
  opts.shards = 0;
  EXPECT_FALSE(Partition::Build({}, &pool, opts).ok());
  opts.shards = 2;
  opts.fill = 0.0;
  EXPECT_FALSE(Partition::Build({}, &pool, opts).ok());
  opts.fill = 0.9;
  EXPECT_FALSE(Partition::Build({}, nullptr, opts).ok());
}

TEST(PartitionTest, AllDuplicatePointsTileDeterministically) {
  workload::Dataset data;
  data.name = "dups";
  data.objects.assign(100, geom::Rect(500.0, 500.0, 500.0, 500.0));
  storage::InMemoryDiskManager disk_a, disk_b;
  storage::BufferPool pool_a(&disk_a, 512), pool_b(&disk_b, 512);
  const Partition a = MustPartition(data, &pool_a, 4);
  const Partition b = MustPartition(data, &pool_b, 4);
  ASSERT_EQ(a.shards().size(), b.shards().size());
  for (size_t i = 0; i < a.shards().size(); ++i) {
    // Identical centers everywhere: the id tie-break alone decides the
    // tiling, so two builds agree shard by shard.
    EXPECT_EQ(a.shards()[i].size, b.shards()[i].size) << "shard " << i;
    EXPECT_EQ(a.shards()[i].bounds, b.shards()[i].bounds) << "shard " << i;
  }
}

TEST(ShardJoinTest, AllDuplicatePointsJoinIsACorrectTopK) {
  workload::Dataset data;
  data.name = "dups";
  data.objects.assign(40, geom::Rect(500.0, 500.0, 500.0, 500.0));
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 512);
  const Partition r = MustPartition(data, &pool, 4);
  const Partition s = MustPartition(data, &pool, 4);

  ShardedJoinOptions options;
  options.threads = 4;
  JoinStats stats;
  auto result = RunShardedKDistanceJoin(r, s, 50, options, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Every pair is at distance zero — any 50 distinct pairs are a correct
  // top-50 (the one situation where sharded and unsharded may legally
  // pick different ids; see DESIGN.md).
  ASSERT_EQ(result->size(), 50u);
  for (const ResultPair& p : *result) {
    EXPECT_EQ(p.distance, 0.0);
  }
  test::ExpectNoDuplicates(*result);
  EXPECT_EQ(stats.pairs_produced, 50u);
}

TEST(ShardJoinTest, RejectsUnsupportedConfigurations) {
  const workload::Dataset data = workload::UniformPoints(50, 3);
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 256);
  const Partition r = MustPartition(data, &pool, 2);
  const Partition s = MustPartition(data, &pool, 2);
  ShardedJoinOptions options;
  options.algorithm = KdjAlgorithm::kHsKdj;
  EXPECT_FALSE(RunShardedKDistanceJoin(r, s, 10, options, nullptr).ok());
  options.algorithm = KdjAlgorithm::kSjSort;
  EXPECT_FALSE(RunShardedKDistanceJoin(r, s, 10, options, nullptr).ok());
  options.algorithm = KdjAlgorithm::kAmKdj;
  options.threads = 0;
  EXPECT_FALSE(RunShardedKDistanceJoin(r, s, 10, options, nullptr).ok());
}

// The headline differential: byte-identical values and order against the
// unsharded join, across seeds, shard counts (including shards larger than
// needed, so empty-tile pairs flow through scheduling), thread counts and
// both supported algorithms. Distinct random points keep the result list
// free of key ties, where byte-identity is the contract.
TEST(ShardJoinTest, ByteIdenticalToUnshardedAcrossSeeds) {
  for (const uint64_t seed : {7u, 23u, 123u, 991u}) {
    const workload::Dataset r_data = workload::UniformPoints(1200, seed);
    const workload::Dataset s_data =
        workload::GaussianClusters(700, 6, 0.05, seed + 1000);
    test::JoinFixture f = test::MakeFixture(r_data, s_data, 32, 256);
    storage::InMemoryDiskManager shard_disk;
    storage::BufferPool shard_pool(&shard_disk, 2048);

    for (const uint64_t k : {1u, 64u, 1500u}) {
      for (const KdjAlgorithm algorithm :
           {KdjAlgorithm::kBKdj, KdjAlgorithm::kAmKdj}) {
        const JoinOptions join;
        auto unsharded =
            RunKDistanceJoin(*f.r, *f.s, k, algorithm, join, nullptr);
        ASSERT_TRUE(unsharded.ok()) << unsharded.status().ToString();

        for (const uint32_t shards : {1u, 4u, 9u}) {
          const Partition r = MustPartition(r_data, &shard_pool, shards);
          const Partition s = MustPartition(s_data, &shard_pool, shards);
          for (const uint32_t threads : {1u, 4u}) {
            ShardedJoinOptions options;
            options.join = join;
            options.threads = threads;
            options.algorithm = algorithm;
            JoinStats stats;
            auto sharded =
                RunShardedKDistanceJoin(r, s, k, options, &stats);
            ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
            const std::string label =
                "seed=" + std::to_string(seed) + " k=" + std::to_string(k) +
                " algo=" + ToString(algorithm) +
                " shards=" + std::to_string(shards) +
                " threads=" + std::to_string(threads);
            ExpectIdentical(*unsharded, *sharded, label);
            // Scheduling accounting closes: every considered pair is
            // either pruned (bounds or cutoff) or executed.
            EXPECT_EQ(stats.shard_pairs_considered,
                      stats.shard_pairs_pruned_bounds +
                          stats.shard_pairs_pruned_cutoff +
                          stats.shard_pairs_executed)
                << label;
            EXPECT_GT(stats.shard_pairs_executed, 0u) << label;
          }
        }
      }
    }
  }
}

TEST(ShardJoinTest, MatchesUnshardedUnderWindowsAndSelfJoinKnobs) {
  const workload::Dataset data = workload::UniformPoints(900, 5);
  test::JoinFixture f = test::MakeFixture(data, data, 32, 256);
  storage::InMemoryDiskManager shard_disk;
  storage::BufferPool shard_pool(&shard_disk, 2048);
  const Partition r = MustPartition(data, &shard_pool, 4);
  const Partition s = MustPartition(data, &shard_pool, 4);

  JoinOptions join;
  join.exclude_same_id = true;
  join.r_window =
      geom::Rect(0, 0, workload::kUniverseSize / 2, workload::kUniverseSize);
  auto unsharded =
      RunKDistanceJoin(*f.r, *f.s, 200, KdjAlgorithm::kAmKdj, join, nullptr);
  ASSERT_TRUE(unsharded.ok());

  ShardedJoinOptions options;
  options.join = join;
  options.threads = 4;
  JoinStats stats;
  auto sharded = RunShardedKDistanceJoin(r, s, 200, options, &stats);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ExpectIdentical(*unsharded, *sharded, "windowed self-join");
  // Windows disable the count-derived bound: nothing may be bounds-pruned.
  EXPECT_EQ(stats.shard_pairs_pruned_bounds, 0u);
}

TEST(ShardJoinTest, MatchesBruteForceOnClusteredData) {
  const workload::Dataset r_data =
      workload::GaussianClusters(400, 8, 0.01, 17);
  const workload::Dataset s_data =
      workload::GaussianClusters(300, 8, 0.01, 18);
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 1024);
  const Partition r = MustPartition(r_data, &pool, 9);
  const Partition s = MustPartition(s_data, &pool, 9);

  ShardedJoinOptions options;
  options.threads = 4;
  JoinStats stats;
  auto result = RunShardedKDistanceJoin(r, s, 500, options, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto brute =
      test::BruteForceDistances(r_data.objects, s_data.objects);
  test::ExpectMatchesBruteForce(*result, brute, 500, r_data.objects,
                                s_data.objects);
  test::ExpectNoDuplicates(*result);
  // Tight clusters + k << |R||S|: a healthy share of shard pairs must die
  // on bounds alone, before any tree I/O.
  EXPECT_GT(stats.shard_pairs_pruned_bounds, 0u);
}

TEST(ServiceShardTest, ShardedServiceMatchesUnshardedService) {
  const workload::Dataset r_data = workload::UniformPoints(1000, 31);
  const workload::Dataset s_data = workload::UniformPoints(800, 32);
  test::JoinFixture f = test::MakeFixture(r_data, s_data, 32, 256);

  service::JoinService::Options plain;
  service::JoinService::Options sharded = plain;
  sharded.shards = 4;
  sharded.shard_threads = 4;
  service::JoinService plain_svc(*f.r, *f.s, plain);
  service::JoinService sharded_svc(*f.r, *f.s, sharded);

  for (const KdjAlgorithm algorithm :
       {KdjAlgorithm::kBKdj, KdjAlgorithm::kAmKdj}) {
    service::JoinRequest request;
    request.kind = service::JoinRequest::Kind::kKdj;
    request.kdj_algorithm = algorithm;
    request.k = 500;
    service::JoinResponse a = plain_svc.Run(request);
    service::JoinResponse b = sharded_svc.Run(request);
    ASSERT_TRUE(a.status.ok()) << a.status.ToString();
    ASSERT_TRUE(b.status.ok()) << b.status.ToString();
    ExpectIdentical(a.results, b.results,
                    std::string("service ") + ToString(algorithm));
    EXPECT_EQ(a.stats.shard_pairs_executed, 0u);
    EXPECT_GT(b.stats.shard_pairs_executed, 0u);
    EXPECT_EQ(b.stats.pairs_produced, b.results.size());
  }

  // Non-shardable algorithms and IDJ cursors fall back to the unsharded
  // path on a sharded service.
  service::JoinRequest hs;
  hs.kdj_algorithm = KdjAlgorithm::kHsKdj;
  hs.k = 50;
  service::JoinResponse hs_resp = sharded_svc.Run(hs);
  ASSERT_TRUE(hs_resp.status.ok()) << hs_resp.status.ToString();
  EXPECT_EQ(hs_resp.stats.shard_pairs_executed, 0u);
  EXPECT_EQ(hs_resp.results.size(), 50u);

  service::JoinRequest idj;
  idj.kind = service::JoinRequest::Kind::kIdj;
  idj.k = 50;
  service::JoinResponse idj_resp = sharded_svc.Run(idj);
  ASSERT_TRUE(idj_resp.status.ok()) << idj_resp.status.ToString();
  EXPECT_EQ(idj_resp.results.size(), 50u);
}

// Satellite of the observability PR: the sharded executor must drive an
// attached RunReport itself (per-pair joins run report-less), with its own
// stage phases whose counter deltas land in the stage that incurred them
// and totals that surface the shard_pairs_* scheduling counters.
TEST(ShardJoinTest, DrivesAttachedRunReportWithStagePhases) {
  const workload::Dataset r_data = workload::UniformPoints(1200, 11);
  const workload::Dataset s_data = workload::UniformPoints(800, 12);
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 2048);
  const Partition r = MustPartition(r_data, &pool, 4);
  const Partition s = MustPartition(s_data, &pool, 4);

  RunReport report;
  ShardedJoinOptions options;
  options.threads = 4;
  options.join.report = &report;
  JoinStats stats;
  auto result = RunShardedKDistanceJoin(r, s, 64, options, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_EQ(report.phases().size(), 4u);
  EXPECT_EQ(report.phases()[0].name, "shard-plan");
  EXPECT_EQ(report.phases()[1].name, "shard-probe");
  EXPECT_EQ(report.phases()[2].name, "shard-topup");
  EXPECT_EQ(report.phases()[3].name, "shard-merge");

  // Scheduling counters land in the phase that incurred them: pairs are
  // considered (and bounds-pruned) while planning, executed while probing.
  EXPECT_GT(report.phases()[0].delta.shard_pairs_considered, 0u);
  EXPECT_EQ(report.phases()[0].delta.shard_pairs_executed, 0u);
  EXPECT_GT(report.phases()[1].delta.shard_pairs_executed, 0u);
  EXPECT_GT(report.phases()[1].delta.real_distance_computations, 0u);

  // Totals surface the scheduling counters and reconcile with the stats
  // block the caller got.
  EXPECT_EQ(report.totals().shard_pairs_considered,
            stats.shard_pairs_considered);
  EXPECT_EQ(report.totals().shard_pairs_executed, stats.shard_pairs_executed);
  EXPECT_EQ(report.totals().pairs_produced, result->size());
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("sharded-AM-KDJ"), std::string::npos);
  EXPECT_NE(json.find("shard_pairs_considered"), std::string::npos);
  EXPECT_NE(json.find("shard-probe"), std::string::npos);

  // Attaching a report must not perturb the result (it is observation
  // only): a report-free run is identical.
  ShardedJoinOptions bare_options;
  bare_options.threads = 4;
  auto bare = RunShardedKDistanceJoin(r, s, 64, bare_options, nullptr);
  ASSERT_TRUE(bare.ok());
  ExpectIdentical(*bare, *result, "report attached vs not");
}

}  // namespace
}  // namespace amdj::core

#ifndef AMDJ_COMMON_ANNOTATIONS_H_
#define AMDJ_COMMON_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations (-Wthread-safety).
///
/// These macros attach compile-time lock-discipline contracts to the
/// concurrency layer (common/mutex.h) and to every class that guards state
/// with it: which capability (mutex) protects which field, which functions
/// require or must not hold it, and which functions acquire/release it.
/// Under Clang with the analysis enabled, violating a contract — touching a
/// AMDJ_GUARDED_BY field without its mutex, double-acquiring, returning with
/// a lock held — is a hard build error (CI runs -Werror=thread-safety; see
/// .github/workflows/ci.yml "thread-safety" job and DESIGN.md "Concurrency
/// contracts"). Under GCC and other compilers every macro expands to
/// nothing, so annotations cost nothing and cannot break portability.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && defined(__has_attribute)
#define AMDJ_TSA_HAS_ATTRIBUTE(x) __has_attribute(x)
#else
#define AMDJ_TSA_HAS_ATTRIBUTE(x) 0
#endif

#if AMDJ_TSA_HAS_ATTRIBUTE(capability)
#define AMDJ_TSA(x) __attribute__((x))
#else
#define AMDJ_TSA(x)
#endif

/// Marks a class as a capability (lockable resource). The string names the
/// capability kind in diagnostics ("mutex" here).
#define AMDJ_CAPABILITY(x) AMDJ_TSA(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability (MutexLock).
#define AMDJ_SCOPED_CAPABILITY AMDJ_TSA(scoped_lockable)

/// Field may only be read or written while holding the given capability.
#define AMDJ_GUARDED_BY(x) AMDJ_TSA(guarded_by(x))

/// Pointer field: the *pointee* may only be accessed while holding the
/// capability (the pointer itself is unguarded).
#define AMDJ_PT_GUARDED_BY(x) AMDJ_TSA(pt_guarded_by(x))

/// Caller must hold the capability (exclusively) when invoking.
#define AMDJ_REQUIRES(...) AMDJ_TSA(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability when invoking (deadlock guard for
/// functions that acquire it themselves).
#define AMDJ_EXCLUDES(...) AMDJ_TSA(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define AMDJ_ACQUIRE(...) AMDJ_TSA(acquire_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define AMDJ_RELEASE(...) AMDJ_TSA(release_capability(__VA_ARGS__))

/// Function attempts to acquire the capability; holds it iff the return
/// value equals `b`.
#define AMDJ_TRY_ACQUIRE(b, ...) AMDJ_TSA(try_acquire_capability(b, __VA_ARGS__))

/// Assertion that the capability is already held (runtime-checked escape
/// hatch; the analysis trusts it past this point).
#define AMDJ_ASSERT_CAPABILITY(x) AMDJ_TSA(assert_capability(x))

/// Function returns a reference to the given capability (accessor pattern).
#define AMDJ_RETURN_CAPABILITY(x) AMDJ_TSA(lock_returned(x))

/// Disables the analysis for one function. Reserved for code whose
/// discipline the analysis cannot express (e.g. locks adopted across
/// scopes); every use must carry a comment saying why.
#define AMDJ_NO_THREAD_SAFETY_ANALYSIS AMDJ_TSA(no_thread_safety_analysis)

#endif  // AMDJ_COMMON_ANNOTATIONS_H_

#include "spatialjoin/external_sorter.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"

namespace amdj::spatialjoin {
namespace {

using core::ResultPair;

std::vector<ResultPair> DrainSorted(ExternalSorter& sorter) {
  std::vector<ResultPair> out;
  ResultPair rec;
  bool done = false;
  while (true) {
    EXPECT_TRUE(sorter.Next(&rec, &done).ok());
    if (done) break;
    out.push_back(rec);
  }
  return out;
}

TEST(ExternalSorterTest, InMemorySortWithoutDisk) {
  ExternalSorter sorter(nullptr, 1024, nullptr);
  Random rng(1);
  std::vector<double> expected;
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.Uniform(0, 100);
    expected.push_back(d);
    ASSERT_TRUE(sorter.Add({d, static_cast<uint32_t>(i), 0}).ok());
  }
  ASSERT_TRUE(sorter.Finish().ok());
  EXPECT_EQ(sorter.run_count(), 0u);
  std::sort(expected.begin(), expected.end());
  const auto out = DrainSorted(sorter);
  ASSERT_EQ(out.size(), expected.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].distance, expected[i]);
  }
}

TEST(ExternalSorterTest, MultiRunMergeProducesGlobalOrder) {
  storage::InMemoryDiskManager disk;
  JoinStats stats;
  // 2 KB buffer -> 128 records per run; 10k records -> ~79 runs.
  ExternalSorter sorter(&disk, 2048, &stats);
  Random rng(2);
  std::vector<double> expected;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.Uniform(0, 1e6);
    expected.push_back(d);
    ASSERT_TRUE(sorter.Add({d, static_cast<uint32_t>(i), 0}).ok());
  }
  ASSERT_TRUE(sorter.Finish().ok());
  EXPECT_GT(sorter.run_count(), 10u);
  EXPECT_GT(stats.queue_page_writes, 0u);
  std::sort(expected.begin(), expected.end());
  const auto out = DrainSorted(sorter);
  ASSERT_EQ(out.size(), expected.size());
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i].distance, expected[i]) << "at " << i;
  }
  EXPECT_GT(stats.queue_page_reads, 0u);
}

TEST(ExternalSorterTest, EmptyInput) {
  storage::InMemoryDiskManager disk;
  ExternalSorter sorter(&disk, 4096, nullptr);
  ASSERT_TRUE(sorter.Finish().ok());
  const auto out = DrainSorted(sorter);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(sorter.count(), 0u);
}

TEST(ExternalSorterTest, ExactlyOneFullRun) {
  storage::InMemoryDiskManager disk;
  ExternalSorter sorter(&disk, 64 * sizeof(core::ResultPair), nullptr);
  for (int i = 64; i > 0; --i) {
    ASSERT_TRUE(
        sorter.Add({static_cast<double>(i), static_cast<uint32_t>(i), 0})
            .ok());
  }
  ASSERT_TRUE(sorter.Finish().ok());
  const auto out = DrainSorted(sorter);
  ASSERT_EQ(out.size(), 64u);
  EXPECT_EQ(out.front().distance, 1.0);
  EXPECT_EQ(out.back().distance, 64.0);
}

TEST(ExternalSorterTest, DuplicateDistancesKeepAllRecords) {
  storage::InMemoryDiskManager disk;
  ExternalSorter sorter(&disk, 1024, nullptr);
  for (uint32_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(sorter.Add({3.25, i, i + 1}).ok());
  }
  ASSERT_TRUE(sorter.Finish().ok());
  const auto out = DrainSorted(sorter);
  ASSERT_EQ(out.size(), 500u);
  std::set<uint32_t> ids;
  for (const auto& rec : out) {
    EXPECT_EQ(rec.distance, 3.25);
    ids.insert(rec.r_id);
  }
  EXPECT_EQ(ids.size(), 500u);
}

TEST(ExternalSorterTest, ApiMisuseIsRejected) {
  ExternalSorter sorter(nullptr, 1024, nullptr);
  ResultPair rec;
  bool done = false;
  EXPECT_EQ(sorter.Next(&rec, &done).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(sorter.Finish().ok());
  EXPECT_EQ(sorter.Add({1.0, 0, 0}).code(), StatusCode::kFailedPrecondition);
  // Finish is idempotent.
  EXPECT_TRUE(sorter.Finish().ok());
}

TEST(ExternalSorterTest, DiskFailurePropagates) {
  storage::InMemoryDiskManager base;
  storage::FaultInjectionDiskManager faulty(&base);
  ExternalSorter sorter(&faulty, 1024, nullptr);
  faulty.FailWritesAfter(0);
  Status status = Status::OK();
  for (int i = 0; i < 200 && status.ok(); ++i) {
    status = sorter.Add({static_cast<double>(i), 0, 0});
  }
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace amdj::spatialjoin

#include "core/semi_join.h"

#include <algorithm>
#include <unordered_map>

#include "core/amidj.h"
#include "rtree/knn.h"

namespace amdj::core {

namespace {

StatusOr<std::vector<SemiJoinResult>> ViaIncrementalJoin(
    const rtree::RTree& r, const rtree::RTree& s, uint64_t neighbors,
    const JoinOptions& options, JoinStats* stats) {
  std::vector<SemiJoinResult> results;
  results.reserve(r.size() * neighbors);
  AmIdjCursor cursor(r, s, options, stats);
  // At least |R| * neighbors pairs will be consumed.
  cursor.PrefetchHint(r.size() * neighbors);
  std::unordered_map<uint32_t, uint64_t> taken;  // r_id -> partners so far
  taken.reserve(r.size());
  uint64_t satisfied = 0;  // R objects that reached `neighbors` partners
  ResultPair pair;
  bool done = false;
  while (satisfied < r.size()) {
    AMDJ_RETURN_IF_ERROR(cursor.Next(&pair, &done));
    if (done) break;  // exclude_same_id / small S can starve objects
    uint64_t& count = taken[pair.r_id];
    if (count >= neighbors) continue;
    ++count;
    if (count == neighbors) ++satisfied;
    results.push_back({pair.r_id, pair.s_id, pair.distance});
  }
  return results;
}

StatusOr<std::vector<SemiJoinResult>> ViaPerObjectNn(
    const rtree::RTree& r, const rtree::RTree& s, uint64_t neighbors,
    const JoinOptions& options, JoinStats* stats) {
  std::vector<SemiJoinResult> results;
  results.reserve(r.size());
  std::vector<rtree::Entry> r_objects;
  r_objects.reserve(r.size());
  AMDJ_RETURN_IF_ERROR(r.ForEachObject(
      [&](const rtree::Entry& e) { r_objects.push_back(e); }));
  for (const rtree::Entry& obj : r_objects) {
    rtree::NearestNeighborCursor nn(s, obj.rect, options.metric);
    rtree::Entry partner;
    geom::DistVal distance = geom::DistVal::Zero();
    bool done = false;
    uint64_t taken = 0;
    while (taken < neighbors) {
      AMDJ_RETURN_IF_ERROR(nn.Next(&partner, &distance, &done));
      if (done) break;
      if (options.exclude_same_id && partner.id == obj.id) continue;
      if (stats != nullptr) ++stats->real_distance_computations;
      results.push_back({obj.id, partner.id, distance.raw()});
      ++taken;
    }
  }
  std::sort(results.begin(), results.end(),
            [](const SemiJoinResult& a, const SemiJoinResult& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.r_id < b.r_id;
            });
  if (stats != nullptr) stats->pairs_produced += results.size();
  return results;
}

}  // namespace

StatusOr<std::vector<SemiJoinResult>> KnnJoin(
    const rtree::RTree& r, const rtree::RTree& s, uint64_t neighbors,
    const JoinOptions& options, SemiJoinStrategy strategy,
    JoinStats* stats) {
  if (neighbors == 0) {
    return Status::InvalidArgument("neighbors must be >= 1");
  }
  if (r.size() == 0 || s.size() == 0) return std::vector<SemiJoinResult>();
  switch (strategy) {
    case SemiJoinStrategy::kIncrementalJoin:
      return ViaIncrementalJoin(r, s, neighbors, options, stats);
    case SemiJoinStrategy::kPerObjectNn:
      return ViaPerObjectNn(r, s, neighbors, options, stats);
  }
  return Status::InvalidArgument("unknown semi-join strategy");
}

StatusOr<std::vector<SemiJoinResult>> DistanceSemiJoin(
    const rtree::RTree& r, const rtree::RTree& s, const JoinOptions& options,
    SemiJoinStrategy strategy, JoinStats* stats) {
  return KnnJoin(r, s, 1, options, strategy, stats);
}

}  // namespace amdj::core

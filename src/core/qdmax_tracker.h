#ifndef AMDJ_CORE_QDMAX_TRACKER_H_
#define AMDJ_CORE_QDMAX_TRACKER_H_

#include <algorithm>
#include <atomic>

#include "common/stats.h"
#include "core/options.h"
#include "core/pair_entry.h"
#include "queue/cutoff_tracker.h"
#include "queue/distance_queue.h"

namespace amdj::core {

/// Policy-dispatching wrapper around the qDmax cutoff state of the KDJ
/// algorithms. Call OnPush for every pair entering the main queue and
/// OnNodePairLeave for every non-object pair leaving it (expanded,
/// discarded, or bounced at a stage boundary).
///
/// kObjectPairsOnly (the paper's default) counts object-pair distances in
/// a plain bounded max-heap. kAllPairs additionally counts node-pair
/// max-distance *certificates*, revoked when the pair leaves the queue —
/// see TrackedDistanceQueue for why revocation is what makes that policy
/// sound. Pairs carrying compensation bookkeeping (already expanded once)
/// never contribute certificates: part of their subtree product is
/// already represented by their stage-one children.
class QdmaxTracker {
 public:
  QdmaxTracker(uint64_t k, const JoinOptions& options, JoinStats* stats)
      : policy_(options.distance_queue_policy),
        metric_(options.metric),
        external_(options.shared_cutoff_key),
        publish_(options.shared_cutoff_publish),
        sink_(options.shared_cutoff_sink),
        stats_(stats),
        objects_(static_cast<size_t>(k), stats),
        tracked_(static_cast<size_t>(k), stats) {}

  /// Records a pair that was just pushed into the main queue (or emitted —
  /// object-pair distances are permanent either way).
  void OnPush(const PairEntry& e) {
    if (e.IsObjectPair()) {
      if (sink_ != nullptr) sink_->OnResultKey(e.key);
      if (policy_ == DistanceQueuePolicy::kObjectPairsOnly) {
        objects_.Insert(e.key);
      } else {
        tracked_.Insert(e.key);
      }
      return;
    }
    if (policy_ == DistanceQueuePolicy::kAllPairs && !e.WasExpanded()) {
      if (stats_ != nullptr) ++stats_->real_distance_computations;
      tracked_.InsertRevocable(Certificate(e));
    }
  }

  /// Records a non-object pair leaving the main queue.
  void OnNodePairLeave(const PairEntry& e) {
    if (policy_ == DistanceQueuePolicy::kAllPairs && !e.WasExpanded()) {
      tracked_.Revoke(Certificate(e));
    }
  }

  /// The current qDmax, as a metric key (same space as PairEntry::key).
  /// With JoinOptions::shared_cutoff_key set, the externally maintained
  /// bound is min'ed in (relaxed load: the bound only shrinks, so a stale
  /// read is merely a looser — still sound — cutoff).
  /// With shared_cutoff_publish set, the local bound is also CAS-min'ed
  /// into the shared atomic first — see JoinOptions for why that is sound
  /// at every instant.
  geom::KeyVal Cutoff() const {
    const geom::KeyVal local =
        policy_ == DistanceQueuePolicy::kObjectPairsOnly
            ? objects_.CutoffKey()
            : tracked_.CutoffKey();
    if (publish_ != nullptr) AtomicMinKey(publish_, local);
    return external_ == nullptr
               ? local
               : std::min(local,
                          external_->load(std::memory_order_relaxed));
  }

 private:
  geom::KeyVal Certificate(const PairEntry& e) const {
    return geom::MaxDistanceKey(e.r.rect, e.s.rect, metric_);
  }

  DistanceQueuePolicy policy_;
  geom::Metric metric_;
  const std::atomic<geom::KeyVal>* external_;
  std::atomic<geom::KeyVal>* publish_;
  CutoffKeySink* sink_;
  JoinStats* stats_;
  queue::DistanceQueue objects_;
  queue::TrackedDistanceQueue tracked_;
};

}  // namespace amdj::core

#endif  // AMDJ_CORE_QDMAX_TRACKER_H_

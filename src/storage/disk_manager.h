#ifndef AMDJ_STORAGE_DISK_MANAGER_H_
#define AMDJ_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"
#include "storage/page.h"

namespace amdj::storage {

/// I/O counters kept by every DiskManager. "Sequential" accesses are those
/// whose page id immediately follows the previously accessed page; the
/// simulated cost model (core::CostModel) charges them at the paper's
/// sequential bandwidth and everything else at random bandwidth.
struct DiskStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t sequential_reads = 0;
  uint64_t random_reads = 0;
  uint64_t sequential_writes = 0;
  uint64_t random_writes = 0;
  uint64_t pages_allocated = 0;

  void Reset() { *this = DiskStats(); }
};

/// Page-granular storage abstraction. The bundled implementations are
/// thread-safe (internally locked), so multiple concurrent queries may
/// share one page file; note that DiskStats are then aggregated across
/// all of them.
///
/// The lock lives here in the base: the stats counters (and the
/// last-accessed page ids that classify sequential vs. random) are updated
/// by the derived I/O paths under `mutex_`, so one capability covers both
/// the derived manager's page state and the shared accounting — annotated,
/// compiler-checked (common/annotations.h).
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  /// Allocates a new page (possibly reusing a freed one) and returns its id.
  virtual PageId AllocatePage() = 0;

  /// Returns a page to the allocator's free list. Freeing a page that is
  /// already free is rejected (logged and ignored): admitting the
  /// duplicate would hand the same id to two later AllocatePage callers,
  /// silently aliasing their pages.
  virtual void FreePage(PageId page_id) = 0;

  /// Reads page `page_id` into `out` (kPageSize bytes).
  virtual Status ReadPage(PageId page_id, char* out) = 0;

  /// Writes kPageSize bytes from `data` to page `page_id`.
  virtual Status WritePage(PageId page_id, const char* data) = 0;

  /// Number of pages ever allocated (high-water mark, including freed).
  virtual uint32_t PageCount() const = 0;

  /// A consistent snapshot of the I/O counters. By value, under the lock:
  /// concurrent queries keep writing these counters, so handing out a
  /// reference would hand out a torn read.
  DiskStats stats() const AMDJ_EXCLUDES(mutex_) {
    const MutexLock lock(&mutex_);
    return stats_;
  }

 protected:
  /// Classifies and counts one read/write for the stats.
  void CountRead(PageId page_id) AMDJ_REQUIRES(mutex_);
  void CountWrite(PageId page_id) AMDJ_REQUIRES(mutex_);

  /// Guards stats_ / last_read_ / last_write_ here, plus the derived
  /// manager's page table and free list (one lock per manager).
  mutable Mutex mutex_;
  DiskStats stats_ AMDJ_GUARDED_BY(mutex_);

 private:
  PageId last_read_ AMDJ_GUARDED_BY(mutex_) = kInvalidPageId;
  PageId last_write_ AMDJ_GUARDED_BY(mutex_) = kInvalidPageId;
};

/// Heap-backed DiskManager. Used by tests and by benches that only care
/// about I/O *counts* (the simulated cost model turns counts into time).
class InMemoryDiskManager : public DiskManager {
 public:
  InMemoryDiskManager() = default;

  PageId AllocatePage() override;
  void FreePage(PageId page_id) override;
  Status ReadPage(PageId page_id, char* out) override;
  Status WritePage(PageId page_id, const char* data) override;
  uint32_t PageCount() const override;

 private:
  std::vector<std::unique_ptr<char[]>> pages_ AMDJ_GUARDED_BY(mutex_);
  std::vector<PageId> free_list_ AMDJ_GUARDED_BY(mutex_);
  /// Mirrors free_list_ for O(1) checks.
  std::unordered_set<PageId> free_set_ AMDJ_GUARDED_BY(mutex_);
};

/// File-backed DiskManager (one flat file of 4 KB pages).
class FileDiskManager : public DiskManager {
 public:
  /// Opens the backing file. By default the file is treated as scratch:
  /// truncated on open and removed on destruction. With
  /// `persistent = true` an existing file is reopened with its pages
  /// intact (page_count restored from the file size) and kept on close —
  /// the mode to use with RTree::WriteMetaPage / OpenFromMetaPage.
  /// Check Ok() before use.
  explicit FileDiskManager(const std::string& path, bool persistent = false);
  ~FileDiskManager() override;

  FileDiskManager(const FileDiskManager&) = delete;
  FileDiskManager& operator=(const FileDiskManager&) = delete;

  /// True if the backing file opened successfully.
  bool Ok() const { return file_ != nullptr; }

  PageId AllocatePage() override;
  void FreePage(PageId page_id) override;
  Status ReadPage(PageId page_id, char* out) override;
  Status WritePage(PageId page_id, const char* data) override;
  uint32_t PageCount() const override;

 private:
  /// fseek takes a `long`, which is 32-bit on some ABIs — page offsets
  /// overflow it past 2 GiB. Seeks go through a 64-bit-safe wrapper.
  Status SeekToPage(PageId page_id) AMDJ_REQUIRES(mutex_);

  std::string path_;
  bool persistent_ = false;
  /// The FILE handle is written only by the constructor/destructor; the
  /// seek+read/write pairs on it are serialized by mutex_.
  std::FILE* file_ AMDJ_PT_GUARDED_BY(mutex_) = nullptr;
  uint32_t page_count_ AMDJ_GUARDED_BY(mutex_) = 0;
  std::vector<PageId> free_list_ AMDJ_GUARDED_BY(mutex_);
  /// Mirrors free_list_ for O(1) checks.
  std::unordered_set<PageId> free_set_ AMDJ_GUARDED_BY(mutex_);
};

/// Wraps another DiskManager and injects failures, for testing error paths.
/// The countdowns are atomic, so the wrapper is as thread-safe as the
/// wrapped manager — the parallel executor and the join service hammer it
/// from many threads in the TSan tests.
class FaultInjectionDiskManager : public DiskManager {
 public:
  /// Does not take ownership of `base`.
  explicit FaultInjectionDiskManager(DiskManager* base) : base_(base) {}

  /// After `n` more successful reads, every read fails with IOError.
  void FailReadsAfter(uint64_t n) {
    reads_until_failure_.store(n, std::memory_order_relaxed);
  }
  /// After `n` more successful writes, every write fails with IOError.
  void FailWritesAfter(uint64_t n) {
    writes_until_failure_.store(n, std::memory_order_relaxed);
  }
  /// Clears injected failures.
  void Heal() {
    reads_until_failure_.store(kNever, std::memory_order_relaxed);
    writes_until_failure_.store(kNever, std::memory_order_relaxed);
  }

  PageId AllocatePage() override { return base_->AllocatePage(); }
  void FreePage(PageId page_id) override { base_->FreePage(page_id); }
  Status ReadPage(PageId page_id, char* out) override;
  Status WritePage(PageId page_id, const char* data) override;
  uint32_t PageCount() const override { return base_->PageCount(); }

 private:
  static constexpr uint64_t kNever = UINT64_MAX;

  /// Atomically consumes one unit of `countdown`. Returns false — without
  /// decrementing further — once the countdown has reached zero.
  static bool ConsumeBudget(std::atomic<uint64_t>* countdown);

  DiskManager* base_;
  std::atomic<uint64_t> reads_until_failure_{kNever};
  std::atomic<uint64_t> writes_until_failure_{kNever};
};

}  // namespace amdj::storage

#endif  // AMDJ_STORAGE_DISK_MANAGER_H_

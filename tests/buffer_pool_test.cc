#include "storage/buffer_pool.h"

#include <cstring>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "storage/disk_manager.h"

namespace amdj::storage {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  InMemoryDiskManager disk_;
};

TEST_F(BufferPoolTest, NewPageIsZeroedAndWritable) {
  BufferPool pool(&disk_, 4);
  PageId id = kInvalidPageId;
  auto guard = pool.NewPage(&id);
  ASSERT_TRUE(guard.ok());
  EXPECT_NE(id, kInvalidPageId);
  EXPECT_EQ(guard->data()[0], 0);
  guard->MutableData()[0] = 'Z';
  guard->Release();
  ASSERT_TRUE(pool.FlushAll().ok());
  char buf[kPageSize];
  ASSERT_TRUE(disk_.ReadPage(id, buf).ok());
  EXPECT_EQ(buf[0], 'Z');
}

TEST_F(BufferPoolTest, FetchHitsCacheOnSecondAccess) {
  BufferPool pool(&disk_, 4);
  PageId id;
  pool.NewPage(&id)->Release();
  { auto g = pool.FetchPage(id); ASSERT_TRUE(g.ok()); }
  const uint64_t misses = pool.miss_count();
  { auto g = pool.FetchPage(id); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(pool.miss_count(), misses);
  EXPECT_GE(pool.hit_count(), 2u);  // NewPage frame still resident
}

TEST_F(BufferPoolTest, EvictsLruAndWritesBackDirtyPages) {
  BufferPool pool(&disk_, 2);
  PageId a, b, c;
  {
    auto g = pool.NewPage(&a);
    ASSERT_TRUE(g.ok());
    g->MutableData()[0] = 'a';
  }
  {
    auto g = pool.NewPage(&b);
    ASSERT_TRUE(g.ok());
    g->MutableData()[0] = 'b';
  }
  {
    // Forces eviction of page a (LRU).
    auto g = pool.NewPage(&c);
    ASSERT_TRUE(g.ok());
    g->MutableData()[0] = 'c';
  }
  char buf[kPageSize];
  ASSERT_TRUE(disk_.ReadPage(a, buf).ok());
  EXPECT_EQ(buf[0], 'a');  // dirty page was flushed on eviction
  // Re-fetching a is a miss; content survives.
  auto g = pool.FetchPage(a);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->data()[0], 'a');
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  BufferPool pool(&disk_, 2);
  PageId a, b, c;
  auto ga = pool.NewPage(&a);
  ASSERT_TRUE(ga.ok());
  auto gb = pool.NewPage(&b);
  ASSERT_TRUE(gb.ok());
  // Both frames pinned: a third page cannot be placed.
  auto gc = pool.NewPage(&c);
  EXPECT_FALSE(gc.ok());
  EXPECT_EQ(gc.status().code(), StatusCode::kResourceExhausted);
  ga->Release();
  auto gc2 = pool.NewPage(&c);
  EXPECT_TRUE(gc2.ok());
}

TEST_F(BufferPoolTest, LruOrderRespectsRecency) {
  BufferPool pool(&disk_, 2);
  PageId a, b;
  pool.NewPage(&a)->Release();
  pool.NewPage(&b)->Release();
  // Touch a so b becomes LRU.
  pool.FetchPage(a);
  PageId c;
  pool.NewPage(&c)->Release();  // evicts b
  const uint64_t misses = pool.miss_count();
  pool.FetchPage(a);  // still resident
  EXPECT_EQ(pool.miss_count(), misses);
  pool.FetchPage(b);  // evicted -> miss
  EXPECT_EQ(pool.miss_count(), misses + 1);
}

TEST_F(BufferPoolTest, StatsSinkCountsAccessesHitsMisses) {
  BufferPool pool(&disk_, 4);
  PageId a;
  pool.NewPage(&a)->Release();
  ASSERT_TRUE(pool.Clear().ok());
  JoinStats stats;
  pool.SetStatsSink(&stats);
  pool.FetchPage(a);  // miss
  pool.FetchPage(a);  // hit
  pool.FetchPage(a);  // hit
  pool.SetStatsSink(nullptr);
  pool.FetchPage(a);  // not counted
  EXPECT_EQ(stats.node_accesses, 3u);
  EXPECT_EQ(stats.node_disk_reads, 1u);
  EXPECT_EQ(stats.node_buffer_hits, 2u);
}

TEST_F(BufferPoolTest, ClearDropsCleanAndFlushesDirty) {
  BufferPool pool(&disk_, 4);
  PageId a;
  {
    auto g = pool.NewPage(&a);
    ASSERT_TRUE(g.ok());
    g->MutableData()[7] = 'D';
  }
  ASSERT_TRUE(pool.Clear().ok());
  EXPECT_EQ(pool.cached_pages(), 0u);
  char buf[kPageSize];
  ASSERT_TRUE(disk_.ReadPage(a, buf).ok());
  EXPECT_EQ(buf[7], 'D');
  // A pinned page blocks Clear.
  auto g = pool.FetchPage(a);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(pool.Clear().code(), StatusCode::kFailedPrecondition);
}

TEST_F(BufferPoolTest, FetchOfUnallocatedPageFails) {
  BufferPool pool(&disk_, 2);
  auto g = pool.FetchPage(1234);
  EXPECT_FALSE(g.ok());
  // The frame reserved for the failed read is recycled: pool still works.
  PageId a;
  EXPECT_TRUE(pool.NewPage(&a).ok());
}

TEST_F(BufferPoolTest, MoveTransfersGuardOwnership) {
  BufferPool pool(&disk_, 2);
  PageId a;
  auto g1 = pool.NewPage(&a);
  ASSERT_TRUE(g1.ok());
  PageGuard g2 = std::move(*g1);
  EXPECT_FALSE(g1->Valid());
  EXPECT_TRUE(g2.Valid());
  g2.Release();
  // After release the frame is evictable; Clear succeeds.
  EXPECT_TRUE(pool.Clear().ok());
}

TEST_F(BufferPoolTest, ReadFailurePropagatesFromDisk) {
  FaultInjectionDiskManager faulty(&disk_);
  BufferPool pool(&faulty, 2);
  PageId a;
  pool.NewPage(&a)->Release();
  ASSERT_TRUE(pool.Clear().ok());
  faulty.FailReadsAfter(0);
  auto g = pool.FetchPage(a);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIOError);
  faulty.Heal();
  EXPECT_TRUE(pool.FetchPage(a).ok());
}

}  // namespace
}  // namespace amdj::storage

// Flood-exposure screening over census-style geography: which street
// segments run closest to water? Joins the synthetic TIGER street and
// hydrography sets on *file-backed* storage with a small buffer, showing
// the full production setup — disk manager, buffer pool, spill disk for
// the main queue, and the 1999-disk cost model for I/O accounting.
//
//   $ ./city_infrastructure [k]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/cost_model.h"
#include "core/distance_join.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  using namespace amdj;
  const uint64_t k = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;

  workload::TigerSynthOptions wopts;
  wopts.street_segments = 60000;
  wopts.hydro_objects = 18000;
  const auto streets = workload::TigerStreets(wopts);
  const auto hydro = workload::TigerHydro(wopts);

  const std::string dir = "/tmp";
  storage::FileDiskManager tree_disk(dir + "/amdj_city_trees.db");
  storage::FileDiskManager queue_disk(dir + "/amdj_city_queue.db");
  if (!tree_disk.Ok() || !queue_disk.Ok()) {
    std::fprintf(stderr, "cannot open backing files in %s\n", dir.c_str());
    return 1;
  }
  // The paper's configuration: 512 KB R-tree buffer, 512 KB queue memory.
  storage::BufferPool pool(&tree_disk, 512 * 1024 / storage::kPageSize);
  auto street_tree = rtree::RTree::Create(&pool, {}).value();
  auto hydro_tree = rtree::RTree::Create(&pool, {}).value();
  if (!street_tree->BulkLoad(streets.ToEntries()).ok() ||
      !hydro_tree->BulkLoad(hydro.ToEntries()).ok()) {
    std::fprintf(stderr, "bulk load failed\n");
    return 1;
  }
  std::printf("indexed %llu street segments (%llu nodes) and %llu hydro "
              "objects (%llu nodes)\n\n",
              (unsigned long long)street_tree->size(),
              (unsigned long long)street_tree->node_count(),
              (unsigned long long)hydro_tree->size(),
              (unsigned long long)hydro_tree->node_count());

  core::JoinOptions options;
  options.queue_disk = &queue_disk;
  options.queue_memory_bytes = 512 * 1024;

  const storage::DiskStats tree_before = tree_disk.stats();
  const storage::DiskStats queue_before = queue_disk.stats();
  JoinStats stats;
  auto result = core::RunKDistanceJoin(*street_tree, *hydro_tree, k,
                                       core::KdjAlgorithm::kAmKdj, options,
                                       &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // Exposure histogram: how many of the k closest pairs fall in each band?
  const double bands[] = {0.0, 1.0, 10.0, 100.0, 1000.0, 1e18};
  uint64_t counts[5] = {};
  for (const auto& p : *result) {
    for (int b = 0; b < 5; ++b) {
      if (p.distance >= bands[b] && p.distance < bands[b + 1]) {
        ++counts[b];
        break;
      }
    }
  }
  std::printf("distance bands of the %llu closest street-water pairs:\n",
              (unsigned long long)result->size());
  const char* labels[] = {"touching (0-1)", "1-10", "10-100", "100-1000",
                          ">= 1000"};
  for (int b = 0; b < 5; ++b) {
    std::printf("  %-15s %8llu\n", labels[b], (unsigned long long)counts[b]);
  }

  const core::CostModel model;
  const double io =
      model.Seconds(core::CostModel::Delta(tree_before, tree_disk.stats())) +
      model.Seconds(core::CostModel::Delta(queue_before, queue_disk.stats()));
  std::printf("\ncpu %.3f s + simulated 1999-disk I/O %.3f s "
              "(%llu node reads, %llu queue pages)\n",
              stats.cpu_seconds, io,
              (unsigned long long)stats.node_disk_reads,
              (unsigned long long)(stats.queue_page_reads +
                                   stats.queue_page_writes));
  return 0;
}

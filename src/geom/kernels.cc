#include "geom/kernels.h"

#include <atomic>

#if defined(__x86_64__) || defined(_M_X64)
#define AMDJ_KERNELS_X86 1
#include <emmintrin.h>
#endif

namespace amdj::geom {

namespace {

// Matches the SIMD maxpd semantics exactly: the second operand wins ties,
// so max-with-0 canonicalizes a -0.0 gap to +0.0 in every backend.
inline double MaxOp(double a, double b) { return a > b ? a : b; }

inline double AxisGap(double d1, double d2) {
  return MaxOp(MaxOp(d1, d2), 0.0);
}

}  // namespace

namespace internal {

void BatchAxisDistanceScalar(const double* lo, double anchor_hi,
                             std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = MaxOp(lo[i] - anchor_hi, 0.0);
  }
}

void BatchMinDistSquaredScalar(const double* lo0, const double* hi0,
                               const double* lo1, const double* hi1,
                               double q_lo0, double q_hi0, double q_lo1,
                               double q_hi1, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = AxisGap(q_lo0 - hi0[i], lo0[i] - q_hi0);
    const double dy = AxisGap(q_lo1 - hi1[i], lo1[i] - q_hi1);
    out[i] = dx * dx + dy * dy;
  }
}

void BatchMinDistSquaredPointScalar(const double* px, const double* py,
                                    double q_lo0, double q_hi0, double q_lo1,
                                    double q_hi1, std::size_t n,
                                    double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = AxisGap(q_lo0 - px[i], px[i] - q_hi0);
    const double dy = AxisGap(q_lo1 - py[i], py[i] - q_hi1);
    out[i] = dx * dx + dy * dy;
  }
}

std::size_t BatchFilterWithinScalar(const double* keys, std::size_t n,
                                    double cutoff, std::uint32_t* out_idx) {
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (keys[i] <= cutoff) out_idx[m++] = static_cast<std::uint32_t>(i);
  }
  return m;
}

#if AMDJ_KERNELS_X86

void BatchAxisDistanceSse2(const double* lo, double anchor_hi, std::size_t n,
                           double* out) {
  const __m128d hi = _mm_set1_pd(anchor_hi);
  const __m128d zero = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d gap = _mm_sub_pd(_mm_loadu_pd(lo + i), hi);
    _mm_storeu_pd(out + i, _mm_max_pd(gap, zero));
  }
  if (i < n) out[i] = MaxOp(lo[i] - anchor_hi, 0.0);
}

void BatchMinDistSquaredSse2(const double* lo0, const double* hi0,
                             const double* lo1, const double* hi1,
                             double q_lo0, double q_hi0, double q_lo1,
                             double q_hi1, std::size_t n, double* out) {
  const __m128d ql0 = _mm_set1_pd(q_lo0);
  const __m128d qh0 = _mm_set1_pd(q_hi0);
  const __m128d ql1 = _mm_set1_pd(q_lo1);
  const __m128d qh1 = _mm_set1_pd(q_hi1);
  const __m128d zero = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d dx = _mm_max_pd(
        _mm_max_pd(_mm_sub_pd(ql0, _mm_loadu_pd(hi0 + i)),
                   _mm_sub_pd(_mm_loadu_pd(lo0 + i), qh0)),
        zero);
    const __m128d dy = _mm_max_pd(
        _mm_max_pd(_mm_sub_pd(ql1, _mm_loadu_pd(hi1 + i)),
                   _mm_sub_pd(_mm_loadu_pd(lo1 + i), qh1)),
        zero);
    _mm_storeu_pd(
        out + i, _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy)));
  }
  for (; i < n; ++i) {
    const double dx = AxisGap(q_lo0 - hi0[i], lo0[i] - q_hi0);
    const double dy = AxisGap(q_lo1 - hi1[i], lo1[i] - q_hi1);
    out[i] = dx * dx + dy * dy;
  }
}

void BatchMinDistSquaredPointSse2(const double* px, const double* py,
                                  double q_lo0, double q_hi0, double q_lo1,
                                  double q_hi1, std::size_t n, double* out) {
  const __m128d ql0 = _mm_set1_pd(q_lo0);
  const __m128d qh0 = _mm_set1_pd(q_hi0);
  const __m128d ql1 = _mm_set1_pd(q_lo1);
  const __m128d qh1 = _mm_set1_pd(q_hi1);
  const __m128d zero = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d x = _mm_loadu_pd(px + i);
    const __m128d y = _mm_loadu_pd(py + i);
    const __m128d dx = _mm_max_pd(
        _mm_max_pd(_mm_sub_pd(ql0, x), _mm_sub_pd(x, qh0)), zero);
    const __m128d dy = _mm_max_pd(
        _mm_max_pd(_mm_sub_pd(ql1, y), _mm_sub_pd(y, qh1)), zero);
    _mm_storeu_pd(
        out + i, _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy)));
  }
  for (; i < n; ++i) {
    const double dx = AxisGap(q_lo0 - px[i], px[i] - q_hi0);
    const double dy = AxisGap(q_lo1 - py[i], py[i] - q_hi1);
    out[i] = dx * dx + dy * dy;
  }
}

std::size_t BatchFilterWithinSse2(const double* keys, std::size_t n,
                                  double cutoff, std::uint32_t* out_idx) {
  const __m128d c = _mm_set1_pd(cutoff);
  std::size_t m = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int mask =
        _mm_movemask_pd(_mm_cmple_pd(_mm_loadu_pd(keys + i), c));
    if (mask & 1) out_idx[m++] = static_cast<std::uint32_t>(i);
    if (mask & 2) out_idx[m++] = static_cast<std::uint32_t>(i + 1);
  }
  if (i < n && keys[i] <= cutoff) {
    out_idx[m++] = static_cast<std::uint32_t>(i);
  }
  return m;
}

#else  // !AMDJ_KERNELS_X86

// Non-x86 builds keep the per-backend symbols linkable (tests reference
// them through runtime-availability guards); dispatch never selects them.
void BatchAxisDistanceSse2(const double* lo, double anchor_hi, std::size_t n,
                           double* out) {
  BatchAxisDistanceScalar(lo, anchor_hi, n, out);
}
void BatchMinDistSquaredSse2(const double* lo0, const double* hi0,
                             const double* lo1, const double* hi1,
                             double q_lo0, double q_hi0, double q_lo1,
                             double q_hi1, std::size_t n, double* out) {
  BatchMinDistSquaredScalar(lo0, hi0, lo1, hi1, q_lo0, q_hi0, q_lo1, q_hi1,
                            n, out);
}
void BatchMinDistSquaredPointSse2(const double* px, const double* py,
                                  double q_lo0, double q_hi0, double q_lo1,
                                  double q_hi1, std::size_t n, double* out) {
  BatchMinDistSquaredPointScalar(px, py, q_lo0, q_hi0, q_lo1, q_hi1, n, out);
}
std::size_t BatchFilterWithinSse2(const double* keys, std::size_t n,
                                  double cutoff, std::uint32_t* out_idx) {
  return BatchFilterWithinScalar(keys, n, cutoff, out_idx);
}

#endif  // AMDJ_KERNELS_X86

#if !AMDJ_HAVE_AVX2_KERNELS

// Builds without the AVX2 translation unit: same linkability fallback.
void BatchAxisDistanceAvx2(const double* lo, double anchor_hi, std::size_t n,
                           double* out) {
  BatchAxisDistanceSse2(lo, anchor_hi, n, out);
}
void BatchMinDistSquaredAvx2(const double* lo0, const double* hi0,
                             const double* lo1, const double* hi1,
                             double q_lo0, double q_hi0, double q_lo1,
                             double q_hi1, std::size_t n, double* out) {
  BatchMinDistSquaredSse2(lo0, hi0, lo1, hi1, q_lo0, q_hi0, q_lo1, q_hi1, n,
                          out);
}
void BatchMinDistSquaredPointAvx2(const double* px, const double* py,
                                  double q_lo0, double q_hi0, double q_lo1,
                                  double q_hi1, std::size_t n, double* out) {
  BatchMinDistSquaredPointSse2(px, py, q_lo0, q_hi0, q_lo1, q_hi1, n, out);
}
std::size_t BatchFilterWithinAvx2(const double* keys, std::size_t n,
                                  double cutoff, std::uint32_t* out_idx) {
  return BatchFilterWithinSse2(keys, n, cutoff, out_idx);
}

#endif  // !AMDJ_HAVE_AVX2_KERNELS

}  // namespace internal

namespace {

KernelBackend BestAvailableBackend() {
#if AMDJ_HAVE_AVX2_KERNELS
  if (__builtin_cpu_supports("avx2")) return KernelBackend::kAvx2;
#endif
#if AMDJ_KERNELS_X86
  return KernelBackend::kSse2;  // baseline on x86-64
#else
  return KernelBackend::kScalar;
#endif
}

constexpr int kUnresolved = -1;
std::atomic<int> g_backend{kUnresolved};

}  // namespace

const char* ToString(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kSse2:
      return "sse2";
    case KernelBackend::kAvx2:
      return "avx2";
  }
  return "?";
}

bool KernelBackendAvailable(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return true;
    case KernelBackend::kSse2:
#if AMDJ_KERNELS_X86
      return true;
#else
      return false;
#endif
    case KernelBackend::kAvx2:
#if AMDJ_HAVE_AVX2_KERNELS
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

KernelBackend ActiveKernelBackend() {
  int b = g_backend.load(std::memory_order_relaxed);
  if (b == kUnresolved) {
    b = static_cast<int>(BestAvailableBackend());
    g_backend.store(b, std::memory_order_relaxed);
  }
  return static_cast<KernelBackend>(b);
}

KernelBackend ForceKernelBackend(KernelBackend backend) {
  while (!KernelBackendAvailable(backend)) {
    backend = static_cast<KernelBackend>(static_cast<int>(backend) - 1);
  }
  g_backend.store(static_cast<int>(backend), std::memory_order_relaxed);
  return backend;
}

void ResetKernelBackend() {
  g_backend.store(kUnresolved, std::memory_order_relaxed);
}

void BatchAxisDistance(const double* lo, double anchor_hi, std::size_t n,
                       double* out) {
  switch (ActiveKernelBackend()) {
#if AMDJ_HAVE_AVX2_KERNELS
    case KernelBackend::kAvx2:
      internal::BatchAxisDistanceAvx2(lo, anchor_hi, n, out);
      return;
#endif
#if AMDJ_KERNELS_X86
    case KernelBackend::kSse2:
      internal::BatchAxisDistanceSse2(lo, anchor_hi, n, out);
      return;
#endif
    default:
      internal::BatchAxisDistanceScalar(lo, anchor_hi, n, out);
      return;
  }
}

void BatchMinDistSquared(const double* lo0, const double* hi0,
                         const double* lo1, const double* hi1, double q_lo0,
                         double q_hi0, double q_lo1, double q_hi1,
                         std::size_t n, double* out) {
  switch (ActiveKernelBackend()) {
#if AMDJ_HAVE_AVX2_KERNELS
    case KernelBackend::kAvx2:
      internal::BatchMinDistSquaredAvx2(lo0, hi0, lo1, hi1, q_lo0, q_hi0,
                                        q_lo1, q_hi1, n, out);
      return;
#endif
#if AMDJ_KERNELS_X86
    case KernelBackend::kSse2:
      internal::BatchMinDistSquaredSse2(lo0, hi0, lo1, hi1, q_lo0, q_hi0,
                                        q_lo1, q_hi1, n, out);
      return;
#endif
    default:
      internal::BatchMinDistSquaredScalar(lo0, hi0, lo1, hi1, q_lo0, q_hi0,
                                          q_lo1, q_hi1, n, out);
      return;
  }
}

void BatchMinDistSquaredPoint(const double* px, const double* py,
                              double q_lo0, double q_hi0, double q_lo1,
                              double q_hi1, std::size_t n, double* out) {
  switch (ActiveKernelBackend()) {
#if AMDJ_HAVE_AVX2_KERNELS
    case KernelBackend::kAvx2:
      internal::BatchMinDistSquaredPointAvx2(px, py, q_lo0, q_hi0, q_lo1,
                                             q_hi1, n, out);
      return;
#endif
#if AMDJ_KERNELS_X86
    case KernelBackend::kSse2:
      internal::BatchMinDistSquaredPointSse2(px, py, q_lo0, q_hi0, q_lo1,
                                             q_hi1, n, out);
      return;
#endif
    default:
      internal::BatchMinDistSquaredPointScalar(px, py, q_lo0, q_hi0, q_lo1,
                                               q_hi1, n, out);
      return;
  }
}

std::size_t BatchFilterWithin(const double* keys, std::size_t n,
                              double cutoff, std::uint32_t* out_idx) {
  switch (ActiveKernelBackend()) {
#if AMDJ_HAVE_AVX2_KERNELS
    case KernelBackend::kAvx2:
      return internal::BatchFilterWithinAvx2(keys, n, cutoff, out_idx);
#endif
#if AMDJ_KERNELS_X86
    case KernelBackend::kSse2:
      return internal::BatchFilterWithinSse2(keys, n, cutoff, out_idx);
#endif
    default:
      return internal::BatchFilterWithinScalar(keys, n, cutoff, out_idx);
  }
}

}  // namespace amdj::geom

#ifndef AMDJ_QUEUE_SEGMENT_FILE_H_
#define AMDJ_QUEUE_SEGMENT_FILE_H_

#include <cstdint>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "geom/units.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace amdj::queue {

/// An unsorted on-disk pile of fixed-size records, the backing store of one
/// hybrid-queue partition (the paper stores every partition beyond the
/// in-memory heap "on disk as merely unsorted piles", Section 4.4).
///
/// Records are appended through a one-page write buffer (one at a time via
/// Append, or in page-sized batches via AppendMany); ReadAllInto streams
/// every record back with a single copy. Page reads/writes are counted into
/// the optional JoinStats sink (queue_page_reads / queue_page_writes).
///
/// Asynchronous spill I/O: with an `io_pool`, full pages are written on the
/// pool instead of inline, double-buffered — at most
/// `kMaxInflightWrites` page writes are in flight, and submitting a third
/// blocks until the oldest completes. The structural state (pages_, count_,
/// write_buffer_) stays coordinator-confined like the owning queue; workers
/// touch only their captured page buffer, the thread-safe DiskManager, and
/// the annotated async-completion state below. Completion handshake:
/// every submitted page gets a sequence number; WaitWritesThrough(seq)
/// blocks until all submissions <= seq have completed, which is what the
/// queue's prefetch tasks use to order reads after the writes that produced
/// the pages (submissions ahead of the prefetch in the pool's FIFO, so the
/// wait cannot deadlock even on a single-worker pool). Write errors are
/// sticky: the first failure is remembered and returned by every subsequent
/// harvest (WaitAllWrites / ReadAll* / the next inline flush).
class SegmentFile {
 public:
  /// At most this many async page writes in flight per segment (the
  /// "double buffer": one page filling, two draining keeps the disk busy
  /// without unbounded buffering).
  static constexpr size_t kMaxInflightWrites = 2;

  /// `record_size` must be in [1, kPageSize]. Ownership is not taken of
  /// `disk`, `stats`, `io_pool` or `tracer`; `io_pool == nullptr` (the
  /// default) keeps every write synchronous.
  SegmentFile(storage::DiskManager* disk, size_t record_size,
              JoinStats* stats, ThreadPool* io_pool = nullptr,
              Tracer* tracer = nullptr);
  ~SegmentFile();

  SegmentFile(SegmentFile&& other) noexcept;
  SegmentFile& operator=(SegmentFile&& other) noexcept;
  SegmentFile(const SegmentFile&) = delete;
  SegmentFile& operator=(const SegmentFile&) = delete;

  /// Appends one record of record_size bytes.
  Status Append(const void* record);

  /// Appends `n` records packed back-to-back at `records`, staging them
  /// into page-sized writes (the bulk path used by hybrid-queue spills —
  /// one page write per RecordsPerPage() records instead of per-record
  /// buffer bookkeeping).
  Status AppendMany(const void* records, size_t n);

  /// Copies all records (buffered + on disk) into `out`, packed
  /// back-to-back; `out` must have room for count() * record_size bytes.
  /// One copy per record (page buffer -> out); harvests pending async
  /// writes first.
  Status ReadAllInto(char* out);

  /// Like ReadAllInto but skips the first `skip_pages` pages (each holding
  /// exactly RecordsPerPage() records — pages are only ever written full).
  /// The hybrid queue uses this to read just the post-prefetch-snapshot
  /// tail of a segment.
  Status ReadTailInto(size_t skip_pages, char* out);

  /// Convenience wrapper over ReadAllInto: resizes `out` to
  /// count() * record_size bytes.
  Status ReadAll(std::vector<char>* out);

  /// Releases all pages back to the disk manager and empties the pile
  /// (after harvesting pending async writes).
  void Drop();

  /// Blocks until every submitted async write has completed, folds the
  /// deferred page-write stats into the JoinStats sink, and returns the
  /// sticky first write error (OK when none, or when writes are
  /// synchronous). Coordinator-thread only.
  Status WaitAllWrites();

  /// Blocks until all async writes with submission sequence <= `seq` have
  /// completed and returns the sticky error. Safe from any thread; used by
  /// prefetch workers (see the class comment's handshake).
  Status WaitWritesThrough(uint64_t seq) AMDJ_EXCLUDES(io_mu_);

  /// Sequence number of the most recent submitted async write (0 when none
  /// yet). Coordinator-thread only (it is the only submitter).
  uint64_t write_seq() const { return submitted_seq_; }

  /// The page ids holding flushed records, in append order. Records fill
  /// RecordsPerPage() per page; the in-memory write buffer holds the tail.
  /// Coordinator-thread only; pages already submitted for writing are
  /// readable once WaitWritesThrough(write_seq()) returned (the prefetch
  /// contract).
  const std::vector<storage::PageId>& pages() const { return pages_; }

  /// Records currently staged in the write buffer (not yet on any page).
  size_t buffered_records() const {
    return write_buffer_.size() / record_size_;
  }

  uint64_t count() const { return count_; }
  size_t record_size() const { return record_size_; }
  size_t RecordsPerPage() const { return storage::kPageSize / record_size_; }

  /// Reads `page_ids` (each holding up to `records_per_page` records of
  /// `record_size` bytes) from `disk`, packing up to `max_records` records
  /// back-to-back into `out`. Pure function of its arguments — no
  /// SegmentFile state — so prefetch workers can run it on a page-list
  /// snapshot while the coordinator keeps appending. `*pages_read` is
  /// incremented per page fetched (the worker-local stand-in for the
  /// coordinator-confined JoinStats sink).
  static Status ReadPagesInto(storage::DiskManager* disk,
                              const std::vector<storage::PageId>& page_ids,
                              size_t record_size, size_t records_per_page,
                              uint64_t max_records, char* out,
                              uint64_t* pages_read);

  /// Inclusive lower bound of the key range this segment holds; used by
  /// HybridQueue to route insertions and order swap-ins.
  geom::KeyVal lower_bound = geom::KeyVal::Zero();

 private:
  /// Writes the buffered records out as one page (inline, or on the io
  /// pool when configured). On failure the freshly allocated page is freed
  /// (not leaked) and the buffer is kept so the flush can be retried.
  Status FlushBuffer();

  /// Allocates a page id, records it in pages_, and writes `page`
  /// (kPageSize bytes) to it — inline when no io pool, otherwise as an
  /// async task taking ownership of `page`. Inline errors unrecord the
  /// page; async errors are sticky (harvested later).
  Status WritePageOut(std::vector<char> page);

  /// Returns (without clearing) the sticky async error.
  Status AsyncErrorSnapshot() AMDJ_EXCLUDES(io_mu_);

  storage::DiskManager* disk_;
  size_t record_size_;
  JoinStats* stats_;
  ThreadPool* io_pool_;
  Tracer* tracer_;
  uint64_t count_ = 0;
  std::vector<storage::PageId> pages_;
  std::vector<char> write_buffer_;  // < one page of pending records
  /// Submission counter (coordinator-only writer; read under io_mu_ by
  /// waiters via completed_seq_ comparisons only).
  uint64_t submitted_seq_ = 0;

  /// Async-write completion state. Guards the handshake between the
  /// coordinator (submit/backpressure/harvest) and io-pool workers
  /// (completion). Mutable state only — the queue's structural invariants
  /// never depend on it mid-flight.
  mutable Mutex io_mu_;
  CondVar io_cv_;
  /// Sequence numbers of submitted-but-incomplete writes (size <=
  /// kMaxInflightWrites). A vector, not a counter: two inflight writes can
  /// complete out of order across pool workers, and WaitWritesThrough(seq)
  /// must not return while any submission <= seq is still pending.
  std::vector<uint64_t> pending_seqs_ AMDJ_GUARDED_BY(io_mu_);
  /// First async write failure, sticky.
  Status async_error_ AMDJ_GUARDED_BY(io_mu_) = Status::OK();
  /// Async page writes not yet folded into stats_ (workers must not touch
  /// the coordinator-confined JoinStats sink).
  uint64_t unfolded_page_writes_ AMDJ_GUARDED_BY(io_mu_) = 0;
};

}  // namespace amdj::queue

#endif  // AMDJ_QUEUE_SEGMENT_FILE_H_

# Empty dependencies file for plane_sweeper_test.
# This may be replaced when dependencies are built.

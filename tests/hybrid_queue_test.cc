#include "queue/hybrid_queue.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "geom/units.h"
#include "storage/disk_manager.h"

namespace amdj::queue {
namespace {

using geom::KeyVal;

struct Item {
  KeyVal key{0.0};
  uint64_t tag = 0;
};

struct ItemCompare {
  bool operator()(const Item& a, const Item& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.tag < b.tag;
  }
};

using Queue = HybridQueue<Item, ItemCompare>;

Queue::Options SmallMemory(storage::DiskManager* disk, size_t bytes = 1024) {
  Queue::Options o;
  o.memory_bytes = bytes;  // 1024 / 16 = 64 in-memory entries
  o.disk = disk;
  return o;
}

TEST(HybridQueueTest, InMemoryBasicOrdering) {
  Queue q(Queue::Options{}, nullptr);  // no disk: unbounded memory
  EXPECT_TRUE(q.Empty());
  for (double d : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    ASSERT_TRUE(q.Push({KeyVal(d), 0}).ok());
  }
  Item it;
  for (double expected : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    ASSERT_TRUE(q.Pop(&it).ok());
    EXPECT_EQ(it.key.raw(), expected);
  }
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Pop(&it).code(), StatusCode::kOutOfRange);
}

TEST(HybridQueueTest, SpillsAndRecoversInOrder) {
  storage::InMemoryDiskManager disk;
  JoinStats stats;
  Queue q(SmallMemory(&disk), &stats);
  Random rng(7);
  std::vector<double> inserted;
  for (int i = 0; i < 5000; ++i) {
    const double d = rng.Uniform(0, 1e6);
    inserted.push_back(d);
    ASSERT_TRUE(q.Push({KeyVal(d), static_cast<uint64_t>(i)}).ok());
  }
  EXPECT_GT(q.split_count(), 0u);  // memory was 64 entries: must spill
  std::sort(inserted.begin(), inserted.end());
  Item it;
  for (size_t i = 0; i < inserted.size(); ++i) {
    ASSERT_TRUE(q.Pop(&it).ok());
    ASSERT_EQ(it.key.raw(), inserted[i]) << "at pop " << i;
  }
  EXPECT_TRUE(q.Empty());
  EXPECT_GT(q.swapin_count(), 0u);
  EXPECT_GT(stats.queue_page_writes, 0u);
  EXPECT_GT(stats.queue_page_reads, 0u);
  EXPECT_EQ(stats.main_queue_insertions, 5000u);
}

TEST(HybridQueueTest, InterleavedPushPopMatchesReference) {
  storage::InMemoryDiskManager disk;
  Queue q(SmallMemory(&disk), nullptr);
  Random rng(13);
  std::vector<double> reference;  // multiset of live distances
  Item it;
  for (int step = 0; step < 20000; ++step) {
    if (reference.empty() || rng.Bernoulli(0.6)) {
      const double d = rng.Uniform(0, 1000);
      reference.push_back(d);
      ASSERT_TRUE(q.Push({KeyVal(d), static_cast<uint64_t>(step)}).ok());
    } else {
      auto min_it = std::min_element(reference.begin(), reference.end());
      ASSERT_TRUE(q.Pop(&it).ok());
      ASSERT_EQ(it.key.raw(), *min_it) << "step " << step;
      reference.erase(min_it);
    }
  }
  // Drain.
  std::sort(reference.begin(), reference.end());
  for (double expected : reference) {
    ASSERT_TRUE(q.Pop(&it).ok());
    ASSERT_EQ(it.key.raw(), expected);
  }
}

TEST(HybridQueueTest, PredeterminedBoundariesReduceSplits) {
  // Uniform distances in [0, 1000]: boundary_fn(c) ~ the c-th smallest
  // distance = 1000 * c / N.
  constexpr int kN = 20000;
  auto run = [&](bool with_boundaries) {
    storage::InMemoryDiskManager disk;
    Queue::Options o = SmallMemory(&disk, 4096);  // 256 entries in memory
    if (with_boundaries) {
      o.boundary_fn = [](uint64_t c) {
        return KeyVal(1000.0 * static_cast<double>(c) / kN);
      };
    }
    Queue q(o, nullptr);
    Random rng(99);
    for (int i = 0; i < kN; ++i) {
      EXPECT_TRUE(q.Push({KeyVal(rng.Uniform(0, 1000)), uint64_t(i)}).ok());
    }
    // Consume the closest 10% (the typical distance-join access pattern).
    Item it;
    for (int i = 0; i < kN / 10; ++i) EXPECT_TRUE(q.Pop(&it).ok());
    return q.split_count();
  };
  const uint64_t splits_without = run(false);
  const uint64_t splits_with = run(true);
  EXPECT_LT(splits_with, splits_without);
  // With accurate boundaries almost everything routes straight to its
  // segment; at most a borderline split can happen (the heap range holds
  // ~capacity items by construction).
  EXPECT_LE(splits_with, 1u);
}

TEST(HybridQueueTest, PredeterminedBoundariesKeepOrder) {
  storage::InMemoryDiskManager disk;
  Queue::Options o = SmallMemory(&disk, 1024);
  o.boundary_fn = [](uint64_t c) {
    return KeyVal(std::sqrt(static_cast<double>(c)));
  };
  Queue q(o, nullptr);
  Random rng(31);
  std::vector<double> inserted;
  for (int i = 0; i < 3000; ++i) {
    // Heavy-tailed distances stress multiple segments.
    const double d = std::pow(rng.Uniform(0, 40), 2.0);
    inserted.push_back(d);
    ASSERT_TRUE(q.Push({KeyVal(d), static_cast<uint64_t>(i)}).ok());
  }
  std::sort(inserted.begin(), inserted.end());
  Item it;
  for (double expected : inserted) {
    ASSERT_TRUE(q.Pop(&it).ok());
    ASSERT_EQ(it.key.raw(), expected);
  }
}

TEST(HybridQueueTest, TiesPreserveAllItems) {
  storage::InMemoryDiskManager disk;
  Queue q(SmallMemory(&disk), nullptr);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(q.Push({KeyVal(42.0), static_cast<uint64_t>(i)}).ok());
  }
  std::vector<bool> seen(500, false);
  Item it;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(q.Pop(&it).ok());
    EXPECT_EQ(it.key.raw(), 42.0);
    EXPECT_FALSE(seen[it.tag]);
    seen[it.tag] = true;
  }
  EXPECT_TRUE(q.Empty());
}

// Regression: a distance plateau must never straddle the heap/segment
// boundary. If a split cuts through tied entries, the heap-resident ones
// pop before the spilled ones regardless of the comparator's tie-break,
// so pop order at the plateau depends on when splits happened — i.e. on
// the push interleaving. Pop order must be a function of content only.
TEST(HybridQueueTest, TiePlateauPopOrderIsPushOrderIndependent) {
  // A plateau big enough to straddle any 64-entry split, surrounded by
  // distinct distances that force splits at different moments depending
  // on the push order.
  std::vector<Item> items;
  for (int i = 0; i < 200; ++i) {
    items.push_back({KeyVal(42.0), static_cast<uint64_t>(i)});
  }
  for (int i = 0; i < 200; ++i) {
    items.push_back({KeyVal(1.0 + i * 0.5), static_cast<uint64_t>(1000 + i)});
  }
  std::vector<Item> reference = items;
  std::sort(reference.begin(), reference.end(), ItemCompare());

  Random rng(99);
  for (int perm = 0; perm < 4; ++perm) {
    std::vector<Item> order = items;
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.Next() % i]);
    }
    storage::InMemoryDiskManager disk;
    Queue q(SmallMemory(&disk), nullptr);
    for (const Item& item : order) {
      ASSERT_TRUE(q.Push(item).ok());
    }
    Item it;
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_TRUE(q.Pop(&it).ok());
      ASSERT_EQ(it.key, reference[i].key) << "perm " << perm
                                                    << " rank " << i;
      ASSERT_EQ(it.tag, reference[i].tag) << "perm " << perm << " rank "
                                          << i;
    }
    EXPECT_TRUE(q.Empty());
  }
}

TEST(HybridQueueTest, TotalSizeTracksBothTiers) {
  storage::InMemoryDiskManager disk;
  Queue q(SmallMemory(&disk), nullptr);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(q.Push({KeyVal(static_cast<double>(i)), 0}).ok());
  }
  EXPECT_EQ(q.TotalSize(), 200u);
  Item it;
  for (int i = 0; i < 60; ++i) ASSERT_TRUE(q.Pop(&it).ok());
  EXPECT_EQ(q.TotalSize(), 140u);
}

TEST(HybridQueueTest, PropagatesDiskWriteFailure) {
  storage::InMemoryDiskManager base;
  storage::FaultInjectionDiskManager faulty(&base);
  Queue::Options o;
  o.memory_bytes = 1024;
  o.disk = &faulty;
  Queue q(o, nullptr);
  faulty.FailWritesAfter(0);
  Status status = Status::OK();
  // Push until the overflow spill fills a whole segment write-buffer page
  // (records are buffered one page at a time) and hits the injected
  // failure.
  for (int i = 0; i < 5000 && status.ok(); ++i) {
    status = q.Push({KeyVal(static_cast<double>(i)), 0});
  }
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

// Regression: Push used to count main_queue_insertions before attempting
// the segment Append, so every failed spill inflated the counter for an
// entry that never entered the queue. Counting now happens only after the
// insert succeeded. (A record whose *post*-insert page flush fails is
// retained in the segment buffer for retry but its Push still reports the
// error, so TotalSize may exceed the accepted count by at most one per
// segment — hence >=, not ==.)
TEST(HybridQueueTest, FailedPushesAreNotCounted) {
  storage::InMemoryDiskManager base;
  storage::FaultInjectionDiskManager faulty(&base);
  JoinStats stats;
  Queue::Options o;
  o.memory_bytes = 1024;
  o.disk = &faulty;
  Queue q(o, &stats);
  faulty.FailWritesAfter(0);
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  for (int i = 0; i < 5000; ++i) {
    if (q.Push({KeyVal(static_cast<double>(i)), 0}).ok()) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  ASSERT_GT(rejected, 0u) << "fault never hit: test is vacuous";
  EXPECT_EQ(stats.main_queue_insertions, accepted);
  EXPECT_GE(q.TotalSize(), accepted);
  EXPECT_LE(q.TotalSize() - accepted, 4u);  // at most one phantom/segment
}

TEST(HybridQueueTest, PeakSizeStatIsTracked) {
  JoinStats stats;
  Queue q(Queue::Options{}, &stats);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(q.Push({KeyVal(static_cast<double>(i)), 0}).ok());
  }
  Item it;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.Pop(&it).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(q.Push({KeyVal(static_cast<double>(i)), 0}).ok());
  }
  EXPECT_EQ(stats.main_queue_peak_size, 10u);
}

TEST(HybridQueueTest, PeekReturnsMinWithoutRemoving) {
  Queue q(Queue::Options{}, nullptr);
  Item it;
  EXPECT_EQ(q.Peek(&it).code(), StatusCode::kOutOfRange);
  for (double d : {3.0, 1.0, 2.0}) ASSERT_TRUE(q.Push({KeyVal(d), 0}).ok());
  ASSERT_TRUE(q.Peek(&it).ok());
  EXPECT_EQ(it.key.raw(), 1.0);
  EXPECT_EQ(q.TotalSize(), 3u);
  ASSERT_TRUE(q.Pop(&it).ok());
  EXPECT_EQ(it.key.raw(), 1.0);
  ASSERT_TRUE(q.Peek(&it).ok());
  EXPECT_EQ(it.key.raw(), 2.0);
}

TEST(HybridQueueTest, PeekSwapsInSpilledSegments) {
  storage::InMemoryDiskManager disk;
  Queue q(SmallMemory(&disk), nullptr);  // 64-entry heap
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(q.Push({KeyVal(static_cast<double>(500 - i)), 0}).ok());
  }
  Item it;
  // Drain the heap, leaving only disk segments; Peek must swap in.
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(q.Peek(&it).ok());
    const KeyVal top = it.key;
    ASSERT_TRUE(q.Pop(&it).ok());
    EXPECT_EQ(it.key, top) << "Peek/Pop disagree at " << i;
  }
  EXPECT_TRUE(q.Empty());
}

TEST(HybridQueueTest, PopBatchStopsAtRejectedEntry) {
  Queue q(Queue::Options{}, nullptr);
  // tag 1 = "object pair", tag 0 = "node pair".
  for (double d : {1.0, 2.0, 5.0}) ASSERT_TRUE(q.Push({KeyVal(d), 1}).ok());
  for (double d : {3.0, 4.0}) ASSERT_TRUE(q.Push({KeyVal(d), 0}).ok());
  std::vector<Item> out;
  // Take "objects" first: 1.0 and 2.0; 3.0 is a node and stays queued.
  ASSERT_TRUE(q.PopBatch(10, [](const Item& i) { return i.tag == 1; }, &out)
                  .ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key.raw(), 1.0);
  EXPECT_EQ(out[1].key.raw(), 2.0);
  EXPECT_EQ(q.TotalSize(), 3u);
  // Now take "nodes": 3.0 and 4.0; 5.0 stays.
  out.clear();
  ASSERT_TRUE(q.PopBatch(10, [](const Item& i) { return i.tag == 0; }, &out)
                  .ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key.raw(), 3.0);
  EXPECT_EQ(out[1].key.raw(), 4.0);
  EXPECT_EQ(q.TotalSize(), 1u);
}

TEST(HybridQueueTest, PopBatchHonorsMaxAndEmptyQueue) {
  Queue q(Queue::Options{}, nullptr);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(q.Push({KeyVal(static_cast<double>(i)), 0}).ok());
  }
  std::vector<Item> out;
  ASSERT_TRUE(q.PopBatch(4, [](const Item&) { return true; }, &out).ok());
  EXPECT_EQ(out.size(), 4u);
  ASSERT_TRUE(q.PopBatch(100, [](const Item&) { return true; }, &out).ok());
  EXPECT_EQ(out.size(), 10u);  // appended; queue drained
  EXPECT_TRUE(q.Empty());
  ASSERT_TRUE(q.PopBatch(5, [](const Item&) { return true; }, &out).ok());
  EXPECT_EQ(out.size(), 10u);  // empty queue: no-op, not an error
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].key.raw(), static_cast<double>(i));
  }
}

TEST(HybridQueueTest, PopBatchCrossesSegmentBoundaries) {
  storage::InMemoryDiskManager disk;
  Random rng(21);
  Queue q(SmallMemory(&disk), nullptr);
  std::vector<double> inserted;
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.Uniform(0, 1e5);
    inserted.push_back(d);
    ASSERT_TRUE(q.Push({KeyVal(d), static_cast<uint64_t>(i)}).ok());
  }
  std::sort(inserted.begin(), inserted.end());
  std::vector<Item> out;
  while (!q.Empty()) {
    ASSERT_TRUE(
        q.PopBatch(37, [](const Item&) { return true; }, &out).ok());
  }
  ASSERT_EQ(out.size(), inserted.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].key.raw(), inserted[i]) << "rank " << i;
  }
}

}  // namespace
}  // namespace amdj::queue

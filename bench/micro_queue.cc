// Microbenchmarks for the queue substrate: distance-queue inserts, hybrid
// main-queue push/pop in memory and with disk spilling.
//
// The hybrid-queue benches report per-op push/pop latency and the queue's
// structural counters (splits, swap-ins, refinements, prefetch hits/waits)
// as benchmark counters — visible in the console output and, under
// --benchmark_format=json, as the "counters" object per benchmark, which
// scripts/check_bench_regression.py consumes.

#include <benchmark/benchmark.h>

#include <chrono>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/hs_join.h"
#include "core/pair_entry.h"
#include "queue/distance_queue.h"
#include "queue/hybrid_queue.h"
#include "storage/disk_manager.h"

namespace amdj {
namespace {

/// Phase timer + counter plumbing shared by the hybrid-queue benches:
/// accumulates wall time around the push and pop phases across iterations
/// and publishes per-op latencies plus the queue's structural counters.
struct QueueBenchStats {
  double push_ns = 0;
  double pop_ns = 0;
  int64_t pushes = 0;
  int64_t pops = 0;
  uint64_t splits = 0;
  uint64_t swapins = 0;
  uint64_t refines = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_waits = 0;

  template <typename Fn>
  double TimeNs(Fn&& fn) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now() - start)
        .count();
  }

  void Absorb(const core::MainQueue& q) {
    splits += q.split_count();
    swapins += q.swapin_count();
    refines += q.refine_count();
    prefetch_hits += q.prefetch_hit_count();
    prefetch_waits += q.prefetch_wait_count();
  }

  void Publish(benchmark::State& state) const {
    if (pushes > 0) {
      state.counters["push_ns_per_op"] =
          push_ns / static_cast<double>(pushes);
    }
    if (pops > 0) {
      state.counters["pop_ns_per_op"] = pop_ns / static_cast<double>(pops);
    }
    state.counters["splits"] = static_cast<double>(splits);
    state.counters["swapins"] = static_cast<double>(swapins);
    state.counters["refines"] = static_cast<double>(refines);
    state.counters["prefetch_hits"] = static_cast<double>(prefetch_hits);
    state.counters["prefetch_waits"] = static_cast<double>(prefetch_waits);
  }
};

void BM_DistanceQueueInsert(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  Random rng(1);
  std::vector<double> values(1 << 16);
  for (auto& v : values) v = rng.NextDouble();
  size_t i = 0;
  queue::DistanceQueue q(k);
  for (auto _ : state) {
    q.Insert(geom::KeyVal(values[i++ & (values.size() - 1)]));
    benchmark::DoNotOptimize(q.CutoffKey());
  }
}
BENCHMARK(BM_DistanceQueueInsert)->Arg(10)->Arg(1000)->Arg(100000);

core::PairEntry MakeEntry(double key) {
  core::PairEntry e;
  e.key = geom::KeyVal(key);
  return e;
}

void BM_HybridQueueInMemory(benchmark::State& state) {
  Random rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    core::MainQueue q(core::MainQueue::Options{}, nullptr);
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(q.Push(MakeEntry(rng.NextDouble())));
    }
    core::PairEntry out;
    while (!q.Empty()) {
      benchmark::DoNotOptimize(q.Pop(&out));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_HybridQueueInMemory)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_HybridQueueSpilling(benchmark::State& state) {
  Random rng(3);
  QueueBenchStats bench;
  for (auto _ : state) {
    state.PauseTiming();
    storage::InMemoryDiskManager disk;
    core::MainQueue::Options options;
    options.disk = &disk;
    options.memory_bytes = 64 * 1024;
    core::MainQueue q(options, nullptr);
    state.ResumeTiming();
    bench.push_ns += bench.TimeNs([&] {
      for (int i = 0; i < state.range(0); ++i) {
        benchmark::DoNotOptimize(q.Push(MakeEntry(rng.NextDouble())));
      }
    });
    bench.pushes += state.range(0);
    bench.pop_ns += bench.TimeNs([&] {
      core::PairEntry out;
      while (!q.Empty()) {
        benchmark::DoNotOptimize(q.Pop(&out));
      }
    });
    bench.pops += state.range(0);
    bench.Absorb(q);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
  bench.Publish(state);
}
BENCHMARK(BM_HybridQueueSpilling)->Arg(1 << 14)->Arg(1 << 17);

void BM_HybridQueueSpillingWithBoundaries(benchmark::State& state) {
  Random rng(4);
  QueueBenchStats bench;
  for (auto _ : state) {
    state.PauseTiming();
    storage::InMemoryDiskManager disk;
    core::MainQueue::Options options;
    options.disk = &disk;
    options.memory_bytes = 64 * 1024;
    const double n = static_cast<double>(state.range(0));
    options.boundary_fn = [n](uint64_t c) {
      return geom::KeyVal(static_cast<double>(c) / n);
    };
    core::MainQueue q(options, nullptr);
    state.ResumeTiming();
    bench.push_ns += bench.TimeNs([&] {
      for (int i = 0; i < state.range(0); ++i) {
        benchmark::DoNotOptimize(q.Push(MakeEntry(rng.NextDouble())));
      }
    });
    bench.pushes += state.range(0);
    // Distance-join access pattern: only the closest tenth is consumed.
    bench.pop_ns += bench.TimeNs([&] {
      core::PairEntry out;
      for (int i = 0; i < state.range(0) / 10; ++i) {
        benchmark::DoNotOptimize(q.Pop(&out));
      }
    });
    bench.pops += state.range(0) / 10;
    bench.Absorb(q);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  bench.Publish(state);
}
BENCHMARK(BM_HybridQueueSpillingWithBoundaries)->Arg(1 << 14)->Arg(1 << 17);

/// The tie-plateau fast path: every entry has the same key, the regime
/// that used to re-sort the whole in-memory tier on every push. With the
/// run/block path this is O(1) per push amortized — the bench guards the
/// 100x ablation_tie_break win at the queue level.
void BM_HybridQueueTiePlateau(benchmark::State& state) {
  QueueBenchStats bench;
  for (auto _ : state) {
    state.PauseTiming();
    storage::InMemoryDiskManager disk;
    core::MainQueue::Options options;
    options.disk = &disk;
    options.memory_bytes = 64 * 1024;
    core::MainQueue q(options, nullptr);
    state.ResumeTiming();
    bench.push_ns += bench.TimeNs([&] {
      for (int i = 0; i < state.range(0); ++i) {
        benchmark::DoNotOptimize(q.Push(MakeEntry(0.0)));
      }
    });
    bench.pushes += state.range(0);
    bench.pop_ns += bench.TimeNs([&] {
      core::PairEntry out;
      while (!q.Empty()) {
        benchmark::DoNotOptimize(q.Pop(&out));
      }
    });
    bench.pops += state.range(0);
    bench.Absorb(q);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
  bench.Publish(state);
}
BENCHMARK(BM_HybridQueueTiePlateau)->Arg(1 << 14)->Arg(1 << 17);

/// Async spill I/O: double-buffered page writes + next-segment prefetch on
/// a two-thread pool. Identical pop stream to the synchronous bench; the
/// prefetch_hits counter shows how much of the swap-in I/O overlapped.
void BM_HybridQueueSpillingAsyncIo(benchmark::State& state) {
  Random rng(5);
  ThreadPool io_pool(2, "micro-queue-io");
  QueueBenchStats bench;
  for (auto _ : state) {
    state.PauseTiming();
    storage::InMemoryDiskManager disk;
    core::MainQueue::Options options;
    options.disk = &disk;
    options.memory_bytes = 64 * 1024;
    options.io_pool = &io_pool;
    const double n = static_cast<double>(state.range(0));
    options.boundary_fn = [n](uint64_t c) {
      return geom::KeyVal(static_cast<double>(c) / n);
    };
    core::MainQueue q(options, nullptr);
    state.ResumeTiming();
    bench.push_ns += bench.TimeNs([&] {
      for (int i = 0; i < state.range(0); ++i) {
        benchmark::DoNotOptimize(q.Push(MakeEntry(rng.NextDouble())));
      }
    });
    bench.pushes += state.range(0);
    bench.pop_ns += bench.TimeNs([&] {
      core::PairEntry out;
      while (!q.Empty()) {
        benchmark::DoNotOptimize(q.Pop(&out));
      }
    });
    bench.pops += state.range(0);
    bench.Absorb(q);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
  bench.Publish(state);
}
BENCHMARK(BM_HybridQueueSpillingAsyncIo)->Arg(1 << 14)->Arg(1 << 17);

}  // namespace
}  // namespace amdj

BENCHMARK_MAIN();

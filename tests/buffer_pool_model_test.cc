// Model-based torture test: a long random sequence of page operations is
// applied both to the BufferPool (over a real DiskManager) and to a simple
// in-memory shadow model; contents must agree at every step, for several
// pool sizes including pathologically small ones.

#include <cstring>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace amdj::storage {
namespace {

class BufferPoolModelTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BufferPoolModelTest, RandomOpsMatchShadowModel) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, GetParam());
  std::map<PageId, std::vector<char>> shadow;  // page id -> full content
  std::vector<PageId> live;
  Random rng(GetParam() * 7919 + 1);

  for (int step = 0; step < 20000; ++step) {
    const double roll = rng.NextDouble();
    if (live.empty() || roll < 0.15) {
      // Allocate a new page and stamp it.
      PageId id = kInvalidPageId;
      auto guard = pool.NewPage(&id);
      ASSERT_TRUE(guard.ok()) << guard.status().ToString();
      std::vector<char> content(kPageSize, 0);
      for (size_t i = 0; i < 16; ++i) {
        content[i * 64] = static_cast<char>(rng.Next() & 0xFF);
      }
      std::memcpy(guard->MutableData(), content.data(), kPageSize);
      shadow[id] = std::move(content);
      live.push_back(id);
    } else if (roll < 0.55) {
      // Read a random page and compare against the model.
      const PageId id = live[rng.UniformInt(live.size())];
      auto guard = pool.FetchPage(id);
      ASSERT_TRUE(guard.ok()) << guard.status().ToString();
      ASSERT_EQ(std::memcmp(guard->data(), shadow[id].data(), kPageSize), 0)
          << "content mismatch on page " << id << " at step " << step;
    } else if (roll < 0.9) {
      // Mutate a random page through the pool.
      const PageId id = live[rng.UniformInt(live.size())];
      auto guard = pool.FetchPage(id);
      ASSERT_TRUE(guard.ok()) << guard.status().ToString();
      const size_t offset = rng.UniformInt(uint64_t{kPageSize});
      const char value = static_cast<char>(rng.Next() & 0xFF);
      guard->MutableData()[offset] = value;
      shadow[id][offset] = value;
    } else if (roll < 0.95) {
      // Flush everything; disk must now equal the model exactly.
      ASSERT_TRUE(pool.FlushAll().ok());
      const PageId id = live[rng.UniformInt(live.size())];
      char buf[kPageSize];
      ASSERT_TRUE(disk.ReadPage(id, buf).ok());
      ASSERT_EQ(std::memcmp(buf, shadow[id].data(), kPageSize), 0)
          << "disk mismatch on page " << id << " after flush";
    } else {
      // Clear the cache entirely (cold restart mid-run).
      ASSERT_TRUE(pool.Clear().ok());
    }
  }

  // Final audit of every page via the pool.
  for (const auto& [id, content] : shadow) {
    auto guard = pool.FetchPage(id);
    ASSERT_TRUE(guard.ok());
    ASSERT_EQ(std::memcmp(guard->data(), content.data(), kPageSize), 0)
        << "final mismatch on page " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, BufferPoolModelTest,
                         ::testing::Values(size_t{1}, size_t{2}, size_t{3},
                                           size_t{8}, size_t{64}),
                         [](const auto& info) {
                           return "frames_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace amdj::storage

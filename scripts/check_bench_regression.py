#!/usr/bin/env python3
"""Wall-time regression guard for the bench suite.

Three input shapes, combinable:

  --wall-file FILE      `<name> <wall_ms> <exit_code>` lines, the format
                        scripts/run_all_benches.sh appends to json/wall.txt.
  --gbench FILE         google-benchmark --benchmark_out JSON; each
                        benchmark's real_time (in its own time_unit) is
                        checked.
  --baseline A --current B [--max-ratio R]
                        two amdj-bench-v1 JSON files (BENCH_PR*.json);
                        every bench present in both may regress by at most
                        R in wall_ms (default 3.0 — generous, CI machines
                        vary; the quadratics this guards against are 10x+).
                        With --work (default on for this mode) each figure
                        run present in both files is also diffed on its
                        deterministic work counters — node_accesses and
                        distance_computations — under --max-work-ratio
                        (default 1.25, tight because counters don't carry
                        machine noise: a counter regression is an algorithm
                        change, not a slow runner).
  --throughput-json FILE [--min-shared-hit-rate R] [--min-shared-speedup R]
                        a multi_query_throughput --json summary containing a
                        "duplicate" (and/or "ladder") shared-work section;
                        each present section's shared_hit_rate and off->on
                        speedup must clear the floors. Guards the
                        JoinService dedupe/cache path: a hit rate collapse
                        means the semantic key or registry broke even while
                        results stay correct.
  --wall-baseline A --wall-current B [--max-wall-ratio R] [--wall-bench N]*
                        A/B overhead guard over two wall-file-format files
                        measured in the SAME CI run (e.g. AMDJ_METRICS=0 vs
                        =1), so a tight ratio like 1.02 is meaningful where
                        a cross-run 1.02 would drown in machine variance.
                        Repeated lines for one bench take the MINIMUM wall
                        time (the standard noise-robust statistic — run
                        each side 3x and the floor is the honest cost).
                        --wall-bench restricts the comparison and makes the
                        named benches REQUIRED in both files.

Absolute limits come from repeated `--limit name=value` flags: milliseconds
for --wall-file entries, nanoseconds for --gbench entries. A limit whose
name matches nothing is an error (a renamed bench must not silently
disarm its guard).

Exit code 0 = all guards pass, 1 = regression, 2 = usage/parse error.

CI uses this for the queue-bench smoke job: micro_queue per-op latencies
and a downsized ablation_tie_break wall time — the two places the seed's
O(n) per-push segment scan and per-push plateau re-sort showed up first.
"""

import argparse
import json
import sys


def parse_limits(pairs):
    limits = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep:
            sys.exit(f"error: --limit takes name=value, got {pair!r}")
        try:
            limits[name] = float(value)
        except ValueError:
            sys.exit(f"error: bad limit value in {pair!r}")
    return limits


def to_ns(value, unit):
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    if unit not in scale:
        sys.exit(f"error: unknown time_unit {unit!r}")
    return value * scale[unit]


def check_wall_file(path, limits, used, failures):
    with open(path) as f:
        for line in f:
            parts = line.split()
            if len(parts) < 3:
                continue
            name, wall_ms, exit_code = parts[0], float(parts[1]), int(parts[2])
            if exit_code != 0:
                failures.append(f"{name}: exited {exit_code}")
            if name in limits:
                used.add(name)
                if wall_ms > limits[name]:
                    failures.append(
                        f"{name}: {wall_ms:.0f} ms > limit {limits[name]:.0f} ms")
                else:
                    print(f"ok: {name} {wall_ms:.0f} ms "
                          f"(limit {limits[name]:.0f} ms)")


def check_gbench(path, limits, used, failures):
    with open(path) as f:
        doc = json.load(f)
    for bench in doc.get("benchmarks", []):
        name = bench.get("name", "")
        if name not in limits:
            continue
        used.add(name)
        real_ns = to_ns(bench["real_time"], bench.get("time_unit", "ns"))
        if real_ns > limits[name]:
            failures.append(
                f"{name}: {real_ns:.0f} ns > limit {limits[name]:.0f} ns")
        else:
            print(f"ok: {name} {real_ns:.0f} ns "
                  f"(limit {limits[name]:.0f} ns)")


def check_ratio(baseline_path, current_path, max_ratio, failures):
    with open(baseline_path) as f:
        baseline = json.load(f)
    with open(current_path) as f:
        current = json.load(f)
    base_wall = baseline.get("wall", {})
    cur_wall = current.get("wall", {})
    for name, cur in sorted(cur_wall.items()):
        base = base_wall.get(name)
        if base is None:
            continue  # new bench: no baseline to regress against
        base_ms = base.get("wall_ms", 0)
        cur_ms = cur.get("wall_ms", 0)
        if base_ms <= 0:
            continue
        ratio = cur_ms / base_ms
        if ratio > max_ratio:
            failures.append(f"{name}: {cur_ms} ms vs baseline {base_ms} ms "
                            f"({ratio:.2f}x > {max_ratio}x)")
        else:
            print(f"ok: {name} {cur_ms} ms vs {base_ms} ms ({ratio:.2f}x)")


def read_wall_mins(path, failures):
    """Parses a wall-file (`<name> <wall_ms> <exit_code>` lines) into
    {name: min wall_ms}. A non-zero exit code is itself a failure."""
    mins = {}
    with open(path) as f:
        for line in f:
            parts = line.split()
            if len(parts) < 3:
                continue
            name, wall_ms, exit_code = parts[0], float(parts[1]), int(parts[2])
            if exit_code != 0:
                failures.append(f"{path}: {name} exited {exit_code}")
                continue
            mins[name] = min(mins.get(name, wall_ms), wall_ms)
    return mins


def check_ab_wall(baseline_path, current_path, max_ratio, only, failures):
    """Same-run A/B wall comparison (e.g. metrics off vs on). Ratios are
    taken on per-bench minimum wall over repeats; with `only` set, those
    benches must appear in both files — a missing measurement must not
    silently disarm the overhead guard."""
    base = read_wall_mins(baseline_path, failures)
    cur = read_wall_mins(current_path, failures)
    names = sorted(only) if only else sorted(set(base) & set(cur))
    compared = 0
    for name in names:
        if name not in base or name not in cur:
            failures.append(f"{name}: missing from "
                            f"{baseline_path if name not in base else current_path}")
            continue
        if base[name] <= 0:
            continue
        compared += 1
        ratio = cur[name] / base[name]
        if ratio > max_ratio:
            failures.append(
                f"{name}: {cur[name]:.0f} ms vs A-side {base[name]:.0f} ms "
                f"({ratio:.3f}x > {max_ratio}x)")
        else:
            print(f"ok: {name} {cur[name]:.0f} ms vs {base[name]:.0f} ms "
                  f"({ratio:.3f}x, limit {max_ratio}x)")
    if compared == 0:
        failures.append(
            f"no benches common to {baseline_path} and {current_path}: "
            "the A/B wall guard is disarmed")


def figure_runs(doc):
    """Flatten a BENCH_*.json figures section into {key: run} where key
    identifies a run across files: (figure bench, run label, k)."""
    runs = {}
    for figure, payload in doc.get("figures", {}).items():
        for run in payload.get("runs", []):
            # "algorithm" carries the per-run label (e.g. "am-sharded-s8-t4");
            # "bench" just repeats the figure name.
            key = (figure, run.get("algorithm", ""), run.get("k"))
            runs[key] = run
    return runs


def check_work_counters(baseline_path, current_path, max_ratio, slack,
                        failures):
    """Diff the deterministic work counters of every figure run present in
    both files. Wall clock wobbles with the machine; node_accesses and
    distance_computations only move when the algorithm moves, so a much
    tighter ratio applies. New runs (no baseline key) pass silently.
    `slack` ({figure: ratio}) overrides max_ratio per figure — for the few
    benches whose counters legitimately wobble (thread-schedule-dependent
    shard pruning); an entry matching no compared figure is an error."""
    with open(baseline_path) as f:
        base_runs = figure_runs(json.load(f))
    with open(current_path) as f:
        cur_runs = figure_runs(json.load(f))
    counters = ("node_accesses", "distance_computations")
    compared = 0
    slack_used = set()
    for key in sorted(set(base_runs) & set(cur_runs)):
        label = f"{key[0]}/{key[1]}/k={key[2]}"
        limit = max_ratio
        if key[0] in slack:
            limit = slack[key[0]]
            slack_used.add(key[0])
        for counter in counters:
            base = base_runs[key].get(counter)
            cur = cur_runs[key].get(counter)
            if base is None or cur is None or base <= 0:
                continue
            compared += 1
            ratio = cur / base
            if ratio > limit:
                failures.append(
                    f"{label} {counter}: {cur} vs baseline {base} "
                    f"({ratio:.2f}x > {limit}x)")
            else:
                print(f"ok: {label} {counter} {cur} vs {base} "
                      f"({ratio:.2f}x)")
    if compared == 0:
        failures.append(
            f"no figure runs common to {baseline_path} and {current_path} "
            "(renamed everything? the counter guard is disarmed)")
    unused = set(slack) - slack_used
    if unused:
        failures.append("work-slack matched no compared figure (renamed?): "
                        + ", ".join(sorted(unused)))


def check_throughput_shared(path, min_hit_rate, min_speedup, failures):
    """Guards the shared-work sections of a multi_query_throughput --json
    summary. Every section present ("duplicate", "ladder") must clear the
    hit-rate and speedup floors; a file with neither section disarms the
    guard and is itself a failure."""
    with open(path) as f:
        doc = json.load(f)
    checked = 0
    for section in ("duplicate", "ladder"):
        payload = doc.get(section)
        if payload is None:
            continue
        checked += 1
        hit_rate = payload.get("shared_hit_rate", 0.0)
        speedup = payload.get("speedup", 0.0)
        if hit_rate < min_hit_rate:
            failures.append(
                f"{section}: shared_hit_rate {hit_rate:.3f} < "
                f"floor {min_hit_rate}")
        else:
            print(f"ok: {section} shared_hit_rate {hit_rate:.3f} "
                  f"(floor {min_hit_rate})")
        if speedup < min_speedup:
            failures.append(
                f"{section}: shared-work speedup {speedup:.2f}x < "
                f"floor {min_speedup}x")
        else:
            print(f"ok: {section} speedup {speedup:.2f}x "
                  f"(floor {min_speedup}x)")
    if checked == 0:
        failures.append(
            f"{path}: no duplicate/ladder section (the shared-work guard "
            "is disarmed)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--wall-file", action="append", default=[])
    parser.add_argument("--gbench", action="append", default=[])
    parser.add_argument("--limit", action="append", default=[],
                        metavar="NAME=VALUE")
    parser.add_argument("--baseline")
    parser.add_argument("--current")
    parser.add_argument("--max-ratio", type=float, default=3.0)
    parser.add_argument("--work", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="also diff figure work counters in "
                             "--baseline/--current mode")
    parser.add_argument("--max-work-ratio", type=float, default=1.25)
    parser.add_argument("--work-slack", action="append", default=[],
                        metavar="FIGURE=RATIO",
                        help="per-figure work-counter ratio override "
                             "(repeat); must match a compared figure")
    parser.add_argument("--throughput-json",
                        help="multi_query_throughput --json summary with "
                             "shared-work sections to guard")
    parser.add_argument("--min-shared-hit-rate", type=float, default=0.5)
    parser.add_argument("--min-shared-speedup", type=float, default=1.0)
    parser.add_argument("--wall-baseline")
    parser.add_argument("--wall-current")
    parser.add_argument("--max-wall-ratio", type=float, default=1.02)
    parser.add_argument("--wall-bench", action="append", default=[],
                        metavar="NAME",
                        help="restrict the A/B wall guard to NAME (repeat); "
                             "named benches become required")
    args = parser.parse_args()

    if bool(args.baseline) != bool(args.current):
        sys.exit("error: --baseline and --current go together")
    if bool(args.wall_baseline) != bool(args.wall_current):
        sys.exit("error: --wall-baseline and --wall-current go together")
    if not (args.wall_file or args.gbench or args.baseline
            or args.wall_baseline or args.throughput_json):
        sys.exit("error: nothing to check")

    limits = parse_limits(args.limit)
    used = set()
    failures = []
    for path in args.wall_file:
        check_wall_file(path, limits, used, failures)
    for path in args.gbench:
        check_gbench(path, limits, used, failures)
    if args.baseline:
        check_ratio(args.baseline, args.current, args.max_ratio, failures)
        if args.work:
            check_work_counters(args.baseline, args.current,
                                args.max_work_ratio,
                                parse_limits(args.work_slack), failures)
    if args.throughput_json:
        check_throughput_shared(args.throughput_json,
                                args.min_shared_hit_rate,
                                args.min_shared_speedup, failures)
    if args.wall_baseline:
        check_ab_wall(args.wall_baseline, args.wall_current,
                      args.max_wall_ratio, args.wall_bench, failures)

    unused = set(limits) - used
    if unused:
        failures.append("limits matched no bench (renamed?): " +
                        ", ".join(sorted(unused)))

    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("all bench guards passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

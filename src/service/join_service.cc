#include "service/join_service.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/run_report.h"
#include "common/timer.h"
#include "core/shard_executor.h"
#include "storage/disk_manager.h"

namespace amdj::service {

namespace {

/// Process-wide service metrics (one series set; all JoinService instances
/// in the process feed them — in practice a serve process hosts one).
struct ServiceMetrics {
  Histogram* admission_wait_ns;
  Gauge* inflight;
  Gauge* queued;
  Counter* accepted;
  Counter* rejected;
  Counter* completed;
  Counter* slow_queries;
};

ServiceMetrics& GlobalServiceMetrics() {
  static ServiceMetrics metrics = [] {
    MetricsRegistry* registry = MetricsRegistry::Global();
    return ServiceMetrics{
        registry->GetHistogram("amdj_service_admission_wait_ns", "",
                               "Time a request spent queued before a worker "
                               "picked it up"),
        registry->GetGauge("amdj_service_inflight_queries", "",
                           "Queries currently executing"),
        registry->GetGauge("amdj_service_queued_queries", "",
                           "Requests admitted but not yet started"),
        registry->GetCounter("amdj_service_requests_total",
                             "outcome=\"accepted\"",
                             "Requests by admission outcome"),
        registry->GetCounter("amdj_service_requests_total",
                             "outcome=\"rejected\"",
                             "Requests by admission outcome"),
        registry->GetCounter("amdj_service_completed_total", "",
                             "Requests finished (any status)"),
        registry->GetCounter("amdj_service_slow_queries_total", "",
                             "Queries past the slow_query_seconds threshold"),
    };
  }();
  return metrics;
}

/// Per-algorithm end-to-end latency series. The label set is closed (the
/// two algorithm enums), so cardinality is bounded; the registry lookup is
/// one cold map access per completed query.
Histogram* QueryLatencyHistogram(const JoinRequest& request) {
  const char* algorithm = request.kind == JoinRequest::Kind::kKdj
                              ? core::ToString(request.kdj_algorithm)
                              : core::ToString(request.idj_algorithm);
  return MetricsRegistry::Global()->GetHistogram(
      "amdj_service_query_latency_ns",
      std::string("algorithm=\"") + algorithm + "\"",
      "End-to-end query latency (admission wait + execution)");
}

uint64_t SecondsToNanos(double seconds) {
  if (seconds <= 0.0) return 0;
  return static_cast<uint64_t>(seconds * 1e9);
}

}  // namespace

JoinService::JoinService(const rtree::RTree& r, const rtree::RTree& s,
                         const Options& options)
    : r_(r),
      s_(s),
      options_(options),
      max_inflight_(std::max<uint32_t>(1, options.max_inflight)),
      per_query_queue_memory_(std::max(
          kMinQueueMemoryBytes,
          options.queue_memory_budget_bytes / max_inflight_ /
              // Async spill I/O holds pages and prefetch buffers outside
              // the accounted in-memory tier (see Options doc): halve the
              // clamp so the total stays within the budget.
              (options.spill_io_threads > 0 ? 2 : 1))),
      pool_(std::make_unique<ThreadPool>(max_inflight_,
                                         options.name_prefix)) {
  if (options.spill_io_threads > 0) {
    io_pool_ = std::make_unique<ThreadPool>(options.spill_io_threads,
                                            options.name_prefix + "-io");
  }
  if (options.shards > 1) {
    options_.shard_threads = std::max<uint32_t>(1, options.shard_threads);
    shard_disk_ = std::make_unique<storage::InMemoryDiskManager>();
    shard_pool_ = std::make_unique<storage::BufferPool>(
        shard_disk_.get(), std::max<size_t>(64, options.shard_pool_pages));
    core::PartitionOptions part;
    part.shards = options.shards;
    auto build = [this, &part](const rtree::RTree& tree,
                               std::optional<core::Partition>* out) {
      auto part_or = core::Partition::FromTree(tree, shard_pool_.get(), part);
      if (!part_or.ok()) return part_or.status();
      *out = std::move(part_or).value();
      return Status::OK();
    };
    shard_init_ = build(r_, &r_partition_);
    if (shard_init_.ok()) shard_init_ = build(s_, &s_partition_);
  }
}

JoinService::~JoinService() {
  // Draining happens in the pool destructor; pool_ being the last member
  // would already order this correctly, but reset explicitly so the drain
  // is visible at the point the service dies.
  pool_.reset();
}

core::JoinOptions JoinService::EffectiveOptions(
    const JoinRequest& request) const {
  core::JoinOptions effective = request.options;
  effective.queue_memory_bytes =
      std::min(effective.queue_memory_bytes, per_query_queue_memory_);
  // The session spill disk is per-execution; whatever the caller set is
  // replaced (a shared spill disk across concurrent queries would mix
  // their segments and outlive neither cleanly). Likewise the spill I/O
  // pool: the service's own (or none) — a caller-supplied pool could be
  // the query pool itself, which deadlocks (see Options).
  effective.queue_disk = nullptr;
  effective.spill_io_pool = nullptr;
  return effective;
}

std::future<JoinResponse> JoinService::Submit(JoinRequest request) {
  ServiceMetrics& metrics = GlobalServiceMetrics();
  {
    const MutexLock lock(&mutex_);
    if (options_.max_queued > 0 && queued_ >= options_.max_queued) {
      // Reject without blocking: the ready future is the backpressure
      // signal open-loop callers need — blocking here would turn the
      // admission queue into an unbounded hidden one at the caller.
      ++rejected_;
      metrics.rejected->Increment();
      std::promise<JoinResponse> rejected;
      JoinResponse response;
      response.status = Status::ResourceExhausted(
          "join service admission queue is full (max_queued=" +
          std::to_string(options_.max_queued) + ")");
      rejected.set_value(std::move(response));
      return rejected.get_future();
    }
    ++queued_;
  }
  metrics.accepted->Increment();
  metrics.queued->Increment();
  Timer queued;
  return pool_->Submit([this, request = std::move(request), queued] {
    ServiceMetrics& metrics = GlobalServiceMetrics();
    const double wait_seconds = queued.ElapsedSeconds();
    metrics.queued->Decrement();
    metrics.admission_wait_ns->Observe(SecondsToNanos(wait_seconds));
    {
      const MutexLock lock(&mutex_);
      --queued_;
      ++inflight_;
      peak_inflight_ = std::max(peak_inflight_, inflight_);
    }
    JoinResponse response;
    {
      const ScopedGauge inflight_gauge(metrics.inflight);
      response = Execute(request, wait_seconds);
    }
    {
      const MutexLock lock(&mutex_);
      --inflight_;
      ++completed_;
    }
    metrics.completed->Increment();
    if (MetricsEnabled()) {
      QueryLatencyHistogram(request)->Observe(
          SecondsToNanos(wait_seconds + response.exec_seconds));
    }
    return response;
  });
}

JoinResponse JoinService::Execute(const JoinRequest& request,
                                  double wait_seconds) {
  JoinResponse response;
  response.wait_seconds = wait_seconds;

  core::JoinOptions options = EffectiveOptions(request);
  // Slow-query log: a query past the threshold dumps a full RunReport, so
  // when the request brought none the service attaches its own — the
  // phase/cutoff breakdown is exactly what a latency investigation needs
  // and is unrecoverable after the fact.
  RunReport slow_report;
  if (options_.slow_query_seconds > 0.0 && options.report == nullptr) {
    options.report = &slow_report;
  }
  // Session-scoped spill disk: this query's queue segments and sort runs
  // live (and die) with this execution — no sharing, no leak across
  // queries.
  storage::InMemoryDiskManager session_disk;
  if (options_.session_spill_disk) options.queue_disk = &session_disk;
  options.spill_io_pool = io_pool_.get();

  Timer exec;
  ExecuteRequest(request, options, &response);
  response.exec_seconds = exec.ElapsedSeconds();

  if (options_.slow_query_seconds > 0.0 &&
      wait_seconds + response.exec_seconds >= options_.slow_query_seconds) {
    GlobalServiceMetrics().slow_queries->Increment();
    const RunReport* report =
        request.options.report != nullptr ? request.options.report
                                          : &slow_report;
    AMDJ_LOG(kWarn) << "slow query: wait=" << wait_seconds
                    << "s exec=" << response.exec_seconds
                    << "s threshold=" << options_.slow_query_seconds
                    << "s report=" << report->ToJson();
  }
  return response;
}

void JoinService::ExecuteRequest(const JoinRequest& request,
                                 const core::JoinOptions& options,
                                 JoinResponse* out) {
  JoinResponse& response = *out;
  if (request.kind == JoinRequest::Kind::kKdj) {
    const bool shardable =
        options_.shards > 1 &&
        (request.kdj_algorithm == core::KdjAlgorithm::kBKdj ||
         request.kdj_algorithm == core::KdjAlgorithm::kAmKdj);
    if (shardable) {
      if (!shard_init_.ok()) {
        response.status = shard_init_;
        return;
      }
      core::ShardedJoinOptions sharded;
      sharded.join = options;
      // Up to shard_threads per-pair queues live at once within this one
      // query; they share the query's admission budget.
      sharded.join.queue_memory_bytes =
          std::max(kMinQueueMemoryBytes,
                   options.queue_memory_bytes / options_.shard_threads);
      sharded.threads = options_.shard_threads;
      sharded.algorithm = request.kdj_algorithm;
      auto result = core::RunShardedKDistanceJoin(
          *r_partition_, *s_partition_, request.k, sharded, &response.stats);
      if (!result.ok()) {
        response.status = result.status();
        return;
      }
      response.results = std::move(*result);
      return;
    }
    auto result = core::RunKDistanceJoin(r_, s_, request.k,
                                         request.kdj_algorithm, options,
                                         &response.stats);
    if (!result.ok()) {
      response.status = result.status();
      return;
    }
    response.results = std::move(*result);
    return;
  }

  auto cursor = core::OpenIncrementalJoin(r_, s_, request.idj_algorithm,
                                          options, &response.stats);
  if (!cursor.ok()) {
    response.status = cursor.status();
    return;
  }
  (*cursor)->PrefetchHint(request.k);
  response.results.reserve(request.k);
  for (uint64_t i = 0; i < request.k; ++i) {
    core::ResultPair pair;
    bool done = false;
    const Status status = (*cursor)->Next(&pair, &done);
    if (!status.ok()) {
      response.status = status;
      break;
    }
    if (done) break;
    response.results.push_back(pair);
  }
  // Destroy the cursor before returning: it quiesces the algorithm under
  // this query's attribution scope and finalizes any attached report, so
  // response.stats is complete once the future resolves.
  cursor->reset();
  return;
}

uint64_t JoinService::completed() const {
  const MutexLock lock(&mutex_);
  return completed_;
}

uint32_t JoinService::peak_inflight() const {
  const MutexLock lock(&mutex_);
  return peak_inflight_;
}

uint64_t JoinService::rejected() const {
  const MutexLock lock(&mutex_);
  return rejected_;
}

}  // namespace amdj::service

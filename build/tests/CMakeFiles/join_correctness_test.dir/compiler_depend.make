# Empty compiler generated dependencies file for join_correctness_test.
# This may be replaced when dependencies are built.

#include "core/partition.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/dmax_estimator.h"

namespace amdj::core {

namespace {

/// 2 * center coordinate — monotone in the center, no halving needed.
double CenterX(const rtree::Entry& e) { return e.rect.lo.x + e.rect.hi.x; }
double CenterY(const rtree::Entry& e) { return e.rect.lo.y + e.rect.hi.y; }

using PairModels = ShardPairEstimator::PairModels;

double ExpectedWithin(const PairModels& pairs, double d) {
  double total = 0.0;
  for (size_t i = 0; i < pairs.gap.size(); ++i) {
    const double reach = d - pairs.gap[i];
    if (reach <= 0.0) continue;
    total += std::min(pairs.cap[i], reach * reach * pairs.inv_rho[i]);
  }
  return total;
}

double InvertExpected(const PairModels& pairs, double max_reach,
                      double total_pairs, double target) {
  if (total_pairs <= 0.0 || target <= 0.0) return 0.0;
  if (target >= total_pairs) return max_reach;
  double lo = 0.0;
  double hi = max_reach;
  for (int i = 0; i < 64; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (ExpectedWithin(pairs, mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace

StatusOr<Partition> Partition::Build(std::vector<rtree::Entry> objects,
                                     storage::BufferPool* pool,
                                     const PartitionOptions& options) {
  if (options.shards == 0) {
    return Status::InvalidArgument("PartitionOptions::shards must be >= 1");
  }
  if (!(options.fill > 0.0) || options.fill > 1.0) {
    return Status::InvalidArgument("PartitionOptions::fill must be in (0, 1]");
  }
  if (pool == nullptr) {
    return Status::InvalidArgument("Partition requires a buffer pool");
  }

  Partition p;
  p.total_size_ = objects.size();
  for (const rtree::Entry& e : objects) p.bounds_.Extend(e.rect);
  p.rects_by_id_ = objects;
  std::sort(p.rects_by_id_.begin(), p.rects_by_id_.end(),
            [](const rtree::Entry& a, const rtree::Entry& b) {
              return a.id < b.id;
            });

  // STR sweep at shard granularity: ceil(sqrt(shards)) vertical slabs by
  // center-x, each slab cut by center-y. Shards (and objects,
  // proportionally to each slab's tile count) distribute as evenly as the
  // remainders allow, and empty tiles are materialized so the shard count
  // is always exactly options.shards.
  const uint32_t shards = options.shards;
  const uint32_t slabs =
      static_cast<uint32_t>(std::ceil(std::sqrt(static_cast<double>(shards))));
  const size_t n = objects.size();
  std::sort(objects.begin(), objects.end(),
            [](const rtree::Entry& a, const rtree::Entry& b) {
              const double ax = CenterX(a), bx = CenterX(b);
              if (ax != bx) return ax < bx;
              const double ay = CenterY(a), by = CenterY(b);
              if (ay != by) return ay < by;
              return a.id < b.id;
            });

  p.shards_.reserve(shards);
  size_t slab_begin = 0;
  uint32_t tiles_before = 0;
  for (uint32_t slab = 0; slab < slabs; ++slab) {
    const uint32_t tiles = shards / slabs + (slab < shards % slabs ? 1 : 0);
    // Objects proportional to the slab's share of the tiles (exact: the
    // cumulative floors telescope to n).
    const size_t slab_end =
        n * (tiles_before + tiles) / shards;
    std::sort(objects.begin() + slab_begin, objects.begin() + slab_end,
              [](const rtree::Entry& a, const rtree::Entry& b) {
                const double ay = CenterY(a), by = CenterY(b);
                if (ay != by) return ay < by;
                const double ax = CenterX(a), bx = CenterX(b);
                if (ax != bx) return ax < bx;
                return a.id < b.id;
              });
    const size_t slab_n = slab_end - slab_begin;
    size_t tile_begin = slab_begin;
    for (uint32_t t = 0; t < tiles; ++t) {
      const size_t tile_n = slab_n / tiles + (t < slab_n % tiles ? 1 : 0);
      Shard sh;
      sh.size = tile_n;
      for (size_t i = tile_begin; i < tile_begin + tile_n; ++i) {
        sh.bounds.Extend(objects[i].rect);
      }
      if (tile_n > 0) {
        auto tree_or = rtree::RTree::Create(pool, options.tree);
        if (!tree_or.ok()) return tree_or.status();
        sh.tree = std::move(tree_or).value();
        std::vector<rtree::Entry> tile(objects.begin() + tile_begin,
                                       objects.begin() + tile_begin + tile_n);
        AMDJ_RETURN_IF_ERROR(sh.tree->BulkLoad(std::move(tile), options.fill));
      }
      p.shards_.push_back(std::move(sh));
      tile_begin += tile_n;
    }
    slab_begin = slab_end;
    tiles_before += tiles;
  }
  return p;
}

StatusOr<Partition> Partition::FromTree(const rtree::RTree& tree,
                                        storage::BufferPool* pool,
                                        const PartitionOptions& options) {
  std::vector<rtree::Entry> objects;
  objects.reserve(tree.size());
  AMDJ_RETURN_IF_ERROR(tree.ForEachObject(
      [&objects](const rtree::Entry& e) { objects.push_back(e); }));
  return Build(std::move(objects), pool, options);
}

const geom::Rect* Partition::object_rect(uint32_t id) const {
  const auto it = std::lower_bound(
      rects_by_id_.begin(), rects_by_id_.end(), id,
      [](const rtree::Entry& e, uint32_t key) { return e.id < key; });
  if (it == rects_by_id_.end() || it->id != id) return nullptr;
  return &it->rect;
}

ShardPairEstimator::ShardPairEstimator(const Partition& r, const Partition& s,
                                       geom::Metric metric,
                                       bool exclude_same_id) {
  for (const Shard& ri : r.shards()) {
    if (ri.size == 0) continue;
    for (const Shard& sj : s.shards()) {
      if (sj.size == 0) continue;
      DmaxEstimator est(ri.bounds, ri.size, sj.bounds, sj.size, metric);
      double cap = static_cast<double>(ri.size) * static_cast<double>(sj.size);
      if (exclude_same_id) {
        // At most min(|Ri|,|Sj|) diagonal pairs can fall in this shard pair.
        cap -= static_cast<double>(std::min(ri.size, sj.size));
      }
      if (cap <= 0.0) continue;
      const double gap =
          geom::MinDistance(ri.bounds, sj.bounds, metric).raw();
      const double rho = est.rho();
      if (rho <= 0.0) continue;
      pairs_.gap.push_back(gap);
      pairs_.inv_rho.push_back(1.0 / rho);
      pairs_.cap.push_back(cap);
      total_pairs_ += cap;
      max_reach_ = std::max(max_reach_, gap + std::sqrt(cap * rho));
    }
  }
}

double ShardPairEstimator::ExpectedPairsWithin(geom::DistVal d) const {
  return ExpectedWithin(pairs_, d.raw());
}

geom::DistVal ShardPairEstimator::EstimateDmax(uint64_t k) const {
  return geom::DistVal(InvertExpected(pairs_, max_reach_, total_pairs_,
                                      static_cast<double>(k)));
}

geom::DistVal ShardPairEstimator::Correct(uint64_t k, uint64_t k0,
                                          geom::DistVal dmax_k0,
                                          bool aggressive) const {
  // Raw view: the calibration math is distance-space arithmetic.
  const double d0 = dmax_k0.raw();
  const double predicted = ExpectedPairsWithin(geom::DistVal(d0));
  double calibrated;
  if (k0 == 0 || d0 <= 0.0 || predicted <= 0.0) {
    calibrated = EstimateDmax(k).raw();
  } else {
    const double scale = static_cast<double>(k0) / predicted;
    calibrated = InvertExpected(pairs_, max_reach_, total_pairs_,
                                static_cast<double>(k) / scale);
  }
  if (k0 == 0 || d0 <= 0.0) return geom::DistVal(calibrated);
  const double geometric =
      d0 * std::sqrt(static_cast<double>(k) / static_cast<double>(k0));
  return geom::DistVal(aggressive ? std::min(calibrated, geometric)
                                  : std::max(calibrated, geometric));
}

std::function<geom::DistVal(uint64_t)> ShardPairEstimator::BoundaryFn()
    const {
  // Self-contained (no lifetime tie to the estimator): the hybrid queue
  // probes boundaries at construction time, possibly on another thread.
  PairModels pairs = pairs_;
  const double reach = max_reach_;
  const double total = total_pairs_;
  return [pairs = std::move(pairs), reach, total](uint64_t c) {
    return geom::DistVal(
        InvertExpected(pairs, reach, total, static_cast<double>(c)));
  };
}

}  // namespace amdj::core

// Metrics-layer contract tests:
//
//   - bucket geometry: BucketIndex/BucketLowerBound/BucketWidth agree and
//     tile the uint64 range without gaps;
//   - randomized differential test: bucketed p50/p95/p99/p999 vs. exact
//     sorted-sample percentiles stay within the documented 1/32 relative
//     error bound across several value distributions;
//   - concurrency: N writer threads hammer one counter/gauge/histogram
//     while a reader snapshots — totals exact after join, snapshots sane
//     during (runs under TSan in the sanitize-thread CI matrix);
//   - registry identity and the Prometheus/JSON exposition formats;
//   - the PR 3-style guard: join output is byte-identical with metrics
//     enabled and disabled.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/random.h"
#include "core/distance_join.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

namespace amdj {
namespace {

/// Restores the global enabled flag on scope exit so tests that toggle it
/// cannot leak state into each other.
class MetricsEnabledGuard {
 public:
  MetricsEnabledGuard() : was_(MetricsEnabled()) {}
  ~MetricsEnabledGuard() { SetMetricsEnabled(was_); }

 private:
  bool was_;
};

TEST(HistogramGeometryTest, BucketsTileTheRangeWithoutGaps) {
  // Lower bounds must be strictly increasing and each bucket must start
  // exactly where the previous one ends.
  for (size_t i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketLowerBound(i),
              Histogram::BucketLowerBound(i - 1) + Histogram::BucketWidth(i - 1))
        << "gap or overlap at bucket " << i;
  }
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
}

TEST(HistogramGeometryTest, IndexRoundTripsThroughBounds) {
  Random rng(7);
  std::vector<uint64_t> values = {0,  1,  2,   15,  16,  17,  31,  32,
                                  63, 64, 100, 255, 256, 1000, 4095, 4096};
  for (int i = 0; i < 5000; ++i) {
    const int bits = static_cast<int>(rng.UniformInt(uint64_t{63})) + 1;
    values.push_back(rng.Next() >> (64 - bits));
  }
  values.push_back(std::numeric_limits<uint64_t>::max());
  for (const uint64_t v : values) {
    const size_t idx = Histogram::BucketIndex(v);
    ASSERT_LT(idx, Histogram::kNumBuckets) << v;
    EXPECT_GE(v, Histogram::BucketLowerBound(idx)) << v;
    // v < lower + width (except the very last bucket, which is clipped by
    // the uint64 range).
    if (idx + 1 < Histogram::kNumBuckets) {
      EXPECT_LT(v, Histogram::BucketLowerBound(idx) + Histogram::BucketWidth(idx))
          << v;
    }
    // Relative width bound that the percentile error bound rests on.
    if (v >= 16) {
      EXPECT_LE(Histogram::BucketWidth(idx) * 16, Histogram::BucketLowerBound(idx) * 2)
          << "bucket too wide at " << v;
    }
  }
}

double ExactPercentile(std::vector<uint64_t> sorted, double q) {
  // Same rank definition as Histogram::Snapshot::Percentile: the value at
  // rank ceil(q * n), 1-based.
  const size_t n = sorted.size();
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  return static_cast<double>(sorted[rank - 1]);
}

void CheckDifferential(const std::vector<uint64_t>& values,
                       const std::string& what) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test_hist");
  for (const uint64_t v : values) h->Observe(v);
  std::vector<uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const Histogram::Snapshot snap = h->TakeSnapshot();
  ASSERT_EQ(snap.count, values.size()) << what;
  for (const double q : {0.5, 0.95, 0.99, 0.999}) {
    const double exact = ExactPercentile(sorted, q);
    const double approx = snap.Percentile(q);
    // Documented bound: midpoint of a bucket whose width is <= lower/16,
    // so |approx - exact| <= width/2 <= exact/16 (plus 0.5 absolute for
    // the unit buckets).
    const double tolerance = std::max(1.0, exact / 16.0);
    EXPECT_NEAR(approx, exact, tolerance)
        << what << " q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

TEST(HistogramDifferentialTest, UniformValues) {
  MetricsEnabledGuard guard;
  SetMetricsEnabled(true);
  Random rng(42);
  std::vector<uint64_t> values;
  for (int i = 0; i < 20000; ++i) values.push_back(rng.UniformInt(uint64_t{1000000}));
  CheckDifferential(values, "uniform");
}

TEST(HistogramDifferentialTest, LogUniformValues) {
  MetricsEnabledGuard guard;
  SetMetricsEnabled(true);
  Random rng(43);
  std::vector<uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    const int bits = static_cast<int>(rng.UniformInt(uint64_t{40})) + 1;
    values.push_back((rng.Next() >> (64 - bits)) + 1);
  }
  CheckDifferential(values, "log-uniform");
}

TEST(HistogramDifferentialTest, HeavyTailLatencyShape) {
  MetricsEnabledGuard guard;
  SetMetricsEnabled(true);
  Random rng(44);
  std::vector<uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    // Exponential body in the tens of microseconds with a 1% millisecond
    // tail — the shape the service latency histograms will actually see.
    double v = rng.Exponential(1.0 / 40000.0);
    if (rng.Bernoulli(0.01)) v += rng.Exponential(1.0 / 5e6);
    values.push_back(static_cast<uint64_t>(v) + 1);
  }
  CheckDifferential(values, "heavy-tail");
}

TEST(HistogramDifferentialTest, TieStormAndSmallValues) {
  MetricsEnabledGuard guard;
  SetMetricsEnabled(true);
  std::vector<uint64_t> values(5000, 7);  // unit-bucket plateau is exact
  for (int i = 0; i < 100; ++i) values.push_back(1000000);
  CheckDifferential(values, "tie-storm");
}

TEST(MetricsConcurrencyTest, HammerWhileSnapshotting) {
  MetricsEnabledGuard guard;
  SetMetricsEnabled(true);
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hammer_counter");
  Gauge* gauge = registry.GetGauge("hammer_gauge");
  Histogram* hist = registry.GetHistogram("hammer_hist");

  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    // Concurrent snapshots must always be internally sane: monotone
    // counter, gauge within the live bracket, histogram count <= total.
    uint64_t last_count = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t c = counter->Value();
      EXPECT_GE(c, last_count);
      last_count = c;
      EXPECT_GE(gauge->Value(), 0);
      EXPECT_LE(gauge->Value(), kThreads);
      const Histogram::Snapshot snap = hist->TakeSnapshot();
      EXPECT_LE(snap.count, kThreads * kPerThread);
      (void)registry.ToJson();
      (void)registry.ToPrometheusText();
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      Random rng(1000 + t);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const ScopedGauge in_flight(gauge);
        counter->Increment();
        hist->Observe(rng.UniformInt(uint64_t{1} << 30) + 1);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  EXPECT_EQ(gauge->Value(), 0);
  const Histogram::Snapshot snap = hist->TakeSnapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_GT(snap.sum, 0u);
}

TEST(MetricsRegistryTest, IdentityIsNamePlusLabels) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x_total", "algorithm=\"am-kdj\"");
  Counter* b = registry.GetCounter("x_total", "algorithm=\"am-kdj\"");
  Counter* c = registry.GetCounter("x_total", "algorithm=\"b-kdj\"");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Pointers stay valid as more metrics register around them.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("y_total", "i=\"" + std::to_string(i) + "\"");
  }
  MetricsEnabledGuard guard;
  SetMetricsEnabled(true);
  a->Increment(3);
  EXPECT_EQ(b->Value(), 3u);
  EXPECT_EQ(c->Value(), 0u);
}

TEST(MetricsRegistryTest, DisabledUpdatesAreDropped) {
  MetricsEnabledGuard guard;
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("off_total");
  Histogram* hist = registry.GetHistogram("off_hist");
  SetMetricsEnabled(false);
  counter->Increment(5);
  hist->Observe(123);
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(hist->TakeSnapshot().count, 0u);
  SetMetricsEnabled(true);
  counter->Increment(5);
  EXPECT_EQ(counter->Value(), 5u);
}

TEST(MetricsRegistryTest, PrometheusTextFormat) {
  MetricsEnabledGuard guard;
  SetMetricsEnabled(true);
  MetricsRegistry registry;
  registry.GetCounter("amdj_requests_total", "algorithm=\"am-kdj\"",
                      "Requests accepted")->Increment(2);
  registry.GetGauge("amdj_inflight")->Add(3);
  Histogram* h = registry.GetHistogram("amdj_latency_ns");
  h->Observe(1000);
  h->Observe(2000);

  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# HELP amdj_requests_total Requests accepted"),
            std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE amdj_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("amdj_requests_total{algorithm=\"am-kdj\"} 2"),
            std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE amdj_inflight gauge"), std::string::npos);
  EXPECT_NE(text.find("amdj_inflight 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE amdj_latency_ns summary"), std::string::npos);
  EXPECT_NE(text.find("amdj_latency_ns{quantile=\"0.5\"}"),
            std::string::npos) << text;
  EXPECT_NE(text.find("amdj_latency_ns_count 2"), std::string::npos);
  EXPECT_NE(text.find("amdj_latency_ns_sum 3000"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonSnapshotFormat) {
  MetricsEnabledGuard guard;
  SetMetricsEnabled(true);
  MetricsRegistry registry;
  registry.GetCounter("amdj_requests_total")->Increment();
  Histogram* h = registry.GetHistogram("amdj_latency_ns",
                                       "algorithm=\"b-kdj\"");
  for (uint64_t i = 1; i <= 100; ++i) h->Observe(i * 1000);

  const std::string json = registry.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"schema\":\"amdj-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"amdj_requests_total\""), std::string::npos);
  EXPECT_NE(json.find("\"labels\":\"algorithm=\\\"b-kdj\\\"\""),
            std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":100"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p999\":"), std::string::npos);
  EXPECT_NE(json.find("\"max_le\":"), std::string::npos);
}

// The PR 3 precedent, one layer up: the metrics subsystem observes and
// must never steer. Same workload, same join, metrics on vs. off — the
// result vectors must be byte-identical.
TEST(MetricsIdentityTest, JoinOutputIdenticalOnAndOff) {
  MetricsEnabledGuard guard;
  const auto run = [](bool enabled) {
    SetMetricsEnabled(enabled);
    storage::InMemoryDiskManager disk;
    storage::BufferPool pool(&disk, 256);
    auto r = rtree::RTree::Create(&pool, {}).value();
    auto s = rtree::RTree::Create(&pool, {}).value();
    const workload::Dataset rd = workload::UniformPoints(
        3000, 11, geom::Rect(0, 0, 10000, 10000));
    const workload::Dataset sd = workload::GaussianClusters(
        3000, 6, 0.05, 12, geom::Rect(0, 0, 10000, 10000));
    EXPECT_TRUE(r->BulkLoad(rd.ToEntries()).ok());
    EXPECT_TRUE(s->BulkLoad(sd.ToEntries()).ok());
    core::JoinOptions options;
    options.queue_memory_bytes = 32 * 1024;  // force spill machinery too
    storage::InMemoryDiskManager spill;
    options.queue_disk = &spill;
    JoinStats stats;
    auto result = core::RunKDistanceJoin(*r, *s, 500,
                                         core::KdjAlgorithm::kAmKdj, options,
                                         &stats);
    EXPECT_TRUE(result.ok());
    return std::move(*result);
  };
  const std::vector<core::ResultPair> on = run(true);
  const std::vector<core::ResultPair> off = run(false);
  ASSERT_EQ(on.size(), off.size());
  ASSERT_FALSE(on.empty());
  for (size_t i = 0; i < on.size(); ++i) {
    EXPECT_EQ(std::memcmp(&on[i], &off[i], sizeof(core::ResultPair)), 0)
        << "diverged at pair " << i;
  }
}

}  // namespace
}  // namespace amdj

#!/usr/bin/env bash
# Regenerates every table/figure of EXPERIMENTS.md. Usage:
#   scripts/run_all_benches.sh [build-dir] [out-dir] [extra bench flags...]
# e.g. a paper-scale run:
#   scripts/run_all_benches.sh build results --streets=633461 --hydro=189642
#
# Besides the human-readable tables in OUT_DIR, assembles a machine-readable
# BENCH_PR10.json at the repo root: per figure-bench the wall ms, node
# accesses and distance computations of every measured run (emitted by
# bench_common via AMDJ_BENCH_JSON), per microbench the google-benchmark
# JSON entries including custom counters (per-op push/pop latency, queue
# splits/swap-ins/prefetch hits), and per throughput-bench (the closed-loop
# multi_query replay and the open-loop Poisson bench) its own --json
# summary with qps and p50/p99/p999 latency — so the perf trajectory is
# tracked PR over PR against the checked-in BENCH_PR2.json baseline. Each
# figure bench also gets a <name>.reports.jsonl of per-run RunReport JSON
# (phase deltas + cutoff trajectory) via AMDJ_BENCH_REPORT_JSON.
set -u

REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD_DIR=${1:-build}
OUT_DIR=${2:-bench_results}
shift 2 2>/dev/null || shift $# 2>/dev/null || true
EXTRA_FLAGS=("$@")

mkdir -p "$OUT_DIR/json"
status=0
for bench in "$BUILD_DIR"/bench/*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  case "$name" in
    *.a|*.txt|CMakeFiles|cmake_install.cmake|CTestTestfile.cmake) continue ;;
  esac
  echo "=== $name ${EXTRA_FLAGS[*]:-}"
  start_ns=$(date +%s%N)
  if [[ "$name" == micro_* ]]; then
    # google-benchmark binaries take their own flags.
    "$bench" --benchmark_min_time=0.05 \
      --benchmark_out="$OUT_DIR/json/$name.json" \
      --benchmark_out_format=json >"$OUT_DIR/$name.txt" 2>&1
  else
    rm -f "$OUT_DIR/json/$name.jsonl" "$OUT_DIR/json/$name.reports.jsonl"
    # The throughput benches publish their summaries via their own --json
    # flag (qps, p50/p99/p999) instead of per-run AMDJ_BENCH_JSON lines.
    SUMMARY_FLAGS=()
    case "$name" in
      multi_query_throughput|open_loop_throughput)
        rm -f "$OUT_DIR/json/$name.summary.json"
        SUMMARY_FLAGS=("--json=$OUT_DIR/json/$name.summary.json") ;;
    esac
    AMDJ_BENCH_NAME="$name" AMDJ_BENCH_JSON="$OUT_DIR/json/$name.jsonl" \
      AMDJ_BENCH_REPORT_JSON="$OUT_DIR/json/$name.reports.jsonl" \
      "$bench" "${SUMMARY_FLAGS[@]}" "${EXTRA_FLAGS[@]}" \
      >"$OUT_DIR/$name.txt" 2>&1
  fi
  rc=$?
  end_ns=$(date +%s%N)
  echo "$name $(( (end_ns - start_ns) / 1000000 )) $rc" >>"$OUT_DIR/json/wall.txt"
  if [ $rc -ne 0 ]; then
    echo "FAILED ($rc): $name" >&2
    status=1
  fi
done

# Assemble BENCH_PR10.json from the per-bench artifacts.
if command -v jq >/dev/null 2>&1; then
  {
    # bench -> total wall ms and exit code, as measured by this script
    jq -Rn '[inputs | split(" ") | {(.[0]): {wall_ms: (.[1] | tonumber),
                                            exit_code: (.[2] | tonumber)}}]
            | add // {}' <"$OUT_DIR/json/wall.txt" >"$OUT_DIR/json/_wall.json"
    # figure benches: one entry per measured run
    for f in "$OUT_DIR"/json/*.jsonl; do
      [ -e "$f" ] || continue
      case "$f" in *.reports.jsonl) continue ;; esac  # RunReport lines
      jq -s '{(.[0].bench // "unknown"): {runs: .}}' "$f"
    done | jq -s 'add // {}' >"$OUT_DIR/json/_figs.json"
    # microbenches: name/real_time/items plus any custom counters
    # (push_ns_per_op, pop_ns_per_op, splits, prefetch_hits, ...) from the
    # google-benchmark JSON. Counters land as extra top-level numeric keys
    # per benchmark entry, so pick up everything numeric beyond the core
    # fields.
    for f in "$OUT_DIR"/json/micro_*.json; do
      [ -e "$f" ] || continue
      jq --arg n "$(basename "$f" .json)" \
         '{($n): {benchmarks: [.benchmarks[]
            | {name, real_time, time_unit,
               items_per_second: (.items_per_second // null),
               label: (.label // null)}
              + (with_entries(select(
                   (.value | type == "number") and
                   (.key | IN("name", "real_time", "cpu_time", "time_unit",
                              "items_per_second", "label", "run_type",
                              "repetitions", "repetition_index", "threads",
                              "iterations", "family_index",
                              "per_family_instance_index") | not))))]}}' "$f"
    done | jq -s 'add // {}' >"$OUT_DIR/json/_micro.json"
    # throughput benches: their --json summaries, keyed by bench name
    for f in "$OUT_DIR"/json/*.summary.json; do
      [ -e "$f" ] || continue
      jq '{(.bench // "unknown"): .}' "$f"
    done | jq -s 'add // {}' >"$OUT_DIR/json/_throughput.json"
    jq -s '{schema: "amdj-bench-v1",
            flags: $flags,
            wall: .[0], figures: .[1], micro: .[2], throughput: .[3]}' \
       --arg flags "${EXTRA_FLAGS[*]:-}" \
       "$OUT_DIR/json/_wall.json" "$OUT_DIR/json/_figs.json" \
       "$OUT_DIR/json/_micro.json" "$OUT_DIR/json/_throughput.json" \
       >"$REPO_ROOT/BENCH_PR10.json"
    echo "wrote $REPO_ROOT/BENCH_PR10.json"
  } || { echo "BENCH_PR10.json assembly failed" >&2; status=1; }
else
  echo "jq not found: skipping BENCH_PR10.json" >&2
fi

echo "outputs in $OUT_DIR/"
exit $status

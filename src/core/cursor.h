#ifndef AMDJ_CORE_CURSOR_H_
#define AMDJ_CORE_CURSOR_H_

#include <cstdint>

#include "common/status.h"
#include "core/pair_entry.h"

namespace amdj::core {

/// Pull-based incremental distance join (IDJ): each Next() yields the next
/// object pair in non-decreasing distance order, with no preset stopping
/// cardinality — the caller simply stops calling ("enough already").
class DistanceJoinCursor {
 public:
  virtual ~DistanceJoinCursor() = default;

  /// Produces the next pair into `*out`. Sets `*done` to true (leaving
  /// `*out` untouched) when the join is exhausted.
  virtual Status Next(ResultPair* out, bool* done) = 0;

  /// Number of pairs produced so far.
  virtual uint64_t produced() const = 0;

  /// Optional hint that the caller will consume results up to cardinality
  /// `k`; adaptive algorithms use it to pick eDmax for the next stage.
  /// Default implementation ignores it.
  virtual void PrefetchHint(uint64_t k) { (void)k; }
};

}  // namespace amdj::core

#endif  // AMDJ_CORE_CURSOR_H_

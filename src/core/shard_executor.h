#ifndef AMDJ_CORE_SHARD_EXECUTOR_H_
#define AMDJ_CORE_SHARD_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "core/distance_join.h"
#include "core/options.h"
#include "core/partition.h"

namespace amdj::core {

/// Knobs for RunShardedKDistanceJoin.
struct ShardedJoinOptions {
  /// Per-pair join options. The executor copies and adjusts them for each
  /// shard pair: `parallelism` is forced to 1 (parallelism lives at the
  /// shard level — nesting pools would oversubscribe), `report` is cleared
  /// (RunReport is single-run), and `shared_cutoff_key` is pointed at the
  /// executor's global cutoff. `queue_disk` (if set) is shared by all
  /// concurrent per-pair joins and must be thread-safe — the repo's disk
  /// managers are. `tracer` may be set; its buffers are per-thread.
  JoinOptions join;

  /// Worker threads executing shard-pair joins concurrently. The executor
  /// owns a private pool for the call; do not confuse with
  /// JoinOptions::parallelism.
  uint32_t threads = 4;

  /// Per-pair algorithm. Only kBKdj and kAmKdj implement the shared-cutoff
  /// early-stop protocol; anything else is InvalidArgument.
  KdjAlgorithm algorithm = KdjAlgorithm::kAmKdj;

  /// Drive per-pair AM-KDJ with the ShardPairEstimator built from the two
  /// partitions: forced_edmax = min(global shard-pair estimate, current
  /// global cutoff), and the estimator also serves hybrid-queue boundary
  /// probes (unless `join.estimator` is already set, which wins). Safe for
  /// any estimate — AM-KDJ's compensation stage guarantees B-KDJ-equal
  /// results. Ignored for kBKdj.
  bool use_estimator = true;
};

/// Partition-parallel k-distance join (see DESIGN.md "Partition layer").
///
/// Schedules the non-empty shard pairs of `r` x `s`:
///   1. Bounds-only pruning: from shard MBBs alone, the smallest key U
///      such that the pairs whose MaxDist key is <= U already hold k
///      candidate object pairs upper-bounds the final k-th key; pairs with
///      MinDist key > U never execute (shard_pairs_pruned_bounds). With a
///      spatial window set, the candidate count is not bounds-derivable
///      and the bound is skipped.
///   2. Surviving pairs run ascending in MinDist key on a private pool, in
///      two adaptive passes. The *probe* pass caps each pair's local k at
///      k_probe = min(k, max(1024, 4k/|survivors|)) so pairs self-bound
///      cheaply instead of exhaustively chasing a local k they cannot
///      fill; meanwhile every candidate key streams into a pooled
///      bounded-k cutoff (initialized to U, only ever shrinking) that
///      (a) re-prunes pairs at dispatch (shard_pairs_pruned_cutoff) and
///      (b) feeds every in-flight join via JoinOptions::shared_cutoff_key,
///      tightening node pruning and stopping frontiers early. The *top-up*
///      pass then re-runs, at full k under the now-tight published cutoff,
///      only the pairs whose probe run truncated at or below that cutoff;
///      the re-run replaces the probe run (and is not re-counted in
///      shard_pairs_executed). For k <= 1024 the probe cap equals k and
///      the top-up pass vanishes.
///   3. A k-way ranked merge over the per-pair result runs, ordered by
///      (key, r_id, s_id) with keys recomputed exactly from the partition's
///      object MBRs, yields the final top-k.
///
/// The returned values and their order are deterministic — independent of
/// thread timing — and identical to the unsharded join whenever the result
/// list is free of cross-entry key ties (see the DESIGN.md invariant
/// table; under ties the output is still a correct top-k, in canonical
/// (key, r_id, s_id) order, while the unsharded list follows discovery
/// order inside a tie plateau). Work counters are timing-dependent: a
/// slower cutoff costs extra node accesses, never results.
///
/// `stats` (may be null) additionally receives the shard_pairs_* counters
/// and the Add-merged per-pair counters; cpu_seconds is charged the
/// executor wall clock, pairs_produced the merged result count.
StatusOr<std::vector<ResultPair>> RunShardedKDistanceJoin(
    const Partition& r, const Partition& s, uint64_t k,
    const ShardedJoinOptions& options, JoinStats* stats);

}  // namespace amdj::core

#endif  // AMDJ_CORE_SHARD_EXECUTOR_H_

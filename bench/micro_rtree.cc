// Microbenchmarks for the R*-tree substrate: insertion, bulk loading and
// range queries through the buffer pool.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

namespace amdj {
namespace {

std::vector<rtree::Entry> MakeEntries(uint64_t n, uint64_t seed) {
  return workload::UniformRects(n, 50.0, seed).ToEntries();
}

void BM_RTreeInsert(benchmark::State& state) {
  const auto entries = MakeEntries(static_cast<uint64_t>(state.range(0)), 1);
  for (auto _ : state) {
    state.PauseTiming();
    storage::InMemoryDiskManager disk;
    storage::BufferPool pool(&disk, 1024);
    auto tree = rtree::RTree::Create(&pool, {}).value();
    state.ResumeTiming();
    for (const auto& e : entries) {
      benchmark::DoNotOptimize(tree->Insert(e.rect, e.id));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeInsert)->Arg(1000)->Arg(10000);

void BM_RTreeBulkLoad(benchmark::State& state) {
  const auto entries = MakeEntries(static_cast<uint64_t>(state.range(0)), 2);
  for (auto _ : state) {
    state.PauseTiming();
    storage::InMemoryDiskManager disk;
    storage::BufferPool pool(&disk, 1024);
    auto tree = rtree::RTree::Create(&pool, {}).value();
    state.ResumeTiming();
    benchmark::DoNotOptimize(tree->BulkLoad(entries));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(10000)->Arg(100000);

void BM_RTreeRangeQuery(benchmark::State& state) {
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 4096);
  auto tree = rtree::RTree::Create(&pool, {}).value();
  benchmark::DoNotOptimize(tree->BulkLoad(MakeEntries(100000, 3)));
  Random rng(4);
  for (auto _ : state) {
    const double x = rng.Uniform(0, workload::kUniverseSize);
    const double y = rng.Uniform(0, workload::kUniverseSize);
    const double w = workload::kUniverseSize * 0.01;
    auto hits = tree->RangeQuery(geom::Rect(x, y, x + w, y + w));
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_RTreeRangeQuery);

void BM_BufferPoolFetchHit(benchmark::State& state) {
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 64);
  storage::PageId id;
  pool.NewPage(&id)->Release();
  for (auto _ : state) {
    auto guard = pool.FetchPage(id);
    benchmark::DoNotOptimize(guard);
  }
}
BENCHMARK(BM_BufferPoolFetchHit);

}  // namespace
}  // namespace amdj

BENCHMARK_MAIN();

file(REMOVE_RECURSE
  "CMakeFiles/semi_join_test.dir/semi_join_test.cc.o"
  "CMakeFiles/semi_join_test.dir/semi_join_test.cc.o.d"
  "semi_join_test"
  "semi_join_test.pdb"
  "semi_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semi_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

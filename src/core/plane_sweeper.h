#ifndef AMDJ_CORE_PLANE_SWEEPER_H_
#define AMDJ_CORE_PLANE_SWEEPER_H_

#include <algorithm>
#include <vector>

#include "common/stats.h"
#include "core/pair_entry.h"
#include "core/sweep_plan.h"
#include "geom/sweep_geometry.h"

namespace amdj::core {

/// Bidirectional plane sweep over two child lists (the heart of Algorithm 1
/// and its aggressive/compensating variants): repeatedly take the not-yet-
/// processed item with the minimum sweep coordinate as the *anchor* and scan
/// the remaining items of the *other* list in sweep order, stopping as soon
/// as the axis separation exceeds `*cutoff` — so only O(|L| + |R|) pairs are
/// touched for a tight cutoff instead of the full Cartesian product.
///
/// `*cutoff` is re-read before every comparison, so a callback that shrinks
/// the cutoff (e.g. B-KDJ inserting an object-pair distance into the
/// distance queue) immediately tightens the remaining sweep.
///
/// The callback is invoked as cb(left_ref, right_ref, axis_distance) with
/// axis_distance non-decreasing per anchor; it computes the real distance
/// and applies the algorithm-specific filters. Every unordered pair within
/// the cutoff is reported exactly once.
///
/// Axis-distance computations are counted into `stats` (Figure 11's metric).
///
/// Returns true if the sweep *axis-covered* every pair: no anchor's scan was
/// cut short by the cutoff while candidates remained. The adaptive
/// algorithms use a false return ("this expansion may have pruned pairs")
/// to decide whether the pair must enter the compensation queue.
template <typename Callback>
bool PlaneSweep(const std::vector<PairRef>& left,
                const std::vector<PairRef>& right, const SweepPlan& plan,
                const double* cutoff, JoinStats* stats, Callback&& cb) {
  struct Item {
    const PairRef* ref;
    double key_lo;
    double key_hi;
  };
  const bool forward = plan.dir == geom::SweepDirection::kForward;
  const int axis = plan.axis;
  auto build = [&](const std::vector<PairRef>& refs) {
    std::vector<Item> items;
    items.reserve(refs.size());
    for (const PairRef& r : refs) {
      // Backward sweeps are forward sweeps in negated coordinates.
      const double lo = r.rect.lo.Coord(axis);
      const double hi = r.rect.hi.Coord(axis);
      items.push_back(forward ? Item{&r, lo, hi} : Item{&r, -hi, -lo});
    }
    std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
      if (a.key_lo != b.key_lo) return a.key_lo < b.key_lo;
      return a.ref->id < b.ref->id;
    });
    return items;
  };
  const std::vector<Item> lhs = build(left);
  const std::vector<Item> rhs = build(right);

  size_t il = 0;
  size_t ir = 0;
  bool covered = true;
  while (il < lhs.size() && ir < rhs.size()) {
    const bool anchor_is_left = lhs[il].key_lo <= rhs[ir].key_lo;
    const Item& anchor = anchor_is_left ? lhs[il++] : rhs[ir++];
    const std::vector<Item>& other = anchor_is_left ? rhs : lhs;
    for (size_t j = anchor_is_left ? ir : il; j < other.size(); ++j) {
      if (stats != nullptr) ++stats->axis_distance_computations;
      const double axis_dist =
          std::max(0.0, other[j].key_lo - anchor.key_hi);
      if (axis_dist > *cutoff) {
        covered = false;
        break;  // keys ascend: nothing further fits this anchor
      }
      if (anchor_is_left) {
        cb(*anchor.ref, *other[j].ref, axis_dist);
      } else {
        cb(*other[j].ref, *anchor.ref, axis_dist);
      }
    }
  }
  return covered;
}

}  // namespace amdj::core

#endif  // AMDJ_CORE_PLANE_SWEEPER_H_

#include "core/histogram_estimator.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "common/random.h"
#include "core/dmax_estimator.h"
#include "test_util.h"
#include "workload/generators.h"

namespace amdj::core {
namespace {

using geom::Rect;

std::vector<double> AllDistances(const std::vector<Rect>& r,
                                 const std::vector<Rect>& s) {
  std::vector<double> d;
  for (const auto& a : r) {
    for (const auto& b : s) d.push_back(geom::MinDistance(a, b));
  }
  std::sort(d.begin(), d.end());
  return d;
}

TEST(HistogramEstimatorTest, ExpectedPairsIsMonotone) {
  const Rect uni(0, 0, 1000, 1000);
  const auto r = workload::GaussianClusters(500, 4, 0.03, 1, uni);
  const auto s = workload::GaussianClusters(500, 4, 0.03, 1, uni);
  HistogramEstimator est(r.objects, s.objects);
  double prev = -1.0;
  for (double d : {0.0, 1.0, 5.0, 20.0, 100.0, 500.0, 2000.0}) {
    const double k = est.ExpectedPairsWithin(geom::DistVal(d));
    EXPECT_GE(k, prev);
    prev = k;
  }
  // Saturation: at the diameter every pair counts.
  EXPECT_NEAR(est.ExpectedPairsWithin(geom::DistVal(2000.0)), 500.0 * 500.0, 1.0);
}

TEST(HistogramEstimatorTest, EstimateIsWithinSmallFactorOnUniformData) {
  const Rect uni(0, 0, 1000, 1000);
  const auto r = workload::UniformPoints(400, 2, uni);
  const auto s = workload::UniformPoints(400, 3, uni);
  const auto truth = AllDistances(r.objects, s.objects);
  HistogramEstimator est(r.objects, s.objects);
  for (uint64_t k : {100ull, 1000ull, 10000ull}) {
    const double estimate = est.EstimateDmax(k).raw();
    EXPECT_GT(estimate, truth[k - 1] * 0.4) << "k=" << k;
    EXPECT_LT(estimate, truth[k - 1] * 2.5) << "k=" << k;
  }
}

TEST(HistogramEstimatorTest, BeatsUniformEstimatorOnSkewedData) {
  // The whole point of the extension: Eq. 3 heavily overestimates on
  // clustered data; the histogram must land much closer to the truth.
  const Rect uni(0, 0, 10000, 10000);
  const auto r = workload::GaussianClusters(600, 3, 0.008, 4, uni);
  // Same clusters, different points: jitter each r object slightly so the
  // sets overlap densely without identical (distance-0) duplicates.
  auto s = r;
  Random jitter(5);
  for (auto& rect : s.objects) {
    const double dx = jitter.Uniform(0.5, 3.0);
    const double dy = jitter.Uniform(0.5, 3.0);
    rect = Rect(rect.lo.x + dx, rect.lo.y + dy, rect.hi.x + dx,
                rect.hi.y + dy);
  }
  const auto truth = AllDistances(r.objects, s.objects);
  HistogramEstimator histogram(r.objects, s.objects);
  DmaxEstimator uniform(Rect(0, 0, 10000, 10000), 600,
                        Rect(0, 0, 10000, 10000), 600);
  for (uint64_t k : {100ull, 1000ull}) {
    const double real = truth[k - 1];
    const double h = histogram.EstimateDmax(k).raw();
    const double u = uniform.InitialEstimate(k).raw();
    // Histogram is closer to the truth than the uniform estimate (in
    // log-ratio terms, since both sides can over/under-shoot).
    const double h_err = std::abs(std::log(std::max(h, 1e-9) / real));
    const double u_err = std::abs(std::log(u / real));
    EXPECT_LT(h_err, u_err) << "k=" << k << " real=" << real << " h=" << h
                            << " u=" << u;
    EXPECT_LT(h_err, std::log(4.0)) << "within 4x of truth, k=" << k;
  }
}

TEST(HistogramEstimatorTest, FromTreesMatchesFromObjects) {
  const Rect uni(0, 0, 1000, 1000);
  const auto r = workload::GaussianClusters(300, 4, 0.05, 5, uni);
  const auto s = workload::UniformPoints(300, 6, uni);
  test::JoinFixture f = test::MakeFixture(r, s, 16);
  auto from_trees = HistogramEstimator::FromTrees(*f.r, *f.s);
  ASSERT_TRUE(from_trees.ok());
  HistogramEstimator from_objects(r.objects, s.objects);
  for (uint64_t k : {10ull, 1000ull}) {
    EXPECT_NEAR(from_trees->EstimateDmax(k).raw(),
                from_objects.EstimateDmax(k).raw(),
                1e-6 * from_objects.EstimateDmax(k).raw() + 1e-9);
  }
}

TEST(HistogramEstimatorTest, CorrectionCalibratesToObservedTruth) {
  const Rect uni(0, 0, 1000, 1000);
  const auto r = workload::GaussianClusters(400, 4, 0.02, 7, uni);
  const auto s = workload::GaussianClusters(400, 4, 0.02, 7, uni);
  const auto truth = AllDistances(r.objects, s.objects);
  HistogramEstimator est(r.objects, s.objects);
  // Having seen 100 pairs end at the true d_100, the corrected estimate
  // for k=1000 should be closer to d_1000 than the raw estimate... and
  // never below the observed distance.
  const double corrected =
      est.Correct(1000, 100, geom::DistVal(truth[99]), false).raw();
  EXPECT_GE(corrected, truth[99]);
  const double raw_err =
      std::abs(std::log(est.EstimateDmax(1000).raw() / truth[999]));
  const double corr_err = std::abs(std::log(corrected / truth[999]));
  EXPECT_LE(corr_err, raw_err + 0.7);  // never dramatically worse
  // Aggressive <= conservative.
  EXPECT_LE(est.Correct(1000, 100, geom::DistVal(truth[99]), true).raw(),
            corrected + 1e-12);
}

TEST(HistogramEstimatorTest, DegenerateInputsStayFinite) {
  std::vector<Rect> single = {Rect(5, 5, 5, 5)};
  HistogramEstimator est(single, single);
  EXPECT_GE(est.EstimateDmax(10).raw(), 0.0);
  EXPECT_TRUE(std::isfinite(est.EstimateDmax(10).raw()));
  std::vector<Rect> empty;
  HistogramEstimator est2(empty, single);
  EXPECT_EQ(est2.ExpectedPairsWithin(geom::DistVal(100.0)), 0.0);
}

TEST(HistogramEstimatorTest, BoundaryFnIsMonotone) {
  const Rect uni(0, 0, 1000, 1000);
  const auto r = workload::UniformPoints(200, 8, uni);
  HistogramEstimator est(r.objects, r.objects);
  const auto fn = est.BoundaryFn();
  EXPECT_LE(fn(10), fn(100));
  EXPECT_LE(fn(100), fn(10000));
}

TEST(HistogramEstimatorTest, BoundaryFnTracksEstimateDmax) {
  const Rect uni(0, 0, 1000, 1000);
  const auto r = workload::GaussianClusters(400, 4, 0.05, 12, uni);
  const auto s = workload::UniformPoints(300, 13, uni);
  HistogramEstimator est(r.objects, s.objects);
  const auto fn = est.BoundaryFn();  // interpolation table
  for (uint64_t c : {50ull, 500ull, 5000ull, 50000ull}) {
    const double exact = est.EstimateDmax(c).raw();
    const double interpolated = fn(c).raw();
    // Interpolation error should be small relative to the exact inverse.
    EXPECT_NEAR(interpolated, exact, 0.15 * exact + 1e-9) << "c=" << c;
  }
  // Beyond every pair: clamps at the data diameter, stays finite.
  EXPECT_TRUE(std::isfinite(fn(1ull << 40).raw()));
}

// ---------------------------------------------------------------------------
// Plugged into the adaptive algorithms: identical results, less
// compensation / overshoot on skewed data.

TEST(HistogramEstimatorTest, AmKdjWithHistogramEstimatorIsCorrect) {
  const Rect uni(0, 0, 10000, 10000);
  const auto r = workload::GaussianClusters(300, 3, 0.01, 9, uni);
  const auto s = workload::GaussianClusters(250, 3, 0.01, 9, uni);
  test::JoinFixture f = test::MakeFixture(r, s, 8);
  const auto brute = test::BruteForceDistances(f.r_objects, f.s_objects);
  HistogramEstimator est(r.objects, s.objects);
  JoinOptions options;
  options.estimator = &est;
  for (const auto algorithm :
       {KdjAlgorithm::kBKdj, KdjAlgorithm::kAmKdj}) {
    auto result =
        RunKDistanceJoin(*f.r, *f.s, 500, algorithm, options, nullptr);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->size(), 500u);
    for (size_t i = 0; i < result->size(); ++i) {
      ASSERT_NEAR((*result)[i].distance, brute[i], 1e-9) << "rank " << i;
    }
  }
}

TEST(HistogramEstimatorTest, AmIdjWithHistogramEstimatorIsCorrect) {
  const Rect uni(0, 0, 10000, 10000);
  const auto r = workload::ZipfSkewedPoints(250, 0.9, 10, uni);
  const auto s = workload::ZipfSkewedPoints(200, 0.9, 11, uni);
  test::JoinFixture f = test::MakeFixture(r, s, 8);
  const auto brute = test::BruteForceDistances(f.r_objects, f.s_objects);
  HistogramEstimator est(r.objects, s.objects);
  JoinOptions options;
  options.estimator = &est;
  options.idj_initial_k = 64;
  auto cursor = OpenIncrementalJoin(*f.r, *f.s, IdjAlgorithm::kAmIdj,
                                    options, nullptr);
  ASSERT_TRUE(cursor.ok());
  ResultPair p;
  bool done = false;
  for (size_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE((*cursor)->Next(&p, &done).ok());
    ASSERT_FALSE(done);
    ASSERT_NEAR(p.distance, brute[i], 1e-9) << "rank " << i;
  }
}

TEST(HistogramEstimatorTest, ReducesOvershootOnSkewedData) {
  // On clustered data the uniform estimate overshoots, which makes AM-KDJ
  // degenerate toward B-KDJ (weak aggressive pruning). The histogram
  // estimate should prune more: fewer queue insertions.
  const Rect uni(0, 0, 50000, 50000);
  const auto r = workload::GaussianClusters(3000, 4, 0.005, 12, uni);
  const auto s = workload::GaussianClusters(2500, 4, 0.005, 12, uni);
  test::JoinFixture f = test::MakeFixture(r, s, 32, 512);
  HistogramEstimator est(r.objects, s.objects);
  JoinOptions uniform_options;
  JoinOptions histogram_options;
  histogram_options.estimator = &est;
  JoinStats uniform_stats, histogram_stats;
  ASSERT_TRUE(RunKDistanceJoin(*f.r, *f.s, 2000, KdjAlgorithm::kAmKdj,
                               uniform_options, &uniform_stats)
                  .ok());
  ASSERT_TRUE(RunKDistanceJoin(*f.r, *f.s, 2000, KdjAlgorithm::kAmKdj,
                               histogram_options, &histogram_stats)
                  .ok());
  EXPECT_LE(histogram_stats.main_queue_insertions,
            uniform_stats.main_queue_insertions);
}

}  // namespace
}  // namespace amdj::core

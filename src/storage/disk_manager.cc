#include "storage/disk_manager.h"

#include <cstring>

namespace amdj::storage {

void DiskManager::CountRead(PageId page_id) {
  ++stats_.page_reads;
  if (last_read_ != kInvalidPageId && page_id == last_read_ + 1) {
    ++stats_.sequential_reads;
  } else {
    ++stats_.random_reads;
  }
  last_read_ = page_id;
}

void DiskManager::CountWrite(PageId page_id) {
  ++stats_.page_writes;
  if (last_write_ != kInvalidPageId && page_id == last_write_ + 1) {
    ++stats_.sequential_writes;
  } else {
    ++stats_.random_writes;
  }
  last_write_ = page_id;
}

// ---------------------------------------------------------------------------
// InMemoryDiskManager

PageId InMemoryDiskManager::AllocatePage() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.pages_allocated;
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    return id;
  }
  pages_.push_back(std::make_unique<char[]>(kPageSize));
  return static_cast<PageId>(pages_.size() - 1);
}

void InMemoryDiskManager::FreePage(PageId page_id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (page_id < pages_.size()) free_list_.push_back(page_id);
}

Status InMemoryDiskManager::ReadPage(PageId page_id, char* out) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (page_id >= pages_.size()) {
    return Status::OutOfRange("read of unallocated page " +
                              std::to_string(page_id));
  }
  CountRead(page_id);
  std::memcpy(out, pages_[page_id].get(), kPageSize);
  return Status::OK();
}

Status InMemoryDiskManager::WritePage(PageId page_id, const char* data) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (page_id >= pages_.size()) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(page_id));
  }
  CountWrite(page_id);
  std::memcpy(pages_[page_id].get(), data, kPageSize);
  return Status::OK();
}

uint32_t InMemoryDiskManager::PageCount() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<uint32_t>(pages_.size());
}

// ---------------------------------------------------------------------------
// FileDiskManager

FileDiskManager::FileDiskManager(const std::string& path, bool persistent)
    : path_(path), persistent_(persistent) {
  if (persistent_) {
    // Keep existing pages; create the file if it does not exist yet.
    file_ = std::fopen(path.c_str(), "r+b");
    if (file_ == nullptr) file_ = std::fopen(path.c_str(), "w+b");
    if (file_ != nullptr && std::fseek(file_, 0, SEEK_END) == 0) {
      const long bytes = std::ftell(file_);
      if (bytes > 0) {
        page_count_ = static_cast<uint32_t>(
            static_cast<unsigned long>(bytes) / kPageSize);
      }
    }
  } else {
    file_ = std::fopen(path.c_str(), "w+b");
  }
}

FileDiskManager::~FileDiskManager() {
  if (file_ != nullptr) {
    std::fclose(file_);
    if (!persistent_) std::remove(path_.c_str());
  }
}

PageId FileDiskManager::AllocatePage() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.pages_allocated;
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    return id;
  }
  return page_count_++;
}

void FileDiskManager::FreePage(PageId page_id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (page_id < page_count_) free_list_.push_back(page_id);
}

Status FileDiskManager::ReadPage(PageId page_id, char* out) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::IOError("backing file not open");
  if (page_id >= page_count_) {
    return Status::OutOfRange("read of unallocated page " +
                              std::to_string(page_id));
  }
  CountRead(page_id);
  if (std::fseek(file_, static_cast<long>(page_id) * kPageSize, SEEK_SET) !=
      0) {
    return Status::IOError("seek failed");
  }
  const size_t n = std::fread(out, 1, kPageSize, file_);
  if (n < kPageSize) {
    // Pages allocated but never written read back as zeros.
    std::memset(out + n, 0, kPageSize - n);
    std::clearerr(file_);
  }
  return Status::OK();
}

Status FileDiskManager::WritePage(PageId page_id, const char* data) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return Status::IOError("backing file not open");
  if (page_id >= page_count_) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(page_id));
  }
  CountWrite(page_id);
  if (std::fseek(file_, static_cast<long>(page_id) * kPageSize, SEEK_SET) !=
      0) {
    return Status::IOError("seek failed");
  }
  if (std::fwrite(data, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("short write");
  }
  return Status::OK();
}

uint32_t FileDiskManager::PageCount() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return page_count_;
}

// ---------------------------------------------------------------------------
// FaultInjectionDiskManager

Status FaultInjectionDiskManager::ReadPage(PageId page_id, char* out) {
  if (reads_until_failure_ == 0) {
    return Status::IOError("injected read failure");
  }
  if (reads_until_failure_ != kNever) --reads_until_failure_;
  return base_->ReadPage(page_id, out);
}

Status FaultInjectionDiskManager::WritePage(PageId page_id,
                                            const char* data) {
  if (writes_until_failure_ == 0) {
    return Status::IOError("injected write failure");
  }
  if (writes_until_failure_ != kNever) --writes_until_failure_;
  return base_->WritePage(page_id, data);
}

}  // namespace amdj::storage

#ifndef AMDJ_TOOLS_CLI_REQUEST_PARSER_H_
#define AMDJ_TOOLS_CLI_REQUEST_PARSER_H_

#include <sstream>
#include <string>

#include "common/status.h"
#include "service/join_service.h"

/// \file
/// The serve/batch stdin request-line parser, factored out of amdj_cli so
/// the libFuzzer harness (fuzz/fuzz_request_parser.cc) can drive the
/// exact production code path. The parser is the one place where
/// untrusted bytes (a request file, the serve control channel) become a
/// typed JoinRequest, so it is non-fatal by contract: every malformed
/// line maps to Status::InvalidArgument, never to a crash or an abort.

namespace amdj::cli {

/// Parses one request line: `<kdj|idj> <hs|b|am|sj> <k>`. Non-fatal so the
/// serve control channel can report a bad line and keep running; batch
/// turns the error into a usage failure via CheckOk.
inline StatusOr<service::JoinRequest> ParseRequestLine(
    const std::string& line, size_t lineno) {
  std::istringstream in(line);
  std::string kind, algo;
  uint64_t k = 0;
  if (!(in >> kind >> algo >> k) || k == 0) {
    return Status::InvalidArgument(
        "bad request line " + std::to_string(lineno) + ": '" + line +
        "' (want `<kdj|idj> <hs|b|am|sj> <k>`)");
  }
  service::JoinRequest request;
  request.k = k;
  if (kind == "kdj") {
    request.kind = service::JoinRequest::Kind::kKdj;
    if (algo == "hs") {
      request.kdj_algorithm = core::KdjAlgorithm::kHsKdj;
    } else if (algo == "b") {
      request.kdj_algorithm = core::KdjAlgorithm::kBKdj;
    } else if (algo == "am") {
      request.kdj_algorithm = core::KdjAlgorithm::kAmKdj;
    } else if (algo == "sj") {
      request.kdj_algorithm = core::KdjAlgorithm::kSjSort;
    } else {
      return Status::InvalidArgument(
          "request line " + std::to_string(lineno) +
          ": kdj algorithm must be hs|b|am|sj, got " + algo);
    }
  } else if (kind == "idj") {
    request.kind = service::JoinRequest::Kind::kIdj;
    if (algo == "hs") {
      request.idj_algorithm = core::IdjAlgorithm::kHsIdj;
    } else if (algo == "am") {
      request.idj_algorithm = core::IdjAlgorithm::kAmIdj;
    } else {
      return Status::InvalidArgument(
          "request line " + std::to_string(lineno) +
          ": idj algorithm must be hs|am, got " + algo);
    }
  } else {
    return Status::InvalidArgument("request line " + std::to_string(lineno) +
                                   ": kind must be kdj|idj, got " + kind);
  }
  return request;
}

}  // namespace amdj::cli

#endif  // AMDJ_TOOLS_CLI_REQUEST_PARSER_H_

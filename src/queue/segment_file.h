#ifndef AMDJ_QUEUE_SEGMENT_FILE_H_
#define AMDJ_QUEUE_SEGMENT_FILE_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace amdj::queue {

/// An unsorted on-disk pile of fixed-size records, the backing store of one
/// hybrid-queue partition (the paper stores every partition beyond the
/// in-memory heap "on disk as merely unsorted piles", Section 4.4).
///
/// Records are appended through a one-page write buffer; ReadAll streams
/// every record back. Page reads/writes are counted into the optional
/// JoinStats sink (queue_page_reads / queue_page_writes).
class SegmentFile {
 public:
  /// `record_size` must be in [1, kPageSize]. Does not take ownership of
  /// `disk`.
  SegmentFile(storage::DiskManager* disk, size_t record_size,
              JoinStats* stats);
  ~SegmentFile();

  SegmentFile(SegmentFile&& other) noexcept;
  SegmentFile& operator=(SegmentFile&& other) noexcept;
  SegmentFile(const SegmentFile&) = delete;
  SegmentFile& operator=(const SegmentFile&) = delete;

  /// Appends one record of record_size bytes.
  Status Append(const void* record);

  /// Copies all records (buffered + on disk) into `out`, packed
  /// back-to-back; `out` is resized to count() * record_size bytes.
  Status ReadAll(std::vector<char>* out);

  /// Releases all pages back to the disk manager and empties the pile.
  void Drop();

  uint64_t count() const { return count_; }
  size_t record_size() const { return record_size_; }

  /// Inclusive lower bound of the distance range this segment holds; used
  /// by HybridQueue to route insertions and order swap-ins.
  double lower_bound = 0.0;

 private:
  size_t RecordsPerPage() const {
    return storage::kPageSize / record_size_;
  }

  /// Writes the buffered records out as one page. On failure the freshly
  /// allocated page is freed (not leaked) and the buffer is kept so the
  /// flush can be retried.
  Status FlushBuffer();

  storage::DiskManager* disk_;
  size_t record_size_;
  JoinStats* stats_;
  uint64_t count_ = 0;
  std::vector<storage::PageId> pages_;
  std::vector<char> write_buffer_;  // < one page of pending records
};

}  // namespace amdj::queue

#endif  // AMDJ_QUEUE_SEGMENT_FILE_H_

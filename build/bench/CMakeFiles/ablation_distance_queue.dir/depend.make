# Empty dependencies file for ablation_distance_queue.
# This may be replaced when dependencies are built.

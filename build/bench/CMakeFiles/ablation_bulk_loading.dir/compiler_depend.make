# Empty compiler generated dependencies file for ablation_bulk_loading.
# This may be replaced when dependencies are built.

// Table 2: number of R-tree nodes fetched from disk per k-distance join,
// with the paper's 512 KB R-tree buffer, and (in parentheses) the logical
// node accesses a bufferless run would pay.

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace amdj::bench {
namespace {

void Run(int argc, char** argv) {
  BenchEnv env = MakeTigerEnv(BenchConfig::FromArgs(argc, argv));
  PrintHeader("Table 2: R-tree node accesses for k-distance joins", env);

  const std::vector<uint64_t> ks = {100, 1000, 10000, 100000};
  const std::vector<core::KdjAlgorithm> algorithms = {
      core::KdjAlgorithm::kHsKdj, core::KdjAlgorithm::kBKdj,
      core::KdjAlgorithm::kAmKdj, core::KdjAlgorithm::kSjSort};

  const std::vector<int> widths = {10, 20, 20, 20, 20};
  std::vector<std::string> header = {"algorithm"};
  for (uint64_t k : ks) header.push_back("k=" + FormatCount(k));
  PrintRow(header, widths);
  std::printf("%s\n",
              "(buffered disk fetches, with unbuffered accesses in "
              "parentheses)");

  for (const auto algorithm : algorithms) {
    std::vector<std::string> row = {core::ToString(algorithm)};
    for (uint64_t k : ks) {
      RunResult run = RunKdjCold(env, algorithm, k, env.MakeJoinOptions());
      row.push_back(FormatCount(run.stats.node_disk_reads) + " (" +
                    FormatCount(run.stats.node_accesses) + ")");
    }
    PrintRow(row, widths);
  }
}

}  // namespace
}  // namespace amdj::bench

int main(int argc, char** argv) {
  amdj::bench::Run(argc, argv);
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/sweep_plan_test.dir/sweep_plan_test.cc.o"
  "CMakeFiles/sweep_plan_test.dir/sweep_plan_test.cc.o.d"
  "sweep_plan_test"
  "sweep_plan_test.pdb"
  "sweep_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

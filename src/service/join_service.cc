#include "service/join_service.h"

#include <algorithm>
#include <utility>

#include "common/timer.h"
#include "core/shard_executor.h"
#include "storage/disk_manager.h"

namespace amdj::service {

JoinService::JoinService(const rtree::RTree& r, const rtree::RTree& s,
                         const Options& options)
    : r_(r),
      s_(s),
      options_(options),
      max_inflight_(std::max<uint32_t>(1, options.max_inflight)),
      per_query_queue_memory_(std::max(
          kMinQueueMemoryBytes,
          options.queue_memory_budget_bytes / max_inflight_ /
              // Async spill I/O holds pages and prefetch buffers outside
              // the accounted in-memory tier (see Options doc): halve the
              // clamp so the total stays within the budget.
              (options.spill_io_threads > 0 ? 2 : 1))),
      pool_(std::make_unique<ThreadPool>(max_inflight_,
                                         options.name_prefix)) {
  if (options.spill_io_threads > 0) {
    io_pool_ = std::make_unique<ThreadPool>(options.spill_io_threads,
                                            options.name_prefix + "-io");
  }
  if (options.shards > 1) {
    options_.shard_threads = std::max<uint32_t>(1, options.shard_threads);
    shard_disk_ = std::make_unique<storage::InMemoryDiskManager>();
    shard_pool_ = std::make_unique<storage::BufferPool>(
        shard_disk_.get(), std::max<size_t>(64, options.shard_pool_pages));
    core::PartitionOptions part;
    part.shards = options.shards;
    auto build = [this, &part](const rtree::RTree& tree,
                               std::optional<core::Partition>* out) {
      auto part_or = core::Partition::FromTree(tree, shard_pool_.get(), part);
      if (!part_or.ok()) return part_or.status();
      *out = std::move(part_or).value();
      return Status::OK();
    };
    shard_init_ = build(r_, &r_partition_);
    if (shard_init_.ok()) shard_init_ = build(s_, &s_partition_);
  }
}

JoinService::~JoinService() {
  // Draining happens in the pool destructor; pool_ being the last member
  // would already order this correctly, but reset explicitly so the drain
  // is visible at the point the service dies.
  pool_.reset();
}

core::JoinOptions JoinService::EffectiveOptions(
    const JoinRequest& request) const {
  core::JoinOptions effective = request.options;
  effective.queue_memory_bytes =
      std::min(effective.queue_memory_bytes, per_query_queue_memory_);
  // The session spill disk is per-execution; whatever the caller set is
  // replaced (a shared spill disk across concurrent queries would mix
  // their segments and outlive neither cleanly). Likewise the spill I/O
  // pool: the service's own (or none) — a caller-supplied pool could be
  // the query pool itself, which deadlocks (see Options).
  effective.queue_disk = nullptr;
  effective.spill_io_pool = nullptr;
  return effective;
}

std::future<JoinResponse> JoinService::Submit(JoinRequest request) {
  Timer queued;
  return pool_->Submit([this, request = std::move(request), queued] {
    const double wait_seconds = queued.ElapsedSeconds();
    {
      const MutexLock lock(&mutex_);
      ++inflight_;
      peak_inflight_ = std::max(peak_inflight_, inflight_);
    }
    JoinResponse response = Execute(request, wait_seconds);
    {
      const MutexLock lock(&mutex_);
      --inflight_;
      ++completed_;
    }
    return response;
  });
}

JoinResponse JoinService::Execute(const JoinRequest& request,
                                  double wait_seconds) {
  JoinResponse response;
  response.wait_seconds = wait_seconds;

  core::JoinOptions options = EffectiveOptions(request);
  // Session-scoped spill disk: this query's queue segments and sort runs
  // live (and die) with this execution — no sharing, no leak across
  // queries.
  storage::InMemoryDiskManager session_disk;
  if (options_.session_spill_disk) options.queue_disk = &session_disk;
  options.spill_io_pool = io_pool_.get();

  if (request.kind == JoinRequest::Kind::kKdj) {
    const bool shardable =
        options_.shards > 1 &&
        (request.kdj_algorithm == core::KdjAlgorithm::kBKdj ||
         request.kdj_algorithm == core::KdjAlgorithm::kAmKdj);
    if (shardable) {
      if (!shard_init_.ok()) {
        response.status = shard_init_;
        return response;
      }
      core::ShardedJoinOptions sharded;
      sharded.join = options;
      // Up to shard_threads per-pair queues live at once within this one
      // query; they share the query's admission budget.
      sharded.join.queue_memory_bytes =
          std::max(kMinQueueMemoryBytes,
                   options.queue_memory_bytes / options_.shard_threads);
      sharded.threads = options_.shard_threads;
      sharded.algorithm = request.kdj_algorithm;
      auto result = core::RunShardedKDistanceJoin(
          *r_partition_, *s_partition_, request.k, sharded, &response.stats);
      if (!result.ok()) {
        response.status = result.status();
        return response;
      }
      response.results = std::move(*result);
      return response;
    }
    auto result = core::RunKDistanceJoin(r_, s_, request.k,
                                         request.kdj_algorithm, options,
                                         &response.stats);
    if (!result.ok()) {
      response.status = result.status();
      return response;
    }
    response.results = std::move(*result);
    return response;
  }

  auto cursor = core::OpenIncrementalJoin(r_, s_, request.idj_algorithm,
                                          options, &response.stats);
  if (!cursor.ok()) {
    response.status = cursor.status();
    return response;
  }
  (*cursor)->PrefetchHint(request.k);
  response.results.reserve(request.k);
  for (uint64_t i = 0; i < request.k; ++i) {
    core::ResultPair pair;
    bool done = false;
    const Status status = (*cursor)->Next(&pair, &done);
    if (!status.ok()) {
      response.status = status;
      break;
    }
    if (done) break;
    response.results.push_back(pair);
  }
  // Destroy the cursor before returning: it quiesces the algorithm under
  // this query's attribution scope and finalizes any attached report, so
  // response.stats is complete once the future resolves.
  cursor->reset();
  return response;
}

uint64_t JoinService::completed() const {
  const MutexLock lock(&mutex_);
  return completed_;
}

uint32_t JoinService::peak_inflight() const {
  const MutexLock lock(&mutex_);
  return peak_inflight_;
}

}  // namespace amdj::service

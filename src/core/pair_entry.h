#ifndef AMDJ_CORE_PAIR_ENTRY_H_
#define AMDJ_CORE_PAIR_ENTRY_H_

#include <cstdint>
#include <string>

#include "geom/metric.h"
#include "geom/rect.h"

namespace amdj::core {

/// What one side of a queued pair refers to.
enum class RefKind : uint8_t {
  kNode = 0,    ///< An R-tree node; `id` is its page id.
  kObject = 1,  ///< A data object; `id` is the caller-assigned object id.
};

/// One side of a pair: an R-tree node or an object, with its MBR.
struct PairRef {
  geom::Rect rect;
  uint32_t id = 0;
  RefKind kind = RefKind::kNode;
  /// Node level (0 = leaf); 0 for objects.
  uint8_t level = 0;

  bool IsObject() const { return kind == RefKind::kObject; }
};

/// An element of the main queue: a pair of refs plus bookkeeping for the
/// adaptive multi-stage algorithms. Trivially copyable so the hybrid queue
/// can spill it to disk bytewise.
struct PairEntry {
  /// MinDistanceKey(r.rect, s.rect); the priority. A metric *key* — the
  /// squared distance under L2 (see geom::DistanceToKey) — not a distance;
  /// KeyToDistance converts at emission. Strongly typed: comparing it to a
  /// distance-space value is a compile error (geom/units.h).
  geom::KeyVal key = geom::KeyVal::Zero();
  PairRef r;
  PairRef s;

  /// Cutoff key (eDmax) in effect when this pair was partially expanded in
  /// an earlier aggressive stage; kNeverExpanded if it has not been
  /// expanded. Compensation sweeps use it to skip the already-examined
  /// sweep prefix. Same key space as `key`.
  geom::KeyVal prior_cutoff = kNeverExpanded;
  /// Sweep axis used by that earlier expansion (-1 = none).
  int8_t prior_axis = -1;
  /// Sweep direction used by that earlier expansion (0 fwd, 1 bwd).
  int8_t prior_dir = 0;

  /// Sentinel below every real key (keys are >= 0).
  static constexpr geom::KeyVal kNeverExpanded{-1.0};

  bool IsObjectPair() const { return r.IsObject() && s.IsObject(); }
  bool WasExpanded() const { return prior_cutoff >= geom::KeyVal::Zero(); }

  std::string ToString() const;
};

/// Main-queue order: ascending key (equivalently ascending distance — the
/// key is monotone in it); with objects_first (the default) ties pop object
/// pairs before node pairs (equal-distance results surface without extra
/// expansions), then ids for determinism. objects_first = false is
/// kind-blind, modelling a tie-naive implementation (see
/// JoinOptions::tie_break).
struct PairEntryCompare {
  bool objects_first = true;

  bool operator()(const PairEntry& a, const PairEntry& b) const {
    if (a.key != b.key) return a.key < b.key;
    if (objects_first) {
      const bool ao = a.IsObjectPair();
      const bool bo = b.IsObjectPair();
      if (ao != bo) return ao;
    }
    if (a.r.id != b.r.id) return a.r.id < b.r.id;
    return a.s.id < b.s.id;
  }
};

/// Builds a pair entry (computing its key under `metric`) from two refs.
PairEntry MakePair(const PairRef& r, const PairRef& s,
                   geom::Metric metric = geom::Metric::kL2);

/// True if the pair should be suppressed in self-join mode: both sides are
/// objects carrying the same id.
inline bool IsSelfPair(const PairRef& r, const PairRef& s) {
  return r.IsObject() && s.IsObject() && r.id == s.id;
}

/// One produced join result. `distance` is a raw double on purpose: this
/// struct is the user-facing/serialization boundary (external sorter spill
/// pages, CLI output, golden files) — by definition of the output format it
/// is distance space, so there is no ambiguity left for a strong type to
/// protect. geom::KeyToDistance(...).raw() converts at emission; this is a
/// documented raw-view boundary (see geom/units.h).
struct ResultPair {
  double distance = 0.0;
  uint32_t r_id = 0;
  uint32_t s_id = 0;

  bool operator==(const ResultPair& o) const {
    return distance == o.distance && r_id == o.r_id && s_id == o.s_id;
  }
};

}  // namespace amdj::core

#endif  // AMDJ_CORE_PAIR_ENTRY_H_

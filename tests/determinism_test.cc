// Bit-for-bit determinism: identical seeds and options must produce
// identical results and identical work counters across runs — the property
// every EXPERIMENTS.md number relies on, and a tripwire for hidden
// iteration-order or uninitialized-memory nondeterminism.

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/distance_join.h"
#include "core/semi_join.h"
#include "geom/kernels.h"
#include "test_util.h"
#include "workload/generators.h"

namespace amdj::core {
namespace {

struct RunOutput {
  std::vector<ResultPair> results;
  uint64_t distance_computations;
  uint64_t queue_insertions;
  uint64_t node_accesses;
};

RunOutput RunOnce(KdjAlgorithm algorithm, uint64_t seed,
                  ThreadPool* spill_io_pool = nullptr) {
  const geom::Rect uni(0, 0, 50000, 50000);
  workload::TigerSynthOptions wopts;
  wopts.street_segments = 4000;
  wopts.hydro_objects = 1200;
  wopts.seed = seed;
  test::JoinFixture f = test::MakeFixture(workload::TigerStreets(wopts),
                                          workload::TigerHydro(wopts), 32,
                                          128);
  JoinOptions options;
  options.queue_disk = f.queue_disk.get();
  options.queue_memory_bytes = 32 * 1024;
  options.spill_io_pool = spill_io_pool;
  JoinStats stats;
  auto result = RunKDistanceJoin(*f.r, *f.s, 2000, algorithm, options,
                                 &stats);
  EXPECT_TRUE(result.ok());
  return {std::move(*result), stats.real_distance_computations,
          stats.main_queue_insertions, stats.node_accesses};
}

class DeterminismTest : public ::testing::TestWithParam<KdjAlgorithm> {};

TEST_P(DeterminismTest, RepeatedRunsAreBitIdentical) {
  const RunOutput a = RunOnce(GetParam(), 424242);
  const RunOutput b = RunOnce(GetParam(), 424242);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    ASSERT_EQ(a.results[i], b.results[i]) << "rank " << i;
  }
  EXPECT_EQ(a.distance_computations, b.distance_computations);
  EXPECT_EQ(a.queue_insertions, b.queue_insertions);
  EXPECT_EQ(a.node_accesses, b.node_accesses);
}

TEST_P(DeterminismTest, DifferentSeedsDiffer) {
  const RunOutput a = RunOnce(GetParam(), 1);
  const RunOutput b = RunOnce(GetParam(), 2);
  // Same cardinality but (astronomically likely) different content.
  ASSERT_EQ(a.results.size(), b.results.size());
  bool any_diff = false;
  for (size_t i = 0; i < a.results.size() && !any_diff; ++i) {
    any_diff = !(a.results[i] == b.results[i]);
  }
  EXPECT_TRUE(any_diff);
}

// The squared-distance/key refactor and the SIMD kernels must not change a
// single emitted pair or its position: a run pinned to the scalar kernels
// must be bit-identical — results, order, and work counters — to a run on
// the dispatched (possibly SIMD) backend. This is the end-to-end form of
// the kernels' bit-exactness contract.
TEST_P(DeterminismTest, ScalarAndSimdBackendsEmitIdenticalPairOrder) {
  geom::ForceKernelBackend(geom::KernelBackend::kScalar);
  const RunOutput scalar = RunOnce(GetParam(), 424242);
  geom::ResetKernelBackend();
  const RunOutput dispatched = RunOnce(GetParam(), 424242);
  ASSERT_EQ(scalar.results.size(), dispatched.results.size());
  for (size_t i = 0; i < scalar.results.size(); ++i) {
    ASSERT_EQ(scalar.results[i], dispatched.results[i])
        << "rank " << i << " differs between scalar and "
        << ToString(geom::ActiveKernelBackend()) << " backends";
  }
  EXPECT_EQ(scalar.distance_computations, dispatched.distance_computations);
  EXPECT_EQ(scalar.queue_insertions, dispatched.queue_insertions);
  EXPECT_EQ(scalar.node_accesses, dispatched.node_accesses);
}

// Asynchronous spill I/O (double-buffered segment writes + next-segment
// prefetch) is a wall-clock optimization only: a run with a spill I/O pool
// attached must be bit-identical — results, order, and work counters — to
// the synchronous run. This is the end-to-end form of the queue's
// "workers never touch queue structure" confinement contract.
TEST_P(DeterminismTest, AsyncSpillIoMatchesSynchronousBitForBit) {
  const RunOutput sync_run = RunOnce(GetParam(), 424242);
  ThreadPool io_pool(2, "determinism-io");
  const RunOutput async_run = RunOnce(GetParam(), 424242, &io_pool);
  ASSERT_EQ(sync_run.results.size(), async_run.results.size());
  for (size_t i = 0; i < sync_run.results.size(); ++i) {
    ASSERT_EQ(sync_run.results[i], async_run.results[i])
        << "rank " << i << " differs between sync and async spill I/O";
  }
  EXPECT_EQ(sync_run.distance_computations, async_run.distance_computations);
  EXPECT_EQ(sync_run.queue_insertions, async_run.queue_insertions);
  EXPECT_EQ(sync_run.node_accesses, async_run.node_accesses);
}

INSTANTIATE_TEST_SUITE_P(AllKdj, DeterminismTest,
                         ::testing::Values(KdjAlgorithm::kHsKdj,
                                           KdjAlgorithm::kBKdj,
                                           KdjAlgorithm::kAmKdj,
                                           KdjAlgorithm::kSjSort),
                         [](const auto& info) {
                           std::string n = ToString(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

TEST(DeterminismTest, SemiJoinIsDeterministic) {
  const geom::Rect uni(0, 0, 10000, 10000);
  auto run = [&] {
    test::JoinFixture f = test::MakeFixture(
        workload::GaussianClusters(500, 5, 0.04, 9, uni),
        workload::UniformRects(400, 30.0, 10, uni), 16);
    return *DistanceSemiJoin(*f.r, *f.s, JoinOptions{},
                             SemiJoinStrategy::kIncrementalJoin, nullptr);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].r_id, b[i].r_id);
    EXPECT_EQ(a[i].s_id, b[i].s_id);
    EXPECT_EQ(a[i].distance, b[i].distance);
  }
}

}  // namespace
}  // namespace amdj::core

// Figure 11: improvement from the optimized plane sweep. Runs B-KDJ with
// the sweeping-axis/direction optimization on vs. pinned to x-axis/forward
// and reports axis + real distance computations (the paper's metric) plus
// the percentage saved.

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace amdj::bench {
namespace {

void Run(int argc, char** argv) {
  BenchEnv env = MakeTigerEnv(BenchConfig::FromArgs(argc, argv));
  PrintHeader("Figure 11: improvements by the optimized plane sweep", env);

  const std::vector<uint64_t> ks = {10, 100, 1000, 10000, 100000};
  const std::vector<int> widths = {10, 16, 16, 16, 12};
  PrintRow({"k", "optimized", "fixed x/fwd", "saved", "saved%"}, widths);
  for (uint64_t k : ks) {
    core::JoinOptions opt = env.MakeJoinOptions();
    opt.sweep = core::SweepStrategy::kOptimized;
    const RunResult optimized =
        RunKdjCold(env, core::KdjAlgorithm::kBKdj, k, opt);
    opt.sweep = core::SweepStrategy::kFixedXForward;
    const RunResult fixed = RunKdjCold(env, core::KdjAlgorithm::kBKdj, k, opt);
    const uint64_t a = optimized.stats.total_distance_computations();
    const uint64_t b = fixed.stats.total_distance_computations();
    char pct[32];
    std::snprintf(pct, sizeof(pct), "%.1f%%",
                  b == 0 ? 0.0 : 100.0 * (double(b) - double(a)) / double(b));
    PrintRow({"k=" + FormatCount(k), FormatCount(a), FormatCount(b),
              FormatCount(b > a ? b - a : 0), pct},
             widths);
  }
}

}  // namespace
}  // namespace amdj::bench

int main(int argc, char** argv) {
  amdj::bench::Run(argc, argv);
  return 0;
}

#include "workload/generators.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "workload/dataset.h"

namespace amdj::workload {
namespace {

const geom::Rect kUniverse(0, 0, kUniverseSize, kUniverseSize);

void ExpectAllInUniverse(const Dataset& ds, const geom::Rect& universe) {
  for (const geom::Rect& r : ds.objects) {
    EXPECT_TRUE(r.IsValid());
    EXPECT_TRUE(universe.Contains(r)) << r.ToString();
  }
}

TEST(GeneratorsTest, UniformPointsBasics) {
  const auto ds = UniformPoints(1000, 1);
  EXPECT_EQ(ds.objects.size(), 1000u);
  ExpectAllInUniverse(ds, kUniverse);
  for (const auto& r : ds.objects) EXPECT_EQ(r.Area(), 0.0);
  // Roughly centered.
  double cx = 0;
  for (const auto& r : ds.objects) cx += r.Center().x;
  EXPECT_NEAR(cx / 1000.0, kUniverseSize / 2, kUniverseSize * 0.05);
}

TEST(GeneratorsTest, Determinism) {
  const auto a = UniformPoints(100, 42);
  const auto b = UniformPoints(100, 42);
  const auto c = UniformPoints(100, 43);
  EXPECT_EQ(a.objects.size(), b.objects.size());
  for (size_t i = 0; i < a.objects.size(); ++i) {
    EXPECT_EQ(a.objects[i], b.objects[i]);
  }
  EXPECT_NE(a.objects[0], c.objects[0]);
}

TEST(GeneratorsTest, UniformRectsHaveRequestedScale) {
  const auto ds = UniformRects(2000, 100.0, 2);
  EXPECT_EQ(ds.objects.size(), 2000u);
  ExpectAllInUniverse(ds, kUniverse);
  double mean_w = 0;
  for (const auto& r : ds.objects) mean_w += r.Side(0);
  mean_w /= ds.objects.size();
  EXPECT_NEAR(mean_w, 100.0, 20.0);  // exponential mean (clamped)
}

TEST(GeneratorsTest, GaussianClustersAreClustered) {
  const auto clustered = GaussianClusters(3000, 4, 0.01, 3);
  const auto uniform = UniformPoints(3000, 3);
  ExpectAllInUniverse(clustered, kUniverse);
  // Clustered data has much smaller mean nearest-ish distance: compare
  // mean distance to a random other point within each set.
  auto spread = [](const Dataset& ds) {
    double total = 0;
    for (size_t i = 0; i + 1 < ds.objects.size(); i += 2) {
      total += geom::MinDistance(ds.objects[i], ds.objects[i + 1]);
    }
    return total;
  };
  EXPECT_LT(spread(clustered), spread(uniform) * 0.8);
}

TEST(GeneratorsTest, ZipfSkewConcentratesMass) {
  const auto ds = ZipfSkewedPoints(5000, 0.9, 4);
  ExpectAllInUniverse(ds, kUniverse);
  // A heavily skewed distribution puts far more than a quarter of the
  // points into the lowest-coordinate quadrant.
  int low_quadrant = 0;
  for (const auto& r : ds.objects) {
    if (r.lo.x < kUniverseSize / 4 && r.lo.y < kUniverseSize / 4) {
      ++low_quadrant;
    }
  }
  EXPECT_GT(low_quadrant, 5000 / 4);
}

TEST(GeneratorsTest, TigerStreetsShape) {
  TigerSynthOptions opts;
  opts.street_segments = 20000;
  opts.hydro_objects = 6000;
  const auto streets = TigerStreets(opts);
  EXPECT_EQ(streets.objects.size(), 20000u);
  ExpectAllInUniverse(streets, kUniverse);
  // Street segments are small relative to the universe (road segments,
  // not highways across the whole state in one MBR).
  double mean_diag = 0;
  for (const auto& r : streets.objects) {
    mean_diag += std::hypot(r.Side(0), r.Side(1));
  }
  mean_diag /= streets.objects.size();
  EXPECT_LT(mean_diag, 0.01 * kUniverseSize);
  EXPECT_GT(mean_diag, 0.0001 * kUniverseSize);
}

TEST(GeneratorsTest, TigerHydroShape) {
  TigerSynthOptions opts;
  opts.street_segments = 20000;
  opts.hydro_objects = 6000;
  const auto hydro = TigerHydro(opts);
  EXPECT_EQ(hydro.objects.size(), 6000u);
  ExpectAllInUniverse(hydro, kUniverse);
}

TEST(GeneratorsTest, TigerDatasetsOverlapLikeRealGeography) {
  // Streets and hydrography share the same towns, so their MBRs must
  // overlap substantially — the distance join depends on this.
  TigerSynthOptions opts;
  opts.street_segments = 10000;
  opts.hydro_objects = 3000;
  const auto streets = TigerStreets(opts);
  const auto hydro = TigerHydro(opts);
  const double inter =
      geom::IntersectionArea(streets.Bounds(), hydro.Bounds());
  EXPECT_GT(inter, 0.5 * hydro.Bounds().Area());
  // And hydro objects actually come near streets: sample minimum distances.
  double near_count = 0;
  for (size_t i = 0; i < 200; ++i) {
    const auto& h = hydro.objects[i * (hydro.objects.size() / 200)];
    double best = 1e18;
    for (size_t j = 0; j < streets.objects.size(); j += 7) {
      best = std::min(best, geom::MinDistance(h, streets.objects[j]));
    }
    if (best < 0.02 * kUniverseSize) ++near_count;
  }
  EXPECT_GT(near_count, 120);
}

TEST(GeneratorsTest, TigerIsClusteredNotUniform) {
  // The synthetic census data must be skewed (the paper's estimator
  // discussion hinges on it): compare local density variance against a
  // uniform layout on a coarse grid.
  TigerSynthOptions opts;
  opts.street_segments = 20000;
  const auto streets = TigerStreets(opts);
  const auto uniform = UniformPoints(20000, opts.seed);
  auto grid_variance = [](const Dataset& ds) {
    constexpr int kG = 16;
    std::vector<double> counts(kG * kG, 0.0);
    for (const auto& r : ds.objects) {
      const auto c = r.Center();
      int gx = std::min(kG - 1, static_cast<int>(c.x / kUniverseSize * kG));
      int gy = std::min(kG - 1, static_cast<int>(c.y / kUniverseSize * kG));
      counts[gy * kG + gx] += 1.0;
    }
    const double mean = ds.objects.size() / double(kG * kG);
    double var = 0;
    for (double c : counts) var += (c - mean) * (c - mean);
    return var / (kG * kG);
  };
  EXPECT_GT(grid_variance(streets), 10.0 * grid_variance(uniform));
}

TEST(DatasetTest, SaveLoadRoundTrip) {
  auto ds = UniformRects(500, 20.0, 5);
  ds.name = "roundtrip";
  const std::string path = ::testing::TempDir() + "/amdj_ds_test.bin";
  ASSERT_TRUE(ds.SaveTo(path).ok());
  auto loaded = Dataset::LoadFrom(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->name, "roundtrip");
  ASSERT_EQ(loaded->objects.size(), ds.objects.size());
  for (size_t i = 0; i < ds.objects.size(); ++i) {
    EXPECT_EQ(loaded->objects[i], ds.objects[i]);
  }
  std::remove(path.c_str());
}

TEST(DatasetTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/amdj_garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a dataset", f);
  std::fclose(f);
  EXPECT_FALSE(Dataset::LoadFrom(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(Dataset::LoadFrom("/nonexistent/nope.bin").ok());
}

TEST(DatasetTest, ToEntriesAssignsDenseIds) {
  const auto ds = UniformPoints(10, 6);
  const auto entries = ds.ToEntries();
  ASSERT_EQ(entries.size(), 10u);
  for (uint32_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].id, i);
    EXPECT_EQ(entries[i].rect, ds.objects[i]);
  }
}

TEST(DatasetTest, FromCsvParsesPointsAndRects) {
  const std::string path = ::testing::TempDir() + "/amdj_csv_test.csv";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("# hotels\n", f);
  std::fputs("1.5, 2.5\n", f);
  std::fputs("\n", f);
  std::fputs("10,20,30,40\n", f);
  std::fputs("  7 , 8 \n", f);
  std::fputs("5,5,1,1\n", f);  // reversed corners are normalized
  std::fclose(f);
  auto ds = Dataset::FromCsv(path);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  ASSERT_EQ(ds->objects.size(), 4u);
  EXPECT_EQ(ds->objects[0], geom::Rect(1.5, 2.5, 1.5, 2.5));
  EXPECT_EQ(ds->objects[1], geom::Rect(10, 20, 30, 40));
  EXPECT_EQ(ds->objects[2], geom::Rect(7, 8, 7, 8));
  EXPECT_EQ(ds->objects[3], geom::Rect(1, 1, 5, 5));
  std::remove(path.c_str());
}

TEST(DatasetTest, FromCsvRejectsMalformedRowWithLineNumber) {
  const std::string path = ::testing::TempDir() + "/amdj_csv_bad.csv";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("1,2\n", f);
  std::fputs("not,numbers,here\n", f);
  std::fclose(f);
  auto ds = Dataset::FromCsv(path);
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(ds.status().message().find("line 2"), std::string::npos);
  std::remove(path.c_str());
  EXPECT_FALSE(Dataset::FromCsv("/nonexistent/x.csv").ok());
}

TEST(DatasetTest, BoundsCoverEverything) {
  const auto ds = UniformRects(100, 30.0, 7);
  const geom::Rect bounds = ds.Bounds();
  for (const auto& r : ds.objects) EXPECT_TRUE(bounds.Contains(r));
  EXPECT_TRUE(Dataset{}.Bounds().IsEmpty());
}

}  // namespace
}  // namespace amdj::workload

// Persistence round trips: a tree built in one "session" (disk manager +
// buffer pool instance) reopens intact in another, including across real
// files on disk.

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

namespace amdj::rtree {
namespace {

using geom::Rect;

TEST(PersistenceTest, MetaRoundTripSameDisk) {
  storage::InMemoryDiskManager disk;
  RTree::Meta meta;
  std::vector<Entry> entries;
  {
    storage::BufferPool pool(&disk, 64);
    RTree::Options opts;
    opts.max_entries = 8;
    auto tree = RTree::Create(&pool, opts).value();
    const auto data =
        workload::UniformRects(500, 10.0, 51, Rect(0, 0, 1000, 1000));
    entries = data.ToEntries();
    ASSERT_TRUE(tree->BulkLoad(entries).ok());
    meta = tree->ToMeta();
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  // New pool over the same pages.
  storage::BufferPool pool(&disk, 64);
  auto reopened = RTree::Open(&pool, meta, RTree::Options{});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 500u);
  EXPECT_TRUE((*reopened)->Validate().ok())
      << (*reopened)->Validate().ToString();
  auto hits = (*reopened)->RangeQuery(Rect(0, 0, 1000, 1000));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 500u);
}

TEST(PersistenceTest, MetaPageRoundTripAcrossFileSessions) {
  const std::string path = ::testing::TempDir() + "/amdj_persist.db";
  std::remove(path.c_str());
  const auto data =
      workload::GaussianClusters(800, 4, 0.05, 52, Rect(0, 0, 5000, 5000));

  storage::PageId meta_page = storage::kInvalidPageId;
  {
    storage::FileDiskManager disk(path, /*persistent=*/true);
    ASSERT_TRUE(disk.Ok());
    storage::BufferPool pool(&disk, 64);
    // Reserve page 0 as the meta page by allocating it first.
    auto guard = pool.NewPage(&meta_page);
    ASSERT_TRUE(guard.ok());
    guard->Release();
    ASSERT_EQ(meta_page, 0u);
    RTree::Options opts;
    opts.max_entries = 16;
    auto tree = RTree::Create(&pool, opts).value();
    ASSERT_TRUE(tree->BulkLoad(data.ToEntries()).ok());
    ASSERT_TRUE(tree->WriteMetaPage(meta_page).ok());
    ASSERT_TRUE(pool.FlushAll().ok());
  }

  // Completely fresh process-like session.
  {
    storage::FileDiskManager disk(path, /*persistent=*/true);
    ASSERT_TRUE(disk.Ok());
    EXPECT_GT(disk.PageCount(), 1u);
    storage::BufferPool pool(&disk, 64);
    auto tree = RTree::OpenFromMetaPage(&pool, 0);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    EXPECT_EQ((*tree)->size(), 800u);
    EXPECT_EQ((*tree)->options().max_entries, 16u);
    EXPECT_TRUE((*tree)->Validate().ok())
        << (*tree)->Validate().ToString();
    // The reopened tree is usable for joins and updates.
    ASSERT_TRUE((*tree)->Insert(Rect(1, 1, 2, 2), 9999).ok());
    EXPECT_EQ((*tree)->size(), 801u);
  }
  std::remove(path.c_str());
}

TEST(PersistenceTest, JoinOverReopenedTreesMatchesOriginal) {
  storage::InMemoryDiskManager disk;
  RTree::Meta r_meta, s_meta;
  std::vector<core::ResultPair> original;
  const auto r_data =
      workload::GaussianClusters(300, 5, 0.04, 53, Rect(0, 0, 2000, 2000));
  const auto s_data =
      workload::UniformRects(250, 30.0, 54, Rect(0, 0, 2000, 2000));
  {
    storage::BufferPool pool(&disk, 64);
    RTree::Options opts;
    opts.max_entries = 8;
    auto r = RTree::Create(&pool, opts).value();
    auto s = RTree::Create(&pool, opts).value();
    ASSERT_TRUE(r->BulkLoad(r_data.ToEntries()).ok());
    ASSERT_TRUE(s->BulkLoad(s_data.ToEntries()).ok());
    auto result = core::RunKDistanceJoin(*r, *s, 200,
                                         core::KdjAlgorithm::kAmKdj,
                                         core::JoinOptions{}, nullptr);
    ASSERT_TRUE(result.ok());
    original = std::move(*result);
    r_meta = r->ToMeta();
    s_meta = s->ToMeta();
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  storage::BufferPool pool(&disk, 64);
  auto r = RTree::Open(&pool, r_meta, RTree::Options{});
  auto s = RTree::Open(&pool, s_meta, RTree::Options{});
  ASSERT_TRUE(r.ok() && s.ok());
  auto result = core::RunKDistanceJoin(**r, **s, 200,
                                       core::KdjAlgorithm::kAmKdj,
                                       core::JoinOptions{}, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*result)[i], original[i]) << "rank " << i;
  }
}

TEST(PersistenceTest, OpenRejectsCorruptMeta) {
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 16);
  storage::PageId page = storage::kInvalidPageId;
  pool.NewPage(&page)->Release();  // zeroed page: no magic
  auto tree = RTree::OpenFromMetaPage(&pool, page);
  EXPECT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kCorruption);
}

TEST(PersistenceTest, OpenRejectsInconsistentHeight) {
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 16);
  RTree::Options opts;
  opts.max_entries = 8;
  auto tree = RTree::Create(&pool, opts).value();
  ASSERT_TRUE(tree->Insert(Rect(0, 0, 1, 1), 1).ok());
  RTree::Meta meta = tree->ToMeta();
  meta.height = 5;  // lie about the height
  auto reopened = RTree::Open(&pool, meta, RTree::Options{});
  EXPECT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace amdj::rtree

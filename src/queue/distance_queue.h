#ifndef AMDJ_QUEUE_DISTANCE_QUEUE_H_
#define AMDJ_QUEUE_DISTANCE_QUEUE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/stats.h"

namespace amdj::queue {

/// The paper's *distance queue* (Section 2.1): a max-heap holding the k
/// smallest object-pair distances seen so far. Its maximum is the pruning
/// cutoff qDmax; until k distances have been collected the cutoff is
/// +infinity.
///
/// Following the paper's footnote 1, only *object* pair distances are
/// inserted (node pairs would have to contribute their max-distance, which
/// rarely lowers the cutoff). An ablation bench flips this policy.
class DistanceQueue {
 public:
  /// `k` must be >= 1. `stats` (optional) receives insertion counts.
  explicit DistanceQueue(size_t k, JoinStats* stats = nullptr);

  /// Offers a distance; keeps only the k smallest.
  void Insert(double distance);

  /// Current pruning cutoff qDmax: the k-th smallest distance seen, or
  /// +infinity while fewer than k distances have been inserted.
  double CutoffDistance() const {
    return heap_.size() < k_ ? std::numeric_limits<double>::infinity()
                             : heap_.front();
  }

  size_t size() const { return heap_.size(); }
  size_t capacity() const { return k_; }

 private:
  size_t k_;
  JoinStats* stats_;
  std::vector<double> heap_;  // max-heap via std::push_heap default order
};

}  // namespace amdj::queue

#endif  // AMDJ_QUEUE_DISTANCE_QUEUE_H_

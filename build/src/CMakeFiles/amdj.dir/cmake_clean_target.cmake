file(REMOVE_RECURSE
  "libamdj.a"
)

#include "common/stats.h"

#include <sstream>

namespace amdj {

void JoinStats::Add(const JoinStats& other) {
  real_distance_computations += other.real_distance_computations;
  axis_distance_computations += other.axis_distance_computations;
  main_queue_insertions += other.main_queue_insertions;
  distance_queue_insertions += other.distance_queue_insertions;
  compensation_queue_insertions += other.compensation_queue_insertions;
  main_queue_peak_size =
      main_queue_peak_size > other.main_queue_peak_size
          ? main_queue_peak_size
          : other.main_queue_peak_size;
  queue_splits += other.queue_splits;
  queue_swapins += other.queue_swapins;
  node_buffer_hits += other.node_buffer_hits;
  node_disk_reads += other.node_disk_reads;
  node_accesses += other.node_accesses;
  queue_page_reads += other.queue_page_reads;
  queue_page_writes += other.queue_page_writes;
  pairs_produced += other.pairs_produced;
  node_expansions += other.node_expansions;
  parallel_rounds += other.parallel_rounds;
  parallel_tasks += other.parallel_tasks;
  parallel_tie_aborts += other.parallel_tie_aborts;
  cpu_seconds += other.cpu_seconds;
  simulated_io_seconds += other.simulated_io_seconds;
}

void JoinStats::Reset() { *this = JoinStats(); }

std::string JoinStats::ToString() const {
  std::ostringstream os;
  os << "JoinStats{\n"
     << "  real_distance_computations: " << real_distance_computations << "\n"
     << "  axis_distance_computations: " << axis_distance_computations << "\n"
     << "  main_queue_insertions:      " << main_queue_insertions << "\n"
     << "  distance_queue_insertions:  " << distance_queue_insertions << "\n"
     << "  compensation_queue_ins.:    " << compensation_queue_insertions
     << "\n"
     << "  main_queue_peak_size:       " << main_queue_peak_size << "\n"
     << "  queue_splits/swapins:       " << queue_splits << "/" << queue_swapins
     << "\n"
     << "  node_accesses (logical):    " << node_accesses << "\n"
     << "  node_disk_reads (buffered): " << node_disk_reads << "\n"
     << "  node_buffer_hits:           " << node_buffer_hits << "\n"
     << "  queue_page_reads/writes:    " << queue_page_reads << "/"
     << queue_page_writes << "\n"
     << "  pairs_produced:             " << pairs_produced << "\n"
     << "  node_expansions:            " << node_expansions << "\n"
     << "  cpu_seconds:                " << cpu_seconds << "\n"
     << "  simulated_io_seconds:       " << simulated_io_seconds << "\n"
     << "}";
  return os.str();
}

}  // namespace amdj

# Empty compiler generated dependencies file for fig15_stepwise.
# This may be replaced when dependencies are built.

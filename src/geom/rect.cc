#include "geom/rect.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace amdj::geom {

Rect Rect::Empty() {
  const double inf = std::numeric_limits<double>::infinity();
  return Rect(Point(inf, inf), Point(-inf, -inf));
}

void Rect::Extend(const Rect& r) {
  lo.x = std::min(lo.x, r.lo.x);
  lo.y = std::min(lo.y, r.lo.y);
  hi.x = std::max(hi.x, r.hi.x);
  hi.y = std::max(hi.y, r.hi.y);
}

void Rect::Extend(const Point& p) {
  lo.x = std::min(lo.x, p.x);
  lo.y = std::min(lo.y, p.y);
  hi.x = std::max(hi.x, p.x);
  hi.y = std::max(hi.y, p.y);
}

std::string Rect::ToString() const {
  std::ostringstream os;
  os << "[(" << lo.x << "," << lo.y << "),(" << hi.x << "," << hi.y << ")]";
  return os.str();
}

Rect Union(const Rect& a, const Rect& b) {
  Rect r = a;
  r.Extend(b);
  return r;
}

Rect Intersection(const Rect& a, const Rect& b) {
  Rect r(std::max(a.lo.x, b.lo.x), std::max(a.lo.y, b.lo.y),
         std::min(a.hi.x, b.hi.x), std::min(a.hi.y, b.hi.y));
  if (r.lo.x > r.hi.x || r.lo.y > r.hi.y) return Rect::Empty();
  return r;
}

double IntersectionArea(const Rect& a, const Rect& b) {
  const double w =
      std::min(a.hi.x, b.hi.x) - std::max(a.lo.x, b.lo.x);
  if (w <= 0) return 0.0;
  const double h =
      std::min(a.hi.y, b.hi.y) - std::max(a.lo.y, b.lo.y);
  if (h <= 0) return 0.0;
  return w * h;
}

double AxisDistance(const Rect& a, const Rect& b, int axis) {
  const double alo = a.lo.Coord(axis);
  const double ahi = a.hi.Coord(axis);
  const double blo = b.lo.Coord(axis);
  const double bhi = b.hi.Coord(axis);
  if (blo > ahi) return blo - ahi;
  if (alo > bhi) return alo - bhi;
  return 0.0;
}

double MinDistanceSquared(const Rect& a, const Rect& b) {
  const double dx = AxisDistance(a, b, 0);
  const double dy = AxisDistance(a, b, 1);
  return dx * dx + dy * dy;
}

double MinDistance(const Rect& a, const Rect& b) {
  return std::sqrt(MinDistanceSquared(a, b));
}

double MaxDistance(const Rect& a, const Rect& b) {
  const double dx =
      std::max(std::abs(a.hi.x - b.lo.x), std::abs(b.hi.x - a.lo.x));
  const double dy =
      std::max(std::abs(a.hi.y - b.lo.y), std::abs(b.hi.y - a.lo.y));
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace amdj::geom

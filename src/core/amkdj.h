#ifndef AMDJ_CORE_AMKDJ_H_
#define AMDJ_CORE_AMKDJ_H_

#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "core/hs_join.h"
#include "core/options.h"
#include "core/pair_entry.h"
#include "rtree/rtree.h"

namespace amdj::core {

/// AM-KDJ (Section 4.1, Algorithms 2 + 3): adaptive multi-stage k-distance
/// join. Stage one prunes *aggressively*: axis distances beyond the
/// estimated cutoff eDmax (Eq. 3, or JoinOptions::forced_edmax) are skipped
/// entirely, while real distances are still filtered by the exact qDmax.
/// Every node pair whose sweep was cut short is remembered in a
/// compensation queue together with the eDmax used, so that if stage one
/// ends before k results (eDmax was an underestimate) a compensation stage
/// re-expands exactly the skipped sweep suffixes under qDmax — guaranteeing
/// the same results as B-KDJ for *any* eDmax.
///
/// With JoinOptions::parallelism > 1 both stages run batched rounds on a
/// thread pool (shared atomic cutoff, coordinator-side merge); each stage-
/// one task records the eDmax it swept under, so compensation bookkeeping
/// stays exact and results equal the sequential run's, values and order.
/// The kdj_adaptive_correction variant is always sequential.
class AmKdj {
 public:
  /// Returns the k nearest object pairs in non-decreasing distance order
  /// (fewer if the Cartesian product is smaller). `stats` may be null.
  static StatusOr<std::vector<ResultPair>> Run(const rtree::RTree& r,
                                               const rtree::RTree& s,
                                               uint64_t k,
                                               const JoinOptions& options,
                                               JoinStats* stats);
};

}  // namespace amdj::core

#endif  // AMDJ_CORE_AMKDJ_H_

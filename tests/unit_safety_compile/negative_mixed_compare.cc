// Negative-compile probe #1: comparing a key-space value against a
// distance-space value. This is the original bug class — both used to be
// raw double, so `pair_key <= user_dmax` compiled and silently dropped or
// duplicated results (key space is squared under L2). With the strong
// types there is no operator<(KeyVal, DistVal); this translation unit
// MUST fail to compile.

#include "geom/units.h"

int main() {
  const amdj::geom::KeyVal key(4.0);
  const amdj::geom::DistVal dmax(2.0);
  // BUG (deliberate): cross-unit comparison.
  return key <= dmax ? 0 : 1;
}

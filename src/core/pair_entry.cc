#include "core/pair_entry.h"

#include <sstream>

namespace amdj::core {

PairEntry MakePair(const PairRef& r, const PairRef& s,
                   geom::Metric metric) {
  PairEntry e;
  e.r = r;
  e.s = s;
  e.key = geom::MinDistanceKey(r.rect, s.rect, metric);
  return e;
}

std::string PairEntry::ToString() const {
  std::ostringstream os;
  os << "<" << (r.IsObject() ? "obj " : "node ") << r.id << " @L"
     << static_cast<int>(r.level) << ", " << (s.IsObject() ? "obj " : "node ")
     << s.id << " @L" << static_cast<int>(s.level) << "> key=" << key.raw();
  if (WasExpanded()) os << " prior_cutoff=" << prior_cutoff.raw();
  return os.str();
}

}  // namespace amdj::core

#include "core/plane_sweeper.h"

namespace amdj::core {

void SweepSide::Build(const std::vector<PairRef>& items, int axis,
                      bool forward) {
  const std::size_t n = items.size();
  size = n;
  sort_scratch_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Rect& rc = items[i].rect;
    // Backward sweeps are forward sweeps in negated coordinates.
    const double key =
        forward ? rc.lo.Coord(axis) : -rc.hi.Coord(axis);
    sort_scratch_[i] = {key, items[i].id, static_cast<uint32_t>(i)};
  }
  std::sort(sort_scratch_.begin(), sort_scratch_.end(),
            [](const SortRec& a, const SortRec& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.id < b.id;
            });
  key_lo.resize(n);
  key_hi.resize(n);
  lo0.resize(n);
  hi0.resize(n);
  lo1.resize(n);
  hi1.resize(n);
  refs.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const PairRef& r = items[sort_scratch_[k].idx];
    key_lo[k] = sort_scratch_[k].key;
    key_hi[k] = forward ? r.rect.hi.Coord(axis) : -r.rect.lo.Coord(axis);
    lo0[k] = r.rect.lo.x;
    hi0[k] = r.rect.hi.x;
    lo1[k] = r.rect.lo.y;
    hi1[k] = r.rect.hi.y;
    refs[k] = &r;
  }
}

SweepArena* ThreadSweepArena() {
  thread_local SweepArena arena;
  return &arena;
}

}  // namespace amdj::core

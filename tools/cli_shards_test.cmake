# Regression test for --shards / --shard-threads parsing and routing:
# zero, negative, and non-numeric values must exit with a usage error
# (code 2) before any work happens; --shards only composes with the
# algorithms that implement the shared-cutoff protocol; and a sharded
# join must print byte-identical results to the unsharded run.

function(expect_rejected pattern)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err
                  WORKING_DIRECTORY ${WORK_DIR})
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR
        "expected usage-error exit 2, got ${rc}: ${ARGN}\n${out}${err}")
  endif()
  if(NOT err MATCHES "${pattern}")
    message(FATAL_ERROR
        "expected '${pattern}' in stderr of: ${ARGN}\n${out}${err}")
  endif()
endfunction()

function(expect_ok)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err
                  WORKING_DIRECTORY ${WORK_DIR})
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}${err}")
  endif()
endfunction()

expect_ok(${CLI} generate --kind=uniform --n=600 --seed=11 --out=shards_r.ds)
expect_ok(${CLI} generate --kind=clusters --n=400 --seed=12 --out=shards_s.ds)

set(JOIN ${CLI} join --r=shards_r.ds --s=shards_s.ds --algo=am --k=80)

expect_rejected("must be a positive integer" ${JOIN} --shards=0)
expect_rejected("must be a positive integer" ${JOIN} --shards=-3)
expect_rejected("must be a positive integer" ${JOIN} --shards=four)
expect_rejected("must be a positive integer" ${JOIN} --shards=)
expect_rejected("must be a positive integer" ${JOIN} --shards=2
                --shard-threads=0)
# The rejection must fire before datasets are touched.
expect_rejected("must be a positive integer"
                ${CLI} join --r=absent.ds --s=absent.ds --shards=0)
# Only B-KDJ / AM-KDJ implement the shared-cutoff protocol.
expect_rejected("--shards requires"
                ${CLI} join --r=shards_r.ds --s=shards_s.ds --algo=hs
                --k=80 --shards=2)

# A sharded join must print the same results as the unsharded one.
execute_process(COMMAND ${JOIN}
                RESULT_VARIABLE rc OUTPUT_VARIABLE base ERROR_QUIET
                WORKING_DIRECTORY ${WORK_DIR})
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "unsharded join failed (${rc})")
endif()
execute_process(COMMAND ${JOIN} --shards=4 --shard-threads=2
                RESULT_VARIABLE rc OUTPUT_VARIABLE sharded ERROR_QUIET
                WORKING_DIRECTORY ${WORK_DIR})
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sharded join failed (${rc})")
endif()
if(NOT base STREQUAL sharded)
  message(FATAL_ERROR
      "sharded join output differs from unsharded:\n--- unsharded\n"
      "${base}\n--- sharded\n${sharded}")
endif()

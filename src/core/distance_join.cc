#include "core/distance_join.h"

#include "common/timer.h"
#include "core/amidj.h"
#include "core/amkdj.h"
#include "core/bkdj.h"
#include "core/hs_join.h"
#include "core/sj_sort.h"

namespace amdj::core {

namespace {

/// Attaches a JoinStats sink to both trees' buffer pools for a scope.
class StatsSinkGuard {
 public:
  StatsSinkGuard(const rtree::RTree& r, const rtree::RTree& s,
                 JoinStats* stats)
      : r_pool_(r.buffer_pool()), s_pool_(s.buffer_pool()) {
    r_pool_->SetStatsSink(stats);
    s_pool_->SetStatsSink(stats);
  }
  ~StatsSinkGuard() {
    r_pool_->SetStatsSink(nullptr);
    s_pool_->SetStatsSink(nullptr);
  }

  StatsSinkGuard(const StatsSinkGuard&) = delete;
  StatsSinkGuard& operator=(const StatsSinkGuard&) = delete;

 private:
  storage::BufferPool* r_pool_;
  storage::BufferPool* s_pool_;
};

/// Wraps an IDJ cursor: keeps the stats sink attached and measures CPU
/// time around every Next().
class TimedCursor : public DistanceJoinCursor {
 public:
  TimedCursor(const rtree::RTree& r, const rtree::RTree& s, JoinStats* stats,
              std::unique_ptr<DistanceJoinCursor> inner)
      : guard_(r, s, stats), stats_(stats), inner_(std::move(inner)) {}

  Status Next(ResultPair* out, bool* done) override {
    Timer timer;
    const Status status = inner_->Next(out, done);
    if (stats_ != nullptr) stats_->cpu_seconds += timer.ElapsedSeconds();
    return status;
  }

  uint64_t produced() const override { return inner_->produced(); }
  void PrefetchHint(uint64_t k) override { inner_->PrefetchHint(k); }

  /// The wrapped cursor (for algorithm-specific knobs like
  /// AmIdjCursor::ForceNextStageEdmax).
  DistanceJoinCursor* inner() { return inner_.get(); }

 private:
  StatsSinkGuard guard_;
  JoinStats* stats_;
  std::unique_ptr<DistanceJoinCursor> inner_;
};

}  // namespace

const char* ToString(KdjAlgorithm a) {
  switch (a) {
    case KdjAlgorithm::kHsKdj:
      return "HS-KDJ";
    case KdjAlgorithm::kBKdj:
      return "B-KDJ";
    case KdjAlgorithm::kAmKdj:
      return "AM-KDJ";
    case KdjAlgorithm::kSjSort:
      return "SJ-SORT";
  }
  return "?";
}

const char* ToString(IdjAlgorithm a) {
  switch (a) {
    case IdjAlgorithm::kHsIdj:
      return "HS-IDJ";
    case IdjAlgorithm::kAmIdj:
      return "AM-IDJ";
  }
  return "?";
}

StatusOr<double> ComputeTrueDmax(const rtree::RTree& r, const rtree::RTree& s,
                                 uint64_t k, const JoinOptions& options) {
  JoinOptions oracle_options = options;
  oracle_options.forced_edmax.reset();
  auto pairs = AmKdj::Run(r, s, k, oracle_options, nullptr);
  if (!pairs.ok()) return pairs.status();
  if (pairs->empty()) return 0.0;
  return pairs->back().distance;
}

StatusOr<std::vector<ResultPair>> RunKDistanceJoin(const rtree::RTree& r,
                                                   const rtree::RTree& s,
                                                   uint64_t k,
                                                   KdjAlgorithm algorithm,
                                                   const JoinOptions& options,
                                                   JoinStats* stats) {
  double dmax = 0.0;
  if (algorithm == KdjAlgorithm::kSjSort) {
    // Oracle pre-pass, not charged to `stats` (favorable assumption).
    auto oracle = ComputeTrueDmax(r, s, k, options);
    if (!oracle.ok()) return oracle.status();
    dmax = *oracle;
  }

  StatsSinkGuard guard(r, s, stats);
  Timer timer;
  StatusOr<std::vector<ResultPair>> result =
      std::vector<ResultPair>();  // overwritten below
  switch (algorithm) {
    case KdjAlgorithm::kHsKdj:
      result = HsKdj::Run(r, s, k, options, stats);
      break;
    case KdjAlgorithm::kBKdj:
      result = BKdj::Run(r, s, k, options, stats);
      break;
    case KdjAlgorithm::kAmKdj:
      result = AmKdj::Run(r, s, k, options, stats);
      break;
    case KdjAlgorithm::kSjSort:
      result = SjSort::Run(r, s, k, dmax, options, stats);
      break;
  }
  if (stats != nullptr) stats->cpu_seconds += timer.ElapsedSeconds();
  return result;
}

StatusOr<std::unique_ptr<DistanceJoinCursor>> OpenIncrementalJoin(
    const rtree::RTree& r, const rtree::RTree& s, IdjAlgorithm algorithm,
    const JoinOptions& options, JoinStats* stats) {
  std::unique_ptr<DistanceJoinCursor> inner;
  switch (algorithm) {
    case IdjAlgorithm::kHsIdj:
      inner = std::make_unique<HsIdjCursor>(r, s, options, stats);
      break;
    case IdjAlgorithm::kAmIdj:
      inner = std::make_unique<AmIdjCursor>(r, s, options, stats);
      break;
  }
  return std::unique_ptr<DistanceJoinCursor>(
      new TimedCursor(r, s, stats, std::move(inner)));
}

}  // namespace amdj::core

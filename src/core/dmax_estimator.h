#ifndef AMDJ_CORE_DMAX_ESTIMATOR_H_
#define AMDJ_CORE_DMAX_ESTIMATOR_H_

#include <cstdint>
#include <functional>

#include "core/cutoff_estimator.h"
#include "geom/metric.h"
#include "geom/rect.h"

namespace amdj::core {

/// Estimates the cutoff distance Dmax for a stopping cardinality k
/// (Section 4.3), assuming uniformly distributed data: the expected number
/// of object pairs within distance d is |R||S| * C d^2 / area(R cap S)
/// (C = the metric's unit-ball area coefficient, pi for L2), so
///
///   eDmax(k)   = sqrt(k * rho),   rho = area(R cap S) / (C |R| |S|)  (Eq 3)
///
/// with runtime corrections once k0 < k pairs and the k0-th distance
/// Dmax(k0) are known:
///
///   arithmetic: sqrt(Dmax(k0)^2 + (k - k0) * rho)                     (Eq 4)
///   geometric:  Dmax(k0) * sqrt(k / k0)                               (Eq 5)
///
/// For skewed data these overestimate (close pairs concentrate in dense
/// regions), which the paper observes as well; overestimates are the safe
/// direction for AM-KDJ (it degrades to B-KDJ). For a skew-aware
/// alternative see HistogramEstimator.
class DmaxEstimator : public CutoffEstimator {
 public:
  /// `r_bounds`/`s_bounds` are the MBRs of the two data sets and
  /// `r_count`/`s_count` their cardinalities (>= 1 for meaningful output).
  DmaxEstimator(const geom::Rect& r_bounds, uint64_t r_count,
                const geom::Rect& s_bounds, uint64_t s_count,
                geom::Metric metric = geom::Metric::kL2);

  /// The density constant rho of Eq. 3.
  double rho() const { return rho_; }

  /// Eq. 3. If the data sets' MBRs are disjoint, the gap between them is
  /// added (no pair can be closer than the gap). Distance space, like the
  /// whole estimator API (geom::DistVal).
  geom::DistVal InitialEstimate(uint64_t k) const;

  /// Eq. 4.
  geom::DistVal ArithmeticCorrection(uint64_t k, uint64_t k0,
                                     geom::DistVal dmax_k0) const;

  /// Eq. 5 (falls back to the arithmetic correction when dmax_k0 == 0).
  geom::DistVal GeometricCorrection(uint64_t k, uint64_t k0,
                                    geom::DistVal dmax_k0) const;

  // CutoffEstimator:
  geom::DistVal EstimateDmax(uint64_t k) const override {
    return InitialEstimate(k);
  }
  /// Combined correction: aggressive takes the min of Eq. 4/5,
  /// conservative the max.
  geom::DistVal Correct(uint64_t k, uint64_t k0, geom::DistVal dmax_k0,
                        bool aggressive) const override;
  /// Self-contained closed form (captures rho by value; no lifetime tie to
  /// this object).
  std::function<geom::DistVal(uint64_t)> BoundaryFn() const override;

 private:
  double rho_ = 0.0;
  double gap_ = 0.0;  // min distance between the two data-set MBRs
};

}  // namespace amdj::core

#endif  // AMDJ_CORE_DMAX_ESTIMATOR_H_

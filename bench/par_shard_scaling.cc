// Partition-parallel KDJ scaling: shard count x shard threads over the
// TIGER workload against the unsharded AM-KDJ baseline, plus a clustered
// section measuring bounds-only shard-pair pruning. Each sharded run's
// distance sequence must match the baseline exactly (the k smallest
// distances are a unique multiset even when tie plateaus make pair-level
// emission order discovery-dependent — see DESIGN.md, "Partition layer").
// Every measured run lands in AMDJ_BENCH_JSON with the shard_pairs_*
// pruning counters in its stats block.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/partition.h"
#include "core/shard_executor.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

namespace amdj::bench {
namespace {

std::vector<double> Distances(const std::vector<core::ResultPair>& results) {
  std::vector<double> out;
  out.reserve(results.size());
  for (const auto& pair : results) out.push_back(pair.distance);
  return out;
}

core::Partition MustPartition(const rtree::RTree& tree,
                              storage::BufferPool* pool, uint32_t shards) {
  core::PartitionOptions options;
  options.shards = shards;
  auto part = core::Partition::FromTree(tree, pool, options);
  if (!part.ok()) {
    std::fprintf(stderr, "FATAL: partition build failed: %s\n",
                 part.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*part);
}

void Run(int argc, char** argv) {
  BenchEnv env = MakeTigerEnv(BenchConfig::FromArgs(argc, argv));
  PrintHeader("Partition-parallel KDJ scaling (sharded, bounds-only pruning)",
              env);

  const uint64_t k = 100'000;
  RunResult baseline =
      RunKdjCold(env, core::KdjAlgorithm::kAmKdj, k, env.MakeJoinOptions());
  const std::vector<double> base_distances = Distances(baseline.results);
  std::printf("baseline am-kdj (unsharded): wall=%ss, %zu pairs\n\n",
              FormatSeconds(baseline.stats.cpu_seconds).c_str(),
              baseline.results.size());

  const std::vector<uint32_t> shard_counts = {2, 4, 8, 16};
  const std::vector<uint32_t> thread_counts = {1, 2, 4, 8};
  const std::vector<int> widths = {8, 9, 12, 9, 9, 9, 10, 14};
  PrintRow({"shards", "threads", "wall (s)", "speedup", "pairs", "pruned",
            "executed", "node acc."},
           widths);

  for (const uint32_t shards : shard_counts) {
    // Shard trees live in their own pool so partition-build I/O never
    // competes with the baseline trees' buffer.
    storage::InMemoryDiskManager shard_disk;
    storage::BufferPool shard_pool(
        &shard_disk,
        std::max<size_t>(64, env.config.buffer_bytes / storage::kPageSize));
    const core::Partition r_part =
        MustPartition(*env.streets, &shard_pool, shards);
    const core::Partition s_part =
        MustPartition(*env.hydro, &shard_pool, shards);

    for (const uint32_t threads : thread_counts) {
      Status cleared = env.pool->Clear();
      if (cleared.ok()) cleared = shard_pool.Clear();
      if (!cleared.ok()) {
        std::fprintf(stderr, "FATAL: %s\n", cleared.ToString().c_str());
        std::exit(1);
      }
      core::ShardedJoinOptions sharded;
      sharded.join = env.MakeJoinOptions();
      // Deliberately NOT divided by `threads` (the way the service clamps):
      // each concurrently executing pair gets the full configured budget, so
      // shard runs and the baseline face the same spill pressure. Peak queue
      // memory is threads x --memory.
      sharded.threads = threads;
      sharded.algorithm = core::KdjAlgorithm::kAmKdj;

      JoinStats stats;
      Timer wall;
      auto result =
          core::RunShardedKDistanceJoin(r_part, s_part, k, sharded, &stats);
      const double wall_seconds = wall.ElapsedSeconds();
      if (!result.ok()) {
        std::fprintf(stderr, "FATAL: sharded run failed: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
      if (Distances(*result) != base_distances) {
        std::fprintf(stderr,
                     "FATAL: sharded distances at %u shards / %u threads "
                     "differ from the unsharded baseline\n",
                     shards, threads);
        std::exit(1);
      }

      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    baseline.stats.cpu_seconds / wall_seconds);
      PrintRow({std::to_string(shards), std::to_string(threads),
                FormatSeconds(wall_seconds), speedup,
                FormatCount(stats.shard_pairs_considered),
                FormatCount(stats.shard_pairs_pruned_bounds +
                            stats.shard_pairs_pruned_cutoff),
                FormatCount(stats.shard_pairs_executed),
                FormatCount(stats.node_accesses)},
               widths);
      AppendBenchJson("am-sharded-s" + std::to_string(shards) + "-t" +
                          std::to_string(threads),
                      k, wall_seconds * 1000.0, stats);
    }
    std::printf("\n");
  }

  // Bounds-only pruning on clustered data: with both sides concentrated in
  // tight Gaussian clusters most shard pairs sit far beyond the k-th
  // distance, so the bounds-only prefix bound alone should discard a large
  // fraction of the pairs before any tree is opened.
  std::printf("# clustered pruning (gaussian clusters, shards=8)\n");
  const uint64_t cluster_n = std::max<uint64_t>(1000, env.config.streets / 3);
  const workload::Dataset cluster_r = workload::GaussianClusters(
      cluster_n, 8, 0.01, env.config.seed);
  const workload::Dataset cluster_s = workload::GaussianClusters(
      std::max<uint64_t>(1000, cluster_n / 2), 8, 0.01, env.config.seed + 1);
  storage::InMemoryDiskManager cluster_disk;
  storage::BufferPool cluster_pool(&cluster_disk, 4096);
  core::PartitionOptions cluster_part;
  cluster_part.shards = 8;
  auto cr = core::Partition::Build(cluster_r.ToEntries(), &cluster_pool,
                                   cluster_part);
  auto cs = core::Partition::Build(cluster_s.ToEntries(), &cluster_pool,
                                   cluster_part);
  if (!cr.ok() || !cs.ok()) {
    std::fprintf(stderr, "FATAL: clustered partition build failed\n");
    std::exit(1);
  }
  core::ShardedJoinOptions cluster_options;
  cluster_options.join = env.MakeJoinOptions();
  cluster_options.threads = 4;
  cluster_options.algorithm = core::KdjAlgorithm::kAmKdj;
  JoinStats cluster_stats;
  Timer cluster_wall;
  auto cluster_result = core::RunShardedKDistanceJoin(
      *cr, *cs, 10'000, cluster_options, &cluster_stats);
  const double cluster_seconds = cluster_wall.ElapsedSeconds();
  if (!cluster_result.ok()) {
    std::fprintf(stderr, "FATAL: clustered sharded run failed: %s\n",
                 cluster_result.status().ToString().c_str());
    std::exit(1);
  }
  const double pruned_fraction =
      cluster_stats.shard_pairs_considered == 0
          ? 0.0
          : static_cast<double>(cluster_stats.shard_pairs_pruned_bounds) /
                static_cast<double>(cluster_stats.shard_pairs_considered);
  std::printf(
      "pairs=%" PRIu64 " pruned_bounds=%" PRIu64 " (%.0f%%) pruned_cutoff=%"
      PRIu64 " executed=%" PRIu64 " wall=%ss\n",
      cluster_stats.shard_pairs_considered,
      cluster_stats.shard_pairs_pruned_bounds, pruned_fraction * 100.0,
      cluster_stats.shard_pairs_pruned_cutoff,
      cluster_stats.shard_pairs_executed,
      FormatSeconds(cluster_seconds).c_str());
  AppendBenchJson("am-sharded-clustered-s8", 10'000, cluster_seconds * 1000.0,
                  cluster_stats);
}

}  // namespace
}  // namespace amdj::bench

int main(int argc, char** argv) {
  amdj::bench::Run(argc, argv);
  return 0;
}

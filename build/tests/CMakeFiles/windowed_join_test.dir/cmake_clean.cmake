file(REMOVE_RECURSE
  "CMakeFiles/windowed_join_test.dir/windowed_join_test.cc.o"
  "CMakeFiles/windowed_join_test.dir/windowed_join_test.cc.o.d"
  "windowed_join_test"
  "windowed_join_test.pdb"
  "windowed_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/windowed_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

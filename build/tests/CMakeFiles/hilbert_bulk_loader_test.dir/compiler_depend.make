# Empty compiler generated dependencies file for hilbert_bulk_loader_test.
# This may be replaced when dependencies are built.

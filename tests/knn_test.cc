#include "rtree/knn.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

namespace amdj::rtree {
namespace {

using geom::Metric;
using geom::Point;
using geom::Rect;

struct KnnFixture {
  storage::InMemoryDiskManager disk;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<RTree> tree;
  std::vector<Rect> objects;

  explicit KnnFixture(uint64_t n, uint64_t seed, uint32_t fanout = 8) {
    pool = std::make_unique<storage::BufferPool>(&disk, 128);
    RTree::Options opts;
    opts.max_entries = fanout;
    tree = std::move(*RTree::Create(pool.get(), opts));
    const auto data = workload::UniformRects(
        n, 30.0, seed, Rect(0, 0, 1000, 1000));
    objects = data.objects;
    EXPECT_TRUE(tree->BulkLoad(data.ToEntries()).ok());
  }

  std::vector<std::pair<double, uint32_t>> BruteKnn(const Point& q, size_t k,
                                                    Metric m) const {
    std::vector<std::pair<double, uint32_t>> d;
    for (uint32_t i = 0; i < objects.size(); ++i) {
      d.push_back(
          {geom::MinDistance(Rect::FromPoint(q), objects[i], m).raw(), i});
    }
    std::sort(d.begin(), d.end());
    d.resize(std::min(d.size(), k));
    return d;
  }
};

TEST(KnnTest, MatchesBruteForceRandomQueries) {
  KnnFixture f(800, 21);
  Random rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const Point q(rng.Uniform(-100, 1100), rng.Uniform(-100, 1100));
    const size_t k = 1 + rng.UniformInt(uint64_t{50});
    auto result = NearestNeighbors(*f.tree, q, k);
    ASSERT_TRUE(result.ok());
    const auto brute = f.BruteKnn(q, k, Metric::kL2);
    ASSERT_EQ(result->size(), brute.size());
    for (size_t i = 0; i < brute.size(); ++i) {
      const double got =
          geom::MinDistance(Rect::FromPoint(q), (*result)[i].rect);
      ASSERT_NEAR(got, brute[i].first, 1e-9) << "rank " << i;
    }
  }
}

TEST(KnnTest, WorksUnderEveryMetric) {
  KnnFixture f(500, 22);
  const Point q(333, 667);
  for (const Metric m : {Metric::kL2, Metric::kL1, Metric::kLInf}) {
    auto result = NearestNeighbors(*f.tree, q, 25, m);
    ASSERT_TRUE(result.ok());
    const auto brute = f.BruteKnn(q, 25, m);
    for (size_t i = 0; i < brute.size(); ++i) {
      ASSERT_NEAR(
          geom::MinDistance(Rect::FromPoint(q), (*result)[i].rect, m).raw(),
          brute[i].first, 1e-9)
          << geom::ToString(m) << " rank " << i;
    }
  }
}

TEST(KnnTest, KLargerThanTreeReturnsEverything) {
  KnnFixture f(37, 23);
  auto result = NearestNeighbors(*f.tree, Point(0, 0), 1000);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 37u);
}

TEST(KnnTest, EmptyTree) {
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 16);
  auto tree = RTree::Create(&pool, {}).value();
  auto result = NearestNeighbors(*tree, Point(1, 2), 5);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(KnnTest, CursorStreamsInNonDecreasingOrder) {
  KnnFixture f(600, 24);
  NearestNeighborCursor cursor(*f.tree, Point(500, 500));
  Entry entry;
  geom::DistVal distance = geom::DistVal::Zero();
  geom::DistVal prev{-1.0};
  bool done = false;
  size_t count = 0;
  while (true) {
    ASSERT_TRUE(cursor.Next(&entry, &distance, &done).ok());
    if (done) break;
    EXPECT_GE(distance.raw(), prev.raw());
    prev = distance;
    ++count;
  }
  EXPECT_EQ(count, 600u);
}

TEST(KnnTest, CursorMatchesBatchApi) {
  KnnFixture f(300, 25);
  const Point q(10, 990);
  auto batch = NearestNeighbors(*f.tree, q, 40);
  ASSERT_TRUE(batch.ok());
  NearestNeighborCursor cursor(*f.tree, q);
  Entry entry;
  geom::DistVal distance = geom::DistVal::Zero();
  bool done = false;
  for (size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(cursor.Next(&entry, &distance, &done).ok());
    ASSERT_FALSE(done);
    EXPECT_NEAR(distance.raw(),
                geom::MinDistance(Rect::FromPoint(q), (*batch)[i].rect),
                1e-9);
  }
}

}  // namespace
}  // namespace amdj::rtree

#include "rtree/rtree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/logging.h"
#include "rtree/hilbert_bulk_loader.h"
#include "rtree/str_bulk_loader.h"

namespace amdj::rtree {

using geom::Rect;
using storage::PageId;

namespace {

/// Area growth needed for `rect` to absorb `add`.
double Enlargement(const Rect& rect, const Rect& add) {
  return geom::Union(rect, add).Area() - rect.Area();
}

}  // namespace

StatusOr<std::unique_ptr<RTree>> RTree::Create(storage::BufferPool* pool,
                                               const Options& options) {
  Options opts = options;
  if (opts.max_entries < 4 || opts.max_entries > kMaxEntriesPerPage) {
    return Status::InvalidArgument("max_entries must be in [4, " +
                                   std::to_string(kMaxEntriesPerPage) + "]");
  }
  if (opts.min_entries == 0) {
    opts.min_entries =
        std::max<uint32_t>(2, static_cast<uint32_t>(opts.max_entries * 0.4));
  }
  if (opts.min_entries > opts.max_entries / 2) {
    return Status::InvalidArgument("min_entries must be <= max_entries / 2");
  }
  if (opts.reinsert_fraction <= 0.0 || opts.reinsert_fraction >= 0.5) {
    return Status::InvalidArgument("reinsert_fraction must be in (0, 0.5)");
  }
  auto tree = std::unique_ptr<RTree>(new RTree(pool, opts));
  Node root;
  root.level = 0;
  auto root_id = tree->AllocNode(root);
  if (!root_id.ok()) return root_id.status();
  tree->root_ = *root_id;
  return tree;
}

StatusOr<std::unique_ptr<RTree>> RTree::Open(storage::BufferPool* pool,
                                             const Meta& meta,
                                             const Options& options) {
  Options opts = options;
  if (meta.max_entries != 0) opts.max_entries = meta.max_entries;
  if (meta.min_entries != 0) opts.min_entries = meta.min_entries;
  auto created = Create(pool, opts);
  if (!created.ok()) return created.status();
  std::unique_ptr<RTree> tree = std::move(*created);
  // Create() allocated a fresh empty root; drop it in favor of the
  // persisted one.
  tree->FreeNodePage(tree->root_);
  tree->root_ = meta.root;
  tree->height_ = meta.height;
  tree->size_ = meta.size;
  tree->node_count_ = meta.node_count;
  tree->bounds_ = meta.bounds;
  // Sanity: the persisted root must parse and sit at the stated level.
  Node root;
  AMDJ_RETURN_IF_ERROR(tree->ReadNode(tree->root_, &root));
  if (root.level != meta.height - 1) {
    return Status::Corruption("meta height does not match root level");
  }
  return tree;
}

RTree::Meta RTree::ToMeta() const {
  Meta meta;
  meta.root = root_;
  meta.height = height_;
  meta.size = size_;
  meta.node_count = node_count_;
  meta.bounds = bounds_;
  meta.max_entries = options_.max_entries;
  meta.min_entries = options_.min_entries;
  return meta;
}

namespace {
constexpr char kMetaMagic[8] = {'A', 'M', 'D', 'J', 'R', 'T', '0', '1'};
}  // namespace

Status RTree::WriteMetaPage(PageId page_id) const {
  auto guard = pool_->FetchPage(page_id);
  if (!guard.ok()) return guard.status();
  char* p = guard->MutableData();
  std::memset(p, 0, storage::kPageSize);
  const Meta meta = ToMeta();
  std::memcpy(p, kMetaMagic, sizeof(kMetaMagic));
  std::memcpy(p + 8, &meta.root, sizeof(meta.root));
  std::memcpy(p + 12, &meta.height, sizeof(meta.height));
  std::memcpy(p + 16, &meta.size, sizeof(meta.size));
  std::memcpy(p + 24, &meta.node_count, sizeof(meta.node_count));
  std::memcpy(p + 32, &meta.bounds, sizeof(meta.bounds));
  std::memcpy(p + 64, &meta.max_entries, sizeof(meta.max_entries));
  std::memcpy(p + 68, &meta.min_entries, sizeof(meta.min_entries));
  return Status::OK();
}

StatusOr<std::unique_ptr<RTree>> RTree::OpenFromMetaPage(
    storage::BufferPool* pool, PageId page_id, const Options& options) {
  Meta meta;
  {
    auto guard = pool->FetchPage(page_id);
    if (!guard.ok()) return guard.status();
    const char* p = guard->data();
    if (std::memcmp(p, kMetaMagic, sizeof(kMetaMagic)) != 0) {
      return Status::Corruption("not an R-tree meta page");
    }
    std::memcpy(&meta.root, p + 8, sizeof(meta.root));
    std::memcpy(&meta.height, p + 12, sizeof(meta.height));
    std::memcpy(&meta.size, p + 16, sizeof(meta.size));
    std::memcpy(&meta.node_count, p + 24, sizeof(meta.node_count));
    std::memcpy(&meta.bounds, p + 32, sizeof(meta.bounds));
    std::memcpy(&meta.max_entries, p + 64, sizeof(meta.max_entries));
    std::memcpy(&meta.min_entries, p + 68, sizeof(meta.min_entries));
  }
  return Open(pool, meta, options);
}

Status RTree::ReadNode(PageId page_id, Node* out) const {
  auto guard = pool_->FetchPage(page_id);
  if (!guard.ok()) return guard.status();
  return Node::Deserialize(guard->data(), out);
}

Status RTree::WriteNode(PageId page_id, const Node& node) const {
  auto guard = pool_->FetchPage(page_id);
  if (!guard.ok()) return guard.status();
  node.Serialize(guard->MutableData());
  return Status::OK();
}

StatusOr<PageId> RTree::AllocNode(const Node& node) const {
  PageId id = storage::kInvalidPageId;
  auto guard = pool_->NewPage(&id);
  if (!guard.ok()) return guard.status();
  node.Serialize(guard->MutableData());
  return id;
}

size_t RTree::ChooseSubtree(const Node& node, const Rect& rect) const {
  AMDJ_CHECK(!node.entries.empty());
  // For nodes whose children are leaves, R* minimizes *overlap* enlargement
  // among the kNearlyMin entries of least area enlargement; higher up it
  // minimizes area enlargement (ties: smaller area).
  const bool children_are_leaves = (node.level == 1);
  if (!children_are_leaves) {
    size_t best = 0;
    double best_enl = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node.entries.size(); ++i) {
      const double enl = Enlargement(node.entries[i].rect, rect);
      const double area = node.entries[i].rect.Area();
      if (enl < best_enl || (enl == best_enl && area < best_area)) {
        best = i;
        best_enl = enl;
        best_area = area;
      }
    }
    return best;
  }
  // Rank children by area enlargement, then examine only the best few for
  // the quadratic overlap computation (the standard R* optimization).
  constexpr size_t kNearlyMin = 32;
  std::vector<size_t> order(node.entries.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return Enlargement(node.entries[a].rect, rect) <
           Enlargement(node.entries[b].rect, rect);
  });
  const size_t candidates = std::min(kNearlyMin, order.size());
  size_t best = order[0];
  double best_overlap_enl = std::numeric_limits<double>::infinity();
  double best_enl = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < candidates; ++c) {
    const size_t i = order[c];
    const Rect enlarged = geom::Union(node.entries[i].rect, rect);
    double overlap_before = 0.0;
    double overlap_after = 0.0;
    for (size_t j = 0; j < node.entries.size(); ++j) {
      if (j == i) continue;
      overlap_before +=
          geom::IntersectionArea(node.entries[i].rect, node.entries[j].rect);
      overlap_after +=
          geom::IntersectionArea(enlarged, node.entries[j].rect);
    }
    const double overlap_enl = overlap_after - overlap_before;
    const double enl = Enlargement(node.entries[i].rect, rect);
    const double area = node.entries[i].rect.Area();
    if (overlap_enl < best_overlap_enl ||
        (overlap_enl == best_overlap_enl &&
         (enl < best_enl || (enl == best_enl && area < best_area)))) {
      best = i;
      best_overlap_enl = overlap_enl;
      best_enl = enl;
      best_area = area;
    }
  }
  return best;
}

void RTree::SplitNode(Node* node, Node* sibling) const {
  const uint32_t total = static_cast<uint32_t>(node->entries.size());
  const uint32_t m = options_.min_entries;
  AMDJ_CHECK(total >= 2 * m) << "split of node with " << total << " entries";

  // R* split: for each axis, sort by lower then by upper boundary and sum
  // the margins of all legal distributions; pick the axis with the minimum
  // margin sum, then the distribution with minimal overlap (ties: area).
  struct Candidate {
    int axis;
    bool by_upper;
    uint32_t split_at;  // first group = sorted[0, split_at)
    double overlap;
    double area;
  };

  Candidate best{-1, false, 0, std::numeric_limits<double>::infinity(),
                 std::numeric_limits<double>::infinity()};
  int best_axis = -1;
  double best_margin = std::numeric_limits<double>::infinity();

  std::vector<Entry> sorted = node->entries;
  // Evaluate margin sums per axis first.
  std::vector<std::vector<Entry>> sorted_by[2];  // [axis][0=lower,1=upper]
  for (int axis = 0; axis < 2; ++axis) {
    double margin_sum = 0.0;
    for (int by_upper = 0; by_upper < 2; ++by_upper) {
      std::sort(sorted.begin(), sorted.end(),
                [axis, by_upper](const Entry& a, const Entry& b) {
                  const double ka = by_upper ? a.rect.hi.Coord(axis)
                                             : a.rect.lo.Coord(axis);
                  const double kb = by_upper ? b.rect.hi.Coord(axis)
                                             : b.rect.lo.Coord(axis);
                  return ka < kb;
                });
      sorted_by[axis].push_back(sorted);
      // Prefix/suffix MBRs for O(n) margin evaluation.
      std::vector<Rect> prefix(total), suffix(total);
      Rect acc = Rect::Empty();
      for (uint32_t i = 0; i < total; ++i) {
        acc.Extend(sorted[i].rect);
        prefix[i] = acc;
      }
      acc = Rect::Empty();
      for (uint32_t i = total; i > 0; --i) {
        acc.Extend(sorted[i - 1].rect);
        suffix[i - 1] = acc;
      }
      for (uint32_t k = m; k <= total - m; ++k) {
        margin_sum += prefix[k - 1].Margin() + suffix[k].Margin();
      }
    }
    if (margin_sum < best_margin) {
      best_margin = margin_sum;
      best_axis = axis;
    }
  }

  // Choose the distribution on the winning axis.
  for (int by_upper = 0; by_upper < 2; ++by_upper) {
    const std::vector<Entry>& s = sorted_by[best_axis][by_upper];
    std::vector<Rect> prefix(total), suffix(total);
    Rect acc = Rect::Empty();
    for (uint32_t i = 0; i < total; ++i) {
      acc.Extend(s[i].rect);
      prefix[i] = acc;
    }
    acc = Rect::Empty();
    for (uint32_t i = total; i > 0; --i) {
      acc.Extend(s[i - 1].rect);
      suffix[i - 1] = acc;
    }
    for (uint32_t k = m; k <= total - m; ++k) {
      const double overlap = geom::IntersectionArea(prefix[k - 1], suffix[k]);
      const double area = prefix[k - 1].Area() + suffix[k].Area();
      if (overlap < best.overlap ||
          (overlap == best.overlap && area < best.area)) {
        best = {best_axis, by_upper != 0, k, overlap, area};
      }
    }
  }

  const std::vector<Entry>& s = sorted_by[best.axis][best.by_upper ? 1 : 0];
  sibling->level = node->level;
  sibling->entries.assign(s.begin() + best.split_at, s.end());
  node->entries.assign(s.begin(), s.begin() + best.split_at);
}

void RTree::PickReinsertVictims(Node* node,
                                std::vector<Entry>* victims) const {
  const Rect mbr = node->ComputeMbr();
  const geom::Point center = mbr.Center();
  const uint32_t p = std::max<uint32_t>(
      1, static_cast<uint32_t>(
             std::floor(options_.reinsert_fraction * node->entries.size())));
  std::vector<std::pair<double, size_t>> dist(node->entries.size());
  for (size_t i = 0; i < node->entries.size(); ++i) {
    dist[i] = {geom::DistanceSquared(node->entries[i].rect.Center(), center),
               i};
  }
  // Farthest p entries are evicted; they will be reinserted closest-first
  // ("close reinsert").
  std::sort(dist.begin(), dist.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<bool> evict(node->entries.size(), false);
  for (uint32_t i = 0; i < p; ++i) evict[dist[i].second] = true;
  // Closest-first order for reinsertion.
  for (uint32_t i = p; i > 0; --i) {
    victims->push_back(node->entries[dist[i - 1].second]);
  }
  std::vector<Entry> kept;
  kept.reserve(node->entries.size() - p);
  for (size_t i = 0; i < node->entries.size(); ++i) {
    if (!evict[i]) kept.push_back(node->entries[i]);
  }
  node->entries = std::move(kept);
}

Status RTree::InsertRecurse(PageId page_id, uint16_t node_level,
                            const Entry& entry, uint16_t target_level,
                            InsertContext* ctx, InsertResult* result) {
  Node node;
  AMDJ_RETURN_IF_ERROR(ReadNode(page_id, &node));
  AMDJ_CHECK(node.level == node_level)
      << "expected level " << node_level << ", found " << node.level;

  if (node_level == target_level) {
    node.entries.push_back(entry);
  } else {
    const size_t idx = ChooseSubtree(node, entry.rect);
    const PageId child = node.entries[idx].id;
    InsertResult child_result;
    AMDJ_RETURN_IF_ERROR(InsertRecurse(child, node_level - 1, entry,
                                       target_level, ctx, &child_result));
    node.entries[idx].rect = child_result.mbr;
    if (child_result.split) {
      node.entries.push_back(child_result.new_sibling);
    }
  }

  result->split = false;
  if (node.entries.size() > options_.max_entries) {
    const bool is_root = (page_id == root_);
    const bool can_reinsert =
        options_.forced_reinsert && !is_root &&
        node_level < ctx->reinserted_levels.size() &&
        !ctx->reinserted_levels[node_level];
    if (can_reinsert) {
      ctx->reinserted_levels[node_level] = true;
      std::vector<Entry> victims;
      PickReinsertVictims(&node, &victims);
      for (const Entry& v : victims) ctx->pending.emplace_back(node_level, v);
    } else {
      Node sibling;
      SplitNode(&node, &sibling);
      auto sibling_id = AllocNode(sibling);
      if (!sibling_id.ok()) return sibling_id.status();
      ++node_count_;
      result->split = true;
      result->new_sibling = Entry(sibling.ComputeMbr(), *sibling_id);
    }
  }

  AMDJ_RETURN_IF_ERROR(WriteNode(page_id, node));
  result->mbr = node.ComputeMbr();
  return Status::OK();
}

Status RTree::GrowRoot(const Entry& left, const Entry& right,
                       uint16_t new_level) {
  Node new_root;
  new_root.level = new_level;
  new_root.entries = {left, right};
  auto id = AllocNode(new_root);
  if (!id.ok()) return id.status();
  ++node_count_;
  root_ = *id;
  height_ = static_cast<uint16_t>(new_level + 1);
  return Status::OK();
}

Status RTree::InsertEntryAtLevel(const Entry& entry,
                                 uint16_t target_level) {
  InsertContext ctx;
  ctx.reinserted_levels.assign(height_, false);
  ctx.pending.emplace_back(target_level, entry);
  while (!ctx.pending.empty()) {
    auto [level, pending_entry] = ctx.pending.front();
    ctx.pending.erase(ctx.pending.begin());
    InsertResult result;
    AMDJ_RETURN_IF_ERROR(InsertRecurse(root_, height_ - 1, pending_entry,
                                       level, &ctx, &result));
    if (result.split) {
      Node old_root;
      AMDJ_RETURN_IF_ERROR(ReadNode(root_, &old_root));
      const Entry left(result.mbr, root_);
      AMDJ_RETURN_IF_ERROR(
          GrowRoot(left, result.new_sibling, old_root.level + 1));
      ctx.reinserted_levels.resize(height_, true);  // root never reinserts
    }
  }
  return Status::OK();
}

Status RTree::Insert(const Rect& rect, uint32_t id) {
  if (!rect.IsValid()) {
    return Status::InvalidArgument("cannot insert an invalid rectangle");
  }
  AMDJ_RETURN_IF_ERROR(InsertEntryAtLevel(Entry(rect, id), 0));
  ++size_;
  bounds_.Extend(rect);
  return Status::OK();
}

void RTree::FreeNodePage(PageId page_id) {
  // The cached frame must be dropped before the id can be reused, or a
  // later allocation of the same id would alias the stale frame.
  const Status s = pool_->Discard(page_id);
  AMDJ_CHECK(s.ok()) << s.ToString();
  pool_->disk()->FreePage(page_id);
}

Status RTree::CollectObjectsAndFree(PageId page_id,
                                    std::vector<Entry>* out) {
  Node node;
  AMDJ_RETURN_IF_ERROR(ReadNode(page_id, &node));
  if (node.IsLeaf()) {
    out->insert(out->end(), node.entries.begin(), node.entries.end());
  } else {
    for (const Entry& e : node.entries) {
      AMDJ_RETURN_IF_ERROR(CollectObjectsAndFree(e.id, out));
    }
  }
  FreeNodePage(page_id);
  --node_count_;
  return Status::OK();
}

Status RTree::DeleteRecurse(PageId page_id, uint16_t node_level,
                            const Rect& rect, uint32_t id, bool* found,
                            bool* underflow, Rect* mbr,
                            std::vector<Entry>* orphan_objects) {
  Node node;
  AMDJ_RETURN_IF_ERROR(ReadNode(page_id, &node));
  *underflow = false;
  bool modified = false;
  if (node.IsLeaf()) {
    for (size_t i = 0; i < node.entries.size(); ++i) {
      if (node.entries[i].id == id && node.entries[i].rect == rect) {
        node.entries.erase(node.entries.begin() + i);
        *found = true;
        modified = true;
        break;
      }
    }
  } else {
    for (size_t i = 0; i < node.entries.size() && !*found; ++i) {
      if (!node.entries[i].rect.Contains(rect)) continue;
      bool child_underflow = false;
      Rect child_mbr;
      AMDJ_RETURN_IF_ERROR(DeleteRecurse(node.entries[i].id, node_level - 1,
                                         rect, id, found, &child_underflow,
                                         &child_mbr, orphan_objects));
      if (!*found) continue;
      modified = true;
      if (child_underflow) {
        AMDJ_RETURN_IF_ERROR(
            CollectObjectsAndFree(node.entries[i].id, orphan_objects));
        node.entries.erase(node.entries.begin() + i);
      } else {
        node.entries[i].rect = child_mbr;
      }
    }
  }
  if (modified) {
    AMDJ_RETURN_IF_ERROR(WriteNode(page_id, node));
  }
  *mbr = node.ComputeMbr();
  *underflow = page_id != root_ &&
               node.entries.size() < options_.min_entries;
  return Status::OK();
}

Status RTree::Delete(const Rect& rect, uint32_t id, bool* found) {
  *found = false;
  bool underflow = false;
  Rect mbr;
  std::vector<Entry> orphans;
  AMDJ_RETURN_IF_ERROR(DeleteRecurse(root_, height_ - 1, rect, id, found,
                                     &underflow, &mbr, &orphans));
  if (!*found) return Status::OK();
  --size_;

  // Shrink the root while it is an internal node with a single child (or
  // reset it to an empty leaf if everything is gone).
  Node root;
  AMDJ_RETURN_IF_ERROR(ReadNode(root_, &root));
  while (root.level > 0 && root.entries.size() == 1) {
    const PageId child = root.entries[0].id;
    FreeNodePage(root_);
    --node_count_;
    root_ = child;
    --height_;
    AMDJ_RETURN_IF_ERROR(ReadNode(root_, &root));
  }
  if (root.level > 0 && root.entries.empty()) {
    root.level = 0;
    height_ = 1;
    AMDJ_RETURN_IF_ERROR(WriteNode(root_, root));
  }

  // Reinsert objects orphaned by dissolved nodes (they are still counted
  // in size_).
  for (const Entry& orphan : orphans) {
    AMDJ_RETURN_IF_ERROR(InsertEntryAtLevel(orphan, 0));
  }

  // Bounds may have shrunk; recompute from the root.
  AMDJ_RETURN_IF_ERROR(ReadNode(root_, &root));
  bounds_ = root.ComputeMbr();
  return Status::OK();
}

Status RTree::BulkLoad(std::vector<Entry> objects, double fill) {
  StrBulkLoader loader(this);
  return loader.Load(std::move(objects), fill);
}

Status RTree::BulkLoadHilbert(std::vector<Entry> objects, double fill) {
  HilbertBulkLoader loader(this);
  return loader.Load(std::move(objects), fill);
}

StatusOr<std::vector<Entry>> RTree::RangeQuery(const Rect& query) const {
  std::vector<Entry> results;
  std::vector<PageId> stack = {root_};
  Node node;
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    AMDJ_RETURN_IF_ERROR(ReadNode(id, &node));
    for (const Entry& e : node.entries) {
      if (!e.rect.Intersects(query)) continue;
      if (node.IsLeaf()) {
        results.push_back(e);
      } else {
        stack.push_back(e.id);
      }
    }
  }
  return results;
}

Status RTree::ForEachObject(
    const std::function<void(const Entry&)>& fn) const {
  std::vector<PageId> stack = {root_};
  Node node;
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    AMDJ_RETURN_IF_ERROR(ReadNode(id, &node));
    for (const Entry& e : node.entries) {
      if (node.IsLeaf()) {
        fn(e);
      } else {
        stack.push_back(e.id);
      }
    }
  }
  return Status::OK();
}

Status RTree::ValidateRecurse(PageId page_id, uint16_t expected_level,
                              const Rect& parent_rect, bool is_root,
                              uint64_t* objects, uint64_t* nodes) const {
  Node node;
  AMDJ_RETURN_IF_ERROR(ReadNode(page_id, &node));
  ++*nodes;
  if (node.level != expected_level) {
    return Status::Corruption("node level mismatch");
  }
  if (node.entries.size() > options_.max_entries) {
    return Status::Corruption("node overflow");
  }
  if (!is_root && node.entries.empty()) {
    return Status::Corruption("empty non-root node");
  }
  if (is_root && expected_level > 0 && node.entries.size() < 2) {
    return Status::Corruption("internal root with fewer than 2 entries");
  }
  const Rect mbr = node.ComputeMbr();
  if (!is_root && mbr != parent_rect) {
    return Status::Corruption("parent entry MBR does not match child MBR");
  }
  if (node.IsLeaf()) {
    *objects += node.entries.size();
    return Status::OK();
  }
  for (const Entry& e : node.entries) {
    AMDJ_RETURN_IF_ERROR(ValidateRecurse(e.id, expected_level - 1, e.rect,
                                         false, objects, nodes));
  }
  return Status::OK();
}

Status RTree::Validate() const {
  uint64_t objects = 0;
  uint64_t nodes = 0;
  AMDJ_RETURN_IF_ERROR(ValidateRecurse(root_, height_ - 1, geom::Rect(), true,
                                       &objects, &nodes));
  if (objects != size_) {
    return Status::Corruption("object count mismatch: counted " +
                              std::to_string(objects) + ", recorded " +
                              std::to_string(size_));
  }
  if (nodes != node_count_) {
    return Status::Corruption("node count mismatch: counted " +
                              std::to_string(nodes) + ", recorded " +
                              std::to_string(node_count_));
  }
  return Status::OK();
}

}  // namespace amdj::rtree

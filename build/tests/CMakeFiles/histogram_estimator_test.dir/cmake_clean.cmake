file(REMOVE_RECURSE
  "CMakeFiles/histogram_estimator_test.dir/histogram_estimator_test.cc.o"
  "CMakeFiles/histogram_estimator_test.dir/histogram_estimator_test.cc.o.d"
  "histogram_estimator_test"
  "histogram_estimator_test.pdb"
  "histogram_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#ifndef AMDJ_RTREE_KNN_H_
#define AMDJ_RTREE_KNN_H_

#include <queue>
#include <vector>

#include "common/status.h"
#include "geom/metric.h"
#include "geom/point.h"
#include "rtree/entry.h"
#include "rtree/rtree.h"

namespace amdj::rtree {

/// The k objects nearest to `query` in non-decreasing distance order
/// (fewer if the tree is smaller), via best-first search (Hjaltason &
/// Samet's ranking algorithm [SSD'95] — the single-tree sibling of the
/// incremental distance join). Rect queries measure MBR-to-MBR distance.
StatusOr<std::vector<Entry>> NearestNeighbors(
    const RTree& tree, const geom::Rect& query, size_t k,
    geom::Metric metric = geom::Metric::kL2);
StatusOr<std::vector<Entry>> NearestNeighbors(
    const RTree& tree, const geom::Point& query, size_t k,
    geom::Metric metric = geom::Metric::kL2);

/// Incremental nearest-neighbor ranking: objects stream out one at a time
/// in non-decreasing distance from `query`, with no preset k.
class NearestNeighborCursor {
 public:
  /// The tree must outlive the cursor.
  NearestNeighborCursor(const RTree& tree, const geom::Rect& query,
                        geom::Metric metric = geom::Metric::kL2);
  NearestNeighborCursor(const RTree& tree, const geom::Point& query,
                        geom::Metric metric = geom::Metric::kL2);

  /// Produces the next object and its distance; sets *done when the tree
  /// is exhausted.
  Status Next(Entry* out, geom::DistVal* distance, bool* done);

 private:
  struct Item {
    /// Strongly typed: the comparator below ranks by true distance, and
    /// mixing a metric key into this heap must not compile.
    geom::DistVal distance;
    bool is_object;
    Entry entry;
    bool operator>(const Item& o) const {
      if (distance != o.distance) return distance > o.distance;
      // Objects first on ties, so results surface without extra expansion.
      return !is_object && o.is_object;
    }
  };

  const RTree& tree_;
  geom::Rect query_;
  geom::Metric metric_;
  bool primed_ = false;
  // amdj-tidy: raw-priority-queue-ok — single-tree kNN ranking queue, not a
  // join main queue: no spill pressure, no segment boundaries, thread
  // confined; HybridQueue's machinery would be pure overhead here.
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap_;
};

}  // namespace amdj::rtree

#endif  // AMDJ_RTREE_KNN_H_

// Randomized differential test: HybridQueue against std::priority_queue as
// the reference, comparing popped VALUES AND ORDER exactly. The queue
// contracts this pins down:
//   - the bucket-queue front always pops the comparator-minimum of the
//     whole structure (memory buckets + disk segments), in comparator
//     order, across spill/swap-in boundaries;
//   - tie plateaus (the count-compressed fast path) drain in exact
//     comparator tie-break order no matter how runs were sealed;
//   - misleading boundary_fn estimates (the adaptive-refinement path)
//     change wall time, never output;
//   - async spill I/O (double-buffered writes + prefetch) is invisible in
//     the output stream;
//   - injected I/O faults mid-split and mid-prefetch surface as Status
//     errors, and after Heal the queue drains every accepted entry in
//     order (no loss, no duplication, no hang).

#include <cstdint>
#include <limits>
#include <queue>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "geom/units.h"
#include "queue/hybrid_queue.h"
#include "storage/disk_manager.h"

namespace amdj::queue {
namespace {

using geom::KeyVal;

struct Item {
  KeyVal key{0.0};
  uint64_t tag = 0;
};

struct ItemCompare {
  bool operator()(const Item& a, const Item& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.tag < b.tag;
  }
};

using Queue = HybridQueue<Item, ItemCompare>;

/// std::priority_queue pops its maximum, so the reference inverts the
/// comparator to pop the ItemCompare-minimum first.
struct ItemGreater {
  bool operator()(const Item& a, const Item& b) const {
    return ItemCompare()(b, a);
  }
};
using Reference =
    std::priority_queue<Item, std::vector<Item>, ItemGreater>;

/// Key distributions the scenarios draw from.
enum class KeyDist {
  kUniform,      ///< Continuous uniform [0, 1e6): no ties, many segments.
  kTieHeavy,     ///< Ten discrete values, half the mass on one plateau.
  kClustered,    ///< Two narrow clusters with a wide gap (boundary stress).
};

double DrawKey(KeyDist dist, std::mt19937_64* rng) {
  switch (dist) {
    case KeyDist::kUniform:
      return std::uniform_real_distribution<double>(0, 1e6)(*rng);
    case KeyDist::kTieHeavy: {
      // 50% on plateau 0.0, the rest spread over nine more flat values.
      const uint64_t r = (*rng)() % 18;
      return r < 9 ? 0.0 : static_cast<double>(r - 8) * 111.0;
    }
    case KeyDist::kClustered: {
      const double base = ((*rng)() % 2 == 0) ? 10.0 : 9e5;
      return base + std::uniform_real_distribution<double>(0, 50)(*rng);
    }
  }
  return 0.0;
}

struct Scenario {
  const char* name;
  KeyDist dist;
  /// nullptr = no predetermined boundaries (pure adaptive refinement).
  std::function<KeyVal(uint64_t)> boundary_fn;
  bool async_io = false;
};

/// Interleaves pushes and pops against the reference, then drains both,
/// asserting every popped (key, tag) matches the reference's exactly.
void RunDifferential(const Scenario& scenario, uint64_t seed,
                     size_t steps) {
  storage::InMemoryDiskManager disk;
  std::unique_ptr<ThreadPool> pool;
  if (scenario.async_io) pool = std::make_unique<ThreadPool>(2, "diff-io");

  Queue::Options options;
  options.memory_bytes = 1024;  // 64 entries: constant spill traffic
  options.disk = &disk;
  options.boundary_fn = scenario.boundary_fn;
  options.io_pool = pool.get();
  JoinStats stats;
  Queue q(options, &stats);
  Reference ref;

  std::mt19937_64 rng(seed);
  uint64_t tag = 0;
  uint64_t popped = 0;
  for (size_t i = 0; i < steps; ++i) {
    const bool push = ref.empty() || (rng() % 10) < 6;
    if (push) {
      const Item item{KeyVal(DrawKey(scenario.dist, &rng)), tag++};
      ASSERT_TRUE(q.Push(item).ok());
      ref.push(item);
    } else {
      Item got;
      ASSERT_TRUE(q.Pop(&got).ok()) << "step " << i;
      const Item want = ref.top();
      ref.pop();
      ASSERT_EQ(got.key, want.key) << "step " << i << " pop " << popped;
      ASSERT_EQ(got.tag, want.tag) << "step " << i << " pop " << popped;
      ++popped;
    }
    ASSERT_EQ(q.TotalSize(), ref.size());
  }
  while (!ref.empty()) {
    Item got;
    ASSERT_TRUE(q.Pop(&got).ok());
    const Item want = ref.top();
    ref.pop();
    ASSERT_EQ(got.key, want.key) << "drain pop " << popped;
    ASSERT_EQ(got.tag, want.tag) << "drain pop " << popped;
    ++popped;
  }
  EXPECT_TRUE(q.Empty());
  Item leftover;
  EXPECT_EQ(q.Pop(&leftover).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(stats.main_queue_insertions, tag);
}

/// A deliberately good Eq.-3-style boundary for uniform [0, 1e6) keys and
/// ~60% of `steps` insertions.
std::function<KeyVal(uint64_t)> UniformBoundary(size_t steps) {
  const double per = 1e6 / (0.6 * static_cast<double>(steps));
  return [per](uint64_t c) { return KeyVal(per * static_cast<double>(c)); };
}

/// A boundary that is wrong by orders of magnitude: the first segment
/// starts far below any real key, so nearly everything routes to memory
/// and overflow must refine adaptively — and swap-ins re-spill.
std::function<KeyVal(uint64_t)> MisleadingLowBoundary() {
  return [](uint64_t c) { return KeyVal(1e-3 * static_cast<double>(c)); };
}

class HybridQueueDifferentialTest
    : public ::testing::TestWithParam<Scenario> {};

TEST_P(HybridQueueDifferentialTest, MatchesReferenceValuesAndOrder) {
  // Three seeds per scenario: distinct interleavings, split points, and
  // plateau shapes.
  for (uint64_t seed : {11u, 222u, 3333u}) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    RunDifferential(GetParam(), seed, 6000);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, HybridQueueDifferentialTest,
    ::testing::Values(
        Scenario{"UniformNoBoundary", KeyDist::kUniform, nullptr, false},
        Scenario{"UniformGoodBoundary", KeyDist::kUniform,
                 UniformBoundary(6000), false},
        Scenario{"UniformEstimatorOff", KeyDist::kUniform,
                 MisleadingLowBoundary(), false},
        Scenario{"TieHeavyNoBoundary", KeyDist::kTieHeavy, nullptr, false},
        Scenario{"TieHeavyGoodBoundary", KeyDist::kTieHeavy,
                 UniformBoundary(6000), false},
        Scenario{"ClusteredEstimatorOff", KeyDist::kClustered,
                 MisleadingLowBoundary(), false},
        Scenario{"UniformAsyncIo", KeyDist::kUniform, UniformBoundary(6000),
                 true},
        Scenario{"UniformAsyncIoNoBoundary", KeyDist::kUniform, nullptr,
                 true},
        Scenario{"TieHeavyAsyncIo", KeyDist::kTieHeavy,
                 UniformBoundary(6000), true},
        Scenario{"ClusteredAsyncIoEstimatorOff", KeyDist::kClustered,
                 MisleadingLowBoundary(), true}),
    [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Fault injection.

/// Pushes/pops with a write fault armed mid-run. Synchronous spill writes
/// retain failed-flush records for retry, so after Heal the queue must
/// drain every *accepted* entry in comparator order (popped values are
/// compared against a sorted multiset of the accepted pushes; phantom
/// retained records from failed pushes may legitimately also surface, so
/// each popped item must come from the attempted set).
TEST(HybridQueueFaultDifferentialTest, MidSplitWriteFaultHealsAndDrains) {
  storage::InMemoryDiskManager base;
  storage::FaultInjectionDiskManager disk(&base);
  Queue::Options options;
  options.memory_bytes = 1024;
  options.disk = &disk;
  JoinStats stats;
  Queue q(options, &stats);

  std::mt19937_64 rng(77);
  std::vector<Item> accepted;
  std::vector<Item> attempted;
  uint64_t tag = 0;
  bool saw_error = false;
  // Arm the fault after a few successful page writes: the failure lands in
  // the middle of some split's AppendMany.
  disk.FailWritesAfter(3);
  for (size_t i = 0; i < 4000; ++i) {
    const Item item{KeyVal(DrawKey(KeyDist::kUniform, &rng)), tag++};
    attempted.push_back(item);
    const Status s = q.Push(item);
    if (s.ok()) {
      accepted.push_back(item);
    } else {
      EXPECT_EQ(s.code(), StatusCode::kIOError);
      saw_error = true;
      disk.Heal();
    }
  }
  ASSERT_TRUE(saw_error) << "fault never fired — test is vacuous";

  // Every accepted entry must come out, in comparator order, and nothing
  // may appear that was never attempted.
  std::sort(attempted.begin(), attempted.end(), ItemCompare());
  std::vector<Item> popped;
  Item it;
  for (Status s = q.Pop(&it); s.ok(); s = q.Pop(&it)) {
    popped.push_back(it);
  }
  EXPECT_TRUE(q.Empty());
  EXPECT_GE(popped.size(), accepted.size());
  EXPECT_LE(popped.size(), attempted.size());
  for (size_t i = 1; i < popped.size(); ++i) {
    ASSERT_FALSE(ItemCompare()(popped[i], popped[i - 1]))
        << "pop order violated at " << i;
  }
  // popped must be a subsequence of attempted (sorted): two-pointer scan.
  size_t j = 0;
  for (const Item& p : popped) {
    while (j < attempted.size() &&
           (attempted[j].key != p.key || attempted[j].tag != p.tag)) {
      ++j;
    }
    ASSERT_LT(j, attempted.size()) << "popped an entry never pushed";
    ++j;
  }
  // ... and must contain every accepted entry: since popped ⊆ attempted
  // with no duplicates (tags are unique) and |popped| >= |accepted|, it is
  // enough that each accepted item is present.
  j = 0;
  std::sort(accepted.begin(), accepted.end(), ItemCompare());
  for (const Item& a : accepted) {
    while (j < popped.size() &&
           (popped[j].key != a.key || popped[j].tag != a.tag)) {
      ++j;
    }
    ASSERT_LT(j, popped.size()) << "accepted entry lost";
    ++j;
  }
}

/// Read fault armed while a prefetch is (or may be) in flight: the
/// swap-in surfaces kIOError, the segment is reinstalled intact, and a
/// healed disk drains the full contents in exact reference order.
TEST(HybridQueueFaultDifferentialTest, MidPrefetchReadFaultHealsAndDrains) {
  storage::InMemoryDiskManager base;
  storage::FaultInjectionDiskManager disk(&base);
  ThreadPool pool(2, "diff-io");
  Queue::Options options;
  options.memory_bytes = 1024;
  options.disk = &disk;
  options.io_pool = &pool;
  // Deliberately under-scaled boundary estimate (10x fewer insertions than
  // actual): each segment holds several pages, so swap-ins re-spill and
  // prefetches have real page lists to read.
  options.boundary_fn = UniformBoundary(3000);
  JoinStats stats;
  Queue q(options, &stats);
  Reference ref;

  std::mt19937_64 rng(55);
  uint64_t tag = 0;
  for (size_t i = 0; i < 30000; ++i) {
    const Item item{KeyVal(DrawKey(KeyDist::kUniform, &rng)), tag++};
    ASSERT_TRUE(q.Push(item).ok());
    ref.push(item);
  }
  // Drain a quarter: crosses several swap-ins, so a prefetch for the next
  // segment is typically in flight when the fault arms.
  Item got;
  for (size_t i = 0; i < 1500; ++i) {
    ASSERT_TRUE(q.Pop(&got).ok());
    ASSERT_EQ(got.tag, ref.top().tag);
    ref.pop();
  }
  disk.FailReadsAfter(0);
  // Pop until the fault surfaces (the current front bucket may still hold
  // entries that need no I/O; bound the scan).
  Status status = Status::OK();
  size_t safe_pops = 0;
  while (status.ok() && safe_pops < 5000) {
    status = q.Pop(&got);
    if (status.ok()) {
      ASSERT_EQ(got.tag, ref.top().tag);
      ref.pop();
      ++safe_pops;
    }
  }
  ASSERT_EQ(status.code(), StatusCode::kIOError)
      << "read fault never surfaced";
  disk.Heal();
  // Everything left must drain in exact reference order.
  while (!ref.empty()) {
    ASSERT_TRUE(q.Pop(&got).ok());
    ASSERT_EQ(got.key, ref.top().key);
    ASSERT_EQ(got.tag, ref.top().tag);
    ref.pop();
  }
  EXPECT_TRUE(q.Empty());
  // The prefetch machinery must have actually engaged for this test to
  // mean anything.
  EXPECT_GT(stats.queue_prefetch_hits + stats.queue_prefetch_waits, 0u);
}

}  // namespace
}  // namespace amdj::queue

#include "core/sj_sort.h"

#include <algorithm>

#include "common/run_report.h"
#include "common/trace.h"
#include "spatialjoin/external_sorter.h"
#include "spatialjoin/spatial_join.h"

namespace amdj::core {

StatusOr<std::vector<ResultPair>> SjSort::Run(const rtree::RTree& r,
                                              const rtree::RTree& s,
                                              uint64_t k, geom::DistVal dmax,
                                              const JoinOptions& options,
                                              JoinStats* stats) {
  std::vector<ResultPair> results;
  if (k == 0 || r.size() == 0 || s.size() == 0) return results;
  JoinStats local;
  if (stats == nullptr) stats = &local;

  if (options.report != nullptr) {
    options.report->BeginPhase("spatial-join", *stats);
    options.report->OnCutoff("dmax_window", dmax.raw(), 0);
  }
  spatialjoin::ExternalSorter sorter(options.queue_disk,
                                     options.queue_memory_bytes, stats);
  {
    TraceSpan sj_span(options.tracer, "spatial_join", {{"dmax", dmax.raw()}});
    AMDJ_RETURN_IF_ERROR(spatialjoin::SpatialJoin::Within(
        r, s, dmax, options, stats,
        [&](const ResultPair& pair) -> Status {
          ++stats->main_queue_insertions;
          return sorter.Add(pair);
        }));
  }
  if (options.report != nullptr) options.report->BeginPhase("sort", *stats);
  {
    TraceSpan sort_span(options.tracer, "external_sort");
    AMDJ_RETURN_IF_ERROR(sorter.Finish());
  }

  if (options.report != nullptr) options.report->BeginPhase("emit", *stats);
  TraceSpan emit_span(options.tracer, "emit");
  results.reserve(static_cast<size_t>(std::min<uint64_t>(k, uint64_t{1} << 20)));
  ResultPair rec;
  bool done = false;
  while (results.size() < k) {
    AMDJ_RETURN_IF_ERROR(sorter.Next(&rec, &done));
    if (done) break;
    results.push_back(rec);
    ++stats->pairs_produced;
  }
  if (options.report != nullptr) {
    if (!results.empty()) {
      options.report->OnCutoff("final_dmax", results.back().distance,
                               results.size());
    }
    options.report->EndPhase(*stats);
  }
  return results;
}

}  // namespace amdj::core

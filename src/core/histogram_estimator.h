#ifndef AMDJ_CORE_HISTOGRAM_ESTIMATOR_H_
#define AMDJ_CORE_HISTOGRAM_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/cutoff_estimator.h"
#include "geom/metric.h"
#include "geom/rect.h"
#include "rtree/rtree.h"

namespace amdj::core {

/// Skew-aware Dmax estimation — the paper's explicit future work ("we plan
/// to develop new strategies for estimating the maximum distances ... for
/// non-uniform data sets", Section 6).
///
/// A grid histogram counts objects of each data set per cell. The expected
/// number of pairs within distance d is accumulated over cell pairs: cell
/// pairs entirely within d contribute their full count product, cell pairs
/// farther than d contribute nothing, and the partial band in between is
/// interpolated with the quadratic growth a distance ball's area has.
/// The k-th pair distance estimate inverts that monotone function by
/// bisection. Because dense regions contribute quadratically, the heavy
/// overestimation Eq. 3 suffers on clustered data largely disappears,
/// which shrinks AM-KDJ's aggressive-stage overshoot (see
/// bench/ablation_estimator).
class HistogramEstimator : public CutoffEstimator {
 public:
  struct Options {
    /// Histogram resolution (grid x grid cells over the joint bounds).
    uint32_t grid = 48;
    geom::Metric metric = geom::Metric::kL2;
  };

  /// Builds from in-memory object sets (cells are assigned by MBR center).
  HistogramEstimator(const std::vector<geom::Rect>& r_objects,
                     const std::vector<geom::Rect>& s_objects,
                     const Options& options);
  HistogramEstimator(const std::vector<geom::Rect>& r_objects,
                     const std::vector<geom::Rect>& s_objects)
      : HistogramEstimator(r_objects, s_objects, Options()) {}

  /// Builds by scanning both trees' objects (one pass each).
  static StatusOr<HistogramEstimator> FromTrees(const rtree::RTree& r,
                                                const rtree::RTree& s,
                                                const Options& options);
  static StatusOr<HistogramEstimator> FromTrees(const rtree::RTree& r,
                                                const rtree::RTree& s) {
    return FromTrees(r, s, Options());
  }

  /// Expected number of object pairs within distance d (monotone in d).
  double ExpectedPairsWithin(geom::DistVal d) const;

  // CutoffEstimator:
  geom::DistVal EstimateDmax(uint64_t k) const override;
  /// Calibrated correction: rescales the histogram prediction so that it
  /// agrees with the ground truth observed so far (K(dmax_k0) == k0), then
  /// inverts for k; `aggressive` additionally caps by the Eq.-5 geometric
  /// correction, conservative floors by it.
  geom::DistVal Correct(uint64_t k, uint64_t k0, geom::DistVal dmax_k0,
                        bool aggressive) const override;
  /// Unlike the generic adapter, precomputes a (count -> distance) table
  /// once and returns a cheap interpolating closure — the hybrid queue
  /// probes boundaries ~10^3 times at construction, and a full bisection
  /// per probe would dominate the join. Self-contained: no lifetime tie to
  /// this estimator.
  std::function<geom::DistVal(uint64_t)> BoundaryFn() const override;

  uint32_t grid() const { return grid_; }
  const geom::Rect& bounds() const { return bounds_; }

 private:
  HistogramEstimator(const Options& options) : options_(options) {}

  void AddObjects(const std::vector<geom::Rect>& objects,
                  std::vector<double>* counts);
  void Finalize();
  geom::Rect CellRect(uint32_t cx, uint32_t cy) const;
  /// Inverts ExpectedPairsWithin for a (possibly fractional) target count.
  double InvertExpectedPairs(double target) const;

  Options options_;
  uint32_t grid_ = 0;
  geom::Rect bounds_ = geom::Rect::Empty();
  double total_r_ = 0.0;
  double total_s_ = 0.0;
  double diameter_ = 0.0;
  std::vector<double> r_counts_;  // grid x grid, row-major
  std::vector<double> s_counts_;
};

}  // namespace amdj::core

#endif  // AMDJ_CORE_HISTOGRAM_ESTIMATOR_H_

#ifndef AMDJ_WORKLOAD_DATASET_H_
#define AMDJ_WORKLOAD_DATASET_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geom/rect.h"
#include "rtree/entry.h"

namespace amdj::workload {

/// A named collection of spatial objects (MBRs with dense ids 0..n-1),
/// i.e. one side of a distance join.
struct Dataset {
  std::string name;
  std::vector<geom::Rect> objects;

  /// MBR of the whole set (Rect::Empty() when empty).
  geom::Rect Bounds() const;

  /// R-tree entries (object id = index).
  std::vector<rtree::Entry> ToEntries() const;

  /// Binary round trip for caching generated workloads between runs.
  Status SaveTo(const std::string& path) const;
  static StatusOr<Dataset> LoadFrom(const std::string& path);

  /// Imports real data from CSV. Each non-empty, non-`#` line is either a
  /// point `x,y` or a rectangle `x0,y0,x1,y1` (whitespace tolerated; rows
  /// may mix). Object ids are assigned in row order. Fails with
  /// InvalidArgument on the first malformed row, naming its line number.
  static StatusOr<Dataset> FromCsv(const std::string& path);
};

}  // namespace amdj::workload

#endif  // AMDJ_WORKLOAD_DATASET_H_

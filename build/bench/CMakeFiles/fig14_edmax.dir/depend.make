# Empty dependencies file for fig14_edmax.
# This may be replaced when dependencies are built.

#ifndef AMDJ_RTREE_NODE_H_
#define AMDJ_RTREE_NODE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geom/rect.h"
#include "rtree/entry.h"

namespace amdj::rtree {

/// In-memory image of one R-tree node. Nodes are deserialized from 4 KB
/// pages, mutated, and serialized back; the page layout is
///   [uint16 level][uint16 count][4 bytes pad][count x packed Entry].
struct Node {
  /// 0 for leaves; increases toward the root.
  uint16_t level = 0;
  std::vector<Entry> entries;

  bool IsLeaf() const { return level == 0; }

  /// Union of all entry rectangles (Rect::Empty() if the node is empty).
  geom::Rect ComputeMbr() const;

  /// Writes this node into a kPageSize buffer. The entry count must not
  /// exceed kMaxEntriesPerPage.
  void Serialize(char* page) const;

  /// Parses a node from a kPageSize buffer; fails with Corruption on an
  /// impossible entry count.
  static Status Deserialize(const char* page, Node* out);
};

}  // namespace amdj::rtree

#endif  // AMDJ_RTREE_NODE_H_

// Feature-space similarity matching, the paper's multimedia motivation
// ("in multimedia and image database applications ... a similarity
// distance function can be used to measure a distance between two objects
// in a feature space", Section 1). Two catalogs of items are embedded in a
// 2-D feature space (e.g. color warmth x texture energy); the task is to
// find the best cross-catalog matches under an L1 similarity metric, plus
// each item's single best counterpart (distance semi-join).
//
//   $ ./similarity_search [k]

#include <cstdio>
#include <cstdlib>

#include "core/distance_join.h"
#include "core/semi_join.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  using namespace amdj;
  const uint64_t k = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;

  // Feature space [0, 1]^2; catalogs cluster around a few "styles".
  const geom::Rect feature_space(0, 0, 1, 1);
  const auto catalog_a =
      workload::GaussianClusters(4000, 5, 0.07, 1001, feature_space);
  const auto catalog_b =
      workload::GaussianClusters(2500, 7, 0.05, 1002, feature_space);

  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 256);
  auto tree_a = rtree::RTree::Create(&pool, {}).value();
  auto tree_b = rtree::RTree::Create(&pool, {}).value();
  if (!tree_a->BulkLoad(catalog_a.ToEntries()).ok() ||
      !tree_b->BulkLoad(catalog_b.ToEntries()).ok()) {
    std::fprintf(stderr, "bulk load failed\n");
    return 1;
  }

  core::JoinOptions options;
  options.metric = geom::Metric::kL1;  // the similarity function

  // Top-k most similar cross-catalog pairs.
  JoinStats stats;
  auto matches = core::RunKDistanceJoin(*tree_a, *tree_b, k,
                                        core::KdjAlgorithm::kAmKdj, options,
                                        &stats);
  if (!matches.ok()) {
    std::fprintf(stderr, "%s\n", matches.status().ToString().c_str());
    return 1;
  }
  std::printf("top %llu most similar pairs (L1 feature distance):\n",
              (unsigned long long)k);
  for (const auto& m : *matches) {
    const auto& a = catalog_a.objects[m.r_id].lo;
    const auto& b = catalog_b.objects[m.s_id].lo;
    std::printf("  A#%04u (%.3f, %.3f)  ~  B#%04u (%.3f, %.3f)   sim-dist "
                "%.5f\n",
                m.r_id, a.x, a.y, m.s_id, b.x, b.y, m.distance);
  }

  // Every A item's single best B counterpart — how well is catalog A
  // covered by catalog B?
  auto counterparts = core::DistanceSemiJoin(
      *tree_a, *tree_b, options, core::SemiJoinStrategy::kPerObjectNn,
      nullptr);
  if (!counterparts.ok()) {
    std::fprintf(stderr, "%s\n", counterparts.status().ToString().c_str());
    return 1;
  }
  double worst = 0.0;
  double total = 0.0;
  for (const auto& c : *counterparts) {
    worst = std::max(worst, c.distance);
    total += c.distance;
  }
  std::printf("\ncoverage of catalog A by catalog B (per-item nearest "
              "counterpart):\n");
  std::printf("  mean similarity distance: %.5f\n",
              total / counterparts->size());
  std::printf("  worst matched item:       A#%04u at %.5f\n",
              counterparts->back().r_id, worst);
  std::printf("\n(join cost: %llu distance computations)\n",
              (unsigned long long)stats.real_distance_computations);
  return 0;
}

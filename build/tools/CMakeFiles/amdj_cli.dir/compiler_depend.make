# Empty compiler generated dependencies file for amdj_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/join_incremental_test.dir/join_incremental_test.cc.o"
  "CMakeFiles/join_incremental_test.dir/join_incremental_test.cc.o.d"
  "join_incremental_test"
  "join_incremental_test.pdb"
  "join_incremental_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_incremental_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#ifndef AMDJ_COMMON_TRACE_H_
#define AMDJ_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"

namespace amdj {

/// Low-overhead structured tracer for join runs.
///
/// Recording model: every thread that emits an event gets its own
/// append-only buffer (registered on first use, cached in a thread_local
/// slot), guarded by its own per-buffer mutex. The hot path is one
/// thread_local load plus an *uncontended* lock and a vector push_back —
/// the only thread that ever contends for a buffer's mutex is a merge, so
/// recording threads share no cache lines and never block each other.
/// Timestamps come from one shared steady_clock epoch, so events from
/// different threads order correctly when merged.
///
/// Enabling model: the tracer is compiled in but runtime-off. Every
/// instrumentation point is guarded by a single branch on a `Tracer*`
/// (see AMDJ_TRACE below); a null tracer means the argument expressions
/// are never evaluated and the instrumented code behaves byte-for-byte
/// like the uninstrumented build.
///
/// Lifecycle: record during a join, then Merged()/Export* after the join
/// has returned. Merging is safe even while other threads are still
/// recording (each buffer is copied under its mutex, so the result is a
/// consistent per-thread prefix) — but a *complete* trace still requires
/// the recording threads to have finished, which the join algorithms
/// guarantee: workers are joined before the join call returns.
///
/// Event names and argument names must be string literals (or otherwise
/// outlive the tracer): only the pointer is stored.

/// One named numeric event argument. Counts are widened to double (exact
/// up to 2^53, far beyond any realistic counter here).
struct TraceArg {
  const char* name;
  double value;
};

/// Maximum arguments per event; extras are dropped silently.
inline constexpr int kMaxTraceArgs = 4;

enum class TraceEventType : uint8_t {
  kBegin,    ///< Span begin ("B" in Chrome trace format).
  kEnd,      ///< Span end ("E"). Must nest per thread.
  kInstant,  ///< Point event ("i").
  kCounter,  ///< Counter sample ("C"); value in args[0].
};

struct TraceEvent {
  int64_t ts_ns = 0;  ///< Nanoseconds since the tracer's epoch.
  const char* name = nullptr;
  TraceEventType type = TraceEventType::kInstant;
  uint8_t arg_count = 0;
  TraceArg args[kMaxTraceArgs];
};

/// A TraceEvent stamped with its recording thread at merge time.
struct MergedTraceEvent {
  TraceEvent event;
  uint32_t tid = 0;  ///< Thread index in registration order.
};

class Tracer {
 public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Begins a span on the calling thread. Spans must nest per thread
  /// (guaranteed when using TraceSpan).
  void Begin(const char* name, std::initializer_list<TraceArg> args = {}) {
    Append(TraceEventType::kBegin, name, args);
  }

  /// Ends the innermost open span on the calling thread. `name` should
  /// match the corresponding Begin (exporters pair B/E per thread by
  /// nesting, but matching names keep traces debuggable).
  void End(const char* name, std::initializer_list<TraceArg> args = {}) {
    Append(TraceEventType::kEnd, name, args);
  }

  /// Records a point event.
  void Instant(const char* name, std::initializer_list<TraceArg> args = {}) {
    Append(TraceEventType::kInstant, name, args);
  }

  /// Records a counter sample (rendered as a time series by Perfetto).
  void Counter(const char* name, double value) {
    Append(TraceEventType::kCounter, name, {{"value", value}});
  }

  /// Nanoseconds since this tracer's construction.
  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// All events from all threads, sorted by timestamp (ties by thread).
  /// Safe to call concurrently with recording (see the class comment);
  /// complete only once recording threads have finished.
  std::vector<MergedTraceEvent> Merged() const AMDJ_EXCLUDES(mutex_);

  /// Total events recorded so far across all threads.
  size_t event_count() const AMDJ_EXCLUDES(mutex_);

  /// Number of threads that have recorded at least one event.
  size_t thread_count() const AMDJ_EXCLUDES(mutex_);

  /// Writes the merged events as Chrome trace_event JSON (an object with a
  /// "traceEvents" array), loadable in Perfetto / chrome://tracing.
  Status ExportChromeTrace(const std::string& path) const;

  /// Writes the merged events as JSONL: one self-contained JSON object per
  /// line ({"ts_ns","type","name","tid","args"}).
  Status ExportJsonl(const std::string& path) const;

 private:
  struct ThreadBuffer {
    uint32_t tid = 0;
    /// Uncontended except against a concurrent merge: the owning thread is
    /// the only appender (see the class comment on the recording model).
    mutable Mutex mu;
    std::vector<TraceEvent> events AMDJ_GUARDED_BY(mu);
  };

  void Append(TraceEventType type, const char* name,
              std::initializer_list<TraceArg> args);

  /// Registers the calling thread (slow path, takes the mutex).
  ThreadBuffer* RegisterThisThread() AMDJ_EXCLUDES(mutex_);

  const uint64_t id_;  ///< Process-unique, for the thread_local cache.
  const std::chrono::steady_clock::time_point epoch_;
  /// Guards registration (the buffer list). Lock order: mutex_ before any
  /// ThreadBuffer::mu (Merged); never the reverse.
  mutable Mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ AMDJ_GUARDED_BY(mutex_);
};

/// RAII span guard; a null tracer makes construction and destruction
/// no-ops (two predictable branches).
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, const char* name,
            std::initializer_list<TraceArg> args = {})
      : tracer_(tracer), name_(name) {
    if (tracer_ != nullptr) tracer_->Begin(name_, args);
  }
  ~TraceSpan() {
    if (tracer_ != nullptr) tracer_->End(name_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
};

}  // namespace amdj

/// Guarded tracer call: evaluates `tracer_expr` once; when non-null,
/// invokes `call` (a member-call expression) on it. Argument expressions
/// inside `call` are NOT evaluated when the tracer is null — the entire
/// instrumentation point costs one branch.
///
///   AMDJ_TRACE(options.tracer, Instant("queue_split", {{"kept", k}}));
#define AMDJ_TRACE(tracer_expr, call)              \
  do {                                             \
    ::amdj::Tracer* amdj_trace_t = (tracer_expr);  \
    if (amdj_trace_t != nullptr) amdj_trace_t->call; \
  } while (0)

#endif  // AMDJ_COMMON_TRACE_H_

#ifndef AMDJ_COMMON_RANDOM_H_
#define AMDJ_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace amdj {

/// Deterministic pseudo-random generator (xoshiro256**). All workload
/// generators and property tests use this so every run is reproducible from
/// a seed, independent of the standard library implementation.
class Random {
 public:
  /// Seeds the generator. Two Random instances with the same seed produce
  /// identical streams.
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal (Box-Muller).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential with the given rate lambda (> 0).
  double Exponential(double lambda);

  /// Zipf-distributed integer in [0, n) with skew parameter theta in (0, 1].
  /// Uses the classic CDF-inversion approximation (Gray et al.).
  uint64_t Zipf(uint64_t n, double theta);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t state_[4];
  // Cached second value from Box-Muller.
  double gaussian_spare_ = 0.0;
  bool has_gaussian_spare_ = false;
};

}  // namespace amdj

#endif  // AMDJ_COMMON_RANDOM_H_

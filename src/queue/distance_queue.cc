#include "queue/distance_queue.h"

#include <algorithm>

namespace amdj::queue {

DistanceQueue::DistanceQueue(size_t k, JoinStats* stats)
    : k_(k == 0 ? 1 : k), stats_(stats) {
  // k is caller-controlled and may be "effectively unbounded" (UINT64_MAX
  // to stream everything); the heap grows lazily, so cap the up-front
  // reservation instead of letting reserve() throw length_error.
  heap_.reserve(std::min(k_, size_t{1} << 20));
}

void DistanceQueue::Insert(geom::KeyVal key) {
  if (heap_.size() < k_) {
    if (stats_ != nullptr) ++stats_->distance_queue_insertions;
    heap_.push_back(key);
    std::push_heap(heap_.begin(), heap_.end());
    return;
  }
  if (key >= heap_.front()) return;  // not among the k smallest
  if (stats_ != nullptr) ++stats_->distance_queue_insertions;
  std::pop_heap(heap_.begin(), heap_.end());
  heap_.back() = key;
  std::push_heap(heap_.begin(), heap_.end());
}

}  // namespace amdj::queue

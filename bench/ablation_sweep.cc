// Ablation: decompose the optimized plane sweep into its two ingredients
// (Sections 3.2 and 3.3). Runs B-KDJ under all four sweep strategies and
// reports distance computations and response time, isolating how much of
// Figure 11's gain comes from axis selection vs direction selection.

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace amdj::bench {
namespace {

void Run(int argc, char** argv) {
  BenchEnv env = MakeTigerEnv(BenchConfig::FromArgs(argc, argv));
  PrintHeader("Ablation: sweeping axis vs direction selection (B-KDJ)",
              env);

  const std::vector<uint64_t> ks = {1000, 10000, 100000};
  const std::vector<std::pair<core::SweepStrategy, const char*>> strategies =
      {{core::SweepStrategy::kFixedXForward, "fixed x / forward"},
       {core::SweepStrategy::kAxisOnly, "axis only"},
       {core::SweepStrategy::kDirectionOnly, "direction only"},
       {core::SweepStrategy::kOptimized, "axis + direction"}};

  const std::vector<int> widths = {20, 18, 18, 18};
  std::vector<std::string> header = {"strategy"};
  for (uint64_t k : ks) header.push_back("k=" + FormatCount(k));
  PrintRow(header, widths);
  std::printf("(total distance computations: axis + real)\n");
  for (const auto& [strategy, name] : strategies) {
    std::vector<std::string> row = {name};
    for (uint64_t k : ks) {
      core::JoinOptions options = env.MakeJoinOptions();
      options.sweep = strategy;
      const RunResult run =
          RunKdjCold(env, core::KdjAlgorithm::kBKdj, k, options);
      row.push_back(FormatCount(run.stats.total_distance_computations()));
    }
    PrintRow(row, widths);
  }
}

}  // namespace
}  // namespace amdj::bench

int main(int argc, char** argv) {
  amdj::bench::Run(argc, argv);
  return 0;
}

#ifndef AMDJ_COMMON_LOGGING_H_
#define AMDJ_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace amdj {

/// Log severity levels, lowest to highest. kFatal messages abort the process
/// after printing (used by AMDJ_CHECK for broken internal invariants).
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kFatal = 4,
  kOff = 5,
};

/// Global minimum level; messages below it are dropped. Defaults to kWarn so
/// library users and tests are quiet unless they opt in. kFatal cannot be
/// suppressed.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style message collector; emits on destruction (and aborts if the
/// level is kFatal).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace amdj

#define AMDJ_LOG(level)                                           \
  if (::amdj::LogLevel::level < ::amdj::GetLogLevel()) {          \
  } else                                                          \
    ::amdj::internal_logging::LogMessage(::amdj::LogLevel::level, \
                                         __FILE__, __LINE__)

/// Invariant check that survives in release builds; aborts with a message on
/// failure. Use for internal invariants, not for user-input validation
/// (which returns Status).
#define AMDJ_CHECK(cond)                                                 \
  if (cond) {                                                            \
  } else                                                                 \
    ::amdj::internal_logging::LogMessage(::amdj::LogLevel::kFatal,       \
                                         __FILE__, __LINE__)             \
        << "CHECK failed: " #cond " "

#endif  // AMDJ_COMMON_LOGGING_H_

#include "core/amidj.h"

#include <algorithm>
#include <string>

#include "common/run_report.h"
#include "common/trace.h"
#include "core/expansion.h"
#include "core/plane_sweeper.h"

namespace amdj::core {

AmIdjCursor::AmIdjCursor(const rtree::RTree& r, const rtree::RTree& s,
                         const JoinOptions& options, JoinStats* stats)
    : r_(r),
      s_(s),
      options_(options),
      stats_(stats != nullptr ? stats : &local_stats_),
      fallback_estimator_(r.bounds(), r.size(), s.bounds(), s.size(),
                          options.metric),
      estimator_(options_.estimator != nullptr ? options_.estimator
                                                : &fallback_estimator_),
      queue_(MakeMainQueueOptions(r, s, options), stats_,
             MakeMainQueueCompare(options)) {}

void AmIdjCursor::PrefetchHint(uint64_t k) {
  target_hint_ = std::max(target_hint_, k);
}

void AmIdjCursor::ForceNextStageEdmax(geom::DistVal edmax) {
  forced_next_edmax_ = edmax;
}

Status AmIdjCursor::Prime() {
  primed_ = true;
  if (r_.size() == 0 || s_.size() == 0) {
    exhausted_ = true;
    return Status::OK();
  }
  stage_count_ = 1;
  const uint64_t k1 = std::max(options_.idj_initial_k, target_hint_);
  geom::DistVal first;  // distance space until the conversion below
  if (forced_next_edmax_.has_value()) {
    first = *forced_next_edmax_;
    forced_next_edmax_.reset();
  } else {
    first = InitialEdmaxEstimate(options_, *estimator_, k1);
  }
  if (options_.report != nullptr) {
    options_.report->BeginPhase("stage-1", *stats_);
    options_.report->OnCutoff("initial_edmax", first.raw(), 0);
  }
  AMDJ_TRACE(options_.tracer, Counter("edmax", first.raw()));
  AMDJ_TRACE(options_.tracer,
             Instant("stage_start",
                     {{"stage", 1.0}, {"edmax", first.raw()}}));
  edmax_ = geom::DistanceToKeyCutoff(first, options_.metric);
  return queue_.Push(MakePair(RootRef(r_), RootRef(s_), options_.metric));
}

Status AmIdjCursor::StartNewStage() {
  ++stage_count_;
  geom::DistVal next = geom::DistVal::Zero();
  if (forced_next_edmax_.has_value()) {
    next = *forced_next_edmax_;
    forced_next_edmax_.reset();
  } else {
    // Target roughly double the pairs produced so far (at least the hint
    // and at least one more initial batch), then re-estimate the cutoff
    // from the freshest ground truth: the produced_-th distance.
    const uint64_t k_next = std::max<uint64_t>(
        {target_hint_, produced_ * 2, produced_ + options_.idj_initial_k});
    const bool aggressive =
        options_.correction == CorrectionPolicy::kAggressive;
    if (options_.estimator != nullptr || produced_ == 0) {
      // Custom estimators define their own correction; the Eq.-4/5 policy
      // split below is specific to the uniform estimator.
      next = produced_ == 0 ? estimator_->EstimateDmax(k_next)
                            : estimator_->Correct(k_next, produced_,
                                                  last_distance_, aggressive);
    } else {
      switch (options_.correction) {
        case CorrectionPolicy::kArithmeticOnly:
          next = fallback_estimator_.ArithmeticCorrection(k_next, produced_,
                                                          last_distance_);
          break;
        case CorrectionPolicy::kGeometricOnly:
          next = fallback_estimator_.GeometricCorrection(k_next, produced_,
                                                         last_distance_);
          break;
        default:
          next = fallback_estimator_.Correct(k_next, produced_,
                                             last_distance_, aggressive);
          break;
      }
    }
  }
  // Safeguard: the cutoff must strictly grow or the stage cannot make
  // progress (e.g. heavily skewed data keeps the correction below the old
  // estimate). Applied in distance space — the estimator's native units —
  // before the key-space conversion; the key round-trips exactly
  // (sqrt(fl(d*d)) == d), so the growth schedule is unchanged.
  const geom::DistVal edmax_dist =
      geom::KeyToDistance(edmax_, options_.metric);
  if (next <= edmax_dist) {
    // Raw view: the 1.5x growth schedule is distance-space arithmetic.
    next = edmax_dist > geom::DistVal::Zero()
               ? geom::DistVal(edmax_dist.raw() * 1.5)
               : std::max(estimator_->EstimateDmax(1),
                          geom::DistVal(1e-12));
  }
  if (options_.report != nullptr) {
    options_.report->BeginPhase("stage-" + std::to_string(stage_count_),
                                *stats_);
    options_.report->OnCutoff("stage_edmax", next.raw(), produced_);
  }
  AMDJ_TRACE(options_.tracer, Counter("edmax", next.raw()));
  AMDJ_TRACE(options_.tracer,
             Instant("stage_start",
                     {{"stage", static_cast<double>(stage_count_)},
                      {"edmax", next.raw()},
                      {"produced", static_cast<double>(produced_)},
                      {"recovered",
                       static_cast<double>(compensation_.size())}}));
  edmax_ = geom::DistanceToKeyCutoff(next, options_.metric);
  for (const PairEntry& e : compensation_) {
    AMDJ_RETURN_IF_ERROR(queue_.Push(e));
  }
  compensation_.clear();
  return Status::OK();
}

Status AmIdjCursor::Expand(PairEntry c) {
  ++stats_->node_expansions;
  TraceSpan span(options_.tracer, "expand_sweep",
                 {{"r_level", static_cast<double>(c.r.level)},
                  {"s_level", static_cast<double>(c.s.level)},
                  {"key", c.key.raw()}});
  AMDJ_RETURN_IF_ERROR(ChildList(r_, c.r, options_.r_window, &left_));
  AMDJ_RETURN_IF_ERROR(ChildList(s_, c.s, options_.s_window, &right_));

  SweepPlan plan;
  geom::KeyVal prior{-1.0};
  if (c.WasExpanded()) {
    // Resume the earlier sweep: same axis and direction reproduce the
    // earlier enumeration order, so the examined region is exactly
    // { axis <= prior, real <= prior }.
    plan.axis = c.prior_axis;
    plan.dir = c.prior_dir == 0 ? geom::SweepDirection::kForward
                                : geom::SweepDirection::kBackward;
    prior = c.prior_cutoff;
  } else {
    plan = ChooseSweepPlan(c.r.rect, c.s.rect,
                           geom::KeyToDistance(edmax_, options_.metric),
                           options_.sweep);
  }

  Status sweep_status;
  geom::KeyVal axis_cutoff = edmax_;
  KeyedSweepSpec spec;
  spec.metric = options_.metric;
  spec.axis_cutoff_key = &axis_cutoff;
  // A child with key > eDmax is dropped but recoverable in a later stage;
  // the sweep records the drop in `dist_filtered`.
  spec.dist_cutoff_key = &edmax_;
  // Pairs in the previously examined region were already inserted (or
  // emitted) by the earlier stage; in the prefix axis <= prior, exactly
  // those with key <= prior. (In the suffix key >= axis > prior, so the
  // test never misfires.)
  spec.skip_dist_below_key = prior;
  const KeyedSweepResult sweep = PlaneSweepKeyed(
      left_, right_, plan, spec, stats_,
      [&](const PairRef& lref, const PairRef& rref, geom::KeyVal dist_key) {
        if (!sweep_status.ok()) return;
        if (options_.exclude_same_id && IsSelfPair(lref, rref)) return;
        PairEntry e;
        e.r = lref;
        e.s = rref;
        e.key = dist_key;
        sweep_status = queue_.Push(e);
        if (!sweep_status.ok()) {
          axis_cutoff = geom::KeyVal(-1.0);  // abort the sweep
        }
      });
  AMDJ_RETURN_IF_ERROR(sweep_status);

  if (!sweep.axis_covered || sweep.dist_filtered) {
    // The expansion skipped children that a later, larger cutoff could
    // admit: record it (with the cutoff that bounds the examined region)
    // for compensation. Fully covered pairs never re-enter — this is what
    // guarantees termination once eDmax exceeds the data diameter. The max
    // keeps the bookkeeping exact if a forced cutoff ever shrinks.
    c.prior_cutoff = std::max(edmax_, prior);
    c.prior_axis = static_cast<int8_t>(plan.axis);
    c.prior_dir =
        plan.dir == geom::SweepDirection::kForward ? int8_t{0} : int8_t{1};
    compensation_.push_back(c);
    ++stats_->compensation_queue_insertions;
  }
  return Status::OK();
}

Status AmIdjCursor::Next(ResultPair* out, bool* done) {
  *done = false;
  if (!primed_) AMDJ_RETURN_IF_ERROR(Prime());
  PairEntry c;
  while (!exhausted_) {
    if (queue_.Empty()) {
      if (compensation_.empty()) {
        exhausted_ = true;
        break;
      }
      AMDJ_RETURN_IF_ERROR(StartNewStage());
      continue;
    }
    AMDJ_RETURN_IF_ERROR(queue_.Pop(&c));
    if (c.key > edmax_) {
      // Everything within the current cutoff has been surfaced; grow it
      // and recover the aggressively pruned children before going deeper.
      // Checked before emission: an object pair beyond the cutoff must not
      // overtake pruned-but-closer pairs (can only arise under a forced,
      // shrinking cutoff schedule, but order is sacred).
      AMDJ_RETURN_IF_ERROR(queue_.Push(c));
      AMDJ_RETURN_IF_ERROR(StartNewStage());
      continue;
    }
    if (c.IsObjectPair()) {
      const geom::DistVal dist = geom::KeyToDistance(c.key, options_.metric);
      *out = {dist.raw(), c.r.id, c.s.id};
      last_distance_ = dist;
      ++produced_;
      ++stats_->pairs_produced;
      return Status::OK();
    }
    AMDJ_RETURN_IF_ERROR(Expand(c));
  }
  *done = true;
  return Status::OK();
}

}  // namespace amdj::core

#include "core/distance_join.h"

#include "common/run_report.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/amidj.h"
#include "core/amkdj.h"
#include "core/bkdj.h"
#include "core/hs_join.h"
#include "core/sj_sort.h"

namespace amdj::core {

namespace {

/// Attaches a JoinStats sink (and, when tracing, the tracer) to both
/// trees' buffer pools for a scope.
class StatsSinkGuard {
 public:
  StatsSinkGuard(const rtree::RTree& r, const rtree::RTree& s,
                 JoinStats* stats, Tracer* tracer = nullptr)
      : r_pool_(r.buffer_pool()), s_pool_(s.buffer_pool()) {
    r_pool_->SetStatsSink(stats);
    s_pool_->SetStatsSink(stats);
    r_pool_->SetTracer(tracer);
    s_pool_->SetTracer(tracer);
  }
  ~StatsSinkGuard() {
    r_pool_->SetStatsSink(nullptr);
    s_pool_->SetStatsSink(nullptr);
    r_pool_->SetTracer(nullptr);
    s_pool_->SetTracer(nullptr);
  }

  StatsSinkGuard(const StatsSinkGuard&) = delete;
  StatsSinkGuard& operator=(const StatsSinkGuard&) = delete;

 private:
  storage::BufferPool* r_pool_;
  storage::BufferPool* s_pool_;
};

/// Wraps an IDJ cursor: keeps the stats sink attached, measures CPU time
/// around every Next(), and finalizes an attached run report when the
/// cursor is destroyed (destroy the cursor before serializing the report).
class TimedCursor : public DistanceJoinCursor {
 public:
  TimedCursor(const rtree::RTree& r, const rtree::RTree& s, JoinStats* stats,
              const JoinOptions& options,
              std::unique_ptr<JoinStats> owned_stats,
              std::unique_ptr<DistanceJoinCursor> inner)
      : guard_(r, s, stats, options.tracer),
        stats_(stats),
        report_(options.report),
        owned_stats_(std::move(owned_stats)),
        inner_(std::move(inner)) {}

  ~TimedCursor() override {
    inner_.reset();  // quiesce the algorithm before reading stats
    if (report_ != nullptr) {
      report_->Finish(stats_ != nullptr ? *stats_ : JoinStats());
    }
  }

  Status Next(ResultPair* out, bool* done) override {
    Timer timer;
    const Status status = inner_->Next(out, done);
    if (stats_ != nullptr) stats_->cpu_seconds += timer.ElapsedSeconds();
    return status;
  }

  uint64_t produced() const override { return inner_->produced(); }
  void PrefetchHint(uint64_t k) override { inner_->PrefetchHint(k); }

  /// The wrapped cursor (for algorithm-specific knobs like
  /// AmIdjCursor::ForceNextStageEdmax).
  DistanceJoinCursor* inner() { return inner_.get(); }

 private:
  StatsSinkGuard guard_;
  JoinStats* stats_;
  RunReport* report_;
  /// Backing stats when the caller passed none but attached a report (the
  /// report's phase deltas and totals must read one shared counter block).
  std::unique_ptr<JoinStats> owned_stats_;
  std::unique_ptr<DistanceJoinCursor> inner_;
};

}  // namespace

const char* ToString(KdjAlgorithm a) {
  switch (a) {
    case KdjAlgorithm::kHsKdj:
      return "HS-KDJ";
    case KdjAlgorithm::kBKdj:
      return "B-KDJ";
    case KdjAlgorithm::kAmKdj:
      return "AM-KDJ";
    case KdjAlgorithm::kSjSort:
      return "SJ-SORT";
  }
  return "?";
}

const char* ToString(IdjAlgorithm a) {
  switch (a) {
    case IdjAlgorithm::kHsIdj:
      return "HS-IDJ";
    case IdjAlgorithm::kAmIdj:
      return "AM-IDJ";
  }
  return "?";
}

StatusOr<double> ComputeTrueDmax(const rtree::RTree& r, const rtree::RTree& s,
                                 uint64_t k, const JoinOptions& options) {
  JoinOptions oracle_options = options;
  oracle_options.forced_edmax.reset();
  // The oracle is bookkeeping, not part of the observed run: it must not
  // emit trace events or open report phases.
  oracle_options.tracer = nullptr;
  oracle_options.report = nullptr;
  auto pairs = AmKdj::Run(r, s, k, oracle_options, nullptr);
  if (!pairs.ok()) return pairs.status();
  if (pairs->empty()) return 0.0;
  return pairs->back().distance;
}

StatusOr<std::vector<ResultPair>> RunKDistanceJoin(const rtree::RTree& r,
                                                   const rtree::RTree& s,
                                                   uint64_t k,
                                                   KdjAlgorithm algorithm,
                                                   const JoinOptions& options,
                                                   JoinStats* stats) {
  double dmax = 0.0;
  if (algorithm == KdjAlgorithm::kSjSort) {
    // Oracle pre-pass, not charged to `stats` (favorable assumption).
    auto oracle = ComputeTrueDmax(r, s, k, options);
    if (!oracle.ok()) return oracle.status();
    dmax = *oracle;
  }

  // A report's phase deltas and totals must read one shared counter block;
  // back it locally when the caller attached a report without stats.
  JoinStats report_stats;
  if (stats == nullptr && options.report != nullptr) stats = &report_stats;
  if (options.report != nullptr) {
    options.report->SetMeta(ToString(algorithm), k);
  }

  StatsSinkGuard guard(r, s, stats, options.tracer);
  Timer timer;
  StatusOr<std::vector<ResultPair>> result =
      std::vector<ResultPair>();  // overwritten below
  {
    TraceSpan join_span(options.tracer, ToString(algorithm),
                        {{"k", static_cast<double>(k)}});
    switch (algorithm) {
      case KdjAlgorithm::kHsKdj:
        result = HsKdj::Run(r, s, k, options, stats);
        break;
      case KdjAlgorithm::kBKdj:
        result = BKdj::Run(r, s, k, options, stats);
        break;
      case KdjAlgorithm::kAmKdj:
        result = AmKdj::Run(r, s, k, options, stats);
        break;
      case KdjAlgorithm::kSjSort:
        result = SjSort::Run(r, s, k, dmax, options, stats);
        break;
    }
  }
  if (stats != nullptr) stats->cpu_seconds += timer.ElapsedSeconds();
  if (options.report != nullptr) options.report->Finish(*stats);
  return result;
}

StatusOr<std::unique_ptr<DistanceJoinCursor>> OpenIncrementalJoin(
    const rtree::RTree& r, const rtree::RTree& s, IdjAlgorithm algorithm,
    const JoinOptions& options, JoinStats* stats) {
  // Same shared-counter-block requirement as RunKDistanceJoin, but the
  // backing stats must live as long as the cursor.
  std::unique_ptr<JoinStats> owned_stats;
  if (stats == nullptr && options.report != nullptr) {
    owned_stats = std::make_unique<JoinStats>();
    stats = owned_stats.get();
  }
  if (options.report != nullptr) {
    options.report->SetMeta(ToString(algorithm), 0);
  }
  std::unique_ptr<DistanceJoinCursor> inner;
  switch (algorithm) {
    case IdjAlgorithm::kHsIdj:
      inner = std::make_unique<HsIdjCursor>(r, s, options, stats);
      break;
    case IdjAlgorithm::kAmIdj:
      inner = std::make_unique<AmIdjCursor>(r, s, options, stats);
      break;
  }
  return std::unique_ptr<DistanceJoinCursor>(
      new TimedCursor(r, s, stats, options, std::move(owned_stats),
                      std::move(inner)));
}

}  // namespace amdj::core

#include "rtree/node.h"

#include <cstring>

#include "common/logging.h"
#include "storage/page.h"

namespace amdj::rtree {

geom::Rect Node::ComputeMbr() const {
  geom::Rect mbr = geom::Rect::Empty();
  for (const Entry& e : entries) mbr.Extend(e.rect);
  return mbr;
}

void Node::Serialize(char* page) const {
  AMDJ_CHECK(entries.size() <= kMaxEntriesPerPage)
      << "node has " << entries.size() << " entries";
  std::memset(page, 0, storage::kPageSize);
  const uint16_t count = static_cast<uint16_t>(entries.size());
  std::memcpy(page, &level, sizeof(level));
  std::memcpy(page + 2, &count, sizeof(count));
  char* p = page + kNodeHeaderBytes;
  for (const Entry& e : entries) {
    std::memcpy(p, &e.rect.lo.x, sizeof(double));
    std::memcpy(p + 8, &e.rect.lo.y, sizeof(double));
    std::memcpy(p + 16, &e.rect.hi.x, sizeof(double));
    std::memcpy(p + 24, &e.rect.hi.y, sizeof(double));
    std::memcpy(p + 32, &e.id, sizeof(uint32_t));
    p += kEntryBytes;
  }
}

Status Node::Deserialize(const char* page, Node* out) {
  uint16_t count = 0;
  std::memcpy(&out->level, page, sizeof(out->level));
  std::memcpy(&count, page + 2, sizeof(count));
  if (count > kMaxEntriesPerPage) {
    return Status::Corruption("node entry count " + std::to_string(count) +
                              " exceeds page capacity");
  }
  out->entries.clear();
  out->entries.resize(count);
  const char* p = page + kNodeHeaderBytes;
  for (uint16_t i = 0; i < count; ++i) {
    Entry& e = out->entries[i];
    std::memcpy(&e.rect.lo.x, p, sizeof(double));
    std::memcpy(&e.rect.lo.y, p + 8, sizeof(double));
    std::memcpy(&e.rect.hi.x, p + 16, sizeof(double));
    std::memcpy(&e.rect.hi.y, p + 24, sizeof(double));
    std::memcpy(&e.id, p + 32, sizeof(uint32_t));
    p += kEntryBytes;
  }
  return Status::OK();
}

}  // namespace amdj::rtree

#ifndef AMDJ_CORE_SWEEP_PLAN_H_
#define AMDJ_CORE_SWEEP_PLAN_H_

#include "core/options.h"
#include "geom/sweep_geometry.h"

namespace amdj::core {

/// A plane sweep's axis and direction for one node-pair expansion.
struct SweepPlan {
  int axis = 0;
  geom::SweepDirection dir = geom::SweepDirection::kForward;
};

/// Chooses a sweep plan for expanding pair (r, s) under pruning cutoff
/// `cutoff`, per `strategy`:
///   - axis: the dimension with the smaller sweeping index (Section 3.2);
///     with an infinite cutoff (no pruning information yet) the dimension
///     with the wider combined extent is used, as every finite-index
///     argument degenerates.
///   - direction: Section 3.3's projected-interval rule.
SweepPlan ChooseSweepPlan(const geom::Rect& r, const geom::Rect& s,
                          geom::DistVal cutoff, SweepStrategy strategy);

}  // namespace amdj::core

#endif  // AMDJ_CORE_SWEEP_PLAN_H_

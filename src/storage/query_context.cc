#include "storage/query_context.h"

namespace amdj::storage {

namespace {
thread_local QueryAttribution* tls_attribution = nullptr;
}  // namespace

QueryAttributionScope::QueryAttributionScope(JoinStats* stats, Tracer* tracer)
    : previous_(tls_attribution) {
  attribution_.stats = stats;
  attribution_.tracer = tracer;
  tls_attribution = &attribution_;
}

QueryAttributionScope::~QueryAttributionScope() {
  tls_attribution = previous_;
}

QueryAttribution* QueryAttributionScope::Current() { return tls_attribution; }

}  // namespace amdj::storage

// Control source for the unit-safety negative-compile harness: exercises
// every operation the strong types are supposed to ALLOW. Must compile
// cleanly — if it does not, the type layer itself regressed and the
// harness fails the build, exactly like the thread-safety control.

#include <algorithm>

#include "geom/metric.h"
#include "geom/units.h"

namespace {

using amdj::geom::DistanceToKey;
using amdj::geom::DistanceToKeyCutoff;
using amdj::geom::DistVal;
using amdj::geom::KeyToDistance;
using amdj::geom::KeyVal;
using amdj::geom::Metric;

// Same-unit comparison, min/max, and equality are the whole point.
constexpr bool SameUnitOps() {
  constexpr KeyVal a(1.0);
  constexpr KeyVal b(2.0);
  constexpr DistVal x(3.0);
  constexpr DistVal y(4.0);
  static_assert(a < b && b >= a && a != b);
  static_assert(x < y && x == DistVal(3.0));
  static_assert(KeyVal::Zero() < KeyVal::Infinity());
  return true;
}
static_assert(SameUnitOps());

// Cross-unit traffic goes through the three sanctioned fences only.
double Fences() {
  const DistVal d(5.0);
  const KeyVal key = DistanceToKey(d, Metric::kL2);
  const KeyVal cutoff = DistanceToKeyCutoff(d, Metric::kL2);
  const DistVal back = KeyToDistance(key, Metric::kL2);
  // std::min/std::max work within one unit via the relational operators.
  const KeyVal lo = std::min(key, cutoff);
  return back.raw() + lo.raw();  // raw-view escape hatch stays available
}

}  // namespace

int main() {
  return Fences() > 0.0 ? 0 : 1;
}

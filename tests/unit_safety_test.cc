#include "geom/units.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "common/random.h"
#include "geom/metric.h"

namespace amdj::geom {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kDenormMin = std::numeric_limits<double>::denorm_min();

uint64_t Bits(double v) {
  uint64_t out;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

template <typename Wrapper>
uint64_t WrapperBits(Wrapper w) {
  static_assert(sizeof(Wrapper) == sizeof(uint64_t));
  uint64_t out;
  std::memcpy(&out, &w, sizeof(out));
  return out;
}

// The zero-overhead contract, at runtime: the wrapper's object
// representation IS the wrapped double's, so spill pages and SoA views
// written before the migration read back unchanged.
TEST(UnitSafetyTest, WrappersAreBitCompatibleWithDouble) {
  const double probes[] = {0.0,       -0.0,     1.0,   5.0, 1e300,
                           kDenormMin, 4.9e-310, kInf, std::nan("")};
  for (const double v : probes) {
    EXPECT_EQ(WrapperBits(KeyVal(v)), Bits(v));
    EXPECT_EQ(WrapperBits(DistVal(v)), Bits(v));
    EXPECT_EQ(Bits(KeyVal(v).raw()), Bits(v));
    EXPECT_EQ(Bits(DistVal(v).raw()), Bits(v));
  }
  // std::atomic over the 8-byte trivially copyable wrapper stays lock-free
  // exactly like std::atomic<double> (the shared-cutoff channel relies on
  // this).
  std::atomic<KeyVal> cutoff{KeyVal(3.0)};
  EXPECT_TRUE(cutoff.is_lock_free());
  EXPECT_EQ(cutoff.load().raw(), 3.0);
}

// Under L1/LInf key == distance, so the fences are exact identities for
// every representable value including zero, infinity and denormals.
TEST(UnitSafetyTest, IdentityMetricsRoundTripEveryValue) {
  const double probes[] = {0.0, kDenormMin, 4.9e-310, 1e-300,
                           1.0, 12345.678, 1e300,     kInf};
  for (const Metric m : {Metric::kL1, Metric::kLInf}) {
    for (const double v : probes) {
      EXPECT_EQ(Bits(KeyToDistance(DistanceToKey(DistVal(v), m), m).raw()),
                Bits(v));
      EXPECT_EQ(Bits(DistanceToKey(KeyToDistance(KeyVal(v), m), m).raw()),
                Bits(v));
      EXPECT_EQ(DistanceToKeyCutoff(DistVal(v), m), KeyVal(v));
    }
  }
}

// Classical IEEE-754 result: sqrt(fl(d*d)) == d whenever d*d neither
// overflows nor underflows. The L2 distance->key->distance round trip is
// therefore bit-exact across the whole normal working range.
TEST(UnitSafetyTest, L2RoundTripIsBitExactInNormalRange) {
  const double probes[] = {0.0, 1.0, 2.0, 3.5, 1e-150, 1e150, kInf};
  for (const double d : probes) {
    EXPECT_EQ(
        Bits(KeyToDistance(DistanceToKey(DistVal(d), Metric::kL2),
                           Metric::kL2)
                 .raw()),
        Bits(d))
        << "d=" << d;
  }
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    // log-uniform over the square-safe exponent range
    const double d = std::exp2(rng.Uniform(-500, 500));
    EXPECT_EQ(
        Bits(KeyToDistance(DistanceToKey(DistVal(d), Metric::kL2),
                           Metric::kL2)
                 .raw()),
        Bits(d))
        << "d=" << d;
  }
}

// The cutoff fence's defining property, exhaustively at the boundary:
//   key <= DistanceToKeyCutoff(d)  <=>  KeyToDistance(key) <= d
// checked on the ulp neighborhood of the cutoff itself, where plain
// DistanceToKey(d) = fl(d*d) can land one ulp off.
void CheckCutoffBoundary(double d, Metric m) {
  const KeyVal cutoff = DistanceToKeyCutoff(DistVal(d), m);
  double probe = cutoff.raw();
  for (int step = 0; step < 3; ++step) {
    for (const double k :
         {probe, std::nextafter(probe, kInf), std::nextafter(probe, 0.0)}) {
      if (k < 0.0) continue;
      const bool by_key = KeyVal(k) <= cutoff;
      const bool by_distance = KeyToDistance(KeyVal(k), m) <= DistVal(d);
      ASSERT_EQ(by_key, by_distance)
          << "d=" << d << " key=" << k << " metric=" << ToString(m);
    }
    probe = std::nextafter(probe, step % 2 ? 0.0 : kInf);
  }
}

TEST(UnitSafetyTest, CutoffBoundaryExactness) {
  const double probes[] = {0.0,  kDenormMin, 1e-200, 0.1, 1.0,
                           3.0, 1e10,       1e150,  kInf};
  for (const Metric m : {Metric::kL2, Metric::kL1, Metric::kLInf}) {
    for (const double d : probes) CheckCutoffBoundary(d, m);
  }
  Random rng(11);
  for (int i = 0; i < 2000; ++i) {
    CheckCutoffBoundary(std::exp2(rng.Uniform(-1000, 1000)), Metric::kL2);
  }
}

// Sanity on the sanctioned fences' monotonicity: a strictly smaller
// distance can never map to a strictly larger key (the pipeline's ranked
// order is defined by this).
TEST(UnitSafetyTest, FencesAreMonotone) {
  Random rng(13);
  for (const Metric m : {Metric::kL2, Metric::kL1, Metric::kLInf}) {
    for (int i = 0; i < 5000; ++i) {
      const double a = std::exp2(rng.Uniform(-100, 100));
      const double b = std::exp2(rng.Uniform(-100, 100));
      const DistVal lo(std::min(a, b));
      const DistVal hi(std::max(a, b));
      EXPECT_LE(DistanceToKey(lo, m), DistanceToKey(hi, m));
      EXPECT_LE(DistanceToKeyCutoff(lo, m), DistanceToKeyCutoff(hi, m));
    }
  }
}

}  // namespace
}  // namespace amdj::geom

#include "workload/generators.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace amdj::workload {

namespace {

double Clamp(double v, double lo, double hi) {
  return std::max(lo, std::min(hi, v));
}

geom::Rect ClampedSegmentMbr(double x0, double y0, double x1, double y1,
                             const geom::Rect& universe) {
  geom::Rect r(Clamp(std::min(x0, x1), universe.lo.x, universe.hi.x),
               Clamp(std::min(y0, y1), universe.lo.y, universe.hi.y),
               Clamp(std::max(x0, x1), universe.lo.x, universe.hi.x),
               Clamp(std::max(y0, y1), universe.lo.y, universe.hi.y));
  return r;
}

/// Appends per-segment MBRs of a random-walk polyline starting at (x, y)
/// with initial heading `angle`; the walk meanders by small heading
/// perturbations. Returns the number of segments emitted.
uint64_t EmitPolyline(Random& rng, double x, double y, double angle,
                      uint64_t segments, double mean_len, double wiggle,
                      const geom::Rect& universe,
                      std::vector<geom::Rect>* out) {
  uint64_t emitted = 0;
  for (uint64_t i = 0; i < segments; ++i) {
    const double len = rng.Exponential(1.0 / mean_len);
    const double nx = x + len * std::cos(angle);
    const double ny = y + len * std::sin(angle);
    out->push_back(ClampedSegmentMbr(x, y, nx, ny, universe));
    ++emitted;
    x = Clamp(nx, universe.lo.x, universe.hi.x);
    y = Clamp(ny, universe.lo.y, universe.hi.y);
    angle += rng.Gaussian(0.0, wiggle);
  }
  return emitted;
}

struct Town {
  double x;
  double y;
  double weight;  // population share
};

std::vector<Town> MakeTowns(Random& rng, uint32_t count,
                            const geom::Rect& universe) {
  std::vector<Town> towns(count);
  double total = 0.0;
  for (Town& t : towns) {
    t.x = rng.Uniform(universe.lo.x, universe.hi.x);
    t.y = rng.Uniform(universe.lo.y, universe.hi.y);
    // Pareto-ish population weights: a few big cities, many hamlets.
    t.weight = std::pow(rng.NextDouble(), 3.0) + 0.02;
    total += t.weight;
  }
  for (Town& t : towns) t.weight /= total;
  return towns;
}

const Town& PickTown(Random& rng, const std::vector<Town>& towns) {
  double u = rng.NextDouble();
  for (const Town& t : towns) {
    if (u < t.weight) return t;
    u -= t.weight;
  }
  return towns.back();
}

}  // namespace

Dataset UniformPoints(uint64_t n, uint64_t seed, const geom::Rect& universe) {
  Random rng(seed);
  Dataset ds;
  ds.name = "uniform-points";
  ds.objects.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const geom::Point p(rng.Uniform(universe.lo.x, universe.hi.x),
                        rng.Uniform(universe.lo.y, universe.hi.y));
    ds.objects.push_back(geom::Rect::FromPoint(p));
  }
  return ds;
}

Dataset UniformRects(uint64_t n, double mean_side, uint64_t seed,
                     const geom::Rect& universe) {
  Random rng(seed);
  Dataset ds;
  ds.name = "uniform-rects";
  ds.objects.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const double cx = rng.Uniform(universe.lo.x, universe.hi.x);
    const double cy = rng.Uniform(universe.lo.y, universe.hi.y);
    const double w = rng.Exponential(1.0 / mean_side) * 0.5;
    const double h = rng.Exponential(1.0 / mean_side) * 0.5;
    ds.objects.push_back(ClampedSegmentMbr(cx - w, cy - h, cx + w, cy + h,
                                           universe));
  }
  return ds;
}

Dataset GaussianClusters(uint64_t n, uint32_t clusters, double sigma_frac,
                         uint64_t seed, const geom::Rect& universe) {
  Random rng(seed);
  Dataset ds;
  ds.name = "gaussian-clusters";
  ds.objects.reserve(n);
  std::vector<geom::Point> centers(std::max<uint32_t>(1, clusters));
  for (auto& c : centers) {
    c = geom::Point(rng.Uniform(universe.lo.x, universe.hi.x),
                    rng.Uniform(universe.lo.y, universe.hi.y));
  }
  const double sigma = sigma_frac * universe.Side(0);
  for (uint64_t i = 0; i < n; ++i) {
    const geom::Point& c = centers[rng.UniformInt(centers.size())];
    const double x = Clamp(rng.Gaussian(c.x, sigma), universe.lo.x,
                           universe.hi.x);
    const double y = Clamp(rng.Gaussian(c.y, sigma), universe.lo.y,
                           universe.hi.y);
    ds.objects.push_back(geom::Rect::FromPoint(geom::Point(x, y)));
  }
  return ds;
}

Dataset ZipfSkewedPoints(uint64_t n, double theta, uint64_t seed,
                         const geom::Rect& universe) {
  Random rng(seed);
  Dataset ds;
  ds.name = "zipf-points";
  ds.objects.reserve(n);
  constexpr uint64_t kGrid = 4096;
  for (uint64_t i = 0; i < n; ++i) {
    // Zipf-distributed grid cell + uniform jitter inside the cell.
    const double gx = static_cast<double>(rng.Zipf(kGrid, theta));
    const double gy = static_cast<double>(rng.Zipf(kGrid, theta));
    const double x = universe.lo.x + (gx + rng.NextDouble()) / kGrid *
                                         universe.Side(0);
    const double y = universe.lo.y + (gy + rng.NextDouble()) / kGrid *
                                         universe.Side(1);
    ds.objects.push_back(geom::Rect::FromPoint(
        geom::Point(Clamp(x, universe.lo.x, universe.hi.x),
                    Clamp(y, universe.lo.y, universe.hi.y))));
  }
  return ds;
}

Dataset TigerStreets(const TigerSynthOptions& options) {
  const geom::Rect universe(0, 0, kUniverseSize, kUniverseSize);
  Random rng(options.seed);
  Dataset ds;
  ds.name = "tiger-streets";
  ds.objects.reserve(options.street_segments);
  const std::vector<Town> towns = MakeTowns(rng, options.towns, universe);

  const uint64_t rural_target = static_cast<uint64_t>(
      options.rural_fraction * static_cast<double>(options.street_segments));
  // Urban roads: polylines radiating from towns, denser in heavy towns.
  while (ds.objects.size() <
         options.street_segments - rural_target) {
    const Town& t = PickTown(rng, towns);
    // Start near the town center; big towns spread wider.
    const double spread =
        (0.01 + 0.08 * t.weight * towns.size()) * kUniverseSize;
    const double x = rng.Gaussian(t.x, spread);
    const double y = rng.Gaussian(t.y, spread);
    const uint64_t segs = 4 + rng.UniformInt(uint64_t{28});
    EmitPolyline(rng, Clamp(x, 0, kUniverseSize), Clamp(y, 0, kUniverseSize),
                 rng.Uniform(0, 2 * M_PI), segs,
                 options.mean_segment_length, 0.35, universe, &ds.objects);
  }
  // Rural mesh: long straight-ish highways crossing the universe.
  while (ds.objects.size() < options.street_segments) {
    const double x = rng.Uniform(0, kUniverseSize);
    const double y = rng.Uniform(0, kUniverseSize);
    const uint64_t segs = 8 + rng.UniformInt(uint64_t{56});
    EmitPolyline(rng, x, y, rng.Uniform(0, 2 * M_PI), segs,
                 options.mean_segment_length * 2.5, 0.08, universe,
                 &ds.objects);
  }
  ds.objects.resize(options.street_segments);  // trim polyline overshoot
  return ds;
}

Dataset TigerHydro(const TigerSynthOptions& options) {
  const geom::Rect universe(0, 0, kUniverseSize, kUniverseSize);
  // Offset seed: hydro correlates with the towns (same layout) but has its
  // own object stream.
  Random town_rng(options.seed);
  const std::vector<Town> towns = MakeTowns(town_rng, options.towns,
                                            universe);
  Random rng(options.seed ^ 0xA5A5A5A5ull);
  Dataset ds;
  ds.name = "tiger-hydro";
  ds.objects.reserve(options.hydro_objects);

  // Rivers: long meanders passing near towns (settlements grow on rivers).
  const uint64_t river_target = options.hydro_objects * 6 / 10;
  while (ds.objects.size() < river_target) {
    const Town& t = PickTown(rng, towns);
    const double x = rng.Gaussian(t.x, 0.05 * kUniverseSize);
    const double y = rng.Gaussian(t.y, 0.05 * kUniverseSize);
    const uint64_t segs = 30 + rng.UniformInt(uint64_t{170});
    EmitPolyline(rng, Clamp(x, 0, kUniverseSize), Clamp(y, 0, kUniverseSize),
                 rng.Uniform(0, 2 * M_PI), segs,
                 options.mean_segment_length * 1.8, 0.15, universe,
                 &ds.objects);
  }
  // Lakes and ponds: compact blobs of small rectangles.
  while (ds.objects.size() < options.hydro_objects) {
    const bool near_town = rng.Bernoulli(0.5);
    double cx, cy;
    if (near_town) {
      const Town& t = PickTown(rng, towns);
      cx = rng.Gaussian(t.x, 0.04 * kUniverseSize);
      cy = rng.Gaussian(t.y, 0.04 * kUniverseSize);
    } else {
      cx = rng.Uniform(0, kUniverseSize);
      cy = rng.Uniform(0, kUniverseSize);
    }
    const uint64_t pieces = 1 + rng.UniformInt(uint64_t{12});
    const double lake_radius = rng.Exponential(1.0 / 1500.0);
    for (uint64_t p = 0;
         p < pieces && ds.objects.size() < options.hydro_objects; ++p) {
      const double px = rng.Gaussian(cx, lake_radius);
      const double py = rng.Gaussian(cy, lake_radius);
      const double w = rng.Exponential(1.0 / 400.0) * 0.5;
      const double h = rng.Exponential(1.0 / 400.0) * 0.5;
      ds.objects.push_back(
          ClampedSegmentMbr(px - w, py - h, px + w, py + h, universe));
    }
  }
  ds.objects.resize(options.hydro_objects);
  return ds;
}

}  // namespace amdj::workload

file(REMOVE_RECURSE
  "CMakeFiles/fig11_sweep_opt.dir/fig11_sweep_opt.cc.o"
  "CMakeFiles/fig11_sweep_opt.dir/fig11_sweep_opt.cc.o.d"
  "fig11_sweep_opt"
  "fig11_sweep_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_sweep_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#ifndef AMDJ_CORE_OPTIONS_H_
#define AMDJ_CORE_OPTIONS_H_

#include <atomic>
#include <cstdint>
#include <optional>

#include "core/cutoff_estimator.h"
#include "geom/metric.h"
#include "geom/units.h"
#include "storage/disk_manager.h"

namespace amdj {
class Tracer;      // common/trace.h
class RunReport;   // common/run_report.h
class ThreadPool;  // common/thread_pool.h
}  // namespace amdj

namespace amdj::core {

/// Plane-sweep optimization level (Sections 3.2/3.3). The ablation benches
/// compare these; production use is kOptimized.
enum class SweepStrategy : uint8_t {
  /// Choose sweeping axis by minimum sweeping index and direction by
  /// projected-interval comparison (the paper's full optimization).
  kOptimized = 0,
  /// Fixed x-axis, forward direction (the paper's Figure 11 baseline).
  kFixedXForward = 1,
  /// Optimized axis, fixed forward direction.
  kAxisOnly = 2,
  /// Fixed x-axis, optimized direction.
  kDirectionOnly = 3,
};

/// What enters the distance queue (footnote 1 of the paper).
enum class DistanceQueuePolicy : uint8_t {
  /// Insert real distances of object pairs only (the paper's choice).
  kObjectPairsOnly = 0,
  /// Additionally insert max-distances of node pairs (the alternative the
  /// footnote argues against; kept for the ablation bench).
  kAllPairs = 1,
};

/// Main-queue tie handling for equal-distance entries. Spatial data has
/// huge zero-distance plateaus (every intersecting pair), so this choice
/// dominates small-k behaviour: kObjectsFirst surfaces results without
/// expanding the whole plateau; kDistanceOnly (ids decide, kind-blind)
/// models a 1998-era implementation and reproduces the paper's far more
/// expensive HS baseline (bench/ablation_tie_break).
enum class TieBreak : uint8_t {
  kObjectsFirst = 0,
  kDistanceOnly = 1,
};

/// How the two runtime eDmax corrections (Eq. 4 arithmetic, Eq. 5
/// geometric) are combined (Section 4.3.2).
enum class CorrectionPolicy : uint8_t {
  /// min(arithmetic, geometric): "err on the aggressive side".
  kAggressive = 0,
  /// max(arithmetic, geometric): conservative.
  kConservative = 1,
  kArithmeticOnly = 2,
  kGeometricOnly = 3,
};

/// Knobs shared by every distance-join algorithm.
/// Receiver for candidate result keys (see
/// JoinOptions::shared_cutoff_sink). Implementations must be
/// thread-safe: concurrent joins share one sink.
class CutoffKeySink {
 public:
  virtual ~CutoffKeySink() = default;
  virtual void OnResultKey(geom::KeyVal key) = 0;
};

struct JoinOptions {
  /// In-memory budget of the main queue (the paper's "in-memory portion of
  /// a main queue", 512 KB in most experiments).
  size_t queue_memory_bytes = 512 * 1024;

  /// Spill target for the main queue's disk segments and the external
  /// sorter. nullptr keeps queues entirely in memory (useful for tests).
  storage::DiskManager* queue_disk = nullptr;

  /// Thread pool for asynchronous main-queue spill I/O: segment page
  /// writes are double-buffered onto this pool and the next swap-in
  /// segment is prefetched while the front drains. nullptr (the default)
  /// keeps spill I/O synchronous on the join thread. Not owned; must
  /// outlive the join. MUST NOT be a pool whose workers drive queries into
  /// this join (e.g. the JoinService query pool): a spill write blocking
  /// on a pool made entirely of query workers deadlocks. `queue_disk`
  /// must be internally thread-safe when set (the repo's disk managers
  /// are).
  ThreadPool* spill_io_pool = nullptr;

  /// Plane-sweep optimization level.
  SweepStrategy sweep = SweepStrategy::kOptimized;

  /// Distance-queue content policy (KDJ algorithms only).
  DistanceQueuePolicy distance_queue_policy =
      DistanceQueuePolicy::kObjectPairsOnly;

  /// Overrides the Eq.-3 initial eDmax estimate (Figure 14 forces
  /// multiples of the true Dmax through this). Distance space — the
  /// algorithms fence it into key space via geom::DistanceToKeyCutoff.
  std::optional<geom::DistVal> forced_edmax;

  /// Learned upper-bound hint on the initial eDmax estimate, in distance
  /// space. The adaptive algorithms min() it into the estimator's initial
  /// estimate (see InitialEdmaxEstimate below); the service's shared-work
  /// layer sets it from exact Dmax values observed by completed joins on
  /// the same tree pair and options. Exact-safe by construction: eDmax is
  /// only ever a *staging* cutoff — an estimate that is too small triggers
  /// the compensation machinery, never a dropped result — so a hint can
  /// change how much work stage one does but not what the join returns.
  /// Ignored when forced_edmax is set (the figure benches force exact
  /// multiples and must not be second-guessed).
  std::optional<geom::DistVal> edmax_seed;

  /// First-stage target cardinality for AM-IDJ when no hint is given.
  uint64_t idj_initial_k = 4096;

  /// How runtime corrections combine (AM-IDJ stage transitions).
  CorrectionPolicy correction = CorrectionPolicy::kConservative;

  /// Use the Eq.-3 boundary formula to predetermine hybrid-queue segment
  /// boundaries (Section 4.4). Disabled = adaptive median splits only.
  bool predetermined_queue_boundaries = true;

  /// Distance metric for pair ranking. Axis-distance pruning and Lemma 1
  /// are exact under every supported Lp metric.
  geom::Metric metric = geom::Metric::kL2;

  /// Self-join mode: suppress pairs whose two sides are the same object id
  /// (useful when joining a tree with itself — otherwise the k results are
  /// dominated by the zero-distance diagonal).
  bool exclude_same_id = false;

  /// Custom eDmax estimator for the adaptive algorithms (e.g.
  /// HistogramEstimator for skewed data). Not owned; must outlive the
  /// join. nullptr = the paper's uniform Eq.-3 estimator.
  const CutoffEstimator* estimator = nullptr;

  /// Main-queue tie handling (see TieBreak).
  TieBreak tie_break = TieBreak::kObjectsFirst;

  /// AM-KDJ only: apply Section 4.3.2's runtime correction. When the
  /// aggressive stage exhausts its cutoff with fewer than k results, the
  /// estimate is re-corrected from the results so far (Eq. 4/5 or the
  /// custom estimator) and the stage *resumes* under the grown cutoff
  /// (recovering the compensation queue first), instead of falling
  /// straight back to qDmax-only processing. Off by default — the paper's
  /// AM-KDJ experiments use the initial estimate alone (Section 5.2).
  bool kdj_adaptive_correction = false;

  /// Intra-query parallelism for B-KDJ and AM-KDJ: number of worker
  /// threads expanding node pairs concurrently. 1 (the default) runs the
  /// paper's sequential algorithms byte-for-byte. Values > 1 switch those
  /// two algorithms to batched rounds: up to `parallelism * batch_factor`
  /// node pairs are popped per round, expanded and plane-swept on a
  /// common/thread_pool.h pool under a shared atomic cutoff, and their
  /// surviving candidates merged back on the coordinating thread — the
  /// result list is exactly (values and order) the sequential one; only
  /// work counters may differ slightly. Ignored by the HS baselines, the
  /// IDJ cursors, SJ-SORT, and AM-KDJ's kdj_adaptive_correction variant,
  /// which stay sequential.
  uint32_t parallelism = 1;

  /// Round size multiplier for the parallel executor: each batched round
  /// pops up to `parallelism * batch_factor` node pairs. Larger batches
  /// amortize coordination and overlap merging with expansion, at the cost
  /// of a slightly staler cutoff (never wrong — the cutoff is an upper
  /// bound — just admitting a few more candidates).
  uint32_t batch_factor = 4;

  /// Structured tracer (common/trace.h). nullptr (the default) disables
  /// every instrumentation point — one predicted branch each, and the join
  /// behaves byte-for-byte like an uninstrumented build. Not owned; must
  /// outlive the join; export only after the join call has returned.
  Tracer* tracer = nullptr;

  /// Per-phase run report aggregator (common/run_report.h). nullptr (the
  /// default) disables it. Not owned; must outlive the join (for the IDJ
  /// cursors: outlive the cursor, whose destructor finalizes the report).
  RunReport* report = nullptr;

  /// External cutoff for sharded execution (core/shard_executor.h): a
  /// *key-space* upper bound on the k-th final distance, maintained by a
  /// coordinator outside this join and only ever shrinking. When set, the
  /// KDJ algorithms min() it into every qDmax consultation (pruning node
  /// pairs and tightening sweeps early) and the sequential loops stop
  /// outright once the queue frontier passes it — everything later is
  /// provably outside the global top-k this join feeds into. Stale reads
  /// are safe for the same reason as the PR 1 cutoff protocol: the bound
  /// is monotone non-increasing, so a late-observed value only admits
  /// extra candidates, never drops one. Not owned; must outlive the join.
  const std::atomic<geom::KeyVal>* shared_cutoff_key = nullptr;

  /// Optional write side of the shared bound: when set, the KDJ
  /// algorithms CAS-min their *local* qDmax key into it on every cutoff
  /// consultation. Sound at every instant: a local qDmax upper-bounds
  /// this join's k-th result key, which — as the k-th of a subset of the
  /// global result multiset — upper-bounds the global k-th the
  /// coordinator cares about. Values only ever shrink (AtomicMinKey), so
  /// a transiently loosening local cutoff (kAllPairs certificate
  /// revocation) never un-tightens the shared bound. Typically points at
  /// the same atomic as shared_cutoff_key, turning the sharded
  /// executor's between-pairs fold into live feedback: concurrently
  /// running shard pairs tighten each other mid-flight. Not owned; must
  /// outlive the join.
  std::atomic<geom::KeyVal>* shared_cutoff_publish = nullptr;

  /// Optional stream of this join's candidate *result* keys to a
  /// coordinator. When set, every object-pair distance key entering the
  /// qDmax tracker is also forwarded here (thread-safety is the sink's
  /// problem). The k-th smallest of any set of real pair distances is an
  /// upper bound on the global k-th, so a sink pooling keys across
  /// concurrent shard-pair joins can maintain a shared cutoff that goes
  /// finite long before any single pair has seen k results — the piece
  /// shared_cutoff_publish alone cannot provide when per-pair result
  /// counts stay below k. Not owned; must outlive the join.
  CutoffKeySink* shared_cutoff_sink = nullptr;

  /// Spatial restriction: only R objects intersecting r_window (and S
  /// objects intersecting s_window) participate. Unset = no restriction.
  /// Filtering happens during node expansion, so subtrees outside a
  /// window are never visited ("find the nearest hotel-restaurant pairs
  /// downtown").
  std::optional<geom::Rect> r_window;
  std::optional<geom::Rect> s_window;
};

/// Initial eDmax estimate (distance space) for the adaptive algorithms:
/// forced_edmax when set (figure benches), otherwise the estimator's Eq.-3
/// estimate min'd with any learned edmax_seed. The seed is an upper bound
/// on the true Dmax(k) observed from a completed join, so min() can only
/// tighten the staging estimate — it never invalidates pruning, and an
/// over-tight seed is recovered by the compensation machinery exactly like
/// an over-tight Eq.-3 estimate.
inline geom::DistVal InitialEdmaxEstimate(const JoinOptions& options,
                                          const CutoffEstimator& estimator,
                                          uint64_t k) {
  if (options.forced_edmax) return *options.forced_edmax;
  geom::DistVal estimate = estimator.EstimateDmax(k);
  if (options.edmax_seed && *options.edmax_seed < estimate) {
    estimate = *options.edmax_seed;
  }
  return estimate;
}

/// Monotone minimum on a shared cutoff atomic (relaxed: the protocol
/// tolerates stale reads, see shared_cutoff_key). Every writer of a
/// shared cutoff must go through this — a plain store could raise a
/// bound another thread already tightened.
inline void AtomicMinKey(std::atomic<geom::KeyVal>* target,
                         geom::KeyVal key) {
  geom::KeyVal current = target->load(std::memory_order_relaxed);
  while (key < current &&
         !target->compare_exchange_weak(current, key,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace amdj::core

#endif  // AMDJ_CORE_OPTIONS_H_

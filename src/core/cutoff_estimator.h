#ifndef AMDJ_CORE_CUTOFF_ESTIMATOR_H_
#define AMDJ_CORE_CUTOFF_ESTIMATOR_H_

#include <cstdint>
#include <functional>

#include "geom/units.h"

namespace amdj::core {

/// Strategy interface for estimating the maximum distance eDmax of a
/// stopping cardinality k (Section 4.3). The paper ships the uniform
/// assumption (DmaxEstimator, Eq. 3/4/5) and names non-uniform estimation
/// as future work — HistogramEstimator implements that extension. Pass an
/// instance via JoinOptions::estimator; it must outlive the join.
class CutoffEstimator {
 public:
  virtual ~CutoffEstimator() = default;

  /// Estimated distance of the k-th closest pair. Distance space
  /// (geom::DistVal): estimators reason about true distances; callers
  /// fence into key space at the cutoff boundary.
  virtual geom::DistVal EstimateDmax(uint64_t k) const = 0;

  /// Re-estimates for target k after k0 <= k pairs have been produced and
  /// the k0-th distance is known to be dmax_k0 (Section 4.3.2).
  /// `aggressive` errs low (risking compensation), otherwise high.
  virtual geom::DistVal Correct(uint64_t k, uint64_t k0,
                                geom::DistVal dmax_k0,
                                bool aggressive) const = 0;

  /// c -> estimated distance of the c-th closest pair, used as hybrid-queue
  /// segment boundaries (Section 4.4). The default adapter captures `this`:
  /// the estimator must outlive the returned function.
  virtual std::function<geom::DistVal(uint64_t)> BoundaryFn() const {
    return [this](uint64_t c) { return EstimateDmax(c); };
  }
};

}  // namespace amdj::core

#endif  // AMDJ_CORE_CUTOFF_ESTIMATOR_H_

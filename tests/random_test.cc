#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace amdj {
namespace {

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, UniformRespectsBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.Uniform(-5.0, 12.5);
    EXPECT_GE(d, -5.0);
    EXPECT_LT(d, 12.5);
  }
}

TEST(RandomTest, UniformIntRespectsBounds) {
  Random rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{3}, int64_t{9});
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
    saw_lo |= (v == 3);
    saw_hi |= (v == 9);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, UniformMeanIsCentered) {
  Random rng(99);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RandomTest, GaussianMomentsAreSane) {
  Random rng(5);
  constexpr int kN = 200000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sumsq += g * g;
  }
  const double mean = sum / kN;
  const double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RandomTest, GaussianWithParams) {
  Random rng(5);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(RandomTest, ExponentialMeanMatchesRate) {
  Random rng(11);
  constexpr int kN = 200000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double e = rng.Exponential(0.25);
    EXPECT_GE(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(RandomTest, ZipfInRangeAndSkewed) {
  Random rng(13);
  constexpr uint64_t kN = 1000;
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t z = rng.Zipf(kN, 0.8);
    ASSERT_LT(z, kN);
    ++counts[z];
  }
  // Rank 0 must dominate the tail decisively.
  const int tail =
      std::accumulate(counts.begin() + 500, counts.end(), 0) / 500;
  EXPECT_GT(counts[0], 20 * std::max(tail, 1));
}

TEST(RandomTest, BernoulliFrequency) {
  Random rng(17);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RandomTest, ShufflePreservesElements) {
  Random rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace amdj

#ifndef AMDJ_CORE_PLANE_SWEEPER_H_
#define AMDJ_CORE_PLANE_SWEEPER_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "core/pair_entry.h"
#include "core/sweep_plan.h"
#include "geom/kernels.h"
#include "geom/metric.h"
#include "geom/sweep_geometry.h"

namespace amdj::core {

/// Candidates per kernel batch: the cutoff-independent arithmetic (axis
/// gaps, distance keys) of up to this many candidates is precomputed with
/// one SIMD kernel call, then a scalar loop applies the cutoff tests —
/// which must re-read the (possibly shrinking) cutoff per candidate and
/// count per candidate, exactly like the pre-vectorized code.
inline constexpr std::size_t kSweepChunk = 64;

/// One side of a sweep in structure-of-arrays layout, sorted by
/// (sweep key, id): the sweep scans `key_lo` linearly (cache-dense, no
/// PairRef pointer chasing) and the kernels read the original coordinate
/// arrays. Buffers only ever grow, so a reused side stops allocating after
/// warm-up.
struct SweepSide {
  std::vector<double> key_lo;  ///< Sweep-axis lo (negated when backward).
  std::vector<double> key_hi;  ///< Sweep-axis hi (negated when backward).
  std::vector<double> lo0, hi0, lo1, hi1;  ///< Original rect coordinates.
  std::vector<const PairRef*> refs;        ///< Back-pointers, sweep order.
  std::size_t size = 0;

  /// Fills the arrays from `items` for a sweep along `axis`; a backward
  /// sweep is a forward sweep in negated coordinates. Ties on the sweep
  /// key order by id, as the sweep always has.
  void Build(const std::vector<PairRef>& items, int axis, bool forward);

 private:
  struct SortRec {
    double key;
    uint32_t id;
    uint32_t idx;
  };
  std::vector<SortRec> sort_scratch_;
};

/// The pooled per-thread sweep state: both sides plus the per-chunk kernel
/// output buffers.
struct SweepArena {
  SweepSide left;
  SweepSide right;
  double axis_gap[kSweepChunk];
  double dist_key[kSweepChunk];
};

/// The calling thread's arena. Each BatchExpander worker (and the
/// coordinator) reuses its own across every task it runs, so steady-state
/// sweeps allocate nothing.
SweepArena* ThreadSweepArena();

/// Bidirectional plane sweep over two child lists (the heart of Algorithm 1
/// and its aggressive/compensating variants): repeatedly take the not-yet-
/// processed item with the minimum sweep coordinate as the *anchor* and scan
/// the remaining items of the *other* list in sweep order, stopping as soon
/// as the axis separation exceeds `*cutoff` — so only O(|L| + |R|) pairs are
/// touched for a tight cutoff instead of the full Cartesian product.
///
/// `*cutoff` is re-read before every comparison, so a callback that shrinks
/// the cutoff immediately tightens the remaining sweep. Axis separations
/// here are in plain coordinate units (not metric keys); the join hot path
/// uses PlaneSweepKeyed below instead.
///
/// The callback is invoked as cb(left_ref, right_ref, axis_distance) with
/// axis_distance non-decreasing per anchor; it computes the real distance
/// and applies the algorithm-specific filters. Every unordered pair within
/// the cutoff is reported exactly once.
///
/// Axis-distance computations are counted into `stats` (Figure 11's metric).
///
/// Returns true if the sweep *axis-covered* every pair: no anchor's scan was
/// cut short by the cutoff while candidates remained.
template <typename Callback>
bool PlaneSweep(const std::vector<PairRef>& left,
                const std::vector<PairRef>& right, const SweepPlan& plan,
                const double* cutoff, JoinStats* stats, Callback&& cb) {
  SweepArena* arena = ThreadSweepArena();
  const bool forward = plan.dir == geom::SweepDirection::kForward;
  arena->left.Build(left, plan.axis, forward);
  arena->right.Build(right, plan.axis, forward);
  const SweepSide& lhs = arena->left;
  const SweepSide& rhs = arena->right;

  std::size_t il = 0;
  std::size_t ir = 0;
  bool covered = true;
  while (il < lhs.size && ir < rhs.size) {
    const bool anchor_is_left = lhs.key_lo[il] <= rhs.key_lo[ir];
    const SweepSide& aside = anchor_is_left ? lhs : rhs;
    const SweepSide& other = anchor_is_left ? rhs : lhs;
    const std::size_t ai = anchor_is_left ? il++ : ir++;
    const double anchor_hi = aside.key_hi[ai];
    const PairRef& aref = *aside.refs[ai];
    std::size_t j = anchor_is_left ? ir : il;
    bool cut = false;
    while (j < other.size && !cut) {
      const std::size_t n = std::min(kSweepChunk, other.size - j);
      geom::BatchAxisDistance(other.key_lo.data() + j, anchor_hi, n,
                              arena->axis_gap);
      for (std::size_t t = 0; t < n; ++t) {
        if (stats != nullptr) ++stats->axis_distance_computations;
        const double axis_dist = arena->axis_gap[t];
        if (axis_dist > *cutoff) {
          covered = false;
          cut = true;  // keys ascend: nothing further fits this anchor
          break;
        }
        if (anchor_is_left) {
          cb(aref, *other.refs[j + t], axis_dist);
        } else {
          cb(*other.refs[j + t], aref, axis_dist);
        }
      }
      j += n;
    }
  }
  return covered;
}

/// Cutoffs and skip thresholds of a keyed sweep, all in metric-key space
/// (geom::KeyVal — squared distances under L2). Strongly typed: wiring a
/// distance-space cutoff in here no longer compiles; fence through
/// geom::DistanceToKeyCutoff first.
struct KeyedSweepSpec {
  geom::Metric metric = geom::Metric::kL2;
  /// Lemma-1 prune: a candidate whose axis-separation key exceeds this
  /// ends its anchor's scan. Re-read before every comparison, so a
  /// callback (or another thread through an atomic-backed copy the caller
  /// refreshes) can tighten an in-flight sweep.
  const geom::KeyVal* axis_cutoff_key = nullptr;
  /// Distance filter: survivors with key above this are dropped (counted,
  /// not reported). Re-read before every filter test; often aliases
  /// axis_cutoff_key (B-KDJ) but is distinct under a static axis stage
  /// (AM-KDJ sweeps with eDmax while filtering against qDmax).
  const geom::KeyVal* dist_cutoff_key = nullptr;
  /// Candidates with axis key <= this were examined by an earlier stage:
  /// skipped before the distance computation (and its counter), exactly
  /// complementing that stage's axis prune. kNoSkip = no prior stage.
  geom::KeyVal skip_axis_below_key = kNoSkip;
  /// Candidates with distance key <= this were reported by an earlier
  /// stage: skipped after the distance computation (AM-IDJ's re-expansion
  /// guard, which cuts on the real distance, not the axis).
  geom::KeyVal skip_dist_below_key = kNoSkip;

  /// Sentinel below every real key (keys are >= 0): skips nothing.
  static constexpr geom::KeyVal kNoSkip{-1.0};
};

struct KeyedSweepResult {
  /// False if some anchor's scan was cut short by the axis cutoff while
  /// candidates remained (the expansion may have pruned pairs — the
  /// adaptive algorithms then queue the pair for compensation).
  bool axis_covered = true;
  /// True if some candidate passed the axis test but exceeded the distance
  /// cutoff (AM-IDJ must also compensate those).
  bool dist_filtered = false;
};

/// The keyed, kernel-batched sweep the join algorithms run on: same anchor
/// discipline as PlaneSweep, but candidate runs are evaluated through the
/// batch kernels (axis gaps and, under L2, full MinDist keys per chunk) and
/// the callback is invoked only for survivors, as cb(lref, rref, dist_key)
/// with dist_key a geom::KeyVal.
///
/// Exact per-candidate decision sequence (counters identical to the
/// pre-keyed scalar code):
///   1. count one axis-distance computation
///   2. axis_key > *axis_cutoff_key        -> end anchor scan (not covered)
///   3. axis_key <= skip_axis_below_key    -> skip (earlier stage saw it)
///   4. count one real-distance computation
///   5. dist_key <= skip_dist_below_key    -> skip (earlier stage kept it)
///   6. dist_key > *dist_cutoff_key        -> drop (dist_filtered)
///   7. cb(lref, rref, dist_key)
/// Steps 2 and 6 re-read their cutoffs per candidate; the chunked kernel
/// precomputation covers only cutoff-independent arithmetic, so batching
/// cannot change which candidates survive.
template <typename Callback>
KeyedSweepResult PlaneSweepKeyed(const std::vector<PairRef>& left,
                                 const std::vector<PairRef>& right,
                                 const SweepPlan& plan,
                                 const KeyedSweepSpec& spec, JoinStats* stats,
                                 Callback&& cb) {
  SweepArena* arena = ThreadSweepArena();
  const bool forward = plan.dir == geom::SweepDirection::kForward;
  arena->left.Build(left, plan.axis, forward);
  arena->right.Build(right, plan.axis, forward);
  const SweepSide& lhs = arena->left;
  const SweepSide& rhs = arena->right;
  const bool l2 = spec.metric == geom::Metric::kL2;

  KeyedSweepResult result;
  std::size_t il = 0;
  std::size_t ir = 0;
  while (il < lhs.size && ir < rhs.size) {
    const bool anchor_is_left = lhs.key_lo[il] <= rhs.key_lo[ir];
    const SweepSide& aside = anchor_is_left ? lhs : rhs;
    const SweepSide& other = anchor_is_left ? rhs : lhs;
    const std::size_t ai = anchor_is_left ? il++ : ir++;
    const double anchor_hi = aside.key_hi[ai];
    const PairRef& aref = *aside.refs[ai];
    const geom::Rect& arect = aref.rect;
    std::size_t j = anchor_is_left ? ir : il;
    bool cut = false;
    while (j < other.size && !cut) {
      const std::size_t n = std::min(kSweepChunk, other.size - j);
      geom::BatchAxisDistance(other.key_lo.data() + j, anchor_hi, n,
                              arena->axis_gap);
      if (l2) {
        // Distance keys are only ever read for candidates that pass step 2,
        // and cutoffs shrink monotonically — so the prefix passing against
        // the cutoff's *current* value bounds every candidate that can
        // still need one. Under a tight cutoff this collapses the MinDist
        // batch to the few candidates actually scanned. Raw view: the
        // kernel scratch arrays are untyped doubles (geom/units.h).
        const double axis_cut_now = spec.axis_cutoff_key->raw();
        std::size_t m = 0;
        if (arena->axis_gap[n - 1] * arena->axis_gap[n - 1] <=
            axis_cut_now) {
          m = n;  // gaps ascend within a chunk: whole chunk passes
        } else {
          while (m < n && arena->axis_gap[m] * arena->axis_gap[m] <=
                              axis_cut_now) {
            ++m;
          }
        }
        if (m > 0) {
          geom::BatchMinDistSquared(
              other.lo0.data() + j, other.hi0.data() + j,
              other.lo1.data() + j, other.hi1.data() + j, arect.lo.x,
              arect.hi.x, arect.lo.y, arect.hi.y, m, arena->dist_key);
        }
      }
      for (std::size_t t = 0; t < n; ++t) {
        if (stats != nullptr) ++stats->axis_distance_computations;
        const double gap = arena->axis_gap[t];
        const geom::KeyVal axis_key = geom::AxisGapToKey(gap, spec.metric);
        if (axis_key > *spec.axis_cutoff_key) {
          result.axis_covered = false;
          cut = true;  // keys ascend: nothing further fits this anchor
          break;
        }
        if (axis_key <= spec.skip_axis_below_key) continue;
        if (stats != nullptr) ++stats->real_distance_computations;
        // Raw view: arena->dist_key holds the kernels' untyped output.
        const geom::KeyVal dist_key =
            l2 ? geom::KeyVal(arena->dist_key[t])
               : geom::MinDistanceKey(arect, other.refs[j + t]->rect,
                                      spec.metric);
        if (dist_key <= spec.skip_dist_below_key) continue;
        if (dist_key > *spec.dist_cutoff_key) {
          result.dist_filtered = true;
          continue;
        }
        if (anchor_is_left) {
          cb(aref, *other.refs[j + t], dist_key);
        } else {
          cb(*other.refs[j + t], aref, dist_key);
        }
      }
      j += n;
    }
  }
  return result;
}

}  // namespace amdj::core

#endif  // AMDJ_CORE_PLANE_SWEEPER_H_

#ifndef AMDJ_CORE_OPTIONS_H_
#define AMDJ_CORE_OPTIONS_H_

#include <cstdint>
#include <optional>

#include "core/cutoff_estimator.h"
#include "geom/metric.h"
#include "storage/disk_manager.h"

namespace amdj {
class Tracer;      // common/trace.h
class RunReport;   // common/run_report.h
class ThreadPool;  // common/thread_pool.h
}  // namespace amdj

namespace amdj::core {

/// Plane-sweep optimization level (Sections 3.2/3.3). The ablation benches
/// compare these; production use is kOptimized.
enum class SweepStrategy : uint8_t {
  /// Choose sweeping axis by minimum sweeping index and direction by
  /// projected-interval comparison (the paper's full optimization).
  kOptimized = 0,
  /// Fixed x-axis, forward direction (the paper's Figure 11 baseline).
  kFixedXForward = 1,
  /// Optimized axis, fixed forward direction.
  kAxisOnly = 2,
  /// Fixed x-axis, optimized direction.
  kDirectionOnly = 3,
};

/// What enters the distance queue (footnote 1 of the paper).
enum class DistanceQueuePolicy : uint8_t {
  /// Insert real distances of object pairs only (the paper's choice).
  kObjectPairsOnly = 0,
  /// Additionally insert max-distances of node pairs (the alternative the
  /// footnote argues against; kept for the ablation bench).
  kAllPairs = 1,
};

/// Main-queue tie handling for equal-distance entries. Spatial data has
/// huge zero-distance plateaus (every intersecting pair), so this choice
/// dominates small-k behaviour: kObjectsFirst surfaces results without
/// expanding the whole plateau; kDistanceOnly (ids decide, kind-blind)
/// models a 1998-era implementation and reproduces the paper's far more
/// expensive HS baseline (bench/ablation_tie_break).
enum class TieBreak : uint8_t {
  kObjectsFirst = 0,
  kDistanceOnly = 1,
};

/// How the two runtime eDmax corrections (Eq. 4 arithmetic, Eq. 5
/// geometric) are combined (Section 4.3.2).
enum class CorrectionPolicy : uint8_t {
  /// min(arithmetic, geometric): "err on the aggressive side".
  kAggressive = 0,
  /// max(arithmetic, geometric): conservative.
  kConservative = 1,
  kArithmeticOnly = 2,
  kGeometricOnly = 3,
};

/// Knobs shared by every distance-join algorithm.
struct JoinOptions {
  /// In-memory budget of the main queue (the paper's "in-memory portion of
  /// a main queue", 512 KB in most experiments).
  size_t queue_memory_bytes = 512 * 1024;

  /// Spill target for the main queue's disk segments and the external
  /// sorter. nullptr keeps queues entirely in memory (useful for tests).
  storage::DiskManager* queue_disk = nullptr;

  /// Thread pool for asynchronous main-queue spill I/O: segment page
  /// writes are double-buffered onto this pool and the next swap-in
  /// segment is prefetched while the front drains. nullptr (the default)
  /// keeps spill I/O synchronous on the join thread. Not owned; must
  /// outlive the join. MUST NOT be a pool whose workers drive queries into
  /// this join (e.g. the JoinService query pool): a spill write blocking
  /// on a pool made entirely of query workers deadlocks. `queue_disk`
  /// must be internally thread-safe when set (the repo's disk managers
  /// are).
  ThreadPool* spill_io_pool = nullptr;

  /// Plane-sweep optimization level.
  SweepStrategy sweep = SweepStrategy::kOptimized;

  /// Distance-queue content policy (KDJ algorithms only).
  DistanceQueuePolicy distance_queue_policy =
      DistanceQueuePolicy::kObjectPairsOnly;

  /// Overrides the Eq.-3 initial eDmax estimate (Figure 14 forces
  /// multiples of the true Dmax through this).
  std::optional<double> forced_edmax;

  /// First-stage target cardinality for AM-IDJ when no hint is given.
  uint64_t idj_initial_k = 4096;

  /// How runtime corrections combine (AM-IDJ stage transitions).
  CorrectionPolicy correction = CorrectionPolicy::kConservative;

  /// Use the Eq.-3 boundary formula to predetermine hybrid-queue segment
  /// boundaries (Section 4.4). Disabled = adaptive median splits only.
  bool predetermined_queue_boundaries = true;

  /// Distance metric for pair ranking. Axis-distance pruning and Lemma 1
  /// are exact under every supported Lp metric.
  geom::Metric metric = geom::Metric::kL2;

  /// Self-join mode: suppress pairs whose two sides are the same object id
  /// (useful when joining a tree with itself — otherwise the k results are
  /// dominated by the zero-distance diagonal).
  bool exclude_same_id = false;

  /// Custom eDmax estimator for the adaptive algorithms (e.g.
  /// HistogramEstimator for skewed data). Not owned; must outlive the
  /// join. nullptr = the paper's uniform Eq.-3 estimator.
  const CutoffEstimator* estimator = nullptr;

  /// Main-queue tie handling (see TieBreak).
  TieBreak tie_break = TieBreak::kObjectsFirst;

  /// AM-KDJ only: apply Section 4.3.2's runtime correction. When the
  /// aggressive stage exhausts its cutoff with fewer than k results, the
  /// estimate is re-corrected from the results so far (Eq. 4/5 or the
  /// custom estimator) and the stage *resumes* under the grown cutoff
  /// (recovering the compensation queue first), instead of falling
  /// straight back to qDmax-only processing. Off by default — the paper's
  /// AM-KDJ experiments use the initial estimate alone (Section 5.2).
  bool kdj_adaptive_correction = false;

  /// Intra-query parallelism for B-KDJ and AM-KDJ: number of worker
  /// threads expanding node pairs concurrently. 1 (the default) runs the
  /// paper's sequential algorithms byte-for-byte. Values > 1 switch those
  /// two algorithms to batched rounds: up to `parallelism * batch_factor`
  /// node pairs are popped per round, expanded and plane-swept on a
  /// common/thread_pool.h pool under a shared atomic cutoff, and their
  /// surviving candidates merged back on the coordinating thread — the
  /// result list is exactly (values and order) the sequential one; only
  /// work counters may differ slightly. Ignored by the HS baselines, the
  /// IDJ cursors, SJ-SORT, and AM-KDJ's kdj_adaptive_correction variant,
  /// which stay sequential.
  uint32_t parallelism = 1;

  /// Round size multiplier for the parallel executor: each batched round
  /// pops up to `parallelism * batch_factor` node pairs. Larger batches
  /// amortize coordination and overlap merging with expansion, at the cost
  /// of a slightly staler cutoff (never wrong — the cutoff is an upper
  /// bound — just admitting a few more candidates).
  uint32_t batch_factor = 4;

  /// Structured tracer (common/trace.h). nullptr (the default) disables
  /// every instrumentation point — one predicted branch each, and the join
  /// behaves byte-for-byte like an uninstrumented build. Not owned; must
  /// outlive the join; export only after the join call has returned.
  Tracer* tracer = nullptr;

  /// Per-phase run report aggregator (common/run_report.h). nullptr (the
  /// default) disables it. Not owned; must outlive the join (for the IDJ
  /// cursors: outlive the cursor, whose destructor finalizes the report).
  RunReport* report = nullptr;

  /// Spatial restriction: only R objects intersecting r_window (and S
  /// objects intersecting s_window) participate. Unset = no restriction.
  /// Filtering happens during node expansion, so subtrees outside a
  /// window are never visited ("find the nearest hotel-restaurant pairs
  /// downtown").
  std::optional<geom::Rect> r_window;
  std::optional<geom::Rect> s_window;
};

}  // namespace amdj::core

#endif  // AMDJ_CORE_OPTIONS_H_

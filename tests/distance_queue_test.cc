#include "queue/distance_queue.h"

#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "geom/units.h"

namespace amdj::queue {
namespace {

using geom::KeyVal;

constexpr KeyVal kInf = KeyVal::Infinity();

TEST(DistanceQueueTest, CutoffIsInfinityUntilFull) {
  DistanceQueue q(3);
  EXPECT_EQ(q.CutoffKey(), kInf);
  q.Insert(KeyVal(5.0));
  q.Insert(KeyVal(1.0));
  EXPECT_EQ(q.CutoffKey(), kInf);
  q.Insert(KeyVal(3.0));
  EXPECT_EQ(q.CutoffKey(), KeyVal(5.0));
}

TEST(DistanceQueueTest, KeepsKSmallest) {
  DistanceQueue q(3);
  for (double d : {9.0, 7.0, 5.0, 3.0, 1.0, 8.0}) q.Insert(KeyVal(d));
  // Smallest three: 1, 3, 5 -> cutoff 5.
  EXPECT_EQ(q.CutoffKey(), KeyVal(5.0));
  EXPECT_EQ(q.size(), 3u);
}

TEST(DistanceQueueTest, IgnoresDistancesBeyondCutoff) {
  DistanceQueue q(2);
  q.Insert(KeyVal(1.0));
  q.Insert(KeyVal(2.0));
  q.Insert(KeyVal(10.0));
  EXPECT_EQ(q.CutoffKey(), KeyVal(2.0));
  q.Insert(KeyVal(2.0));  // equal to cutoff: not an improvement
  EXPECT_EQ(q.CutoffKey(), KeyVal(2.0));
  q.Insert(KeyVal(1.5));
  EXPECT_EQ(q.CutoffKey(), KeyVal(1.5));
}

TEST(DistanceQueueTest, KOfOneTracksMinimum) {
  DistanceQueue q(1);
  EXPECT_EQ(q.CutoffKey(), kInf);
  q.Insert(KeyVal(4.0));
  EXPECT_EQ(q.CutoffKey(), KeyVal(4.0));
  q.Insert(KeyVal(6.0));
  EXPECT_EQ(q.CutoffKey(), KeyVal(4.0));
  q.Insert(KeyVal(2.0));
  EXPECT_EQ(q.CutoffKey(), KeyVal(2.0));
}

TEST(DistanceQueueTest, ZeroKIsTreatedAsOne) {
  DistanceQueue q(0);
  EXPECT_EQ(q.capacity(), 1u);
}

TEST(DistanceQueueTest, CountsInsertionsInStats) {
  JoinStats stats;
  DistanceQueue q(2, &stats);
  q.Insert(KeyVal(5.0));
  q.Insert(KeyVal(3.0));
  q.Insert(KeyVal(10.0));  // rejected: no insertion counted
  q.Insert(KeyVal(1.0));   // accepted
  EXPECT_EQ(stats.distance_queue_insertions, 3u);
}

TEST(DistanceQueueTest, MatchesSortReferenceRandomized) {
  Random rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t k = 1 + rng.UniformInt(uint64_t{50});
    DistanceQueue q(k);
    std::vector<double> all;
    const size_t n = 1 + rng.UniformInt(uint64_t{500});
    for (size_t i = 0; i < n; ++i) {
      const double d = rng.Uniform(0, 1000);
      all.push_back(d);
      q.Insert(KeyVal(d));
    }
    std::sort(all.begin(), all.end());
    const KeyVal expected =
        all.size() >= k ? KeyVal(all[k - 1]) : kInf;
    EXPECT_EQ(q.CutoffKey(), expected) << "k=" << k << " n=" << n;
  }
}

}  // namespace
}  // namespace amdj::queue

#include "common/stats.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <type_traits>

namespace amdj {

// Field-count tripwire: 27 uint64_t counters + 2 double times. If this
// fires you added (or removed) a JoinStats field — update
// ForEachJoinStatsField in stats.h and then this constant; every derived
// serialization (ToString/ToJson/Add/deltas) follows automatically.
static_assert(sizeof(JoinStats) == 27 * sizeof(uint64_t) + 2 * sizeof(double),
              "JoinStats changed: update ForEachJoinStatsField (stats.h) "
              "and this size check");

namespace {

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void JoinStats::Add(const JoinStats& other) {
  ForEachJoinStatsFieldPair(
      *this, other,
      [](const char*, auto& dst, const auto& src, StatFieldKind kind) {
        using Field = std::decay_t<decltype(dst)>;
        if (kind == StatFieldKind::kMax) {
          dst = std::max<Field>(dst, src);
        } else {
          dst += src;
        }
      });
}

void JoinStats::Reset() { *this = JoinStats(); }

JoinStats SubtractJoinStats(const JoinStats& end, const JoinStats& begin) {
  JoinStats delta = end;
  ForEachJoinStatsFieldPair(
      delta, begin,
      [](const char*, auto& dst, const auto& src, StatFieldKind kind) {
        if (kind == StatFieldKind::kMax) return;  // keep the end value
        dst -= src;
      });
  return delta;
}

std::string JoinStats::ToString() const {
  std::ostringstream os;
  os << "JoinStats{\n";
  ForEachJoinStatsField(
      *this, [&os](const char* name, const auto& field, StatFieldKind) {
        os << "  " << name << ": " << field << "\n";
      });
  os << "}";
  return os.str();
}

std::string JoinStats::ToJson() const {
  std::string out = "{";
  bool first = true;
  ForEachJoinStatsField(*this, [&out, &first](const char* name,
                                              const auto& field,
                                              StatFieldKind) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    using Field = std::decay_t<decltype(field)>;
    if constexpr (std::is_same_v<Field, double>) {
      out += FormatDouble(field);
    } else {
      out += std::to_string(field);
    }
  });
  out += ",\"total_distance_computations\":";
  out += std::to_string(total_distance_computations());
  out += ",\"response_seconds\":";
  out += FormatDouble(response_seconds());
  out += '}';
  return out;
}

}  // namespace amdj

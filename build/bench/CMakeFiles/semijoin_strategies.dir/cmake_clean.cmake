file(REMOVE_RECURSE
  "CMakeFiles/semijoin_strategies.dir/semijoin_strategies.cc.o"
  "CMakeFiles/semijoin_strategies.dir/semijoin_strategies.cc.o.d"
  "semijoin_strategies"
  "semijoin_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semijoin_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for amdj.
# This may be replaced when dependencies are built.

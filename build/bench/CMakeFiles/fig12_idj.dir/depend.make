# Empty dependencies file for fig12_idj.
# This may be replaced when dependencies are built.

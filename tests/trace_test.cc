// Tracer unit tests (span nesting, multi-thread merge, the AMDJ_TRACE
// null-tracer no-evaluation guarantee, exporter output) plus the
// observability determinism guard: attaching a tracer and a run report to
// a join must not change a single emitted pair or work counter.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <type_traits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/run_report.h"
#include "common/stats.h"
#include "common/trace.h"
#include "core/distance_join.h"
#include "test_util.h"
#include "workload/generators.h"

namespace amdj {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TracerTest, RecordsSpansInstantsAndCounters) {
  Tracer tracer;
  {
    TraceSpan outer(&tracer, "outer", {{"k", 10.0}});
    tracer.Instant("checkpoint", {{"value", 1.0}});
    { TraceSpan inner(&tracer, "inner"); }
    tracer.Counter("depth", 3.0);
  }
  const std::vector<MergedTraceEvent> events = tracer.Merged();
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(tracer.event_count(), 6u);
  EXPECT_EQ(tracer.thread_count(), 1u);

  // Single thread: merge preserves recording order; spans nest.
  EXPECT_EQ(events[0].event.type, TraceEventType::kBegin);
  EXPECT_STREQ(events[0].event.name, "outer");
  ASSERT_EQ(events[0].event.arg_count, 1);
  EXPECT_STREQ(events[0].event.args[0].name, "k");
  EXPECT_EQ(events[0].event.args[0].value, 10.0);
  EXPECT_EQ(events[1].event.type, TraceEventType::kInstant);
  EXPECT_EQ(events[2].event.type, TraceEventType::kBegin);
  EXPECT_STREQ(events[2].event.name, "inner");
  EXPECT_EQ(events[3].event.type, TraceEventType::kEnd);
  EXPECT_STREQ(events[3].event.name, "inner");
  EXPECT_EQ(events[4].event.type, TraceEventType::kCounter);
  EXPECT_EQ(events[4].event.args[0].value, 3.0);
  EXPECT_EQ(events[5].event.type, TraceEventType::kEnd);
  EXPECT_STREQ(events[5].event.name, "outer");

  // Timestamps are monotone non-decreasing in the merged stream.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].event.ts_ns, events[i - 1].event.ts_ns);
  }
}

TEST(TracerTest, MergesEventsFromMultipleThreads) {
  Tracer tracer;
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        TraceSpan span(&tracer, "work");
        tracer.Instant("tick", {{"i", static_cast<double>(i)}});
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(tracer.thread_count(), static_cast<size_t>(kThreads));
  const std::vector<MergedTraceEvent> events = tracer.Merged();
  ASSERT_EQ(events.size(),
            static_cast<size_t>(kThreads) * kEventsPerThread * 3);
  std::vector<int> per_tid(kThreads, 0);
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(events[i].event.ts_ns, events[i - 1].event.ts_ns);
    }
    ASSERT_LT(events[i].tid, static_cast<uint32_t>(kThreads));
    ++per_tid[events[i].tid];
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_tid[t], kEventsPerThread * 3) << "tid " << t;
  }
}

TEST(TracerTest, NullTracerDoesNotEvaluateArguments) {
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 1.0;
  };
  Tracer* tracer = nullptr;
  AMDJ_TRACE(tracer, Instant("never", {{"v", expensive()}}));
  AMDJ_TRACE(tracer, Counter("never", expensive()));
  EXPECT_EQ(evaluations, 0);

  Tracer real;
  AMDJ_TRACE(&real, Instant("once", {{"v", expensive()}}));
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(real.event_count(), 1u);
}

TEST(TracerTest, ChromeExportIsWellFormedTraceEventJson) {
  Tracer tracer;
  {
    TraceSpan span(&tracer, "join", {{"k", 5.0}});
    tracer.Instant("split");
    tracer.Counter("ratio", 0.5);
  }
  const std::string path = TempPath("trace_chrome.json");
  ASSERT_TRUE(tracer.ExportChromeTrace(path).ok());
  const std::string json = ReadFileOrDie(path);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  // Instants need a scope field to render in Perfetto.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  std::remove(path.c_str());
}

TEST(TracerTest, JsonlExportHasOneObjectPerEvent) {
  Tracer tracer;
  tracer.Instant("a");
  tracer.Instant("b", {{"x", 2.0}});
  const std::string path = TempPath("trace.jsonl");
  ASSERT_TRUE(tracer.ExportJsonl(path).ok());
  const std::string text = ReadFileOrDie(path);
  size_t lines = 0;
  for (char c : text) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(text.find("\"name\":\"a\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"b\""), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Determinism guard: tracer/report attached vs detached.

struct ObservedRun {
  std::vector<core::ResultPair> results;
  JoinStats stats;
};

ObservedRun RunOnce(core::KdjAlgorithm algorithm, Tracer* tracer,
                    RunReport* report) {
  workload::TigerSynthOptions wopts;
  wopts.street_segments = 3000;
  wopts.hydro_objects = 900;
  wopts.seed = 77;
  test::JoinFixture f = test::MakeFixture(workload::TigerStreets(wopts),
                                          workload::TigerHydro(wopts), 16,
                                          128);
  core::JoinOptions options;
  options.queue_disk = f.queue_disk.get();
  options.queue_memory_bytes = 16 * 1024;  // force queue splits/swap-ins
  options.tracer = tracer;
  options.report = report;
  ObservedRun run;
  auto result = core::RunKDistanceJoin(*f.r, *f.s, 1500, algorithm, options,
                                       &run.stats);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  run.results = std::move(*result);
  return run;
}

class TracedDeterminismTest
    : public ::testing::TestWithParam<core::KdjAlgorithm> {};

TEST_P(TracedDeterminismTest, TracedRunMatchesUntracedByteForByte) {
  const ObservedRun untraced = RunOnce(GetParam(), nullptr, nullptr);
  Tracer tracer;
  RunReport report;
  const ObservedRun traced = RunOnce(GetParam(), &tracer, &report);

  ASSERT_EQ(traced.results.size(), untraced.results.size());
  for (size_t i = 0; i < traced.results.size(); ++i) {
    ASSERT_EQ(traced.results[i], untraced.results[i]) << "rank " << i;
  }
  // Every counter (not the measured times) must be identical.
  ForEachJoinStatsFieldPair(
      traced.stats, untraced.stats,
      [](const char* name, const auto& t, const auto& u, StatFieldKind) {
        using Field = std::decay_t<decltype(t)>;
        if constexpr (!std::is_same_v<Field, double>) {
          EXPECT_EQ(t, u) << name << " diverged under tracing";
        }
      });
  // And the observers actually observed the run.
  EXPECT_GT(tracer.event_count(), 0u);
  ASSERT_FALSE(report.phases().empty());
  EXPECT_EQ(report.totals().pairs_produced, traced.stats.pairs_produced);
}

INSTANTIATE_TEST_SUITE_P(AllKdj, TracedDeterminismTest,
                         ::testing::Values(core::KdjAlgorithm::kHsKdj,
                                           core::KdjAlgorithm::kBKdj,
                                           core::KdjAlgorithm::kAmKdj,
                                           core::KdjAlgorithm::kSjSort),
                         [](const auto& info) {
                           std::string n = core::ToString(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

TEST(TracedDeterminismTest, ReportPhaseDeltasSumToRunTotals) {
  Tracer tracer;
  RunReport report;
  const ObservedRun run =
      RunOnce(core::KdjAlgorithm::kAmKdj, &tracer, &report);
  ASSERT_GE(report.phases().size(), 1u);  // aggressive [+ compensation]
  JoinStats summed;
  for (const RunReport::Phase& p : report.phases()) summed.Add(p.delta);
  ForEachJoinStatsFieldPair(
      summed, report.totals(),
      [](const char* name, const auto& s, const auto& t, StatFieldKind kind) {
        using Field = std::decay_t<decltype(s)>;
        if constexpr (!std::is_same_v<Field, double>) {
          if (kind == StatFieldKind::kMax) {
            EXPECT_EQ(s, t) << name;
          } else {
            EXPECT_EQ(s, t) << name << ": phase deltas must sum to totals";
          }
        }
      });
  EXPECT_EQ(report.totals().pairs_produced, run.stats.pairs_produced);
  // The trajectory bridges the estimate to the exact result.
  ASSERT_GE(report.cutoff_trajectory().size(), 2u);
  EXPECT_EQ(report.cutoff_trajectory().front().label, "initial_edmax");
  EXPECT_EQ(report.cutoff_trajectory().back().label, "final_dmax");
  EXPECT_NEAR(report.cutoff_trajectory().back().distance,
              run.results.back().distance, 1e-9);
}

// Regression: Merged()/event_count() used to walk each thread's event
// buffer with no synchronisation while the owning thread was still
// appending — a data race on the vector (reallocation under the reader's
// feet), surfaced by the thread-safety annotations. Each buffer is now
// snapshotted under its per-buffer mutex, so a merge taken mid-recording
// must be a consistent, monotonically growing, well-formed prefix.
TEST(TracerTest, MergeIsSafeConcurrentWithRecording) {
  Tracer tracer;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 2000;  // 3 events per span
  std::atomic<int> running{kThreads};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, &running] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span(&tracer, "work");
        tracer.Counter("progress", static_cast<double>(i));
      }
      running.fetch_sub(1, std::memory_order_release);
    });
  }

  size_t previous = 0;
  while (running.load(std::memory_order_acquire) > 0) {
    const std::vector<MergedTraceEvent> events = tracer.Merged();
    EXPECT_GE(events.size(), previous) << "merge lost recorded events";
    previous = events.size();
    EXPECT_GE(tracer.event_count(), events.size());
  }
  for (std::thread& t : threads) t.join();

  // Quiescent: the merge is complete and every event is well-formed.
  const std::vector<MergedTraceEvent> events = tracer.Merged();
  ASSERT_EQ(events.size(),
            static_cast<size_t>(kThreads) * kSpansPerThread * 3);
  EXPECT_EQ(tracer.event_count(), events.size());
  EXPECT_EQ(tracer.thread_count(), static_cast<size_t>(kThreads));
  for (const MergedTraceEvent& e : events) {
    ASSERT_NE(e.event.name, nullptr);
    ASSERT_LT(e.tid, static_cast<uint32_t>(kThreads));
  }
}

}  // namespace
}  // namespace amdj

#ifndef AMDJ_GEOM_SWEEP_GEOMETRY_H_
#define AMDJ_GEOM_SWEEP_GEOMETRY_H_

#include "geom/rect.h"

namespace amdj::geom {

/// Exact value of
///     integral_{t = a_lo}^{a_hi}  | [t, t + window] intersect [b_lo, b_hi] | dt
/// The integrand is piecewise linear in t, so the integral is evaluated
/// analytically (trapezoids between slope breakpoints). Requires
/// a_lo <= a_hi, b_lo <= b_hi, window >= 0.
double IntegrateWindowOverlap(double a_lo, double a_hi, double window,
                              double b_lo, double b_hi);

/// One integral term of the paper's sweeping index (Equation 2): anchors
/// uniformly spread over [a_lo, a_hi] each sweep a window of length `window`
/// ahead; returns the *expected fraction* of anchor-target pairs whose axis
/// distance falls inside the window, i.e.
///     IntegrateWindowOverlap(...) / ((a_hi - a_lo) * (b_hi - b_lo)),
/// in [0, 1], with degenerate (zero-length) intervals handled as limits.
///
/// NOTE: the published Equation 2 (as scanned) divides by the target length
/// |s|_x only. Without the anchor-length normalization the index is a
/// length, not a fraction, and the paper's own Figure 5 example then
/// selects the *wrong* axis (the short crowded x extent beats the long
/// sparse y extent purely by having a short anchor interval). Footnote 2
/// describes the index as "a normalized estimation of the number of node
/// pairs" — the per-pair fraction implemented here is that estimate divided
/// by the axis-independent constant |r_children| * |s_children|, which
/// preserves the argmin and restores the Figure 5 behaviour.
double SweepingIndexTerm(double a_lo, double a_hi, double window, double b_lo,
                         double b_hi);

/// The sweeping index for dimension `axis` of node pair (r, s) under cutoff
/// `window` (= qDmax or eDmax): the sum of both integral terms of
/// Equation 2 (normalized as described at SweepingIndexTerm). Smaller is
/// better; B-KDJ sweeps along the axis minimizing it.
double SweepingIndex(const Rect& r, const Rect& s, double window, int axis);

/// Closed form of the *first* integral term of Equation 2 for the separated
/// configuration of Table 1: interval r = [0, len_r], interval
/// s = [len_r + alpha, len_r + alpha + len_s], window length `window`,
/// alpha >= 0 the axis gap between r and s; normalized like
/// SweepingIndexTerm. (The published Table 1 appears garbled in the scanned
/// text; these expressions were re-derived from Equation 2 and are
/// property-tested against IntegrateWindowOverlap.)
double SweepingIndexTermSeparated(double len_r, double len_s, double alpha,
                                  double window);

/// Direction of a plane sweep along a fixed axis.
enum class SweepDirection {
  kForward,   ///< Scan children by increasing coordinate.
  kBackward,  ///< Scan children by decreasing coordinate.
};

/// Chooses the sweep direction for pair (r, s) along `axis` per Section 3.3:
/// project both MBRs on the axis; of the three consecutive intervals defined
/// by the four sorted endpoints, compare the leftmost and rightmost — if the
/// left one is shorter, sweep forward, otherwise backward. This tends to
/// reach the closer child pairs first and shrinks qDmax faster.
SweepDirection ChooseSweepDirection(const Rect& r, const Rect& s, int axis);

}  // namespace amdj::geom

#endif  // AMDJ_GEOM_SWEEP_GEOMETRY_H_
